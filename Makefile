# Build and verification targets. `make check` is the full gate: build,
# vet, tests, and the race detector over the internal packages.

GO ?= go

.PHONY: all build test vet race check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/...

check: build vet test race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

clean:
	$(GO) clean ./...
