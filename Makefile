# Build and verification targets. `make check` is the full gate: build,
# vet, tests, and the race detector over the internal packages.

GO ?= go

.PHONY: all build test vet race check bench bench-go clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/...

check: build vet test race

# bench runs the gradient hot-path micro-benchmark suite and the
# fault-injection sweep, writing the JSON report artifacts; bench-go runs
# the package-level Go benchmarks.
bench:
	$(GO) run ./cmd/corgibench -hotpath -out BENCH_hotpath.json
	$(GO) run ./cmd/corgibench -faults -out BENCH_faults.json

bench-go:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

clean:
	$(GO) clean ./...
