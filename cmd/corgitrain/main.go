// Command corgitrain trains a model on a LIBSVM file with a chosen
// shuffling strategy — the library as a practical command-line tool.
//
// Usage:
//
//	corgitrain -file data.libsvm [-model svm] [-lr 0.05] [-epochs 10]
//	           [-strategy corgipile] [-buffer 0.1] [-batch 1] [-test 0.2]
//	           [-save model.json] [-metrics] [-trace-out trace.jsonl]
//	           [-faults 'seed=7,read_err=0.01'] [-retries 3] [-on-corrupt skip]
//	           [-serve 127.0.0.1:0] [-diag] [-explain] [-run-dir DIR]
//	           [-events events.jsonl]
//	corgitrain -synthetic higgs [-scale 0.05] ...
//
// The training table is used as-is (no shuffling of the file), so a file
// written in clustered order exercises exactly the pathology the paper
// studies; compare -strategy no_shuffle against -strategy corgipile.
//
// -serve exposes live telemetry over HTTP while training: /metrics in
// Prometheus text format, /run as a JSON snapshot or SSE stream, and
// /debug/pprof/ for profiling. -synthetic trains on a generated workload
// instead of a file, for smoke tests without data on disk.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"corgipile"
	"corgipile/internal/data"
	"corgipile/internal/db"
	"corgipile/internal/ml"
	"corgipile/internal/obs"
)

func main() {
	var (
		file      = flag.String("file", "", "LIBSVM input file (required)")
		model     = flag.String("model", "svm", "model: lr, svm, linreg, softmax, mlp, fm")
		lr        = flag.Float64("lr", 0.05, "initial learning rate")
		decay     = flag.Float64("decay", 0.95, "per-epoch learning-rate decay")
		epochs    = flag.Int("epochs", 10, "training epochs")
		strategy  = flag.String("strategy", "corgipile", "shuffle strategy: no_shuffle, shuffle_once, epoch_shuffle, sliding_window, mrs, block_only, corgipile")
		buffer    = flag.Float64("buffer", 0.1, "buffer fraction for the shuffle strategies")
		batch     = flag.Int("batch", 1, "mini-batch size (1 = per-tuple SGD)")
		procs     = flag.Int("procs", 0, "gradient worker goroutines for mini-batches (0 = GOMAXPROCS)")
		testFrac  = flag.Float64("test", 0.2, "held-out test fraction")
		seed      = flag.Int64("seed", 1, "random seed")
		save      = flag.String("save", "", "save the trained model to this JSON file via the SQL layer")
		metrics   = flag.Bool("metrics", false, "print a per-epoch time breakdown after training")
		traceOut  = flag.String("trace-out", "", "write the JSONL event trace to this file")
		device    = flag.String("device", "ssd", "simulated device for -faults runs: hdd, ssd, ram")
		faults    = flag.String("faults", "", "fault-injection plan, e.g. 'seed=7,read_err=0.01,corrupt=3;17' (switches to simulated-device training)")
		retries   = flag.Int("retries", 0, "retry attempts after a transient read error")
		backoff   = flag.Duration("retry-backoff", 0, "base retry backoff charged to the simulated clock (default 1ms)")
		corrupt   = flag.String("on-corrupt", "fail", "corrupt-block policy: fail or skip")
		skipCap   = flag.Float64("skip-cap", 0, "max tuple fraction the skip policy may quarantine (default 0.05)")
		serve     = flag.String("serve", "", "serve live telemetry (/metrics, /run, /debug/pprof/) on this address during training")
		diag      = flag.Bool("diag", false, "enable convergence diagnostics (grad norm, plateau/divergence verdict)")
		explain   = flag.Bool("explain", false, "profile the executor plan and print the annotated EXPLAIN ANALYZE tree after training")
		runDir    = flag.String("run-dir", "", "write durable run artifacts (manifest.json, epochs.jsonl, metrics.prom) to this directory")
		synthetic = flag.String("synthetic", "", "train on a generated workload (higgs, susy, ...) instead of -file")
		scale     = flag.Float64("scale", 0.05, "-synthetic: dataset scale factor")
		eventsOut = flag.String("events", "", "append structured per-epoch span events as JSONL to this file")
		sample    = flag.Duration("sample", 0, "sample run metrics into a history store at this interval and print a summary")
	)
	var alerts []corgipile.AlertRule
	flag.Func("alert", "threshold alert rule 'metric>value[ for 30s]' (repeatable; requires -sample)", func(spec string) error {
		r, err := corgipile.ParseAlertRule(spec)
		if err != nil {
			return err
		}
		alerts = append(alerts, r)
		return nil
	})
	flag.Parse()
	if len(alerts) > 0 && *sample <= 0 {
		fatal(fmt.Errorf("-alert requires -sample (alerts evaluate on history samples)"))
	}
	if *file == "" && *synthetic == "" {
		flag.Usage()
		os.Exit(2)
	}

	var ds *corgipile.Dataset
	var source string
	if *synthetic != "" {
		ds = corgipile.Synthetic(*synthetic, *scale, corgipile.OrderClustered)
		source = *synthetic
		fmt.Printf("generated %s (scale %g): %d tuples, %d features, %s\n",
			*synthetic, *scale, ds.Len(), ds.Features, ds.Task)
	} else {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		var rerr error
		ds, rerr = data.ReadLIBSVM(f, *file, 0)
		f.Close()
		if rerr != nil {
			fatal(rerr)
		}
		source = *file
		fmt.Printf("loaded %s: %d tuples, %d features, %s\n", *file, ds.Len(), ds.Features, ds.Task)
	}

	var test *corgipile.Dataset
	train := ds
	if *testFrac > 0 {
		train, test = ds.Split(*testFrac, rand.New(rand.NewSource(*seed)))
		fmt.Printf("split: %d train / %d test\n", train.Len(), test.Len())
	}

	var reg *corgipile.Metrics
	if *metrics || *traceOut != "" || *serve != "" || *runDir != "" || *sample > 0 {
		reg = corgipile.NewMetrics()
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			reg.StreamTo(f)
		}
	}
	runName := fmt.Sprintf("corgitrain %s/%s", *model, source)
	var hist *corgipile.History
	if *sample > 0 {
		hist = corgipile.NewHistory(corgipile.HistoryConfig{Interval: *sample})
		for _, r := range alerts {
			hist.AddRule(r)
		}
	}
	var feed *corgipile.RunFeed
	if *serve != "" {
		feed = corgipile.NewRunFeed()
		srv, err := obs.Serve(obs.ServeConfig{Addr: *serve, Registry: reg, Feed: feed, History: hist})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("telemetry on %s\n", srv.URL())
	}
	cfg := corgipile.TrainConfig{
		Model:           *model,
		LearningRate:    *lr,
		Decay:           *decay,
		Epochs:          *epochs,
		BatchSize:       *batch,
		Procs:           *procs,
		Strategy:        corgipile.StrategyKind(*strategy),
		BufferFraction:  *buffer,
		Seed:            *seed,
		Metrics:         reg,
		Device:          *device,
		Retries:         *retries,
		RetryBackoff:    *backoff,
		OnCorrupt:       *corrupt,
		MaxSkipFraction: *skipCap,
		Feed:            feed,
		RunName:         runName,
		Explain:         *explain,
	}
	if *diag {
		cfg.Diag = &corgipile.DiagConfig{}
	}
	if *eventsOut != "" {
		f, err := os.OpenFile(*eventsOut, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cfg.Events = corgipile.NewEventLog(0).StreamTo(f)
		cfg.Trace = runName
	}
	if hist != nil {
		// Alert transitions land in the same event log as the epoch spans.
		hist.WithEvents(cfg.Events)
		hist.Start(reg)
	}
	var res *corgipile.Result
	if *faults != "" {
		// Fault injection needs a simulated device under the table; train
		// through the storage stack instead of in memory.
		plan, err := corgipile.ParseFaultPlan(*faults)
		if err != nil {
			fatal(err)
		}
		cfg.Faults = &plan
		var clock *corgipile.Clock
		res, clock, err = corgipile.TrainOnDevice(train, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("faults: %s (simulated %s time %.2fs)\n",
			res.Faults.String(), *device, clock.Now().Seconds())
	} else {
		var err error
		res, err = corgipile.Train(train, cfg)
		if err != nil {
			fatal(err)
		}
	}
	if hist != nil {
		// One last sample catches counters that moved since the final tick,
		// then the summary reports what the store saw.
		hist.Stop()
		hist.Sample(reg)
		fmt.Printf("history: %d series sampled every %s\n", len(hist.Names()), *sample)
		for _, a := range hist.Alerts() {
			fmt.Printf("alert %s: state=%s fired=%d\n", a.Name, a.State, a.Fired)
		}
	}
	if *metrics {
		if err := corgipile.WriteEpochBreakdown(os.Stdout, res.Breakdown); err != nil {
			fatal(err)
		}
	}

	for _, p := range res.Points {
		fmt.Printf("epoch %2d  loss %.5f  train %.4f\n", p.Epoch, p.AvgLoss, p.TrainAcc)
	}
	if *diag && res.Verdict != "" {
		fmt.Printf("convergence verdict: %s\n", res.Verdict)
	}
	if *explain && res.Plan != nil {
		fmt.Printf("\nexecuted plan (EXPLAIN ANALYZE):\n%s", res.Plan.Text(true))
	}
	fmt.Printf("final train accuracy: %.4f\n", res.Final().TrainAcc)
	if *runDir != "" {
		if err := writeRunDir(*runDir, runName, cfg, res, reg); err != nil {
			fatal(err)
		}
		fmt.Printf("run artifacts written to %s\n", *runDir)
	}
	if test != nil {
		m, err := ml.New(*model, train.Classes)
		if err != nil {
			fatal(err)
		}
		if test.Task == data.TaskRegression {
			fmt.Printf("test R²: %.4f\n", ml.R2(m, res.W, test))
		} else {
			fmt.Printf("test accuracy: %.4f\n", ml.Accuracy(m, res.W, test))
			if test.Task == data.TaskBinary {
				fmt.Printf("test AUC: %.4f\n", ml.ModelAUC(m, res.W, test))
			}
		}
	}

	if *save != "" {
		if err := saveModel(*save, *model, train, res.W); err != nil {
			fatal(err)
		}
		fmt.Printf("model saved to %s\n", *save)
	}
}

// writeRunDir persists the durable artifacts of the run: the manifest
// (config, seed, git SHA, command line), the per-epoch breakdown, and a
// final Prometheus-format metrics snapshot.
func writeRunDir(dir, runName string, cfg corgipile.TrainConfig, res *corgipile.Result, reg *corgipile.Metrics) error {
	rd, err := obs.OpenRunDir(dir)
	if err != nil {
		return err
	}
	cfg.Metrics = nil // not serializable config
	cfg.Feed = nil
	if err := rd.WriteManifest(obs.Manifest{
		Tool:   "corgitrain",
		Run:    runName,
		Seed:   cfg.Seed,
		Config: cfg,
		Args:   os.Args[1:],
	}); err != nil {
		return err
	}
	if err := rd.WriteEpochs(res.Breakdown); err != nil {
		return err
	}
	if err := rd.WritePlan(res.Plan); err != nil {
		return err
	}
	return rd.WriteMetrics(reg)
}

// saveModel persists the weights in the db layer's model-file format, so
// corgisql's LOAD MODEL can restore it.
func saveModel(path, kind string, train *corgipile.Dataset, w []float64) error {
	hidden := 0
	if kind == "mlp" {
		hidden = 32
	}
	return db.SaveModelFile(path, kind, train.Features, train.Classes, hidden, w)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corgitrain:", err)
	os.Exit(1)
}
