// Command corgitrain trains a model on a LIBSVM file with a chosen
// shuffling strategy — the library as a practical command-line tool.
//
// Usage:
//
//	corgitrain -file data.libsvm [-model svm] [-lr 0.05] [-epochs 10]
//	           [-strategy corgipile] [-buffer 0.1] [-batch 1] [-test 0.2]
//	           [-save model.json] [-metrics] [-trace-out trace.jsonl]
//	           [-faults 'seed=7,read_err=0.01'] [-retries 3] [-on-corrupt skip]
//
// The training table is used as-is (no shuffling of the file), so a file
// written in clustered order exercises exactly the pathology the paper
// studies; compare -strategy no_shuffle against -strategy corgipile.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"corgipile"
	"corgipile/internal/data"
	"corgipile/internal/db"
	"corgipile/internal/ml"
)

func main() {
	var (
		file     = flag.String("file", "", "LIBSVM input file (required)")
		model    = flag.String("model", "svm", "model: lr, svm, linreg, softmax, mlp, fm")
		lr       = flag.Float64("lr", 0.05, "initial learning rate")
		decay    = flag.Float64("decay", 0.95, "per-epoch learning-rate decay")
		epochs   = flag.Int("epochs", 10, "training epochs")
		strategy = flag.String("strategy", "corgipile", "shuffle strategy: no_shuffle, shuffle_once, epoch_shuffle, sliding_window, mrs, block_only, corgipile")
		buffer   = flag.Float64("buffer", 0.1, "buffer fraction for the shuffle strategies")
		batch    = flag.Int("batch", 1, "mini-batch size (1 = per-tuple SGD)")
		procs    = flag.Int("procs", 0, "gradient worker goroutines for mini-batches (0 = GOMAXPROCS)")
		testFrac = flag.Float64("test", 0.2, "held-out test fraction")
		seed     = flag.Int64("seed", 1, "random seed")
		save     = flag.String("save", "", "save the trained model to this JSON file via the SQL layer")
		metrics  = flag.Bool("metrics", false, "print a per-epoch time breakdown after training")
		traceOut = flag.String("trace-out", "", "write the JSONL event trace to this file")
		device   = flag.String("device", "ssd", "simulated device for -faults runs: hdd, ssd, ram")
		faults   = flag.String("faults", "", "fault-injection plan, e.g. 'seed=7,read_err=0.01,corrupt=3;17' (switches to simulated-device training)")
		retries  = flag.Int("retries", 0, "retry attempts after a transient read error")
		backoff  = flag.Duration("retry-backoff", 0, "base retry backoff charged to the simulated clock (default 1ms)")
		corrupt  = flag.String("on-corrupt", "fail", "corrupt-block policy: fail or skip")
		skipCap  = flag.Float64("skip-cap", 0, "max tuple fraction the skip policy may quarantine (default 0.05)")
	)
	flag.Parse()
	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*file)
	if err != nil {
		fatal(err)
	}
	ds, err := data.ReadLIBSVM(f, *file, 0)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %s: %d tuples, %d features, %s\n", *file, ds.Len(), ds.Features, ds.Task)

	var test *corgipile.Dataset
	train := ds
	if *testFrac > 0 {
		train, test = ds.Split(*testFrac, rand.New(rand.NewSource(*seed)))
		fmt.Printf("split: %d train / %d test\n", train.Len(), test.Len())
	}

	var reg *corgipile.Metrics
	if *metrics || *traceOut != "" {
		reg = corgipile.NewMetrics()
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			reg.StreamTo(f)
		}
	}
	cfg := corgipile.TrainConfig{
		Model:           *model,
		LearningRate:    *lr,
		Decay:           *decay,
		Epochs:          *epochs,
		BatchSize:       *batch,
		Procs:           *procs,
		Strategy:        corgipile.StrategyKind(*strategy),
		BufferFraction:  *buffer,
		Seed:            *seed,
		Metrics:         reg,
		Device:          *device,
		Retries:         *retries,
		RetryBackoff:    *backoff,
		OnCorrupt:       *corrupt,
		MaxSkipFraction: *skipCap,
	}
	var res *corgipile.Result
	if *faults != "" {
		// Fault injection needs a simulated device under the table; train
		// through the storage stack instead of in memory.
		plan, err := corgipile.ParseFaultPlan(*faults)
		if err != nil {
			fatal(err)
		}
		cfg.Faults = &plan
		var clock *corgipile.Clock
		res, clock, err = corgipile.TrainOnDevice(train, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("faults: %s (simulated %s time %.2fs)\n",
			res.Faults.String(), *device, clock.Now().Seconds())
	} else {
		var err error
		res, err = corgipile.Train(train, cfg)
		if err != nil {
			fatal(err)
		}
	}
	if *metrics {
		if err := corgipile.WriteEpochBreakdown(os.Stdout, res.Breakdown); err != nil {
			fatal(err)
		}
	}

	for _, p := range res.Points {
		fmt.Printf("epoch %2d  loss %.5f  train %.4f\n", p.Epoch, p.AvgLoss, p.TrainAcc)
	}
	fmt.Printf("final train accuracy: %.4f\n", res.Final().TrainAcc)
	if test != nil {
		m, err := ml.New(*model, train.Classes)
		if err != nil {
			fatal(err)
		}
		if test.Task == data.TaskRegression {
			fmt.Printf("test R²: %.4f\n", ml.R2(m, res.W, test))
		} else {
			fmt.Printf("test accuracy: %.4f\n", ml.Accuracy(m, res.W, test))
			if test.Task == data.TaskBinary {
				fmt.Printf("test AUC: %.4f\n", ml.ModelAUC(m, res.W, test))
			}
		}
	}

	if *save != "" {
		if err := saveModel(*save, *model, train, res.W); err != nil {
			fatal(err)
		}
		fmt.Printf("model saved to %s\n", *save)
	}
}

// saveModel persists the weights in the db layer's model-file format, so
// corgisql's LOAD MODEL can restore it.
func saveModel(path, kind string, train *corgipile.Dataset, w []float64) error {
	hidden := 0
	if kind == "mlp" {
		hidden = 32
	}
	return db.SaveModelFile(path, kind, train.Features, train.Classes, hidden, w)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corgitrain:", err)
	os.Exit(1)
}
