// Command corgisql is an interactive shell for the in-DB ML stack: the
// paper's SELECT ... TRAIN BY interface over the simulated storage engine.
//
// Usage:
//
//	corgisql              # interactive REPL
//	corgisql -c "SQL..."  # run a script and exit
//	corgisql -metrics [-trace-out trace.jsonl] [-serve 127.0.0.1:0]
//	         [-diag] [-run-dir DIR] ...
//
// With -metrics every TRAIN statement additionally prints a per-epoch
// cross-layer time breakdown (I/O, shuffle, gradient compute); -trace-out
// streams the full JSONL event trace to a file. -serve exposes the session's
// live telemetry over HTTP (/metrics, /run, /debug/pprof/) while TRAIN
// statements execute. -diag tracks convergence diagnostics on every TRAIN
// and reports the verdict in the result message; -run-dir persists the last
// training statement's artifacts (manifest.json, epochs.jsonl, metrics.prom,
// and plan.json for EXPLAIN ANALYZE) on exit. -events records structured
// statement/checkpoint/recovery events to a JSONL file; the same events
// are queryable in-session via SELECT * FROM corgi_events (see also
// corgi_tables, corgi_models, corgi_wal, corgi_metrics, corgi_spans).
//
// Example session:
//
//	> CREATE TABLE higgs AS SYNTHETIC(workload='higgs', scale=0.5,
//	      order='clustered') WITH device='hdd', block_size=256KB;
//	> SELECT * FROM higgs TRAIN BY svm MODEL m1
//	      WITH learning_rate=0.05, max_epoch_num=10, shuffle='corgipile';
//	> SELECT * FROM higgs PREDICT BY m1 LIMIT 5;
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"corgipile/internal/core"
	"corgipile/internal/db"
	"corgipile/internal/obs"
)

func main() {
	script := flag.String("c", "", "execute the given SQL script and exit")
	metrics := flag.Bool("metrics", false, "print a per-epoch time breakdown after each TRAIN")
	traceOut := flag.String("trace-out", "", "write the JSONL event trace to this file")
	serve := flag.String("serve", "", "serve live telemetry (/metrics, /run, /debug/pprof/) on this address")
	diag := flag.Bool("diag", false, "enable convergence diagnostics on every TRAIN (verdict in the result message and live feed)")
	runDir := flag.String("run-dir", "", "write durable run artifacts (manifest.json, epochs.jsonl, metrics.prom, plan.json) for the last TRAIN to this directory")
	eventsOut := flag.String("events", "", "record structured events (statement, checkpoint, recovery) and append them as JSONL to this file")
	sample := flag.Duration("sample", 0, "sample session metrics into the history store at this interval (queryable via SELECT * FROM corgi_metrics_history)")
	flag.Parse()

	session := db.NewSession()
	if *eventsOut != "" {
		f, err := os.OpenFile(*eventsOut, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "corgisql:", err)
			os.Exit(1)
		}
		defer f.Close()
		session.WithEvents(obs.NewEventLog(0).StreamTo(f))
	}
	if *metrics || *traceOut != "" || *serve != "" || *runDir != "" || *sample > 0 {
		reg := obs.New()
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "corgisql:", err)
				os.Exit(1)
			}
			defer f.Close()
			reg.StreamTo(f)
		}
		session.WithMetrics(reg)
	}
	var hist *obs.History
	if *sample > 0 {
		hist = obs.NewHistory(obs.HistoryConfig{Interval: *sample}).WithEvents(session.Events())
		session.WithHistory(hist)
		hist.Start(session.Metrics())
		defer hist.Stop()
	}
	if *diag {
		session.WithDiag(&core.DiagConfig{})
	}
	// last tracks the most recent result carrying training artifacts (a
	// TRAIN breakdown or an EXPLAIN ANALYZE plan) for -run-dir.
	var last *db.Result
	record := func(results []*db.Result) {
		for _, r := range results {
			if len(r.Breakdown) > 0 || r.Plan != nil {
				last = r
			}
		}
	}
	writeArtifacts := func() {
		if *runDir == "" {
			return
		}
		if err := writeRunDir(*runDir, session, last); err != nil {
			fmt.Fprintln(os.Stderr, "corgisql:", err)
			return
		}
		fmt.Fprintf(os.Stderr, "corgisql: run artifacts written to %s\n", *runDir)
	}
	if *serve != "" {
		feed := obs.NewRunFeed()
		session.WithFeed(feed)
		srv, err := obs.Serve(obs.ServeConfig{Addr: *serve, Registry: session.Metrics(), Feed: feed, History: hist})
		if err != nil {
			fmt.Fprintln(os.Stderr, "corgisql:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "corgisql: telemetry on %s\n", srv.URL())
	}
	if *script != "" {
		results, err := session.ExecScript(*script)
		record(results)
		for _, r := range results {
			printResult(r)
		}
		writeArtifacts()
		if err != nil {
			fmt.Fprintln(os.Stderr, "corgisql:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("corgisql — in-DB ML with CorgiPile (simulated storage).")
	fmt.Println(`Try: CREATE TABLE t AS SYNTHETIC(workload='higgs', scale=0.2, order='clustered');`)
	fmt.Println(`     SELECT * FROM t TRAIN BY svm MODEL m1 WITH max_epoch_num=10;`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	fmt.Print("> ")
	for sc.Scan() {
		line := sc.Text()
		pending.WriteString(line)
		pending.WriteString("\n")
		if !strings.Contains(line, ";") {
			fmt.Print("… ")
			continue
		}
		sql := pending.String()
		pending.Reset()
		switch strings.ToLower(strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sql), ";"))) {
		case "quit", "exit", `\q`:
			writeArtifacts()
			return
		}
		results, err := session.ExecScript(sql)
		record(results)
		for _, r := range results {
			printResult(r)
		}
		if err != nil {
			fmt.Println("error:", err)
		}
		fmt.Printf("[%s]\n> ", session.Clock())
	}
	writeArtifacts()
}

// writeRunDir persists the durable artifacts of the session's most recent
// training statement: the manifest, the per-epoch breakdown, the executed
// plan (for EXPLAIN ANALYZE) and a final metrics snapshot.
func writeRunDir(dir string, session *db.Session, last *db.Result) error {
	rd, err := obs.OpenRunDir(dir)
	if err != nil {
		return err
	}
	if err := rd.WriteManifest(obs.Manifest{
		Tool: "corgisql",
		Args: os.Args[1:],
	}); err != nil {
		return err
	}
	if last != nil {
		if err := rd.WriteEpochs(last.Breakdown); err != nil {
			return err
		}
		if err := rd.WritePlan(last.Plan); err != nil {
			return err
		}
	}
	return rd.WriteMetrics(session.Metrics())
}

func printResult(r *db.Result) {
	if len(r.Columns) > 0 && len(r.Rows) > 0 {
		widths := make([]int, len(r.Columns))
		for i, c := range r.Columns {
			widths[i] = len(c)
		}
		for _, row := range r.Rows {
			for i, cell := range row {
				if len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		printRow := func(cells []string) {
			for i, cell := range cells {
				fmt.Printf("%-*s  ", widths[i], cell)
			}
			fmt.Println()
		}
		printRow(r.Columns)
		for _, row := range r.Rows {
			printRow(row)
		}
	}
	if r.Message != "" {
		fmt.Println(r.Message)
	}
	if len(r.Breakdown) > 0 {
		if err := obs.WriteEpochTable(os.Stdout, "where the time went", r.Breakdown); err != nil {
			fmt.Fprintln(os.Stderr, "corgisql:", err)
		}
	}
}
