// Command corgitop is a live terminal dashboard over a corgiserved (or
// corgitrain/corgisql/corgibench) telemetry plane: it polls the
// /metrics/history and /alertz endpoints that -sample enables and renders
// the sampled series — jobs running/queued, WAL size, replication lag,
// predict latency quantiles — as current values with Unicode sparklines,
// plus every alert rule's firing state.
//
// Usage:
//
//	corgitop -connect 127.0.0.1:9090 [-interval 2s] [-window 2m] \
//	    [-metrics serve.jobs_running,wal.size_bytes] [-once]
//
// -connect takes the telemetry address (the server's -telemetry flag),
// with or without the http:// scheme. By default corgitop shows a curated
// set of serving-plane series and falls back to whatever the store has
// sampled; -metrics pins an explicit comma-separated list. -once prints a
// single frame and exits (scriptable); otherwise the screen redraws every
// -interval until interrupted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

// historyReply mirrors the /metrics/history JSON shape.
type historyReply struct {
	IntervalMs  int64    `json:"interval_ms"`
	Resolutions []string `json:"resolutions"`
	Points      []struct {
		Name       string  `json:"name"`
		TimeMs     int64   `json:"ts"`
		Value      float64 `json:"value"`
		Resolution string  `json:"resolution"`
	} `json:"points"`
}

// alertzReply mirrors the /alertz JSON shape.
type alertzReply struct {
	Alerts []struct {
		Name    string  `json:"name"`
		Metric  string  `json:"metric"`
		State   string  `json:"state"`
		Value   float64 `json:"value"`
		Fired   int64   `json:"fired"`
		SinceMs int64   `json:"since_ms"`
	} `json:"alerts"`
}

// defaultMetrics is the curated dashboard order; series absent from the
// store are skipped, and when none match the store's own names are shown.
var defaultMetrics = []string{
	"serve.jobs_running",
	"serve.jobs_queued",
	"serve.predict_p50",
	"serve.predict_p95",
	"serve.predict_p99",
	"serve.predict_count",
	"wal.size_bytes",
	"wal.last_lsn",
	"repl.lag_lsn",
	"repl.replicas",
	"sgd.tuples",
	"shuffle.blocks",
	"io.fault.transient",
}

// maxFallbackRows bounds the everything-else listing when no curated or
// requested series exist.
const maxFallbackRows = 16

func main() {
	connect := flag.String("connect", "127.0.0.1:9090", "telemetry address (host:port or http://host:port) of a -sample'd server")
	interval := flag.Duration("interval", 2*time.Second, "dashboard refresh period")
	window := flag.Duration("window", 2*time.Minute, "history window the sparklines cover")
	metricsFlag := flag.String("metrics", "", "comma-separated series to show (default: a curated serving-plane set)")
	once := flag.Bool("once", false, "print one frame and exit")
	flag.Parse()

	base := *connect
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	var want []string
	if *metricsFlag != "" {
		for _, m := range strings.Split(*metricsFlag, ",") {
			if m = strings.TrimSpace(m); m != "" {
				want = append(want, m)
			}
		}
	}

	client := &http.Client{Timeout: 5 * time.Second}
	for {
		frame, err := render(client, base, *window, want)
		if err != nil {
			frame = fmt.Sprintf("corgitop: %v\n(is the server running with -telemetry and -sample?)\n", err)
			if *once {
				fmt.Fprint(os.Stderr, frame)
				os.Exit(1)
			}
		}
		if !*once {
			// Clear and home; the frame repaints the whole screen.
			fmt.Print("\x1b[2J\x1b[H")
		}
		fmt.Print(frame)
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// render fetches one snapshot and formats the full dashboard frame.
func render(client *http.Client, base string, window time.Duration, want []string) (string, error) {
	var hist historyReply
	if err := getJSON(client, base+"/metrics/history?since="+window.String(), &hist); err != nil {
		return "", err
	}
	var alerts alertzReply
	if err := getJSON(client, base+"/alertz", &alerts); err != nil {
		return "", err
	}

	// Keep only the finest resolution: sparklines want the raw tier, and
	// the coarser tiers repeat the same information smoothed.
	finest := ""
	if len(hist.Resolutions) > 0 {
		finest = hist.Resolutions[0]
	}
	series := make(map[string][]float64)
	last := make(map[string]float64)
	for _, p := range hist.Points {
		if p.Resolution != finest {
			continue
		}
		series[p.Name] = append(series[p.Name], p.Value) // points arrive time-ordered per series
		last[p.Name] = p.Value
	}

	names := want
	if len(names) == 0 {
		for _, n := range defaultMetrics {
			if _, ok := series[n]; ok {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			for n := range series {
				names = append(names, n)
			}
			sort.Strings(names)
			if len(names) > maxFallbackRows {
				names = names[:maxFallbackRows]
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "corgitop — %s  (interval %s, window %s, %s tier)\n\n",
		base, (time.Duration(hist.IntervalMs) * time.Millisecond).String(), window, finest)
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, n := range names {
		vals, ok := series[n]
		if !ok {
			fmt.Fprintf(&b, "  %-*s  %12s\n", width, n, "-")
			continue
		}
		fmt.Fprintf(&b, "  %-*s  %12s  %s\n", width, n, formatValue(n, last[n]), sparkline(vals, 40))
	}
	if len(names) == 0 {
		b.WriteString("  (no series sampled yet)\n")
	}
	b.WriteString("\nalerts:\n")
	if len(alerts.Alerts) == 0 {
		b.WriteString("  (none configured)\n")
	}
	for _, a := range alerts.Alerts {
		marker := " "
		if a.State == "firing" {
			marker = "!"
		}
		fmt.Fprintf(&b, " %s %-8s %-40s value=%g fired=%d\n",
			marker, a.State, a.Name, a.Value, a.Fired)
	}
	return b.String(), nil
}

// getJSON fetches url and decodes the body into out.
func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sparkBars are the eight block-element levels a sparkline cell can take.
var sparkBars = []rune("▁▂▃▄▅▆▇█")

// sparkline renders the last width values scaled into block elements.
// A flat series renders as a low bar, not an empty string, so "steady at
// zero" and "no data" look different.
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkBars)-1))
		}
		out[i] = sparkBars[idx]
	}
	return string(out)
}

// formatValue renders a sample compactly: byte series get IEC units,
// second-valued quantile series get millisecond precision, counters and
// LSNs plain integers.
func formatValue(name string, v float64) string {
	switch {
	case strings.HasSuffix(name, "_bytes") || strings.Contains(name, ".size_bytes"):
		return formatBytes(v)
	case strings.HasSuffix(name, "_p50") || strings.HasSuffix(name, "_p95") || strings.HasSuffix(name, "_p99"):
		return fmt.Sprintf("%.3fms", v*1e3)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// formatBytes renders a byte count with IEC units.
func formatBytes(v float64) string {
	units := []string{"B", "KiB", "MiB", "GiB", "TiB"}
	i := 0
	for v >= 1024 && i < len(units)-1 {
		v /= 1024
		i++
	}
	if i == 0 {
		return fmt.Sprintf("%d%s", int64(v), units[i])
	}
	return fmt.Sprintf("%.1f%s", v, units[i])
}
