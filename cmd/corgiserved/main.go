// Command corgiserved is the serving plane: a long-lived server that
// accepts concurrent client sessions over a newline-delimited JSON
// protocol (documented in docs/PROTOCOL.md), trains models as queued
// background jobs with admission control and cancellation, and answers
// PREDICT statements at high rates from cached models.
//
// Usage:
//
//	corgiserved -listen 127.0.0.1:7878 \
//	    [-init boot.sql] [-wal waldir/] [-workers 2] [-queue 8] \
//	    [-session-max 2] [-telemetry 127.0.0.1:9090] [-run-root runs/] \
//	    [-retain-jobs 64] [-retain-job-age 15m] [-checkpoint-every 30s|64MB] \
//	    [-replica-listen HOST:PORT] [-replicate-from HOST:PORT] \
//	    [-events events.jsonl] [-events-max-size 16MB] [-slow-statement 1s] \
//	    [-ready-max-lag 0] [-sample 1s] [-history-slots 256] \
//	    [-alert 'serve.predict_p95>0.5 for 30s']
//
//	corgiserved -connect HOST:PORT [-replay transcript.txt] [-promote] [-exec "SQL"]
//
// Replication: -replica-listen publishes the catalog's WAL as a
// replication stream (requires -wal); -replicate-from boots the server as
// a read-only replica mirroring that stream into its own WAL directory.
// A replica serves PREDICT and read-only SQL, rejects mutations with
// ERR_READ_ONLY, and becomes a writable primary on PROMOTE (op "promote",
// SQL "PROMOTE", or `corgiserved -connect ADDR -promote`).
// -checkpoint-every compacts the WAL in the background on a time or size
// trigger, the same atomic-rename path as the CHECKPOINT statement.
//
// In server mode, -init runs a semicolon-separated SQL script (typically
// CREATE TABLE statements) against the catalog before the listener opens,
// so clients find tables ready. -telemetry exposes the obs HTTP plane:
// /metrics aggregates device counters across all jobs (plus the WAL
// gauges on durable servers), /run?job=<id> streams one job's live
// per-epoch status, and /healthz and /readyz answer liveness/readiness
// probes — a replica reports ready only while its replication lag is
// within -ready-max-lag. -run-root persists per-job artifacts
// (manifest.json, epochs.jsonl, metrics.prom) as jobs finish.
//
// Introspection: every server answers `SELECT * FROM corgi_jobs` (and
// corgi_sessions, corgi_replication, corgi_events, corgi_spans, ...) over
// the wire; -events additionally appends every structured event as JSONL
// (rotated to FILE.1 past -events-max-size), and -slow-statement flags
// statements past the threshold.
//
// Metrics history: -sample records every counter, gauge, and histogram
// quantile into a bounded time-series store at that interval, with
// downsampling tiers (raw → 10× → 60×). The series answer `SELECT * FROM
// corgi_metrics_history` over the wire and /metrics/history on the
// telemetry plane (what corgitop renders); repeatable -alert rules like
// 'serve.predict_p95>0.5 for 30s' evaluate on every sample, surface in
// corgi_alerts and /alertz, and record alert.firing/alert.resolved
// events. Without -sample none of this exists — traces and transcripts
// are byte-identical to a build without the feature.
//
// In client mode (-connect), stdin lines (or -replay file lines) starting
// with "C: " are sent verbatim and each response is printed as "S: <json>"
// — the exact framing docs/PROTOCOL.md uses, so a documented transcript
// replays against a live server unchanged. Lines without the prefix are
// treated as raw request lines; blank lines and "#" comments are skipped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"corgipile/internal/db"
	"corgipile/internal/obs"
	"corgipile/internal/serve"
	"corgipile/internal/sqlparse"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7878", "listen address (port 0 picks a free port)")
		initScript = flag.String("init", "", "run this SQL script against the catalog before serving")
		workers    = flag.Int("workers", 2, "concurrent TRAIN job executors")
		queue      = flag.Int("queue", 8, "pending TRAIN job queue depth (admission control)")
		sessionMax = flag.Int("session-max", 2, "max active (queued+running) jobs per session")
		telemetry  = flag.String("telemetry", "", "serve live telemetry (/metrics, /run?job=<id>, /debug/pprof/) on this address")
		runRoot    = flag.String("run-root", "", "write per-job durable artifacts under this directory")
		walDir     = flag.String("wal", "", "durable catalog: replay and write a WAL under this directory")
		retainJobs = flag.Int("retain-jobs", 0, "finished jobs kept for status queries (default 64)")
		retainAge  = flag.Duration("retain-job-age", 0, "prune finished jobs older than this (default 15m; <0 disables)")
		replListen = flag.String("replica-listen", "", "serve the WAL-shipping replication stream on this address (requires -wal)")
		replFrom   = flag.String("replicate-from", "", "boot as a read-only replica of the primary at this replication address (requires -wal)")
		ckptEvery  = flag.String("checkpoint-every", "", "background WAL compaction trigger: a duration (30s) or a size (64MB)")
		eventsOut  = flag.String("events", "", "append the structured event log as JSONL to this file")
		eventsMax  = flag.String("events-max-size", "", "rotate the -events file to FILE.1 past this size (e.g. 16MB)")
		slowStmt   = flag.Duration("slow-statement", 0, "emit a statement.slow event for statements slower than this")
		readyLag   = flag.Uint64("ready-max-lag", 0, "replica /readyz fails while replication lag (LSNs) exceeds this")
		sample     = flag.Duration("sample", 0, "sample every metric into the history store at this interval (enables corgi_metrics_history, /metrics/history, corgitop)")
		histSlots  = flag.Int("history-slots", 0, "per-series history ring capacity (default 256)")
		connect    = flag.String("connect", "", "client mode: connect to a running server instead of serving")
		replay     = flag.String("replay", "", "-connect: replay this transcript file instead of reading stdin")
		execSQL    = flag.String("exec", "", "-connect: send this SQL statement, print the response, and exit")
		promote    = flag.Bool("promote", false, "-connect: send a PROMOTE request and exit")
	)
	var alerts []obs.AlertRule
	flag.Func("alert", "threshold alert rule 'metric>value[ for 30s]' (repeatable; requires -sample)", func(spec string) error {
		r, err := obs.ParseAlertRule(spec)
		if err != nil {
			return err
		}
		alerts = append(alerts, r)
		return nil
	})
	flag.Parse()

	if *connect != "" {
		if *promote {
			if err := runPromote(*connect); err != nil {
				fmt.Fprintln(os.Stderr, "corgiserved:", err)
				os.Exit(1)
			}
			return
		}
		if *execSQL != "" {
			if err := runExec(*connect, *execSQL); err != nil {
				fmt.Fprintln(os.Stderr, "corgiserved:", err)
				os.Exit(1)
			}
			return
		}
		if err := runClient(*connect, *replay); err != nil {
			fmt.Fprintln(os.Stderr, "corgiserved:", err)
			os.Exit(1)
		}
		return
	}

	if *replFrom != "" && *initScript != "" {
		fmt.Fprintln(os.Stderr, "corgiserved: -replicate-from and -init are mutually exclusive: a replica's catalog comes from the primary")
		os.Exit(1)
	}
	if (*replFrom != "" || *replListen != "") && *walDir == "" {
		fmt.Fprintln(os.Stderr, "corgiserved: replication requires a durable catalog: set -wal")
		os.Exit(1)
	}
	var ckptDur time.Duration
	var ckptBytes int64
	if *ckptEvery != "" {
		if d, err := time.ParseDuration(*ckptEvery); err == nil {
			ckptDur = d
		} else if n, err := sqlparse.ParseSize(*ckptEvery); err == nil {
			ckptBytes = n
		} else {
			fmt.Fprintf(os.Stderr, "corgiserved: -checkpoint-every %q is neither a duration nor a size\n", *ckptEvery)
			os.Exit(1)
		}
		if *walDir == "" {
			fmt.Fprintln(os.Stderr, "corgiserved: -checkpoint-every requires -wal")
			os.Exit(1)
		}
	}

	if len(alerts) > 0 && *sample <= 0 {
		fmt.Fprintln(os.Stderr, "corgiserved: -alert requires -sample (alerts evaluate on history samples)")
		os.Exit(1)
	}
	if *eventsMax != "" && *eventsOut == "" {
		fmt.Fprintln(os.Stderr, "corgiserved: -events-max-size requires -events")
		os.Exit(1)
	}

	session := db.NewSession()
	// The event ring attaches before recovery so the wal.recovery event
	// (and any sync failures during replay) land in it.
	events := obs.NewEventLog(0)
	if *eventsOut != "" {
		var sink io.WriteCloser
		if *eventsMax != "" {
			max, err := sqlparse.ParseSize(*eventsMax)
			if err != nil {
				fmt.Fprintln(os.Stderr, "corgiserved: -events-max-size:", err)
				os.Exit(1)
			}
			rf, err := obs.NewRotatingFile(*eventsOut, max)
			if err != nil {
				fmt.Fprintln(os.Stderr, "corgiserved: events:", err)
				os.Exit(1)
			}
			sink = rf
		} else {
			f, err := os.OpenFile(*eventsOut, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintln(os.Stderr, "corgiserved: events:", err)
				os.Exit(1)
			}
			sink = f
		}
		defer sink.Close()
		events.StreamTo(sink)
	}
	session.WithEvents(events)
	if *walDir != "" {
		// Recovery runs before -init, so a restarted server finds its
		// previous catalog and the init script is only needed on first boot.
		stats, err := session.OpenWAL(*walDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "corgiserved: wal:", err)
			os.Exit(1)
		}
		fmt.Println("wal:", stats)
	}
	if *initScript != "" {
		sql, err := os.ReadFile(*initScript)
		if err != nil {
			fmt.Fprintln(os.Stderr, "corgiserved:", err)
			os.Exit(1)
		}
		results, err := session.ExecScript(string(sql))
		if err != nil {
			fmt.Fprintln(os.Stderr, "corgiserved: init script:", err)
			os.Exit(1)
		}
		for _, r := range results {
			if r.Message != "" {
				fmt.Println("init:", r.Message)
			}
		}
	}

	srv, err := serve.New(serve.Config{
		Addr:            *listen,
		Workers:         *workers,
		QueueDepth:      *queue,
		SessionMax:      *sessionMax,
		Telemetry:       *telemetry,
		RunRoot:         *runRoot,
		RetainJobs:      *retainJobs,
		RetainJobAge:    *retainAge,
		Session:         session,
		ReplicaListen:   *replListen,
		ReplicateFrom:   *replFrom,
		CheckpointEvery: ckptDur,
		CheckpointBytes: ckptBytes,
		Events:          events,
		SlowStatement:   *slowStmt,
		ReadyMaxLag:     *readyLag,
		SampleEvery:     *sample,
		HistorySlots:    *histSlots,
		Alerts:          alerts,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "corgiserved:", err)
		os.Exit(1)
	}
	fmt.Printf("corgiserved: listening on %s (protocol v%d, %d workers, queue %d)\n",
		srv.Addr(), serve.ProtocolVersion, *workers, *queue)
	if *telemetry != "" {
		fmt.Printf("corgiserved: telemetry on %s\n", srv.TelemetryURL())
	}
	if addr := srv.ReplicaAddr(); addr != "" {
		fmt.Printf("corgiserved: replicating on %s\n", addr)
	}
	if *replFrom != "" {
		fmt.Printf("corgiserved: replica of %s (read-only until PROMOTE)\n", *replFrom)
	}

	// Serve until interrupted; Close cancels in-flight jobs and waits for
	// every session handler to unwind.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("corgiserved: shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "corgiserved:", err)
		os.Exit(1)
	}
	if err := session.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "corgiserved: wal:", err)
		os.Exit(1)
	}
}

// runExec sends one SQL statement and prints the raw response line — the
// introspection one-liner: corgiserved -connect ADDR -exec "SELECT * FROM
// corgi_jobs".
func runExec(addr, sql string) error {
	conn, err := serve.DialRaw(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	line, err := json.Marshal(serve.Request{Op: "sql", SQL: sql})
	if err != nil {
		return err
	}
	resp, err := conn.DoLine(string(line))
	if err != nil {
		return err
	}
	fmt.Println(resp)
	return nil
}

// runPromote sends a single PROMOTE request — the failover one-liner:
// corgiserved -connect ADDR -promote.
func runPromote(addr string) error {
	c, err := serve.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	resp, err := c.Promote()
	if err != nil {
		return err
	}
	fmt.Println(resp.Message)
	return nil
}

// runClient drives a server from a transcript: each input line is one raw
// request, each response prints prefixed "S: ". The "C: " prefix on input
// is stripped, so docs/PROTOCOL.md transcripts replay verbatim.
func runClient(addr, replayFile string) error {
	in := os.Stdin
	if replayFile != "" {
		f, err := os.Open(replayFile)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	conn, err := serve.DialRaw(addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 4096), serve.MaxLineBytes)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "S:"); ok {
			// Expected-response lines in a transcript are informational;
			// the smoke script diffs actual output against them instead.
			_ = rest
			continue
		}
		line = strings.TrimSpace(strings.TrimPrefix(line, "C:"))
		resp, err := conn.DoLine(line)
		if err != nil {
			return err
		}
		fmt.Println("S:", resp)
	}
	return sc.Err()
}
