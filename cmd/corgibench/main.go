// Command corgibench regenerates the paper's tables and figures, and
// profiles where training time goes.
//
// Usage:
//
//	corgibench [-scale 1.0] [-list] [experiment ...]
//	corgibench -metrics [-workload higgs] [-strategy corgipile] [-device hdd]
//	           [-epochs 5] [-batch N] [-procs N] [-double] [-block N]
//	           [-trace-out trace.jsonl] [-serve 127.0.0.1:0] [-diag]
//	           [-explain] [-run-dir DIR]
//	corgibench -hotpath [-out BENCH_hotpath.json] [-stamp-time RFC3339]
//	corgibench -faults [-out BENCH_faults.json] [-stamp-time RFC3339]
//	corgibench -compare BENCH_hotpath.json [-tolerance 0.5]
//	corgibench -serve-load [-serve-addr HOST:PORT] [-trains 2]
//	           [-predict-clients 4] [-predicts 2000] [-workload susy]
//	           [-scale 0.05] [-epochs 20] [-seed 1]
//
// With no experiment arguments (or "all") it runs the full suite. Each
// experiment prints the rows/series of the corresponding paper artifact;
// EXPERIMENTS.md maps ids to the paper.
//
// With -metrics it instead runs one instrumented training pass and prints
// the per-epoch cross-layer breakdown — I/O time, bytes read, seek
// fraction, cache hit-rate, shuffle fill time, gradient-compute time, and
// loss — followed by the run's raw counter totals. -trace-out additionally
// streams the same data (plus every span) as JSONL for offline analysis;
// -serve exposes the live run over HTTP (/metrics, /run, /debug/pprof/)
// while it executes.
//
// With -compare it re-runs the suite behind a committed BENCH_*.json
// baseline and exits 1 if any metric regressed.
//
// With -serve-load it boots a corgiserved instance (or targets a running
// one with -serve-addr), keeps -trains background TRAIN jobs executing,
// and measures PREDICT throughput and p50/p95/p99 latency from
// -predict-clients concurrent connections, canceling one TRAIN mid-run to
// verify its admission slot is returned.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"corgipile/internal/bench"
	"corgipile/internal/core"
	"corgipile/internal/obs"
	"corgipile/internal/shuffle"
)

func main() {
	var (
		scale     = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = full synthetic size)")
		list      = flag.Bool("list", false, "list available experiments and exit")
		metrics   = flag.Bool("metrics", false, "run one instrumented pass and print the per-epoch time breakdown")
		hotpath   = flag.Bool("hotpath", false, "run the gradient hot-path micro-benchmarks and exit")
		faults    = flag.Bool("faults", false, "run the fault-injection sweep (fault rate x retry budget) and exit")
		outFile   = flag.String("out", "", "-hotpath/-faults: also write the JSON report to this file")
		workload  = flag.String("workload", "higgs", "-metrics: synthetic workload name")
		strategy  = flag.String("strategy", "corgipile", "-metrics: shuffle strategy")
		device    = flag.String("device", "hdd", "-metrics: device profile (hdd, ssd, ram)")
		epochs    = flag.Int("epochs", 5, "-metrics: training epochs")
		double    = flag.Bool("double", false, "-metrics: enable double buffering")
		block     = flag.Int64("block", 0, "-metrics: block size in bytes (0 = auto)")
		batch     = flag.Int("batch", 1, "-metrics: mini-batch size (1 = per-tuple SGD)")
		procs     = flag.Int("procs", 0, "gradient worker goroutines for mini-batches (0 = GOMAXPROCS)")
		seed      = flag.Int64("seed", 1, "-metrics: random seed")
		traceOut  = flag.String("trace-out", "", "write the JSONL event trace to this file")
		serve     = flag.String("serve", "", "serve live telemetry (/metrics, /run, /debug/pprof/) on this address during -metrics")
		diag      = flag.Bool("diag", false, "-metrics: enable convergence diagnostics (grad norm, plateau/divergence verdict)")
		explain   = flag.Bool("explain", false, "-metrics: profile the executor plan and print the annotated EXPLAIN ANALYZE tree")
		runDir    = flag.String("run-dir", "", "-metrics: write durable run artifacts (manifest.json, epochs.jsonl, metrics.prom) to this directory")
		compare   = flag.String("compare", "", "re-run the suite behind this BENCH_*.json baseline and report regressions")
		serveLoad = flag.Bool("serve-load", false, "run the serving-plane load experiment (predict latency under concurrent TRAINs)")
		serveAddr = flag.String("serve-addr", "", "-serve-load: target a running corgiserved instead of booting one in-process")
		trains    = flag.Int("trains", 2, "-serve-load: concurrent background TRAIN jobs")
		pClients  = flag.Int("predict-clients", 4, "-serve-load: concurrent predict connections")
		predicts  = flag.Int("predicts", 2000, "-serve-load: total PREDICT statements")
		tolerance = flag.Float64("tolerance", 0, "-compare: relative wall-clock slack (0 = default 0.5)")
		sample    = flag.Duration("sample", 0, "-metrics: sample run metrics into a history store at this interval and print a summary (never on the bench/report paths)")
		stampTime = flag.String("stamp-time", "", "-hotpath/-faults: RFC 3339 timestamp to stamp the report with (default: now)")
	)
	flag.Parse()

	if *compare != "" {
		regressions, err := bench.Compare(os.Stdout, *compare, *tolerance)
		if err != nil {
			fatal(err)
		}
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}

	if *serveLoad {
		opts := bench.ServeLoadOptions{
			Addr:     *serveAddr,
			Workload: *workload,
			Trains:   *trains,
			Clients:  *pClients,
			Predicts: *predicts,
			Cancel:   true,
			Seed:     *seed,
		}
		// Reuse the suite's -workload/-scale/-epochs knobs, but default to
		// a serving-sized catalog and long-running background jobs rather
		// than the experiment suite's defaults.
		if flagSet("scale") {
			opts.Scale = *scale
		}
		if flagSet("epochs") {
			opts.Epochs = *epochs
		}
		if flagSet("workload") {
			opts.Workload = *workload
		} else {
			opts.Workload = ""
		}
		if err := bench.ServeLoad(os.Stdout, opts); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %-10s %s\n", e.ID, "("+e.Paper+")", e.Title)
		}
		return
	}

	if *hotpath || *faults {
		var out *os.File
		if *outFile != "" {
			f, err := os.Create(*outFile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		var w io.Writer
		if out != nil {
			w = out
		}
		now := time.Now()
		if *stampTime != "" {
			t, err := time.Parse(time.RFC3339, *stampTime)
			if err != nil {
				fatal(fmt.Errorf("-stamp-time: %w", err))
			}
			now = t
		}
		runner := bench.Hotpath
		if *faults {
			runner = bench.FaultSweep
		}
		if err := runner(os.Stdout, w, bench.NewStamp(now)); err != nil {
			fatal(err)
		}
		return
	}

	if *metrics {
		opts := bench.ProfileOptions{
			Workload:     *workload,
			Scale:        *scale,
			Strategy:     shuffle.Kind(*strategy),
			Epochs:       *epochs,
			BatchSize:    *batch,
			Procs:        *procs,
			Device:       *device,
			DoubleBuffer: *double,
			BlockSize:    *block,
			Seed:         *seed,
		}
		// The experiment suite runs at scale 1.0 by default; profiles want
		// quick turnaround, so -metrics defaults to a smaller dataset unless
		// the user set -scale explicitly.
		if !flagSet("scale") {
			opts.Scale = 0
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			opts.TraceOut = f
		}
		if *diag {
			opts.Diag = &core.DiagConfig{}
		}
		opts.Explain = *explain
		opts.RunDir = *runDir
		var reg *obs.Registry
		var hist *obs.History
		if *serve != "" || *sample > 0 {
			reg = obs.New()
			opts.Registry = reg
		}
		if *sample > 0 {
			// History rides only the explicitly instrumented profile path;
			// the hotpath/faults report runs never sample, so committed
			// BENCH_*.json baselines are untouched by the feature.
			hist = obs.NewHistory(obs.HistoryConfig{Interval: *sample})
		}
		if *serve != "" {
			feed := obs.NewRunFeed()
			srv, err := obs.Serve(obs.ServeConfig{Addr: *serve, Registry: reg, Feed: feed, History: hist})
			if err != nil {
				fatal(err)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "corgibench: telemetry on %s\n", srv.URL())
			opts.Feed = feed
		}
		hist.Start(reg)
		if err := bench.Profile(os.Stdout, opts); err != nil {
			fatal(err)
		}
		if hist != nil {
			hist.Stop()
			fmt.Fprintf(os.Stderr, "corgibench: history sampled %d series every %s\n",
				len(hist.Names()), *sample)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		if err := bench.RunAll(os.Stdout, *scale); err != nil {
			fatal(err)
		}
		return
	}
	for _, id := range ids {
		if err := bench.Run(os.Stdout, id, *scale); err != nil {
			fatal(err)
		}
	}
}

// flagSet reports whether the named flag was given on the command line.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corgibench:", err)
	os.Exit(1)
}
