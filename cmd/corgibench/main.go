// Command corgibench regenerates the paper's tables and figures.
//
// Usage:
//
//	corgibench [-scale 1.0] [-list] [experiment ...]
//
// With no experiment arguments (or "all") it runs the full suite. Each
// experiment prints the rows/series of the corresponding paper artifact;
// EXPERIMENTS.md maps ids to the paper.
package main

import (
	"flag"
	"fmt"
	"os"

	"corgipile/internal/bench"
)

func main() {
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = full synthetic size)")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %-10s %s\n", e.ID, "("+e.Paper+")", e.Title)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		if err := bench.RunAll(os.Stdout, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "corgibench:", err)
			os.Exit(1)
		}
		return
	}
	for _, id := range ids {
		if err := bench.Run(os.Stdout, id, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "corgibench:", err)
			os.Exit(1)
		}
	}
}
