// Quickstart: train an SVM on label-clustered data with CorgiPile and see
// why the shuffle strategy matters.
//
// The program generates a higgs-like binary dataset in the paper's
// worst-case order (all negative tuples before all positive ones), then
// trains the same model under three strategies. No Shuffle gets stuck at
// coin-flip accuracy; CorgiPile matches the fully shuffled baseline without
// ever shuffling the dataset.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"corgipile"
)

func main() {
	// A 20k-tuple binary classification dataset, clustered by label — the
	// order a table with a clustered index on the label would have.
	ds := corgipile.Synthetic("higgs", 1.0, corgipile.OrderClustered)
	fmt.Printf("dataset: %s, %d tuples, %d features, %s order\n\n",
		ds.Name, ds.Len(), ds.Features, corgipile.OrderClustered)

	for _, strategy := range []corgipile.StrategyKind{
		corgipile.NoShuffle,
		corgipile.ShuffleOnce,
		corgipile.CorgiPile,
	} {
		res, err := corgipile.Train(ds, corgipile.TrainConfig{
			Model:        "svm",
			LearningRate: 0.02,
			Epochs:       8,
			Strategy:     strategy,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s final train accuracy %.3f  (per-epoch accuracies:", strategy, res.Final().TrainAcc)
		for _, p := range res.Points {
			fmt.Printf(" %.2f", p.TrainAcc)
		}
		fmt.Println(")")
	}

	fmt.Println("\nCorgiPile reaches Shuffle Once accuracy with a 10% in-memory")
	fmt.Println("buffer and zero shuffle preprocessing.")
}
