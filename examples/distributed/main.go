// Distributed training: multi-process CorgiPile, the paper's PyTorch DDP
// integration (Section 5).
//
// Eight data-parallel workers train an MLP on a clustered 100-class
// dataset. Each epoch the workers derive the same block permutation from a
// shared seed, take disjoint slices of it, shuffle tuples inside private
// buffers, and average gradients after every global batch. The example
// compares the distributed No Shuffle baseline against multi-process
// CorgiPile and verifies the merged data order is as well mixed as a
// single process's.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math/rand"

	"corgipile/internal/data"
	"corgipile/internal/dist"
	"corgipile/internal/ml"
	"corgipile/internal/stats"
)

func main() {
	ds := data.SyntheticMulticlass(data.SyntheticConfig{
		Name: "imagenet-mini", Tuples: 8000, Features: 64, Classes: 20,
		Separation: 2.0, Noise: 1.0, Order: data.OrderClustered, Seed: 1,
	})
	fmt.Printf("dataset: %s, %d tuples, %d classes, clustered by class\n\n",
		ds.Name, ds.Len(), ds.Classes)

	model := ml.MLP{Classes: ds.Classes, Hidden: 32}
	train := func(name string, noShuffle bool) {
		cfg := dist.Config{
			Workers:        8,
			Epochs:         10,
			GlobalBatch:    256,
			BufferFraction: 0.1,
			BlockTuples:    50,
			Seed:           1,
			NoBlockShuffle: noShuffle,
			NoTupleShuffle: noShuffle,
			Model:          model,
			Opt:            ml.NewSGD(0.1),
			Features:       ds.Features,
			InitWeights: func(w []float64) {
				model.InitWeights(w, ds.Features, rand.New(rand.NewSource(1)))
			},
			Eval: ds,
		}
		res, err := dist.Train(ds, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s final top-1 accuracy %.3f\n", name, res.Final().TrainAcc)
	}
	train("8-worker No Shuffle", true)
	train("8-worker CorgiPile", false)

	// Figure 5's argument: the multi-process consumption order is as well
	// mixed as the single-process one.
	fmt.Println("\ndata-order quality (0 = perfectly mixed, 1 = unshuffled):")
	for _, workers := range []int{1, 8} {
		order, err := dist.EffectiveOrder(ds, dist.Config{
			Workers: workers, GlobalBatch: 256, BlockTuples: 50,
			BufferFraction: 0.1, Seed: 1,
			Model: model, Opt: ml.NewSGD(0.1), Features: ds.Features,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d worker(s): order correlation %+.3f over %d tuples\n",
			workers, stats.OrderCorrelation(order), len(order))
	}
}
