// In-database ML: the paper's SELECT ... TRAIN BY interface over the
// simulated storage engine.
//
// The session creates a clustered table on a simulated HDD, trains an SVM
// with CorgiPile through the BlockShuffle → TupleShuffle → SGD physical
// plan, compares against the Shuffle Once baseline (which must pay a full
// external sort first), and runs predictions.
//
// Run with: go run ./examples/indb
package main

import (
	"fmt"
	"log"

	"corgipile"
)

func main() {
	session := corgipile.NewSession()

	script := []string{
		`CREATE TABLE higgs AS SYNTHETIC(workload='higgs', scale=0.5, order='clustered')
		     WITH device='ssd', block_size=64KB`,
		`ANALYZE TABLE higgs WITH model='svm'`,
		`EXPLAIN SELECT * FROM higgs TRAIN BY svm WITH shuffle='corgipile'`,
		`SELECT * FROM higgs TRAIN BY svm MODEL corgi
		     WITH learning_rate=0.02, decay=0.7, max_epoch_num=5, shuffle='corgipile'`,
		`SELECT * FROM higgs TRAIN BY svm MODEL baseline
		     WITH learning_rate=0.02, decay=0.7, max_epoch_num=5, shuffle='shuffle_once'`,
		`SELECT * FROM higgs WHERE label = 1 PREDICT BY corgi LIMIT 5`,
		`SHOW MODELS`,
	}

	for _, sql := range script {
		fmt.Printf("> %s\n", sql)
		res, err := session.Exec(sql)
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Columns) > 0 && len(res.Rows) > 0 {
			fmt.Println(formatRows(res.Columns, res.Rows))
		}
		if res.Message != "" {
			fmt.Println(res.Message)
		}
		fmt.Printf("[simulated %s]\n\n", session.Clock())
	}
}

func formatRows(cols []string, rows [][]string) string {
	out := ""
	for _, c := range cols {
		out += fmt.Sprintf("%-12s", c)
	}
	out += "\n"
	for _, row := range rows {
		for _, cell := range row {
			out += fmt.Sprintf("%-12s", cell)
		}
		out += "\n"
	}
	return out
}
