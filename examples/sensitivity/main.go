// Sensitivity study: CorgiPile's two tuning knobs, reproduced from
// Figure 14 and Appendix A.
//
//  1. Buffer size: how small can the in-memory buffer be before convergence
//     suffers? (The paper: 2% of the data usually suffices.)
//  2. Block size: how large must blocks be before random block access costs
//     the same as a sequential scan? (The paper: ~10 MB on HDD.)
//
// Run with: go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"

	"corgipile"
	"corgipile/internal/iosim"
)

func main() {
	ds := corgipile.Synthetic("criteo", 0.5, corgipile.OrderClustered)
	fmt.Printf("dataset: %s, %d tuples (sparse), clustered\n\n", ds.Name, ds.Len())

	// 1. Buffer-size sweep.
	fmt.Println("buffer-size sensitivity (final train accuracy):")
	baseline, err := corgipile.Train(ds, corgipile.TrainConfig{
		Model: "svm", LearningRate: 0.1, Epochs: 8, Strategy: corgipile.ShuffleOnce,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-14s %.3f\n", "shuffle once", baseline.Final().TrainAcc)
	for _, frac := range []float64{0.01, 0.02, 0.05, 0.10} {
		res, err := corgipile.Train(ds, corgipile.TrainConfig{
			Model: "svm", LearningRate: 0.1, Epochs: 8,
			Strategy: corgipile.CorgiPile, BufferFraction: frac,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3.0f%% buffer    %.3f\n", frac*100, res.Final().TrainAcc)
	}

	// 2. Block-size sweep: the Appendix A I/O curve.
	fmt.Println("\nrandom block-read throughput vs block size (1 GiB dataset):")
	const total = 1 << 30
	for _, p := range []iosim.Profile{iosim.HDD, iosim.SSD} {
		seq := iosim.SequentialReadThroughput(p, total)
		fmt.Printf("  %s (sequential %.0f MB/s):\n", p.Name, seq/1e6)
		for bs := int64(256 << 10); bs <= 64<<20; bs *= 4 {
			tp := iosim.RandomBlockReadThroughput(p, total, bs)
			fmt.Printf("    %6.1f MB blocks: %6.1f MB/s (%.0f%% of sequential)\n",
				float64(bs)/float64(1<<20), tp/1e6, tp/seq*100)
		}
	}
	fmt.Println("\nWith ~10 MB blocks, random block access matches a sequential")
	fmt.Println("scan on both device classes — the hardware-efficiency half of")
	fmt.Println("CorgiPile's trade-off.")
}
