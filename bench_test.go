package corgipile

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each benchmark regenerates the corresponding artifact through the
// internal/bench harness at a reduced dataset scale so the full suite runs
// in minutes:
//
//	go test -bench=. -benchmem
//
// For the full-scale reports, run the CLI instead:
//
//	go run ./cmd/corgibench all

import (
	"io"
	"testing"

	"corgipile/internal/bench"
)

// benchScale keeps testing.B iterations affordable; cmd/corgibench runs at
// 1.0.
const benchScale = 0.1

func runBench(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(io.Discard, id, benchScale); err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
	}
}

func BenchmarkFig1(b *testing.B)   { runBench(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { runBench(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { runBench(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { runBench(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { runBench(b, "fig5") }
func BenchmarkFig7(b *testing.B)   { runBench(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { runBench(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { runBench(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { runBench(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { runBench(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { runBench(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { runBench(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { runBench(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { runBench(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { runBench(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { runBench(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { runBench(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { runBench(b, "fig19") }
func BenchmarkFig20(b *testing.B)  { runBench(b, "fig20") }
func BenchmarkTable1(b *testing.B) { runBench(b, "table1") }
func BenchmarkTable3(b *testing.B) { runBench(b, "table3") }

// Micro-benchmarks for the hot paths underneath the experiments.

func BenchmarkCorgiPileEpoch(b *testing.B) {
	ds := Synthetic("higgs", 0.5, OrderClustered)
	cds, err := NewCorgiPileDataset(ds, 0.1, 100, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next := cds.Epoch(i)
		for {
			if _, ok := next(); !ok {
				break
			}
		}
	}
}

func BenchmarkSVMTrainEpoch(b *testing.B) {
	ds := Synthetic("higgs", 0.5, OrderClustered)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(ds, TrainConfig{Model: "svm", Epochs: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
