package corgipile

import (
	"testing"
)

func TestTrainQuickstart(t *testing.T) {
	ds := Synthetic("susy", 0.2, OrderClustered)
	res, err := Train(ds, TrainConfig{Model: "svm", Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Final().TrainAcc < 0.7 {
		t.Fatalf("accuracy %.3f too low", res.Final().TrainAcc)
	}
}

func TestTrainOnDeviceChargesTime(t *testing.T) {
	ds := Synthetic("susy", 0.1, OrderClustered)
	res, clock, err := TrainOnDevice(ds, TrainConfig{
		Model: "lr", Epochs: 3, Device: "hdd", BlockSize: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if clock.Now() <= 0 {
		t.Fatal("no simulated time charged")
	}
	if res.Final().Seconds <= 0 {
		t.Fatal("epoch points missing simulated time")
	}
}

func TestTrainStrategyComparison(t *testing.T) {
	ds := Synthetic("higgs", 0.2, OrderClustered)
	corgi, err := Train(ds, TrainConfig{Strategy: CorgiPile, Epochs: 6})
	if err != nil {
		t.Fatal(err)
	}
	noshuf, err := Train(ds, TrainConfig{Strategy: NoShuffle, Epochs: 6})
	if err != nil {
		t.Fatal(err)
	}
	if corgi.Final().TrainAcc <= noshuf.Final().TrainAcc {
		t.Fatalf("corgipile %.3f should beat no-shuffle %.3f",
			corgi.Final().TrainAcc, noshuf.Final().TrainAcc)
	}
}

func TestTrainErrors(t *testing.T) {
	ds := Synthetic("susy", 0.05, OrderClustered)
	if _, err := Train(ds, TrainConfig{Model: "quantum"}); err == nil {
		t.Fatal("unknown model should error")
	}
	if _, err := Train(ds, TrainConfig{Optimizer: "lbfgs"}); err == nil {
		t.Fatal("unknown optimizer should error")
	}
	if _, err := Train(ds, TrainConfig{Strategy: "teleport"}); err == nil {
		t.Fatal("unknown strategy should error")
	}
	if _, _, err := TrainOnDevice(ds, TrainConfig{Device: "floppy"}); err == nil {
		t.Fatal("unknown device should error")
	}
}

func TestCorgiPileDatasetStreams(t *testing.T) {
	ds := Synthetic("susy", 0.1, OrderClustered)
	cds, err := NewCorgiPileDataset(ds, 0.1, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	next := cds.Epoch(0)
	for {
		tp, ok := next()
		if !ok {
			break
		}
		if seen[tp.ID] {
			t.Fatalf("tuple %d twice in one epoch", tp.ID)
		}
		seen[tp.ID] = true
	}
	if len(seen) != ds.Len() {
		t.Fatalf("epoch covered %d of %d tuples", len(seen), ds.Len())
	}
}

func TestSessionFacade(t *testing.T) {
	s := NewSession()
	if _, err := s.Exec(`CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.05)`); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(`SELECT * FROM t TRAIN BY svm MODEL m WITH max_epoch_num=2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestModelAndOptimizerConstructors(t *testing.T) {
	if _, err := NewModel("svm", 2); err != nil {
		t.Fatal(err)
	}
	if NewSGD(0.1) == nil || NewAdam(0.1) == nil {
		t.Fatal("optimizer constructors broken")
	}
}
