package sqlparse

import (
	"reflect"
	"strings"
	"testing"
)

func parseOne(t *testing.T, sql string) Statement {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

func TestParseCreateSynthetic(t *testing.T) {
	st := parseOne(t, `CREATE TABLE higgs AS SYNTHETIC(workload='higgs', scale=0.1, order='clustered') WITH device='hdd', block_size=10MB, compress=false;`)
	ct, ok := st.(*CreateTable)
	if !ok {
		t.Fatalf("wrong statement type %T", st)
	}
	if ct.Name != "higgs" {
		t.Fatalf("name = %q", ct.Name)
	}
	if ct.Synthetic.Str("workload", "") != "higgs" {
		t.Fatal("workload param lost")
	}
	if ct.Synthetic.Num("scale", 0) != 0.1 {
		t.Fatal("scale param lost")
	}
	if ct.With.Str("device", "") != "hdd" {
		t.Fatal("device param lost")
	}
	if got := ct.With.Num("block_size", 0); got != 10<<20 {
		t.Fatalf("block_size = %v, want %d", got, 10<<20)
	}
	if ct.With.Bool("compress", true) {
		t.Fatal("compress=false parsed wrong")
	}
}

func TestParseCreateFromFile(t *testing.T) {
	st := parseOne(t, `CREATE TABLE t FROM '/data/higgs.libsvm' WITH device='ssd'`)
	ct := st.(*CreateTable)
	if ct.SourceFile != "/data/higgs.libsvm" {
		t.Fatalf("source file = %q", ct.SourceFile)
	}
}

func TestParseTrain(t *testing.T) {
	st := parseOne(t, `SELECT * FROM higgs TRAIN BY svm MODEL m1 WITH learning_rate=0.1, max_epoch_num=20, buffer_fraction=0.1, shuffle='corgipile', batch_size=1;`)
	tr, ok := st.(*Train)
	if !ok {
		t.Fatalf("wrong type %T", st)
	}
	if tr.Table != "higgs" || tr.ModelType != "svm" || tr.ModelName != "m1" {
		t.Fatalf("train parsed wrong: %+v", tr)
	}
	if tr.Params.Num("learning_rate", 0) != 0.1 || tr.Params.Num("max_epoch_num", 0) != 20 {
		t.Fatal("params lost")
	}
	if tr.Params.Str("shuffle", "") != "corgipile" {
		t.Fatal("shuffle param lost")
	}
}

func TestParseTrainMinimal(t *testing.T) {
	st := parseOne(t, `SELECT * FROM t TRAIN BY lr`)
	tr := st.(*Train)
	if tr.ModelType != "lr" || tr.ModelName != "" || len(tr.Params) != 0 {
		t.Fatalf("minimal train parsed wrong: %+v", tr)
	}
}

func TestParsePredict(t *testing.T) {
	st := parseOne(t, `SELECT * FROM t PREDICT BY m1 LIMIT 10;`)
	pr := st.(*Predict)
	if pr.Table != "t" || pr.Model != "m1" || pr.Limit != 10 {
		t.Fatalf("predict parsed wrong: %+v", pr)
	}
}

func TestParseShowAndDrop(t *testing.T) {
	if parseOne(t, "SHOW TABLES").(*Show).What != "tables" {
		t.Fatal("show tables")
	}
	if parseOne(t, "show models;").(*Show).What != "models" {
		t.Fatal("show models")
	}
	d := parseOne(t, "DROP TABLE t1").(*Drop)
	if d.What != "table" || d.Name != "t1" {
		t.Fatal("drop table")
	}
	d = parseOne(t, "DROP MODEL m1;").(*Drop)
	if d.What != "model" || d.Name != "m1" {
		t.Fatal("drop model")
	}
}

func TestParseInsert(t *testing.T) {
	st := parseOne(t, `INSERT INTO t VALUES (1, 0.5, -2), (-1, 3.25, 4)`)
	ins, ok := st.(*Insert)
	if !ok {
		t.Fatalf("wrong type %T", st)
	}
	if ins.Table != "t" || len(ins.Rows) != 2 {
		t.Fatalf("insert parsed wrong: %+v", ins)
	}
	r0 := ins.Rows[0]
	if r0.Label != 1 || len(r0.Features) != 2 || r0.Features[0] != 0.5 || r0.Features[1] != -2 {
		t.Fatalf("row 0 = %+v", r0)
	}
	if ins.Rows[1].Label != -1 {
		t.Fatalf("row 1 = %+v", ins.Rows[1])
	}
}

func TestParseInsertErrors(t *testing.T) {
	for _, sql := range []string{
		`INSERT INTO t VALUES (1)`,          // no features
		`INSERT INTO t VALUES (1, 'x')`,     // non-numeric
		`INSERT INTO t VALUES ()`,           // empty row
		`INSERT INTO t VALUES (1, 2`,        // unclosed
		`INSERT t VALUES (1, 2)`,            // missing INTO
		`INSERT INTO t (1, 2)`,              // missing VALUES
		`INSERT INTO t VALUES (1, 2), (3,)`, // dangling comma
	} {
		if _, err := Parse(sql); err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestParseLoadInto(t *testing.T) {
	st := parseOne(t, `LOAD INTO t FROM '/data/extra.libsvm'`)
	lt, ok := st.(*LoadTable)
	if !ok {
		t.Fatalf("wrong type %T", st)
	}
	if lt.Table != "t" || lt.Path != "/data/extra.libsvm" {
		t.Fatalf("load into parsed wrong: %+v", lt)
	}
	// The LOAD MODEL form must still parse to the model statement.
	if _, ok := parseOne(t, `LOAD MODEL m FROM '/tmp/m.json'`).(*LoadModel); !ok {
		t.Fatal("LOAD MODEL no longer parses")
	}
	if _, err := Parse(`LOAD t FROM 'x'`); err == nil || !strings.Contains(err.Error(), "MODEL or INTO") {
		t.Fatalf("bad LOAD error: %v", err)
	}
}

func TestParseCheckpoint(t *testing.T) {
	if _, ok := parseOne(t, `CHECKPOINT`).(*Checkpoint); !ok {
		t.Fatal("CHECKPOINT did not parse")
	}
	if _, ok := parseOne(t, `checkpoint;`).(*Checkpoint); !ok {
		t.Fatal("lowercase checkpoint did not parse")
	}
	if _, err := Parse(`CHECKPOINT now`); err == nil {
		t.Fatal("trailing input after CHECKPOINT accepted")
	}
}

func TestParsePromote(t *testing.T) {
	if _, ok := parseOne(t, `PROMOTE`).(*Promote); !ok {
		t.Fatal("PROMOTE did not parse")
	}
	if _, ok := parseOne(t, `promote;`).(*Promote); !ok {
		t.Fatal("lowercase promote did not parse")
	}
	if _, err := Parse(`PROMOTE now`); err == nil {
		t.Fatal("trailing input after PROMOTE accepted")
	}
	if got := Render(&Promote{}); got != "PROMOTE" {
		t.Fatalf("Render(Promote) = %q", got)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	st := parseOne(t, `select * from T train by SVM with Learning_Rate=0.5`)
	tr := st.(*Train)
	if tr.ModelType != "svm" || tr.Params.Num("learning_rate", 0) != 0.5 {
		t.Fatalf("case-insensitive parse failed: %+v", tr)
	}
}

func TestParseComments(t *testing.T) {
	st := parseOne(t, "-- train a model\nSELECT * FROM t TRAIN BY svm")
	if _, ok := st.(*Train); !ok {
		t.Fatal("comment handling broken")
	}
}

func TestParseAllScript(t *testing.T) {
	script := `
		CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.05, order='clustered');
		SELECT * FROM t TRAIN BY svm MODEL m WITH max_epoch_num=2;
		SELECT * FROM t PREDICT BY m LIMIT 5;
	`
	stmts, err := ParseAll(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("parsed %d statements, want 3", len(stmts))
	}
}

func TestParseAllSemicolonInString(t *testing.T) {
	stmts, err := ParseAll(`CREATE TABLE t FROM 'a;b.libsvm'; SHOW TABLES;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("parsed %d statements, want 2", len(stmts))
	}
	if stmts[0].(*CreateTable).SourceFile != "a;b.libsvm" {
		t.Fatal("semicolon inside string mishandled")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT FROM t",
		"SELECT * FROM t TRAIN svm",
		"CREATE TABLE",
		"CREATE TABLE t AS SYNTHETIC workload='x'",
		"CREATE TABLE t AS SYNTHETIC(workload=)",
		"SELECT * FROM t PREDICT BY m LIMIT -3",
		"SHOW EVERYTHING",
		"DROP DATABASE x",
		"SELECT * FROM t TRAIN BY svm WITH lr=0.1 extra",
		"CREATE TABLE t FROM 'unterminated",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParseErrorMessagesMentionContext(t *testing.T) {
	_, err := Parse("SELECT * FROM t DANCE BY svm")
	if err == nil || !strings.Contains(err.Error(), "TRAIN") {
		t.Fatalf("error %v should mention TRAIN", err)
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"10MB": 10 << 20, "8KB": 8 << 10, "1GB": 1 << 30,
		"2M": 2 << 20, "512": 512, "1.5MB": 3 << 19,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	if _, err := ParseSize("abcMB"); err == nil {
		t.Error("ParseSize should reject garbage")
	}
}

func TestValueBool(t *testing.T) {
	if !(Value{Raw: "true"}).Bool() || (Value{Raw: "false"}).Bool() {
		t.Fatal("string bool")
	}
	if !(Value{Num: 1, IsNum: true}).Bool() || (Value{Num: 0, IsNum: true}).Bool() {
		t.Fatal("numeric bool")
	}
}

func TestParamDefaults(t *testing.T) {
	p := Params{}
	if p.Str("x", "d") != "d" || p.Num("x", 7) != 7 || p.Bool("x", true) != true {
		t.Fatal("defaults broken")
	}
}

func TestParseWherePredicate(t *testing.T) {
	cases := []struct {
		sql string
		col string
		op  string
		val float64
	}{
		{`SELECT * FROM t WHERE label = 1 TRAIN BY svm`, "label", "=", 1},
		{`SELECT * FROM t WHERE label = -1 TRAIN BY svm`, "label", "=", -1},
		{`SELECT * FROM t WHERE id < 100 PREDICT BY m`, "id", "<", 100},
		{`SELECT * FROM t WHERE id >= 50 PREDICT BY m`, "id", ">=", 50},
		{`SELECT * FROM t WHERE label != 0 TRAIN BY lr`, "label", "!=", 0},
		{`SELECT * FROM t WHERE id <= 7 TRAIN BY lr`, "id", "<=", 7},
		{`SELECT * FROM t WHERE id > 7 TRAIN BY lr`, "id", ">", 7},
	}
	for _, c := range cases {
		st, err := Parse(c.sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.sql, err)
		}
		var w *Predicate
		switch st := st.(type) {
		case *Train:
			w = st.Where
		case *Predict:
			w = st.Where
		}
		if w == nil || w.Column != c.col || w.Op != c.op || w.Value != c.val {
			t.Fatalf("%q parsed predicate %+v, want %s %s %v", c.sql, w, c.col, c.op, c.val)
		}
	}
}

func TestParseWhereErrors(t *testing.T) {
	bad := []string{
		`SELECT * FROM t WHERE features = 1 TRAIN BY svm`, // unsupported column
		`SELECT * FROM t WHERE label ~ 1 TRAIN BY svm`,    // bad operator
		`SELECT * FROM t WHERE label = 'x' TRAIN BY svm`,  // non-numeric value
		`SELECT * FROM t WHERE label ! 1 TRAIN BY svm`,    // lone !
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParseSelectGeneral(t *testing.T) {
	st := parseOne(t, `SELECT * FROM corgi_jobs`).(*Select)
	if st.Table != "corgi_jobs" || st.Columns != nil || st.Where != nil || st.OrderBy != "" || st.Limit != 0 {
		t.Fatalf("bare select parsed %+v", st)
	}

	st = parseOne(t, `SELECT id, State FROM corgi_jobs WHERE state = 'running' AND epoch > 3 ORDER BY Id DESC LIMIT 7;`).(*Select)
	if !reflect.DeepEqual(st.Columns, []string{"id", "state"}) {
		t.Fatalf("columns = %v", st.Columns)
	}
	if len(st.Where) != 2 {
		t.Fatalf("where = %+v", st.Where)
	}
	if c := st.Where[0]; c.Column != "state" || c.Op != "=" || c.Value.Raw != "running" || c.Value.IsNum {
		t.Fatalf("cond 0 = %+v", c)
	}
	if c := st.Where[1]; c.Column != "epoch" || c.Op != ">" || !c.Value.IsNum || c.Value.Num != 3 {
		t.Fatalf("cond 1 = %+v", c)
	}
	if st.OrderBy != "id" || !st.Desc || st.Limit != 7 {
		t.Fatalf("order/limit = %q desc=%v limit=%d", st.OrderBy, st.Desc, st.Limit)
	}

	st = parseOne(t, `SELECT * FROM corgi_metrics ORDER BY name ASC`).(*Select)
	if st.OrderBy != "name" || st.Desc {
		t.Fatalf("asc order parsed %+v", st)
	}
}

func TestParseSelectErrors(t *testing.T) {
	bad := []string{
		`SELECT * FROM corgi_jobs DANCE`,                     // trailing garbage
		`SELECT * FROM corgi_jobs ORDER name`,                // missing BY
		`SELECT * FROM corgi_jobs LIMIT -1`,                  // negative limit
		`SELECT * FROM corgi_jobs WHERE`,                     // empty where
		`SELECT * FROM corgi_jobs WHERE a = 1 AND`,           // dangling AND
		`SELECT a, FROM corgi_jobs`,                          // dangling comma
		`SELECT id FROM t TRAIN BY svm`,                      // projection into TRAIN
		`SELECT * FROM t WHERE a = 1 AND b = 2 TRAIN BY svm`, // multi-cond TRAIN
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}
