package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// Value is a parameter value: a string, a number, or a number with a size
// unit (10MB).
type Value struct {
	// Raw is the literal text as written.
	Raw string
	// Num is the numeric value when IsNum is set (size units resolved to
	// bytes).
	Num   float64
	IsNum bool
}

// String returns the raw text.
func (v Value) String() string { return v.Raw }

// Bool interprets the value as a boolean (true/false/1/0).
func (v Value) Bool() bool {
	if v.IsNum {
		return v.Num != 0
	}
	s := strings.ToLower(v.Raw)
	return s == "true" || s == "on" || s == "yes"
}

// Params is a named parameter list.
type Params map[string]Value

// Str returns the string parameter or def when absent.
func (p Params) Str(key, def string) string {
	if v, ok := p[key]; ok {
		return v.Raw
	}
	return def
}

// Num returns the numeric parameter or def when absent or non-numeric.
func (p Params) Num(key string, def float64) float64 {
	if v, ok := p[key]; ok && v.IsNum {
		return v.Num
	}
	return def
}

// Bool returns the boolean parameter or def when absent.
func (p Params) Bool(key string, def bool) bool {
	if v, ok := p[key]; ok {
		return v.Bool()
	}
	return def
}

// CreateTable is CREATE TABLE name AS SYNTHETIC(...) [WITH ...] or
// CREATE TABLE name FROM 'file' [WITH ...].
type CreateTable struct {
	Name string
	// Synthetic holds the generator parameters (nil for FROM-file form).
	Synthetic Params
	// SourceFile is the LIBSVM file path for the FROM form.
	SourceFile string
	// With holds storage options (device, block_size, compress, ...).
	With Params
}

func (*CreateTable) stmt() {}

// Predicate is a simple WHERE condition on the tuple columns "label" or
// "id": column op value, with op one of = != < <= > >=.
type Predicate struct {
	Column string // "label" or "id"
	Op     string
	Value  float64
}

// Train is SELECT * FROM table [WHERE pred] TRAIN BY model [MODEL name]
// [WITH params].
type Train struct {
	Table string
	// Where optionally filters the training tuples.
	Where *Predicate
	// ModelType is the learner: svm, lr, linreg, softmax, mlp.
	ModelType string
	// ModelName names the trained model in the catalog (defaults to a
	// generated name).
	ModelName string
	Params    Params
}

func (*Train) stmt() {}

// Predict is SELECT * FROM table [WHERE pred] PREDICT BY model [LIMIT n].
type Predict struct {
	Table string
	// Where optionally filters the scanned tuples.
	Where *Predicate
	Model string
	// Limit caps the returned rows; 0 means no limit.
	Limit int
}

func (*Predict) stmt() {}

// SelectCond is one conjunct of a general SELECT's WHERE clause: column
// op value, ANDed with its neighbours. Unlike Predicate, values may be
// strings (state = 'running') as well as numbers (lag_lsn > 0).
type SelectCond struct {
	Column string
	Op     string // = != < <= > >=
	Value  Value
}

// Select is a general projection over a base or system table — the
// introspection read path:
//
//	SELECT <cols|*> FROM table [WHERE c op v [AND ...]]
//	    [ORDER BY col [ASC|DESC]] [LIMIT n]
//
// A SELECT whose FROM clause is followed by TRAIN BY or PREDICT BY
// parses into *Train / *Predict instead (the paper's training dialect).
type Select struct {
	// Columns is the projection list; nil means * (all columns).
	Columns []string
	Table   string
	Where   []SelectCond
	// OrderBy optionally names a sort column ("" = table order).
	OrderBy string
	Desc    bool
	// Limit caps the returned rows; 0 means no limit.
	Limit int
}

func (*Select) stmt() {}

// Show is SHOW TABLES or SHOW MODELS.
type Show struct {
	// What is "tables" or "models".
	What string
}

func (*Show) stmt() {}

// Explain wraps a TRAIN query: EXPLAIN [ANALYZE] [FORMAT JSON|TEXT]
// SELECT * FROM t TRAIN BY ... — plain EXPLAIN prints the physical
// operator plan; EXPLAIN ANALYZE executes the statement (storing the
// model, exactly like the underlying TRAIN) and annotates each plan node
// with its measured runtime statistics.
type Explain struct {
	Train *Train
	// Analyze executes the plan and annotates it with actual statistics.
	Analyze bool
	// Format is "text" (default, also when empty) or "json".
	Format string
}

func (*Explain) stmt() {}

// Analyze is ANALYZE TABLE name [WITH params]: it estimates the table's
// block-variance factor h_D and per-tuple gradient variance at the given
// model's initial weights, and recommends a buffer size via the Theorem 1
// bound.
type Analyze struct {
	Table  string
	Params Params
}

func (*Analyze) stmt() {}

// SaveModel is SAVE MODEL name TO 'path': it serializes a trained model's
// weights and metadata to a JSON file.
type SaveModel struct {
	Name string
	Path string
}

func (*SaveModel) stmt() {}

// LoadModel is LOAD MODEL name FROM 'path': it restores a model saved with
// SAVE MODEL into the catalog under the given name.
type LoadModel struct {
	Name string
	Path string
}

func (*LoadModel) stmt() {}

// InsertRow is one VALUES row: a label followed by dense feature values.
// Tuple IDs are assigned by the table (sequential in storage order), the
// same scheme CREATE TABLE FROM uses.
type InsertRow struct {
	Label    float64
	Features []float64
}

// Insert is INSERT INTO table VALUES (label, f1, ...), (...): it appends
// tuples to a live table.
type Insert struct {
	Table string
	Rows  []InsertRow
}

func (*Insert) stmt() {}

// LoadTable is LOAD INTO table FROM 'path': it streams a LIBSVM file into
// an existing table, appending blocks (contrast CREATE TABLE ... FROM,
// which builds a new table).
type LoadTable struct {
	Table string
	Path  string
}

func (*LoadTable) stmt() {}

// Checkpoint is CHECKPOINT: it compacts the session's write-ahead log into
// a checkpoint file so recovery replays the checkpoint plus only the
// records logged after it.
type Checkpoint struct{}

func (*Checkpoint) stmt() {}

// Promote is PROMOTE: it turns a read-only replica session into a writable
// primary. On a non-replica it is an error at execution time.
type Promote struct{}

func (*Promote) stmt() {}

// Drop is DROP TABLE name or DROP MODEL name.
type Drop struct {
	// What is "table" or "model".
	What string
	Name string
}

func (*Drop) stmt() {}

// ParseSize converts a size literal such as "10MB", "8KB", "1GB" or a plain
// byte count into bytes.
func ParseSize(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30}, {"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30}, {"B", 1}} {
		if strings.HasSuffix(s, u.suffix) {
			s = strings.TrimSuffix(s, u.suffix)
			mult = u.mult
			break
		}
	}
	n, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("sqlparse: bad size %q: %w", s, err)
	}
	return int64(n * float64(mult)), nil
}
