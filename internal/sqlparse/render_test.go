package sqlparse

import (
	"reflect"
	"testing"
)

// Round-trip: Parse(Render(Parse(sql))) must equal Parse(sql) structurally.
func TestRenderRoundTrip(t *testing.T) {
	statements := []string{
		`CREATE TABLE t AS SYNTHETIC(workload='higgs', scale=0.5, order='clustered') WITH device='hdd', block_size=64KB`,
		`CREATE TABLE t FROM '/data/x.libsvm' WITH device='ssd'`,
		`SELECT * FROM t TRAIN BY svm MODEL m1 WITH learning_rate=0.1, max_epoch_num=20, shuffle='corgipile'`,
		`SELECT * FROM t WHERE label = -1 TRAIN BY lr`,
		`SELECT * FROM t WHERE id < 100 PREDICT BY m LIMIT 5`,
		`SELECT * FROM t PREDICT BY m`,
		`SHOW TABLES`,
		`SHOW MODELS`,
		`DROP TABLE t`,
		`DROP MODEL m`,
		`EXPLAIN SELECT * FROM t TRAIN BY svm WITH shuffle='no_shuffle'`,
		`EXPLAIN ANALYZE SELECT * FROM t TRAIN BY svm WITH max_epoch_num=2`,
		`EXPLAIN FORMAT JSON SELECT * FROM t TRAIN BY svm`,
		`EXPLAIN ANALYZE FORMAT JSON SELECT * FROM t WHERE id < 100 TRAIN BY lr MODEL m2`,
		`ANALYZE TABLE t WITH model='lr', tolerance=1.2`,
		`SAVE MODEL m TO '/tmp/m.json'`,
		`LOAD MODEL m FROM '/tmp/m.json'`,
		`INSERT INTO t VALUES (1, 0.5, -2.25)`,
		`INSERT INTO t VALUES (-1, 3), (1, 4.5), (0, 0)`,
		`LOAD INTO t FROM '/data/extra.libsvm'`,
		`CHECKPOINT`,
		`SELECT * FROM t TRAIN BY svm MODEL m2 WITH resume='m1', max_epoch_num=3`,
		`SELECT * FROM corgi_jobs`,
		`SELECT id, state FROM corgi_jobs WHERE state = 'running'`,
		`SELECT * FROM corgi_events WHERE trace_id = 's1-r2' AND type = 'job.done' ORDER BY seq DESC LIMIT 10`,
		`SELECT name, value FROM corgi_metrics WHERE value > 0 ORDER BY name`,
	}
	for _, sql := range statements {
		first, err := Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		rendered := Render(first)
		second, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(Render(%q)) = Parse(%q): %v", sql, rendered, err)
		}
		// Numeric literals canonicalize (64KB → 65536), so compare the
		// canonical renders: Render∘Parse must be idempotent.
		if again := Render(second); again != rendered {
			t.Fatalf("render not idempotent:\n  sql:      %s\n  rendered: %s\n  again:    %s", sql, rendered, again)
		}
		if !reflect.DeepEqual(stripRaw(first), stripRaw(second)) {
			t.Fatalf("round trip changed statement:\n  sql:      %s\n  rendered: %s\n  first:    %#v\n  second:   %#v",
				sql, rendered, first, second)
		}
	}
}

// stripRaw blanks the Raw field of numeric values so structural comparison
// uses the canonical numeric form.
func stripRaw(st Statement) Statement {
	norm := func(p Params) {
		for k, v := range p {
			if v.IsNum {
				v.Raw = ""
				p[k] = v
			}
		}
	}
	switch st := st.(type) {
	case *CreateTable:
		norm(st.Synthetic)
		norm(st.With)
	case *Train:
		norm(st.Params)
	case *Analyze:
		norm(st.Params)
	case *Explain:
		norm(st.Train.Params)
	}
	return st
}

func TestRenderDeterministicParamOrder(t *testing.T) {
	st := parseOne(t, `SELECT * FROM t TRAIN BY svm WITH b=2, a=1, c=3`)
	a := Render(st)
	b := Render(st)
	if a != b {
		t.Fatal("Render not deterministic")
	}
	if a != `SELECT * FROM t TRAIN BY svm WITH a=1, b=2, c=3` {
		t.Fatalf("Render = %q", a)
	}
}

func TestRenderUnknownStatement(t *testing.T) {
	if Render(nil) != "" {
		t.Fatal("nil statement should render empty")
	}
}
