// Package sqlparse implements the mini SQL dialect of the in-DB ML
// interface:
//
//	CREATE TABLE t AS SYNTHETIC(workload='higgs', scale=0.1, order='clustered')
//	    WITH device='hdd', block_size=10MB;
//	SELECT * FROM t [WHERE label = 1] TRAIN BY svm MODEL m1
//	    WITH learning_rate=0.1, max_epoch_num=20, shuffle='corgipile';
//	SELECT * FROM t PREDICT BY m1 LIMIT 10;
//	SHOW TABLES; SHOW MODELS; DROP TABLE t; DROP MODEL m1;
//
// The TRAIN BY / PREDICT BY forms follow the paper's Section 6 query
// templates.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokWord
	tokNumber  // 123, 1.5, -2
	tokUnitNum // 10MB, 8KB — number with an immediately attached unit
	tokString  // 'quoted' or "quoted"
	tokPunct   // ( ) , = * ;
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits input into tokens. Keywords are not distinguished from
// identifiers at this stage; the parser matches them case-insensitively.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(input) && input[i+1] == '-':
			// SQL line comment.
			for i < len(input) && input[i] != '\n' {
				i++
			}
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < len(input) && input[j] != quote {
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("sqlparse: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, input[i+1 : j], i})
			i = j + 1
		case isDigit(c) || (c == '-' && i+1 < len(input) && isDigit(input[i+1])):
			j := i + 1
			for j < len(input) && (isDigit(input[j]) || input[j] == '.') {
				j++
			}
			kind := tokNumber
			// A unit suffix attached with no space (10MB) merges in.
			for j < len(input) && isLetter(input[j]) {
				kind = tokUnitNum
				j++
			}
			toks = append(toks, token{kind, input[i:j], i})
			i = j
		case isLetter(c) || c == '_':
			j := i + 1
			for j < len(input) && (isLetter(input[j]) || isDigit(input[j]) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{tokWord, input[i:j], i})
			i = j
		case strings.IndexByte("(),=*;.<>!", c) >= 0:
			toks = append(toks, token{tokPunct, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return unicode.IsLetter(rune(c)) }
