package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SQL statement (a trailing semicolon is optional).
func Parse(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("sqlparse: trailing input at %s", p.peek())
	}
	return st, nil
}

// ParseAll parses a semicolon-separated script into statements.
func ParseAll(input string) ([]Statement, error) {
	var stmts []Statement
	for _, part := range splitStatements(input) {
		if strings.TrimSpace(part) == "" {
			continue
		}
		st, err := Parse(part)
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, st)
	}
	return stmts, nil
}

// splitStatements splits on semicolons outside quotes.
func splitStatements(input string) []string {
	var parts []string
	var quote byte
	start := 0
	for i := 0; i < len(input); i++ {
		c := input[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ';':
			parts = append(parts, input[start:i])
			start = i + 1
		}
	}
	parts = append(parts, input[start:])
	return parts
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token matches kind and (case-insensitive)
// text; empty text matches any.
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	if t.kind != kind {
		return false
	}
	return text == "" || strings.EqualFold(t.text, text)
}

// accept consumes the current token if it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

// expect consumes a matching token or fails.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[tokenKind]string{tokWord: "identifier", tokNumber: "number", tokString: "string"}[kind]
	}
	return token{}, fmt.Errorf("sqlparse: expected %s, got %s", want, p.peek())
}

// keyword consumes a case-insensitive keyword word.
func (p *parser) keyword(word string) error {
	if p.accept(tokWord, word) {
		return nil
	}
	return fmt.Errorf("sqlparse: expected %s, got %s", strings.ToUpper(word), p.peek())
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.at(tokWord, "create"):
		return p.createTable()
	case p.at(tokWord, "select"):
		return p.selectStmt()
	case p.at(tokWord, "show"):
		return p.showStmt()
	case p.at(tokWord, "drop"):
		return p.dropStmt()
	case p.at(tokWord, "explain"):
		return p.explainStmt()
	case p.at(tokWord, "analyze"):
		return p.analyzeStmt()
	case p.at(tokWord, "save"):
		return p.saveStmt()
	case p.at(tokWord, "load"):
		return p.loadStmt()
	case p.at(tokWord, "insert"):
		return p.insertStmt()
	case p.at(tokWord, "checkpoint"):
		p.next()
		return &Checkpoint{}, nil
	case p.at(tokWord, "promote"):
		p.next()
		return &Promote{}, nil
	}
	return nil, fmt.Errorf("sqlparse: expected CREATE, SELECT, INSERT, SHOW, DROP, EXPLAIN, ANALYZE, SAVE, LOAD, CHECKPOINT or PROMOTE, got %s", p.peek())
}

func (p *parser) createTable() (Statement, error) {
	p.next() // CREATE
	if err := p.keyword("table"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokWord, "")
	if err != nil {
		return nil, err
	}
	st := &CreateTable{Name: name.text}
	switch {
	case p.accept(tokWord, "as"):
		if err := p.keyword("synthetic"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		st.Synthetic, err = p.paramList(true)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
	case p.accept(tokWord, "from"):
		f, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		st.SourceFile = f.text
	default:
		return nil, fmt.Errorf("sqlparse: expected AS SYNTHETIC(...) or FROM 'file', got %s", p.peek())
	}
	if p.accept(tokWord, "with") {
		st.With, err = p.paramList(false)
		if err != nil {
			return nil, err
		}
	}
	if st.With == nil {
		st.With = Params{}
	}
	return st, nil
}

func (p *parser) selectStmt() (Statement, error) {
	p.next() // SELECT
	cols, err := p.selectColumns()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("from"); err != nil {
		return nil, err
	}
	table, err := p.expect(tokWord, "")
	if err != nil {
		return nil, err
	}
	var conds []SelectCond
	if p.accept(tokWord, "where") {
		conds, err = p.selectConds()
		if err != nil {
			return nil, err
		}
	}
	switch {
	case p.accept(tokWord, "train"):
		if err := p.keyword("by"); err != nil {
			return nil, err
		}
		modelType, err := p.expect(tokWord, "")
		if err != nil {
			return nil, err
		}
		where, err := trainPredicate(cols, conds)
		if err != nil {
			return nil, err
		}
		st := &Train{Table: table.text, Where: where, ModelType: strings.ToLower(modelType.text), Params: Params{}}
		if p.accept(tokWord, "model") {
			name, err := p.expect(tokWord, "")
			if err != nil {
				return nil, err
			}
			st.ModelName = name.text
		}
		if p.accept(tokWord, "with") {
			st.Params, err = p.paramList(false)
			if err != nil {
				return nil, err
			}
		}
		return st, nil
	case p.accept(tokWord, "predict"):
		if err := p.keyword("by"); err != nil {
			return nil, err
		}
		model, err := p.expect(tokWord, "")
		if err != nil {
			return nil, err
		}
		where, err := trainPredicate(cols, conds)
		if err != nil {
			return nil, err
		}
		st := &Predict{Table: table.text, Where: where, Model: model.text}
		if p.accept(tokWord, "limit") {
			st.Limit, err = p.limit()
			if err != nil {
				return nil, err
			}
		}
		return st, nil
	}
	// No TRAIN/PREDICT suffix: a general SELECT over a base or system
	// table, with optional ORDER BY and LIMIT.
	st := &Select{Columns: cols, Table: table.text, Where: conds}
	if p.accept(tokWord, "order") {
		if err := p.keyword("by"); err != nil {
			return nil, err
		}
		col, err := p.expect(tokWord, "")
		if err != nil {
			return nil, err
		}
		st.OrderBy = strings.ToLower(col.text)
		if p.accept(tokWord, "desc") {
			st.Desc = true
		} else {
			p.accept(tokWord, "asc")
		}
	}
	if p.accept(tokWord, "limit") {
		if st.Limit, err = p.limit(); err != nil {
			return nil, err
		}
	}
	if !p.at(tokEOF, "") && !p.at(tokPunct, ";") {
		return nil, fmt.Errorf("sqlparse: expected TRAIN BY, PREDICT BY, WHERE, ORDER BY, LIMIT or end of statement, got %s", p.peek())
	}
	return st, nil
}

// selectColumns parses the projection list: * or ident[, ident...].
func (p *parser) selectColumns() ([]string, error) {
	if p.accept(tokPunct, "*") {
		return nil, nil
	}
	var cols []string
	for {
		c, err := p.expect(tokWord, "")
		if err != nil {
			return nil, err
		}
		cols = append(cols, strings.ToLower(c.text))
		if !p.accept(tokPunct, ",") {
			return cols, nil
		}
	}
}

// selectConds parses "col op value [AND col op value ...]" with string
// or numeric values.
func (p *parser) selectConds() ([]SelectCond, error) {
	var conds []SelectCond
	for {
		col, err := p.expect(tokWord, "")
		if err != nil {
			return nil, err
		}
		op, err := p.comparison()
		if err != nil {
			return nil, err
		}
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		conds = append(conds, SelectCond{Column: strings.ToLower(col.text), Op: op, Value: v})
		if !p.accept(tokWord, "and") {
			return conds, nil
		}
	}
}

// limit parses the LIMIT argument (the keyword is already consumed).
func (p *parser) limit() (int, error) {
	n, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	limit, err := strconv.Atoi(n.text)
	if err != nil || limit < 0 {
		return 0, fmt.Errorf("sqlparse: bad LIMIT %q", n.text)
	}
	return limit, nil
}

// trainPredicate narrows a general WHERE clause to the single numeric
// label/id predicate the TRAIN BY / PREDICT BY scan path supports, and
// rejects projections (the training dialect is SELECT * only).
func trainPredicate(cols []string, conds []SelectCond) (*Predicate, error) {
	if len(cols) > 0 {
		return nil, fmt.Errorf("sqlparse: TRAIN/PREDICT requires SELECT *, got a column list")
	}
	if len(conds) == 0 {
		return nil, nil
	}
	if len(conds) > 1 {
		return nil, fmt.Errorf("sqlparse: TRAIN/PREDICT WHERE supports a single condition")
	}
	c := conds[0]
	if c.Column != "label" && c.Column != "id" {
		return nil, fmt.Errorf("sqlparse: WHERE supports columns label and id, got %q", c.Column)
	}
	if !c.Value.IsNum {
		return nil, fmt.Errorf("sqlparse: WHERE needs a numeric value, got %q", c.Value.Raw)
	}
	return &Predicate{Column: c.Column, Op: c.Op, Value: c.Value.Num}, nil
}

func (p *parser) showStmt() (Statement, error) {
	p.next() // SHOW
	switch {
	case p.accept(tokWord, "tables"):
		return &Show{What: "tables"}, nil
	case p.accept(tokWord, "models"):
		return &Show{What: "models"}, nil
	}
	return nil, fmt.Errorf("sqlparse: expected TABLES or MODELS, got %s", p.peek())
}

func (p *parser) dropStmt() (Statement, error) {
	p.next() // DROP
	var what string
	switch {
	case p.accept(tokWord, "table"):
		what = "table"
	case p.accept(tokWord, "model"):
		what = "model"
	default:
		return nil, fmt.Errorf("sqlparse: expected TABLE or MODEL, got %s", p.peek())
	}
	name, err := p.expect(tokWord, "")
	if err != nil {
		return nil, err
	}
	return &Drop{What: what, Name: name.text}, nil
}

// comparison parses one of = != < <= > >=.
func (p *parser) comparison() (string, error) {
	switch {
	case p.accept(tokPunct, "="):
		return "=", nil
	case p.accept(tokPunct, "!"):
		if _, err := p.expect(tokPunct, "="); err != nil {
			return "", err
		}
		return "!=", nil
	case p.accept(tokPunct, "<"):
		if p.accept(tokPunct, "=") {
			return "<=", nil
		}
		return "<", nil
	case p.accept(tokPunct, ">"):
		if p.accept(tokPunct, "=") {
			return ">=", nil
		}
		return ">", nil
	}
	return "", fmt.Errorf("sqlparse: expected a comparison operator, got %s", p.peek())
}

func (p *parser) explainStmt() (Statement, error) {
	p.next() // EXPLAIN
	ex := &Explain{}
	ex.Analyze = p.accept(tokWord, "analyze")
	if p.accept(tokWord, "format") {
		f, err := p.expect(tokWord, "")
		if err != nil {
			return nil, err
		}
		switch strings.ToLower(f.text) {
		case "json", "text":
			ex.Format = strings.ToLower(f.text)
		default:
			return nil, fmt.Errorf("sqlparse: EXPLAIN FORMAT wants JSON or TEXT, got %q", f.text)
		}
	}
	st, err := p.selectStmtAfterKeyword()
	if err != nil {
		return nil, err
	}
	tr, ok := st.(*Train)
	if !ok {
		return nil, fmt.Errorf("sqlparse: EXPLAIN supports only TRAIN BY queries")
	}
	ex.Train = tr
	return ex, nil
}

// selectStmtAfterKeyword parses a SELECT statement including its keyword.
func (p *parser) selectStmtAfterKeyword() (Statement, error) {
	if !p.at(tokWord, "select") {
		return nil, fmt.Errorf("sqlparse: expected SELECT, got %s", p.peek())
	}
	return p.selectStmt()
}

func (p *parser) saveStmt() (Statement, error) {
	p.next() // SAVE
	if err := p.keyword("model"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokWord, "")
	if err != nil {
		return nil, err
	}
	if err := p.keyword("to"); err != nil {
		return nil, err
	}
	path, err := p.expect(tokString, "")
	if err != nil {
		return nil, err
	}
	return &SaveModel{Name: name.text, Path: path.text}, nil
}

func (p *parser) loadStmt() (Statement, error) {
	p.next() // LOAD
	intoTable := false
	switch {
	case p.accept(tokWord, "model"):
	case p.accept(tokWord, "into"):
		intoTable = true
	default:
		return nil, fmt.Errorf("sqlparse: expected MODEL or INTO after LOAD, got %s", p.peek())
	}
	name, err := p.expect(tokWord, "")
	if err != nil {
		return nil, err
	}
	if err := p.keyword("from"); err != nil {
		return nil, err
	}
	path, err := p.expect(tokString, "")
	if err != nil {
		return nil, err
	}
	if intoTable {
		return &LoadTable{Table: name.text, Path: path.text}, nil
	}
	return &LoadModel{Name: name.text, Path: path.text}, nil
}

// insertStmt parses INSERT INTO table VALUES (label, f1, ...), (...).
func (p *parser) insertStmt() (Statement, error) {
	p.next() // INSERT
	if err := p.keyword("into"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokWord, "")
	if err != nil {
		return nil, err
	}
	if err := p.keyword("values"); err != nil {
		return nil, err
	}
	st := &Insert{Table: name.text}
	for {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var row InsertRow
		first := true
		for {
			v, err := p.value()
			if err != nil {
				return nil, err
			}
			if !v.IsNum {
				return nil, fmt.Errorf("sqlparse: INSERT values must be numeric, got %q", v.Raw)
			}
			if first {
				row.Label = v.Num
				first = false
			} else {
				row.Features = append(row.Features, v.Num)
			}
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		if len(row.Features) == 0 {
			return nil, fmt.Errorf("sqlparse: INSERT row needs a label and at least one feature")
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	return st, nil
}

func (p *parser) analyzeStmt() (Statement, error) {
	p.next() // ANALYZE
	if err := p.keyword("table"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokWord, "")
	if err != nil {
		return nil, err
	}
	st := &Analyze{Table: name.text, Params: Params{}}
	if p.accept(tokWord, "with") {
		st.Params, err = p.paramList(false)
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// paramList parses ident = value [, ident = value]*. With insideParens set
// it stops at ')'; otherwise it stops at end of statement keywords.
func (p *parser) paramList(insideParens bool) (Params, error) {
	params := Params{}
	for {
		key, err := p.expect(tokWord, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		val, err := p.value()
		if err != nil {
			return nil, err
		}
		params[strings.ToLower(key.text)] = val
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	_ = insideParens
	return params, nil
}

// value parses a parameter value: string, number, size literal, or bare
// word.
func (p *parser) value() (Value, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		p.next()
		return Value{Raw: t.text}, nil
	case tokNumber:
		p.next()
		n, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Value{}, fmt.Errorf("sqlparse: bad number %q", t.text)
		}
		return Value{Raw: t.text, Num: n, IsNum: true}, nil
	case tokUnitNum:
		p.next()
		n, err := ParseSize(t.text)
		if err != nil {
			return Value{}, err
		}
		return Value{Raw: t.text, Num: float64(n), IsNum: true}, nil
	case tokWord:
		p.next()
		return Value{Raw: t.text}, nil
	}
	return Value{}, fmt.Errorf("sqlparse: expected a value, got %s", t)
}
