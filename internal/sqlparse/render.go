package sqlparse

import (
	"fmt"
	"sort"
	"strings"
)

// Render converts a parsed statement back to SQL text. Parse(Render(st))
// yields an equivalent statement, which the round-trip property test
// verifies; it is used by tools that log or persist statements.
func Render(st Statement) string {
	switch st := st.(type) {
	case *CreateTable:
		var b strings.Builder
		fmt.Fprintf(&b, "CREATE TABLE %s", st.Name)
		if st.SourceFile != "" {
			fmt.Fprintf(&b, " FROM '%s'", st.SourceFile)
		} else {
			fmt.Fprintf(&b, " AS SYNTHETIC(%s)", renderParams(st.Synthetic))
		}
		if len(st.With) > 0 {
			fmt.Fprintf(&b, " WITH %s", renderParams(st.With))
		}
		return b.String()
	case *Train:
		var b strings.Builder
		fmt.Fprintf(&b, "SELECT * FROM %s%s TRAIN BY %s", st.Table, renderWhere(st.Where), st.ModelType)
		if st.ModelName != "" {
			fmt.Fprintf(&b, " MODEL %s", st.ModelName)
		}
		if len(st.Params) > 0 {
			fmt.Fprintf(&b, " WITH %s", renderParams(st.Params))
		}
		return b.String()
	case *Predict:
		var b strings.Builder
		fmt.Fprintf(&b, "SELECT * FROM %s%s PREDICT BY %s", st.Table, renderWhere(st.Where), st.Model)
		if st.Limit > 0 {
			fmt.Fprintf(&b, " LIMIT %d", st.Limit)
		}
		return b.String()
	case *Select:
		var b strings.Builder
		cols := "*"
		if len(st.Columns) > 0 {
			cols = strings.Join(st.Columns, ", ")
		}
		fmt.Fprintf(&b, "SELECT %s FROM %s", cols, st.Table)
		for i, c := range st.Where {
			if i == 0 {
				b.WriteString(" WHERE ")
			} else {
				b.WriteString(" AND ")
			}
			if c.Value.IsNum {
				fmt.Fprintf(&b, "%s %s %s", c.Column, c.Op, c.Value.Raw)
			} else {
				fmt.Fprintf(&b, "%s %s '%s'", c.Column, c.Op, c.Value.Raw)
			}
		}
		if st.OrderBy != "" {
			fmt.Fprintf(&b, " ORDER BY %s", st.OrderBy)
			if st.Desc {
				b.WriteString(" DESC")
			}
		}
		if st.Limit > 0 {
			fmt.Fprintf(&b, " LIMIT %d", st.Limit)
		}
		return b.String()
	case *Show:
		return "SHOW " + strings.ToUpper(st.What)
	case *Drop:
		return fmt.Sprintf("DROP %s %s", strings.ToUpper(st.What), st.Name)
	case *Explain:
		out := "EXPLAIN "
		if st.Analyze {
			out += "ANALYZE "
		}
		if st.Format != "" {
			out += "FORMAT " + strings.ToUpper(st.Format) + " "
		}
		return out + Render(st.Train)
	case *Analyze:
		out := "ANALYZE TABLE " + st.Table
		if len(st.Params) > 0 {
			out += " WITH " + renderParams(st.Params)
		}
		return out
	case *SaveModel:
		return fmt.Sprintf("SAVE MODEL %s TO '%s'", st.Name, st.Path)
	case *LoadModel:
		return fmt.Sprintf("LOAD MODEL %s FROM '%s'", st.Name, st.Path)
	case *Insert:
		var b strings.Builder
		fmt.Fprintf(&b, "INSERT INTO %s VALUES ", st.Table)
		for i, row := range st.Rows {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%g", row.Label)
			for _, f := range row.Features {
				fmt.Fprintf(&b, ", %g", f)
			}
			b.WriteString(")")
		}
		return b.String()
	case *LoadTable:
		return fmt.Sprintf("LOAD INTO %s FROM '%s'", st.Table, st.Path)
	case *Checkpoint:
		return "CHECKPOINT"
	case *Promote:
		return "PROMOTE"
	}
	return ""
}

func renderWhere(p *Predicate) string {
	if p == nil {
		return ""
	}
	return fmt.Sprintf(" WHERE %s %s %g", p.Column, p.Op, p.Value)
}

// renderParams emits key=value pairs in sorted key order for determinism.
func renderParams(p Params) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		v := p[k]
		if v.IsNum {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v.Num))
		} else {
			parts = append(parts, fmt.Sprintf("%s='%s'", k, v.Raw))
		}
	}
	return strings.Join(parts, ", ")
}
