package data

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadLIBSVMBasic(t *testing.T) {
	in := strings.NewReader("+1 1:0.5 3:2\n-1 2:1\n")
	ds, err := ReadLIBSVM(in, "tiny", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 {
		t.Fatalf("len = %d, want 2", ds.Len())
	}
	if ds.Features != 3 {
		t.Fatalf("inferred features = %d, want 3", ds.Features)
	}
	t0 := ds.At(0)
	if t0.Label != 1 || len(t0.SparseIdx) != 2 || t0.SparseIdx[0] != 0 || t0.SparseIdx[1] != 2 {
		t.Fatalf("tuple 0 parsed wrong: %+v", t0)
	}
	if t0.SparseVal[0] != 0.5 || t0.SparseVal[1] != 2 {
		t.Fatalf("tuple 0 values wrong: %v", t0.SparseVal)
	}
}

func TestReadLIBSVMSkipsCommentsAndBlank(t *testing.T) {
	in := strings.NewReader("# header\n\n+1 1:1\n")
	ds, err := ReadLIBSVM(in, "c", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 1 {
		t.Fatalf("len = %d, want 1", ds.Len())
	}
}

func TestReadLIBSVMFixedFeatures(t *testing.T) {
	ds, err := ReadLIBSVM(strings.NewReader("+1 1:1\n"), "f", 100)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Features != 100 {
		t.Fatalf("features = %d, want 100", ds.Features)
	}
}

func TestReadLIBSVMUnsortedIndices(t *testing.T) {
	ds, err := ReadLIBSVM(strings.NewReader("-1 5:5 2:2 9:9\n"), "u", 0)
	if err != nil {
		t.Fatal(err)
	}
	idx := ds.At(0).SparseIdx
	if idx[0] != 1 || idx[1] != 4 || idx[2] != 8 {
		t.Fatalf("indices not sorted: %v", idx)
	}
	val := ds.At(0).SparseVal
	if val[0] != 2 || val[1] != 5 || val[2] != 9 {
		t.Fatalf("values not reordered with indices: %v", val)
	}
}

func TestReadLIBSVMMulticlassDetected(t *testing.T) {
	ds, err := ReadLIBSVM(strings.NewReader("0 1:1\n1 1:1\n2 1:1\n"), "mc", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Task != TaskMulticlass || ds.Classes != 3 {
		t.Fatalf("task=%v classes=%d, want multiclass/3", ds.Task, ds.Classes)
	}
}

func TestReadLIBSVMErrors(t *testing.T) {
	cases := []string{
		"abc 1:1\n",  // bad label
		"+1 x:1\n",   // bad index
		"+1 0:1\n",   // index < 1
		"+1 1:abc\n", // bad value
		"+1 11\n",    // missing colon
	}
	for _, c := range cases {
		if _, err := ReadLIBSVM(strings.NewReader(c), "bad", 0); err == nil {
			t.Errorf("input %q: expected error", c)
		}
	}
}

func TestLIBSVMRoundTripSparse(t *testing.T) {
	orig := SyntheticBinary(SyntheticConfig{
		Tuples: 50, Features: 100, Sparse: true, NNZ: 8, Order: OrderClustered, Seed: 9})
	var buf bytes.Buffer
	if err := WriteLIBSVM(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLIBSVM(&buf, "rt", orig.Features)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("round trip len = %d, want %d", got.Len(), orig.Len())
	}
	for i := range orig.Tuples {
		a, b := orig.At(i), got.At(i)
		if a.Label != b.Label || a.NNZ() != b.NNZ() {
			t.Fatalf("tuple %d mismatch: %v vs %v", i, a, b)
		}
		for j := range a.SparseIdx {
			if a.SparseIdx[j] != b.SparseIdx[j] || a.SparseVal[j] != b.SparseVal[j] {
				t.Fatalf("tuple %d feature %d mismatch", i, j)
			}
		}
	}
}

func TestWriteLIBSVMDenseSkipsZeros(t *testing.T) {
	ds := &Dataset{Features: 3}
	ds.Tuples = []Tuple{{Label: 1, Dense: []float64{1, 0, 3}}}
	var buf bytes.Buffer
	if err := WriteLIBSVM(&buf, ds); err != nil {
		t.Fatal(err)
	}
	if got, want := strings.TrimSpace(buf.String()), "1 1:1 3:3"; got != want {
		t.Fatalf("output = %q, want %q", got, want)
	}
}
