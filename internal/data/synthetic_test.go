package data

import (
	"math"
	"testing"
)

func TestSyntheticBinaryShape(t *testing.T) {
	ds := SyntheticBinary(SyntheticConfig{Tuples: 500, Features: 10, Order: OrderClustered, Seed: 1})
	if ds.Len() != 500 || ds.Features != 10 || ds.Task != TaskBinary {
		t.Fatalf("shape wrong: len=%d features=%d task=%v", ds.Len(), ds.Features, ds.Task)
	}
	counts := ds.LabelCounts()
	if counts[-1] != 250 || counts[1] != 250 {
		t.Fatalf("label balance = %v, want 250/250", counts)
	}
}

func TestSyntheticBinaryClusteredOrder(t *testing.T) {
	ds := SyntheticBinary(SyntheticConfig{Tuples: 100, Features: 4, Order: OrderClustered, Seed: 2})
	for i := 0; i < 50; i++ {
		if ds.Tuples[i].Label != -1 {
			t.Fatalf("tuple %d label = %v, want -1 (clustered)", i, ds.Tuples[i].Label)
		}
	}
	for i := 50; i < 100; i++ {
		if ds.Tuples[i].Label != 1 {
			t.Fatalf("tuple %d label = %v, want +1 (clustered)", i, ds.Tuples[i].Label)
		}
	}
}

func TestSyntheticBinaryShuffledOrderMixesLabels(t *testing.T) {
	ds := SyntheticBinary(SyntheticConfig{Tuples: 1000, Features: 4, Order: OrderShuffled, Seed: 3})
	// In the first 100 tuples both labels must appear.
	var neg, pos int
	for i := 0; i < 100; i++ {
		if ds.Tuples[i].Label < 0 {
			neg++
		} else {
			pos++
		}
	}
	if neg == 0 || pos == 0 {
		t.Fatalf("shuffled prefix is single-class: %d/%d", neg, pos)
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	cfg := SyntheticConfig{Tuples: 200, Features: 8, Order: OrderClustered, Seed: 42}
	a, b := SyntheticBinary(cfg), SyntheticBinary(cfg)
	for i := range a.Tuples {
		for j := range a.Tuples[i].Dense {
			if a.Tuples[i].Dense[j] != b.Tuples[i].Dense[j] {
				t.Fatal("same-seed generation differs")
			}
		}
	}
}

func TestSyntheticSparse(t *testing.T) {
	ds := SyntheticBinary(SyntheticConfig{
		Tuples: 100, Features: 1000, Sparse: true, NNZ: 16, Order: OrderClustered, Seed: 4})
	for i := range ds.Tuples {
		tp := &ds.Tuples[i]
		if !tp.IsSparse() {
			t.Fatal("expected sparse tuples")
		}
		if tp.NNZ() != 16 {
			t.Fatalf("NNZ = %d, want 16", tp.NNZ())
		}
		for j := 1; j < len(tp.SparseIdx); j++ {
			if tp.SparseIdx[j] <= tp.SparseIdx[j-1] {
				t.Fatal("sparse indices not strictly increasing")
			}
		}
	}
}

func TestSyntheticMulticlass(t *testing.T) {
	ds := SyntheticMulticlass(SyntheticConfig{
		Tuples: 300, Features: 16, Classes: 3, Order: OrderClustered, Seed: 5})
	if ds.Classes != 3 || ds.Task != TaskMulticlass {
		t.Fatalf("classes=%d task=%v", ds.Classes, ds.Task)
	}
	counts := ds.LabelCounts()
	for k := 0.0; k < 3; k++ {
		if counts[k] != 100 {
			t.Fatalf("class %v count = %d, want 100", k, counts[k])
		}
	}
	// Clustered: class index non-decreasing.
	for i := 1; i < ds.Len(); i++ {
		if ds.Tuples[i].Label < ds.Tuples[i-1].Label {
			t.Fatal("multiclass clustered order broken")
		}
	}
}

func TestSyntheticRegression(t *testing.T) {
	ds := SyntheticRegression(SyntheticConfig{Tuples: 200, Features: 5, Noise: 0.1, Order: OrderClustered, Seed: 6})
	if ds.Task != TaskRegression {
		t.Fatalf("task = %v", ds.Task)
	}
	for i := 1; i < ds.Len(); i++ {
		if ds.Tuples[i].Label < ds.Tuples[i-1].Label {
			t.Fatal("regression clustered order should sort by target")
		}
	}
	// Targets must not be constant.
	if ds.Tuples[0].Label == ds.Tuples[ds.Len()-1].Label {
		t.Fatal("regression targets constant")
	}
}

func TestSyntheticFeatureOrder(t *testing.T) {
	ds := SyntheticBinary(SyntheticConfig{
		Tuples: 100, Features: 6, Order: OrderFeature, OrderFeatureIdx: 2, Seed: 7})
	for i := 1; i < ds.Len(); i++ {
		if ds.Tuples[i].Dense[2] < ds.Tuples[i-1].Dense[2] {
			t.Fatal("feature 2 not sorted")
		}
	}
}

func TestSyntheticSeparationControlsDistance(t *testing.T) {
	near := SyntheticBinary(SyntheticConfig{Tuples: 400, Features: 10, Separation: 0.5, Order: OrderClustered, Seed: 8})
	far := SyntheticBinary(SyntheticConfig{Tuples: 400, Features: 10, Separation: 8, Order: OrderClustered, Seed: 8})
	dist := func(ds *Dataset) float64 {
		mean := func(lo, hi int) []float64 {
			m := make([]float64, ds.Features)
			for i := lo; i < hi; i++ {
				for j, v := range ds.Tuples[i].Dense {
					m[j] += v
				}
			}
			for j := range m {
				m[j] /= float64(hi - lo)
			}
			return m
		}
		a, b := mean(0, 200), mean(200, 400)
		var d float64
		for j := range a {
			d += (a[j] - b[j]) * (a[j] - b[j])
		}
		return math.Sqrt(d)
	}
	if dist(far) <= dist(near) {
		t.Fatal("larger Separation should move class means apart")
	}
}

func TestGenerateWorkloads(t *testing.T) {
	for name := range Workloads {
		ds := Generate(name, 0.02, OrderClustered)
		if ds.Len() < 50 {
			t.Errorf("%s: too few tuples (%d)", name, ds.Len())
		}
		if ds.Name == "" || ds.Features <= 0 {
			t.Errorf("%s: bad metadata %q/%d", name, ds.Name, ds.Features)
		}
	}
}

func TestGenerateUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate with unknown name should panic")
		}
	}()
	Generate("no-such-dataset", 1, OrderClustered)
}

func TestGLMDatasetsRegistered(t *testing.T) {
	for _, name := range GLMDatasets {
		if _, ok := Workloads[name]; !ok {
			t.Fatalf("GLM dataset %q not in Workloads", name)
		}
	}
}

func TestSyntheticDriftShape(t *testing.T) {
	ds := SyntheticDrift(SyntheticConfig{Tuples: 1000, Features: 10, Separation: 2, Order: OrderClustered, Seed: 20})
	if ds.Len() != 1000 || ds.Task != TaskBinary {
		t.Fatalf("shape wrong: %d/%v", ds.Len(), ds.Task)
	}
	counts := ds.LabelCounts()
	if counts[-1] < 400 || counts[1] < 400 {
		t.Fatalf("labels unbalanced: %v", counts)
	}
}

func TestSyntheticDriftRotatesBoundary(t *testing.T) {
	// The early and late class-mean directions must differ: measure the
	// mean positive-class vector of the first and last 10%.
	ds := SyntheticDrift(SyntheticConfig{Tuples: 5000, Features: 8, Separation: 3, Noise: 0.5, Order: OrderClustered, Seed: 21})
	meanPos := func(lo, hi int) []float64 {
		m := make([]float64, ds.Features)
		n := 0
		for i := lo; i < hi; i++ {
			if ds.Tuples[i].Label > 0 {
				for j, v := range ds.Tuples[i].Dense {
					m[j] += v
				}
				n++
			}
		}
		for j := range m {
			m[j] /= float64(n)
		}
		return m
	}
	early, late := meanPos(0, 500), meanPos(4500, 5000)
	var dot, ne, nl float64
	for j := range early {
		dot += early[j] * late[j]
		ne += early[j] * early[j]
		nl += late[j] * late[j]
	}
	cos := dot / math.Sqrt(ne*nl)
	if cos > 0.95 {
		t.Fatalf("boundary did not drift: cos(early, late) = %.3f", cos)
	}
}

func TestSyntheticDriftShuffledControl(t *testing.T) {
	ds := SyntheticDrift(SyntheticConfig{Tuples: 1000, Features: 4, Order: OrderShuffled, Seed: 22})
	// Shuffled: ids renumbered; every tuple present.
	for i := range ds.Tuples {
		if ds.Tuples[i].ID != int64(i) {
			t.Fatal("shuffled drift data should renumber ids")
		}
	}
}
