package data

import (
	"fmt"
	"math"
	"math/rand"
)

// SyntheticConfig parameterizes the synthetic workload generators. The
// generators stand in for the paper's datasets (Table 2): Gaussian-mixture
// classification and linear-plus-noise regression data whose *ordering*
// (clustered / shuffled / feature-ordered) reproduces the pathologies the
// paper studies.
type SyntheticConfig struct {
	// Name labels the generated dataset.
	Name string
	// Tuples is the number of examples to generate.
	Tuples int
	// Features is the dimensionality.
	Features int
	// Classes is the number of classes (2 for binary; ignored for
	// regression).
	Classes int
	// Sparse generates sparse tuples with NNZ non-zeros each.
	Sparse bool
	// NNZ is the number of non-zero features per sparse tuple.
	NNZ int
	// Separation scales the distance between class means; larger is more
	// linearly separable. Defaults to 2.
	Separation float64
	// Noise is the per-feature Gaussian noise standard deviation.
	// Defaults to 1.
	Noise float64
	// Order is the physical tuple order to produce.
	Order Order
	// OrderFeatureIdx selects the sort feature for OrderFeature.
	OrderFeatureIdx int
	// Seed seeds the generator; equal seeds give identical datasets.
	Seed int64
}

func (c SyntheticConfig) withDefaults() SyntheticConfig {
	if c.Classes < 2 {
		c.Classes = 2
	}
	if c.Separation == 0 {
		c.Separation = 2
	}
	if c.Noise == 0 {
		c.Noise = 1
	}
	if c.Sparse && c.NNZ == 0 {
		c.NNZ = 32
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("synth-%dx%d", c.Tuples, c.Features)
	}
	return c
}

// SyntheticBinary generates a two-class dataset: class means are drawn on a
// sphere of radius Separation and examples are mean + Gaussian noise.
// Labels are ±1. The returned dataset is in the order requested by
// cfg.Order.
func SyntheticBinary(cfg SyntheticConfig) *Dataset {
	cfg = cfg.withDefaults()
	cfg.Classes = 2
	ds := syntheticClassification(cfg)
	// Map class indices {0,1} to labels {-1,+1}.
	for i := range ds.Tuples {
		if ds.Tuples[i].Label == 0 {
			ds.Tuples[i].Label = -1
		}
	}
	ds.Task = TaskBinary
	applyOrder(ds, cfg)
	return ds
}

// SyntheticMulticlass generates a K-class dataset with labels 0..K-1 in the
// order requested by cfg.Order. It models the image/text classification
// workloads (cifar-10-like, yelp-like, imagenet-like).
func SyntheticMulticlass(cfg SyntheticConfig) *Dataset {
	cfg = cfg.withDefaults()
	ds := syntheticClassification(cfg)
	ds.Task = TaskMulticlass
	applyOrder(ds, cfg)
	return ds
}

// syntheticClassification generates class-mean + noise examples with labels
// equal to the class index, physically grouped by class (clustered order)
// before applyOrder rearranges them.
func syntheticClassification(cfg SyntheticConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	means := make([][]float64, cfg.Classes)
	for k := range means {
		m := make([]float64, cfg.Features)
		var norm float64
		for j := range m {
			m[j] = rng.NormFloat64()
			norm += m[j] * m[j]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			norm = 1
		}
		for j := range m {
			m[j] = m[j] / norm * cfg.Separation
		}
		means[k] = m
	}

	ds := &Dataset{
		Name:     cfg.Name,
		Task:     TaskMulticlass,
		Features: cfg.Features,
		Classes:  cfg.Classes,
		Tuples:   make([]Tuple, 0, cfg.Tuples),
	}
	for i := 0; i < cfg.Tuples; i++ {
		k := i * cfg.Classes / cfg.Tuples // grouped by class
		t := Tuple{ID: int64(i), Label: float64(k)}
		if cfg.Sparse {
			t.SparseIdx, t.SparseVal = sparseFeatures(rng, cfg, means[k])
		} else {
			x := make([]float64, cfg.Features)
			for j := range x {
				x[j] = means[k][j] + rng.NormFloat64()*cfg.Noise
			}
			t.Dense = x
		}
		ds.Tuples = append(ds.Tuples, t)
	}
	return ds
}

// sparseFeatures draws NNZ distinct dimensions and emits mean+noise values
// there, in increasing index order.
func sparseFeatures(rng *rand.Rand, cfg SyntheticConfig, mean []float64) ([]int32, []float64) {
	nnz := cfg.NNZ
	if nnz > cfg.Features {
		nnz = cfg.Features
	}
	seen := make(map[int32]bool, nnz)
	idx := make([]int32, 0, nnz)
	for len(idx) < nnz {
		j := int32(rng.Intn(cfg.Features))
		if !seen[j] {
			seen[j] = true
			idx = append(idx, j)
		}
	}
	// Sort the indices (insertion sort: nnz is small).
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	val := make([]float64, nnz)
	for i, j := range idx {
		val[i] = mean[j] + rng.NormFloat64()*cfg.Noise
	}
	return idx, val
}

// SyntheticRegression generates a linear regression dataset
// y = ⟨w*, x⟩ + noise with x ~ N(0, I), in the order requested by cfg.Order
// (clustered means sorted by target value, modelling a timestamp-ordered
// continuous dataset like YearPredictionMSD).
func SyntheticRegression(cfg SyntheticConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	wStar := make([]float64, cfg.Features)
	for j := range wStar {
		wStar[j] = rng.NormFloat64()
	}
	ds := &Dataset{
		Name:     cfg.Name,
		Task:     TaskRegression,
		Features: cfg.Features,
		Classes:  0,
		Tuples:   make([]Tuple, 0, cfg.Tuples),
	}
	for i := 0; i < cfg.Tuples; i++ {
		x := make([]float64, cfg.Features)
		var y float64
		for j := range x {
			x[j] = rng.NormFloat64()
			y += wStar[j] * x[j]
		}
		y += rng.NormFloat64() * cfg.Noise
		ds.Tuples = append(ds.Tuples, Tuple{ID: int64(i), Label: y, Dense: x})
	}
	switch cfg.Order {
	case OrderClustered:
		ds.ClusterByLabel()
	case OrderShuffled:
		ds.Shuffle(rand.New(rand.NewSource(cfg.Seed + 1)))
	case OrderFeature:
		ds.OrderByFeature(cfg.OrderFeatureIdx)
	}
	ds.AssignIDs()
	return ds
}

func applyOrder(ds *Dataset, cfg SyntheticConfig) {
	switch cfg.Order {
	case OrderClustered:
		ds.ClusterByLabel()
	case OrderShuffled:
		ds.Shuffle(rand.New(rand.NewSource(cfg.Seed + 1)))
	case OrderFeature:
		ds.OrderByFeature(cfg.OrderFeatureIdx)
	}
	ds.AssignIDs()
}

// SyntheticDrift generates a binary dataset whose decision boundary rotates
// along the storage order — data "naturally ordered by timestamp" under
// concept drift, the other clustered-order source the paper's introduction
// motivates. Tuple i's class-mean direction interpolates between a start
// and an end direction, so a sequential scan sees a non-stationary
// distribution while a shuffled order sees the mixture.
//
// Pass Order: OrderClustered to keep the timestamp (drift) order;
// OrderShuffled (the default) produces the shuffled control arm.
func SyntheticDrift(cfg SyntheticConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	dirA := randomUnit(rng, cfg.Features)
	// The end direction is dirA rotated by 120° in a random plane: far
	// enough that a single static boundary cannot fit both ends well, while
	// the concept mixture stays learnable.
	orth := randomUnit(rng, cfg.Features)
	var dot float64
	for j := range orth {
		dot += orth[j] * dirA[j]
	}
	var norm float64
	for j := range orth {
		orth[j] -= dot * dirA[j]
		norm += orth[j] * orth[j]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		norm = 1
	}
	const angle = 2 * math.Pi / 3
	dirB := make([]float64, cfg.Features)
	for j := range dirB {
		dirB[j] = math.Cos(angle)*dirA[j] + math.Sin(angle)*orth[j]/norm
	}

	ds := &Dataset{
		Name:     cfg.Name,
		Task:     TaskBinary,
		Features: cfg.Features,
		Classes:  2,
		Tuples:   make([]Tuple, 0, cfg.Tuples),
	}
	for i := 0; i < cfg.Tuples; i++ {
		frac := float64(i) / float64(cfg.Tuples)
		label := 1.0
		if rng.Intn(2) == 0 {
			label = -1.0
		}
		x := make([]float64, cfg.Features)
		for j := range x {
			mean := (1-frac)*dirA[j] + frac*dirB[j]
			x[j] = label*mean*cfg.Separation + rng.NormFloat64()*cfg.Noise
		}
		ds.Tuples = append(ds.Tuples, Tuple{ID: int64(i), Label: label, Dense: x})
	}
	// Drift IS the storage order; OrderShuffled destroys it for the
	// control arm.
	if cfg.Order == OrderShuffled {
		ds.Shuffle(rand.New(rand.NewSource(cfg.Seed + 1)))
	}
	ds.AssignIDs()
	return ds
}

// randomUnit draws a uniformly random unit vector.
func randomUnit(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	var norm float64
	for j := range v {
		v[j] = rng.NormFloat64()
		norm += v[j] * v[j]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		norm = 1
	}
	for j := range v {
		v[j] /= norm
	}
	return v
}
