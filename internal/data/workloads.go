package data

// Workload names a synthetic stand-in for one of the paper's datasets
// (Table 2 plus the deep-learning and Section 7.4 datasets). Each workload
// preserves the shape that matters for the experiments — dense/sparse,
// dimensionality, relative size — at a tuple count scaled down by Scale so
// the full evaluation runs in seconds of wall time.
type Workload struct {
	// Name is the paper's dataset name with a "-like" suffix.
	Name string
	// Base is the generator configuration at scale 1.
	Base SyntheticConfig
	// Kind selects the generator: "binary", "multiclass", or "regression".
	Kind string
}

// Workloads lists the synthetic stand-ins keyed by the paper's dataset name.
var Workloads = map[string]Workload{
	// Generalized linear model datasets (Table 2).
	"higgs": {Name: "higgs-like", Kind: "binary", Base: SyntheticConfig{
		Tuples: 20000, Features: 28, Separation: 1.0, Noise: 1.5, Seed: 101}},
	"susy": {Name: "susy-like", Kind: "binary", Base: SyntheticConfig{
		Tuples: 10000, Features: 18, Separation: 1.4, Noise: 1.5, Seed: 102}},
	"epsilon": {Name: "epsilon-like", Kind: "binary", Base: SyntheticConfig{
		Tuples: 1000, Features: 2000, Separation: 1.1, Noise: 1.0, Seed: 103}},
	"criteo": {Name: "criteo-like", Kind: "binary", Base: SyntheticConfig{
		Tuples: 40000, Features: 10000, Sparse: true, NNZ: 40,
		Separation: 8, Noise: 1.0, Seed: 104}},
	"yfcc": {Name: "yfcc-like", Kind: "binary", Base: SyntheticConfig{
		Tuples: 2000, Features: 4096, Separation: 1.8, Noise: 1.0, Seed: 105}},

	// Deep-learning datasets: image-like dense multi-class and text-like
	// sparse multi-class. The MLP model consumes these.
	"cifar10": {Name: "cifar10-like", Kind: "multiclass", Base: SyntheticConfig{
		Tuples: 5000, Features: 64, Classes: 10, Separation: 3.0, Noise: 1.0, Seed: 106}},
	"imagenet": {Name: "imagenet-like", Kind: "multiclass", Base: SyntheticConfig{
		Tuples: 20000, Features: 128, Classes: 100, Separation: 5.0, Noise: 1.0, Seed: 107}},
	"yelp": {Name: "yelp-like", Kind: "multiclass", Base: SyntheticConfig{
		Tuples: 8000, Features: 5000, Classes: 5, Sparse: true, NNZ: 60,
		Separation: 8, Noise: 1.0, Seed: 108}},

	// Section 7.4 datasets.
	"yearpred": {Name: "yearpred-like", Kind: "regression", Base: SyntheticConfig{
		Tuples: 10000, Features: 90, Noise: 3.0, Seed: 109}},
	"mini8m": {Name: "mini8m-like", Kind: "multiclass", Base: SyntheticConfig{
		Tuples: 10000, Features: 784, Classes: 10, Separation: 2.0, Noise: 1.0, Seed: 110}},
}

// GLMDatasets lists, in the paper's order, the five datasets used for the
// in-DB GLM experiments (Figures 11–13, Table 3).
var GLMDatasets = []string{"higgs", "susy", "epsilon", "criteo", "yfcc"}

// Generate materializes the named workload at the given scale and tuple
// order. Scale multiplies the tuple count (use <1 for quick tests). It
// panics on unknown names, which indicates a programming error in the
// benchmark registry.
func Generate(name string, scale float64, order Order) *Dataset {
	w, ok := Workloads[name]
	if !ok {
		panic("data: unknown workload " + name)
	}
	cfg := w.Base
	cfg.Name = w.Name
	cfg.Order = order
	cfg.Tuples = int(float64(cfg.Tuples) * scale)
	if cfg.Tuples < 50 {
		cfg.Tuples = 50
	}
	switch w.Kind {
	case "binary":
		return SyntheticBinary(cfg)
	case "multiclass":
		return SyntheticMulticlass(cfg)
	case "regression":
		return SyntheticRegression(cfg)
	}
	panic("data: unknown workload kind " + w.Kind)
}
