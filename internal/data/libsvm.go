package data

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ReadLIBSVM parses a dataset in LIBSVM text format:
//
//	<label> <index>:<value> <index>:<value> ...
//
// Indices are 1-based in the file and converted to 0-based. features, when
// positive, fixes the dimensionality; otherwise it is inferred as the
// maximum index seen. Lines that are empty or start with '#' are skipped.
func ReadLIBSVM(r io.Reader, name string, features int) (*Dataset, error) {
	ds := &Dataset{Name: name, Task: TaskBinary, Features: features, Classes: 2}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	maxIdx := -1
	labels := make(map[float64]bool)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		label, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("libsvm: line %d: bad label %q: %w", lineNo, fields[0], err)
		}
		t := Tuple{ID: int64(len(ds.Tuples)), Label: label}
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon <= 0 {
				return nil, fmt.Errorf("libsvm: line %d: bad feature %q", lineNo, f)
			}
			idx, err := strconv.Atoi(f[:colon])
			if err != nil || idx < 1 {
				return nil, fmt.Errorf("libsvm: line %d: bad index %q", lineNo, f[:colon])
			}
			val, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("libsvm: line %d: bad value %q: %w", lineNo, f[colon+1:], err)
			}
			t.SparseIdx = append(t.SparseIdx, int32(idx-1))
			t.SparseVal = append(t.SparseVal, val)
			if idx-1 > maxIdx {
				maxIdx = idx - 1
			}
		}
		if t.SparseIdx == nil {
			t.SparseIdx = []int32{}
			t.SparseVal = []float64{}
		}
		sortSparse(&t)
		labels[label] = true
		ds.Tuples = append(ds.Tuples, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("libsvm: %w", err)
	}
	if ds.Features <= 0 {
		ds.Features = maxIdx + 1
	}
	if len(labels) > 2 {
		ds.Task = TaskMulticlass
		ds.Classes = len(labels)
	}
	return ds, nil
}

// WriteLIBSVM writes the dataset in LIBSVM text format with 1-based indices.
// Dense tuples are written as fully dense sparse rows.
func WriteLIBSVM(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	for i := range ds.Tuples {
		t := &ds.Tuples[i]
		if _, err := fmt.Fprintf(bw, "%g", t.Label); err != nil {
			return err
		}
		if t.IsSparse() {
			for j, idx := range t.SparseIdx {
				if _, err := fmt.Fprintf(bw, " %d:%g", idx+1, t.SparseVal[j]); err != nil {
					return err
				}
			}
		} else {
			for j, v := range t.Dense {
				if v == 0 {
					continue
				}
				if _, err := fmt.Fprintf(bw, " %d:%g", j+1, v); err != nil {
					return err
				}
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func sortSparse(t *Tuple) {
	if sort.SliceIsSorted(t.SparseIdx, func(i, j int) bool { return t.SparseIdx[i] < t.SparseIdx[j] }) {
		return
	}
	type pair struct {
		i int32
		v float64
	}
	ps := make([]pair, len(t.SparseIdx))
	for i := range ps {
		ps[i] = pair{t.SparseIdx[i], t.SparseVal[i]}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].i < ps[b].i })
	for i := range ps {
		t.SparseIdx[i], t.SparseVal[i] = ps[i].i, ps[i].v
	}
}
