package data

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func makeDataset(n int) *Dataset {
	ds := &Dataset{Name: "t", Task: TaskBinary, Features: 2, Classes: 2}
	for i := 0; i < n; i++ {
		label := -1.0
		if i%2 == 1 {
			label = 1.0
		}
		ds.Tuples = append(ds.Tuples, Tuple{ID: int64(i), Label: label, Dense: []float64{float64(i), 1}})
	}
	return ds
}

func TestShuffleIsPermutation(t *testing.T) {
	ds := makeDataset(100)
	vals := map[float64]bool{}
	for i := range ds.Tuples {
		vals[ds.Tuples[i].Dense[0]] = true
	}
	ds.Shuffle(rand.New(rand.NewSource(1)))
	if ds.Len() != 100 {
		t.Fatalf("Len = %d after shuffle", ds.Len())
	}
	for i := range ds.Tuples {
		if !vals[ds.Tuples[i].Dense[0]] {
			t.Fatal("shuffle lost or invented a tuple")
		}
		if ds.Tuples[i].ID != int64(i) {
			t.Fatal("shuffle did not renumber IDs")
		}
	}
}

func TestShuffleDeterministic(t *testing.T) {
	a, b := makeDataset(50), makeDataset(50)
	a.Shuffle(rand.New(rand.NewSource(7)))
	b.Shuffle(rand.New(rand.NewSource(7)))
	for i := range a.Tuples {
		if a.Tuples[i].Dense[0] != b.Tuples[i].Dense[0] {
			t.Fatal("same-seed shuffles differ")
		}
	}
}

func TestClusterByLabel(t *testing.T) {
	ds := makeDataset(100)
	ds.Shuffle(rand.New(rand.NewSource(2)))
	ds.ClusterByLabel()
	for i := 1; i < ds.Len(); i++ {
		if ds.Tuples[i].Label < ds.Tuples[i-1].Label {
			t.Fatal("labels not sorted after ClusterByLabel")
		}
	}
	if ds.Tuples[0].Label != -1 || ds.Tuples[ds.Len()-1].Label != 1 {
		t.Fatal("clustered order should put -1 first, +1 last")
	}
}

func TestOrderByFeature(t *testing.T) {
	ds := makeDataset(50)
	ds.Shuffle(rand.New(rand.NewSource(3)))
	ds.OrderByFeature(0)
	for i := 1; i < ds.Len(); i++ {
		if ds.Tuples[i].Dense[0] < ds.Tuples[i-1].Dense[0] {
			t.Fatal("feature 0 not sorted")
		}
	}
}

func TestOrderByFeatureSparse(t *testing.T) {
	ds := &Dataset{Features: 10}
	ds.Tuples = []Tuple{
		sparseTuple([]int32{3}, []float64{5}),
		sparseTuple([]int32{3}, []float64{-1}),
		sparseTuple([]int32{2}, []float64{9}), // feature 3 absent → 0
	}
	ds.OrderByFeature(3)
	got := []float64{}
	for i := range ds.Tuples {
		v := 0.0
		for j, idx := range ds.Tuples[i].SparseIdx {
			if idx == 3 {
				v = ds.Tuples[i].SparseVal[j]
			}
		}
		got = append(got, v)
	}
	if got[0] != -1 || got[1] != 0 || got[2] != 5 {
		t.Fatalf("sparse feature order = %v, want [-1 0 5]", got)
	}
}

func TestSplitSizesAndDisjoint(t *testing.T) {
	ds := makeDataset(200)
	train, test := ds.Split(0.25, rand.New(rand.NewSource(4)))
	if test.Len() != 50 || train.Len() != 150 {
		t.Fatalf("split sizes = %d/%d, want 150/50", train.Len(), test.Len())
	}
	seen := map[float64]bool{}
	for i := range train.Tuples {
		seen[train.Tuples[i].Dense[0]] = true
	}
	for i := range test.Tuples {
		if seen[test.Tuples[i].Dense[0]] {
			t.Fatal("train and test overlap")
		}
	}
}

func TestSplitPreservesOrder(t *testing.T) {
	ds := makeDataset(100)
	ds.ClusterByLabel()
	train, _ := ds.Split(0.2, rand.New(rand.NewSource(5)))
	for i := 1; i < train.Len(); i++ {
		if train.Tuples[i].Label < train.Tuples[i-1].Label {
			t.Fatal("split broke the clustered order of the train set")
		}
	}
}

func TestCloneDataset(t *testing.T) {
	ds := makeDataset(10)
	c := ds.Clone()
	c.Tuples[0].Dense[0] = 999
	if ds.Tuples[0].Dense[0] == 999 {
		t.Fatal("dataset Clone shares tuple storage")
	}
}

func TestLabelCounts(t *testing.T) {
	ds := makeDataset(10)
	m := ds.LabelCounts()
	if m[-1] != 5 || m[1] != 5 {
		t.Fatalf("LabelCounts = %v", m)
	}
}

func TestByteSize(t *testing.T) {
	ds := makeDataset(3)
	want := int64(3 * (21 + 16))
	if got := ds.ByteSize(); got != want {
		t.Fatalf("ByteSize = %d, want %d", got, want)
	}
}

func TestOrderStrings(t *testing.T) {
	if OrderShuffled.String() != "shuffled" || OrderClustered.String() != "clustered" || OrderFeature.String() != "feature-ordered" {
		t.Fatal("Order.String values wrong")
	}
	if TaskBinary.String() != "binary" || TaskMulticlass.String() != "multiclass" || TaskRegression.String() != "regression" {
		t.Fatal("Task.String values wrong")
	}
}

// Property: Split never loses or duplicates tuples for any fraction.
func TestSplitConservesProperty(t *testing.T) {
	f := func(n uint8, frac float64) bool {
		if frac < 0 || frac > 1 {
			return true
		}
		size := int(n%100) + 2
		ds := makeDataset(size)
		train, test := ds.Split(frac, rand.New(rand.NewSource(int64(n))))
		return train.Len()+test.Len() == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
