package data

import (
	"math"
	"testing"
	"testing/quick"
)

func denseTuple(vals ...float64) Tuple {
	return Tuple{Dense: vals}
}

func sparseTuple(idx []int32, val []float64) Tuple {
	return Tuple{SparseIdx: idx, SparseVal: val}
}

func TestTupleIsSparse(t *testing.T) {
	d := denseTuple(1, 2)
	s := sparseTuple([]int32{0}, []float64{1})
	if d.IsSparse() {
		t.Fatal("dense tuple reported sparse")
	}
	if !s.IsSparse() {
		t.Fatal("sparse tuple reported dense")
	}
}

func TestDotDense(t *testing.T) {
	tp := denseTuple(1, 2, 3)
	w := []float64{4, 5, 6}
	if got := tp.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotSparse(t *testing.T) {
	tp := sparseTuple([]int32{1, 3}, []float64{2, 4})
	w := []float64{10, 20, 30, 40}
	if got := tp.Dot(w); got != 2*20+4*40 {
		t.Fatalf("Dot = %v, want %v", got, 2*20+4*40)
	}
}

func TestDotOutOfRangeIgnored(t *testing.T) {
	tp := sparseTuple([]int32{0, 100}, []float64{1, 99})
	w := []float64{5}
	if got := tp.Dot(w); got != 5 {
		t.Fatalf("Dot = %v, want 5 (index 100 ignored)", got)
	}
	d := denseTuple(1, 2, 3)
	if got := d.Dot([]float64{1}); got != 1 {
		t.Fatalf("short-w dense Dot = %v, want 1", got)
	}
}

func TestAxpyIntoDense(t *testing.T) {
	tp := denseTuple(1, 2)
	v := []float64{10, 10}
	tp.AxpyInto(v, 3)
	if v[0] != 13 || v[1] != 16 {
		t.Fatalf("AxpyInto = %v, want [13 16]", v)
	}
}

func TestAxpyIntoSparse(t *testing.T) {
	tp := sparseTuple([]int32{1}, []float64{5})
	v := []float64{0, 0, 0}
	tp.AxpyInto(v, 2)
	if v[0] != 0 || v[1] != 10 || v[2] != 0 {
		t.Fatalf("AxpyInto = %v, want [0 10 0]", v)
	}
}

// Property: Dot(w) after AxpyInto(w, a) equals Dot(w) + a*‖x‖².
func TestAxpyDotConsistency(t *testing.T) {
	f := func(vals []float64, a float64) bool {
		if len(vals) == 0 || len(vals) > 20 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e6 {
			return true
		}
		tp := denseTuple(vals...)
		w := make([]float64, len(vals))
		before := tp.Dot(w)
		tp.AxpyInto(w, a)
		after := tp.Dot(w)
		want := before + a*tp.FeatureNorm2()
		return math.Abs(after-want) <= 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFeatureNorm2(t *testing.T) {
	d := denseTuple(3, 4)
	if d.FeatureNorm2() != 25 {
		t.Fatalf("dense norm² = %v, want 25", d.FeatureNorm2())
	}
	s := sparseTuple([]int32{7, 9}, []float64{3, 4})
	if s.FeatureNorm2() != 25 {
		t.Fatalf("sparse norm² = %v, want 25", s.FeatureNorm2())
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := Tuple{ID: 7, Label: 1, Dense: []float64{1, 2}}
	c := orig.Clone()
	c.Dense[0] = 99
	if orig.Dense[0] != 1 {
		t.Fatal("Clone shares dense storage")
	}
	s := sparseTuple([]int32{1}, []float64{2})
	cs := s.Clone()
	cs.SparseVal[0] = 99
	if s.SparseVal[0] != 2 {
		t.Fatal("Clone shares sparse storage")
	}
}

func TestNNZ(t *testing.T) {
	d := denseTuple(1, 2, 3)
	if got := d.NNZ(); got != 3 {
		t.Fatalf("dense NNZ = %d, want 3", got)
	}
	s := sparseTuple([]int32{5}, []float64{1})
	if got := s.NNZ(); got != 1 {
		t.Fatalf("sparse NNZ = %d, want 1", got)
	}
}

func TestEncodedSize(t *testing.T) {
	d := denseTuple(1, 2)
	if got, want := d.EncodedSize(), 21+16; got != want {
		t.Fatalf("dense EncodedSize = %d, want %d", got, want)
	}
	s := sparseTuple([]int32{1, 2}, []float64{1, 2})
	if got, want := s.EncodedSize(), 21+24; got != want {
		t.Fatalf("sparse EncodedSize = %d, want %d", got, want)
	}
}

func TestTupleString(t *testing.T) {
	tp := Tuple{ID: 3, Label: -1, Dense: []float64{1}}
	if got := tp.String(); got != "tuple{id=3 label=-1 dense nnz=1}" {
		t.Fatalf("String = %q", got)
	}
}
