// Package data defines the training-tuple and dataset types shared by the
// whole system, synthetic workload generators shaped like the paper's
// datasets, and a LIBSVM text codec for loading real files.
package data

import "fmt"

// Tuple is one training example — a row of the paper's
// ⟨id, features_k[], features_v[], label⟩ schema.
//
// A tuple is either dense (Dense non-nil) or sparse (SparseIdx/SparseVal
// non-nil); exactly one representation is populated. Label holds ±1 for
// binary classification, the class index for multi-class problems, and the
// target value for regression.
type Tuple struct {
	// ID is the tuple's position in the original storage order. The
	// distribution analyses of Figures 3–4 plot this value after shuffling.
	ID int64
	// Label is the supervised target.
	Label float64
	// Dense holds the feature vector of a dense tuple.
	Dense []float64
	// SparseIdx and SparseVal hold the non-zero dimensions of a sparse
	// tuple, in strictly increasing index order.
	SparseIdx []int32
	SparseVal []float64
}

// IsSparse reports whether the tuple uses the sparse representation.
func (t *Tuple) IsSparse() bool { return t.Dense == nil }

// NNZ returns the number of stored feature values.
func (t *Tuple) NNZ() int {
	if t.IsSparse() {
		return len(t.SparseVal)
	}
	return len(t.Dense)
}

// Dot returns the inner product ⟨w, x⟩ of the weight vector w with the
// tuple's feature vector. Indices outside len(w) are ignored.
func (t *Tuple) Dot(w []float64) float64 {
	var s float64
	if t.IsSparse() {
		for i, idx := range t.SparseIdx {
			if int(idx) < len(w) {
				s += w[idx] * t.SparseVal[i]
			}
		}
		return s
	}
	n := len(t.Dense)
	if len(w) < n {
		n = len(w)
	}
	for i := 0; i < n; i++ {
		s += w[i] * t.Dense[i]
	}
	return s
}

// AxpyInto adds a*x to the vector v, where x is the tuple's feature vector:
// v += a*x. Indices outside len(v) are ignored.
func (t *Tuple) AxpyInto(v []float64, a float64) {
	if t.IsSparse() {
		for i, idx := range t.SparseIdx {
			if int(idx) < len(v) {
				v[idx] += a * t.SparseVal[i]
			}
		}
		return
	}
	n := len(t.Dense)
	if len(v) < n {
		n = len(v)
	}
	for i := 0; i < n; i++ {
		v[i] += a * t.Dense[i]
	}
}

// FeatureNorm2 returns ‖x‖² of the tuple's feature vector.
func (t *Tuple) FeatureNorm2() float64 {
	var s float64
	if t.IsSparse() {
		for _, v := range t.SparseVal {
			s += v * v
		}
		return s
	}
	for _, v := range t.Dense {
		s += v * v
	}
	return s
}

// Clone returns a deep copy of the tuple.
func (t *Tuple) Clone() Tuple {
	c := Tuple{ID: t.ID, Label: t.Label}
	if t.Dense != nil {
		c.Dense = append([]float64(nil), t.Dense...)
	}
	if t.SparseIdx != nil {
		c.SparseIdx = append([]int32(nil), t.SparseIdx...)
		c.SparseVal = append([]float64(nil), t.SparseVal...)
	}
	return c
}

// EncodedSize returns the number of bytes the tuple occupies in the storage
// codec of internal/storage (kept in sync with that package's format so the
// generators can size tables without encoding twice).
func (t *Tuple) EncodedSize() int {
	// header: id(8) + label(8) + flags(1) + count(4)
	n := 21
	if t.IsSparse() {
		n += len(t.SparseIdx) * (4 + 8)
	} else {
		n += len(t.Dense) * 8
	}
	return n
}

// String implements fmt.Stringer for debugging.
func (t *Tuple) String() string {
	kind := "dense"
	if t.IsSparse() {
		kind = "sparse"
	}
	return fmt.Sprintf("tuple{id=%d label=%g %s nnz=%d}", t.ID, t.Label, kind, t.NNZ())
}
