package data

import (
	"fmt"
	"math/rand"
	"sort"
)

// Order describes the physical order of tuples in a dataset — the variable
// the paper's whole evaluation turns on.
type Order int

const (
	// OrderShuffled means tuples are in uniformly random order.
	OrderShuffled Order = iota
	// OrderClustered means tuples are sorted by label (all negatives before
	// all positives, or classes in ascending order) — the worst case for
	// sequential-scan SGD.
	OrderClustered
	// OrderFeature means tuples are sorted by the value of one feature
	// (Section 7.4.3).
	OrderFeature
)

// String implements fmt.Stringer.
func (o Order) String() string {
	switch o {
	case OrderShuffled:
		return "shuffled"
	case OrderClustered:
		return "clustered"
	case OrderFeature:
		return "feature-ordered"
	}
	return fmt.Sprintf("order(%d)", int(o))
}

// Task identifies the learning problem a dataset poses.
type Task int

const (
	// TaskBinary is ±1 binary classification.
	TaskBinary Task = iota
	// TaskMulticlass is K-way classification with labels 0..K-1.
	TaskMulticlass
	// TaskRegression is real-valued regression.
	TaskRegression
)

// String implements fmt.Stringer.
func (t Task) String() string {
	switch t {
	case TaskBinary:
		return "binary"
	case TaskMulticlass:
		return "multiclass"
	case TaskRegression:
		return "regression"
	}
	return fmt.Sprintf("task(%d)", int(t))
}

// Dataset is an in-memory collection of training tuples plus metadata.
type Dataset struct {
	// Name labels the dataset in reports, e.g. "higgs-like".
	Name string
	// Task is the learning problem.
	Task Task
	// Features is the dimensionality of the feature space.
	Features int
	// Classes is the number of classes for TaskMulticlass (2 for binary).
	Classes int
	// Tuples holds the examples in their physical storage order.
	Tuples []Tuple
}

// Len returns the number of tuples.
func (d *Dataset) Len() int { return len(d.Tuples) }

// At returns a pointer to the i-th tuple in storage order.
func (d *Dataset) At(i int) *Tuple { return &d.Tuples[i] }

// ByteSize returns the total encoded size of all tuples.
func (d *Dataset) ByteSize() int64 {
	var n int64
	for i := range d.Tuples {
		n += int64(d.Tuples[i].EncodedSize())
	}
	return n
}

// AssignIDs renumbers tuple IDs 0..n-1 to match the current physical order.
func (d *Dataset) AssignIDs() {
	for i := range d.Tuples {
		d.Tuples[i].ID = int64(i)
	}
}

// Shuffle permutes the tuples uniformly at random using rng, then renumbers
// IDs to the new physical order.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.Tuples), func(i, j int) {
		d.Tuples[i], d.Tuples[j] = d.Tuples[j], d.Tuples[i]
	})
	d.AssignIDs()
}

// ClusterByLabel stably sorts the tuples by label (the paper's clustered
// order: all "-1" tuples before all "+1" tuples), then renumbers IDs.
func (d *Dataset) ClusterByLabel() {
	sort.SliceStable(d.Tuples, func(i, j int) bool {
		return d.Tuples[i].Label < d.Tuples[j].Label
	})
	d.AssignIDs()
}

// OrderByFeature stably sorts the tuples by the value of feature k
// (Section 7.4.3), then renumbers IDs.
func (d *Dataset) OrderByFeature(k int) {
	feat := func(t *Tuple) float64 {
		if !t.IsSparse() {
			if k < len(t.Dense) {
				return t.Dense[k]
			}
			return 0
		}
		for i, idx := range t.SparseIdx {
			if int(idx) == k {
				return t.SparseVal[i]
			}
		}
		return 0
	}
	sort.SliceStable(d.Tuples, func(i, j int) bool {
		return feat(&d.Tuples[i]) < feat(&d.Tuples[j])
	})
	d.AssignIDs()
}

// Split partitions the dataset into train and test subsets, holding out
// testFrac of the tuples chosen uniformly by rng. The physical order of the
// remaining tuples is preserved.
func (d *Dataset) Split(testFrac float64, rng *rand.Rand) (train, test *Dataset) {
	n := d.Len()
	nTest := int(float64(n) * testFrac)
	perm := rng.Perm(n)
	isTest := make([]bool, n)
	for _, i := range perm[:nTest] {
		isTest[i] = true
	}
	train = &Dataset{Name: d.Name, Task: d.Task, Features: d.Features, Classes: d.Classes}
	test = &Dataset{Name: d.Name + "-test", Task: d.Task, Features: d.Features, Classes: d.Classes}
	for i := range d.Tuples {
		if isTest[i] {
			test.Tuples = append(test.Tuples, d.Tuples[i])
		} else {
			train.Tuples = append(train.Tuples, d.Tuples[i])
		}
	}
	train.AssignIDs()
	test.AssignIDs()
	return train, test
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{Name: d.Name, Task: d.Task, Features: d.Features, Classes: d.Classes}
	c.Tuples = make([]Tuple, len(d.Tuples))
	for i := range d.Tuples {
		c.Tuples[i] = d.Tuples[i].Clone()
	}
	return c
}

// LabelCounts returns a histogram of labels, keyed by label value.
func (d *Dataset) LabelCounts() map[float64]int {
	m := make(map[float64]int)
	for i := range d.Tuples {
		m[d.Tuples[i].Label]++
	}
	return m
}
