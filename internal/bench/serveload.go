package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"corgipile/internal/db"
	"corgipile/internal/serve"
)

// This file is the serving-plane load generator behind `corgibench
// -serve-load`: it boots a corgiserved instance (or targets a running
// one), keeps N TRAIN jobs executing in the background, and hammers the
// PREDICT path from concurrent client connections, reporting throughput
// and tail latency. Midway through, it cancels the first TRAIN and
// verifies the admission slot is returned — the interference experiment
// the serving plane exists for: does background training (and its churn)
// disturb foreground prediction?

// ServeLoadOptions configures the load run. Zero values pick defaults
// sized for a CI-friendly run of a few seconds.
type ServeLoadOptions struct {
	// Addr targets an already-running server; "" boots one in-process on a
	// free port with a synthetic catalog.
	Addr string
	// Workload and Scale size the in-process synthetic table (default
	// susy at 1.0 — 10k tuples).
	Workload string
	Scale    float64
	// Trains is the number of concurrent background TRAIN jobs (default 2).
	Trains int
	// Epochs is each background TRAIN's epoch budget (default 500 — an
	// over-provisioned budget, so the jobs are still mid-flight when the
	// predict load and the cancellation probe land; canceled and
	// still-running jobs at exit are expected, not failures).
	Epochs int
	// Clients is the number of concurrent predict connections (default 4).
	Clients int
	// Predicts is the total number of PREDICT statements (default 2000).
	Predicts int
	// Cancel, when true (the default for the CLI), cancels the first TRAIN
	// mid-run and checks the admission slot frees up.
	Cancel bool
	// Seed seeds the synthetic catalog and background TRAINs.
	Seed int64
}

// ServeLoad runs the load experiment and writes a human-readable report.
func ServeLoad(w io.Writer, opts ServeLoadOptions) error {
	if opts.Workload == "" {
		opts.Workload = "susy"
	}
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	if opts.Trains <= 0 {
		opts.Trains = 2
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 500
	}
	if opts.Clients <= 0 {
		opts.Clients = 4
	}
	if opts.Predicts <= 0 {
		opts.Predicts = 2000
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}

	addr := opts.Addr
	if addr == "" {
		srv, err := bootServer(opts)
		if err != nil {
			return err
		}
		defer srv.Close()
		addr = srv.Addr()
		fmt.Fprintf(w, "serve-load: booted corgiserved on %s\n", addr)
	}

	// Background TRAIN jobs, one session each so the per-session cap never
	// interferes with the experiment itself.
	trainClients := make([]*serve.Client, 0, opts.Trains)
	defer func() {
		for _, c := range trainClients {
			c.Close()
		}
	}()
	trainJobs := make([]string, 0, opts.Trains)
	for i := 0; i < opts.Trains; i++ {
		c, err := serve.Dial(addr)
		if err != nil {
			return err
		}
		trainClients = append(trainClients, c)
		sql := fmt.Sprintf(
			`SELECT * FROM bench TRAIN BY svm MODEL bg%d WITH learning_rate=0.05, max_epoch_num=%d, shuffle='corgipile', seed=%d`,
			i+1, opts.Epochs, opts.Seed+int64(i))
		job, err := c.Train(sql, false, false)
		if err != nil {
			return fmt.Errorf("serve-load: submit train %d: %w", i+1, err)
		}
		trainJobs = append(trainJobs, job.ID)
	}
	fmt.Fprintf(w, "serve-load: %d background TRAIN jobs queued (%s..%s), %d epochs each\n",
		opts.Trains, trainJobs[0], trainJobs[len(trainJobs)-1], opts.Epochs)

	// Predict load: Clients goroutines share an atomic budget; each
	// records its own latencies (merged after the barrier, so no lock on
	// the hot path).
	var (
		remaining = int64(opts.Predicts)
		failures  atomic.Int64
		wg        sync.WaitGroup
		latMu     sync.Mutex
		lats      []time.Duration
	)
	predictSQL := `SELECT * FROM bench PREDICT BY warm LIMIT 1`
	start := time.Now()
	for i := 0; i < opts.Clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := serve.Dial(addr)
			if err != nil {
				failures.Add(1)
				return
			}
			defer c.Close()
			mine := make([]time.Duration, 0, opts.Predicts/opts.Clients+1)
			for atomic.AddInt64(&remaining, -1) >= 0 {
				t0 := time.Now()
				if _, err := c.Predict(predictSQL); err != nil {
					failures.Add(1)
					continue
				}
				mine = append(mine, time.Since(t0))
			}
			latMu.Lock()
			lats = append(lats, mine...)
			latMu.Unlock()
		}()
	}

	// The cancellation probe runs while the predict load is in flight.
	cancelReport := ""
	if opts.Cancel && len(trainJobs) > 0 {
		ctl, err := serve.Dial(addr)
		if err != nil {
			return err
		}
		defer ctl.Close()
		st, err := ctl.Cancel(trainJobs[0], true)
		if err != nil {
			return fmt.Errorf("serve-load: cancel %s: %w", trainJobs[0], err)
		}
		// The canceled slot must admit a fresh job immediately.
		probe, err := trainClients[0].Train(
			fmt.Sprintf(`SELECT * FROM bench TRAIN BY svm MODEL probe WITH max_epoch_num=1, seed=%d`, opts.Seed),
			false, false)
		if err != nil {
			return fmt.Errorf("serve-load: slot not released after cancel: %w", err)
		}
		cancelReport = fmt.Sprintf(
			"serve-load: canceled %s mid-run (state %s); slot re-admitted %s",
			trainJobs[0], st.State, probe.ID)
	}

	wg.Wait()
	elapsed := time.Since(start)
	if cancelReport != "" {
		fmt.Fprintln(w, cancelReport)
	}
	if len(lats) == 0 {
		return fmt.Errorf("serve-load: no successful predicts (%d failures)", failures.Load())
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	fmt.Fprintf(w, "serve-load: %d predicts over %d clients in %.2fs (%d failed)\n",
		len(lats), opts.Clients, elapsed.Seconds(), failures.Load())
	fmt.Fprintf(w, "serve-load: throughput %.0f predicts/s\n",
		float64(len(lats))/elapsed.Seconds())
	fmt.Fprintf(w, "serve-load: latency p50 %s  p95 %s  p99 %s  max %s\n",
		q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))

	// Final job table: the background jobs may still be running — that is
	// the point (prediction stayed fast while they were) — so report their
	// states rather than waiting for them.
	ctl, err := serve.Dial(addr)
	if err != nil {
		return err
	}
	defer ctl.Close()
	jobs, err := ctl.Jobs()
	if err != nil {
		return err
	}
	for _, j := range jobs {
		line := fmt.Sprintf("serve-load: job %-4s state %-8s", j.ID, j.State)
		if j.Epochs > 0 {
			line += fmt.Sprintf(" epoch %d/%d", j.Epoch, j.Epochs)
		}
		fmt.Fprintln(w, line)
	}
	return nil
}

// bootServer stands up an in-process corgiserved with a synthetic table
// ("bench") and a pre-trained model ("warm") so the predict path has a
// hot target from the first request.
func bootServer(opts ServeLoadOptions) (*serve.Server, error) {
	session := db.NewSession()
	boot := []string{
		fmt.Sprintf(`CREATE TABLE bench AS SYNTHETIC(workload='%s', scale=%g, order='clustered', seed=%d) WITH device='ssd', block_size=64KB`,
			opts.Workload, opts.Scale, opts.Seed),
		fmt.Sprintf(`SELECT * FROM bench TRAIN BY svm MODEL warm WITH learning_rate=0.05, max_epoch_num=2, shuffle='corgipile', seed=%d`, opts.Seed),
	}
	for _, sql := range boot {
		if _, err := session.Exec(sql); err != nil {
			return nil, fmt.Errorf("serve-load: boot catalog: %w", err)
		}
	}
	return serve.New(serve.Config{
		Addr:    "127.0.0.1:0",
		Workers: 2,
		// Depth Trains+2: all background jobs plus the cancel probe fit
		// without tripping admission control during the experiment itself.
		// SessionMax 1 makes the cancellation probe a real proof: the
		// probe job is only admitted if the canceled job's slot was freed.
		QueueDepth: opts.Trains + 2,
		SessionMax: 1,
		Session:    session,
	})
}
