package bench

import (
	"fmt"
	"io"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/shuffle"
	"corgipile/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "End-to-end in-DB SGD on HDD and SSD across the GLM datasets",
		Paper: "Figure 11",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "table3",
		Title: "Final train/test accuracy: Shuffle Once vs CorgiPile",
		Paper: "Table 3",
		Run:   runTable3,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Convergence of LR and SVM under every strategy, clustered data",
		Paper: "Figure 12",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "fig13",
		Title: "Per-epoch time: No Shuffle vs CorgiPile vs single-buffer CorgiPile",
		Paper: "Figure 13",
		Run:   runFig13,
	})
}

// glmLR holds per-workload learning rates tuned the way the paper grid
// searches {0.1, 0.01, 0.001}.
var glmLR = map[string]float64{
	"higgs": 0.02, "susy": 0.05, "epsilon": 0.01, "criteo": 0.1, "yfcc": 0.01,
}

// glmDecay is the per-epoch learning-rate decay for the GLM experiments.
// The paper's GLM runs converge within 1-3 epochs of a huge dataset; at
// this repo's scaled-down sizes an equivalent schedule needs the faster
// decay to quench the end-of-epoch block-sampling noise.
const glmDecay = 0.7

// compressedWorkloads marks the datasets PostgreSQL TOASTs (wide dense
// rows).
var compressedWorkloads = map[string]bool{"epsilon": true, "yfcc": true}

// runFig11 compares end-to-end time and accuracy of MADlib (Shuffle Once,
// extra per-tuple statistics), Bismarck (Shuffle Once and No Shuffle),
// Block-Only, and CorgiPile, on both device classes.
func runFig11(w io.Writer, scale float64) error {
	type system struct {
		name         string
		kind         shuffle.Kind
		computeScale float64
	}
	systems := []system{
		{"MADlib (Shuffle Once)", shuffle.KindShuffleOnce, 3},
		{"Bismarck (Shuffle Once)", shuffle.KindShuffleOnce, 1},
		{"Bismarck (No Shuffle)", shuffle.KindNoShuffle, 1},
		{"Block-Only Shuffle", shuffle.KindBlockOnly, 1},
		{"CorgiPile", shuffle.KindCorgiPile, 1},
	}
	for _, dev := range []iosim.Profile{iosim.HDD, iosim.SSD} {
		for _, workload := range data.GLMDatasets {
			tab := stats.NewTable(
				fmt.Sprintf("%s on %s (SVM)", workload, dev.Name),
				"system", "prep", "time to 98% of best", "total", "final acc")
			outs := make([]*out, len(systems))
			best := 0.0
			for i, sys := range systems {
				o, err := run(spec{
					workload: workload, order: data.OrderClustered, scale: scale,
					model: "svm", lr: glmLR[workload], decay: glmDecay, epochs: 8,
					kind: sys.kind, device: dev, double: true,
					compress:     compressedWorkloads[workload],
					computeScale: sys.computeScale,
				})
				if err != nil {
					return err
				}
				outs[i] = o
				if a := o.finalAcc(); a > best {
					best = a
				}
			}
			for i, sys := range systems {
				o := outs[i]
				tta, reached := o.timeToAccuracy(best * 0.98)
				mark := ""
				if !reached {
					mark = " (never)"
				}
				tab.AddRow(sys.name, fmtSecs(o.prep), fmtSecs(tta)+mark, fmtSecs(o.total), o.finalAcc())
			}
			if err := tab.Write(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// runTable3 reproduces the accuracy parity table: Shuffle Once vs CorgiPile
// on train and held-out test splits, LR and SVM, all five datasets.
func runTable3(w io.Writer, scale float64) error {
	tab := stats.NewTable("Final accuracy (SO | CorgiPile)",
		"dataset", "model", "train SO", "train CP", "test SO", "test CP", "gap(train)")
	for _, workload := range data.GLMDatasets {
		for _, model := range []string{"lr", "svm"} {
			row := make(map[shuffle.Kind][2]float64, 2)
			for _, kind := range []shuffle.Kind{shuffle.KindShuffleOnce, shuffle.KindCorgiPile} {
				ds := data.Generate(workload, scale, data.OrderClustered)
				train, test := splitEval(ds)
				o, err := runOnDataset(train, spec{
					workload: workload, scale: scale,
					model: model, lr: glmLR[workload], decay: glmDecay, epochs: 8,
					kind: kind, inMemory: true,
				}, test)
				if err != nil {
					return err
				}
				row[kind] = [2]float64{o.res.Final().TrainAcc, o.res.Final().TestAcc}
			}
			so, cp := row[shuffle.KindShuffleOnce], row[shuffle.KindCorgiPile]
			tab.AddRow(workload, model, so[0], cp[0], so[1], cp[1], so[0]-cp[0])
		}
	}
	return tab.Write(w)
}

// runFig12 sweeps every strategy over LR and SVM on all clustered GLM
// datasets, reporting the convergence curve's key points.
func runFig12(w io.Writer, scale float64) error {
	kinds := []shuffle.Kind{
		shuffle.KindShuffleOnce, shuffle.KindNoShuffle, shuffle.KindSlidingWindow,
		shuffle.KindMRS, shuffle.KindBlockOnly, shuffle.KindCorgiPile,
	}
	for _, model := range []string{"lr", "svm"} {
		for _, workload := range data.GLMDatasets {
			tab := stats.NewTable(fmt.Sprintf("%s on clustered %s", model, workload),
				"strategy", "e1", "e2", "e4", "final acc")
			for _, kind := range kinds {
				o, err := run(spec{
					workload: workload, order: data.OrderClustered, scale: scale,
					model: model, lr: glmLR[workload], epochs: 8,
					kind: kind, inMemory: true,
				})
				if err != nil {
					return err
				}
				p := o.res.Points
				tab.AddRow(strategyLabel(kind), p[0].TrainAcc, p[1].TrainAcc, p[3].TrainAcc, o.finalAcc())
			}
			if err := tab.Write(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// runFig13 compares steady-state per-epoch times: the fastest No Shuffle
// baseline, double-buffered CorgiPile (expected within ~12%), and
// single-buffered CorgiPile.
func runFig13(w io.Writer, scale float64) error {
	for _, dev := range []iosim.Profile{iosim.HDD, iosim.SSD} {
		tab := stats.NewTable(fmt.Sprintf("Per-epoch time on %s (SVM)", dev.Name),
			"dataset", "No Shuffle", "CorgiPile (double)", "CorgiPile (single)", "double overhead", "double vs single")
		for _, workload := range data.GLMDatasets {
			times := map[string]float64{}
			for _, cfg := range []struct {
				label  string
				kind   shuffle.Kind
				double bool
			}{
				{"ns", shuffle.KindNoShuffle, false},
				{"cp2", shuffle.KindCorgiPile, true},
				{"cp1", shuffle.KindCorgiPile, false},
			} {
				o, err := run(spec{
					workload: workload, order: data.OrderClustered, scale: scale,
					model: "svm", lr: glmLR[workload], decay: glmDecay, epochs: 5,
					kind: cfg.kind, double: cfg.double, device: dev,
					compress: compressedWorkloads[workload],
				})
				if err != nil {
					return err
				}
				times[cfg.label] = o.perEpoch
			}
			tab.AddRow(workload,
				fmtSecs(times["ns"]), fmtSecs(times["cp2"]), fmtSecs(times["cp1"]),
				fmt.Sprintf("%+.1f%%", (times["cp2"]/times["ns"]-1)*100),
				fmt.Sprintf("%+.1f%%", (times["cp2"]/times["cp1"]-1)*100))
		}
		if err := tab.Write(w); err != nil {
			return err
		}
	}
	return nil
}
