package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestNewStamp(t *testing.T) {
	at := time.Date(2026, 8, 6, 12, 30, 0, 0, time.FixedZone("x", 3600))
	s := NewStamp(at)
	if s.GoVersion != runtime.Version() {
		t.Fatalf("go version %q, want %q", s.GoVersion, runtime.Version())
	}
	if s.GitSHA == "" {
		t.Fatal("git SHA must never be empty (falls back to \"unknown\")")
	}
	if s.Time != "2026-08-06T11:30:00Z" {
		t.Fatalf("time %q, want UTC RFC 3339", s.Time)
	}
	if z := NewStamp(time.Time{}); z.Time != "" {
		t.Fatalf("zero time should stamp no timestamp, got %q", z.Time)
	}
}

func TestCloseEnough(t *testing.T) {
	if !closeEnough(1.0, 1.0) || !closeEnough(0, 0) {
		t.Fatal("identical values must compare equal")
	}
	if !closeEnough(1e6, 1e6*(1+1e-12)) {
		t.Fatal("sub-epsilon relative difference must pass")
	}
	if closeEnough(1.0, 1.001) {
		t.Fatal("0.1% difference must fail")
	}
	if closeEnough(0, 1e-6) {
		t.Fatal("absolute difference above epsilon must fail")
	}
}

func TestCompareCell(t *testing.T) {
	base := FaultCell{
		ReadErrorProb: 0.01, Retries: 3, Completed: true,
		FinalLoss: 0.5, FinalAcc: 0.9, SimSeconds: 12.5,
		TransientErrors: 4, RetriesUsed: 4,
	}
	var sink strings.Builder
	if n := compareCell(&sink, "cell", base, base); n != 0 {
		t.Fatalf("identical cells produced %d regressions:\n%s", n, sink.String())
	}

	perturbed := base
	perturbed.FinalLoss += 1e-3
	perturbed.RetriesUsed++
	sink.Reset()
	if n := compareCell(&sink, "cell", base, perturbed); n != 2 {
		t.Fatalf("want 2 regressions (loss, retries), got %d:\n%s", n, sink.String())
	}
	if out := sink.String(); !strings.Contains(out, "final_loss") || !strings.Contains(out, "retries_used") {
		t.Fatalf("regression report missing metric names:\n%s", out)
	}

	failed := base
	failed.Completed = false
	failed.Error = "boom"
	sink.Reset()
	if n := compareCell(&sink, "cell", base, failed); n == 0 {
		t.Fatal("completed -> failed must regress")
	}
	if !strings.Contains(sink.String(), "boom") {
		t.Fatalf("failure report should carry the run error:\n%s", sink.String())
	}
}

func TestCompareRejectsBadInput(t *testing.T) {
	var sink strings.Builder
	if _, err := Compare(&sink, filepath.Join(t.TempDir(), "missing.json"), 0); err == nil {
		t.Fatal("missing baseline file must error")
	}

	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Compare(&sink, bad, 0); err == nil {
		t.Fatal("unparseable baseline must error")
	}

	// Valid JSON, but neither a hotpath nor a fault-sweep report. The stamp
	// line must still be printed before the shape check fails.
	shapeless := filepath.Join(dir, "shapeless.json")
	stamped, _ := json.Marshal(map[string]any{
		"stamp": Stamp{GitSHA: "cafebabe", GoVersion: "go1.24.0"},
	})
	if err := os.WriteFile(shapeless, stamped, 0o644); err != nil {
		t.Fatal(err)
	}
	sink.Reset()
	if _, err := Compare(&sink, shapeless, 0); err == nil {
		t.Fatal("report without rows or grid must error")
	} else if !strings.Contains(err.Error(), "neither") {
		t.Fatalf("unexpected error: %v", err)
	}
	if !strings.Contains(sink.String(), "cafebabe") {
		t.Fatalf("stamp line not printed:\n%s", sink.String())
	}
}

// TestCompareHotpathAgainstSelf compares a freshly measured hotpath report
// against itself with a generous time tolerance: allocation counts are
// deterministic and must match exactly, so self-compare has zero
// regressions. The measurement is shortened by reusing one run as both
// baseline and probe via the exported entry point.
func TestCompareHotpathAgainstSelf(t *testing.T) {
	if testing.Short() {
		t.Skip("hotpath micro-benchmarks are slow; skipped with -short")
	}
	base := HotpathRun()
	base.Stamp = NewStamp(time.Time{})
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_hotpath.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var sink strings.Builder
	// Huge tolerance: this asserts the comparison plumbing and the strict
	// allocation check, not machine speed.
	n, err := Compare(&sink, path, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("self-compare found %d regressions:\n%s", n, sink.String())
	}
	if !strings.Contains(sink.String(), "hotpath compare:") {
		t.Fatalf("missing summary line:\n%s", sink.String())
	}
}
