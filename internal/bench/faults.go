package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"corgipile/internal/core"
	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/ml"
	"corgipile/internal/shuffle"
	"corgipile/internal/storage"
)

// FaultCell is one sweep point: a fault rate trained under a retry budget.
type FaultCell struct {
	// ReadErrorProb is the injected per-read transient error probability.
	ReadErrorProb float64 `json:"read_error_prob"`
	// Retries is the retry budget (attempts after the first).
	Retries int `json:"retries"`
	// Completed reports whether training survived the fault storm; Error
	// holds the failure when it did not.
	Completed bool   `json:"completed"`
	Error     string `json:"error,omitempty"`
	// FinalLoss and FinalAcc describe the last finished epoch.
	FinalLoss float64 `json:"final_loss,omitempty"`
	FinalAcc  float64 `json:"final_acc,omitempty"`
	// SimSeconds is the total simulated time, including retry backoff.
	SimSeconds float64 `json:"sim_seconds"`
	// TransientErrors, RetriesUsed and BackoffSeconds count the injected
	// faults and the recovery work they forced.
	TransientErrors int     `json:"transient_errors"`
	RetriesUsed     int     `json:"retries_used"`
	BackoffSeconds  float64 `json:"backoff_seconds"`
	// SkippedBlocks and SkippedTuples are non-zero only for the quarantine
	// scenario.
	SkippedBlocks []int `json:"skipped_blocks,omitempty"`
	SkippedTuples int   `json:"skipped_tuples,omitempty"`
}

// FaultSweepReport is the payload of BENCH_faults.json: training outcomes
// across a fault-rate x retry-budget grid, plus one corrupt-block quarantine
// scenario. CleanAcc is the fault-free baseline the degraded runs compare
// against.
type FaultSweepReport struct {
	// Stamp records the git revision, Go version and (when injected)
	// timestamp of the run that produced the report.
	Stamp    Stamp       `json:"stamp"`
	Workload string      `json:"workload"`
	Epochs   int         `json:"epochs"`
	CleanAcc float64     `json:"clean_acc"`
	Grid     []FaultCell `json:"grid"`
	Corrupt  FaultCell   `json:"corrupt_skip_scenario"`
}

// faultRun trains susy/clustered on simulated SSD under the given fault plan
// and resilience policy, and summarizes the outcome as a FaultCell.
func faultRun(ds *data.Dataset, epochs int, plan iosim.FaultPlan, resil shuffle.Resilience) FaultCell {
	cell := FaultCell{
		ReadErrorProb: plan.ReadErrorProb,
		Retries:       resil.Retry.MaxAttempts - 1,
	}
	if cell.Retries < 0 {
		cell.Retries = 0
	}
	clock := iosim.NewClock()
	dev := iosim.NewDevice(scaledDevice(iosim.SSD, ds), clock).
		WithCache(cacheBytes("susy", ds))
	if plan.Enabled() {
		dev.WithFaults(plan)
	}
	tab, err := storage.Build(dev, ds, storage.Options{BlockSize: paperBlockEquiv(ds)})
	if err != nil {
		cell.Error = err.Error()
		return cell
	}
	report := shuffle.NewFaultReport()
	st, err := shuffle.New(shuffle.KindCorgiPile, shuffle.TableSource(tab), shuffle.Options{
		BufferFraction: 0.1,
		Seed:           1,
		Resilience:     resil,
		FaultReport:    report,
	})
	if err != nil {
		cell.Error = err.Error()
		return cell
	}
	model := ml.SVM{}
	res, err := core.Run(core.RunConfig{
		Strategy:  st,
		Model:     model,
		Opt:       ml.NewSGD(0.05),
		Features:  ds.Features,
		Epochs:    epochs,
		Clock:     clock,
		TrainEval: ds,
		Seed:      1,
		Faults:    report,
	})
	sum := report.Summary()
	cell.SimSeconds = clock.Now().Seconds()
	cell.TransientErrors = int(sum.TransientErrors)
	cell.RetriesUsed = int(sum.Retries)
	cell.BackoffSeconds = sum.BackoffSeconds
	cell.SkippedBlocks = sum.SkippedBlocks
	cell.SkippedTuples = sum.SkippedTuples
	if err != nil {
		cell.Error = err.Error()
		return cell
	}
	cell.Completed = true
	cell.FinalLoss = res.Final().AvgLoss
	cell.FinalAcc = res.Final().TrainAcc
	return cell
}

// FaultSweep measures training through injected storage faults: a read-error
// rate x retry budget grid, plus a corrupt-block quarantine scenario. It
// prints a human-readable table to w and, when out is non-nil, writes the
// JSON report (the BENCH_faults.json artifact) to out. The stamp is embedded
// in the report.
func FaultSweep(w io.Writer, out io.Writer, stamp Stamp) error {
	rep, err := FaultSweepRun(w)
	if err != nil {
		return err
	}
	rep.Stamp = stamp
	if out != nil {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	}
	return nil
}

// FaultSweepRun runs the sweep, printing the human-readable table to w, and
// returns the (unstamped) report. The sweep is fully simulated, so repeated
// runs on any machine produce identical numbers — the -compare mode relies
// on that.
func FaultSweepRun(w io.Writer) (FaultSweepReport, error) {
	const epochs = 5
	ds := data.Generate("susy", 0.2, data.OrderClustered)
	rep := FaultSweepReport{Workload: "susy", Epochs: epochs}

	clean := faultRun(ds, epochs, iosim.FaultPlan{}, shuffle.Resilience{})
	if clean.Error != "" {
		return rep, fmt.Errorf("bench: clean baseline failed: %s", clean.Error)
	}
	rep.CleanAcc = clean.FinalAcc

	fmt.Fprintf(w, "fault sweep (susy clustered, %d epochs, simulated ssd; clean acc %.4f)\n",
		epochs, rep.CleanAcc)
	fmt.Fprintf(w, "  %-10s %-8s %-10s %-9s %-10s %-8s %s\n",
		"read_err", "retries", "outcome", "acc", "transient", "retried", "sim_time")
	for _, prob := range []float64{0, 0.01, 0.05} {
		for _, retries := range []int{0, 1, 3} {
			plan := iosim.FaultPlan{Seed: 9, ReadErrorProb: prob, ErrorLatency: 2 * time.Millisecond}
			resil := shuffle.Resilience{
				Retry: storage.RetryPolicy{MaxAttempts: retries + 1, Seed: 1},
			}
			cell := faultRun(ds, epochs, plan, resil)
			rep.Grid = append(rep.Grid, cell)
			outcome := "ok"
			if !cell.Completed {
				outcome = "failed"
			}
			fmt.Fprintf(w, "  %-10.2f %-8d %-10s %-9.4f %-10d %-8d %.2fs\n",
				prob, retries, outcome, cell.FinalAcc, cell.TransientErrors,
				cell.RetriesUsed, cell.SimSeconds)
		}
	}

	// Quarantine scenario: two corrupt blocks under the skip policy.
	rep.Corrupt = faultRun(ds, epochs, iosim.FaultPlan{Seed: 9, CorruptBlocks: []int{3, 17}},
		shuffle.Resilience{OnCorrupt: shuffle.SkipCorrupt})
	c := rep.Corrupt
	fmt.Fprintf(w, "  corrupt blocks %v, on_corrupt=skip: completed=%v acc=%.4f (clean %.4f), %d tuples quarantined\n",
		c.SkippedBlocks, c.Completed, c.FinalAcc, rep.CleanAcc, c.SkippedTuples)

	return rep, nil
}
