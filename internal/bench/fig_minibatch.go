package bench

import (
	"fmt"
	"io"
	"math"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/shuffle"
	"corgipile/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig16",
		Title: "Mini-batch LR and SVM end-to-end on SSD (batch 128)",
		Paper: "Figure 16",
		Run:   runFig16,
	})
	register(Experiment{
		ID:    "fig17",
		Title: "Mini-batch convergence under every strategy (batch 128)",
		Paper: "Figure 17",
		Run:   runFig17,
	})
	register(Experiment{
		ID:    "fig18",
		Title: "Linear regression and softmax regression end-to-end",
		Paper: "Figure 18",
		Run:   runFig18,
	})
	register(Experiment{
		ID:    "fig19",
		Title: "Converged accuracy on feature-ordered datasets",
		Paper: "Figure 19",
		Run:   runFig19,
	})
}

// runFig16 measures mini-batch end-to-end time on SSD for the in-DB
// strategies (MADlib/Bismarck lack mini-batch GLMs, so the comparison is
// across this system's own strategy plans, as in the paper).
func runFig16(w io.Writer, scale float64) error {
	kinds := []shuffle.Kind{
		shuffle.KindShuffleOnce, shuffle.KindNoShuffle,
		shuffle.KindBlockOnly, shuffle.KindCorgiPile,
	}
	for _, model := range []string{"lr", "svm"} {
		tab := stats.NewTable(fmt.Sprintf("Mini-batch %s on SSD, batch 128", model),
			"dataset", "strategy", "prep", "time to 98% of best", "total", "final acc")
		for _, workload := range data.GLMDatasets {
			outs := make([]*out, len(kinds))
			best := 0.0
			for i, kind := range kinds {
				o, err := run(spec{
					workload: workload, order: data.OrderClustered, scale: scale,
					model: model, lr: glmLR[workload] * 4, decay: glmDecay, epochs: 8, batch: 128,
					kind: kind, device: iosim.SSD, double: true,
					compress: compressedWorkloads[workload],
				})
				if err != nil {
					return err
				}
				outs[i] = o
				if a := o.finalAcc(); a > best {
					best = a
				}
			}
			for i, kind := range kinds {
				o := outs[i]
				tta, reached := o.timeToAccuracy(best * 0.98)
				mark := ""
				if !reached {
					mark = " (never)"
				}
				tab.AddRow(workload, strategyLabel(kind), fmtSecs(o.prep),
					fmtSecs(tta)+mark, fmtSecs(o.total), o.finalAcc())
			}
		}
		if err := tab.Write(w); err != nil {
			return err
		}
	}
	return nil
}

// runFig17 sweeps mini-batch convergence across all strategies.
func runFig17(w io.Writer, scale float64) error {
	kinds := []shuffle.Kind{
		shuffle.KindShuffleOnce, shuffle.KindNoShuffle, shuffle.KindSlidingWindow,
		shuffle.KindMRS, shuffle.KindBlockOnly, shuffle.KindCorgiPile,
	}
	for _, model := range []string{"lr", "svm"} {
		for _, workload := range data.GLMDatasets {
			tab := stats.NewTable(
				fmt.Sprintf("Mini-batch %s on clustered %s (batch 128)", model, workload),
				"strategy", "e1", "e2", "e4", "final acc")
			for _, kind := range kinds {
				o, err := run(spec{
					workload: workload, order: data.OrderClustered, scale: scale,
					model: model, lr: glmLR[workload] * 4, decay: glmDecay, epochs: 8, batch: 128,
					kind: kind, inMemory: true,
				})
				if err != nil {
					return err
				}
				p := o.res.Points
				tab.AddRow(strategyLabel(kind), p[0].TrainAcc, p[1].TrainAcc, p[3].TrainAcc, o.finalAcc())
			}
			if err := tab.Write(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// runFig18 extends the in-DB path to continuous and multi-class targets:
// linear regression on the YearPrediction-like dataset (metric R²) and
// softmax regression on the mini8m-like dataset.
func runFig18(w io.Writer, scale float64) error {
	kinds := []shuffle.Kind{
		shuffle.KindShuffleOnce, shuffle.KindNoShuffle,
		shuffle.KindBlockOnly, shuffle.KindCorgiPile,
	}
	jobs := []struct {
		workload, model, metric string
		lr                      float64
		batch                   int
	}{
		{"yearpred", "linreg", "R²", 0.01, 128},
		{"mini8m", "softmax", "accuracy", 0.05, 128},
	}
	for _, job := range jobs {
		tab := stats.NewTable(
			fmt.Sprintf("%s on clustered %s (%s, batch %d, SSD)", job.model, job.workload, job.metric, job.batch),
			"strategy", "prep", "time to 98% of best", "total", "final "+job.metric)
		outs := make([]*out, len(kinds))
		best := 0.0
		for i, kind := range kinds {
			o, err := run(spec{
				workload: job.workload, order: data.OrderClustered, scale: scale,
				model: job.model, lr: job.lr, decay: glmDecay, epochs: 8, batch: job.batch,
				kind: kind, device: iosim.SSD, double: true,
			})
			if err != nil {
				return err
			}
			outs[i] = o
			if a := o.finalAcc(); a > best {
				best = a
			}
		}
		for i, kind := range kinds {
			o := outs[i]
			tta, reached := o.timeToAccuracy(best * 0.98)
			mark := ""
			if !reached {
				mark = " (never)"
			}
			tab.AddRow(strategyLabel(kind), fmtSecs(o.prep), fmtSecs(tta)+mark,
				fmtSecs(o.total), o.finalAcc())
		}
		if err := tab.Write(w); err != nil {
			return err
		}
	}
	return nil
}

// runFig19 orders each binary dataset by a feature instead of the label and
// compares converged accuracy of No Shuffle, CorgiPile and Shuffle Once —
// showing that simple scanning also fails on feature-ordered data. As in
// the paper, the sort feature is chosen among those most correlated with
// the label (Section 7.4.3 picks the highest-correlation features).
func runFig19(w io.Writer, scale float64) error {
	for _, model := range []string{"lr", "svm"} {
		tab := stats.NewTable(fmt.Sprintf("Converged %s accuracy on feature-ordered data", model),
			"dataset", "sort feature", "No Shuffle", "CorgiPile", "Shuffle Once")
		for _, workload := range []string{"higgs", "susy"} {
			for _, corr := range []string{"high-corr", "low-corr"} {
				base := data.Generate(workload, scale, data.OrderShuffled)
				var sortFeature int
				if corr == "high-corr" {
					// Real datasets carry attributes strongly correlated
					// with the label (the physics features of higgs/susy);
					// isotropic synthetic data does not, so inject one and
					// sort by it — ordering by such a feature approximates
					// label clustering.
					injectCorrelatedFeature(base, 0, 1.2)
					sortFeature = 0
				} else {
					sortFeature = leastCorrelatedFeature(base)
				}
				base.OrderByFeature(sortFeature)
				accs := map[shuffle.Kind]float64{}
				for _, kind := range []shuffle.Kind{shuffle.KindNoShuffle, shuffle.KindCorgiPile, shuffle.KindShuffleOnce} {
					o, err := runOnDataset(base, spec{
						workload: workload, scale: scale,
						model: model, lr: glmLR[workload], decay: glmDecay, epochs: 8,
						kind: kind, inMemory: true,
					}, nil)
					if err != nil {
						return err
					}
					accs[kind] = o.finalAcc()
				}
				tab.AddRow(workload, corr, accs[shuffle.KindNoShuffle], accs[shuffle.KindCorgiPile], accs[shuffle.KindShuffleOnce])
			}
		}
		if err := tab.Write(w); err != nil {
			return err
		}
	}
	return nil
}

// injectCorrelatedFeature adds boost·label to dense feature j, modelling an
// attribute strongly correlated with the label (a timestamp under drift, a
// discriminative physics feature).
func injectCorrelatedFeature(ds *data.Dataset, j int, boost float64) {
	for i := range ds.Tuples {
		t := &ds.Tuples[i]
		if j < len(t.Dense) {
			t.Dense[j] += boost * t.Label
		}
	}
}

// leastCorrelatedFeature returns the index of the dense feature with the
// lowest absolute Pearson correlation with the label.
func leastCorrelatedFeature(ds *data.Dataset) int {
	n := float64(ds.Len())
	if n == 0 || ds.Features == 0 {
		return 0
	}
	meanX := make([]float64, ds.Features)
	var meanY float64
	for i := range ds.Tuples {
		t := &ds.Tuples[i]
		meanY += t.Label
		for j, v := range t.Dense {
			meanX[j] += v
		}
	}
	meanY /= n
	for j := range meanX {
		meanX[j] /= n
	}
	cov := make([]float64, ds.Features)
	varX := make([]float64, ds.Features)
	for i := range ds.Tuples {
		t := &ds.Tuples[i]
		dy := t.Label - meanY
		for j, v := range t.Dense {
			dx := v - meanX[j]
			cov[j] += dx * dy
			varX[j] += dx * dx
		}
	}
	best, bestCorr := 0, math.Inf(1)
	for j := range cov {
		if varX[j] == 0 {
			continue
		}
		c := cov[j] * cov[j] / varX[j]
		if c < bestCorr {
			best, bestCorr = j, c
		}
	}
	return best
}
