// Package bench is the reproduction harness: one runner per table and
// figure of the paper's evaluation (plus the motivating figures and the
// Appendix A I/O study). Each experiment prints, as plain text, the same
// rows or series the paper plots; EXPERIMENTS.md records paper-vs-measured
// for each.
//
// Dataset sizes are scaled-down synthetic stand-ins (see DESIGN.md), so
// absolute numbers differ from the paper; the comparisons — who wins, by
// roughly what factor, where crossovers fall — are the reproduced result.
package bench

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the registry key, e.g. "fig11" or "table3".
	ID string
	// Title describes the artifact.
	Title string
	// Paper cites the artifact's location in the paper.
	Paper string
	// Run executes the experiment at the given scale, writing its report.
	Run func(w io.Writer, scale float64) error
}

var registry = map[string]Experiment{}

// register adds an experiment to the registry at init time.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by id (figures first, then tables).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i].ID, out[j].ID) })
	return out
}

// less orders experiment ids naturally: fig1 < fig2 < ... < fig20 < table1.
func less(a, b string) bool {
	pa, na := splitID(a)
	pb, nb := splitID(b)
	if pa != pb {
		return pa < pb
	}
	return na < nb
}

func splitID(s string) (prefix string, num int) {
	i := 0
	for i < len(s) && (s[i] < '0' || s[i] > '9') {
		i++
	}
	fmt.Sscanf(s[i:], "%d", &num)
	return s[:i], num
}

// Run executes the experiment with the given id at the given scale.
func Run(w io.Writer, id string, scale float64) error {
	e, ok := Get(id)
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q", id)
	}
	fmt.Fprintf(w, "=== %s — %s (%s) ===\n\n", e.ID, e.Title, e.Paper)
	return e.Run(w, scale)
}

// RunAll executes every experiment in registry order.
func RunAll(w io.Writer, scale float64) error {
	for _, e := range All() {
		if err := Run(w, e.ID, scale); err != nil {
			return fmt.Errorf("bench: %s: %w", e.ID, err)
		}
	}
	return nil
}
