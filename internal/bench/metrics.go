package bench

import (
	"fmt"
	"io"

	"corgipile/internal/core"
	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/obs"
	"corgipile/internal/shuffle"
)

// ProfileOptions configures one instrumented training run for Profile —
// the "where does the time go" mode behind corgibench -metrics.
type ProfileOptions struct {
	// Workload names the synthetic dataset (default "higgs"); Scale scales
	// it (default 0.2 — profiles want quick turnaround).
	Workload string
	Scale    float64
	// Model is the learner (default "svm").
	Model string
	// Strategy is the shuffling strategy (default CorgiPile).
	Strategy shuffle.Kind
	// Epochs is the number of passes (default 5).
	Epochs int
	// BatchSize selects mini-batch SGD when > 1; Procs is the number of
	// gradient worker goroutines for mini-batch steps (0 = GOMAXPROCS).
	BatchSize int
	Procs     int
	// Device is the profile name: "hdd", "ssd", "ram" (default "hdd" —
	// the regime where the I/O decomposition is most interesting).
	Device string
	// DoubleBuffer enables the Section 6.3 overlap optimization.
	DoubleBuffer bool
	// BlockSize overrides the block size in bytes (default: the paper's
	// 256-block regime for the scaled dataset).
	BlockSize int64
	// Seed drives all randomness (default 1).
	Seed int64
	// TraceOut, when non-nil, additionally receives the JSONL event stream
	// (span ends, per-epoch breakdowns, and a final snapshot).
	TraceOut io.Writer
	// Registry, when non-nil, is used instead of a fresh one — the telemetry
	// server scrapes it while the run is live.
	Registry *obs.Registry
	// Feed, when non-nil, receives one live status update per epoch.
	Feed *obs.RunFeed
	// Diag, when non-nil, enables the convergence diagnostics; the verdict is
	// printed after the breakdown table.
	Diag *core.DiagConfig
	// RunDir, when non-empty, receives durable run artifacts: manifest.json,
	// epochs.jsonl and a final metrics snapshot (plus plan.json when
	// Explain is set).
	RunDir string
	// Explain routes the run through the Volcano executor with per-operator
	// profiling and prints the annotated plan tree after the breakdown
	// tables; the tree also streams through Feed and lands in RunDir as
	// plan.json.
	Explain bool
}

func (o ProfileOptions) withDefaults() ProfileOptions {
	if o.Workload == "" {
		o.Workload = "higgs"
	}
	if o.Scale == 0 {
		o.Scale = 0.2
	}
	if o.Epochs == 0 {
		o.Epochs = 5
	}
	if o.Device == "" {
		o.Device = "hdd"
	}
	return o
}

// Profile runs one fully instrumented training pass and writes the
// per-epoch cross-layer breakdown (I/O time, bytes, seek fraction, cache
// hit-rate, shuffle fill time, gradient time, loss) plus a totals table
// to w. When opts.TraceOut is set the same data streams there as JSONL.
func Profile(w io.Writer, opts ProfileOptions) error {
	opts = opts.withDefaults()
	prof, ok := iosim.ProfileByName(opts.Device)
	if !ok {
		return fmt.Errorf("bench: unknown device %q (hdd, ssd, ram)", opts.Device)
	}
	if opts.Strategy == "" {
		opts.Strategy = shuffle.KindCorgiPile
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.New()
	}
	if opts.TraceOut != nil {
		reg.StreamTo(opts.TraceOut)
	}
	runName := fmt.Sprintf("corgibench %s/%s/%s", opts.Workload, opts.Strategy, opts.Device)
	o, err := run(spec{
		workload:  opts.Workload,
		order:     data.OrderClustered,
		scale:     opts.Scale,
		model:     opts.Model,
		epochs:    opts.Epochs,
		batch:     opts.BatchSize,
		procs:     opts.Procs,
		kind:      opts.Strategy,
		double:    opts.DoubleBuffer,
		device:    prof,
		blockSize: opts.BlockSize,
		seed:      opts.Seed,
		reg:       reg,
		feed:      opts.Feed,
		runName:   runName,
		diag:      opts.Diag,
		explain:   opts.Explain,
	})
	if err != nil {
		return err
	}
	title := fmt.Sprintf("%s on %s, %s (scale %g): where the time goes",
		strategyLabel(opts.Strategy), opts.Device, opts.Workload, opts.Scale)
	if err := obs.WriteEpochTable(w, title, o.res.Breakdown); err != nil {
		return err
	}
	fmt.Fprintf(w, "total %s (prep %s)\n\n", fmtSecs(o.total), fmtSecs(o.prep))
	if err := reg.WriteCounterTable(w, "run totals"); err != nil {
		return err
	}
	if opts.Diag != nil && o.res.Verdict != "" {
		fmt.Fprintf(w, "convergence verdict: %s\n", o.res.Verdict)
	}
	if opts.Explain && o.res.Plan != nil {
		fmt.Fprintf(w, "\nexecuted plan (EXPLAIN ANALYZE):\n")
		o.res.Plan.WriteText(w, true)
	}
	reg.EmitSnapshot("final")
	if opts.RunDir != "" {
		if err := writeRunDir(opts.RunDir, runName, opts, o.res.Breakdown, reg, o.res.Plan); err != nil {
			return fmt.Errorf("bench: run dir: %w", err)
		}
	}
	return nil
}

// writeRunDir persists the durable artifacts of one profiled run.
func writeRunDir(dir, runName string, opts ProfileOptions, rows []obs.EpochMetrics, reg *obs.Registry, plan *obs.PlanStats) error {
	rd, err := obs.OpenRunDir(dir)
	if err != nil {
		return err
	}
	opts.TraceOut = nil // not serializable config
	opts.Registry = nil
	opts.Feed = nil
	if err := rd.WriteManifest(obs.Manifest{
		Tool:   "corgibench",
		Run:    runName,
		Seed:   opts.Seed,
		Config: opts,
	}); err != nil {
		return err
	}
	if err := rd.WriteEpochs(rows); err != nil {
		return err
	}
	if err := rd.WritePlan(plan); err != nil {
		return err
	}
	return rd.WriteMetrics(reg)
}
