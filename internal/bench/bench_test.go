package bench

import (
	"bytes"
	"strings"
	"testing"

	"corgipile/internal/stats"
)

// smallScale keeps unit tests quick; the cmd/corgibench tool runs at 1.0.
const smallScale = 0.05

func runExperiment(t *testing.T, id string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(&buf, id, smallScale); err != nil {
		t.Fatalf("experiment %s: %v", id, err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== "+id) {
		t.Fatalf("experiment %s output missing header:\n%s", id, out)
	}
	return out
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"fig19", "fig20", "table1", "table2", "table3", "ablation", "theory", "drift",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestRegistryOrdering(t *testing.T) {
	ids := []string{}
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	// Within a prefix, numeric order: fig10 must follow fig9 (not fig1).
	for i, id := range ids {
		if id == "fig10" && ids[i-1] != "fig9" {
			t.Fatalf("fig10 should follow fig9, got %v", ids)
		}
		if id == "fig2" && ids[i-1] != "fig1" {
			t.Fatalf("fig2 should follow fig1, got %v", ids)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, "fig99", 1); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestFig1ShapesHold(t *testing.T) {
	out := runExperiment(t, "fig1")
	for _, needle := range []string{"MADlib", "Bismarck", "CorgiPile", "Convergence", "End-to-end"} {
		if !strings.Contains(out, needle) {
			t.Errorf("fig1 output missing %q", needle)
		}
	}
}

func TestFig3DistributionShapes(t *testing.T) {
	out := runExperiment(t, "fig3")
	// Every baseline section appears with its metrics.
	for _, needle := range []string{"No Shuffle", "Sliding-Window", "MRS", "Full Shuffle", "order correlation", "negatives per 20-tuple window"} {
		if !strings.Contains(out, needle) {
			t.Errorf("fig3 missing %q", needle)
		}
	}
}

func TestFig4CorgiOrderNearIdeal(t *testing.T) {
	// Quantitative check of the Figure 3/4 claim: CorgiPile's order
	// correlation is far below the sliding window's.
	swIDs, _, err := emitOrder("sliding_window", 1000, 20, 0.10, 1)
	if err != nil {
		t.Fatal(err)
	}
	cpIDs, cpLabels, err := emitOrder("corgipile", 1000, 20, 0.20, 1)
	if err != nil {
		t.Fatal(err)
	}
	swCorr := orderCorr(swIDs)
	cpCorr := orderCorr(cpIDs)
	if cpCorr > 0.5*swCorr {
		t.Fatalf("corgipile correlation %.3f should be far below sliding window %.3f", cpCorr, swCorr)
	}
	_ = cpLabels
	runExperiment(t, "fig4")
}

func TestFig20ThroughputTable(t *testing.T) {
	out := runExperiment(t, "fig20")
	if !strings.Contains(out, "sequential") || !strings.Contains(out, "64KB") {
		t.Fatalf("fig20 output malformed:\n%s", out)
	}
}

func TestTable1AndTable3(t *testing.T) {
	out := runExperiment(t, "table1")
	if !strings.Contains(out, "2x data size") {
		t.Error("table1 missing disk-overhead column")
	}
	out = runExperiment(t, "table3")
	if !strings.Contains(out, "gap(train)") {
		t.Error("table3 missing gap column")
	}
}

func TestQuickExperimentsRun(t *testing.T) {
	// The remaining experiments at tiny scale: they must complete and emit
	// their tables. (fig7/fig11/fig16 are heavier; they run in the
	// benchmark suite.)
	for _, id := range []string{"fig2", "fig5", "fig13", "fig19"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			runExperiment(t, id)
		})
	}
}

func orderCorr(ids []int64) float64 {
	return stats.OrderCorrelation(ids)
}

// TestAllExperimentsRunTiny executes every registered experiment at a tiny
// scale, exercising each runner end to end. Skipped under -short: the full
// sweep takes tens of seconds.
func TestAllExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment sweep; run without -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := e.Run(&buf, smallScale); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestRunAllTinyOnSubset(t *testing.T) {
	// RunAll's wiring (header + error propagation), on the cheap end only:
	// replicate its loop over two light experiments.
	var buf bytes.Buffer
	for _, id := range []string{"fig20", "table2"} {
		if err := Run(&buf, id, smallScale); err != nil {
			t.Fatal(err)
		}
	}
	// Each header line is "=== id — title (paper) ===" (two markers).
	if got := strings.Count(buf.String(), "==="); got != 4 {
		t.Fatalf("header markers = %d, want 4", got)
	}
}
