package bench

import (
	"runtime"
	"time"

	"corgipile/internal/obs"
)

// Stamp records the provenance of a benchmark artifact: the git revision and
// Go toolchain that produced it, plus an optional timestamp. Committed
// BENCH_*.json baselines carry one so a -compare run can report what it is
// comparing against.
type Stamp struct {
	GitSHA    string `json:"git_sha"`
	GoVersion string `json:"go_version"`
	Time      string `json:"time,omitempty"`
}

// NewStamp returns a stamp for the current build. The timestamp is injected
// by the caller (zero time omits it) so report generation itself stays
// deterministic.
func NewStamp(now time.Time) Stamp {
	s := Stamp{GitSHA: obs.GitSHA(), GoVersion: runtime.Version()}
	if !now.IsZero() {
		s.Time = now.UTC().Format(time.RFC3339)
	}
	return s
}
