package bench

import (
	"fmt"
	"io"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/shuffle"
	"corgipile/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig14",
		Title: "Sensitivity: buffer size (a) and block size (b)",
		Paper: "Figure 14",
		Run:   runFig14,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "Per-epoch time: in-DB CorgiPile vs out-of-DB (PyTorch-style) loop",
		Paper: "Figure 15",
		Run:   runFig15,
	})
	register(Experiment{
		ID:    "fig20",
		Title: "Random block-read throughput vs block size (Appendix A)",
		Paper: "Figure 20",
		Run:   runFig20,
	})
}

// runFig14 sweeps CorgiPile's two knobs on the large workloads: buffer
// fraction (convergence) and block size (per-epoch time).
func runFig14(w io.Writer, scale float64) error {
	// (a) Buffer-size sensitivity: convergence at 1/2/5/10%.
	for _, workload := range []string{"criteo", "yfcc"} {
		tab := stats.NewTable(fmt.Sprintf("(a) CorgiPile convergence on %s by buffer size", workload),
			"buffer", "e1", "e2", "e4", "final acc")
		soFinal := 0.0
		{
			o, err := run(spec{
				workload: workload, order: data.OrderClustered, scale: scale,
				model: "svm", lr: glmLR[workload], decay: glmDecay, epochs: 8,
				kind: shuffle.KindShuffleOnce, inMemory: true,
			})
			if err != nil {
				return err
			}
			soFinal = o.finalAcc()
			p := o.res.Points
			tab.AddRow("Shuffle Once", p[0].TrainAcc, p[1].TrainAcc, p[3].TrainAcc, soFinal)
		}
		for _, frac := range []float64{0.01, 0.02, 0.05, 0.10} {
			o, err := run(spec{
				workload: workload, order: data.OrderClustered, scale: scale,
				model: "svm", lr: glmLR[workload], decay: glmDecay, epochs: 8,
				kind: shuffle.KindCorgiPile, bufferFrac: frac, inMemory: true,
			})
			if err != nil {
				return err
			}
			p := o.res.Points
			tab.AddRow(fmt.Sprintf("%.0f%%", frac*100), p[0].TrainAcc, p[1].TrainAcc, p[3].TrainAcc, o.finalAcc())
		}
		if err := tab.Write(w); err != nil {
			return err
		}
	}

	// (b) Block-size sensitivity: per-epoch time on HDD. The paper sweeps
	// 2/10/50 MB blocks; here the sweep is expressed relative to this
	// dataset's 10 MB-equivalent block (1/5x, 1x, 5x).
	tab := stats.NewTable("(b) CorgiPile per-epoch time on HDD by block size",
		"dataset", "2MB-equiv", "10MB-equiv", "50MB-equiv")
	for _, workload := range []string{"criteo", "yfcc"} {
		base := paperBlockEquiv(data.Generate(workload, scale, data.OrderClustered))
		row := []any{workload}
		for _, bs := range []int64{base / 5, base, base * 5} {
			o, err := run(spec{
				workload: workload, order: data.OrderClustered, scale: scale,
				model: "svm", lr: glmLR[workload], decay: glmDecay, epochs: 3,
				kind: shuffle.KindCorgiPile, device: iosim.HDD, blockSize: bs,
				compress: compressedWorkloads[workload],
			})
			if err != nil {
				return err
			}
			row = append(row, fmtSecs(o.perEpoch))
		}
		tab.AddRow(row...)
	}
	return tab.Write(w)
}

// runFig15 compares per-epoch time of the in-DB stack against an
// out-of-DB in-memory loop with interpreter-style per-tuple overhead (the
// paper's PyTorch comparison), plus CorgiPile-vs-NoShuffle overhead outside
// the DB.
func runFig15(w io.Writer, scale float64) error {
	// Per-tuple Python/C++ dispatch overhead: the paper observes PyTorch is
	// 2–16x slower per tuple than the in-DB C path on GLM datasets.
	const pyOverhead = 12.0

	tab := stats.NewTable("Per-epoch time (SVM, SSD)",
		"dataset", "in-DB CorgiPile", "PyTorch-style (No Shuffle)", "PyTorch-style (CorgiPile)", "in-DB speedup", "CP-vs-NS overhead outside DB")
	for _, workload := range data.GLMDatasets {
		inDB, err := run(spec{
			workload: workload, order: data.OrderClustered, scale: scale,
			model: "svm", lr: glmLR[workload], decay: glmDecay, epochs: 4,
			kind: shuffle.KindCorgiPile, double: true, device: iosim.SSD,
			compress: compressedWorkloads[workload],
		})
		if err != nil {
			return err
		}
		pyNS, err := run(spec{
			workload: workload, order: data.OrderClustered, scale: scale,
			model: "svm", lr: glmLR[workload], decay: glmDecay, epochs: 4,
			kind: shuffle.KindNoShuffle, inMemory: true, computeScale: pyOverhead,
		})
		if err != nil {
			return err
		}
		pyCP, err := run(spec{
			workload: workload, order: data.OrderClustered, scale: scale,
			model: "svm", lr: glmLR[workload], decay: glmDecay, epochs: 4,
			kind: shuffle.KindCorgiPile, inMemory: true, computeScale: pyOverhead,
		})
		if err != nil {
			return err
		}
		tab.AddRow(workload,
			fmtSecs(inDB.perEpoch), fmtSecs(pyNS.perEpoch), fmtSecs(pyCP.perEpoch),
			fmt.Sprintf("%.1fx", pyNS.perEpoch/inDB.perEpoch),
			fmt.Sprintf("%+.1f%%", (pyCP.perEpoch/pyNS.perEpoch-1)*100))
	}
	return tab.Write(w)
}

// runFig20 reproduces the Appendix A I/O study: random block-read
// throughput approaches sequential throughput as blocks grow.
func runFig20(w io.Writer, scale float64) error {
	const total = 1 << 30
	tab := stats.NewTable("Random block-read throughput (MB/s)",
		"block size", "hdd", "hdd % of seq", "ssd", "ssd % of seq")
	seqHDD := iosim.SequentialReadThroughput(iosim.HDD, total)
	seqSSD := iosim.SequentialReadThroughput(iosim.SSD, total)
	for bs := int64(64 << 10); bs <= 64<<20; bs *= 4 {
		h := iosim.RandomBlockReadThroughput(iosim.HDD, total, bs)
		s := iosim.RandomBlockReadThroughput(iosim.SSD, total, bs)
		tab.AddRow(formatBytes(bs),
			fmt.Sprintf("%.1f", h/1e6), fmt.Sprintf("%.1f%%", h/seqHDD*100),
			fmt.Sprintf("%.1f", s/1e6), fmt.Sprintf("%.1f%%", s/seqSSD*100))
	}
	tab.AddRow("sequential", fmt.Sprintf("%.1f", seqHDD/1e6), "100%",
		fmt.Sprintf("%.1f", seqSSD/1e6), "100%")
	return tab.Write(w)
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
