package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/dist"
	"corgipile/internal/iosim"
	"corgipile/internal/ml"
	"corgipile/internal/shuffle"
	"corgipile/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Deep model on imagenet-like data, 8 workers: end-to-end convergence",
		Paper: "Figure 7",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Deep models on clustered cifar-like data, batch 128/256",
		Paper: "Figure 8",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Text models on clustered yelp-like data",
		Paper: "Figure 9",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Adam instead of SGD on clustered cifar-like data",
		Paper: "Figure 10",
		Run:   runFig10,
	})
}

// runFig7 reproduces the ImageNet experiment: 8 data-parallel workers on a
// block-based parallel file system. Shuffle Once pays a long preprocessing
// sort; CorgiPile starts training immediately and converges to the same
// accuracy ~1.5x sooner end-to-end.
func runFig7(w io.Writer, scale float64) error {
	n := int(20000 * scale)
	if n < 1000 {
		n = 1000
	}
	// A 100-class, heavily overlapping dataset: the clustered order is
	// fatal for unshuffled scanning, as for the paper's 1000-class
	// ImageNet.
	ds := data.SyntheticMulticlass(data.SyntheticConfig{
		Name: "imagenet-like", Tuples: n, Features: 64, Classes: 100,
		Separation: 2.0, Noise: 1.0, Order: data.OrderClustered, Seed: 107})
	model := ml.MLP{Classes: ds.Classes, Hidden: 48}

	// Parallel-file-system block fetch cost, calibrated against the
	// dataset's byte size at 5 MB-class blocks.
	const blockTuples = 100
	blocks := (ds.Len() + blockTuples - 1) / blockTuples
	bytesPerBlock := float64(ds.ByteSize()) / float64(blocks)
	readBW := 500e6 // per-worker Lustre-class stream
	blockCost := time.Duration(bytesPerBlock / readBW * float64(time.Second))

	// The MLP gradient stands in for a ResNet50 forward+backward, which
	// costs roughly 500x more per image; the factor restores the paper's
	// compute/shuffle balance.
	const resnetComputeScale = 500

	type mode struct {
		name           string
		noBlockShuffle bool
		noTupleShuffle bool
		prep           time.Duration
	}
	// Shuffle Once's prep: the paper measured ~8.5 hours to shuffle the
	// 150 GB dataset on Lustre — roughly half of the total training time.
	// A 1 MB/s effective sort rate reproduces that balance against this
	// dataset's compute budget.
	prep := time.Duration(float64(ds.ByteSize()) / 1e6 * float64(time.Second))
	modes := []mode{
		{name: "No Shuffle", noBlockShuffle: true, noTupleShuffle: true},
		{name: "Shuffle Once", noBlockShuffle: true, noTupleShuffle: true, prep: prep},
		{name: "CorgiPile"},
	}

	tab := stats.NewTable("8-worker training (top-1 accuracy)",
		"mode", "prep", "e2 acc", "e5 acc", "final acc", "total time", "time to 95% of best")
	const epochs = 12
	best := 0.0
	type res struct {
		points []float64
		times  []float64
		prep   float64
	}
	results := make([]res, len(modes))
	for i, m := range modes {
		clock := iosim.NewClock()
		clock.Advance(m.prep)
		train := ds
		if m.name == "Shuffle Once" {
			train = ds.Clone()
			train.Shuffle(rand.New(rand.NewSource(7)))
		}
		r, err := dist.Train(train, dist.Config{
			Workers: 8, Epochs: epochs, GlobalBatch: 512, BufferFraction: 0.1,
			BlockTuples: blockTuples, Seed: 7,
			NoBlockShuffle: m.noBlockShuffle, NoTupleShuffle: m.noTupleShuffle,
			Model: model, Opt: ml.NewSGD(0.2), Features: ds.Features,
			ComputeScale: resnetComputeScale,
			InitWeights: func(w []float64) {
				model.InitWeights(w, ds.Features, rand.New(rand.NewSource(7)))
			},
			Clock: clock, BlockReadCost: blockCost,
			SyncCost: 100 * time.Microsecond,
			Eval:     ds,
		})
		if err != nil {
			return err
		}
		rr := res{prep: m.prep.Seconds()}
		for _, p := range r.Points {
			rr.points = append(rr.points, p.TrainAcc)
			rr.times = append(rr.times, m.prep.Seconds()+p.Seconds)
		}
		results[i] = rr
		if a := rr.points[len(rr.points)-1]; a > best {
			best = a
		}
	}
	for i, m := range modes {
		rr := results[i]
		target := best * 0.95
		tta := rr.times[len(rr.times)-1]
		mark := " (never)"
		for j, a := range rr.points {
			if a >= target {
				tta = rr.times[j]
				mark = ""
				break
			}
		}
		tab.AddRow(m.name, fmtSecs(rr.prep), rr.points[1], rr.points[4],
			rr.points[len(rr.points)-1], fmtSecs(rr.times[len(rr.times)-1]), fmtSecs(tta)+mark)
	}
	return tab.Write(w)
}

// hardCifar is the Figure 8/10 dataset: a cifar-like 10-class problem with
// substantial class overlap, so that the recency bias of unshuffled
// training costs real accuracy (the role batch-norm interference plays for
// the paper's VGG/ResNet).
func hardCifar(scale float64) *data.Dataset {
	n := int(5000 * scale)
	if n < 500 {
		n = 500
	}
	return data.SyntheticMulticlass(data.SyntheticConfig{
		Name: "cifar10-like", Tuples: n, Features: 64, Classes: 10,
		Separation: 1.5, Noise: 1.0, Order: data.OrderClustered, Seed: 106})
}

// hardYelp is the Figure 9 dataset: sparse 5-class text-like data.
func hardYelp(scale float64) *data.Dataset {
	n := int(8000 * scale)
	if n < 500 {
		n = 500
	}
	return data.SyntheticMulticlass(data.SyntheticConfig{
		Name: "yelp-like", Tuples: n, Features: 5000, Classes: 5,
		Sparse: true, NNZ: 60, Separation: 4, Noise: 1.0,
		Order: data.OrderClustered, Seed: 108})
}

// dlSweep runs the Figure 8/9/10 strategy sweep over a dataset/model pair.
func dlSweep(w io.Writer, title string, ds *data.Dataset, model, optimizer string, lr float64, batches []int) error {
	kinds := []shuffle.Kind{
		shuffle.KindShuffleOnce, shuffle.KindNoShuffle,
		shuffle.KindSlidingWindow, shuffle.KindMRS, shuffle.KindCorgiPile,
	}
	for _, batch := range batches {
		tab := stats.NewTable(fmt.Sprintf("%s (batch %d)", title, batch),
			"strategy", "e2 acc", "e10 acc", "final acc")
		for _, kind := range kinds {
			o, err := runOnDataset(ds, spec{
				workload: ds.Name,
				model:    model, optimizer: optimizer, lr: lr, batch: batch, epochs: 20,
				kind: kind, inMemory: true,
			}, nil)
			if err != nil {
				return err
			}
			p := o.res.Points
			tab.AddRow(strategyLabel(kind), p[1].TrainAcc, p[9].TrainAcc, o.finalAcc())
		}
		if err := tab.Write(w); err != nil {
			return err
		}
	}
	return nil
}

func runFig8(w io.Writer, scale float64) error {
	return dlSweep(w, "MLP on clustered cifar10-like", hardCifar(scale), "mlp", "sgd", 0.3, []int{128, 256})
}

func runFig9(w io.Writer, scale float64) error {
	return dlSweep(w, "Softmax text model on clustered yelp-like", hardYelp(scale), "softmax", "sgd", 0.3, []int{128, 256})
}

func runFig10(w io.Writer, scale float64) error {
	return dlSweep(w, "MLP with Adam on clustered cifar10-like", hardCifar(scale), "mlp", "adam", 0.01, []int{128, 256})
}
