package bench

import (
	"fmt"
	"io"

	"corgipile/internal/data"
	"corgipile/internal/dist"
	"corgipile/internal/iosim"
	"corgipile/internal/ml"
	"corgipile/internal/shuffle"
	"corgipile/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "SVM on clustered higgs: convergence and end-to-end time per system",
		Paper: "Figure 1",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "fig2",
		Title: "Convergence of all shuffling strategies on clustered and shuffled data",
		Paper: "Figure 2",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Tuple-id and label distributions of baseline shuffles",
		Paper: "Figure 3",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Tuple-id and label distribution of CorgiPile",
		Paper: "Figure 4",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "table1",
		Title: "Summary of shuffling strategies (measured)",
		Paper: "Table 1",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Multi-process vs single-process CorgiPile data order",
		Paper: "Figure 5",
		Run:   runFig5,
	})
}

// runFig1 reproduces the motivating figure: today's systems on clustered
// data either converge to low accuracy (No Shuffle, sliding window) or pay
// a huge shuffle cost (Shuffle Once). MADlib carries a per-tuple compute
// multiplier for its extra statistics (Section 7.3.1).
func runFig1(w io.Writer, scale float64) error {
	type system struct {
		name         string
		kind         shuffle.Kind
		computeScale float64
	}
	systems := []system{
		{"MADlib (No Shuffle)", shuffle.KindNoShuffle, 3},
		{"Bismarck (No Shuffle)", shuffle.KindNoShuffle, 1},
		{"TensorFlow (Sliding-Window)", shuffle.KindSlidingWindow, 1},
		{"Bismarck (Shuffle Once)", shuffle.KindShuffleOnce, 1},
		{"CorgiPile", shuffle.KindCorgiPile, 1},
	}
	conv := stats.NewTable("(a) Convergence: train accuracy by epoch", "system", "e1", "e3", "e5", "e10", "final")
	perf := stats.NewTable("(b) End-to-end time on HDD", "system", "shuffle prep", "time to 98% of best acc", "total", "final acc")

	best := 0.0
	outs := make([]*out, len(systems))
	for i, sys := range systems {
		o, err := run(spec{
			workload: "higgs", order: data.OrderClustered, scale: scale,
			model: "svm", lr: glmLR["higgs"], decay: glmDecay, epochs: 10,
			kind: sys.kind, device: iosim.HDD, computeScale: sys.computeScale,
		})
		if err != nil {
			return err
		}
		outs[i] = o
		if a := o.finalAcc(); a > best {
			best = a
		}
	}
	for i, sys := range systems {
		o := outs[i]
		p := o.res.Points
		conv.AddRow(sys.name, p[0].TrainAcc, p[2].TrainAcc, p[4].TrainAcc, p[9].TrainAcc, o.finalAcc())
		tta, reached := o.timeToAccuracy(best * 0.98)
		mark := ""
		if !reached {
			mark = " (never)"
		}
		perf.AddRow(sys.name, fmtSecs(o.prep), fmtSecs(tta)+mark, fmtSecs(o.total), o.finalAcc())
	}
	if err := conv.Write(w); err != nil {
		return err
	}
	return perf.Write(w)
}

// runFig2 sweeps the five baseline strategies plus CorgiPile over both
// clustered and shuffled versions of a GLM workload and a multi-class
// (deep-learning stand-in) workload.
func runFig2(w io.Writer, scale float64) error {
	kinds := []shuffle.Kind{
		shuffle.KindEpochShuffle, shuffle.KindShuffleOnce, shuffle.KindNoShuffle,
		shuffle.KindSlidingWindow, shuffle.KindMRS, shuffle.KindCorgiPile,
	}
	for _, wl := range []struct {
		workload, model string
		lr              float64
		batch           int
	}{
		{"higgs", "svm", 0.05, 1},
		{"cifar10", "mlp", 0.02, 16},
	} {
		for _, order := range []data.Order{data.OrderClustered, data.OrderShuffled} {
			tab := stats.NewTable(
				fmt.Sprintf("%s (%s data, %s)", wl.workload, order, wl.model),
				"strategy", "e1", "e3", "e6", "final acc")
			for _, kind := range kinds {
				o, err := run(spec{
					workload: wl.workload, order: order, scale: scale,
					model: wl.model, lr: wl.lr, batch: wl.batch, epochs: 8,
					kind: kind, inMemory: true,
				})
				if err != nil {
					return err
				}
				p := o.res.Points
				tab.AddRow(strategyLabel(kind), p[0].TrainAcc, p[2].TrainAcc, p[5].TrainAcc, o.finalAcc())
			}
			if err := tab.Write(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// distReport renders the Figure 3/4 distribution summary for one strategy.
func distReport(w io.Writer, name string, ids []int64, labels []float64) error {
	tab := stats.NewTable(name,
		"metric", "value")
	tab.AddRow("order correlation (1=unshuffled, 0=ideal)", stats.OrderCorrelation(ids))
	tab.AddRow("mean displacement (0=unshuffled, ~0.33=ideal)", stats.MeanDisplacement(ids))
	tab.AddRow("label mix score (0=clustered, 1=ideal)", stats.LabelMixScore(labels, 20))
	if err := tab.Write(w); err != nil {
		return err
	}
	// Windowed negative counts, the paper's label-distribution bars.
	wins := stats.LabelWindows(labels, 20)
	negs := make([]float64, 0, len(wins))
	for _, win := range wins {
		negs = append(negs, float64(win.Neg))
	}
	fmt.Fprintf(w, "negatives per 20-tuple window: %s\n\n", stats.Sparkline(negs))
	return nil
}

// runFig3 reproduces the 1000-tuple distribution study for the baselines.
func runFig3(w io.Writer, scale float64) error {
	const tuples, perBlock = 1000, 20
	for _, kind := range []shuffle.Kind{shuffle.KindNoShuffle, shuffle.KindSlidingWindow, shuffle.KindMRS} {
		ids, labels, err := emitOrder(kind, tuples, perBlock, 0.10, 1)
		if err != nil {
			return err
		}
		if err := distReport(w, strategyLabel(kind), ids, labels); err != nil {
			return err
		}
	}
	ids, labels := fullShuffleOrder(tuples, 1)
	return distReport(w, "Full Shuffle (ideal)", ids, labels)
}

// runFig4 is the same study for CorgiPile with a 10-block buffer.
func runFig4(w io.Writer, scale float64) error {
	ids, labels, err := emitOrder(shuffle.KindCorgiPile, 1000, 20, 0.20, 1)
	if err != nil {
		return err
	}
	return distReport(w, "CorgiPile (buffer = 10 blocks)", ids, labels)
}

// runTable1 measures the qualitative summary of Table 1: convergence on
// clustered data, epoch-1 I/O throughput class, buffer need, and disk
// overhead.
func runTable1(w io.Writer, scale float64) error {
	tab := stats.NewTable("Strategy summary (measured on clustered higgs, HDD)",
		"strategy", "final acc", "per-epoch time", "prep time", "extra disk")
	for _, kind := range []shuffle.Kind{
		shuffle.KindNoShuffle, shuffle.KindEpochShuffle, shuffle.KindShuffleOnce,
		shuffle.KindMRS, shuffle.KindSlidingWindow, shuffle.KindCorgiPile,
	} {
		o, err := run(spec{
			workload: "higgs", order: data.OrderClustered, scale: scale,
			model: "svm", lr: glmLR["higgs"], decay: glmDecay, epochs: 8,
			kind: kind, device: iosim.HDD,
		})
		if err != nil {
			return err
		}
		disk := "none"
		if kind == shuffle.KindShuffleOnce || kind == shuffle.KindEpochShuffle {
			disk = "2x data size"
		}
		tab.AddRow(strategyLabel(kind), o.finalAcc(), fmtSecs(o.perEpoch), fmtSecs(o.prep), disk)
	}
	return tab.Write(w)
}

// runFig5 compares the merged data order of multi-process CorgiPile with
// the single-process order via the Figure 3/4 metrics.
func runFig5(w io.Writer, scale float64) error {
	n := int(2000 * scale)
	if n < 400 {
		n = 400
	}
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: n, Features: 2, Order: data.OrderClustered, Seed: 91})

	multi, err := dist.EffectiveOrder(ds, dist.Config{
		Workers: 2, GlobalBatch: 32, BlockTuples: 20, BufferFraction: 0.2,
		Seed: 1, Model: ml.SVM{}, Opt: ml.NewSGD(0.1), Features: 2,
	})
	if err != nil {
		return err
	}
	single, err := dist.EffectiveOrder(ds, dist.Config{
		Workers: 1, GlobalBatch: 32, BlockTuples: 20, BufferFraction: 0.2,
		Seed: 1, Model: ml.SVM{}, Opt: ml.NewSGD(0.1), Features: 2,
	})
	if err != nil {
		return err
	}
	labelsOf := func(ids []int64) []float64 {
		labels := make([]float64, len(ids))
		for i, id := range ids {
			labels[i] = ds.Tuples[id].Label
		}
		return labels
	}
	tab := stats.NewTable("Data-order quality: multi-process vs single-process",
		"mode", "order correlation", "label mix score")
	tab.AddRow("2 workers (DDP)", stats.OrderCorrelation(multi), stats.LabelMixScore(labelsOf(multi), 20))
	tab.AddRow("1 worker", stats.OrderCorrelation(single), stats.LabelMixScore(labelsOf(single), 20))
	return tab.Write(w)
}
