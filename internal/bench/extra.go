package bench

import (
	"fmt"
	"io"

	"corgipile/internal/core"
	"corgipile/internal/data"
	"corgipile/internal/ml"
	"corgipile/internal/shuffle"
	"corgipile/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "ablation",
		Title: "CorgiPile design ablations: block shuffle, tuple shuffle, buffering",
		Paper: "DESIGN.md",
		Run:   runAblation,
	})
	register(Experiment{
		ID:    "theory",
		Title: "h_D estimates and Theorem 1/2 bounds per workload",
		Paper: "Section 4.2",
		Run:   runTheory,
	})
}

// runAblation isolates each of CorgiPile's design choices on one clustered
// workload: remove the tuple-level shuffle (Block-Only), remove the
// block-level shuffle (a sequentially filled shuffle buffer — exactly the
// sliding-window family), shrink the buffer, and disable double buffering.
func runAblation(w io.Writer, scale float64) error {
	tab := stats.NewTable("Ablations on clustered higgs (SVM, HDD)",
		"variant", "final acc", "per-epoch time", "Δacc vs full", "Δtime vs full")
	type variant struct {
		name string
		s    spec
	}
	base := spec{
		workload: "higgs", order: data.OrderClustered, scale: scale,
		model: "svm", lr: glmLR["higgs"], decay: glmDecay, epochs: 8,
	}
	full := base
	full.kind, full.double = shuffle.KindCorgiPile, true
	variants := []variant{
		{"CorgiPile (full)", full},
		{"− tuple shuffle (Block-Only)", func() spec { s := base; s.kind = shuffle.KindBlockOnly; return s }()},
		{"− block shuffle (Sliding-Window)", func() spec { s := base; s.kind = shuffle.KindSlidingWindow; return s }()},
		{"− double buffering", func() spec { s := full; s.double = false; return s }()},
		{"buffer 1% instead of 10%", func() spec { s := full; s.bufferFrac = 0.01; return s }()},
		{"− everything (No Shuffle)", func() spec { s := base; s.kind = shuffle.KindNoShuffle; return s }()},
	}
	var fullOut *out
	for i, v := range variants {
		o, err := run(v.s)
		if err != nil {
			return err
		}
		if i == 0 {
			fullOut = o
		}
		tab.AddRow(v.name, o.finalAcc(), fmtSecs(o.perEpoch),
			fmt.Sprintf("%+.3f", o.finalAcc()-fullOut.finalAcc()),
			fmt.Sprintf("%+.1f%%", (o.perEpoch/fullOut.perEpoch-1)*100))
	}
	return tab.Write(w)
}

// runTheory estimates h_D at the zero-weight point for every GLM workload
// in clustered and shuffled order, evaluates the Theorem 1/2 bounds, and
// prints the buffer size the bound recommends — the paper's analysis
// machinery turned into a tool.
func runTheory(w io.Writer, scale float64) error {
	tab := stats.NewTable("Block-variance factor h_D and recommended buffers (LR at w=0)",
		"dataset", "order", "h_D", "thm1 bound @10%", "thm2 bound @10%", "recommended buffer")
	for _, workload := range data.GLMDatasets {
		for _, order := range []data.Order{data.OrderClustered, data.OrderShuffled} {
			ds := data.Generate(workload, scale, order)
			blockTuples := ds.Len() / 256
			if blockTuples < 1 {
				blockTuples = 1
			}
			model := ml.LogisticRegression{}
			wts := make([]float64, model.Dim(ds.Features))
			hd := core.HDFactor(model, wts, ds, blockTuples)

			n := (ds.Len() + blockTuples - 1) / blockTuples
			params := core.BoundParams{
				N: n, Nbuf: n / 10, B: blockTuples, M: ds.Len(),
				HD: hd, Sigma2: 1, T: 8 * ds.Len(),
			}
			rec, _, _ := core.RecommendBuffer(params, 1.10)
			tab.AddRow(workload, order.String(),
				fmt.Sprintf("%.2f", hd),
				fmt.Sprintf("%.3g", core.Theorem1Bound(params)),
				fmt.Sprintf("%.3g", core.Theorem2Bound(params)),
				fmt.Sprintf("%d/%d blocks (%.1f%%)", rec, n, float64(rec)/float64(n)*100))
		}
	}
	return tab.Write(w)
}

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Dataset inventory: synthetic stand-ins and their shapes",
		Paper: "Table 2",
		Run:   runTable2,
	})
}

// runTable2 materializes every workload and reports its actual shape — the
// reproduction's counterpart of the paper's dataset table.
func runTable2(w io.Writer, scale float64) error {
	tab := stats.NewTable("Workloads at scale "+fmt.Sprintf("%.2g", scale),
		"paper dataset", "stand-in", "type", "tuples", "features", "classes", "bytes")
	names := []string{"higgs", "susy", "epsilon", "criteo", "yfcc", "cifar10", "imagenet", "yelp", "yearpred", "mini8m"}
	for _, name := range names {
		ds := data.Generate(name, scale, data.OrderClustered)
		kind := "dense"
		if ds.Len() > 0 && ds.Tuples[0].IsSparse() {
			kind = "sparse"
		}
		classes := fmt.Sprintf("%d", ds.Classes)
		if ds.Task == data.TaskRegression {
			classes = "—"
		}
		tab.AddRow(name, ds.Name, kind, ds.Len(), ds.Features, classes, ds.ByteSize())
	}
	return tab.Write(w)
}

func init() {
	register(Experiment{
		ID:    "drift",
		Title: "Timestamp-ordered data under concept drift",
		Paper: "Section 1 motivation",
		Run:   runDrift,
	})
}

// runDrift exercises the introduction's other clustered-order source: data
// ordered by timestamp under concept drift. Scanning in storage order
// leaves the model fitted to the most recent concept only; CorgiPile mixes
// the stream and recovers Shuffle-Once accuracy.
func runDrift(w io.Writer, scale float64) error {
	n := int(8000 * scale)
	if n < 800 {
		n = 800
	}
	ds := data.SyntheticDrift(data.SyntheticConfig{
		Name: "drift", Tuples: n, Features: 16, Separation: 2.0, Noise: 1.0,
		Order: data.OrderClustered, Seed: 77})
	tab := stats.NewTable("SVM on timestamp-ordered drifting data",
		"strategy", "e1", "e4", "final acc")
	for _, kind := range []shuffle.Kind{shuffle.KindNoShuffle, shuffle.KindSlidingWindow, shuffle.KindCorgiPile, shuffle.KindShuffleOnce} {
		o, err := runOnDataset(ds, spec{
			workload: "drift", model: "svm", lr: 0.05, decay: glmDecay, epochs: 8,
			kind: kind, inMemory: true,
		}, nil)
		if err != nil {
			return err
		}
		p := o.res.Points
		tab.AddRow(strategyLabel(kind), p[0].TrainAcc, p[3].TrainAcc, o.finalAcc())
	}
	return tab.Write(w)
}
