package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// Compare re-runs the benchmark suite behind a committed BENCH_*.json
// baseline and reports per-metric regressions against it. The report kind is
// detected from the JSON shape (rows → hotpath, grid → fault sweep). It
// returns the number of regressions found; callers typically exit non-zero
// when it is positive.
//
// Tolerance applies to wall-clock metrics only (ns/op, tuples/s), as a
// relative slack: 0.5 allows the current run to be up to 50% slower before a
// time regression fires. Zero or negative selects the default (0.5 — micro
// benchmarks on shared machines are noisy). Allocation counts and the
// simulated fault sweep are deterministic, so they are compared (near-)
// exactly regardless of tolerance.
func Compare(w io.Writer, path string, tolerance float64) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var probe struct {
		Stamp Stamp             `json:"stamp"`
		Rows  []json.RawMessage `json:"rows"`
		Grid  []json.RawMessage `json:"grid"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return 0, fmt.Errorf("bench: %s: %w", path, err)
	}
	if probe.Stamp.GitSHA != "" {
		fmt.Fprintf(w, "baseline %s: git %s, %s", path, probe.Stamp.GitSHA, probe.Stamp.GoVersion)
		if probe.Stamp.Time != "" {
			fmt.Fprintf(w, ", %s", probe.Stamp.Time)
		}
		fmt.Fprintln(w)
	}
	switch {
	case probe.Rows != nil:
		return compareHotpath(w, raw, tolerance)
	case probe.Grid != nil:
		return compareFaults(w, raw)
	}
	return 0, fmt.Errorf("bench: %s: neither a hotpath nor a fault-sweep report", path)
}

// compareHotpath re-measures the hot-path suite and compares row by row:
// allocation counts and bytes strictly (the hot path is allocation-free by
// construction, so any increase is a real leak), time within tolerance.
func compareHotpath(w io.Writer, raw []byte, tolerance float64) (int, error) {
	var base HotpathReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return 0, err
	}
	if tolerance <= 0 {
		tolerance = 0.5
	}
	cur := HotpathRun()
	byName := make(map[string]HotpathRow, len(cur.Rows))
	for _, r := range cur.Rows {
		byName[r.Name] = r
	}

	regressions := 0
	fail := func(format string, args ...any) {
		regressions++
		fmt.Fprintf(w, "  REGRESSION "+format+"\n", args...)
	}
	for _, b := range base.Rows {
		c, ok := byName[b.Name]
		if !ok {
			fail("%s: benchmark missing from current suite", b.Name)
			continue
		}
		okRow := true
		if c.AllocsPerOp > b.AllocsPerOp {
			fail("%s: allocs/op %d -> %d", b.Name, b.AllocsPerOp, c.AllocsPerOp)
			okRow = false
		}
		if c.BytesPerOp > b.BytesPerOp {
			fail("%s: bytes/op %d -> %d", b.Name, b.BytesPerOp, c.BytesPerOp)
			okRow = false
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+tolerance) {
			fail("%s: ns/op %.1f -> %.1f (>%.0f%% slower)",
				b.Name, b.NsPerOp, c.NsPerOp, tolerance*100)
			okRow = false
		}
		if okRow {
			fmt.Fprintf(w, "  ok %-26s %12.1f ns/op  %3d allocs/op\n",
				b.Name, c.NsPerOp, c.AllocsPerOp)
		}
	}
	fmt.Fprintf(w, "hotpath compare: %d rows, %d regressions (time tolerance %.0f%%)\n",
		len(base.Rows), regressions, tolerance*100)
	return regressions, nil
}

// compareFaults re-runs the (fully simulated, deterministic) fault sweep and
// compares every cell near-exactly.
func compareFaults(w io.Writer, raw []byte) (int, error) {
	var base FaultSweepReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return 0, err
	}
	cur, err := FaultSweepRun(io.Discard)
	if err != nil {
		return 0, err
	}

	regressions := 0
	fail := func(format string, args ...any) {
		regressions++
		fmt.Fprintf(w, "  REGRESSION "+format+"\n", args...)
	}
	if !closeEnough(base.CleanAcc, cur.CleanAcc) {
		fail("clean_acc %.6f -> %.6f", base.CleanAcc, cur.CleanAcc)
	}
	if len(base.Grid) != len(cur.Grid) {
		fail("grid size %d -> %d", len(base.Grid), len(cur.Grid))
	} else {
		for i := range base.Grid {
			regressions += compareCell(w, fmt.Sprintf("grid[%d]", i), base.Grid[i], cur.Grid[i])
		}
	}
	regressions += compareCell(w, "corrupt_skip_scenario", base.Corrupt, cur.Corrupt)
	fmt.Fprintf(w, "fault-sweep compare: %d cells, %d regressions\n",
		len(base.Grid)+1, regressions)
	return regressions, nil
}

// compareCell compares one fault-sweep cell and returns the number of
// mismatches it printed.
func compareCell(w io.Writer, name string, b, c FaultCell) int {
	n := 0
	fail := func(format string, args ...any) {
		n++
		fmt.Fprintf(w, "  REGRESSION %s (err=%.2f retries=%d): "+format+"\n",
			append([]any{name, b.ReadErrorProb, b.Retries}, args...)...)
	}
	if b.Completed != c.Completed {
		fail("completed %v -> %v (%s)", b.Completed, c.Completed, c.Error)
	}
	if b.Completed && c.Completed {
		if !closeEnough(b.FinalLoss, c.FinalLoss) {
			fail("final_loss %.6f -> %.6f", b.FinalLoss, c.FinalLoss)
		}
		if !closeEnough(b.FinalAcc, c.FinalAcc) {
			fail("final_acc %.6f -> %.6f", b.FinalAcc, c.FinalAcc)
		}
	}
	if b.TransientErrors != c.TransientErrors {
		fail("transient_errors %d -> %d", b.TransientErrors, c.TransientErrors)
	}
	if b.RetriesUsed != c.RetriesUsed {
		fail("retries_used %d -> %d", b.RetriesUsed, c.RetriesUsed)
	}
	if b.SkippedTuples != c.SkippedTuples {
		fail("skipped_tuples %d -> %d", b.SkippedTuples, c.SkippedTuples)
	}
	if !closeEnough(b.SimSeconds, c.SimSeconds) {
		fail("sim_seconds %.6f -> %.6f", b.SimSeconds, c.SimSeconds)
	}
	return n
}

// closeEnough compares two floats with a tiny relative epsilon — the sweep is
// deterministic, so this only absorbs formatting round-trips.
func closeEnough(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}
