package bench

import (
	"fmt"
	"math/rand"
	"time"

	"corgipile/internal/core"
	"corgipile/internal/data"
	"corgipile/internal/executor"
	"corgipile/internal/iosim"
	"corgipile/internal/ml"
	"corgipile/internal/obs"
	"corgipile/internal/shuffle"
	"corgipile/internal/storage"
)

// spec fully describes one training run on simulated storage.
type spec struct {
	workload string
	order    data.Order
	scale    float64

	model     string
	optimizer string
	lr        float64
	decay     float64
	epochs    int
	batch     int
	procs     int

	kind       shuffle.Kind
	bufferFrac float64
	double     bool

	device    iosim.Profile
	blockSize int64
	compress  bool

	seed         int64
	computeScale float64
	inMemory     bool // skip the storage engine (PyTorch-style in-memory)

	// reg, when non-nil, collects cross-layer metrics: it is attached to the
	// simulated clock, the device, the shuffle strategy, and the training
	// loop, so out.res.Breakdown carries one row per epoch.
	reg *obs.Registry
	// feed, when non-nil, receives one live status update per epoch; runName
	// labels the updates.
	feed    *obs.RunFeed
	runName string
	// diag, when non-nil, enables the convergence diagnostics.
	diag *core.DiagConfig
	// explain routes the run through the Volcano executor with per-operator
	// profiling; out.res.Plan then carries the annotated plan tree. The
	// executor engine ignores computeScale and test-set evaluation.
	explain bool
}

func (s spec) withDefaults() spec {
	if s.scale == 0 {
		s.scale = 1
	}
	if s.model == "" {
		s.model = "svm"
	}
	if s.lr == 0 {
		s.lr = 0.05
	}
	if s.decay == 0 {
		s.decay = 0.95
	}
	if s.epochs == 0 {
		s.epochs = 10
	}
	if s.kind == "" {
		s.kind = shuffle.KindCorgiPile
	}
	if s.bufferFrac == 0 {
		s.bufferFrac = 0.1
	}
	if s.device.Name == "" {
		s.device = iosim.SSD
	}
	if s.seed == 0 {
		s.seed = 1
	}
	return s
}

// paperBlockEquiv returns the block size playing the role of the paper's
// recommended 10 MB setting for this (scaled-down) dataset: 1/256 of the
// data, i.e. N = 256 blocks — the same block-count regime as 50 GB tables
// with 10 MB blocks at paper scale.
func paperBlockEquiv(ds *data.Dataset) int64 {
	b := ds.ByteSize() / 256
	if b < 2<<10 {
		b = 2 << 10
	}
	return b
}

// scaledDevice shrinks the profile's seek latency in proportion to the
// dataset's shrinkage (default block vs the paper's 10 MB), preserving the
// paper's seek-to-transfer ratio at every block size in a sweep.
func scaledDevice(prof iosim.Profile, ds *data.Dataset) iosim.Profile {
	scale := float64(paperBlockEquiv(ds)) / float64(10<<20)
	if scale > 1 {
		scale = 1
	}
	prof.SeekLatency = time.Duration(float64(prof.SeekLatency) * scale)
	return prof
}

// bigWorkloads marks the datasets that exceed the paper machine's 32 GB RAM
// (criteo, yfcc): their tables never fully fit the OS cache, so every epoch
// stays disk-bound (Section 7.3.4).
var bigWorkloads = map[string]bool{"criteo": true, "yfcc": true}

// cacheBytes models the OS cache capacity relative to the dataset.
func cacheBytes(workload string, ds *data.Dataset) int64 {
	if bigWorkloads[workload] {
		return ds.ByteSize() * 3 / 10
	}
	return ds.ByteSize() * 4
}

// out is the outcome of one run.
type out struct {
	res *core.Result
	// prep is the simulated time of strategy preprocessing (Shuffle Once's
	// full sort); total is prep plus all epochs.
	prep, total float64
	// perEpoch is the mean per-epoch time over the steady-state epochs
	// (epoch 2 onward when available, since epoch 1 warms the OS cache).
	perEpoch float64
	// ds is the generated dataset, for follow-up analysis.
	ds *data.Dataset
}

// run executes the spec and collects its timing summary.
func run(s spec) (*out, error) {
	s = s.withDefaults()
	return runOnDataset(data.Generate(s.workload, s.scale, s.order), s, nil)
}

// splitEval holds out 20% of the dataset for test evaluation, preserving
// the train set's physical order.
func splitEval(ds *data.Dataset) (train, test *data.Dataset) {
	return ds.Split(0.2, rand.New(rand.NewSource(997)))
}

// runOnDataset executes the spec over an explicit dataset, optionally
// evaluating a held-out test set each epoch.
func runOnDataset(ds *data.Dataset, s spec, test *data.Dataset) (*out, error) {
	s = s.withDefaults()
	clock := iosim.NewClock()
	s.reg.WithClock(clock)
	var src shuffle.Source
	if s.inMemory {
		// Match the on-device regime: N = 256 blocks.
		perBlock := ds.Len() / 256
		if perBlock < 1 {
			perBlock = 1
		}
		src = shuffle.NewMemSource(ds, perBlock).WithClock(clock, 0)
	} else {
		if s.blockSize == 0 {
			s.blockSize = paperBlockEquiv(ds)
		}
		dev := iosim.NewDevice(scaledDevice(s.device, ds), clock).
			WithCache(cacheBytes(s.workload, ds)).WithObs(s.reg)
		tab, err := storage.Build(dev, ds, storage.Options{
			BlockSize: s.blockSize,
			Compress:  s.compress,
		})
		if err != nil {
			return nil, err
		}
		src = shuffle.TableSource(tab)
	}

	model, err := ml.New(s.model, ds.Classes)
	if err != nil {
		return nil, err
	}
	opt, err := ml.NewOptimizer(s.optimizer, s.lr)
	if err != nil {
		return nil, err
	}
	if sgd, ok := opt.(*ml.SGD); ok {
		sgd.Decay = s.decay
	}

	var res *core.Result
	var prep float64
	if s.explain {
		pc := executor.PlanConfig{
			Shuffle:        s.kind,
			BufferFraction: s.bufferFrac,
			DoubleBuffer:   s.double,
			Seed:           s.seed,
			Profile:        true,
			SGD: executor.SGDConfig{
				Model:     model,
				Opt:       opt,
				Features:  ds.Features,
				Epochs:    s.epochs,
				BatchSize: s.batch,
				Procs:     s.procs,
				Clock:     clock,
				Eval:      ds,
				Obs:       s.reg,
				Feed:      s.feed,
				Diag:      s.diag,
				RunName:   s.runName,
			},
		}
		if mlp, ok := model.(ml.MLP); ok {
			pc.SGD.InitWeights = core.MLPInit(mlp, ds.Features, s.seed)
		}
		op, err := executor.BuildSGDPlan(src, pc)
		if err != nil {
			return nil, err
		}
		prep = clock.Now().Seconds() // Shuffle Once pays its sort at build.
		res, err = op.RunResult()
		if err != nil {
			return nil, err
		}
	} else {
		st, err := shuffle.New(s.kind, src, shuffle.Options{
			BufferFraction: s.bufferFrac,
			Seed:           s.seed,
			DoubleBuffer:   s.double,
			Obs:            s.reg,
		})
		if err != nil {
			return nil, err
		}
		prep = clock.Now().Seconds() // Shuffle Once pays its sort here.

		cfg := core.RunConfig{
			Strategy:     st,
			Model:        model,
			Opt:          opt,
			Features:     ds.Features,
			Epochs:       s.epochs,
			BatchSize:    s.batch,
			Procs:        s.procs,
			Clock:        clock,
			TrainEval:    ds,
			TestEval:     test,
			ComputeScale: s.computeScale,
			Obs:          s.reg,
			Diag:         s.diag,
			Feed:         s.feed,
			RunName:      s.runName,
		}
		if mlp, ok := model.(ml.MLP); ok {
			cfg.InitWeights = core.MLPInit(mlp, ds.Features, s.seed)
		}
		res, err = core.Run(cfg)
		if err != nil {
			return nil, err
		}
	}

	o := &out{res: res, prep: prep, total: clock.Now().Seconds(), ds: ds}
	// Steady-state per-epoch time.
	pts := res.Points
	if len(pts) >= 2 {
		o.perEpoch = (pts[len(pts)-1].Seconds - pts[0].Seconds) / float64(len(pts)-1)
	} else if len(pts) == 1 {
		o.perEpoch = pts[0].Seconds
	}
	return o, nil
}

// timeToAccuracy returns the simulated time (seconds, including prep) at
// which the run first reached the target accuracy, or its total time and
// false if it never did.
func (o *out) timeToAccuracy(target float64) (float64, bool) {
	for _, p := range o.res.Points {
		if p.TrainAcc >= target {
			return o.prep + p.Seconds, true
		}
	}
	return o.total, false
}

// finalAcc returns the run's converged train accuracy (R² for regression):
// the best value over the last half of the epochs, the plateau the paper's
// convergence plots read off. Late-epoch SGD fluctuates around the plateau,
// so the last single epoch under-reports it.
func (o *out) finalAcc() float64 {
	pts := o.res.Points
	if len(pts) == 0 {
		return 0
	}
	best := 0.0
	for _, p := range pts[len(pts)/2:] {
		if p.TrainAcc > best {
			best = p.TrainAcc
		}
	}
	return best
}

// strategyLabel gives the display name the paper uses for a strategy.
func strategyLabel(k shuffle.Kind) string {
	switch k {
	case shuffle.KindNoShuffle:
		return "No Shuffle"
	case shuffle.KindShuffleOnce:
		return "Shuffle Once"
	case shuffle.KindEpochShuffle:
		return "Epoch Shuffle"
	case shuffle.KindSlidingWindow:
		return "Sliding-Window"
	case shuffle.KindMRS:
		return "MRS"
	case shuffle.KindBlockOnly:
		return "Block-Only"
	case shuffle.KindCorgiPile:
		return "CorgiPile"
	}
	return string(k)
}

// emitOrder draws one epoch of the strategy over a clustered dataset and
// returns the emitted tuple ids and labels — the raw material of the
// Figure 3/4 distribution plots.
func emitOrder(kind shuffle.Kind, tuples, perBlock int, bufferFrac float64, seed int64) (ids []int64, labels []float64, err error) {
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: tuples, Features: 2, Order: data.OrderClustered, Seed: 90 + seed})
	src := shuffle.NewMemSource(ds, perBlock)
	st, err := shuffle.New(kind, src, shuffle.Options{BufferFraction: bufferFrac, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	it, err := st.StartEpoch(0)
	if err != nil {
		return nil, nil, err
	}
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		ids = append(ids, t.ID)
		labels = append(labels, t.Label)
	}
	return ids, labels, it.Err()
}

// fullShuffleOrder returns the ideal full-shuffle order for comparison.
func fullShuffleOrder(tuples int, seed int64) (ids []int64, labels []float64) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(tuples)
	for _, p := range perm {
		ids = append(ids, int64(p))
		label := -1.0
		if p >= tuples/2 {
			label = 1.0
		}
		labels = append(labels, label)
	}
	return ids, labels
}

// fmtSecs renders seconds compactly.
func fmtSecs(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0fs", s)
	case s >= 1:
		return fmt.Sprintf("%.1fs", s)
	case s >= 0.001:
		return fmt.Sprintf("%.1fms", s*1000)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}
