package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"corgipile/internal/data"
	"corgipile/internal/ml"
)

// HotpathRow is one measured micro-benchmark of the gradient hot path.
type HotpathRow struct {
	// Name identifies the benchmark, e.g. "grad/svm" or "epoch/batch64/procs=4".
	Name string `json:"name"`
	// NsPerOp is nanoseconds per operation; AllocsPerOp and BytesPerOp are
	// heap allocations and bytes per operation (the hot path targets 0).
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// TuplesPerSec is training throughput for epoch-granularity benchmarks
	// (zero for per-call benchmarks).
	TuplesPerSec float64 `json:"tuples_per_sec,omitempty"`
}

// HotpathReport is the full hot-path benchmark suite result, the payload of
// BENCH_hotpath.json. CPUs and Gomaxprocs record the measurement machine:
// multi-proc speedups are only observable when Gomaxprocs > 1.
type HotpathReport struct {
	// Stamp records the git revision, Go version and (when injected)
	// timestamp of the run that produced the report.
	Stamp      Stamp        `json:"stamp"`
	CPUs       int          `json:"cpus"`
	Gomaxprocs int          `json:"gomaxprocs"`
	Rows       []HotpathRow `json:"rows"`
	// EpochSpeedup4 is mini-batch epoch throughput at 4 procs relative to 1
	// proc (values near 1.0 are expected on single-core machines).
	EpochSpeedup4 float64 `json:"epoch_speedup_procs4_vs_1"`
}

// hotpathModels mirrors the BenchmarkGrad model/dataset matrix in
// internal/ml's benchmarks, for the programmatic runner.
func hotpathModels() []struct {
	name  string
	model ml.Model
	ds    *data.Dataset
	init  func(w []float64)
} {
	dense := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 512, Features: 28, Order: data.OrderShuffled, Seed: 11})
	sparse := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 512, Features: 1000, Sparse: true, NNZ: 32,
		Order: data.OrderShuffled, Seed: 12})
	multi := data.SyntheticMulticlass(data.SyntheticConfig{
		Tuples: 512, Features: 28, Classes: 5, Order: data.OrderShuffled, Seed: 13})
	mlp := ml.MLP{Classes: 5, Hidden: 32}
	fm := ml.FactorizationMachine{Factors: 8}
	return []struct {
		name  string
		model ml.Model
		ds    *data.Dataset
		init  func(w []float64)
	}{
		{"lr", ml.LogisticRegression{}, dense, nil},
		{"svm", ml.SVM{}, dense, nil},
		{"svm_sparse", ml.SVM{}, sparse, nil},
		{"linreg", ml.LinearRegression{}, dense, nil},
		{"softmax", ml.Softmax{Classes: 5}, multi, nil},
		{"mlp", mlp, multi, func(w []float64) {
			mlp.InitWeights(w, multi.Features, rand.New(rand.NewSource(1)))
		}},
		{"fm", fm, dense, func(w []float64) {
			fm.InitWeights(w, dense.Features, 0.01, rand.New(rand.NewSource(1)))
		}},
	}
}

// row converts a testing.BenchmarkResult.
func row(name string, r testing.BenchmarkResult, tuplesPerOp int) HotpathRow {
	h := HotpathRow{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if tuplesPerOp > 0 && r.NsPerOp() > 0 {
		h.TuplesPerSec = float64(tuplesPerOp) * 1e9 / float64(r.NsPerOp())
	}
	return h
}

// Hotpath runs the gradient hot-path micro-benchmark suite via
// testing.Benchmark, prints a human-readable table to w, and, when out is
// non-nil, writes the JSON report (the BENCH_hotpath.json artifact) to out.
// The stamp is embedded in the report.
func Hotpath(w io.Writer, out io.Writer, stamp Stamp) error {
	rep := HotpathRun()
	rep.Stamp = stamp

	fmt.Fprintf(w, "hot path (cpus=%d gomaxprocs=%d)\n", rep.CPUs, rep.Gomaxprocs)
	for _, h := range rep.Rows {
		fmt.Fprintf(w, "  %-26s %12.1f ns/op  %3d allocs/op", h.Name, h.NsPerOp, h.AllocsPerOp)
		if h.TuplesPerSec > 0 {
			fmt.Fprintf(w, "  %10.0f tuples/s", h.TuplesPerSec)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "epoch speedup, 4 procs vs 1: %.2fx\n", rep.EpochSpeedup4)

	if out != nil {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	}
	return nil
}

// HotpathRun measures the hot-path suite and returns the (unstamped) report;
// the -compare mode uses it to regenerate current numbers silently.
func HotpathRun() HotpathReport {
	rep := HotpathReport{CPUs: runtime.NumCPU(), Gomaxprocs: runtime.GOMAXPROCS(0)}

	// Per-model gradient evaluation: the innermost operation.
	for _, bm := range hotpathModels() {
		bm := bm
		r := testing.Benchmark(func(b *testing.B) {
			wv := make([]float64, bm.model.Dim(bm.ds.Features))
			if bm.init != nil {
				bm.init(wv)
			}
			var ws ml.Workspace
			var gi []int32
			var gv []float64
			_, gi, gv = ml.GradWS(bm.model, &ws, wv, bm.ds.At(0), gi[:0], gv[:0])
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := bm.ds.At(i % bm.ds.Len())
				_, gi, gv = ml.GradWS(bm.model, &ws, wv, t, gi[:0], gv[:0])
			}
		})
		rep.Rows = append(rep.Rows, row("grad/"+bm.name, r, 0))
	}

	// Mini-batch engine step at several worker counts.
	stepDS := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 256, Features: 28, Order: data.OrderShuffled, Seed: 21})
	batch := make([]data.Tuple, stepDS.Len())
	for i := range batch {
		batch[i] = *stepDS.At(i)
	}
	for _, procs := range []int{1, 2, 4} {
		procs := procs
		r := testing.Benchmark(func(b *testing.B) {
			m := ml.SVM{}
			opt := ml.NewSGD(0.01)
			wv := make([]float64, m.Dim(stepDS.Features))
			opt.Reset(len(wv))
			eng := ml.NewBatchEngine(m, procs)
			defer eng.Close()
			var acc ml.GradAccumulator
			acc.Reset(len(wv))
			var lossSum float64
			eng.Accumulate(wv, batch, &acc, &lossSum)
			acc.Step(opt, wv, len(batch))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := eng.Accumulate(wv, batch, &acc, &lossSum)
				acc.Step(opt, wv, n)
			}
		})
		rep.Rows = append(rep.Rows, row(fmt.Sprintf("batchstep/procs=%d", procs), r, len(batch)))
	}

	// End-to-end trainer epoch: per-tuple and mini-batch at several procs.
	epochDS := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 4096, Features: 28, Order: data.OrderShuffled, Seed: 31})
	epoch := func(batchSize, procs int) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			m := ml.SVM{}
			tr := ml.NewTrainer(m, ml.NewSGD(0.01), batchSize)
			tr.Procs = procs
			defer tr.Close()
			wv := make([]float64, m.Dim(epochDS.Features))
			tr.Opt.Reset(len(wv))
			// One resettable stream, constructed outside the timed loop so
			// the epochs themselves are allocation-free.
			pos := 0
			next := func() (*data.Tuple, bool) {
				if pos >= epochDS.Len() {
					return nil, false
				}
				t := epochDS.At(pos)
				pos++
				return t, true
			}
			tr.RunEpoch(wv, next)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pos = 0
				tr.RunEpoch(wv, next)
			}
		})
	}
	rep.Rows = append(rep.Rows, row("epoch/tuple", epoch(1, 1), epochDS.Len()))
	var ns1, ns4 float64
	for _, procs := range []int{1, 2, 4} {
		r := epoch(64, procs)
		h := row(fmt.Sprintf("epoch/batch64/procs=%d", procs), r, epochDS.Len())
		rep.Rows = append(rep.Rows, h)
		switch procs {
		case 1:
			ns1 = h.NsPerOp
		case 4:
			ns4 = h.NsPerOp
		}
	}
	if ns4 > 0 {
		rep.EpochSpeedup4 = ns1 / ns4
	}
	return rep
}
