package executor

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/ml"
	"corgipile/internal/obs"
	"corgipile/internal/shuffle"
	"corgipile/internal/storage"
)

// profileKinds are the five strategies the profiling invariants are held
// to: the three dedicated operator plans plus two strategy-fallback plans.
var profileKinds = []shuffle.Kind{
	shuffle.KindNoShuffle,
	shuffle.KindBlockOnly,
	shuffle.KindCorgiPile,
	shuffle.KindSlidingWindow,
	shuffle.KindMRS,
}

// The exclusive-time attribution must telescope: summing each node's self
// simulated time over the whole tree recovers the root's total simulated
// time within 0.1%, for every strategy — including CorgiPile's
// double-buffer pipeline, whose clock rewinds land inside measured windows.
func TestProfileSelfTimeSumsToTotal(t *testing.T) {
	for _, kind := range profileKinds {
		t.Run(string(kind), func(t *testing.T) {
			clock := iosim.NewClock()
			ds := data.SyntheticBinary(data.SyntheticConfig{
				Tuples: 400, Features: 6, Separation: 1.5, Noise: 1.0,
				Order: data.OrderClustered, Seed: 61})
			src := shuffle.NewMemSource(ds, 20).WithClock(clock, 250*time.Microsecond)
			cfg := PlanConfig{
				Shuffle:      kind,
				DoubleBuffer: kind == shuffle.KindCorgiPile,
				Seed:         3,
				Profile:      true,
				Filter:       func(tp *data.Tuple) bool { return tp.ID%2 == 0 },
				FilterDesc:   "id % 2 = 0",
				SGD: SGDConfig{
					Model: ml.SVM{}, Opt: ml.NewSGD(0.05),
					Features: ds.Features, Epochs: 3, Clock: clock,
				},
			}
			op, err := BuildSGDPlan(src, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := op.Run(); err != nil {
				t.Fatal(err)
			}
			plan := op.Plan()
			if plan == nil {
				t.Fatal("profiled plan missing")
			}
			if plan.Epoch != 3 {
				t.Fatalf("plan epoch = %d, want 3", plan.Epoch)
			}
			// MRS resamples, so only the operator plans emit exactly
			// half the tuples (the filter's share) per epoch.
			if kind != shuffle.KindMRS && plan.Rows != 3*200 {
				t.Fatalf("root rows = %d, want %d (filter keeps half)", plan.Rows, 3*200)
			}
			if plan.Rows == 0 {
				t.Fatal("no rows recorded at the root")
			}
			total := plan.TotalSimSeconds
			if total <= 0 {
				t.Fatal("no simulated time recorded")
			}
			sum := plan.SelfSimSum()
			if diff := math.Abs(sum - total); diff > 0.001*total {
				t.Fatalf("Σ self = %.9fs, root total = %.9fs: off by %.3g (> 0.1%%)",
					sum, total, diff)
			}
		})
	}
}

// Profiling is read-only: the same plan with and without Profile produces
// bit-identical epoch rows (loss, accuracy, simulated seconds, tuples).
func TestProfiledTrainingMatchesUnprofiled(t *testing.T) {
	run := func(profile bool) []EpochRow {
		clock := iosim.NewClock()
		ds := data.SyntheticBinary(data.SyntheticConfig{
			Tuples: 300, Features: 6, Separation: 1.5, Noise: 1.0,
			Order: data.OrderClustered, Seed: 61})
		src := shuffle.NewMemSource(ds, 15).WithClock(clock, 100*time.Microsecond)
		cfg := PlanConfig{
			Shuffle:      shuffle.KindCorgiPile,
			DoubleBuffer: true,
			Seed:         7,
			Profile:      profile,
			SGD: SGDConfig{
				Model: ml.SVM{}, Opt: ml.NewSGD(0.05),
				Features: ds.Features, Epochs: 4, Clock: clock, Eval: ds,
			},
		}
		op, err := BuildSGDPlan(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := op.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	plain, profiled := run(false), run(true)
	if !reflect.DeepEqual(plain, profiled) {
		t.Fatalf("profiling changed the training trace:\nplain:    %+v\nprofiled: %+v", plain, profiled)
	}
}

// obsStaticClock pins the obs registry's timestamps so JSONL traces can be
// compared byte-for-byte.
type obsStaticClock struct{}

func (obsStaticClock) Now() time.Duration { return 0 }

// The JSONL event trace must be bit-identical with profiling on and off:
// the profiler reads clocks but never emits obs events of its own.
func TestProfiledTraceBytesIdentical(t *testing.T) {
	trace := func(profile bool) []byte {
		var buf bytes.Buffer
		reg := obs.New().WithClock(obsStaticClock{}).StreamTo(&buf)
		clock := iosim.NewClock()
		ds := data.SyntheticBinary(data.SyntheticConfig{
			Tuples: 300, Features: 6, Separation: 1.5, Noise: 1.0,
			Order: data.OrderClustered, Seed: 61})
		src := shuffle.NewMemSource(ds, 15).WithClock(clock, 100*time.Microsecond)
		op, err := BuildSGDPlan(src, PlanConfig{
			Shuffle:      shuffle.KindCorgiPile,
			DoubleBuffer: true,
			Seed:         7,
			Profile:      profile,
			SGD: SGDConfig{
				Model: ml.SVM{}, Opt: ml.NewSGD(0.05),
				Features: ds.Features, Epochs: 3, Clock: clock, Obs: reg,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := op.Run(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain, profiled := trace(false), trace(true)
	if len(plain) == 0 {
		t.Fatal("no trace emitted")
	}
	if !bytes.Equal(plain, profiled) {
		t.Fatalf("profiling changed the JSONL trace:\nplain:    %s\nprofiled: %s", plain, profiled)
	}
}

// A plan over a storage table attributes the device traffic to the
// access-path leaf, and the time invariant holds with real simulated I/O.
func TestProfileDeviceIOAttribution(t *testing.T) {
	clock := iosim.NewClock()
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 500, Features: 6, Separation: 1.5, Noise: 1.0,
		Order: data.OrderClustered, Seed: 61})
	dev := iosim.NewDevice(iosim.SSD, clock).WithCache(1 << 30)
	tab, err := storage.Build(dev, ds, storage.Options{BlockSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := PlanConfig{
		Shuffle: shuffle.KindCorgiPile,
		Seed:    1,
		Profile: true,
		SGD: SGDConfig{
			Model: ml.SVM{}, Opt: ml.NewSGD(0.05),
			Features: ds.Features, Epochs: 2, Clock: clock,
		},
	}
	op, err := BuildSGDPlan(shuffle.TableSource(tab), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := op.Run(); err != nil {
		t.Fatal(err)
	}
	plan := op.Plan()
	if len(plan.Children) != 1 || len(plan.Children[0].Children) != 1 {
		t.Fatalf("unexpected plan shape:\n%s", plan.Text(false))
	}
	leaf := plan.Children[0].Children[0]
	if leaf.Name != "BlockShuffle" {
		t.Fatalf("leaf = %s, want BlockShuffle", leaf.Name)
	}
	if leaf.BytesRead == 0 || leaf.BlocksRead == 0 {
		t.Fatalf("leaf I/O not attributed: read=%d blocks=%d", leaf.BytesRead, leaf.BlocksRead)
	}
	buf := plan.Children[0]
	if buf.BufferCap == 0 || buf.BufferPeak == 0 || buf.BufferPeak > buf.BufferCap {
		t.Fatalf("buffer high-water mark wrong: peak=%d cap=%d", buf.BufferPeak, buf.BufferCap)
	}
	total := plan.TotalSimSeconds
	if total <= 0 {
		t.Fatal("no simulated time recorded")
	}
	if diff := math.Abs(plan.SelfSimSum() - total); diff > 0.001*total {
		t.Fatalf("Σ self off by %.3g of total %.9fs", diff, total)
	}
}

// Golden static plans for the five profiled strategies. These exact strings
// double as the baseline for the EXPLAIN ANALYZE renderer: stripping the
// "(actual: ...)" annotations must recover them (see
// TestAnalyzeTextStripsToStaticPlan).
func TestDescribePlanGolden(t *testing.T) {
	src := memSource(100, 10, data.OrderClustered)
	base := PlanConfig{SGD: SGDConfig{Model: ml.SVM{}, Opt: ml.NewSGD(0.1), Epochs: 3}}
	golden := []struct {
		kind   shuffle.Kind
		double bool
		want   string
	}{
		{shuffle.KindNoShuffle, false,
			"SGD (model=svm optimizer=sgd epochs=3 batch=1)\n" +
				"└─ Scan (blocks=10, sequential)\n"},
		{shuffle.KindBlockOnly, false,
			"SGD (model=svm optimizer=sgd epochs=3 batch=1)\n" +
				"└─ BlockShuffle (blocks=10, reshuffled per epoch)\n"},
		{shuffle.KindCorgiPile, true,
			"SGD (model=svm optimizer=sgd epochs=3 batch=1)\n" +
				"└─ TupleShuffle (buffer=10 tuples ≈ 10%, double-buffer)\n" +
				"   └─ BlockShuffle (blocks=10, reshuffled per epoch)\n"},
		{shuffle.KindSlidingWindow, false,
			"SGD (model=svm optimizer=sgd epochs=3 batch=1)\n" +
				"└─ Strategy[sliding_window] (buffer=10% of 100 tuples)\n"},
		{shuffle.KindMRS, false,
			"SGD (model=svm optimizer=sgd epochs=3 batch=1)\n" +
				"└─ Strategy[mrs] (buffer=10% of 100 tuples)\n"},
	}
	for _, g := range golden {
		cfg := base
		cfg.Shuffle = g.kind
		cfg.DoubleBuffer = g.double
		if got := DescribePlan(src, cfg); got != g.want {
			t.Errorf("%s plan:\n got: %q\nwant: %q", g.kind, got, g.want)
		}
	}
}

// Stripping the " (actual: ...)" annotations from an executed plan's
// EXPLAIN ANALYZE text recovers the static EXPLAIN text byte-for-byte, for
// every strategy.
func TestAnalyzeTextStripsToStaticPlan(t *testing.T) {
	for _, kind := range profileKinds {
		clock := iosim.NewClock()
		ds := data.SyntheticBinary(data.SyntheticConfig{
			Tuples: 200, Features: 6, Separation: 1.5, Noise: 1.0,
			Order: data.OrderClustered, Seed: 61})
		src := shuffle.NewMemSource(ds, 20).WithClock(clock, 50*time.Microsecond)
		cfg := PlanConfig{
			Shuffle: kind,
			Seed:    5,
			Profile: true,
			SGD: SGDConfig{
				Model: ml.SVM{}, Opt: ml.NewSGD(0.05),
				Features: ds.Features, Epochs: 2, Clock: clock,
			},
		}
		op, err := BuildSGDPlan(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := op.Run(); err != nil {
			t.Fatal(err)
		}
		analyzed := op.Plan().Text(true)
		var stripped strings.Builder
		for _, line := range strings.Split(strings.TrimRight(analyzed, "\n"), "\n") {
			if i := strings.Index(line, " (actual: "); i >= 0 {
				line = line[:i]
			}
			stripped.WriteString(line)
			stripped.WriteString("\n")
		}
		static := DescribePlan(src, cfg)
		if stripped.String() != static {
			t.Errorf("%s: stripped ANALYZE text diverged from EXPLAIN:\n got: %q\nwant: %q",
				kind, stripped.String(), static)
		}
	}
}

// Plan() on an unprofiled operator returns nil — callers can always ask.
func TestPlanNilWithoutProfile(t *testing.T) {
	src := memSource(100, 10, data.OrderClustered)
	op, err := BuildSGDPlan(src, PlanConfig{
		Shuffle: shuffle.KindCorgiPile,
		SGD:     SGDConfig{Model: ml.SVM{}, Opt: ml.NewSGD(0.1), Features: 6, Epochs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := op.Run(); err != nil {
		t.Fatal(err)
	}
	if op.Plan() != nil {
		t.Fatal("unprofiled plan should be nil")
	}
}

// RunResult adapts the operator run to the library's core.Result, carrying
// the profile tree.
func TestRunResultCarriesPlan(t *testing.T) {
	clock := iosim.NewClock()
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 200, Features: 6, Separation: 1.5, Noise: 1.0,
		Order: data.OrderClustered, Seed: 61})
	src := shuffle.NewMemSource(ds, 20).WithClock(clock, 50*time.Microsecond)
	op, err := BuildSGDPlan(src, PlanConfig{
		Shuffle: shuffle.KindCorgiPile,
		Profile: true,
		SGD: SGDConfig{
			Model: ml.SVM{}, Opt: ml.NewSGD(0.05),
			Features: ds.Features, Epochs: 2, Clock: clock, Eval: ds,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := op.RunResult()
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("RunResult dropped the plan")
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	if res.Points[1].AvgLoss == 0 || res.Points[1].Tuples != 200 {
		t.Fatalf("bad final point: %+v", res.Points[1])
	}
}
