package executor

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/obs"
)

// timedOp is a child operator that charges fixed simulated I/O time per
// tuple; after n tuples it either ends the scan or returns err.
type timedOp struct {
	clock *iosim.Clock
	cost  time.Duration
	total int
	err   error

	left int
}

func (o *timedOp) Init() error { o.left = o.total; return nil }
func (o *timedOp) Next() (*data.Tuple, bool, error) {
	if o.left <= 0 {
		return nil, false, o.err
	}
	o.left--
	o.clock.Advance(o.cost)
	return &data.Tuple{ID: int64(o.total - o.left), Dense: []float64{1}}, true, nil
}
func (o *timedOp) ReScan() error { o.left = o.total; return nil }
func (o *timedOp) Close() error  { return nil }

// pipelinedShuffle builds a double-buffered TupleShuffleOp over a timed child.
func pipelinedShuffle(t *testing.T, clock *iosim.Clock, child Operator, capacity int, reg *obs.Registry) *TupleShuffleOp {
	t.Helper()
	op := NewTupleShuffle(child, capacity, rand.New(rand.NewSource(7)))
	op.DoubleBuffer = true
	op.Clock = clock
	op.Obs = reg
	if err := op.Init(); err != nil {
		t.Fatal(err)
	}
	return op
}

// TestErroringChildSettlesPipeline: when the child fails mid-refill, the
// operator must propagate the error with the pipeline settled — no open
// consume interval (op.consuming) and the clock at or past the pipeline's
// completion time — rather than leaving the epoch's accounting dangling.
func TestErroringChildSettlesPipeline(t *testing.T) {
	sentinel := errors.New("storage failed")
	clock := iosim.NewClock()
	reg := obs.New().WithClock(clock)
	child := &timedOp{clock: clock, cost: time.Millisecond, total: 25, err: sentinel}
	op := pipelinedShuffle(t, clock, child, 10, reg)
	defer op.Close()

	var got error
	for {
		_, ok, err := op.Next()
		if err != nil {
			got = err
			break
		}
		if !ok {
			break
		}
		clock.Advance(100 * time.Microsecond) // consumer compute
	}
	if !errors.Is(got, sentinel) {
		t.Fatalf("error = %v, want sentinel", got)
	}
	if op.consuming {
		t.Fatal("consume interval left open after child error")
	}
	if end := op.pipe.End(); clock.Now() < end {
		t.Fatalf("clock %v left before pipeline end %v", clock.Now(), end)
	}
	// The 25 serial milliseconds of child I/O must all have been charged.
	if clock.Now() < 25*time.Millisecond {
		t.Fatalf("clock %v lost charged fill time", clock.Now())
	}
	// The consume time up to the failure must have reached the registry.
	if reg.Counter(obs.ShuffleConsumeNanos) <= 0 {
		t.Fatal("consume time of the aborted epoch was not recorded")
	}
}

// TestCloseMidEpochSettlesClock: closing a partially-consumed pipelined
// epoch must close the open consume interval (recording its time) and leave
// the clock at or past the pipeline's completion time, without rewinding.
func TestCloseMidEpochSettlesClock(t *testing.T) {
	clock := iosim.NewClock()
	reg := obs.New().WithClock(clock)
	child := &timedOp{clock: clock, cost: time.Millisecond, total: 100}
	op := pipelinedShuffle(t, clock, child, 10, reg)

	// Consume past the first refill so a second fill and a consume interval
	// are both in flight.
	for i := 0; i < 15; i++ {
		if _, ok, err := op.Next(); err != nil || !ok {
			t.Fatalf("Next() = %v, %v", ok, err)
		}
		clock.Advance(200 * time.Microsecond)
	}
	consumed := reg.Counter(obs.ShuffleConsumeNanos)
	before := clock.Now()
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	if op.consuming {
		t.Fatal("consume interval left open after Close")
	}
	if clock.Now() < before {
		t.Fatalf("Close rewound the clock: %v -> %v", before, clock.Now())
	}
	if end := op.pipe.End(); clock.Now() < end {
		t.Fatalf("clock %v left before pipeline end %v", clock.Now(), end)
	}
	if after := reg.Counter(obs.ShuffleConsumeNanos); after <= consumed {
		t.Fatalf("open consume interval not recorded on Close: %d -> %d", consumed, after)
	}
}

// TestReScanMidEpochSettlesThenCovers: a mid-epoch ReScan settles the
// abandoned epoch's pipeline and the following epoch still covers the whole
// child exactly once with monotonically advancing simulated time.
func TestReScanMidEpochSettlesThenCovers(t *testing.T) {
	clock := iosim.NewClock()
	reg := obs.New().WithClock(clock)
	child := &timedOp{clock: clock, cost: time.Millisecond, total: 60}
	op := pipelinedShuffle(t, clock, child, 10, reg)
	defer op.Close()

	for i := 0; i < 12; i++ {
		if _, ok, err := op.Next(); err != nil || !ok {
			t.Fatalf("Next() = %v, %v", ok, err)
		}
		clock.Advance(100 * time.Microsecond)
	}
	before := clock.Now()
	if err := op.ReScan(); err != nil {
		t.Fatal(err)
	}
	if clock.Now() < before {
		t.Fatalf("ReScan rewound the clock: %v -> %v", before, clock.Now())
	}

	seen := map[int64]bool{}
	for {
		tup, ok, err := op.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if seen[tup.ID] {
			t.Fatalf("tuple %d emitted twice after ReScan", tup.ID)
		}
		seen[tup.ID] = true
	}
	if len(seen) != 60 {
		t.Fatalf("epoch after mid-epoch ReScan covered %d tuples, want 60", len(seen))
	}
}
