package executor

import (
	"fmt"
	"math/rand"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/obs"
)

// TupleShuffleOp buffers tuples pulled from its child and emits them in
// shuffled order — the paper's second new physical operator. With
// DoubleBuffer enabled it models the Section 6.3 optimization: a write
// thread fills and shuffles one buffer while the read thread drains the
// other, overlapping the child's I/O with the consumer's compute. The
// overlap is accounted deterministically through an iosim.Pipeline on the
// shared simulated clock.
type TupleShuffleOp struct {
	child Operator
	rng   *rand.Rand
	// Capacity is the buffer size in tuples.
	Capacity int
	// DoubleBuffer enables fill/consume overlap accounting.
	DoubleBuffer bool
	// Clock is the simulated clock (nil disables all time accounting).
	Clock *iosim.Clock
	// CopyCost is the CPU cost of copying one tuple into the buffer.
	CopyCost time.Duration
	// Obs, when non-nil, receives refill counts and fill/consume times
	// under the obs.Shuffle* metric names.
	Obs *obs.Registry
	// Async runs the fill side on a real background goroutine, streaming
	// shuffled buffers through a channel — the write-thread/read-thread
	// structure of Section 6.3 with actual concurrency. It is mutually
	// exclusive with Clock-based time accounting (real goroutine
	// interleavings are nondeterministic, simulated time is not); Init
	// rejects the combination.
	Async bool

	buf       []data.Tuple
	pos       int
	exhausted bool

	pipe      *iosim.Pipeline
	consStart time.Duration
	consuming bool

	fills chan asyncFill
	done  chan struct{}
}

// asyncFill is one shuffled buffer produced by the async write thread.
type asyncFill struct {
	buf []data.Tuple
	err error
}

// NewTupleShuffle returns a shuffling buffer of the given tuple capacity
// over child.
func NewTupleShuffle(child Operator, capacity int, rng *rand.Rand) *TupleShuffleOp {
	if capacity < 1 {
		capacity = 1
	}
	return &TupleShuffleOp{child: child, Capacity: capacity, rng: rng}
}

// Init implements Operator.
func (op *TupleShuffleOp) Init() error {
	if op.Async && op.Clock != nil {
		return fmt.Errorf("executor: TupleShuffle Async mode excludes simulated-time accounting")
	}
	if err := op.child.Init(); err != nil {
		return err
	}
	op.resetEpoch()
	return nil
}

// startAsync launches the write thread for the current scan.
func (op *TupleShuffleOp) startAsync() {
	op.fills = make(chan asyncFill, 1) // double buffering: one in flight
	op.done = make(chan struct{})
	go func(fills chan<- asyncFill, done <-chan struct{}) {
		defer close(fills)
		for {
			buf := make([]data.Tuple, 0, op.Capacity)
			for len(buf) < op.Capacity {
				t, ok, err := op.child.Next()
				if err != nil {
					select {
					case fills <- asyncFill{err: err}:
					case <-done:
					}
					return
				}
				if !ok {
					if len(buf) > 0 {
						op.rng.Shuffle(len(buf), func(i, j int) { buf[i], buf[j] = buf[j], buf[i] })
						select {
						case fills <- asyncFill{buf: buf}:
						case <-done:
						}
					}
					return
				}
				buf = append(buf, *t)
			}
			op.rng.Shuffle(len(buf), func(i, j int) { buf[i], buf[j] = buf[j], buf[i] })
			select {
			case fills <- asyncFill{buf: buf}:
			case <-done:
				return
			}
		}
	}(op.fills, op.done)
}

// nextAsync serves tuples from the async fill stream.
func (op *TupleShuffleOp) nextAsync() (*data.Tuple, bool, error) {
	for op.pos >= len(op.buf) {
		fill, ok := <-op.fills
		if !ok {
			return nil, false, nil
		}
		if fill.err != nil {
			return nil, false, fill.err
		}
		op.buf, op.pos = fill.buf, 0
		op.recordOccupancy()
	}
	t := &op.buf[op.pos]
	op.pos++
	return t, true, nil
}

// recordOccupancy reports the buffer fill level on the live-only gauges,
// mirroring the dataset-level iterator: outside live mode only the peak
// high-water mark is kept (JobStats.PeakBufferOccupancy), so passive
// traces are unchanged.
func (op *TupleShuffleOp) recordOccupancy() {
	op.Obs.SetLiveGauge(obs.ShuffleBufferTuples, float64(len(op.buf)))
	op.Obs.SetLiveGauge(obs.ShuffleBufferOccupancy, float64(len(op.buf))/float64(op.Capacity))
}

// BufferLen returns the number of tuples currently held in the shuffle
// buffer — the profiler's occupancy probe.
func (op *TupleShuffleOp) BufferLen() int { return len(op.buf) }

// Next implements Operator.
func (op *TupleShuffleOp) Next() (*data.Tuple, bool, error) {
	if op.Async {
		if op.fills == nil {
			op.startAsync()
		}
		return op.nextAsync()
	}
	for op.pos >= len(op.buf) {
		if op.exhausted {
			op.finishPipeline()
			return nil, false, nil
		}
		if err := op.refill(); err != nil {
			return nil, false, err
		}
		if len(op.buf) == 0 && op.exhausted {
			op.finishPipeline()
			return nil, false, nil
		}
	}
	t := &op.buf[op.pos]
	op.pos++
	return t, true, nil
}

// refill pulls up to Capacity tuples from the child and shuffles them.
func (op *TupleShuffleOp) refill() error {
	var fillStart time.Duration
	if op.pipelined() && op.consuming {
		op.consumeFor(op.Clock.Now() - op.consStart)
		op.consuming = false
	}
	if op.Clock != nil {
		fillStart = op.Clock.Now()
	}
	sp := op.Obs.Span(obs.SpanRefill)

	op.buf = op.buf[:0]
	op.pos = 0
	for len(op.buf) < op.Capacity {
		t, ok, err := op.child.Next()
		if err != nil {
			sp.End()
			// A failing child aborts the epoch: settle the simulated
			// clock to the pipeline's completion time instead of leaving
			// it mid-pipeline (mirrors corgiIter.Next's error path).
			op.settlePipeline()
			return err
		}
		if !ok {
			op.exhausted = true
			break
		}
		op.buf = append(op.buf, *t)
	}
	if op.Clock != nil && op.CopyCost > 0 {
		op.Clock.Advance(time.Duration(len(op.buf)) * op.CopyCost)
	}
	op.rng.Shuffle(len(op.buf), func(i, j int) {
		op.buf[i], op.buf[j] = op.buf[j], op.buf[i]
	})

	sp.End()
	op.Obs.Inc(obs.ShuffleRefills)
	op.recordOccupancy()
	if op.Clock != nil {
		op.Obs.AddDuration(obs.ShuffleFillNanos, op.Clock.Now()-fillStart)
	}
	if op.pipelined() {
		consStart := op.pipe.Fill(op.Clock.Now() - fillStart)
		op.Clock.Set(consStart)
		op.consStart = consStart
		op.consuming = true
	}
	return nil
}

// consumeFor closes one consume interval on the pipeline and reports it.
func (op *TupleShuffleOp) consumeFor(d time.Duration) {
	op.pipe.Consume(d)
	op.Obs.AddDuration(obs.ShuffleConsumeNanos, d)
}

func (op *TupleShuffleOp) pipelined() bool {
	return op.DoubleBuffer && op.Clock != nil
}

func (op *TupleShuffleOp) finishPipeline() {
	if !op.pipelined() || !op.consuming {
		return
	}
	op.consumeFor(op.Clock.Now() - op.consStart)
	op.Clock.Set(op.pipe.End())
	op.consuming = false
}

// settlePipeline closes any open consume interval and advances the clock to
// the pipeline's completion time — the teardown path for epochs that end
// abnormally (child error, early Close, mid-epoch ReScan). Unlike
// finishPipeline it never rewinds the clock: an aborted fill has already
// charged partial serial time that the pipeline never saw.
func (op *TupleShuffleOp) settlePipeline() {
	if !op.pipelined() || op.pipe == nil {
		return
	}
	if op.consuming {
		op.consumeFor(op.Clock.Now() - op.consStart)
		op.consuming = false
	}
	if end := op.pipe.End(); end > op.Clock.Now() {
		op.Clock.Set(end)
	}
}

func (op *TupleShuffleOp) resetEpoch() {
	op.stopAsync()
	op.settlePipeline()
	op.buf, op.pos, op.exhausted = nil, 0, false
	op.consuming = false
	if op.DoubleBuffer && op.Clock != nil {
		op.pipe = iosim.NewPipeline(2, op.Clock.Now())
	} else {
		op.pipe = nil
	}
}

// ReScan implements Operator: it resets the buffer I/O state and re-scans
// the child, exactly the ExecReScan chain of Section 6.2.
func (op *TupleShuffleOp) ReScan() error {
	// The async write thread must stop before the child is reset: it may
	// be mid-Next on the child.
	op.stopAsync()
	if err := op.child.ReScan(); err != nil {
		return err
	}
	op.resetEpoch()
	return nil
}

// stopAsync terminates a running write thread and drains its channel.
func (op *TupleShuffleOp) stopAsync() {
	if op.fills == nil {
		return
	}
	close(op.done)
	for range op.fills {
	}
	op.fills, op.done = nil, nil
}

// Close implements Operator. Closing a partially-consumed pipelined epoch
// settles the simulated clock to the pipeline's completion time, so callers
// that abandon a scan mid-epoch still observe consistent accounting.
func (op *TupleShuffleOp) Close() error {
	op.stopAsync()
	op.settlePipeline()
	return op.child.Close()
}
