package executor

import (
	"fmt"

	"corgipile/internal/obs"
	"corgipile/internal/shuffle"
)

// planShape is the static plan tree plus direct handles to its nodes, so
// BuildSGDPlan can attach profiling measurements to the exact nodes the
// renderer will print.
type planShape struct {
	root   *obs.PlanStats // SGD
	filter *obs.PlanStats // nil without a WHERE predicate
	access *obs.PlanStats // top access-path node
	inner  *obs.PlanStats // BlockShuffle under TupleShuffle (CorgiPile only)
}

// buildShape constructs the operator tree a PlanConfig would build over
// src, without building any operators.
func buildShape(src shuffle.Source, cfg PlanConfig) planShape {
	if cfg.BufferFraction <= 0 {
		cfg.BufferFraction = 0.1
	}
	model := "?"
	if cfg.SGD.Model != nil {
		model = cfg.SGD.Model.Name()
	}
	opt := "?"
	if cfg.SGD.Opt != nil {
		opt = cfg.SGD.Opt.Name()
	}
	batch := cfg.SGD.BatchSize
	if batch < 1 {
		batch = 1
	}
	sh := planShape{root: &obs.PlanStats{
		Name: "SGD",
		Detail: fmt.Sprintf("model=%s optimizer=%s epochs=%d batch=%d",
			model, opt, cfg.SGD.Epochs, batch),
	}}

	parent := sh.root
	if cfg.Filter != nil {
		desc := cfg.FilterDesc
		if desc == "" {
			desc = "predicate"
		}
		sh.filter = &obs.PlanStats{Name: "Filter", Detail: desc}
		parent.Children = append(parent.Children, sh.filter)
		parent = sh.filter
	}

	switch cfg.Shuffle {
	case shuffle.KindNoShuffle:
		sh.access = &obs.PlanStats{
			Name:   "Scan",
			Detail: fmt.Sprintf("blocks=%d, sequential", src.NumBlocks()),
		}
	case shuffle.KindBlockOnly:
		sh.access = &obs.PlanStats{
			Name:   "BlockShuffle",
			Detail: fmt.Sprintf("blocks=%d, reshuffled per epoch", src.NumBlocks()),
		}
	case shuffle.KindCorgiPile, "":
		capTuples := int(cfg.BufferFraction * float64(src.NumTuples()))
		if capTuples < 1 {
			capTuples = 1
		}
		mode := "single-buffer"
		if cfg.DoubleBuffer {
			mode = "double-buffer"
		}
		sh.access = &obs.PlanStats{
			Name: "TupleShuffle",
			Detail: fmt.Sprintf("buffer=%d tuples ≈ %.0f%%, %s",
				capTuples, cfg.BufferFraction*100, mode),
			BufferCap: capTuples,
		}
		sh.inner = &obs.PlanStats{
			Name:   "BlockShuffle",
			Detail: fmt.Sprintf("blocks=%d, reshuffled per epoch", src.NumBlocks()),
		}
		sh.access.Children = append(sh.access.Children, sh.inner)
	default:
		sh.access = &obs.PlanStats{
			Name: fmt.Sprintf("Strategy[%s]", cfg.Shuffle),
			Detail: fmt.Sprintf("buffer=%.0f%% of %d tuples",
				cfg.BufferFraction*100, src.NumTuples()),
		}
	}
	parent.Children = append(parent.Children, sh.access)

	if cfg.Resilience.Enabled() {
		r := cfg.Resilience
		retries := r.Retry.MaxAttempts - 1
		if retries < 0 {
			retries = 0
		}
		cap := r.MaxSkipFraction
		if cap <= 0 {
			cap = shuffle.DefaultMaxSkipFraction
		}
		sh.root.Resilience = fmt.Sprintf("Resilience: retries=%d on_corrupt=%s max_skip=%.1f%%",
			retries, r.OnCorrupt, cap*100)
	}
	return sh
}

// PlanShape returns the static physical-plan tree a PlanConfig would build
// over src, with no runtime statistics — the EXPLAIN (FORMAT JSON)
// payload.
func PlanShape(src shuffle.Source, cfg PlanConfig) *obs.PlanStats {
	return buildShape(src, cfg).root
}

// DescribePlan renders the physical operator tree a PlanConfig would build
// over src, in EXPLAIN style. The CorgiPile plan is the paper's
// SGD → TupleShuffle → BlockShuffle pipeline; other strategies show their
// access path. The same tree, executed with PlanConfig.Profile, renders as
// EXPLAIN ANALYZE via obs.PlanStats.Text(true).
func DescribePlan(src shuffle.Source, cfg PlanConfig) string {
	return PlanShape(src, cfg).Text(false)
}
