package executor

import (
	"fmt"
	"strings"

	"corgipile/internal/shuffle"
)

// DescribePlan renders the physical operator tree a PlanConfig would build
// over src, in EXPLAIN style. The CorgiPile plan is the paper's
// SGD → TupleShuffle → BlockShuffle pipeline; other strategies show their
// access path.
func DescribePlan(src shuffle.Source, cfg PlanConfig) string {
	if cfg.BufferFraction <= 0 {
		cfg.BufferFraction = 0.1
	}
	var b strings.Builder
	model := "?"
	if cfg.SGD.Model != nil {
		model = cfg.SGD.Model.Name()
	}
	opt := "?"
	if cfg.SGD.Opt != nil {
		opt = cfg.SGD.Opt.Name()
	}
	batch := cfg.SGD.BatchSize
	if batch < 1 {
		batch = 1
	}
	fmt.Fprintf(&b, "SGD (model=%s optimizer=%s epochs=%d batch=%d)\n",
		model, opt, cfg.SGD.Epochs, batch)

	switch cfg.Shuffle {
	case shuffle.KindNoShuffle:
		fmt.Fprintf(&b, "└─ Scan (blocks=%d, sequential)\n", src.NumBlocks())
	case shuffle.KindBlockOnly:
		fmt.Fprintf(&b, "└─ BlockShuffle (blocks=%d, reshuffled per epoch)\n", src.NumBlocks())
	case shuffle.KindCorgiPile, "":
		capTuples := int(cfg.BufferFraction * float64(src.NumTuples()))
		if capTuples < 1 {
			capTuples = 1
		}
		mode := "single-buffer"
		if cfg.DoubleBuffer {
			mode = "double-buffer"
		}
		fmt.Fprintf(&b, "└─ TupleShuffle (buffer=%d tuples ≈ %.0f%%, %s)\n",
			capTuples, cfg.BufferFraction*100, mode)
		fmt.Fprintf(&b, "   └─ BlockShuffle (blocks=%d, reshuffled per epoch)\n", src.NumBlocks())
	default:
		fmt.Fprintf(&b, "└─ Strategy[%s] (buffer=%.0f%% of %d tuples)\n",
			cfg.Shuffle, cfg.BufferFraction*100, src.NumTuples())
	}
	if cfg.Resilience.Enabled() {
		r := cfg.Resilience
		retries := r.Retry.MaxAttempts - 1
		if retries < 0 {
			retries = 0
		}
		cap := r.MaxSkipFraction
		if cap <= 0 {
			cap = shuffle.DefaultMaxSkipFraction
		}
		fmt.Fprintf(&b, "Resilience: retries=%d on_corrupt=%s max_skip=%.1f%%\n",
			retries, r.OnCorrupt, cap*100)
	}
	return b.String()
}
