package executor

import (
	"time"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/obs"
	"corgipile/internal/shuffle"
)

// This file implements per-operator runtime profiling of the Volcano plan.
// When PlanConfig.Profile is set, BuildSGDPlan wraps every operator below
// the SGD root in a profiledOp shell that charges simulated- and wall-clock
// deltas across each Init/Next/ReScan/Close call to its plan node. The
// attribution is telescoping: a node's inclusive time is the sum of the
// clock deltas observed across its own calls, its exclusive ("self") time
// is that inclusive time minus its direct children's inclusive time, and
// because every child call happens inside a parent's measured window, the
// exclusive times over the whole tree sum exactly to the root's total —
// even under the double-buffer pipeline's clock rewinds, which always land
// inside some measured window. Profiling is strictly additive: with
// Profile off, not a single extra clock read or allocation happens and the
// plan is byte-identical to the unprofiled build.

// PlanProfile accumulates an executing plan's per-operator statistics and
// renders them as obs.PlanStats snapshots — the EXPLAIN ANALYZE payload.
type PlanProfile struct {
	skeleton *obs.PlanStats // static shape; root is the SGD node
	clock    *iosim.Clock   // simulated clock (nil = wall-clock only)
	nodes    []*nodeProf    // every wrapped node below the SGD root
	top      *nodeProf      // SGD's direct child
	leaf     *nodeProf      // access-path leaf that performs device I/O

	dev     *iosim.Device // device backing the leaf, when known
	devBase iosim.Stats   // device counters at Start
	faults  *shuffle.FaultReport

	startSim  time.Duration
	startWall time.Time
	epoch     int
	rows      int64
}

// Start marks the profile's time and device baselines. The SGD operator
// calls it on Init entry — before the child pipeline initializes — so
// strategy preprocessing (e.g. Shuffle Once's full sort) is attributed to
// the run.
func (pp *PlanProfile) Start() {
	if pp == nil {
		return
	}
	pp.startWall = time.Now()
	if pp.clock != nil {
		pp.startSim = pp.clock.Now()
	}
	if pp.dev != nil {
		pp.devBase = pp.dev.Stats()
	}
	pp.epoch = 0
	pp.rows = 0
	for _, n := range pp.nodes {
		n.reset()
	}
}

// EndEpoch folds one completed epoch (which produced rows tuples at the
// root) into the profile.
func (pp *PlanProfile) EndEpoch(rows int) {
	if pp == nil {
		return
	}
	pp.epoch++
	pp.rows += int64(rows)
}

// Snapshot computes the current per-node statistics into the plan tree and
// returns an immutable deep copy. Cumulative since Start; safe to call
// mid-run (between epochs) and after Close.
func (pp *PlanProfile) Snapshot() *obs.PlanStats {
	if pp == nil {
		return nil
	}
	var totalSim time.Duration
	if pp.clock != nil {
		totalSim = pp.clock.Now() - pp.startSim
	}
	totalWall := time.Since(pp.startWall)

	for _, n := range pp.nodes {
		n.fill()
	}

	root := pp.skeleton
	root.Rows = pp.rows
	root.Calls = int64(pp.epoch)
	root.Loops = int64(pp.epoch)
	root.Epoch = pp.epoch
	root.TotalSimSeconds = totalSim.Seconds()
	root.TotalWallSeconds = totalWall.Seconds()
	var childSim, childWall time.Duration
	if pp.top != nil {
		childSim, childWall = pp.top.incSim, pp.top.incWall
	}
	root.SelfSimSeconds = (totalSim - childSim).Seconds()
	root.SelfWallSeconds = (totalWall - childWall).Seconds()

	if pp.leaf != nil {
		st := pp.leaf.st
		if pp.dev != nil {
			d := pp.dev.Stats()
			st.BytesRead = d.BytesRead - pp.devBase.BytesRead
			st.CacheHitBytes = d.CacheHitBytes - pp.devBase.CacheHitBytes
			st.BlocksRead = d.Reads - pp.devBase.Reads
			st.Faults = d.Faults - pp.devBase.Faults
			st.Stragglers = d.Stragglers - pp.devBase.Stragglers
		}
		if pp.faults != nil {
			s := pp.faults.Summary()
			st.Retries = s.Retries
			st.SkippedBlocks = int64(len(s.SkippedBlocks))
		}
	}
	return root.Clone()
}

// nodeProf holds the raw measurements for one wrapped operator node.
type nodeProf struct {
	st       *obs.PlanStats
	children []*nodeProf

	rows    int64
	calls   int64
	loops   int64
	incSim  time.Duration
	incWall time.Duration

	// ts, for shuffle-buffer nodes, is polled after each Next for the
	// occupancy high-water mark.
	ts      *TupleShuffleOp
	bufPeak int
}

func (n *nodeProf) reset() {
	n.rows, n.calls, n.loops = 0, 0, 0
	n.incSim, n.incWall = 0, 0
	n.bufPeak = 0
}

// fill computes the node's plan statistics from its raw measurements.
func (n *nodeProf) fill() {
	n.st.Rows = n.rows
	n.st.Calls = n.calls
	n.st.Loops = n.loops
	var chSim, chWall time.Duration
	for _, c := range n.children {
		chSim += c.incSim
		chWall += c.incWall
	}
	n.st.TotalSimSeconds = n.incSim.Seconds()
	n.st.SelfSimSeconds = (n.incSim - chSim).Seconds()
	n.st.TotalWallSeconds = n.incWall.Seconds()
	n.st.SelfWallSeconds = (n.incWall - chWall).Seconds()
	if n.ts != nil {
		n.st.BufferPeak = n.bufPeak
	}
}

// profiledOp wraps an Operator, charging every call's simulated- and
// wall-clock delta to its node.
type profiledOp struct {
	op    Operator
	n     *nodeProf
	clock *iosim.Clock
}

func (p *profiledOp) measure(f func() error) error {
	var s0 time.Duration
	if p.clock != nil {
		s0 = p.clock.Now()
	}
	w0 := time.Now()
	err := f()
	p.n.incWall += time.Since(w0)
	if p.clock != nil {
		p.n.incSim += p.clock.Now() - s0
	}
	return err
}

// Init implements Operator.
func (p *profiledOp) Init() error {
	p.n.loops++
	return p.measure(p.op.Init)
}

// Next implements Operator.
func (p *profiledOp) Next() (*data.Tuple, bool, error) {
	var s0 time.Duration
	if p.clock != nil {
		s0 = p.clock.Now()
	}
	w0 := time.Now()
	t, ok, err := p.op.Next()
	p.n.incWall += time.Since(w0)
	if p.clock != nil {
		p.n.incSim += p.clock.Now() - s0
	}
	p.n.calls++
	if ok {
		p.n.rows++
	}
	if p.n.ts != nil {
		if l := p.n.ts.BufferLen(); l > p.n.bufPeak {
			p.n.bufPeak = l
		}
	}
	return t, ok, err
}

// ReScan implements Operator.
func (p *profiledOp) ReScan() error {
	p.n.loops++
	return p.measure(p.op.ReScan)
}

// Close implements Operator. Teardown is measured too: closing a
// partially-consumed pipelined epoch settles the simulated clock, and that
// settle must land inside a measured window for the attribution to
// telescope.
func (p *profiledOp) Close() error {
	return p.measure(p.op.Close)
}
