package executor

import (
	"testing"

	"corgipile/internal/data"
)

// TestAsyncReScanRacesFillThread hammers ReScan while the async write thread
// is actively filling: each iteration consumes only a couple of tuples, so
// the reset almost always interrupts a fill in flight. Run with -race (the
// scripts/check.sh gate does) this verifies the stopAsync handshake leaves no
// window where the fill goroutine touches the child during its ReScan.
func TestAsyncReScanRacesFillThread(t *testing.T) {
	src := memSource(2000, 20, data.OrderClustered)
	op := asyncShuffle(t, src, 400, 3)
	defer op.Close()
	for iter := 0; iter < 50; iter++ {
		for i := 0; i < 2; i++ {
			if _, ok, err := op.Next(); err != nil || !ok {
				t.Fatalf("iter %d: Next() = %v, %v", iter, ok, err)
			}
		}
		if err := op.ReScan(); err != nil {
			t.Fatal(err)
		}
	}
	// After all that churn a full epoch must still be an exact permutation.
	ids := drainOp(t, op)
	assertPerm(t, ids, 2000)
}

// TestAsyncCloseRacesFillThread closes the operator at varying points of an
// in-flight fill; under -race this proves Close's shutdown handshake.
func TestAsyncCloseRacesFillThread(t *testing.T) {
	for consume := 0; consume < 8; consume++ {
		src := memSource(1000, 20, data.OrderClustered)
		op := asyncShuffle(t, src, 250, int64(consume+10))
		for i := 0; i < consume; i++ {
			if _, ok, err := op.Next(); err != nil || !ok {
				t.Fatalf("consume %d: Next() = %v, %v", consume, ok, err)
			}
		}
		if err := op.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
