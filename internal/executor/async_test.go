package executor

import (
	"errors"
	"math/rand"
	"testing"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/ml"
	"corgipile/internal/shuffle"
)

func asyncShuffle(t *testing.T, src shuffle.Source, capacity int, seed int64) *TupleShuffleOp {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	op := NewTupleShuffle(NewBlockShuffle(src, rng), capacity, rng)
	op.Async = true
	if err := op.Init(); err != nil {
		t.Fatal(err)
	}
	return op
}

func TestAsyncTupleShuffleCoversExactlyOnce(t *testing.T) {
	src := memSource(500, 20, data.OrderClustered)
	op := asyncShuffle(t, src, 100, 1)
	defer op.Close()
	ids := drainOp(t, op)
	assertPerm(t, ids, 500)
}

func TestAsyncTupleShuffleReScan(t *testing.T) {
	src := memSource(300, 20, data.OrderClustered)
	op := asyncShuffle(t, src, 60, 2)
	defer op.Close()
	first := drainOp(t, op)
	if err := op.ReScan(); err != nil {
		t.Fatal(err)
	}
	second := drainOp(t, op)
	assertPerm(t, first, 300)
	assertPerm(t, second, 300)
}

func TestAsyncRejectsClock(t *testing.T) {
	src := memSource(100, 10, data.OrderClustered)
	rng := rand.New(rand.NewSource(3))
	op := NewTupleShuffle(NewBlockShuffle(src, rng), 20, rng)
	op.Async = true
	op.Clock = iosim.NewClock()
	if err := op.Init(); err == nil {
		t.Fatal("Async+Clock must be rejected")
	}
}

func TestAsyncCloseMidStream(t *testing.T) {
	src := memSource(1000, 20, data.OrderClustered)
	op := asyncShuffle(t, src, 50, 4)
	// Consume a few tuples, then close while the write thread is active.
	for i := 0; i < 10; i++ {
		if _, ok, err := op.Next(); err != nil || !ok {
			t.Fatal("early exhaustion")
		}
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
}

type erroringOp struct {
	n   int
	err error
}

func (e *erroringOp) Init() error { return nil }
func (e *erroringOp) Next() (*data.Tuple, bool, error) {
	if e.n <= 0 {
		return nil, false, e.err
	}
	e.n--
	return &data.Tuple{ID: int64(e.n)}, true, nil
}
func (e *erroringOp) ReScan() error { return nil }
func (e *erroringOp) Close() error  { return nil }

func TestAsyncPropagatesChildError(t *testing.T) {
	sentinel := errors.New("child failed")
	op := NewTupleShuffle(&erroringOp{n: 30, err: sentinel}, 10, rand.New(rand.NewSource(5)))
	op.Async = true
	if err := op.Init(); err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	var got error
	for {
		_, ok, err := op.Next()
		if err != nil {
			got = err
			break
		}
		if !ok {
			break
		}
	}
	if !errors.Is(got, sentinel) {
		t.Fatalf("error = %v, want sentinel", got)
	}
}

func TestAsyncTrainingMatchesAccuracy(t *testing.T) {
	// The async plan must train to the same quality class as the sync one.
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 2000, Features: 8, Separation: 1.5, Noise: 1.0,
		Order: data.OrderClustered, Seed: 65})
	run := func(async bool) float64 {
		src := shuffle.NewMemSource(ds, 20)
		rng := rand.New(rand.NewSource(6))
		ts := NewTupleShuffle(NewBlockShuffle(src, rng), 200, rng)
		ts.Async = async
		sgd, err := NewSGD(ts, SGDConfig{
			Model: ml.SVM{}, Opt: ml.NewSGD(0.05), Features: 8, Epochs: 6, Eval: ds,
		})
		if err != nil {
			t.Fatal(err)
		}
		rows, err := sgd.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rows[len(rows)-1].Accuracy
	}
	syncAcc := run(false)
	asyncAcc := run(true)
	if asyncAcc < syncAcc-0.03 {
		t.Fatalf("async accuracy %.3f trails sync %.3f", asyncAcc, syncAcc)
	}
}
