package executor

import (
	"context"
	"fmt"
	"time"

	"corgipile/internal/core"
	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/ml"
	"corgipile/internal/obs"
	"corgipile/internal/shuffle"
)

// EpochRow is the SGD operator's output: one row of training metrics per
// epoch, matching the paper's "CorgiPile outputs various metrics after each
// epoch, such as training loss, accuracy, and execution time".
type EpochRow struct {
	// Epoch is 1-based.
	Epoch int
	// Loss is the mean streaming loss of the epoch.
	Loss float64
	// Accuracy is train-set accuracy (or R² for regression) if an
	// evaluation set was attached; otherwise 0.
	Accuracy float64
	// Seconds is simulated elapsed time since SGD started, inclusive of
	// the epoch.
	Seconds float64
	// Tuples is the number of tuples consumed this epoch.
	Tuples int
}

// SGDOp drives multi-epoch SGD over its child pipeline — the paper's third
// new physical operator. Each call to NextEpoch consumes one full pass from
// the child, updates the model, and re-scans the child for the next epoch
// via the ReScan mechanism.
type SGDOp struct {
	child   Operator
	trainer *ml.Trainer
	// W is the model weight vector, exposed for the catalog to store.
	W []float64
	// Epochs is the configured number of passes.
	Epochs int
	// Clock, when non-nil, is charged per-tuple gradient compute.
	Clock *iosim.Clock
	// Eval, when non-nil, is evaluated after each epoch.
	Eval *data.Dataset
	// Obs, when non-nil, receives per-epoch spans and training counters;
	// Breakdown then accumulates one cross-layer metrics row per epoch.
	Obs *obs.Registry
	// Breakdown holds one epoch-breakdown row per completed epoch when Obs
	// is attached.
	Breakdown []obs.EpochMetrics
	// Faults, when the plan was built with resilience enabled, accumulates
	// the run's retry and quarantine accounting (nil otherwise).
	Faults *shuffle.FaultReport
	// Feed, when non-nil, receives one live RunStatus update per epoch —
	// the telemetry server's /run data for SQL-driven training.
	Feed *obs.RunFeed
	// RunName labels feed updates (e.g. the TRAIN statement's model name).
	RunName string
	// Prof, when the plan was built with PlanConfig.Profile, accumulates
	// per-operator runtime statistics (nil otherwise); Plan() snapshots it.
	Prof *PlanProfile
	// Diag holds one convergence-diagnostics row per completed epoch and
	// Verdict the detector's final state, when SGDConfig.Diag enabled them.
	Diag    []core.EpochDiag
	Verdict core.Verdict
	// Events, when non-nil, receives one "epoch" span per completed epoch in
	// the session's event ring, stamped with Trace. Both are nil-safe.
	Events *obs.EventLog
	// Trace is the request-scoped trace ID stamped on emitted spans.
	Trace string

	epoch     int
	start     time.Duration
	lastNow   time.Duration
	tuples    int64
	wallStart time.Time
	diagCfg   *core.DiagConfig
	tracker   *core.DiagTracker
	wPrev     []float64
	ctx       context.Context
}

// cancelCheckInterval is how many tuples flow between cancellation checks.
// ctx.Err() takes a lock, so the hot loop amortizes it; a cancel lands
// within a few hundred tuples (well under a millisecond of gradient work).
const cancelCheckInterval = 256

// SGDConfig configures an SGD operator.
type SGDConfig struct {
	Model     ml.Model
	Opt       ml.Optimizer
	Features  int
	Epochs    int
	BatchSize int
	// Procs is the number of gradient worker goroutines for mini-batch
	// steps (0 = GOMAXPROCS, 1 = single-threaded); see ml.Trainer.Procs.
	Procs       int
	Clock       *iosim.Clock
	Eval        *data.Dataset
	InitWeights func(w []float64)
	// Obs, when non-nil, receives per-epoch spans and training counters.
	Obs *obs.Registry
	// Feed, when non-nil, receives one live RunStatus update per epoch.
	Feed *obs.RunFeed
	// RunName labels feed updates.
	RunName string
	// Diag, when non-nil, enables the read-only convergence diagnostics
	// (see core.DiagConfig); SGDOp.Diag and SGDOp.Verdict carry the outcome.
	Diag *core.DiagConfig
	// Ctx, when non-nil, cancels the run: the operator checks it between
	// epochs and every few hundred tuples inside an epoch, so a canceled
	// context stops an in-flight epoch promptly. NextEpoch/Run then return
	// the context's error (context.Canceled or DeadlineExceeded).
	Ctx context.Context
	// Events, when non-nil, receives per-epoch span records stamped with
	// Trace (request-scoped tracing for the introspection plane).
	Events *obs.EventLog
	// Trace is the request-scoped trace ID for emitted span records.
	Trace string
}

// NewSGD returns an SGD operator over the child pipeline.
func NewSGD(child Operator, cfg SGDConfig) (*SGDOp, error) {
	if cfg.Model == nil || cfg.Opt == nil {
		return nil, fmt.Errorf("executor: SGD needs Model and Opt")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	dim := cfg.Model.Dim(cfg.Features)
	w := make([]float64, dim)
	if cfg.InitWeights != nil {
		cfg.InitWeights(w)
	}
	cfg.Opt.Reset(dim)
	op := &SGDOp{
		child:   child,
		trainer: ml.NewTrainer(cfg.Model, cfg.Opt, cfg.BatchSize),
		W:       w,
		Epochs:  cfg.Epochs,
		Clock:   cfg.Clock,
		Eval:    cfg.Eval,
		Obs:     cfg.Obs,
		Feed:    cfg.Feed,
		RunName: cfg.RunName,
		Events:  cfg.Events,
		Trace:   cfg.Trace,
	}
	op.trainer.Procs = cfg.Procs
	op.trainer.Obs = cfg.Obs
	op.ctx = cfg.Ctx
	if cfg.Diag != nil {
		op.diagCfg = cfg.Diag
		op.trainer.TrackGradNorm = true
		op.wPrev = make([]float64, dim)
	}
	if cfg.Clock != nil || cfg.Obs != nil {
		op.trainer.OnTuple = func(t *data.Tuple) {
			cost := time.Duration(ml.GradCost(t.NNZ()))
			if cfg.Clock != nil {
				cfg.Clock.Advance(cost)
			}
			cfg.Obs.AddDuration(obs.SGDGradNanos, cost)
		}
	}
	return op, nil
}

// Init implements the operator contract for the training pipeline.
func (op *SGDOp) Init() error {
	// The profile baseline is taken before the child initializes so that
	// strategy preprocessing (e.g. Shuffle Once's full sort) is attributed
	// to the run rather than lost before the window opens.
	op.Prof.Start()
	if err := op.child.Init(); err != nil {
		return err
	}
	if op.Clock != nil {
		op.start = op.Clock.Now()
		op.lastNow = op.start
	}
	op.epoch = 0
	op.tuples = 0
	op.wallStart = time.Now()
	op.Breakdown = op.Breakdown[:0]
	op.Diag = op.Diag[:0]
	op.Verdict = ""
	if op.diagCfg != nil {
		op.tracker = core.NewDiagTracker(*op.diagCfg)
	}
	return nil
}

// NextEpoch runs one epoch and returns its metrics row; ok=false when the
// configured number of epochs has completed.
func (op *SGDOp) NextEpoch() (EpochRow, bool, error) {
	if op.epoch >= op.Epochs {
		return EpochRow{}, false, nil
	}
	if err := op.ctxErr(); err != nil {
		return EpochRow{}, false, err
	}
	if op.epoch > 0 {
		// Reshuffle and reread via the re-scan mechanism.
		if err := op.child.ReScan(); err != nil {
			return EpochRow{}, false, err
		}
	}
	if op.tracker != nil {
		copy(op.wPrev, op.W)
	}
	var before obs.Snapshot
	if op.Obs != nil {
		before = op.Obs.Snapshot()
	}
	sp := op.Obs.Span(obs.SpanEpoch)
	esp := op.Events.StartSpan(op.Trace, obs.EvSpanEpoch)
	var streamErr error
	var sinceCheck int
	stats := op.trainer.RunEpoch(op.W, func() (*data.Tuple, bool) {
		if sinceCheck++; sinceCheck >= cancelCheckInterval {
			sinceCheck = 0
			if err := op.ctxErr(); err != nil {
				streamErr = err
				return nil, false
			}
		}
		t, ok, err := op.child.Next()
		if err != nil {
			streamErr = err
			return nil, false
		}
		return t, ok
	})
	spanSecs := sp.End().Seconds()
	esp.End()
	if streamErr != nil {
		return EpochRow{}, false, streamErr
	}
	op.epoch++
	row := EpochRow{Epoch: op.epoch, Loss: stats.AvgLoss, Tuples: stats.Tuples}
	if op.Clock != nil {
		row.Seconds = (op.Clock.Now() - op.start).Seconds()
	}
	if op.Obs != nil {
		epochSecs := spanSecs
		if op.Clock != nil {
			now := op.Clock.Now()
			epochSecs = (now - op.lastNow).Seconds()
			op.lastNow = now
		}
		m := obs.EpochFromDelta(op.epoch, epochSecs, stats.AvgLoss,
			op.Obs.Snapshot().DeltaFrom(before))
		op.Obs.SetGauge(obs.SGDLoss, stats.AvgLoss)
		op.Obs.EmitEpoch(m)
		op.Breakdown = append(op.Breakdown, m)
	}
	if op.Eval != nil {
		if op.Eval.Task == data.TaskRegression {
			row.Accuracy = ml.R2(op.trainer.Model, op.W, op.Eval)
		} else {
			row.Accuracy = ml.Accuracy(op.trainer.Model, op.W, op.Eval)
		}
	}
	var d core.EpochDiag
	if op.tracker != nil {
		delta, verdict := op.tracker.Observe(stats.AvgLoss)
		d = core.EpochDiag{
			Epoch:      op.epoch,
			GradNorm:   stats.GradNorm(),
			UpdateNorm: core.L2Delta(op.W, op.wPrev),
			LossDelta:  delta,
			Verdict:    verdict,
		}
		op.Diag = append(op.Diag, d)
		op.Verdict = verdict
		core.EmitDiag(op.Obs, d)
	}
	op.tuples += int64(row.Tuples)
	op.Prof.EndEpoch(row.Tuples)
	if op.Feed != nil {
		st := obs.RunStatus{
			Run:         op.RunName,
			Epoch:       row.Epoch,
			Epochs:      op.Epochs,
			Loss:        row.Loss,
			TrainAcc:    row.Accuracy,
			GradNorm:    d.GradNorm,
			UpdateNorm:  d.UpdateNorm,
			LossDelta:   d.LossDelta,
			Verdict:     string(d.Verdict),
			Tuples:      op.tuples,
			SimSeconds:  row.Seconds,
			WallSeconds: time.Since(op.wallStart).Seconds(),
			Done:        op.epoch == op.Epochs,
		}
		st.FillFromRegistry(op.Obs)
		op.Feed.Publish(st)
		if op.Prof != nil {
			op.Feed.PublishPlan(op.Prof.Snapshot())
		}
	}
	return row, true, nil
}

// ctxErr returns the cancellation error when the operator's context has
// been canceled (nil context = never canceled).
func (op *SGDOp) ctxErr() error {
	if op.ctx == nil {
		return nil
	}
	if err := op.ctx.Err(); err != nil {
		return fmt.Errorf("executor: train canceled at epoch %d: %w", op.epoch+1, err)
	}
	return nil
}

// Run drives every configured epoch and returns all metric rows.
func (op *SGDOp) Run() ([]EpochRow, error) {
	if err := op.Init(); err != nil {
		return nil, err
	}
	defer op.Close()
	var rows []EpochRow
	for {
		row, ok, err := op.NextEpoch()
		if err != nil {
			return rows, err
		}
		if !ok {
			return rows, nil
		}
		rows = append(rows, row)
	}
}

// Close releases the pipeline and the trainer's worker pool.
func (op *SGDOp) Close() error {
	op.trainer.Close()
	return op.child.Close()
}

// Model returns the trained model.
func (op *SGDOp) Model() ml.Model { return op.trainer.Model }

// Plan returns a snapshot of the executed plan's per-operator profile, or
// nil when the plan was built without PlanConfig.Profile.
func (op *SGDOp) Plan() *obs.PlanStats {
	if op.Prof == nil {
		return nil
	}
	return op.Prof.Snapshot()
}

// RunResult drives every configured epoch like Run and adapts the outcome
// to the core.Result shape, so executor-driven training (the -explain
// path) is interchangeable with core.Run for callers.
func (op *SGDOp) RunResult() (*core.Result, error) {
	rows, err := op.Run()
	if err != nil {
		return nil, err
	}
	res := &core.Result{
		W:         op.W,
		Breakdown: op.Breakdown,
		Diag:      op.Diag,
		Verdict:   op.Verdict,
		Plan:      op.Plan(),
	}
	for _, r := range rows {
		res.Points = append(res.Points, core.EpochPoint{
			Epoch:    r.Epoch,
			Seconds:  r.Seconds,
			AvgLoss:  r.Loss,
			TrainAcc: r.Accuracy,
			Tuples:   r.Tuples,
		})
	}
	if op.Faults != nil {
		res.Faults = op.Faults.Summary()
	}
	return res, nil
}

// Prediction is one output row of the Predict operator.
type Prediction struct {
	// ID is the input tuple's id, Label its true label, Pred the model's
	// prediction.
	ID    int64
	Label float64
	Pred  float64
}

// PredictOp streams model predictions over its child's tuples — the
// "SELECT table PREDICT BY model" path.
type PredictOp struct {
	child Operator
	model ml.Model
	w     []float64
}

// NewPredict returns a prediction operator.
func NewPredict(child Operator, model ml.Model, w []float64) *PredictOp {
	return &PredictOp{child: child, model: model, w: w}
}

// Init implements Operator-style initialization.
func (op *PredictOp) Init() error { return op.child.Init() }

// Next returns the next prediction row.
func (op *PredictOp) Next() (Prediction, bool, error) {
	t, ok, err := op.child.Next()
	if err != nil || !ok {
		return Prediction{}, false, err
	}
	return Prediction{ID: t.ID, Label: t.Label, Pred: op.model.Predict(op.w, t)}, true, nil
}

// Close releases the pipeline.
func (op *PredictOp) Close() error { return op.child.Close() }
