package executor

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/ml"
	"corgipile/internal/shuffle"
	"corgipile/internal/storage"
)

func memSource(n, perBlock int, order data.Order) *shuffle.MemSource {
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: n, Features: 6, Separation: 1.5, Noise: 1.0, Order: order, Seed: 61})
	return shuffle.NewMemSource(ds, perBlock)
}

func drainOp(t *testing.T, op Operator) []int64 {
	t.Helper()
	var ids []int64
	for {
		tp, ok, err := op.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return ids
		}
		ids = append(ids, tp.ID)
	}
}

func assertPerm(t *testing.T, ids []int64, n int) {
	t.Helper()
	if len(ids) != n {
		t.Fatalf("emitted %d tuples, want %d", len(ids), n)
	}
	seen := make([]bool, n)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("id %d twice", id)
		}
		seen[id] = true
	}
}

func TestScanOpSequential(t *testing.T) {
	src := memSource(100, 10, data.OrderClustered)
	op := NewScan(src)
	if err := op.Init(); err != nil {
		t.Fatal(err)
	}
	ids := drainOp(t, op)
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("scan out of order at %d: %d", i, id)
		}
	}
	if err := op.ReScan(); err != nil {
		t.Fatal(err)
	}
	if ids2 := drainOp(t, op); len(ids2) != 100 {
		t.Fatal("rescan did not reproduce the scan")
	}
}

func TestBlockShuffleOpPermutesBlocks(t *testing.T) {
	src := memSource(100, 10, data.OrderClustered)
	op := NewBlockShuffle(src, rand.New(rand.NewSource(1)))
	if err := op.Init(); err != nil {
		t.Fatal(err)
	}
	ids := drainOp(t, op)
	assertPerm(t, ids, 100)
	// Within-block order preserved.
	for b := 0; b < 10; b++ {
		run := ids[b*10 : (b+1)*10]
		for i := 1; i < 10; i++ {
			if run[i] != run[i-1]+1 {
				t.Fatalf("block shuffled within-block order: %v", run)
			}
		}
	}
	// ReScan produces a different block order.
	if err := op.ReScan(); err != nil {
		t.Fatal(err)
	}
	ids2 := drainOp(t, op)
	diff := false
	for i := range ids {
		if ids[i] != ids2[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("ReScan did not reshuffle blocks")
	}
}

func TestTupleShuffleOpShufflesAndCovers(t *testing.T) {
	src := memSource(200, 10, data.OrderClustered)
	rng := rand.New(rand.NewSource(2))
	op := NewTupleShuffle(NewBlockShuffle(src, rng), 50, rng)
	if err := op.Init(); err != nil {
		t.Fatal(err)
	}
	ids := drainOp(t, op)
	assertPerm(t, ids, 200)
	contiguous := 0
	for i := 1; i < 50; i++ {
		if ids[i] == ids[i-1]+1 {
			contiguous++
		}
	}
	if contiguous > 25 {
		t.Fatalf("buffer not shuffled: %d contiguous pairs", contiguous)
	}
}

func TestTupleShuffleReScanResets(t *testing.T) {
	src := memSource(100, 10, data.OrderClustered)
	rng := rand.New(rand.NewSource(3))
	op := NewTupleShuffle(NewBlockShuffle(src, rng), 30, rng)
	if err := op.Init(); err != nil {
		t.Fatal(err)
	}
	_ = drainOp(t, op)
	if err := op.ReScan(); err != nil {
		t.Fatal(err)
	}
	ids := drainOp(t, op)
	assertPerm(t, ids, 100)
}

func TestSGDOpTrainsViaReScan(t *testing.T) {
	src := memSource(2000, 50, data.OrderClustered)
	op, err := BuildSGDPlan(src, PlanConfig{
		Shuffle: shuffle.KindCorgiPile,
		Seed:    4,
		SGD: SGDConfig{
			Model: ml.SVM{}, Opt: ml.NewSGD(0.05), Features: 6,
			Epochs: 6, BatchSize: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := op.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for i, r := range rows {
		if r.Epoch != i+1 || r.Tuples != 2000 {
			t.Fatalf("row %d malformed: %+v", i, r)
		}
	}
	// The hinge loss at w=0 is exactly 1 for every tuple; after six epochs
	// the streaming loss must sit well below that.
	if rows[5].Loss >= 0.9 {
		t.Fatalf("final streaming loss %v, want < 0.9", rows[5].Loss)
	}
}

func TestSGDPlanBeatsNoShufflePlanOnClusteredData(t *testing.T) {
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 3000, Features: 8, Separation: 1.5, Noise: 1.0,
		Order: data.OrderClustered, Seed: 62})
	run := func(kind shuffle.Kind) float64 {
		src := shuffle.NewMemSource(ds, 50)
		op, err := BuildSGDPlan(src, PlanConfig{
			Shuffle: kind, Seed: 5,
			SGD: SGDConfig{
				Model: ml.SVM{}, Opt: ml.NewSGD(0.05), Features: 8,
				Epochs: 6, Eval: ds,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		rows, err := op.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rows[len(rows)-1].Accuracy
	}
	corgi := run(shuffle.KindCorgiPile)
	noShuf := run(shuffle.KindNoShuffle)
	if corgi < noShuf+0.1 {
		t.Fatalf("corgipile plan %.3f should clearly beat no-shuffle plan %.3f", corgi, noShuf)
	}
}

func TestStrategyOpFallbackKinds(t *testing.T) {
	for _, kind := range []shuffle.Kind{shuffle.KindShuffleOnce, shuffle.KindSlidingWindow, shuffle.KindMRS, shuffle.KindEpochShuffle} {
		src := memSource(300, 20, data.OrderClustered)
		op, err := BuildSGDPlan(src, PlanConfig{
			Shuffle: kind, Seed: 6,
			SGD: SGDConfig{Model: ml.LogisticRegression{}, Opt: ml.NewSGD(0.05), Features: 6, Epochs: 2},
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		rows, err := op.Run()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(rows) != 2 || rows[0].Tuples < 300 {
			t.Fatalf("%s: rows %+v", kind, rows)
		}
	}
}

func TestSGDValidation(t *testing.T) {
	if _, err := NewSGD(NewScan(memSource(10, 5, data.OrderShuffled)), SGDConfig{}); err == nil {
		t.Fatal("SGD without model must error")
	}
}

func TestPredictOp(t *testing.T) {
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 500, Features: 6, Separation: 3, Order: data.OrderShuffled, Seed: 63})
	src := shuffle.NewMemSource(ds, 50)
	sgd, err := BuildSGDPlan(src, PlanConfig{
		Shuffle: shuffle.KindCorgiPile, Seed: 7,
		SGD: SGDConfig{Model: ml.SVM{}, Opt: ml.NewSGD(0.05), Features: 6, Epochs: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sgd.Run(); err != nil {
		t.Fatal(err)
	}
	pred := NewPredict(NewScan(src), sgd.Model(), sgd.W)
	if err := pred.Init(); err != nil {
		t.Fatal(err)
	}
	n, correct := 0, 0
	for {
		p, ok, err := pred.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
		if (p.Pred >= 0) == (p.Label >= 0) {
			correct++
		}
	}
	if n != 500 {
		t.Fatalf("predicted %d rows, want 500", n)
	}
	if float64(correct)/float64(n) < 0.9 {
		t.Fatalf("prediction accuracy %.3f < 0.9", float64(correct)/float64(n))
	}
}

func TestDoubleBufferPlanFasterOnDisk(t *testing.T) {
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 20000, Features: 64, Order: data.OrderClustered, Seed: 64})
	build := func(double bool) (time.Duration, int) {
		clock := iosim.NewClock()
		dev := iosim.NewDevice(iosim.HDD, clock)
		tab, err := storage.Build(dev, ds, storage.Options{BlockSize: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		src := shuffle.TableSource(tab)
		op, err := BuildSGDPlan(src, PlanConfig{
			Shuffle: shuffle.KindCorgiPile, Seed: 8, DoubleBuffer: double,
			SGD: SGDConfig{
				Model: ml.SVM{}, Opt: ml.NewSGD(0.01), Features: 64,
				Epochs: 2, Clock: clock,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		rows, err := op.Run()
		if err != nil {
			t.Fatal(err)
		}
		return clock.Now(), rows[len(rows)-1].Tuples
	}
	serial, n1 := build(false)
	piped, n2 := build(true)
	if n1 != 20000 || n2 != 20000 {
		t.Fatalf("tuple counts wrong: %d/%d", n1, n2)
	}
	if piped >= serial {
		t.Fatalf("double-buffered plan (%v) should be faster than single (%v)", piped, serial)
	}
}

func TestFilterOpDropsNonMatching(t *testing.T) {
	src := memSource(100, 10, data.OrderClustered)
	op := NewFilter(NewScan(src), func(tp *data.Tuple) bool { return tp.Label > 0 })
	if err := op.Init(); err != nil {
		t.Fatal(err)
	}
	ids := drainOp(t, op)
	if len(ids) != 50 {
		t.Fatalf("filter passed %d tuples, want 50", len(ids))
	}
	for _, id := range ids {
		if id < 50 { // clustered: first half negative
			t.Fatalf("negative tuple %d leaked through", id)
		}
	}
	if err := op.ReScan(); err != nil {
		t.Fatal(err)
	}
	if again := drainOp(t, op); len(again) != 50 {
		t.Fatal("filter rescan broken")
	}
}

func TestDescribePlanShapes(t *testing.T) {
	src := memSource(100, 10, data.OrderClustered)
	base := PlanConfig{SGD: SGDConfig{Model: ml.SVM{}, Opt: ml.NewSGD(0.1), Epochs: 3}}

	corgi := base
	corgi.Shuffle = shuffle.KindCorgiPile
	corgi.DoubleBuffer = true
	plan := DescribePlan(src, corgi)
	for _, needle := range []string{"SGD (model=svm optimizer=sgd epochs=3 batch=1)", "TupleShuffle", "BlockShuffle", "double-buffer"} {
		if !strings.Contains(plan, needle) {
			t.Fatalf("corgipile plan missing %q:\n%s", needle, plan)
		}
	}

	ns := base
	ns.Shuffle = shuffle.KindNoShuffle
	if !strings.Contains(DescribePlan(src, ns), "Scan (blocks=10, sequential)") {
		t.Fatalf("no-shuffle plan wrong:\n%s", DescribePlan(src, ns))
	}

	bo := base
	bo.Shuffle = shuffle.KindBlockOnly
	if !strings.Contains(DescribePlan(src, bo), "BlockShuffle (blocks=10") {
		t.Fatal("block-only plan wrong")
	}

	mrs := base
	mrs.Shuffle = shuffle.KindMRS
	if !strings.Contains(DescribePlan(src, mrs), "Strategy[mrs]") {
		t.Fatal("fallback strategy plan wrong")
	}

	empty := DescribePlan(src, PlanConfig{Shuffle: shuffle.KindCorgiPile})
	if !strings.Contains(empty, "model=?") {
		t.Fatal("nil-model plan should render placeholders")
	}
}
