package executor

import (
	"fmt"
	"math/rand"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/shuffle"
)

// PlanConfig describes a training query's physical plan.
type PlanConfig struct {
	// Shuffle selects the access-path strategy. The CorgiPile plan is
	// BlockShuffle → TupleShuffle → SGD; No Shuffle is Scan → SGD;
	// Block-Only omits TupleShuffle; Once/Epoch/Window/MRS plans fall back
	// to the strategy implementations in internal/shuffle wrapped as an
	// operator.
	Shuffle shuffle.Kind
	// BufferFraction sizes the TupleShuffle buffer (default 0.1).
	BufferFraction float64
	// DoubleBuffer enables the Section 6.3 optimization.
	DoubleBuffer bool
	// Seed seeds the plan's randomness.
	Seed int64
	// Filter, when non-nil, drops tuples failing the predicate (the WHERE
	// clause), applied above the access path and below SGD.
	Filter func(*data.Tuple) bool
	// Resilience, when enabled, wraps the source with retry/backoff and the
	// configured corrupt-block degrade policy below every access path; the
	// resulting fault report is exposed as SGDOp.Faults.
	Resilience shuffle.Resilience
	// SGD carries the learner configuration.
	SGD SGDConfig
}

// BuildSGDPlan assembles the physical plan for a TRAIN BY query over src
// and returns its SGD root operator.
func BuildSGDPlan(src shuffle.Source, cfg PlanConfig) (*SGDOp, error) {
	if cfg.BufferFraction <= 0 {
		cfg.BufferFraction = 0.1
	}
	var faults *shuffle.FaultReport
	if cfg.Resilience.Enabled() {
		// Wrap here, below the strategy switch, so every access path —
		// Scan, BlockShuffle, the CorgiPile pipeline, and the fallback
		// strategies — reads through the same retry/quarantine layer.
		src, faults = shuffle.NewResilientSource(src, cfg.Resilience, cfg.SGD.Obs, nil)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var child Operator
	switch cfg.Shuffle {
	case shuffle.KindNoShuffle:
		sc := NewScan(src)
		sc.Obs = cfg.SGD.Obs
		child = sc
	case shuffle.KindBlockOnly:
		bs := NewBlockShuffle(src, rng)
		bs.Obs = cfg.SGD.Obs
		child = bs
	case shuffle.KindCorgiPile, "":
		capTuples := int(cfg.BufferFraction * float64(src.NumTuples()))
		if capTuples < 1 {
			capTuples = 1
		}
		bs := NewBlockShuffle(src, rng)
		bs.Obs = cfg.SGD.Obs
		ts := NewTupleShuffle(bs, capTuples, rng)
		ts.DoubleBuffer = cfg.DoubleBuffer
		ts.Clock = src.Clock()
		ts.CopyCost = 60 * time.Nanosecond
		ts.Obs = cfg.SGD.Obs
		child = ts
	default:
		st, err := shuffle.New(cfg.Shuffle, src, shuffle.Options{
			BufferFraction: cfg.BufferFraction,
			Seed:           cfg.Seed,
			DoubleBuffer:   cfg.DoubleBuffer,
			Obs:            cfg.SGD.Obs,
		})
		if err != nil {
			return nil, err
		}
		child = &strategyOp{st: st}
	}
	if cfg.Filter != nil {
		child = NewFilter(child, cfg.Filter)
	}
	op, err := NewSGD(child, cfg.SGD)
	if err != nil {
		return nil, err
	}
	op.Faults = faults
	return op, nil
}

// strategyOp adapts a shuffle.Strategy to the Operator interface so that
// baseline strategies run under the same SGD operator.
type strategyOp struct {
	st    shuffle.Strategy
	epoch int
	it    shuffle.Iterator
}

// Init implements Operator.
func (op *strategyOp) Init() error {
	op.epoch = 0
	return op.start()
}

func (op *strategyOp) start() error {
	it, err := op.st.StartEpoch(op.epoch)
	if err != nil {
		return fmt.Errorf("executor: strategy %s epoch %d: %w", op.st.Name(), op.epoch, err)
	}
	op.it = it
	return nil
}

// Next implements Operator.
func (op *strategyOp) Next() (*data.Tuple, bool, error) {
	t, ok := op.it.Next()
	if !ok {
		return nil, false, op.it.Err()
	}
	return t, true, nil
}

// ReScan implements Operator.
func (op *strategyOp) ReScan() error {
	op.epoch++
	return op.start()
}

// Close implements Operator.
func (op *strategyOp) Close() error { return nil }
