package executor

import (
	"fmt"
	"math/rand"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/obs"
	"corgipile/internal/shuffle"
)

// PlanConfig describes a training query's physical plan.
type PlanConfig struct {
	// Shuffle selects the access-path strategy. The CorgiPile plan is
	// BlockShuffle → TupleShuffle → SGD; No Shuffle is Scan → SGD;
	// Block-Only omits TupleShuffle; Once/Epoch/Window/MRS plans fall back
	// to the strategy implementations in internal/shuffle wrapped as an
	// operator.
	Shuffle shuffle.Kind
	// BufferFraction sizes the TupleShuffle buffer (default 0.1).
	BufferFraction float64
	// DoubleBuffer enables the Section 6.3 optimization.
	DoubleBuffer bool
	// Seed seeds the plan's randomness.
	Seed int64
	// Filter, when non-nil, drops tuples failing the predicate (the WHERE
	// clause), applied above the access path and below SGD.
	Filter func(*data.Tuple) bool
	// FilterDesc describes Filter in EXPLAIN output (e.g. the WHERE text).
	FilterDesc string
	// Profile wraps every operator in a per-node runtime profiler; the
	// executed-plan statistics are exposed as SGDOp.Plan() and streamed per
	// epoch through SGDConfig.Feed. Zero-cost when false.
	Profile bool
	// Resilience, when enabled, wraps the source with retry/backoff and the
	// configured corrupt-block degrade policy below every access path; the
	// resulting fault report is exposed as SGDOp.Faults.
	Resilience shuffle.Resilience
	// SGD carries the learner configuration.
	SGD SGDConfig
}

// BuildSGDPlan assembles the physical plan for a TRAIN BY query over src
// and returns its SGD root operator.
func BuildSGDPlan(src shuffle.Source, cfg PlanConfig) (*SGDOp, error) {
	if cfg.BufferFraction <= 0 {
		cfg.BufferFraction = 0.1
	}
	var prof *PlanProfile
	var shape planShape
	if cfg.Profile {
		shape = buildShape(src, cfg)
		clock := cfg.SGD.Clock
		if clock == nil {
			clock = src.Clock()
		}
		prof = &PlanProfile{skeleton: shape.root, clock: clock}
		if ds, ok := src.(shuffle.DeviceSource); ok {
			prof.dev = ds.Device()
		}
	}
	var faults *shuffle.FaultReport
	if cfg.Resilience.Enabled() {
		// Wrap here, below the strategy switch, so every access path —
		// Scan, BlockShuffle, the CorgiPile pipeline, and the fallback
		// strategies — reads through the same retry/quarantine layer.
		// The SGD cancellation context also cancels retry backoff.
		if cfg.Resilience.Ctx == nil {
			cfg.Resilience.Ctx = cfg.SGD.Ctx
		}
		src, faults = shuffle.NewResilientSource(src, cfg.Resilience, cfg.SGD.Obs, nil)
		if prof != nil {
			prof.faults = faults
		}
	}
	// wrap attaches a profiling shell feeding the plan node st; a no-op
	// (returning op and a nil node) when profiling is off.
	wrap := func(op Operator, st *obs.PlanStats) (Operator, *nodeProf) {
		if prof == nil {
			return op, nil
		}
		n := &nodeProf{st: st}
		if ts, ok := op.(*TupleShuffleOp); ok {
			n.ts = ts
		}
		prof.nodes = append(prof.nodes, n)
		return &profiledOp{op: op, n: n, clock: prof.clock}, n
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var child Operator
	var top *nodeProf // outermost wrapped node (SGD's direct child)
	switch cfg.Shuffle {
	case shuffle.KindNoShuffle:
		sc := NewScan(src)
		sc.Obs = cfg.SGD.Obs
		child, top = wrap(sc, shape.access)
	case shuffle.KindBlockOnly:
		bs := NewBlockShuffle(src, rng)
		bs.Obs = cfg.SGD.Obs
		child, top = wrap(bs, shape.access)
	case shuffle.KindCorgiPile, "":
		capTuples := int(cfg.BufferFraction * float64(src.NumTuples()))
		if capTuples < 1 {
			capTuples = 1
		}
		bs := NewBlockShuffle(src, rng)
		bs.Obs = cfg.SGD.Obs
		bsOp, bsN := wrap(bs, shape.inner)
		ts := NewTupleShuffle(bsOp, capTuples, rng)
		ts.DoubleBuffer = cfg.DoubleBuffer
		ts.Clock = src.Clock()
		ts.CopyCost = 60 * time.Nanosecond
		ts.Obs = cfg.SGD.Obs
		child, top = wrap(ts, shape.access)
		if top != nil {
			top.children = append(top.children, bsN)
			prof.leaf = bsN
		}
	default:
		st, err := shuffle.New(cfg.Shuffle, src, shuffle.Options{
			BufferFraction: cfg.BufferFraction,
			Seed:           cfg.Seed,
			DoubleBuffer:   cfg.DoubleBuffer,
			Obs:            cfg.SGD.Obs,
		})
		if err != nil {
			return nil, err
		}
		child, top = wrap(&strategyOp{st: st}, shape.access)
	}
	if prof != nil && prof.leaf == nil {
		prof.leaf = top
	}
	if cfg.Filter != nil {
		f, fn := wrap(NewFilter(child, cfg.Filter), shape.filter)
		if fn != nil {
			fn.children = append(fn.children, top)
			top = fn
		}
		child = f
	}
	if prof != nil {
		prof.top = top
	}
	op, err := NewSGD(child, cfg.SGD)
	if err != nil {
		return nil, err
	}
	op.Faults = faults
	op.Prof = prof
	return op, nil
}

// strategyOp adapts a shuffle.Strategy to the Operator interface so that
// baseline strategies run under the same SGD operator.
type strategyOp struct {
	st    shuffle.Strategy
	epoch int
	it    shuffle.Iterator
}

// Init implements Operator.
func (op *strategyOp) Init() error {
	op.epoch = 0
	return op.start()
}

func (op *strategyOp) start() error {
	it, err := op.st.StartEpoch(op.epoch)
	if err != nil {
		return fmt.Errorf("executor: strategy %s epoch %d: %w", op.st.Name(), op.epoch, err)
	}
	op.it = it
	return nil
}

// Next implements Operator.
func (op *strategyOp) Next() (*data.Tuple, bool, error) {
	t, ok := op.it.Next()
	if !ok {
		return nil, false, op.it.Err()
	}
	return t, true, nil
}

// ReScan implements Operator.
func (op *strategyOp) ReScan() error {
	op.epoch++
	return op.start()
}

// Close implements Operator.
func (op *strategyOp) Close() error { return nil }
