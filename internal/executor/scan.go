package executor

import (
	"math/rand"

	"corgipile/internal/data"
	"corgipile/internal/obs"
	"corgipile/internal/shuffle"
)

// ScanOp reads blocks sequentially in storage order — PostgreSQL's heap
// scan, and the access path of the No Shuffle strategy.
type ScanOp struct {
	src   shuffle.Source
	block int
	buf   []data.Tuple
	pos   int
	// Obs, when non-nil, counts blocks read under obs.ShuffleBlocks.
	Obs *obs.Registry
}

// NewScan returns a sequential scan over src.
func NewScan(src shuffle.Source) *ScanOp { return &ScanOp{src: src} }

// Init implements Operator.
func (op *ScanOp) Init() error { return op.ReScan() }

// Next implements Operator.
func (op *ScanOp) Next() (*data.Tuple, bool, error) {
	for op.pos >= len(op.buf) {
		if op.block >= op.src.NumBlocks() {
			return nil, false, nil
		}
		buf, err := op.src.ReadBlock(op.block)
		if err != nil {
			return nil, false, err
		}
		op.block++
		op.Obs.Inc(obs.ShuffleBlocks)
		op.buf, op.pos = buf, 0
	}
	t := &op.buf[op.pos]
	op.pos++
	return t, true, nil
}

// ReScan implements Operator.
func (op *ScanOp) ReScan() error {
	op.block, op.buf, op.pos = 0, nil, 0
	return nil
}

// Close implements Operator.
func (op *ScanOp) Close() error { return nil }

// BlockShuffleOp reads blocks in a random order, reshuffled on every
// ReScan — the paper's first new physical operator. Tuples within a block
// stay in storage order; pairing it with TupleShuffleOp yields CorgiPile.
type BlockShuffleOp struct {
	src   shuffle.Source
	rng   *rand.Rand
	order []int
	next  int
	buf   []data.Tuple
	pos   int
	// Obs, when non-nil, counts blocks read under obs.ShuffleBlocks.
	Obs *obs.Registry
}

// NewBlockShuffle returns a block-shuffling scan over src seeded by rng.
func NewBlockShuffle(src shuffle.Source, rng *rand.Rand) *BlockShuffleOp {
	return &BlockShuffleOp{src: src, rng: rng}
}

// Init implements Operator.
func (op *BlockShuffleOp) Init() error { return op.ReScan() }

// Next implements Operator.
func (op *BlockShuffleOp) Next() (*data.Tuple, bool, error) {
	for op.pos >= len(op.buf) {
		if op.next >= len(op.order) {
			return nil, false, nil
		}
		buf, err := op.src.ReadBlock(op.order[op.next])
		if err != nil {
			return nil, false, err
		}
		op.next++
		op.Obs.Inc(obs.ShuffleBlocks)
		op.buf, op.pos = buf, 0
	}
	t := &op.buf[op.pos]
	op.pos++
	return t, true, nil
}

// ReScan implements Operator: it reshuffles the block ids, the per-epoch
// block-level shuffle of Algorithm 1.
func (op *BlockShuffleOp) ReScan() error {
	op.order = op.rng.Perm(op.src.NumBlocks())
	op.next, op.buf, op.pos = 0, nil, 0
	return nil
}

// Close implements Operator.
func (op *BlockShuffleOp) Close() error { return nil }
