// Package executor implements the Volcano-style physical operators the
// paper adds to PostgreSQL (Section 6): BlockShuffle, TupleShuffle (with
// the double-buffering optimization), and SGD, plus a sequential Scan and a
// Predict operator. Operators follow PostgreSQL's pull model — Init/Next/
// ReScan/Close — and the SGD operator drives multi-epoch training through
// the re-scan mechanism exactly as the paper describes.
package executor

import "corgipile/internal/data"

// Operator is a pull-based physical operator producing tuples.
type Operator interface {
	// Init prepares operator state (buffers, shuffled block ids).
	Init() error
	// Next returns the next tuple; ok=false ends the current scan.
	Next() (t *data.Tuple, ok bool, err error)
	// ReScan resets the operator to produce a fresh scan — for shuffle
	// operators, with fresh randomness. It mirrors PostgreSQL's
	// ExecReScan, which the SGD operator invokes between epochs.
	ReScan() error
	// Close releases operator resources.
	Close() error
}
