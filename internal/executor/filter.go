package executor

import "corgipile/internal/data"

// FilterOp passes through only tuples matching a predicate — the physical
// operator behind the SQL WHERE clause.
type FilterOp struct {
	child Operator
	pred  func(*data.Tuple) bool
}

// NewFilter wraps child with the predicate.
func NewFilter(child Operator, pred func(*data.Tuple) bool) *FilterOp {
	return &FilterOp{child: child, pred: pred}
}

// Init implements Operator.
func (op *FilterOp) Init() error { return op.child.Init() }

// Next implements Operator.
func (op *FilterOp) Next() (*data.Tuple, bool, error) {
	for {
		t, ok, err := op.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if op.pred(t) {
			return t, true, nil
		}
	}
}

// ReScan implements Operator.
func (op *FilterOp) ReScan() error { return op.child.ReScan() }

// Close implements Operator.
func (op *FilterOp) Close() error { return op.child.Close() }
