package executor

import (
	"testing"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/ml"
	"corgipile/internal/obs"
	"corgipile/internal/shuffle"
	"corgipile/internal/storage"
)

// TestSGDPlanPopulatesBreakdown checks that the operator pipeline reports
// into an attached registry: each epoch of a CorgiPile plan yields one
// breakdown row carrying I/O, refill, and tuple counts.
func TestSGDPlanPopulatesBreakdown(t *testing.T) {
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 1500, Features: 8, Order: data.OrderClustered, Seed: 11})
	clock := iosim.NewClock()
	dev := iosim.NewDevice(iosim.HDD, clock)
	tab, err := storage.Build(dev, ds, storage.Options{BlockSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New().WithClock(clock)
	dev.WithObs(reg)
	op, err := BuildSGDPlan(shuffle.TableSource(tab), PlanConfig{
		Shuffle: shuffle.KindCorgiPile,
		Seed:    11,
		SGD: SGDConfig{
			Model:  ml.SVM{},
			Opt:    ml.NewSGD(0.05),
			Epochs: 2, Features: ds.Features,
			Clock: clock,
			Obs:   reg,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := op.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(op.Breakdown) != 2 {
		t.Fatalf("got %d rows, %d breakdown entries, want 2 each", len(rows), len(op.Breakdown))
	}
	for i, m := range op.Breakdown {
		if m.Epoch != i+1 || m.Tuples != 1500 {
			t.Fatalf("breakdown row %d = %+v", i, m)
		}
		if m.BytesRead == 0 || m.Refills == 0 || m.IOSeconds <= 0 {
			t.Fatalf("epoch %d missing I/O accounting: %+v", m.Epoch, m)
		}
		if m.Seconds <= 0 {
			t.Fatalf("epoch %d has non-positive duration", m.Epoch)
		}
	}
}
