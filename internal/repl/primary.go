package repl

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"corgipile/internal/db"
	"corgipile/internal/obs"
	"corgipile/internal/storage"
)

// PrimaryConfig configures StartPrimary.
type PrimaryConfig struct {
	// Addr is the TCP address to serve the replication stream on.
	Addr string
	// Session is the WAL-backed session whose records are shipped.
	Session *db.Session
	// Locker is held while cutting a snapshot or registering a subscriber;
	// it must exclude WAL appends (the serving plane passes the catalog's
	// read lock — appends all run under the write lock). nil means the
	// caller serializes appends some other way and a no-op lock is used.
	Locker sync.Locker
	// RingBytes bounds the in-memory catch-up ring (default 4 MiB).
	RingBytes int64
	// SendBuffer is each subscriber's buffered record count; a replica
	// further behind than buffer+ring is shed and resynced (default 256).
	SendBuffer int
	// Heartbeat is the idle keep-alive interval (default 2s).
	Heartbeat time.Duration
	// WriteTimeout bounds each frame write; a replica that can't drain its
	// socket within it is disconnected, not waited on (default 10s).
	WriteTimeout time.Duration
	// Obs receives repl.* metrics (nil-safe).
	Obs *obs.Registry
	// Events, when non-nil, receives replica connect/shed/disconnect events
	// for the introspection plane (nil-safe).
	Events *obs.EventLog
}

func (cfg PrimaryConfig) withDefaults() PrimaryConfig {
	if cfg.RingBytes <= 0 {
		cfg.RingBytes = 4 << 20
	}
	if cfg.SendBuffer <= 0 {
		cfg.SendBuffer = 256
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.Locker == nil {
		cfg.Locker = noopLocker{}
	}
	return cfg
}

type noopLocker struct{}

func (noopLocker) Lock()   {}
func (noopLocker) Unlock() {}

// Primary serves the replication stream. Ingest never blocks on it: the
// WAL notify hook only appends to the hub ring and offers frames to
// bounded buffers.
type Primary struct {
	cfg  PrimaryConfig
	ln   net.Listener
	hub  *hub
	done chan struct{}

	mu     sync.Mutex
	conns  map[*primConn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// primConn tracks one replica connection's acked progress.
type primConn struct {
	remote  string
	applied atomic.Uint64
	sheds   atomic.Int64
}

// ReplicaStatus is one connected replica's progress as seen by the primary,
// surfaced through the corgi_replication system table.
type ReplicaStatus struct {
	// Remote is the replica connection's remote address.
	Remote string
	// AppliedLSN is the last LSN the replica acked as durably applied.
	AppliedLSN uint64
	// LagLSN is the primary's last published LSN minus AppliedLSN.
	LagLSN uint64
	// Sheds counts how many times this connection overflowed its send
	// buffer and was resynced.
	Sheds int64
}

// Replicas snapshots every connected replica's status, sorted is not
// guaranteed — callers order the rows themselves.
func (p *Primary) Replicas() []ReplicaStatus {
	last := p.hub.last()
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ReplicaStatus, 0, len(p.conns))
	for pc := range p.conns {
		st := ReplicaStatus{
			Remote:     pc.remote,
			AppliedLSN: pc.applied.Load(),
			Sheds:      pc.sheds.Load(),
		}
		if last > st.AppliedLSN {
			st.LagLSN = last - st.AppliedLSN
		}
		out = append(out, st)
	}
	return out
}

// StartPrimary opens the replication listener and begins publishing every
// record the session's WAL appends from now on.
func StartPrimary(cfg PrimaryConfig) (*Primary, error) {
	cfg = cfg.withDefaults()
	if cfg.Session == nil || !cfg.Session.Durable() {
		return nil, fmt.Errorf("repl: primary requires a WAL-backed session")
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("repl: listen: %w", err)
	}
	p := &Primary{
		cfg:   cfg,
		ln:    ln,
		hub:   newHub(cfg.Session.LastLSN(), cfg.RingBytes),
		done:  make(chan struct{}),
		conns: make(map[*primConn]struct{}),
	}
	cfg.Session.WAL().WithNotify(func(rec storage.WALRecord) {
		n := p.hub.publish(rec)
		p.cfg.Obs.Inc(obs.ReplPublishRecords)
		p.cfg.Obs.Add(obs.ReplPublishBytes, int64(n))
		p.updateLag()
	})
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the listener's address.
func (p *Primary) Addr() string { return p.ln.Addr().String() }

// Close stops accepting replicas, disconnects the connected ones, and
// detaches from the session's WAL.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.done)
	p.cfg.Session.WAL().WithNotify(nil)
	err := p.ln.Close()
	p.wg.Wait()
	p.updateLag()
	return err
}

func (p *Primary) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.wg.Add(1)
		go p.handle(c)
	}
}

// handle owns one replica connection: handshake, catch-up, stream, and the
// shed → resync loop.
func (p *Primary) handle(c net.Conn) {
	defer p.wg.Done()
	defer c.Close()

	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	c.SetReadDeadline(time.Now().Add(p.cfg.WriteTimeout))
	if !sc.Scan() {
		return
	}
	var hello helloMsg
	if err := json.Unmarshal(sc.Bytes(), &hello); err != nil || hello.validate() != nil {
		return
	}
	c.SetReadDeadline(time.Time{})

	pc := &primConn{remote: c.RemoteAddr().String()}
	pc.applied.Store(hello.Applied)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.conns[pc] = struct{}{}
	p.mu.Unlock()
	p.cfg.Events.Emit(obs.EvReplConnect, "", fmt.Sprintf("remote=%s applied=%d", pc.remote, hello.Applied))
	defer func() {
		p.mu.Lock()
		delete(p.conns, pc)
		p.mu.Unlock()
		p.updateLag()
		p.cfg.Events.Emit(obs.EvReplDisconnect, "", fmt.Sprintf("remote=%s applied=%d", pc.remote, pc.applied.Load()))
	}()
	p.updateLag()

	// Ack reader: the replica reports durable progress on the same
	// connection. Closing c on exit unblocks the writer below.
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		defer c.Close()
		for sc.Scan() {
			var ack ackMsg
			if json.Unmarshal(sc.Bytes(), &ack) != nil {
				return
			}
			pc.applied.Store(ack.Applied)
			p.updateLag()
		}
	}()

	bw := bufio.NewWriterSize(c, 64<<10)
	applied, force := hello.Applied, hello.Snapshot
	for {
		sub, reply, snap, err := p.catchup(applied, force)
		if err != nil {
			break
		}
		force = false
		if reply.Mode == modeSnapshot {
			p.cfg.Obs.Inc(obs.ReplSnapshots)
		}
		line, err := json.Marshal(reply)
		if err != nil {
			p.hub.unsubscribe(sub)
			break
		}
		c.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
		bw.Write(line)
		bw.WriteByte('\n')
		bw.Write(snap)
		if err := bw.Flush(); err != nil {
			p.hub.unsubscribe(sub)
			break
		}

		err = p.stream(c, bw, sub)
		p.hub.unsubscribe(sub)
		if err != nil {
			break
		}
		// Shed: the subscriber overflowed. Re-run catch-up from the acked
		// LSN — served from the ring when it still covers it, otherwise a
		// fresh snapshot.
		p.cfg.Obs.Inc(obs.ReplSheds)
		pc.sheds.Add(1)
		applied = pc.applied.Load()
		p.cfg.Events.Emit(obs.EvReplShed, "", fmt.Sprintf("remote=%s applied=%d", pc.remote, applied))
	}
	<-ackDone
}

// catchup decides how to bring a replica at `applied` up to date. Under
// the catalog lock (excluding appends) it either subscribes directly —
// the ring covers everything past applied — or cuts a full snapshot and
// subscribes from its frontier.
func (p *Primary) catchup(applied uint64, force bool) (*subscriber, replyMsg, []byte, error) {
	p.cfg.Locker.Lock()
	defer p.cfg.Locker.Unlock()
	last := p.cfg.Session.LastLSN()
	if !force && applied <= last {
		if sub, ok := p.hub.subscribe(applied, p.cfg.SendBuffer); ok {
			return sub, replyMsg{Magic: wireMagic, V: wireVersion, Mode: modeStream, Frontier: applied}, nil, nil
		}
	}
	snap, frontier, err := p.cfg.Session.ReplicationSnapshot()
	if err != nil {
		return nil, replyMsg{}, nil, err
	}
	sub, ok := p.hub.subscribe(frontier, p.cfg.SendBuffer)
	if !ok {
		return nil, replyMsg{}, nil, fmt.Errorf("repl: ring behind its own frontier")
	}
	return sub, replyMsg{Magic: wireMagic, V: wireVersion, Mode: modeSnapshot, Frontier: frontier}, snap, nil
}

// stream forwards frames until the connection dies (error), the primary
// closes (error), or the subscriber is shed (nil — caller resyncs).
func (p *Primary) stream(c net.Conn, bw *bufio.Writer, sub *subscriber) error {
	hb := time.NewTicker(p.cfg.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case frame := <-sub.ch:
			c.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
			if _, err := bw.Write(frame); err != nil {
				return err
			}
			// Batch whatever else is ready before flushing.
		drain:
			for {
				select {
				case f := <-sub.ch:
					if _, err := bw.Write(f); err != nil {
						return err
					}
				default:
					break drain
				}
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		case <-sub.gone:
			return nil
		case <-hb.C:
			frame := storage.AppendWALRecord(nil, storage.WALRecord{LSN: p.hub.last(), Type: heartbeatType})
			c.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
			if _, err := bw.Write(frame); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
			p.cfg.Obs.Inc(obs.ReplHeartbeats)
			// Acks drive the lag gauges; on a quiet stream only heartbeats
			// tick, so refresh here too or sampled lag history goes stale.
			p.updateLag()
		case <-p.done:
			return fmt.Errorf("repl: primary closed")
		}
	}
}

// updateLag recomputes the aggregate lag gauges from every connection's
// acked LSN. With no replicas connected the gauges read zero.
func (p *Primary) updateLag() {
	p.mu.Lock()
	n := len(p.conns)
	minApplied := ^uint64(0)
	for pc := range p.conns {
		if a := pc.applied.Load(); a < minApplied {
			minApplied = a
		}
	}
	p.mu.Unlock()
	if n == 0 {
		p.cfg.Obs.SetGauge(obs.ReplReplicas, 0)
		p.cfg.Obs.SetGauge(obs.ReplLagLSN, 0)
		p.cfg.Obs.SetGauge(obs.ReplLagBytes, 0)
		return
	}
	last := p.hub.last()
	var lag uint64
	if last > minApplied {
		lag = last - minApplied
	}
	p.cfg.Obs.SetGauge(obs.ReplReplicas, float64(n))
	p.cfg.Obs.SetGauge(obs.ReplLagLSN, float64(lag))
	p.cfg.Obs.SetGauge(obs.ReplLagBytes, float64(p.hub.pendingBytes(minApplied)))
}
