package repl

import (
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"corgipile/internal/db"
	"corgipile/internal/obs"
	"corgipile/internal/storage"
)

const testCreate = `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.02, order='clustered') WITH device='ram', block_size=16KB`

// openSession opens a WAL-backed session over dir.
func openSession(t *testing.T, dir string) *db.Session {
	t.Helper()
	s := db.NewSession()
	if _, err := s.OpenWAL(dir); err != nil {
		t.Fatalf("OpenWAL(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// insertSQL builds an INSERT of n rows matching t's feature count.
func insertSQL(t *testing.T, s *db.Session, table string, n int) string {
	t.Helper()
	ent, ok := s.Table(table)
	if !ok {
		t.Fatalf("table %s missing", table)
	}
	feats := ent.Table.Features()
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s VALUES ", table)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for f := 0; f < feats; f++ {
			fmt.Fprintf(&b, "%.3f, ", float64(i*7+f)/97.0)
		}
		if i%2 == 0 {
			b.WriteString("1)")
		} else {
			b.WriteString("-1)")
		}
	}
	return b.String()
}

func mustExec(t *testing.T, s *db.Session, sql string) {
	t.Helper()
	if _, err := s.Exec(sql); err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// sameCatalog asserts the replica mirrors the primary: same tuple count in
// t, same weights in every named model.
func sameCatalog(t *testing.T, prim, rep *db.Session, models ...string) {
	t.Helper()
	pt, ok := prim.Table("t")
	if !ok {
		t.Fatal("primary lost table t")
	}
	rt, ok := rep.Table("t")
	if !ok {
		t.Fatal("replica missing table t")
	}
	if pt.Table.NumTuples() != rt.Table.NumTuples() {
		t.Fatalf("tuples: primary %d, replica %d", pt.Table.NumTuples(), rt.Table.NumTuples())
	}
	for _, m := range models {
		pm, ok := prim.Model(m)
		if !ok {
			t.Fatalf("primary lost model %s", m)
		}
		rm, ok := rep.Model(m)
		if !ok {
			t.Fatalf("replica missing model %s", m)
		}
		if len(pm.W) != len(rm.W) {
			t.Fatalf("model %s: weight length %d vs %d", m, len(pm.W), len(rm.W))
		}
		for i := range pm.W {
			if pm.W[i] != rm.W[i] {
				t.Fatalf("model %s: weight[%d] %v vs %v", m, i, pm.W[i], rm.W[i])
			}
		}
	}
}

// lockedSession pairs a session with the RWMutex discipline the serving
// plane uses: mutations under the write lock, the primary's snapshot
// cutter under the read lock.
type lockedSession struct {
	mu sync.RWMutex
	s  *db.Session
}

func (l *lockedSession) exec(t *testing.T, sql string) {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	mustExec(t, l.s, sql)
}

func TestReplicaCatchupSnapshotAndStream(t *testing.T) {
	primDir, repDir := t.TempDir(), t.TempDir()
	reg := obs.New()

	prim := &lockedSession{s: openSession(t, primDir)}
	prim.exec(t, testCreate)
	prim.exec(t, insertSQL(t, prim.s, "t", 40))
	prim.exec(t, `SELECT * FROM t TRAIN BY svm MODEL base WITH max_epoch_num=2, seed=7, shuffle='corgipile'`)

	p, err := StartPrimary(PrimaryConfig{
		Addr:    "127.0.0.1:0",
		Session: prim.s,
		Locker:  prim.mu.RLocker(),
		Obs:     reg,
	})
	if err != nil {
		t.Fatalf("StartPrimary: %v", err)
	}
	defer p.Close()

	// The primary started after its history was written, so the hub ring
	// is empty: a fresh replica must be caught up with a snapshot.
	repSess := openSession(t, repDir)
	var repMu sync.Mutex
	r, err := StartReplica(ReplicaConfig{
		Primary: p.Addr(),
		Session: repSess,
		Locker:  &repMu,
		Obs:     reg,
	})
	if err != nil {
		t.Fatalf("StartReplica: %v", err)
	}

	want := prim.s.LastLSN()
	waitFor(t, "snapshot catch-up", func() bool { return r.AppliedLSN() >= want })
	if got := reg.Counter(obs.ReplSnapshots); got != 1 {
		t.Fatalf("snapshots = %d, want 1", got)
	}
	repMu.Lock()
	sameCatalog(t, prim.s, repSess, "base")
	repMu.Unlock()

	// Live tail: new records stream record-by-record.
	prim.exec(t, insertSQL(t, prim.s, "t", 25))
	prim.exec(t, `SELECT * FROM t TRAIN BY svm MODEL tail WITH max_epoch_num=1, seed=11, shuffle='corgipile'`)
	want = prim.s.LastLSN()
	waitFor(t, "live tail", func() bool { return r.AppliedLSN() >= want })
	repMu.Lock()
	sameCatalog(t, prim.s, repSess, "base", "tail")
	repMu.Unlock()
	waitFor(t, "lag gauge to settle", func() bool { return reg.Gauge(obs.ReplLagLSN) == 0 })

	// Disconnect, write a little more (still inside the ring), reconnect:
	// the replica resumes from its applied LSN without another snapshot.
	if err := r.Close(); err != nil {
		t.Fatalf("replica close: %v", err)
	}
	prim.exec(t, insertSQL(t, prim.s, "t", 10))
	r2, err := StartReplica(ReplicaConfig{
		Primary: p.Addr(),
		Session: repSess,
		Locker:  &repMu,
		Obs:     reg,
	})
	if err != nil {
		t.Fatalf("StartReplica(resume): %v", err)
	}
	defer r2.Close()
	want = prim.s.LastLSN()
	waitFor(t, "ring resume", func() bool { return r2.AppliedLSN() >= want })
	if got := reg.Counter(obs.ReplSnapshots); got != 1 {
		t.Fatalf("resume took a snapshot (snapshots = %d), want ring stream", got)
	}
	repMu.Lock()
	sameCatalog(t, prim.s, repSess, "base", "tail")
	repMu.Unlock()

	// Promote and confirm the replica directory stands alone: recovery
	// sees exactly the mirrored catalog.
	applied, err := r2.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if applied != want {
		t.Fatalf("promoted at LSN %d, want %d", applied, want)
	}
	if _, err := r2.Promote(); err != nil {
		t.Fatalf("second Promote: %v", err)
	}
	repSess.Close()
	solo := openSession(t, repDir)
	sameCatalog(t, prim.s, solo, "base", "tail")
}

// faultProxy sits between replica and primary, corrupting or cutting the
// primary→replica stream for the first few connections.
type faultProxy struct {
	t       *testing.T
	ln      net.Listener
	target  string
	mu      sync.Mutex
	conns   int
	faulty  int // connections 1..faulty misbehave
	wg      sync.WaitGroup
	closing bool
}

func newFaultProxy(t *testing.T, target string, faulty int) *faultProxy {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	fp := &faultProxy{t: t, ln: ln, target: target, faulty: faulty}
	fp.wg.Add(1)
	go fp.accept()
	t.Cleanup(fp.Close)
	return fp
}

func (fp *faultProxy) Addr() string { return fp.ln.Addr().String() }

func (fp *faultProxy) Close() {
	fp.mu.Lock()
	if fp.closing {
		fp.mu.Unlock()
		return
	}
	fp.closing = true
	fp.mu.Unlock()
	fp.ln.Close()
	fp.wg.Wait()
}

func (fp *faultProxy) accept() {
	defer fp.wg.Done()
	for {
		c, err := fp.ln.Accept()
		if err != nil {
			return
		}
		fp.mu.Lock()
		fp.conns++
		n := fp.conns
		fp.mu.Unlock()
		fp.wg.Add(1)
		go fp.relay(c, n)
	}
}

// relay forwards both directions. Faulty connections either flip a byte in
// the downstream (odd n: the replica sees a corrupt frame) or cut the
// connection after a byte budget (even n: a mid-stream drop).
func (fp *faultProxy) relay(c net.Conn, n int) {
	defer fp.wg.Done()
	defer c.Close()
	up, err := net.Dial("tcp", fp.target)
	if err != nil {
		return
	}
	defer up.Close()
	done := make(chan struct{}, 2)
	go func() { // replica → primary: acks pass through untouched
		io.Copy(up, c)
		up.Close()
		done <- struct{}{}
	}()
	go func() { // primary → replica
		faulty := n <= fp.faulty
		corrupt := faulty && n%2 == 1
		budget := int64(1 << 62)
		if faulty && n%2 == 0 {
			budget = 900
		}
		buf := make([]byte, 512)
		var sent, seen int64
		for sent < budget {
			m, err := up.Read(buf)
			if m > 0 {
				chunk := buf[:m]
				if corrupt && seen+int64(m) > 600 {
					// Flip one byte past the handshake line.
					chunk[m-1] ^= 0xA5
					corrupt = false
				}
				seen += int64(m)
				if rem := budget - sent; int64(len(chunk)) > rem {
					chunk = chunk[:rem]
				}
				w, werr := c.Write(chunk)
				sent += int64(w)
				if werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		c.Close()
		done <- struct{}{}
	}()
	<-done
	<-done
}

func TestReplicaTransportFaults(t *testing.T) {
	primDir, repDir := t.TempDir(), t.TempDir()
	reg := obs.New()

	prim := &lockedSession{s: openSession(t, primDir)}
	p, err := StartPrimary(PrimaryConfig{
		Addr:      "127.0.0.1:0",
		Session:   prim.s,
		Locker:    prim.mu.RLocker(),
		Heartbeat: 50 * time.Millisecond,
		Obs:       reg,
	})
	if err != nil {
		t.Fatalf("StartPrimary: %v", err)
	}
	defer p.Close()

	proxy := newFaultProxy(t, p.Addr(), 6)
	repSess := openSession(t, repDir)
	var repMu sync.Mutex
	r, err := StartReplica(ReplicaConfig{
		Primary:          proxy.Addr(),
		Session:          repSess,
		Locker:           &repMu,
		HeartbeatTimeout: 400 * time.Millisecond,
		Retry:            storage.RetryPolicy{Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond, Seed: 3},
		Obs:              reg,
	})
	if err != nil {
		t.Fatalf("StartReplica: %v", err)
	}
	defer r.Close()

	// Ingest through the fault storm: every record must arrive exactly
	// once despite corrupt frames and dropped connections.
	prim.exec(t, testCreate)
	for i := 0; i < 8; i++ {
		prim.exec(t, insertSQL(t, prim.s, "t", 15))
	}
	prim.exec(t, `SELECT * FROM t TRAIN BY svm MODEL m WITH max_epoch_num=1, seed=7, shuffle='corgipile'`)

	want := prim.s.LastLSN()
	waitFor(t, "replay through faults", func() bool { return r.AppliedLSN() >= want })
	repMu.Lock()
	sameCatalog(t, prim.s, repSess, "m")
	repMu.Unlock()

	if got := reg.Counter(obs.ReplReconnects); got < 1 {
		t.Fatalf("reconnects = %d, want >= 1 (proxy injected %d faulty conns)", got, 6)
	}
	// No double-apply: with no snapshot in play, the per-record apply
	// counter must equal the number of distinct LSNs, exactly.
	applies := reg.Counter(obs.ReplApplyRecords)
	snaps := reg.Counter(obs.ReplSnapshots)
	if snaps == 0 && applies != int64(want) {
		t.Fatalf("applied %d records for %d LSNs — double or missed apply", applies, want)
	}
	if snaps > 0 && applies > int64(want) {
		t.Fatalf("applied %d records for %d LSNs after snapshot — double apply", applies, want)
	}
}

// slowLocker delays every acquisition, simulating a replica whose apply
// path can't keep up with ingest.
type slowLocker struct {
	mu sync.Mutex
	d  atomic.Int64 // delay in nanoseconds
}

func (l *slowLocker) Lock() {
	time.Sleep(time.Duration(l.d.Load()))
	l.mu.Lock()
}
func (l *slowLocker) Unlock() { l.mu.Unlock() }

func TestPrimaryShedsSlowReplica(t *testing.T) {
	primDir, repDir := t.TempDir(), t.TempDir()
	reg := obs.New()

	prim := &lockedSession{s: openSession(t, primDir)}
	prim.exec(t, testCreate)

	p, err := StartPrimary(PrimaryConfig{
		Addr:       "127.0.0.1:0",
		Session:    prim.s,
		Locker:     prim.mu.RLocker(),
		RingBytes:  1 << 14, // tiny ring: a shed replica usually needs a snapshot
		SendBuffer: 2,
		Obs:        reg,
	})
	if err != nil {
		t.Fatalf("StartPrimary: %v", err)
	}
	defer p.Close()

	repSess := openSession(t, repDir)
	slow := &slowLocker{}
	slow.d.Store(int64(10 * time.Millisecond))
	r, err := StartReplica(ReplicaConfig{
		Primary: p.Addr(),
		Session: repSess,
		Locker:  slow,
		Retry:   storage.RetryPolicy{Backoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond, Seed: 5},
		Obs:     reg,
	})
	if err != nil {
		t.Fatalf("StartReplica: %v", err)
	}
	defer r.Close()
	waitFor(t, "initial sync", func() bool { return r.AppliedLSN() >= prim.s.LastLSN() })

	// Burst faster than the replica drains: the bounded buffer overflows,
	// the subscriber is shed, and ingest never blocks.
	start := time.Now()
	for i := 0; i < 30; i++ {
		prim.exec(t, insertSQL(t, prim.s, "t", 20))
	}
	ingest := time.Since(start)
	slow.d.Store(0) // let the replica recover

	want := prim.s.LastLSN()
	waitFor(t, "resync after shed", func() bool { return r.AppliedLSN() >= want })
	if got := reg.Counter(obs.ReplSheds); got < 1 {
		t.Fatalf("sheds = %d, want >= 1", got)
	}
	if ingest > 10*time.Second {
		t.Fatalf("ingest blocked on slow replica: %v", ingest)
	}
	slow.Lock()
	sameCatalog(t, prim.s, repSess)
	slow.Unlock()
}
