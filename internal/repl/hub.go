package repl

import (
	"sync"

	"corgipile/internal/storage"
)

// hub fans appended WAL records out to subscribers without ever blocking
// the append path. It keeps a bounded ring of recent framed records so a
// subscriber that reconnects (or is created for a replica slightly behind
// the frontier) can catch up from memory; anything older than the ring
// needs a full snapshot. A subscriber whose buffered channel fills is shed
// — its gone channel closes, its sender re-runs catch-up — so one slow
// replica can never apply backpressure to ingest.
type hub struct {
	mu       sync.Mutex
	maxBytes int64
	ring     []ringEntry
	ringSize int64
	lastLSN  uint64 // highest LSN published (or the log's LSN at startup)
	subs     map[*subscriber]struct{}
}

type ringEntry struct {
	lsn   uint64
	frame []byte
}

type subscriber struct {
	ch   chan []byte
	gone chan struct{} // closed once on overflow (shed)
	shed bool
}

func newHub(lastLSN uint64, maxBytes int64) *hub {
	return &hub{
		maxBytes: maxBytes,
		lastLSN:  lastLSN,
		subs:     make(map[*subscriber]struct{}),
	}
}

// publish frames rec, appends it to the ring, and offers it to every
// subscriber. Called from the WAL notify hook — under the WAL mutex, in
// LSN order — so it must stay non-blocking.
func (h *hub) publish(rec storage.WALRecord) (frameLen int) {
	frame := storage.AppendWALRecord(nil, rec)
	h.mu.Lock()
	h.ring = append(h.ring, ringEntry{lsn: rec.LSN, frame: frame})
	h.ringSize += int64(len(frame))
	for h.ringSize > h.maxBytes && len(h.ring) > 1 {
		h.ringSize -= int64(len(h.ring[0].frame))
		h.ring = h.ring[1:]
	}
	h.lastLSN = rec.LSN
	for sub := range h.subs {
		select {
		case sub.ch <- frame:
		default:
			// Full buffer: shed now, resync later. Dropping the subscriber
			// here (not just marking it) keeps publish O(live subscribers).
			sub.shed = true
			close(sub.gone)
			delete(h.subs, sub)
		}
	}
	h.mu.Unlock()
	return len(frame)
}

// last returns the highest published LSN.
func (h *hub) last() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastLSN
}

// subscribe registers a subscriber needing records with LSN > after,
// pre-filling its channel from the ring. It fails (nil, false) when the
// ring no longer covers after+1 — the caller must serve a snapshot and
// subscribe from its frontier instead. The caller must prevent concurrent
// appends (hold the catalog lock) so no record can fall between the ring
// check and the registration.
func (h *hub) subscribe(after uint64, buffer int) (*subscriber, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if after < h.lastLSN {
		if len(h.ring) == 0 || h.ring[0].lsn > after+1 {
			return nil, false
		}
	}
	var prefill [][]byte
	for _, e := range h.ring {
		if e.lsn > after {
			prefill = append(prefill, e.frame)
		}
	}
	sub := &subscriber{
		ch:   make(chan []byte, len(prefill)+buffer),
		gone: make(chan struct{}),
	}
	for _, f := range prefill {
		sub.ch <- f
	}
	h.subs[sub] = struct{}{}
	return sub, true
}

// unsubscribe removes sub; safe to call after a shed.
func (h *hub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	delete(h.subs, sub)
	h.mu.Unlock()
}

// pendingBytes estimates the ring bytes above the given LSN — the lag in
// bytes for a replica whose applied LSN is `after`. Records that already
// left the ring are not counted (the gauge is a floor, not an exact sum).
func (h *hub) pendingBytes(after uint64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var n int64
	for _, e := range h.ring {
		if e.lsn > after {
			n += int64(len(e.frame))
		}
	}
	return n
}
