package repl

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"corgipile/internal/db"
	"corgipile/internal/obs"
	"corgipile/internal/storage"
)

// ReplicaConfig configures StartReplica.
type ReplicaConfig struct {
	// Primary is the primary's replication address (its -replica-listen).
	Primary string
	// Session is the replica's own WAL-backed session; records are made
	// durable in it with the primary's LSNs preserved.
	Session *db.Session
	// Locker is held around every catalog mutation (snapshot install,
	// record apply); the serving plane passes the catalog's write lock so
	// readers never see a half-applied record. nil uses a no-op lock.
	Locker sync.Locker
	// OnApply observes each applied record after it lands (predict-cache
	// invalidation). Called under Locker. Optional.
	OnApply func(rec storage.WALRecord)
	// OnSnapshot observes a wholesale snapshot install. Called under
	// Locker. Optional.
	OnSnapshot func()
	// Retry shapes the reconnect backoff: Backoff, MaxBackoff, Multiplier
	// and Seed are used exactly as storage.RetryPolicy defines them
	// (equal jitter, deterministic per seed); MaxAttempts is ignored — a
	// replica retries until promoted or closed.
	Retry storage.RetryPolicy
	// HeartbeatTimeout is how long the stream may stay silent before the
	// primary is presumed dead (default 10s; must exceed the primary's
	// heartbeat interval).
	HeartbeatTimeout time.Duration
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// Dial overrides the transport (fault-injection tests). Default is a
	// plain TCP dial with DialTimeout.
	Dial func(addr string) (net.Conn, error)
	// Obs receives repl.* metrics (nil-safe).
	Obs *obs.Registry
	// Events, when non-nil, receives resync events (a diverged replica
	// rebuilding from a fresh snapshot) for the introspection plane.
	Events *obs.EventLog
}

func (cfg ReplicaConfig) withDefaults() ReplicaConfig {
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 10 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.Locker == nil {
		cfg.Locker = noopLocker{}
	}
	if cfg.Dial == nil {
		d := cfg.DialTimeout
		cfg.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, d)
		}
	}
	return cfg
}

// Replica maintains the connection to a primary, applying shipped records
// until Promote or Close stops it. All reconnects resume from the durable
// applied LSN; a record the replica already applied is skipped by the LSN
// guard, never double-applied.
type Replica struct {
	cfg  ReplicaConfig
	stop chan struct{}
	done chan struct{}

	mu        sync.Mutex
	conn      net.Conn
	stopped   bool
	forceSnap bool
}

// StartReplica begins streaming from cfg.Primary in the background. A
// primary that is down or unreachable is retried with backoff — the
// replica keeps trying until Close or Promote.
func StartReplica(cfg ReplicaConfig) (*Replica, error) {
	cfg = cfg.withDefaults()
	if cfg.Session == nil || !cfg.Session.Durable() {
		return nil, fmt.Errorf("repl: replica requires a WAL-backed session")
	}
	r := &Replica{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	go r.loop()
	return r, nil
}

// AppliedLSN returns the replica's durable applied LSN.
func (r *Replica) AppliedLSN() uint64 { return r.cfg.Session.LastLSN() }

// Promote stops replication, flushes the replica's WAL, and returns the
// applied LSN the new primary starts from. Idempotent.
func (r *Replica) Promote() (uint64, error) {
	r.shutdown()
	if err := r.cfg.Session.FlushWAL(); err != nil {
		return 0, err
	}
	return r.cfg.Session.LastLSN(), nil
}

// Close stops replication without promoting.
func (r *Replica) Close() error {
	r.shutdown()
	return nil
}

func (r *Replica) shutdown() {
	r.mu.Lock()
	if !r.stopped {
		r.stopped = true
		close(r.stop)
	}
	conn := r.conn
	r.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	<-r.done
}

// loop dials, streams, and backs off on failure, forever. Backoff uses
// the storage.RetryPolicy equal-jitter schedule and resets to the base
// delay after any session that made progress.
func (r *Replica) loop() {
	defer close(r.done)
	pol := r.cfg.Retry
	if pol.Backoff <= 0 {
		pol.Backoff = time.Millisecond
	}
	if pol.MaxBackoff <= 0 {
		pol.MaxBackoff = 100 * time.Millisecond
	}
	if pol.Multiplier < 1 {
		pol.Multiplier = 2
	}
	rng := rand.New(rand.NewSource(pol.Seed))
	wait := pol.Backoff
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		progressed, err := r.session()
		if err == nil || r.isStopped() {
			return
		}
		r.cfg.Obs.Inc(obs.ReplReconnects)
		if progressed {
			wait = pol.Backoff
		}
		// Equal jitter, as in storage.RetryPolicy.Do.
		d := wait/2 + time.Duration(rng.Int63n(int64(wait/2)+1))
		select {
		case <-r.stop:
			return
		case <-time.After(d):
		}
		wait = time.Duration(float64(wait) * pol.Multiplier)
		if wait > pol.MaxBackoff {
			wait = pol.MaxBackoff
		}
	}
}

func (r *Replica) isStopped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stopped
}

// setConn records the live connection so shutdown can sever it; returns
// false when already stopped.
func (r *Replica) setConn(c net.Conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return false
	}
	r.conn = c
	return true
}

// session runs one connection lifetime: handshake, optional snapshot
// catch-up, then the apply loop. It returns a nil error only when the
// replica is stopping; any transport or protocol failure returns non-nil
// and the caller reconnects.
func (r *Replica) session() (progressed bool, err error) {
	conn, err := r.cfg.Dial(r.cfg.Primary)
	if err != nil {
		return false, err
	}
	if !r.setConn(conn) {
		conn.Close()
		return false, nil
	}
	defer func() {
		conn.Close()
		r.mu.Lock()
		r.conn = nil
		stopped := r.stopped
		r.mu.Unlock()
		if stopped {
			err = nil
		}
	}()

	r.mu.Lock()
	force := r.forceSnap
	r.mu.Unlock()
	hello, err := json.Marshal(helloMsg{
		Magic: wireMagic, V: wireVersion,
		Applied: r.cfg.Session.LastLSN(), Snapshot: force,
	})
	if err != nil {
		return false, err
	}
	conn.SetWriteDeadline(time.Now().Add(r.cfg.DialTimeout))
	if _, err := conn.Write(append(hello, '\n')); err != nil {
		return false, err
	}
	conn.SetWriteDeadline(time.Time{})

	br := bufio.NewReaderSize(conn, 64<<10)
	conn.SetReadDeadline(time.Now().Add(r.cfg.HeartbeatTimeout))
	line, err := br.ReadBytes('\n')
	if err != nil {
		return false, err
	}
	var reply replyMsg
	if err := json.Unmarshal(line, &reply); err != nil {
		return false, fmt.Errorf("repl: handshake reply: %w", err)
	}
	if err := reply.validate(); err != nil {
		return false, err
	}

	if reply.Mode == modeSnapshot {
		r.cfg.Events.Emit(obs.EvReplResync, "", fmt.Sprintf("primary=%s frontier=%d", r.cfg.Primary, reply.Frontier))
		if err := r.installSnapshot(conn, br, reply.Frontier); err != nil {
			return false, err
		}
		progressed = true
		if err := r.ack(conn); err != nil {
			return progressed, err
		}
	}

	for {
		conn.SetReadDeadline(time.Now().Add(r.cfg.HeartbeatTimeout))
		rec, err := storage.ReadWALRecord(br)
		if err != nil {
			return progressed, err
		}
		if rec.Type == heartbeatType {
			r.updateLag(rec.LSN)
			if err := r.ack(conn); err != nil {
				return progressed, err
			}
			continue
		}
		r.cfg.Locker.Lock()
		err = r.cfg.Session.ApplyReplicated(rec)
		if err == nil && r.cfg.OnApply != nil {
			r.cfg.OnApply(rec)
		}
		r.cfg.Locker.Unlock()
		switch {
		case err == nil:
			progressed = true
			r.cfg.Obs.Inc(obs.ReplApplyRecords)
		case errors.Is(err, storage.ErrStaleLSN):
			// A resend across a reconnect: already durable and applied.
		default:
			// The record logged or applied inconsistently — the catalog may
			// have diverged from the primary's history. Rebuild wholesale.
			r.mu.Lock()
			r.forceSnap = true
			r.mu.Unlock()
			return progressed, err
		}
		// Batch boundary: nothing else buffered. Make the batch durable and
		// ack it — the ack must never run ahead of the disk.
		if br.Buffered() == 0 {
			if err := r.cfg.Session.FlushWAL(); err != nil {
				return progressed, err
			}
			r.updateLag(rec.LSN)
			if err := r.ack(conn); err != nil {
				return progressed, err
			}
		}
	}
}

// installSnapshot reads checkpoint-format frames up to and including the
// WALCheckpoint terminator and installs the image wholesale.
func (r *Replica) installSnapshot(conn net.Conn, br *bufio.Reader, frontier uint64) error {
	var snap []byte
	for {
		conn.SetReadDeadline(time.Now().Add(r.cfg.HeartbeatTimeout))
		rec, err := storage.ReadWALRecord(br)
		if err != nil {
			return err
		}
		if rec.Type == heartbeatType {
			continue
		}
		snap = storage.AppendWALRecord(snap, rec)
		if rec.Type == storage.WALCheckpoint {
			break
		}
	}
	r.cfg.Locker.Lock()
	err := r.cfg.Session.InstallReplicaSnapshot(snap, frontier)
	if err == nil {
		r.mu.Lock()
		r.forceSnap = false
		r.mu.Unlock()
		if r.cfg.OnSnapshot != nil {
			r.cfg.OnSnapshot()
		}
	}
	r.cfg.Locker.Unlock()
	if err != nil {
		return err
	}
	r.updateLag(frontier)
	return nil
}

// ack reports durable progress to the primary.
func (r *Replica) ack(conn net.Conn) error {
	line, err := json.Marshal(ackMsg{Applied: r.cfg.Session.LastLSN()})
	if err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Now().Add(r.cfg.HeartbeatTimeout))
	_, err = conn.Write(append(line, '\n'))
	conn.SetWriteDeadline(time.Time{})
	return err
}

// updateLag exports the replica-side gauges: its durable applied LSN and
// its lag against the freshest frontier the stream has shown it.
func (r *Replica) updateLag(primaryLSN uint64) {
	applied := r.cfg.Session.LastLSN()
	r.cfg.Obs.SetGauge(obs.ReplAppliedLSN, float64(applied))
	var lag uint64
	if primaryLSN > applied {
		lag = primaryLSN - applied
	}
	r.cfg.Obs.SetGauge(obs.ReplLagLSN, float64(lag))
}
