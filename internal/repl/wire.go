// Package repl is WAL-shipping replication for the serving plane: a
// primary publishes every WAL record it appends to connected replicas,
// each replica makes the records durable in its own WAL directory
// (preserving the primary's LSNs) and applies them through the same path
// crash recovery uses. A replica's directory is therefore always a valid
// single-node WAL directory: PROMOTE — or just restarting the process
// against that directory — goes through unchanged recovery, which is what
// makes a promoted replica's TRAIN ... resume bit-identical to recovering
// the primary itself.
//
// Wire protocol (documented in docs/PROTOCOL.md, "Replication stream"):
//
//	replica → primary   one JSON handshake line:
//	                    {"magic":"corgirepl","v":1,"applied":N,"snapshot":false}
//	primary → replica   one JSON reply line:
//	                    {"magic":"corgirepl","v":1,"mode":"stream"|"snapshot","frontier":F}
//	primary → replica   binary WAL frames (storage.AppendWALRecord framing).
//	                    In snapshot mode the stream opens with a full
//	                    checkpoint-format image (synthetic LSNs 1..n) whose
//	                    terminating WALCheckpoint record carries frontier F;
//	                    live records with LSN > F follow. In stream mode
//	                    live records with LSN > applied follow immediately.
//	replica → primary   JSON ack lines {"applied":N} after each durably
//	                    applied batch, on the same connection.
//
// Heartbeat frames (type 0xFF, LSN = primary's latest) keep idle
// connections verifiably alive; they are never logged or applied. A
// replica that reads nothing for its heartbeat timeout assumes the
// primary is gone and reconnects with deterministic backoff, resuming
// from its durable applied LSN. Records resent across a reconnect are
// skipped by the LSN guard (storage.ErrStaleLSN) — never double-applied.
package repl

import (
	"fmt"

	"corgipile/internal/storage"
)

const (
	wireMagic   = "corgirepl"
	wireVersion = 1

	modeStream   = "stream"
	modeSnapshot = "snapshot"
)

// heartbeatType marks liveness frames; it is far above every real record
// type and is filtered out before the apply path.
const heartbeatType = storage.WALRecordType(0xFF)

// helloMsg is the replica's handshake line.
type helloMsg struct {
	Magic   string `json:"magic"`
	V       int    `json:"v"`
	Applied uint64 `json:"applied"`
	// Snapshot forces a full snapshot even when the tail would resume —
	// the replica sets it after an apply failure (diverged catalog).
	Snapshot bool `json:"snapshot,omitempty"`
}

// replyMsg is the primary's handshake reply.
type replyMsg struct {
	Magic    string `json:"magic"`
	V        int    `json:"v"`
	Mode     string `json:"mode"`
	Frontier uint64 `json:"frontier"`
}

// ackMsg is the replica's durable-progress report.
type ackMsg struct {
	Applied uint64 `json:"applied"`
}

func (h helloMsg) validate() error {
	if h.Magic != wireMagic {
		return fmt.Errorf("repl: bad handshake magic %q", h.Magic)
	}
	if h.V != wireVersion {
		return fmt.Errorf("repl: unsupported protocol version %d", h.V)
	}
	return nil
}

func (r replyMsg) validate() error {
	if r.Magic != wireMagic {
		return fmt.Errorf("repl: bad handshake reply magic %q", r.Magic)
	}
	if r.V != wireVersion {
		return fmt.Errorf("repl: unsupported protocol version %d", r.V)
	}
	if r.Mode != modeStream && r.Mode != modeSnapshot {
		return fmt.Errorf("repl: unknown stream mode %q", r.Mode)
	}
	return nil
}
