// Package stats implements the distribution analyses the paper uses to
// visualize shuffling quality (Figures 3–4) — tuple-id scatter, windowed
// label histograms, order-randomness scores — plus plain-text table and
// series rendering for the benchmark reports.
package stats

import (
	"math"
	"sort"
)

// LabelWindow is one bar group of the paper's label-distribution plots:
// the count of negative and positive tuples among `window` consecutive
// emissions.
type LabelWindow struct {
	// Start is the emission index of the window's first tuple.
	Start int
	// Neg and Pos count labels < 0 and >= 0 respectively.
	Neg, Pos int
}

// LabelWindows histograms emitted labels in consecutive windows (the paper
// uses windows of 20 tuples).
func LabelWindows(labels []float64, window int) []LabelWindow {
	if window <= 0 {
		window = 20
	}
	var out []LabelWindow
	for lo := 0; lo < len(labels); lo += window {
		hi := lo + window
		if hi > len(labels) {
			hi = len(labels)
		}
		w := LabelWindow{Start: lo}
		for _, l := range labels[lo:hi] {
			if l < 0 {
				w.Neg++
			} else {
				w.Pos++
			}
		}
		out = append(out, w)
	}
	return out
}

// LabelMixScore measures how evenly two classes are interleaved in an
// emission order: 1 − mean |neg/window − p| / p̄max over windows, scaled to
// [0, 1], where p is the global negative fraction. A perfectly interleaved
// stream scores near 1; a fully clustered stream scores near 0.
func LabelMixScore(labels []float64, window int) float64 {
	if len(labels) == 0 {
		return 0
	}
	wins := LabelWindows(labels, window)
	var negTotal int
	for _, l := range labels {
		if l < 0 {
			negTotal++
		}
	}
	p := float64(negTotal) / float64(len(labels))
	// The worst possible mean deviation (fully clustered) is 2p(1−p).
	worst := 2 * p * (1 - p)
	if worst == 0 {
		return 1
	}
	var dev float64
	for _, w := range wins {
		n := w.Neg + w.Pos
		if n == 0 {
			continue
		}
		dev += math.Abs(float64(w.Neg)/float64(n) - p)
	}
	dev /= float64(len(wins))
	score := 1 - dev/worst
	if score < 0 {
		return 0
	}
	if score > 1 {
		return 1
	}
	return score
}

// OrderCorrelation returns the Spearman rank correlation between emission
// position and original tuple id. An unshuffled stream scores ≈ 1; a fully
// shuffled stream scores ≈ 0. This is the scalar summary of the paper's
// tuple-id scatter plots (Figures 3a–d and 4a).
func OrderCorrelation(ids []int64) float64 {
	n := len(ids)
	if n < 2 {
		return 1
	}
	// Emission positions are already ranks 0..n-1; rank the ids.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ids[idx[a]] < ids[idx[b]] })
	rank := make([]float64, n)
	for r, i := range idx {
		rank[i] = float64(r)
	}
	// Pearson correlation between position i and rank[i].
	mean := float64(n-1) / 2
	var num, den float64
	for i := 0; i < n; i++ {
		num += (float64(i) - mean) * (rank[i] - mean)
		den += (float64(i) - mean) * (float64(i) - mean)
	}
	if den == 0 {
		return 1
	}
	return num / den
}

// MeanDisplacement returns the mean |emission position − original id|
// normalized by n — 0 for an unshuffled stream, approaching 1/3 for a
// uniform shuffle.
func MeanDisplacement(ids []int64) float64 {
	n := len(ids)
	if n == 0 {
		return 0
	}
	var sum float64
	for i, id := range ids {
		sum += math.Abs(float64(i) - float64(id))
	}
	return sum / float64(n) / float64(n)
}
