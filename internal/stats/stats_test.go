package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func clusteredLabels(n int) []float64 {
	labels := make([]float64, n)
	for i := range labels {
		if i < n/2 {
			labels[i] = -1
		} else {
			labels[i] = 1
		}
	}
	return labels
}

func interleavedLabels(n int) []float64 {
	labels := make([]float64, n)
	for i := range labels {
		if i%2 == 0 {
			labels[i] = -1
		} else {
			labels[i] = 1
		}
	}
	return labels
}

func TestLabelWindowsCounts(t *testing.T) {
	wins := LabelWindows(clusteredLabels(100), 20)
	if len(wins) != 5 {
		t.Fatalf("windows = %d, want 5", len(wins))
	}
	if wins[0].Neg != 20 || wins[0].Pos != 0 {
		t.Fatalf("first window %+v, want all negative", wins[0])
	}
	if wins[4].Neg != 0 || wins[4].Pos != 20 {
		t.Fatalf("last window %+v, want all positive", wins[4])
	}
}

func TestLabelWindowsPartialTail(t *testing.T) {
	wins := LabelWindows(make([]float64, 25), 20)
	if len(wins) != 2 || wins[1].Pos != 5 {
		t.Fatalf("tail window wrong: %+v", wins)
	}
}

func TestLabelWindowsDefaultWindow(t *testing.T) {
	wins := LabelWindows(make([]float64, 40), 0)
	if len(wins) != 2 {
		t.Fatalf("default window should be 20, got %d windows", len(wins))
	}
}

func TestLabelMixScoreExtremes(t *testing.T) {
	clustered := LabelMixScore(clusteredLabels(1000), 20)
	mixed := LabelMixScore(interleavedLabels(1000), 20)
	if clustered > 0.1 {
		t.Fatalf("clustered mix score = %.3f, want ~0", clustered)
	}
	if mixed < 0.9 {
		t.Fatalf("interleaved mix score = %.3f, want ~1", mixed)
	}
}

func TestLabelMixScoreRandomHigh(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	labels := clusteredLabels(2000)
	rng.Shuffle(len(labels), func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
	if score := LabelMixScore(labels, 20); score < 0.7 {
		t.Fatalf("random shuffle mix score = %.3f, want >= 0.7", score)
	}
}

func TestLabelMixScoreSingleClass(t *testing.T) {
	labels := make([]float64, 100)
	for i := range labels {
		labels[i] = 1
	}
	if LabelMixScore(labels, 20) != 1 {
		t.Fatal("single-class stream is trivially mixed")
	}
	if LabelMixScore(nil, 20) != 0 {
		t.Fatal("empty stream scores 0")
	}
}

func TestOrderCorrelationExtremes(t *testing.T) {
	n := 1000
	identity := make([]int64, n)
	for i := range identity {
		identity[i] = int64(i)
	}
	if c := OrderCorrelation(identity); math.Abs(c-1) > 1e-9 {
		t.Fatalf("identity correlation = %v, want 1", c)
	}
	reversed := make([]int64, n)
	for i := range reversed {
		reversed[i] = int64(n - 1 - i)
	}
	if c := OrderCorrelation(reversed); math.Abs(c+1) > 1e-9 {
		t.Fatalf("reversed correlation = %v, want -1", c)
	}
	rng := rand.New(rand.NewSource(2))
	shuffled := append([]int64(nil), identity...)
	rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	if c := OrderCorrelation(shuffled); math.Abs(c) > 0.1 {
		t.Fatalf("random correlation = %v, want ~0", c)
	}
}

func TestOrderCorrelationDegenerate(t *testing.T) {
	if OrderCorrelation(nil) != 1 || OrderCorrelation([]int64{5}) != 1 {
		t.Fatal("degenerate inputs should score 1")
	}
}

func TestMeanDisplacement(t *testing.T) {
	identity := []int64{0, 1, 2, 3}
	if MeanDisplacement(identity) != 0 {
		t.Fatal("identity displacement must be 0")
	}
	swapped := []int64{3, 2, 1, 0}
	if MeanDisplacement(swapped) == 0 {
		t.Fatal("reversed displacement must be positive")
	}
	if MeanDisplacement(nil) != 0 {
		t.Fatal("empty displacement must be 0")
	}
}

func TestMeanDisplacementRandomNearThird(t *testing.T) {
	n := 10000
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(n, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	d := MeanDisplacement(ids)
	if d < 0.3 || d > 0.37 {
		t.Fatalf("uniform-shuffle displacement = %.3f, want ~1/3", d)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.AddRow("alpha", 1.23456)
	tab.AddRow("b", 42)
	var sb strings.Builder
	if err := tab.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "## Demo") || !strings.Contains(out, "alpha") || !strings.Contains(out, "1.235") {
		t.Fatalf("table output malformed:\n%s", out)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header, separator, two rows, plus title.
	if len(lines) != 5 {
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1})
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline runes = %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline should be empty")
	}
	flat := Sparkline([]float64{2, 2, 2})
	if len([]rune(flat)) != 3 {
		t.Fatal("flat sparkline malformed")
	}
}
