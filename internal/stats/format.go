package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple text table used by the benchmark reports.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Len reports the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Write renders the table as aligned plain text.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Sparkline renders values as a unicode mini-chart, handy for convergence
// curves in terminal reports.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(ticks)-1))
		}
		b.WriteRune(ticks[idx])
	}
	return b.String()
}
