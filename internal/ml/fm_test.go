package ml

import (
	"math"
	"math/rand"
	"testing"

	"corgipile/internal/data"
)

func fmWeights(m FactorizationMachine, features int, seed int64) []float64 {
	w := make([]float64, m.Dim(features))
	rng := rand.New(rand.NewSource(seed))
	for i := range w {
		w[i] = rng.NormFloat64() * 0.3
	}
	return w
}

func TestFMGradientMatchesNumericDense(t *testing.T) {
	m := FactorizationMachine{Factors: 3}
	w := fmWeights(m, 4, 1)
	for _, label := range []float64{-1, 1} {
		tp := &data.Tuple{Label: label, Dense: []float64{0.5, -1, 0, 2}}
		checkGradient(t, m, w, tp, 1e-4)
	}
}

func TestFMGradientMatchesNumericSparse(t *testing.T) {
	m := FactorizationMachine{Factors: 4}
	w := fmWeights(m, 20, 2)
	tp := &data.Tuple{Label: 1, SparseIdx: []int32{2, 7, 19}, SparseVal: []float64{1.5, -0.5, 2}}
	checkGradient(t, m, w, tp, 1e-4)
}

func TestFMScoreIdentity(t *testing.T) {
	// Brute-force pairwise interactions must equal the O(nnz·K) identity.
	m := FactorizationMachine{Factors: 2}
	w := fmWeights(m, 5, 3)
	x := []float64{1, 2, 0, -1, 0.5}
	tp := &data.Tuple{Dense: x}
	got := m.score(w, tp)

	d, k := 5, 2
	want := w[d] // bias
	for i := 0; i < d; i++ {
		want += w[i] * x[i]
	}
	v := func(i, f int) float64 { return w[d+1+i*k+f] }
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			dot := 0.0
			for f := 0; f < k; f++ {
				dot += v(i, f) * v(j, f)
			}
			want += dot * x[i] * x[j]
		}
	}
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("FM score = %v, brute force %v", got, want)
	}
}

func TestFMDefaultFactors(t *testing.T) {
	m := FactorizationMachine{}
	if m.Dim(10) != 10+1+10*8 {
		t.Fatalf("default-rank Dim = %d", m.Dim(10))
	}
}

func TestFMLearnsInteractionData(t *testing.T) {
	// XOR-like data: label = sign(x0*x1); linear models cannot fit it, an
	// FM can.
	rng := rand.New(rand.NewSource(4))
	ds := &data.Dataset{Task: data.TaskBinary, Features: 2, Classes: 2}
	for i := 0; i < 2000; i++ {
		x0, x1 := rng.NormFloat64(), rng.NormFloat64()
		label := -1.0
		if x0*x1 > 0 {
			label = 1.0
		}
		ds.Tuples = append(ds.Tuples, data.Tuple{ID: int64(i), Label: label, Dense: []float64{x0, x1}})
	}

	m := FactorizationMachine{Factors: 4}
	w := make([]float64, m.Dim(2))
	m.InitWeights(w, 2, 0.1, rng)
	tr := NewTrainer(m, &SGD{LR0: 0.05, Decay: 0.95, L2: 1e-5}, 1)
	for epoch := 0; epoch < 20; epoch++ {
		tr.RunEpoch(w, SliceStream(ds))
	}
	fmAcc := Accuracy(m, w, ds)

	lr := LogisticRegression{}
	wl := make([]float64, lr.Dim(2))
	trl := NewTrainer(lr, NewSGD(0.05), 1)
	for epoch := 0; epoch < 20; epoch++ {
		trl.RunEpoch(wl, SliceStream(ds))
	}
	linAcc := Accuracy(lr, wl, ds)

	t.Logf("fm=%.3f linear=%.3f", fmAcc, linAcc)
	if fmAcc < 0.9 {
		t.Fatalf("FM accuracy %.3f on interaction data, want >= 0.9", fmAcc)
	}
	if linAcc > 0.65 {
		t.Fatalf("linear model unexpectedly fits XOR data: %.3f", linAcc)
	}
}

func TestFMViaNewAndNames(t *testing.T) {
	m, err := New("fm", 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "fm" {
		t.Fatalf("name = %q", m.Name())
	}
}

func TestAUCBasics(t *testing.T) {
	// Perfect ranking → 1; inverted → 0; random-ish → ~0.5.
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []float64{-1, -1, 1, 1}
	if auc := AUC(scores, labels); auc != 1 {
		t.Fatalf("perfect AUC = %v", auc)
	}
	if auc := AUC(scores, []float64{1, 1, -1, -1}); auc != 0 {
		t.Fatalf("inverted AUC = %v", auc)
	}
	// Ties contribute half.
	if auc := AUC([]float64{0.5, 0.5}, []float64{1, -1}); auc != 0.5 {
		t.Fatalf("tied AUC = %v", auc)
	}
	// Degenerate inputs.
	if AUC(nil, nil) != 0.5 || AUC([]float64{1}, []float64{1}) != 0.5 {
		t.Fatal("degenerate AUC should be 0.5")
	}
}

func TestModelAUCImprovesWithTraining(t *testing.T) {
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 2000, Features: 10, Separation: 2, Order: data.OrderShuffled, Seed: 5})
	m := LogisticRegression{}
	w := make([]float64, m.Dim(10))
	before := ModelAUC(m, w, ds) // zero weights → all scores 0 → 0.5
	if math.Abs(before-0.5) > 1e-9 {
		t.Fatalf("untrained AUC = %v, want 0.5", before)
	}
	tr := NewTrainer(m, NewSGD(0.05), 1)
	for epoch := 0; epoch < 5; epoch++ {
		tr.RunEpoch(w, SliceStream(ds))
	}
	if after := ModelAUC(m, w, ds); after < 0.9 {
		t.Fatalf("trained AUC = %v, want >= 0.9", after)
	}
}

func TestSGDL2Decay(t *testing.T) {
	opt := &SGD{LR0: 0.1, Decay: 1, L2: 0.5}
	opt.Reset(2)
	w := []float64{1, 1}
	opt.Step(w, []int32{0}, []float64{0}) // pure decay on touched coord
	if math.Abs(w[0]-0.95) > 1e-12 || w[1] != 1 {
		t.Fatalf("L2 step = %v, want [0.95 1]", w)
	}
}
