package ml

import (
	"math"
	"testing"
)

func TestSGDStep(t *testing.T) {
	opt := NewSGD(0.1)
	opt.Reset(3)
	w := []float64{1, 1, 1}
	opt.Step(w, []int32{0, 2}, []float64{1, -2})
	if w[0] != 0.9 || w[1] != 1 || math.Abs(w[2]-1.2) > 1e-12 {
		t.Fatalf("SGD step wrong: %v", w)
	}
}

func TestSGDDecay(t *testing.T) {
	opt := NewSGD(1)
	opt.Reset(1)
	opt.EndEpoch()
	if math.Abs(opt.LR()-0.95) > 1e-12 {
		t.Fatalf("lr after one epoch = %v, want 0.95", opt.LR())
	}
	opt.EndEpoch()
	if math.Abs(opt.LR()-0.9025) > 1e-12 {
		t.Fatalf("lr after two epochs = %v, want 0.9025", opt.LR())
	}
	opt.Reset(1)
	if opt.LR() != 1 {
		t.Fatal("Reset must restore initial lr")
	}
}

func TestSGDZeroDecayMeansNone(t *testing.T) {
	opt := &SGD{LR0: 0.5}
	opt.Reset(1)
	opt.EndEpoch()
	if opt.LR() != 0.5 {
		t.Fatalf("zero Decay should keep lr constant, got %v", opt.LR())
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = ½‖w − c‖²; gradient w − c.
	c := []float64{3, -2}
	opt := NewAdam(0.1)
	opt.Reset(2)
	w := []float64{0, 0}
	for i := 0; i < 2000; i++ {
		g := []float64{w[0] - c[0], w[1] - c[1]}
		opt.Step(w, []int32{0, 1}, g)
	}
	if math.Abs(w[0]-3) > 0.05 || math.Abs(w[1]+2) > 0.05 {
		t.Fatalf("Adam did not converge: %v", w)
	}
}

func TestAdamFirstStepSize(t *testing.T) {
	// The very first Adam step has magnitude ≈ lr regardless of gradient
	// scale (bias-corrected moments cancel).
	for _, g := range []float64{1e-4, 1, 1e4} {
		opt := NewAdam(0.01)
		opt.Reset(1)
		w := []float64{0}
		opt.Step(w, []int32{0}, []float64{g})
		if math.Abs(math.Abs(w[0])-0.01) > 1e-4 {
			t.Fatalf("first Adam step for g=%v moved %v, want ~0.01", g, w[0])
		}
	}
}

func TestAdamLazyInitOnFirstStep(t *testing.T) {
	opt := NewAdam(0.1)
	w := []float64{0, 0}
	opt.Step(w, []int32{1}, []float64{1}) // must not panic without Reset
	if w[1] == 0 {
		t.Fatal("lazy-initialized Adam did not update")
	}
	if w[0] != 0 {
		t.Fatal("untouched coordinate moved")
	}
}

func TestAdamDecay(t *testing.T) {
	opt := &Adam{LR0: 1, Decay: 0.5}
	opt.Reset(1)
	opt.EndEpoch()
	if opt.LR() != 0.5 {
		t.Fatalf("Adam decay: lr = %v, want 0.5", opt.LR())
	}
}

func TestNewOptimizer(t *testing.T) {
	for _, name := range []string{"sgd", "adam", ""} {
		opt, err := NewOptimizer(name, 0.1)
		if err != nil || opt == nil {
			t.Fatalf("NewOptimizer(%q) failed: %v", name, err)
		}
	}
	if _, err := NewOptimizer("lbfgs", 0.1); err == nil {
		t.Fatal("unknown optimizer must error")
	}
}

func TestOptimizerNames(t *testing.T) {
	if NewSGD(1).Name() != "sgd" || NewAdam(1).Name() != "adam" {
		t.Fatal("optimizer names wrong")
	}
}
