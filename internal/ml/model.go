// Package ml implements the machine-learning substrate: generalized linear
// models (logistic regression, SVM, linear regression), softmax regression,
// a small multi-layer perceptron standing in for the paper's deep models,
// the SGD and Adam optimizers, a tuple/mini-batch training loop, and
// evaluation metrics.
//
// Gradients are exchanged in sparse (index, value) form so that training on
// high-dimensional sparse data (the criteo-like workload) costs O(nnz) per
// tuple rather than O(d).
package ml

import (
	"fmt"

	"corgipile/internal/data"
)

// Model is a differentiable per-example loss — one f_i of the paper's
// finite-sum objective F(x) = (1/m) Σ f_i(x).
type Model interface {
	// Name identifies the model, e.g. "svm".
	Name() string
	// Dim returns the weight dimensionality for a dataset with the given
	// number of features.
	Dim(features int) int
	// Grad evaluates the example loss f_i(w) on tuple t and appends the
	// gradient ∇f_i(w) in sparse (index, value) form to gi/gv, returning
	// the loss and the extended slices.
	Grad(w []float64, t *data.Tuple, gi []int32, gv []float64) (loss float64, gi2 []int32, gv2 []float64)
	// Loss evaluates the example loss without computing the gradient.
	Loss(w []float64, t *data.Tuple) float64
	// Predict returns the model's prediction for t: ±1 for binary
	// classifiers, the class index for multi-class models, the value for
	// regression.
	Predict(w []float64, t *data.Tuple) float64
}

// New constructs a model by name for a dataset with the given class count.
// Recognized names: "lr", "logistic", "svm", "linreg", "linear_regression",
// "softmax", "mlp", "fm".
func New(name string, classes int) (Model, error) {
	switch name {
	case "lr", "logistic", "logistic_regression":
		return LogisticRegression{}, nil
	case "svm":
		return SVM{}, nil
	case "linreg", "linear", "linear_regression":
		return LinearRegression{}, nil
	case "softmax", "softmax_regression":
		if classes < 2 {
			return nil, fmt.Errorf("ml: softmax needs >=2 classes, got %d", classes)
		}
		return Softmax{Classes: classes}, nil
	case "mlp":
		if classes < 2 {
			return nil, fmt.Errorf("ml: mlp needs >=2 classes, got %d", classes)
		}
		return MLP{Classes: classes, Hidden: 32}, nil
	case "fm", "factorization_machine":
		return FactorizationMachine{Factors: 8}, nil
	}
	return nil, fmt.Errorf("ml: unknown model %q", name)
}

// GradCost estimates the simulated compute time, in nanoseconds, of one
// gradient evaluation on a tuple with the given number of stored features.
// The constants are calibrated so a 28-feature higgs-like tuple costs about
// 1 µs — the per-tuple CPU cost scale of the paper's single-core
// PostgreSQL runs, which makes large scans I/O-bound on HDD and mildly
// CPU-bound in memory, as observed in Figure 13.
func GradCost(nnz int) int64 {
	return 200 + int64(nnz)*30
}
