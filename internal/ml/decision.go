package ml

import "corgipile/internal/data"

// DecisionValue returns a real-valued ranking score for the model's
// prediction on t: the margin ⟨w,x⟩+b for GLM classifiers and the FM, the
// predicted value for regression, and the top-class probability gap for
// multi-class models. Used by AUC.
func DecisionValue(m Model, w []float64, t *data.Tuple) float64 {
	switch m := m.(type) {
	case LogisticRegression, SVM, LinearRegression:
		return margin(w, t)
	case FactorizationMachine:
		return m.score(w, t)
	default:
		return m.Predict(w, t)
	}
}
