package ml

import (
	"fmt"
	"math/rand"
	"testing"

	"corgipile/internal/data"
)

// benchModels pairs every model with a dataset it can train on. MLP and FM
// get random weight initialization (zero factor matrices have zero
// interaction gradients, which would make the FM benchmark trivial).
func benchModels() []struct {
	name  string
	model Model
	ds    *data.Dataset
	init  func(w []float64)
} {
	dense := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 512, Features: 28, Order: data.OrderShuffled, Seed: 11})
	sparse := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 512, Features: 1000, Sparse: true, NNZ: 32,
		Order: data.OrderShuffled, Seed: 12})
	multi := data.SyntheticMulticlass(data.SyntheticConfig{
		Tuples: 512, Features: 28, Classes: 5, Order: data.OrderShuffled, Seed: 13})

	mlp := MLP{Classes: 5, Hidden: 32}
	fm := FactorizationMachine{Factors: 8}
	return []struct {
		name  string
		model Model
		ds    *data.Dataset
		init  func(w []float64)
	}{
		{"lr", LogisticRegression{}, dense, nil},
		{"svm", SVM{}, dense, nil},
		{"svm_sparse", SVM{}, sparse, nil},
		{"linreg", LinearRegression{}, dense, nil},
		{"softmax", Softmax{Classes: 5}, multi, nil},
		{"mlp", mlp, multi, func(w []float64) {
			mlp.InitWeights(w, multi.Features, rand.New(rand.NewSource(1)))
		}},
		{"fm", fm, dense, func(w []float64) {
			fm.InitWeights(w, dense.Features, 0.01, rand.New(rand.NewSource(1)))
		}},
	}
}

// BenchmarkGrad measures one workspace gradient evaluation per model — the
// innermost hot-path operation. Expected: 0 allocs/op for every model.
func BenchmarkGrad(b *testing.B) {
	for _, bm := range benchModels() {
		b.Run(bm.name, func(b *testing.B) {
			w := make([]float64, bm.model.Dim(bm.ds.Features))
			if bm.init != nil {
				bm.init(w)
			}
			var ws Workspace
			var gi []int32
			var gv []float64
			// Warm the scratch buffers so steady state is measured.
			_, gi, gv = GradWS(bm.model, &ws, w, bm.ds.At(0), gi[:0], gv[:0])
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := bm.ds.At(i % bm.ds.Len())
				_, gi, gv = GradWS(bm.model, &ws, w, t, gi[:0], gv[:0])
			}
		})
	}
}

// BenchmarkBatchStep measures one mini-batch gradient accumulation + optimizer
// step through the BatchEngine at several worker counts.
func BenchmarkBatchStep(b *testing.B) {
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 256, Features: 28, Order: data.OrderShuffled, Seed: 21})
	batch := make([]data.Tuple, ds.Len())
	for i := range batch {
		batch[i] = *ds.At(i)
	}
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			m := SVM{}
			opt := NewSGD(0.01)
			w := make([]float64, m.Dim(ds.Features))
			opt.Reset(len(w))
			eng := NewBatchEngine(m, procs)
			defer eng.Close()
			var acc GradAccumulator
			acc.Reset(len(w))
			var lossSum float64
			eng.Accumulate(w, batch, &acc, &lossSum) // warm shard scratch
			acc.Step(opt, w, len(batch))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := eng.Accumulate(w, batch, &acc, &lossSum)
				acc.Step(opt, w, n)
			}
		})
	}
}

// BenchmarkEpoch measures a full trainer epoch (per-tuple SGD and mini-batch
// at several worker counts) over an in-memory dataset.
func BenchmarkEpoch(b *testing.B) {
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 4096, Features: 28, Order: data.OrderShuffled, Seed: 31})
	run := func(b *testing.B, batchSize, procs int) {
		m := SVM{}
		tr := NewTrainer(m, NewSGD(0.01), batchSize)
		tr.Procs = procs
		defer tr.Close()
		w := make([]float64, m.Dim(ds.Features))
		tr.Opt.Reset(len(w))
		// One resettable stream, constructed outside the timed loop so the
		// epochs themselves are allocation-free.
		pos := 0
		next := func() (*data.Tuple, bool) {
			if pos >= ds.Len() {
				return nil, false
			}
			t := ds.At(pos)
			pos++
			return t, true
		}
		tr.RunEpoch(w, next) // warm scratch
		b.ReportAllocs()
		b.SetBytes(int64(ds.Len()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pos = 0
			tr.RunEpoch(w, next)
		}
	}
	b.Run("tuple", func(b *testing.B) { run(b, 1, 1) })
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("batch64/procs=%d", procs), func(b *testing.B) {
			run(b, 64, procs)
		})
	}
}
