package ml

import (
	"testing"

	"corgipile/internal/data"
)

// TestBatchEngineMatchesInline: the pooled engine must produce bit-for-bit
// the same accumulated gradient and loss sum as the single-proc inline path.
func TestBatchEngineMatchesInline(t *testing.T) {
	ds := binaryData(256, data.OrderShuffled, 41)
	batch := make([]data.Tuple, ds.Len())
	for i := range batch {
		batch[i] = *ds.At(i)
	}
	m := LogisticRegression{}
	w := make([]float64, m.Dim(ds.Features))
	for i := range w {
		w[i] = 0.01 * float64(i%7)
	}

	ref := func(procs int) ([]int32, []float64, float64) {
		eng := NewBatchEngine(m, procs)
		defer eng.Close()
		var acc GradAccumulator
		acc.Reset(len(w))
		var lossSum float64
		if n := eng.Accumulate(w, batch, &acc, &lossSum); n != len(batch) {
			t.Fatalf("procs=%d processed %d tuples, want %d", procs, n, len(batch))
		}
		gi, gv := acc.Gather(1 / float64(len(batch)))
		giC := append([]int32(nil), gi...)
		gvC := append([]float64(nil), gv...)
		return giC, gvC, lossSum
	}

	gi1, gv1, loss1 := ref(1)
	for _, procs := range []int{2, 3, 4, 7} {
		gi, gv, loss := ref(procs)
		if loss != loss1 {
			t.Fatalf("procs=%d loss %v != inline %v", procs, loss, loss1)
		}
		if len(gi) != len(gi1) {
			t.Fatalf("procs=%d touched %d coords, inline %d", procs, len(gi), len(gi1))
		}
		for k := range gi {
			if gi[k] != gi1[k] || gv[k] != gv1[k] {
				t.Fatalf("procs=%d gradient diverges at %d: (%d,%v) vs (%d,%v)",
					procs, k, gi[k], gv[k], gi1[k], gv1[k])
			}
		}
	}
}

// TestTrainerProcsInvariance: identical seed and data must give bit-for-bit
// identical weights and loss regardless of the worker count — the guarantee
// that makes -procs a pure performance knob.
func TestTrainerProcsInvariance(t *testing.T) {
	ds := binaryData(1000, data.OrderShuffled, 42)
	run := func(procs int) ([]float64, []float64) {
		m := SVM{}
		tr := NewTrainer(m, NewSGD(0.05), 64)
		tr.Procs = procs
		defer tr.Close()
		w := make([]float64, m.Dim(ds.Features))
		tr.Opt.Reset(len(w))
		var losses []float64
		for epoch := 0; epoch < 3; epoch++ {
			stats := tr.RunEpoch(w, SliceStream(ds))
			losses = append(losses, stats.AvgLoss)
		}
		return w, losses
	}
	w1, l1 := run(1)
	for _, procs := range []int{2, 4, 7} {
		w, l := run(procs)
		for i := range l1 {
			if l[i] != l1[i] {
				t.Fatalf("procs=%d epoch %d loss %v != single-proc %v", procs, i+1, l[i], l1[i])
			}
		}
		for i := range w1 {
			if w[i] != w1[i] {
				t.Fatalf("procs=%d weight %d = %v != single-proc %v", procs, i, w[i], w1[i])
			}
		}
	}
}

// TestTrainerReuseAfterClose: Close releases the pool, but a reused trainer
// must transparently rebuild it on the next epoch.
func TestTrainerReuseAfterClose(t *testing.T) {
	ds := binaryData(200, data.OrderShuffled, 43)
	m := SVM{}
	tr := NewTrainer(m, NewSGD(0.05), 32)
	tr.Procs = 4
	w := make([]float64, m.Dim(ds.Features))
	tr.RunEpoch(w, SliceStream(ds))
	tr.Close()
	stats := tr.RunEpoch(w, SliceStream(ds))
	tr.Close()
	if stats.Tuples != 200 {
		t.Fatalf("epoch after Close consumed %d tuples, want 200", stats.Tuples)
	}
}

// TestGradAccumulatorDedup: repeated indices within one batch must collapse
// to a single optimizer-visible coordinate (so Adam's per-coordinate state
// steps once per batch), with contributions summed in insertion order.
func TestGradAccumulatorDedup(t *testing.T) {
	var acc GradAccumulator
	acc.Reset(10)
	acc.Add([]int32{3, 5, 3}, []float64{1, 2, 3})
	acc.Add([]int32{5, 1}, []float64{4, 8})
	gi, gv := acc.Gather(0.5)
	want := map[int32]float64{3: 2, 5: 3, 1: 4}
	if len(gi) != 3 {
		t.Fatalf("touched %d coords, want 3: %v", len(gi), gi)
	}
	for k, idx := range gi {
		if gv[k] != want[idx] {
			t.Fatalf("coord %d = %v, want %v", idx, gv[k], want[idx])
		}
	}
	acc.Clear()
	if gi, gv := acc.Gather(1); len(gi) != 0 || len(gv) != 0 {
		t.Fatalf("accumulator not empty after Clear: %v %v", gi, gv)
	}
}
