package ml

import (
	"math"
	"math/rand"
	"testing"

	"corgipile/internal/data"
)

func binaryData(n int, order data.Order, seed int64) *data.Dataset {
	return data.SyntheticBinary(data.SyntheticConfig{
		Tuples: n, Features: 10, Separation: 3, Order: order, Seed: seed})
}

func TestTrainerLearnsSeparableData(t *testing.T) {
	ds := binaryData(2000, data.OrderShuffled, 1)
	m := SVM{}
	tr := NewTrainer(m, NewSGD(0.01), 1)
	w := make([]float64, m.Dim(ds.Features))
	for epoch := 0; epoch < 5; epoch++ {
		tr.RunEpoch(w, SliceStream(ds))
	}
	if acc := Accuracy(m, w, ds); acc < 0.9 {
		t.Fatalf("SVM train accuracy = %.3f, want >= 0.9", acc)
	}
}

func TestTrainerLogisticDecreasesLoss(t *testing.T) {
	ds := binaryData(1000, data.OrderShuffled, 2)
	m := LogisticRegression{}
	tr := NewTrainer(m, NewSGD(0.05), 1)
	w := make([]float64, m.Dim(ds.Features))
	before := MeanLoss(m, w, ds)
	for epoch := 0; epoch < 3; epoch++ {
		tr.RunEpoch(w, SliceStream(ds))
	}
	after := MeanLoss(m, w, ds)
	if after >= before {
		t.Fatalf("loss did not decrease: %v → %v", before, after)
	}
}

func TestTrainerEpochStats(t *testing.T) {
	ds := binaryData(100, data.OrderShuffled, 3)
	m := LogisticRegression{}
	tr := NewTrainer(m, NewSGD(0.1), 1)
	w := make([]float64, m.Dim(ds.Features))
	stats := tr.RunEpoch(w, SliceStream(ds))
	if stats.Tuples != 100 {
		t.Fatalf("Tuples = %d, want 100", stats.Tuples)
	}
	if stats.AvgLoss <= 0 {
		t.Fatalf("AvgLoss = %v, want > 0", stats.AvgLoss)
	}
}

func TestTrainerOnTupleHook(t *testing.T) {
	ds := binaryData(50, data.OrderShuffled, 4)
	m := SVM{}
	tr := NewTrainer(m, NewSGD(0.1), 1)
	calls := 0
	tr.OnTuple = func(*data.Tuple) { calls++ }
	w := make([]float64, m.Dim(ds.Features))
	tr.RunEpoch(w, SliceStream(ds))
	if calls != 50 {
		t.Fatalf("OnTuple called %d times, want 50", calls)
	}
}

func TestMiniBatchMatchesManualAverage(t *testing.T) {
	// One batch of 4 tuples with plain SGD must equal the manual averaged
	// gradient step.
	ds := binaryData(4, data.OrderShuffled, 5)
	m := LogisticRegression{}
	dim := m.Dim(ds.Features)

	w1 := make([]float64, dim)
	tr := NewTrainer(m, &SGD{LR0: 0.5, Decay: 1}, 4)
	tr.Opt.Reset(dim)
	tr.RunEpoch(w1, SliceStream(ds))

	w2 := make([]float64, dim)
	g := make([]float64, dim)
	for i := range ds.Tuples {
		_, gi, gv := m.Grad(w2, &ds.Tuples[i], nil, nil)
		for j, idx := range gi {
			g[idx] += gv[j]
		}
	}
	for i := range w2 {
		w2[i] -= 0.5 * g[i] / 4
	}
	for i := range w1 {
		if math.Abs(w1[i]-w2[i]) > 1e-12 {
			t.Fatalf("w[%d] = %v, manual %v", i, w1[i], w2[i])
		}
	}
}

func TestMiniBatchPartialFinalBatchApplied(t *testing.T) {
	ds := binaryData(5, data.OrderShuffled, 6)
	m := LogisticRegression{}
	tr := NewTrainer(m, NewSGD(0.5), 4)
	w := make([]float64, m.Dim(ds.Features))
	tr.RunEpoch(w, SliceStream(ds))
	var moved bool
	for _, v := range w {
		if v != 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("partial final batch was dropped")
	}
}

func TestMiniBatchLearns(t *testing.T) {
	ds := binaryData(2000, data.OrderShuffled, 7)
	m := SVM{}
	tr := NewTrainer(m, NewSGD(0.05), 128)
	w := make([]float64, m.Dim(ds.Features))
	for epoch := 0; epoch < 10; epoch++ {
		tr.RunEpoch(w, SliceStream(ds))
	}
	if acc := Accuracy(m, w, ds); acc < 0.9 {
		t.Fatalf("mini-batch SVM accuracy = %.3f, want >= 0.9", acc)
	}
}

func TestTrainerEmptyStream(t *testing.T) {
	m := SVM{}
	tr := NewTrainer(m, NewSGD(0.1), 1)
	w := make([]float64, m.Dim(4))
	stats := tr.RunEpoch(w, func() (*data.Tuple, bool) { return nil, false })
	if stats.Tuples != 0 || stats.AvgLoss != 0 {
		t.Fatalf("empty epoch stats = %+v", stats)
	}
}

func TestSoftmaxTrainsMulticlass(t *testing.T) {
	ds := data.SyntheticMulticlass(data.SyntheticConfig{
		Tuples: 1500, Features: 16, Classes: 3, Separation: 4, Order: data.OrderShuffled, Seed: 8})
	m := Softmax{Classes: 3}
	tr := NewTrainer(m, NewSGD(0.05), 1)
	w := make([]float64, m.Dim(ds.Features))
	for epoch := 0; epoch < 5; epoch++ {
		tr.RunEpoch(w, SliceStream(ds))
	}
	if acc := Accuracy(m, w, ds); acc < 0.85 {
		t.Fatalf("softmax accuracy = %.3f, want >= 0.85", acc)
	}
}

func TestMLPTrainsNonConvex(t *testing.T) {
	ds := data.SyntheticMulticlass(data.SyntheticConfig{
		Tuples: 1500, Features: 16, Classes: 3, Separation: 4, Order: data.OrderShuffled, Seed: 9})
	m := MLP{Classes: 3, Hidden: 16}
	w := make([]float64, m.Dim(ds.Features))
	m.InitWeights(w, ds.Features, rand.New(rand.NewSource(1)))
	tr := NewTrainer(m, NewSGD(0.02), 16)
	for epoch := 0; epoch < 15; epoch++ {
		tr.RunEpoch(w, SliceStream(ds))
	}
	if acc := Accuracy(m, w, ds); acc < 0.8 {
		t.Fatalf("MLP accuracy = %.3f, want >= 0.8", acc)
	}
}

func TestLinearRegressionRecoversSignal(t *testing.T) {
	ds := data.SyntheticRegression(data.SyntheticConfig{
		Tuples: 3000, Features: 8, Noise: 0.1, Order: data.OrderShuffled, Seed: 10})
	m := LinearRegression{}
	tr := NewTrainer(m, NewSGD(0.01), 1)
	w := make([]float64, m.Dim(ds.Features))
	for epoch := 0; epoch < 10; epoch++ {
		tr.RunEpoch(w, SliceStream(ds))
	}
	if r2 := R2(m, w, ds); r2 < 0.95 {
		t.Fatalf("R² = %.3f, want >= 0.95", r2)
	}
}

func TestSparseTrainingTouchesOnlySparseCoords(t *testing.T) {
	// With sparse data, untouched weight coordinates must remain exactly 0.
	m := LogisticRegression{}
	dim := m.Dim(1000)
	w := make([]float64, dim)
	tr := NewTrainer(m, NewSGD(0.1), 1)
	tp := data.Tuple{Label: 1, SparseIdx: []int32{3, 500}, SparseVal: []float64{1, 2}}
	sent := false
	tr.RunEpoch(w, func() (*data.Tuple, bool) {
		if sent {
			return nil, false
		}
		sent = true
		return &tp, true
	})
	for i, v := range w {
		touched := i == 3 || i == 500 || i == dim-1 // features + bias
		if touched && v == 0 {
			t.Fatalf("w[%d] should have moved", i)
		}
		if !touched && v != 0 {
			t.Fatalf("w[%d] = %v, should be untouched", i, v)
		}
	}
}

func TestGradNorm2ShrinksWithTraining(t *testing.T) {
	ds := binaryData(500, data.OrderShuffled, 11)
	m := LogisticRegression{}
	w := make([]float64, m.Dim(ds.Features))
	before := GradNorm2(m, w, ds)
	tr := NewTrainer(m, NewSGD(0.05), 1)
	for epoch := 0; epoch < 5; epoch++ {
		tr.RunEpoch(w, SliceStream(ds))
	}
	after := GradNorm2(m, w, ds)
	if after >= before {
		t.Fatalf("‖∇F‖² did not shrink: %v → %v", before, after)
	}
}

func TestAccuracyAndMeanLossEmpty(t *testing.T) {
	ds := &data.Dataset{}
	if Accuracy(SVM{}, nil, ds) != 0 || MeanLoss(SVM{}, nil, ds) != 0 || R2(LinearRegression{}, nil, ds) != 0 {
		t.Fatal("empty dataset metrics must be 0")
	}
}

func TestR2PerfectAndConstant(t *testing.T) {
	ds := &data.Dataset{Task: data.TaskRegression, Features: 1}
	ds.Tuples = []data.Tuple{
		{Label: 1, Dense: []float64{1}},
		{Label: 2, Dense: []float64{2}},
		{Label: 3, Dense: []float64{3}},
	}
	m := LinearRegression{}
	w := []float64{1, 0} // predict x exactly
	if r2 := R2(m, w, ds); math.Abs(r2-1) > 1e-12 {
		t.Fatalf("perfect R² = %v, want 1", r2)
	}
	// Constant targets: R² defined as 0 here.
	for i := range ds.Tuples {
		ds.Tuples[i].Label = 5
	}
	if r2 := R2(m, w, ds); r2 != 0 {
		t.Fatalf("constant-target R² = %v, want 0", r2)
	}
}
