package ml

import (
	"math"

	"corgipile/internal/data"
)

// Softmax is multinomial logistic regression over K classes with labels
// 0..K−1. The weight vector stores K rows of (features + 1) values, class k
// occupying w[k*(d+1) : (k+1)*(d+1)] with the bias in the last slot.
type Softmax struct {
	// Classes is the number of classes K.
	Classes int
}

// Name implements Model.
func (Softmax) Name() string { return "softmax" }

// Dim implements Model.
func (s Softmax) Dim(features int) int { return s.Classes * (features + 1) }

// classIndex maps a tuple label to a class index: −1 → 0 for binary data,
// otherwise the integer label.
func classIndex(label float64, classes int) int {
	if label < 0 {
		return 0
	}
	k := int(label)
	if k >= classes {
		k = classes - 1
	}
	return k
}

// logits computes the K class scores into the workspace's scratch buffer.
func (s Softmax) logits(ws *Workspace, w []float64, t *data.Tuple) []float64 {
	row := len(w) / s.Classes
	z := f64(&ws.p, s.Classes)
	for k := 0; k < s.Classes; k++ {
		wk := w[k*row : (k+1)*row]
		z[k] = t.Dot(wk[:row-1]) + wk[row-1]
	}
	return z
}

// softmaxProbs exponentiates the logits in place into probabilities, stably.
func softmaxProbs(z []float64) {
	max := z[0]
	for _, v := range z[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range z {
		z[i] = math.Exp(v - max)
		sum += z[i]
	}
	for i := range z {
		z[i] /= sum
	}
}

// Loss implements Model: −log p_y.
func (s Softmax) Loss(w []float64, t *data.Tuple) float64 {
	var ws Workspace
	z := s.logits(&ws, w, t)
	softmaxProbs(z)
	p := z[classIndex(t.Label, s.Classes)]
	if p < 1e-300 {
		p = 1e-300
	}
	return -math.Log(p)
}

// Grad implements Model. The gradient row for class k is (p_k − 1{k=y})·x.
func (s Softmax) Grad(w []float64, t *data.Tuple, gi []int32, gv []float64) (float64, []int32, []float64) {
	var ws Workspace
	return s.GradWS(&ws, w, t, gi, gv)
}

// GradWS implements WorkspaceGrader: Grad with the logit buffer in ws, so
// steady-state calls are allocation-free.
func (s Softmax) GradWS(ws *Workspace, w []float64, t *data.Tuple, gi []int32, gv []float64) (float64, []int32, []float64) {
	z := s.logits(ws, w, t)
	softmaxProbs(z)
	y := classIndex(t.Label, s.Classes)
	p := z[y]
	if p < 1e-300 {
		p = 1e-300
	}
	loss := -math.Log(p)
	row := len(w) / s.Classes
	for k := 0; k < s.Classes; k++ {
		sk := z[k]
		if k == y {
			sk -= 1
		}
		if sk == 0 {
			continue
		}
		base := int32(k * row)
		if t.IsSparse() {
			for i, idx := range t.SparseIdx {
				gi = append(gi, base+idx)
				gv = append(gv, sk*t.SparseVal[i])
			}
		} else {
			for i, v := range t.Dense {
				if v == 0 {
					continue
				}
				gi = append(gi, base+int32(i))
				gv = append(gv, sk*v)
			}
		}
		gi = append(gi, base+int32(row-1)) // bias
		gv = append(gv, sk)
	}
	return loss, gi, gv
}

// Predict implements Model, returning the argmax class index.
func (s Softmax) Predict(w []float64, t *data.Tuple) float64 {
	var ws Workspace
	z := s.logits(&ws, w, t)
	best, bestV := 0, z[0]
	for k, v := range z[1:] {
		if v > bestV {
			best, bestV = k+1, v
		}
	}
	return float64(best)
}
