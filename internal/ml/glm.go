package ml

import (
	"math"

	"corgipile/internal/data"
)

// Generalized linear models share the shape loss(⟨w,x⟩ + b, y) with gradient
// s·x on the weight coordinates and s on the bias, where s = ∂loss/∂margin.
// The bias lives at index features (== len(w)-1).

// margin computes ⟨w,x⟩ + b with the bias stored in the last weight slot.
func margin(w []float64, t *data.Tuple) float64 {
	return t.Dot(w[:len(w)-1]) + w[len(w)-1]
}

// appendScaledFeatures appends s·x (plus the bias entry s) to the sparse
// gradient accumulator.
func appendScaledFeatures(gi []int32, gv []float64, t *data.Tuple, s float64, biasIdx int32) ([]int32, []float64) {
	if s == 0 {
		return gi, gv
	}
	if t.IsSparse() {
		for i, idx := range t.SparseIdx {
			gi = append(gi, idx)
			gv = append(gv, s*t.SparseVal[i])
		}
	} else {
		for i, v := range t.Dense {
			if v == 0 {
				continue
			}
			gi = append(gi, int32(i))
			gv = append(gv, s*v)
		}
	}
	gi = append(gi, biasIdx)
	gv = append(gv, s)
	return gi, gv
}

// LogisticRegression is binary logistic regression on ±1 labels with
// log-loss log(1 + exp(−y·margin)).
type LogisticRegression struct{}

// Name implements Model.
func (LogisticRegression) Name() string { return "lr" }

// Dim implements Model; one slot per feature plus a bias.
func (LogisticRegression) Dim(features int) int { return features + 1 }

// Loss implements Model.
func (LogisticRegression) Loss(w []float64, t *data.Tuple) float64 {
	return logLoss(t.Label * margin(w, t))
}

// Grad implements Model.
func (m LogisticRegression) Grad(w []float64, t *data.Tuple, gi []int32, gv []float64) (float64, []int32, []float64) {
	ym := t.Label * margin(w, t)
	loss := logLoss(ym)
	// d/dmargin log(1+exp(-y·m)) = -y·σ(-y·m)
	s := -t.Label * sigmoid(-ym)
	gi, gv = appendScaledFeatures(gi, gv, t, s, int32(len(w)-1))
	return loss, gi, gv
}

// GradWS implements WorkspaceGrader; GLM gradients need no scratch, so this
// is Grad.
func (m LogisticRegression) GradWS(_ *Workspace, w []float64, t *data.Tuple, gi []int32, gv []float64) (float64, []int32, []float64) {
	return m.Grad(w, t, gi, gv)
}

// Predict implements Model, returning ±1.
func (LogisticRegression) Predict(w []float64, t *data.Tuple) float64 {
	if margin(w, t) >= 0 {
		return 1
	}
	return -1
}

// SVM is a linear support vector machine on ±1 labels with hinge loss
// max(0, 1 − y·margin).
type SVM struct{}

// Name implements Model.
func (SVM) Name() string { return "svm" }

// Dim implements Model.
func (SVM) Dim(features int) int { return features + 1 }

// Loss implements Model.
func (SVM) Loss(w []float64, t *data.Tuple) float64 {
	l := 1 - t.Label*margin(w, t)
	if l < 0 {
		return 0
	}
	return l
}

// Grad implements Model.
func (m SVM) Grad(w []float64, t *data.Tuple, gi []int32, gv []float64) (float64, []int32, []float64) {
	l := 1 - t.Label*margin(w, t)
	if l <= 0 {
		return 0, gi, gv
	}
	gi, gv = appendScaledFeatures(gi, gv, t, -t.Label, int32(len(w)-1))
	return l, gi, gv
}

// GradWS implements WorkspaceGrader; GLM gradients need no scratch, so this
// is Grad.
func (m SVM) GradWS(_ *Workspace, w []float64, t *data.Tuple, gi []int32, gv []float64) (float64, []int32, []float64) {
	return m.Grad(w, t, gi, gv)
}

// Predict implements Model, returning ±1.
func (SVM) Predict(w []float64, t *data.Tuple) float64 {
	if margin(w, t) >= 0 {
		return 1
	}
	return -1
}

// LinearRegression is least-squares regression with loss ½(margin − y)².
type LinearRegression struct{}

// Name implements Model.
func (LinearRegression) Name() string { return "linreg" }

// Dim implements Model.
func (LinearRegression) Dim(features int) int { return features + 1 }

// Loss implements Model.
func (LinearRegression) Loss(w []float64, t *data.Tuple) float64 {
	r := margin(w, t) - t.Label
	return 0.5 * r * r
}

// Grad implements Model.
func (m LinearRegression) Grad(w []float64, t *data.Tuple, gi []int32, gv []float64) (float64, []int32, []float64) {
	r := margin(w, t) - t.Label
	gi, gv = appendScaledFeatures(gi, gv, t, r, int32(len(w)-1))
	return 0.5 * r * r, gi, gv
}

// GradWS implements WorkspaceGrader; GLM gradients need no scratch, so this
// is Grad.
func (m LinearRegression) GradWS(_ *Workspace, w []float64, t *data.Tuple, gi []int32, gv []float64) (float64, []int32, []float64) {
	return m.Grad(w, t, gi, gv)
}

// Predict implements Model, returning the regression value.
func (LinearRegression) Predict(w []float64, t *data.Tuple) float64 {
	return margin(w, t)
}

// sigmoid is the logistic function 1/(1+e^−z), computed stably.
func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// logLoss computes log(1+exp(−z)) stably.
func logLoss(z float64) float64 {
	if z > 30 {
		return math.Exp(-z)
	}
	if z < -30 {
		return -z
	}
	return math.Log1p(math.Exp(-z))
}
