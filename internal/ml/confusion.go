package ml

import (
	"fmt"
	"strings"

	"corgipile/internal/data"
)

// Confusion is a K×K confusion matrix: Counts[actual][predicted].
type Confusion struct {
	// Classes is the number of classes K.
	Classes int
	// Counts[a][p] counts tuples of actual class a predicted as p.
	Counts [][]int
}

// NewConfusion returns an empty K-class matrix.
func NewConfusion(classes int) *Confusion {
	if classes < 2 {
		classes = 2
	}
	c := &Confusion{Classes: classes, Counts: make([][]int, classes)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, classes)
	}
	return c
}

// Add records one observation.
func (c *Confusion) Add(actual, predicted int) {
	if actual < 0 || actual >= c.Classes || predicted < 0 || predicted >= c.Classes {
		return
	}
	c.Counts[actual][predicted]++
}

// Total returns the number of recorded observations.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Accuracy returns the trace fraction.
func (c *Confusion) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	correct := 0
	for i := range c.Counts {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(total)
}

// Precision returns TP/(TP+FP) for class k (0 when the class is never
// predicted).
func (c *Confusion) Precision(k int) float64 {
	var predicted int
	for a := 0; a < c.Classes; a++ {
		predicted += c.Counts[a][k]
	}
	if predicted == 0 {
		return 0
	}
	return float64(c.Counts[k][k]) / float64(predicted)
}

// Recall returns TP/(TP+FN) for class k (0 when the class never occurs).
func (c *Confusion) Recall(k int) float64 {
	var actual int
	for p := 0; p < c.Classes; p++ {
		actual += c.Counts[k][p]
	}
	if actual == 0 {
		return 0
	}
	return float64(c.Counts[k][k]) / float64(actual)
}

// F1 returns the harmonic mean of precision and recall for class k.
func (c *Confusion) F1(k int) float64 {
	p, r := c.Precision(k), c.Recall(k)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroF1 averages F1 over all classes.
func (c *Confusion) MacroF1() float64 {
	var sum float64
	for k := 0; k < c.Classes; k++ {
		sum += c.F1(k)
	}
	return sum / float64(c.Classes)
}

// String renders the matrix compactly.
func (c *Confusion) String() string {
	var b strings.Builder
	for a := range c.Counts {
		if a > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%d:%v", a, c.Counts[a])
	}
	return b.String()
}

// Confuse evaluates the model over ds and returns the confusion matrix.
// Binary ±1 labels map to classes {0, 1}.
func Confuse(m Model, w []float64, ds *data.Dataset) *Confusion {
	classes := ds.Classes
	if classes < 2 {
		classes = 2
	}
	c := NewConfusion(classes)
	for i := range ds.Tuples {
		t := &ds.Tuples[i]
		actual := classIndex(t.Label, classes)
		pred := classIndex(m.Predict(w, t), classes)
		c.Add(actual, pred)
	}
	return c
}
