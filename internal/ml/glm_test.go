package ml

import (
	"math"
	"testing"

	"corgipile/internal/data"
)

// numericGrad computes a central-difference gradient of m.Loss for
// comparison with m.Grad.
func numericGrad(m Model, w []float64, t *data.Tuple) []float64 {
	const h = 1e-6
	g := make([]float64, len(w))
	for i := range w {
		orig := w[i]
		w[i] = orig + h
		up := m.Loss(w, t)
		w[i] = orig - h
		down := m.Loss(w, t)
		w[i] = orig
		g[i] = (up - down) / (2 * h)
	}
	return g
}

// denseGrad materializes the sparse gradient of m.Grad as a dense vector.
func denseGrad(m Model, w []float64, t *data.Tuple) (float64, []float64) {
	loss, gi, gv := m.Grad(w, t, nil, nil)
	g := make([]float64, len(w))
	for i, idx := range gi {
		g[idx] += gv[i]
	}
	return loss, g
}

func checkGradient(t *testing.T, m Model, w []float64, tp *data.Tuple, tol float64) {
	t.Helper()
	loss, got := denseGrad(m, w, tp)
	if wantLoss := m.Loss(w, tp); math.Abs(loss-wantLoss) > 1e-9*(1+math.Abs(wantLoss)) {
		t.Fatalf("%s: Grad loss %v != Loss %v", m.Name(), loss, wantLoss)
	}
	want := numericGrad(m, w, tp)
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol*(1+math.Abs(want[i])) {
			t.Fatalf("%s: grad[%d] = %v, numeric %v", m.Name(), i, got[i], want[i])
		}
	}
}

func TestLogisticGradientMatchesNumeric(t *testing.T) {
	m := LogisticRegression{}
	w := []float64{0.3, -0.5, 0.2, 0.1}
	for _, label := range []float64{-1, 1} {
		tp := &data.Tuple{Label: label, Dense: []float64{1.5, -2, 0.5}}
		checkGradient(t, m, w, tp, 1e-5)
	}
}

func TestLogisticGradientSparse(t *testing.T) {
	m := LogisticRegression{}
	w := []float64{0.3, -0.5, 0.2, 0.7, 0.1}
	tp := &data.Tuple{Label: 1, SparseIdx: []int32{0, 3}, SparseVal: []float64{2, -1}}
	checkGradient(t, m, w, tp, 1e-5)
}

func TestSVMGradientMatchesNumeric(t *testing.T) {
	m := SVM{}
	// Pick weights away from the hinge kink.
	w := []float64{0.1, 0.1, 0}
	tp := &data.Tuple{Label: 1, Dense: []float64{0.5, 0.5}} // margin ≈ 0.1 < 1: active
	checkGradient(t, m, w, tp, 1e-5)
	tp2 := &data.Tuple{Label: 1, Dense: []float64{20, 20}} // margin = 4 > 1: inactive
	loss, g := denseGrad(m, w, tp2)
	if loss != 0 {
		t.Fatalf("inactive hinge loss = %v, want 0", loss)
	}
	for i, v := range g {
		if v != 0 {
			t.Fatalf("inactive hinge grad[%d] = %v, want 0", i, v)
		}
	}
}

func TestLinearRegressionGradientMatchesNumeric(t *testing.T) {
	m := LinearRegression{}
	w := []float64{0.5, -0.25, 0.75}
	tp := &data.Tuple{Label: 3.5, Dense: []float64{1, 2}}
	checkGradient(t, m, w, tp, 1e-5)
}

func TestSoftmaxGradientMatchesNumeric(t *testing.T) {
	m := Softmax{Classes: 3}
	w := make([]float64, m.Dim(4))
	for i := range w {
		w[i] = math.Sin(float64(i)) * 0.3
	}
	for label := 0.0; label < 3; label++ {
		tp := &data.Tuple{Label: label, Dense: []float64{1, -0.5, 2, 0.25}}
		checkGradient(t, m, w, tp, 1e-4)
	}
}

func TestSoftmaxGradientSparse(t *testing.T) {
	m := Softmax{Classes: 4}
	w := make([]float64, m.Dim(10))
	for i := range w {
		w[i] = math.Cos(float64(i)) * 0.2
	}
	tp := &data.Tuple{Label: 2, SparseIdx: []int32{1, 7}, SparseVal: []float64{1.5, -2}}
	checkGradient(t, m, w, tp, 1e-4)
}

func TestMLPGradientMatchesNumeric(t *testing.T) {
	m := MLP{Classes: 3, Hidden: 4}
	w := make([]float64, m.Dim(5))
	for i := range w {
		w[i] = math.Sin(float64(i)*1.7) * 0.4
	}
	tp := &data.Tuple{Label: 1, Dense: []float64{0.5, -1, 0.25, 2, -0.5}}
	checkGradient(t, m, w, tp, 1e-4)
}

func TestMLPGradientSparseInput(t *testing.T) {
	m := MLP{Classes: 2, Hidden: 3}
	w := make([]float64, m.Dim(8))
	for i := range w {
		w[i] = math.Cos(float64(i)*0.9) * 0.3
	}
	tp := &data.Tuple{Label: 1, SparseIdx: []int32{2, 6}, SparseVal: []float64{1, -1.5}}
	checkGradient(t, m, w, tp, 1e-4)
}

func TestPredictSigns(t *testing.T) {
	w := []float64{1, 0, 0} // margin = x0
	pos := &data.Tuple{Dense: []float64{2, 0}}
	neg := &data.Tuple{Dense: []float64{-2, 0}}
	for _, m := range []Model{LogisticRegression{}, SVM{}} {
		if m.Predict(w, pos) != 1 || m.Predict(w, neg) != -1 {
			t.Fatalf("%s: wrong prediction signs", m.Name())
		}
	}
	if got := (LinearRegression{}).Predict(w, pos); got != 2 {
		t.Fatalf("linreg predict = %v, want 2", got)
	}
}

func TestSoftmaxPredictArgmax(t *testing.T) {
	m := Softmax{Classes: 3}
	w := make([]float64, m.Dim(2))
	// Make class 2 dominate via its bias.
	w[2*(2+1)+2] = 10
	tp := &data.Tuple{Dense: []float64{0, 0}}
	if got := m.Predict(w, tp); got != 2 {
		t.Fatalf("softmax predict = %v, want 2", got)
	}
}

func TestDimValues(t *testing.T) {
	if (LogisticRegression{}).Dim(28) != 29 || (SVM{}).Dim(18) != 19 || (LinearRegression{}).Dim(90) != 91 {
		t.Fatal("GLM Dim must be features+1")
	}
	if (Softmax{Classes: 10}).Dim(784) != 10*785 {
		t.Fatal("softmax Dim wrong")
	}
	m := MLP{Classes: 10, Hidden: 32}
	if m.Dim(64) != 32*65+10*33 {
		t.Fatal("mlp Dim wrong")
	}
}

func TestSigmoidStability(t *testing.T) {
	if s := sigmoid(1000); s != 1 {
		t.Fatalf("sigmoid(1000) = %v", s)
	}
	if s := sigmoid(-1000); s != 0 {
		t.Fatalf("sigmoid(-1000) = %v", s)
	}
	if s := sigmoid(0); s != 0.5 {
		t.Fatalf("sigmoid(0) = %v", s)
	}
}

func TestLogLossStability(t *testing.T) {
	for _, z := range []float64{-1000, -30, 0, 30, 1000} {
		l := logLoss(z)
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("logLoss(%v) = %v", z, l)
		}
	}
	if math.Abs(logLoss(0)-math.Log(2)) > 1e-12 {
		t.Fatal("logLoss(0) should be ln 2")
	}
}

func TestNewModel(t *testing.T) {
	for _, name := range []string{"lr", "svm", "linreg", "softmax", "mlp"} {
		m, err := New(name, 3)
		if err != nil || m == nil {
			t.Fatalf("New(%q) failed: %v", name, err)
		}
	}
	if _, err := New("resnet50", 2); err == nil {
		t.Fatal("unknown model must error")
	}
	if _, err := New("softmax", 1); err == nil {
		t.Fatal("softmax with 1 class must error")
	}
}

func TestGradCostMonotone(t *testing.T) {
	if GradCost(10) >= GradCost(1000) {
		t.Fatal("GradCost must grow with nnz")
	}
	if GradCost(0) <= 0 {
		t.Fatal("GradCost must have a positive base cost")
	}
}
