package ml

import (
	"math"
	"math/rand"

	"corgipile/internal/data"
)

// MLP is a one-hidden-layer perceptron with ReLU activation and a softmax
// output — the non-convex stand-in for the paper's deep models (VGG,
// ResNet, TextCNN). It exercises the non-convex case of Theorem 2: on
// clustered data without shuffling it fails to learn, while CorgiPile
// recovers Shuffle-Once accuracy.
//
// Weight layout: W1 is Hidden rows of (features+1) values (bias last),
// followed by W2, Classes rows of (Hidden+1) values.
type MLP struct {
	// Classes is the number of output classes.
	Classes int
	// Hidden is the hidden-layer width.
	Hidden int
}

// Name implements Model.
func (MLP) Name() string { return "mlp" }

// Dim implements Model.
func (m MLP) Dim(features int) int {
	return m.Hidden*(features+1) + m.Classes*(m.Hidden+1)
}

// InitWeights fills w with the scaled Gaussian initialization MLPs need
// (zero initialization would leave all hidden units identical). Other
// models in this package train fine from zero weights.
func (m MLP) InitWeights(w []float64, features int, rng *rand.Rand) {
	in1 := features + 1
	scale1 := math.Sqrt(2 / float64(features+1))
	for i := 0; i < m.Hidden*in1; i++ {
		w[i] = rng.NormFloat64() * scale1
	}
	scale2 := math.Sqrt(2 / float64(m.Hidden+1))
	for i := m.Hidden * in1; i < len(w); i++ {
		w[i] = rng.NormFloat64() * scale2
	}
}

// forward computes hidden activations h (post-ReLU) and output
// probabilities p into the workspace's scratch buffers.
func (m MLP) forward(ws *Workspace, w []float64, t *data.Tuple) (h, p []float64, features int) {
	features = (len(w)-m.Classes*(m.Hidden+1))/m.Hidden - 1
	in1 := features + 1
	h = f64(&ws.h, m.Hidden)
	for j := 0; j < m.Hidden; j++ {
		wj := w[j*in1 : (j+1)*in1]
		z := t.Dot(wj[:features]) + wj[features]
		if z > 0 {
			h[j] = z
		} else {
			h[j] = 0
		}
	}
	off := m.Hidden * in1
	in2 := m.Hidden + 1
	p = f64(&ws.p, m.Classes)
	for k := 0; k < m.Classes; k++ {
		wk := w[off+k*in2 : off+(k+1)*in2]
		z := wk[m.Hidden] // bias
		for j := 0; j < m.Hidden; j++ {
			z += wk[j] * h[j]
		}
		p[k] = z
	}
	softmaxProbs(p)
	return h, p, features
}

// Loss implements Model.
func (m MLP) Loss(w []float64, t *data.Tuple) float64 {
	var ws Workspace
	_, p, _ := m.forward(&ws, w, t)
	py := p[classIndex(t.Label, m.Classes)]
	if py < 1e-300 {
		py = 1e-300
	}
	return -math.Log(py)
}

// Grad implements Model via backpropagation, allocating fresh scratch per
// call; the hot path uses GradWS with a reusable Workspace instead.
func (m MLP) Grad(w []float64, t *data.Tuple, gi []int32, gv []float64) (float64, []int32, []float64) {
	var ws Workspace
	return m.GradWS(&ws, w, t, gi, gv)
}

// GradWS implements WorkspaceGrader: backpropagation with all temporaries
// (hidden activations, probabilities, backprop deltas) in ws, so steady-state
// calls are allocation-free. MLP gradients are dense over both layers
// (sparse inputs still yield sparse first-layer rows).
func (m MLP) GradWS(ws *Workspace, w []float64, t *data.Tuple, gi []int32, gv []float64) (float64, []int32, []float64) {
	h, p, features := m.forward(ws, w, t)
	y := classIndex(t.Label, m.Classes)
	py := p[y]
	if py < 1e-300 {
		py = 1e-300
	}
	loss := -math.Log(py)

	in1 := features + 1
	off := m.Hidden * in1
	in2 := m.Hidden + 1

	// Output layer: dL/dz2_k = p_k − 1{k=y}.
	dh := f64(&ws.dh, m.Hidden)
	for j := range dh {
		dh[j] = 0
	}
	for k := 0; k < m.Classes; k++ {
		dk := p[k]
		if k == y {
			dk -= 1
		}
		if dk == 0 {
			continue
		}
		base := int32(off + k*in2)
		wk := w[off+k*in2 : off+(k+1)*in2]
		for j := 0; j < m.Hidden; j++ {
			if h[j] != 0 {
				gi = append(gi, base+int32(j))
				gv = append(gv, dk*h[j])
			}
			dh[j] += dk * wk[j]
		}
		gi = append(gi, base+int32(m.Hidden))
		gv = append(gv, dk)
	}

	// Hidden layer: ReLU gate (h[j] > 0), dL/dz1_j = dh[j].
	for j := 0; j < m.Hidden; j++ {
		if h[j] <= 0 || dh[j] == 0 {
			continue
		}
		base := int32(j * in1)
		if t.IsSparse() {
			for i, idx := range t.SparseIdx {
				gi = append(gi, base+idx)
				gv = append(gv, dh[j]*t.SparseVal[i])
			}
		} else {
			for i, v := range t.Dense {
				if v == 0 {
					continue
				}
				gi = append(gi, base+int32(i))
				gv = append(gv, dh[j]*v)
			}
		}
		gi = append(gi, base+int32(features))
		gv = append(gv, dh[j])
	}
	return loss, gi, gv
}

// Predict implements Model, returning the argmax class index.
func (m MLP) Predict(w []float64, t *data.Tuple) float64 {
	var ws Workspace
	_, p, _ := m.forward(&ws, w, t)
	best, bestV := 0, p[0]
	for k, v := range p[1:] {
		if v > bestV {
			best, bestV = k+1, v
		}
	}
	return float64(best)
}
