package ml

import (
	"corgipile/internal/data"
)

// FactorizationMachine is a rank-K factorization machine for binary
// classification with logistic loss — the factorized pairwise-interaction
// model the in-DB ML literature the paper builds on also targets
// (Rendle 2013). The decision value is
//
//	ŷ(x) = b + Σᵢ wᵢxᵢ + ½ Σ_f [(Σᵢ v_{i,f} xᵢ)² − Σᵢ v_{i,f}² xᵢ²]
//
// computed in O(nnz·K) via the precomputed-sums identity.
//
// Weight layout: linear weights w (features), bias (1 slot), then V as
// features rows of K factors: v_{i,f} at features+1 + i*K + f.
type FactorizationMachine struct {
	// Factors is the interaction rank K.
	Factors int
}

// Name implements Model.
func (FactorizationMachine) Name() string { return "fm" }

// Dim implements Model.
func (m FactorizationMachine) Dim(features int) int {
	return features + 1 + features*m.k()
}

func (m FactorizationMachine) k() int {
	if m.Factors <= 0 {
		return 8
	}
	return m.Factors
}

// features recovers the feature count from the weight length.
func (m FactorizationMachine) features(w []float64) int {
	return (len(w) - 1) / (1 + m.k())
}

// score computes the FM decision value, plus the per-factor sums needed by
// the gradient (returned to avoid recomputation). The sums live in the
// workspace's scratch buffer.
func (m FactorizationMachine) scoreSums(ws *Workspace, w []float64, t *data.Tuple) (y float64, sums []float64) {
	k := m.k()
	d := m.features(w)
	y = w[d] // bias
	vBase := d + 1

	eachNZ := func(fn func(idx int, x float64)) {
		if t.IsSparse() {
			for i, ix := range t.SparseIdx {
				if int(ix) < d {
					fn(int(ix), t.SparseVal[i])
				}
			}
			return
		}
		for i, x := range t.Dense {
			if i >= d {
				break
			}
			if x != 0 {
				fn(i, x)
			}
		}
	}

	eachNZ(func(idx int, x float64) { y += w[idx] * x })
	sums = f64(&ws.dh, k)
	for f := range sums {
		sums[f] = 0
	}
	var sumSq float64
	eachNZ(func(idx int, x float64) {
		row := w[vBase+idx*k : vBase+(idx+1)*k]
		for f := 0; f < k; f++ {
			vx := row[f] * x
			sums[f] += vx
			sumSq += vx * vx
		}
	})
	var inter float64
	for f := 0; f < k; f++ {
		inter += sums[f] * sums[f]
	}
	y += 0.5 * (inter - sumSq)
	return y, sums
}

// score returns the decision value only.
func (m FactorizationMachine) score(w []float64, t *data.Tuple) float64 {
	var ws Workspace
	y, _ := m.scoreSums(&ws, w, t)
	return y
}

// Loss implements Model (logistic loss on ±1 labels).
func (m FactorizationMachine) Loss(w []float64, t *data.Tuple) float64 {
	return logLoss(t.Label * m.score(w, t))
}

// Grad implements Model.
func (m FactorizationMachine) Grad(w []float64, t *data.Tuple, gi []int32, gv []float64) (float64, []int32, []float64) {
	var ws Workspace
	return m.GradWS(&ws, w, t, gi, gv)
}

// GradWS implements WorkspaceGrader: Grad with the per-factor sum buffer in
// ws, so steady-state calls are allocation-free.
func (m FactorizationMachine) GradWS(ws *Workspace, w []float64, t *data.Tuple, gi []int32, gv []float64) (float64, []int32, []float64) {
	y, sums := m.scoreSums(ws, w, t)
	ym := t.Label * y
	loss := logLoss(ym)
	s := -t.Label * sigmoid(-ym) // dloss/dy
	if s == 0 {
		return loss, gi, gv
	}
	k := m.k()
	d := m.features(w)
	vBase := d + 1

	emit := func(idx int, x float64) {
		// Linear part.
		gi = append(gi, int32(idx))
		gv = append(gv, s*x)
		// Interaction part: ∂y/∂v_{i,f} = x·sums[f] − v_{i,f}·x².
		row := w[vBase+idx*k : vBase+(idx+1)*k]
		for f := 0; f < k; f++ {
			gi = append(gi, int32(vBase+idx*k+f))
			gv = append(gv, s*(x*sums[f]-row[f]*x*x))
		}
	}
	if t.IsSparse() {
		for i, ix := range t.SparseIdx {
			if int(ix) < d {
				emit(int(ix), t.SparseVal[i])
			}
		}
	} else {
		for i, x := range t.Dense {
			if i >= d {
				break
			}
			if x != 0 {
				emit(i, x)
			}
		}
	}
	// Bias.
	gi = append(gi, int32(d))
	gv = append(gv, s)
	return loss, gi, gv
}

// Predict implements Model, returning ±1.
func (m FactorizationMachine) Predict(w []float64, t *data.Tuple) float64 {
	if m.score(w, t) >= 0 {
		return 1
	}
	return -1
}

// InitWeights gives the factor matrix the small random initialization FMs
// need (zero factors have zero interaction gradient).
func (m FactorizationMachine) InitWeights(w []float64, features int, scale float64, rng interface{ NormFloat64() float64 }) {
	if scale == 0 {
		scale = 0.01
	}
	for i := features + 1; i < len(w); i++ {
		w[i] = rng.NormFloat64() * scale
	}
}
