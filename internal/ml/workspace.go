package ml

import "corgipile/internal/data"

// Workspace holds per-goroutine scratch buffers for gradient evaluation, so
// the innermost loop of training — one Grad call per tuple — performs no
// heap allocation. Each concurrent gradient consumer (the Trainer, every
// BatchEngine shard, every dist worker) owns one Workspace; a Workspace must
// not be shared between goroutines.
//
// The zero value is ready to use: buffers grow on first use and are reused
// afterwards.
type Workspace struct {
	// h, p, dh are the MLP's hidden activations, output probabilities, and
	// hidden-layer backprop temporaries; p doubles as the Softmax logit
	// buffer and dh as the FM per-factor sum buffer.
	h, p, dh []float64

	// batch and the slices below belong to the Trainer's mini-batch gather
	// path: batch holds shallow tuple copies for the current mini-batch
	// (feature storage is owned by the dataset or the storage codec and is
	// stable, so value copies suffice — the same contract internal/dist
	// relies on).
	batch []data.Tuple
}

// f64 returns a scratch slice of length n backed by *buf, growing *buf's
// capacity when needed. Contents are unspecified; callers that need zeros
// must write them.
func f64(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// WorkspaceGrader is implemented by models whose gradient can be evaluated
// allocation-free given Workspace scratch. All models in this package
// implement it; the GradWS helper falls back to Model.Grad for external
// models that do not.
type WorkspaceGrader interface {
	// GradWS is Model.Grad with caller-owned scratch: it must not allocate
	// beyond growing ws's buffers and the gi/gv accumulators.
	GradWS(ws *Workspace, w []float64, t *data.Tuple, gi []int32, gv []float64) (float64, []int32, []float64)
}

// GradWS evaluates m's example loss and gradient using ws as scratch when m
// supports it, falling back to Model.Grad otherwise — the compatibility shim
// that lets the allocation-free trainer run any Model.
func GradWS(m Model, ws *Workspace, w []float64, t *data.Tuple, gi []int32, gv []float64) (float64, []int32, []float64) {
	if g, ok := m.(WorkspaceGrader); ok {
		return g.GradWS(ws, w, t, gi, gv)
	}
	return m.Grad(w, t, gi, gv)
}
