package ml

import (
	"math"
	"runtime"

	"corgipile/internal/data"
	"corgipile/internal/obs"
)

// Stream yields training tuples one at a time; ok=false ends the epoch.
// Strategies in internal/shuffle and operators in internal/executor produce
// Streams.
type Stream func() (t *data.Tuple, ok bool)

// SliceStream returns a Stream over the tuples of ds in storage order.
func SliceStream(ds *data.Dataset) Stream {
	i := 0
	return func() (*data.Tuple, bool) {
		if i >= ds.Len() {
			return nil, false
		}
		t := ds.At(i)
		i++
		return t, true
	}
}

// EpochStats summarizes one training epoch.
type EpochStats struct {
	// Tuples is the number of examples consumed.
	Tuples int
	// AvgLoss is the mean per-example loss observed while training (i.e.
	// evaluated at the then-current weights, the usual streaming metric).
	AvgLoss float64
	// Steps is the number of optimizer steps taken.
	Steps int
	// GradSqSum is the sum over optimizer steps of the squared L2 norm of
	// the step's (batch-averaged) gradient. Populated only when the
	// trainer's TrackGradNorm is set; sqrt(GradSqSum/Steps) is the RMS
	// per-step gradient norm the convergence diagnostics report.
	GradSqSum float64
}

// GradNorm returns the RMS per-step gradient norm (0 without tracking).
func (s EpochStats) GradNorm() float64 {
	if s.Steps == 0 {
		return 0
	}
	return math.Sqrt(s.GradSqSum / float64(s.Steps))
}

// Trainer runs SGD-style epochs of a Model with an Optimizer. It owns the
// scratch state (a Workspace, a GradAccumulator, and — for parallel
// mini-batches — a BatchEngine) that makes per-tuple updates allocation-free
// and deduplicates repeated gradient indices within a mini-batch so that
// Adam's per-coordinate state is touched once per batch.
type Trainer struct {
	Model Model
	Opt   Optimizer
	// BatchSize is the mini-batch size; 0 or 1 gives per-tuple updates
	// (the paper's "standard SGD").
	BatchSize int
	// Procs is the number of gradient worker goroutines used for mini-batch
	// steps (BatchSize > 1): 1 is single-threaded, 0 selects GOMAXPROCS.
	// The loss trace and weight trajectory are bit-for-bit identical at
	// every Procs setting (see BatchEngine). Per-tuple SGD ignores it.
	Procs int
	// OnTuple, when non-nil, is invoked for every consumed tuple — the hook
	// the benchmark harness uses to charge simulated gradient-compute time.
	OnTuple func(t *data.Tuple)
	// Obs, when non-nil, counts consumed tuples and optimizer steps under
	// the obs.SGD* metric names and records the epoch's mean loss gauge.
	Obs *obs.Registry
	// TrackGradNorm enables per-step gradient-norm accumulation
	// (EpochStats.GradSqSum) for the convergence diagnostics. Tracking is
	// read-only — it never perturbs the update sequence, so the loss trace
	// and weight trajectory are bit-for-bit identical either way.
	TrackGradNorm bool

	ws Workspace
	gi []int32
	gv []float64

	acc    GradAccumulator
	engine *BatchEngine
}

// NewTrainer returns a trainer for the model/optimizer pair.
func NewTrainer(m Model, opt Optimizer, batchSize int) *Trainer {
	return &Trainer{Model: m, Opt: opt, BatchSize: batchSize}
}

// Close releases the trainer's worker pool, if one was started. The trainer
// must not run further epochs afterwards.
func (tr *Trainer) Close() {
	if tr.engine != nil {
		tr.engine.Close()
		tr.engine = nil
	}
}

// RunEpoch consumes the stream, applying updates to w, and returns epoch
// statistics. With BatchSize > 1 the gradients of each batch are averaged
// before a single optimizer step, matching mini-batch SGD; a final partial
// batch is still applied. Batch gradients are computed by the trainer's
// BatchEngine across Procs workers.
func (tr *Trainer) RunEpoch(w []float64, next Stream) EpochStats {
	batch := tr.BatchSize
	if batch < 1 {
		batch = 1
	}

	var stats EpochStats
	var lossSum float64

	if batch == 1 {
		// Per-tuple SGD: allocation-free via the workspace path.
		for {
			t, ok := next()
			if !ok {
				break
			}
			if tr.OnTuple != nil {
				tr.OnTuple(t)
			}
			stats.Tuples++
			tr.gi = tr.gi[:0]
			tr.gv = tr.gv[:0]
			var loss float64
			loss, tr.gi, tr.gv = GradWS(tr.Model, &tr.ws, w, t, tr.gi, tr.gv)
			lossSum += loss
			if tr.TrackGradNorm {
				stats.GradSqSum += sqNorm(tr.gv)
			}
			tr.Opt.Step(w, tr.gi, tr.gv)
			stats.Steps++
			tr.Obs.Inc(obs.SGDBatches)
		}
	} else {
		// Mini-batch SGD: gather shallow tuple copies (feature storage is
		// dataset-owned and stable), then one engine step per full batch.
		tr.acc.Reset(len(w))
		if tr.engine == nil || tr.engine.Procs() != tr.procs() {
			if tr.engine != nil {
				tr.engine.Close()
			}
			tr.engine = NewBatchEngine(tr.Model, tr.procs())
		}
		buf := tr.ws.batch[:0]
		flush := func() {
			if len(buf) == 0 {
				return
			}
			count := tr.engine.Accumulate(w, buf, &tr.acc, &lossSum)
			if tr.TrackGradNorm && count > 0 {
				// Gather is repeatable until Clear, so peeking at the
				// averaged batch gradient does not disturb the step below.
				_, gv := tr.acc.Gather(1 / float64(count))
				stats.GradSqSum += sqNorm(gv)
			}
			tr.acc.Step(tr.Opt, w, count)
			stats.Steps++
			tr.Obs.Inc(obs.SGDBatches)
			buf = buf[:0]
		}
		for {
			t, ok := next()
			if !ok {
				break
			}
			if tr.OnTuple != nil {
				tr.OnTuple(t)
			}
			stats.Tuples++
			buf = append(buf, *t)
			if len(buf) >= batch {
				flush()
			}
		}
		flush()
		tr.ws.batch = buf[:0]
	}
	tr.Opt.EndEpoch()

	if stats.Tuples > 0 {
		stats.AvgLoss = lossSum / float64(stats.Tuples)
	}
	if tr.Obs != nil {
		tr.Obs.Add(obs.SGDTuples, int64(stats.Tuples))
		tr.Obs.SetGauge(obs.SGDLoss, stats.AvgLoss)
	}
	return stats
}

// sqNorm returns the squared L2 norm of a gradient value slice.
func sqNorm(gv []float64) float64 {
	var s float64
	for _, v := range gv {
		s += v * v
	}
	return s
}

// procs resolves the Procs setting: 0 means GOMAXPROCS, negative means 1.
func (tr *Trainer) procs() int {
	switch {
	case tr.Procs == 0:
		return runtime.GOMAXPROCS(0)
	case tr.Procs < 0:
		return 1
	}
	return tr.Procs
}
