package ml

import (
	"corgipile/internal/data"
	"corgipile/internal/obs"
)

// Stream yields training tuples one at a time; ok=false ends the epoch.
// Strategies in internal/shuffle and operators in internal/executor produce
// Streams.
type Stream func() (t *data.Tuple, ok bool)

// SliceStream returns a Stream over the tuples of ds in storage order.
func SliceStream(ds *data.Dataset) Stream {
	i := 0
	return func() (*data.Tuple, bool) {
		if i >= ds.Len() {
			return nil, false
		}
		t := ds.At(i)
		i++
		return t, true
	}
}

// EpochStats summarizes one training epoch.
type EpochStats struct {
	// Tuples is the number of examples consumed.
	Tuples int
	// AvgLoss is the mean per-example loss observed while training (i.e.
	// evaluated at the then-current weights, the usual streaming metric).
	AvgLoss float64
}

// Trainer runs SGD-style epochs of a Model with an Optimizer. It owns the
// scratch state that makes per-tuple updates allocation-free and
// deduplicates repeated gradient indices within a mini-batch so that Adam's
// per-coordinate state is touched once per batch.
type Trainer struct {
	Model Model
	Opt   Optimizer
	// BatchSize is the mini-batch size; 0 or 1 gives per-tuple updates
	// (the paper's "standard SGD").
	BatchSize int
	// OnTuple, when non-nil, is invoked for every consumed tuple — the hook
	// the benchmark harness uses to charge simulated gradient-compute time.
	OnTuple func(t *data.Tuple)
	// Obs, when non-nil, counts consumed tuples and optimizer steps under
	// the obs.SGD* metric names and records the epoch's mean loss gauge.
	Obs *obs.Registry

	gi []int32
	gv []float64

	acc     []float64 // dense accumulator for batch dedup
	mark    []bool    // whether a coordinate is already in touched
	touched []int32
}

// NewTrainer returns a trainer for the model/optimizer pair.
func NewTrainer(m Model, opt Optimizer, batchSize int) *Trainer {
	return &Trainer{Model: m, Opt: opt, BatchSize: batchSize}
}

// RunEpoch consumes the stream, applying updates to w, and returns epoch
// statistics. With BatchSize > 1 the gradients of each batch are averaged
// before a single optimizer step, matching mini-batch SGD; a final partial
// batch is still applied.
func (tr *Trainer) RunEpoch(w []float64, next Stream) EpochStats {
	batch := tr.BatchSize
	if batch < 1 {
		batch = 1
	}
	if tr.acc == nil || len(tr.acc) < len(w) {
		tr.acc = make([]float64, len(w))
		tr.mark = make([]bool, len(w))
	}

	var stats EpochStats
	var lossSum float64
	inBatch := 0

	flush := func() {
		if inBatch == 0 {
			return
		}
		inv := 1 / float64(inBatch)
		tr.gv = tr.gv[:0]
		for _, idx := range tr.touched {
			tr.gv = append(tr.gv, tr.acc[idx]*inv)
		}
		tr.Opt.Step(w, tr.touched, tr.gv)
		tr.Obs.Inc(obs.SGDBatches)
		for _, idx := range tr.touched {
			tr.acc[idx] = 0
			tr.mark[idx] = false
		}
		tr.touched = tr.touched[:0]
		tr.gi = tr.gi[:0]
		tr.gv = tr.gv[:0]
		inBatch = 0
	}

	for {
		t, ok := next()
		if !ok {
			break
		}
		if tr.OnTuple != nil {
			tr.OnTuple(t)
		}
		stats.Tuples++

		if batch == 1 {
			tr.gi = tr.gi[:0]
			tr.gv = tr.gv[:0]
			var loss float64
			loss, tr.gi, tr.gv = tr.Model.Grad(w, t, tr.gi, tr.gv)
			lossSum += loss
			tr.Opt.Step(w, tr.gi, tr.gv)
			tr.Obs.Inc(obs.SGDBatches)
			continue
		}

		// Mini-batch: accumulate into the dense buffer, deduplicating
		// indices via the touched list.
		start := len(tr.gi)
		var loss float64
		loss, tr.gi, tr.gv = tr.Model.Grad(w, t, tr.gi, tr.gv)
		lossSum += loss
		for i := start; i < len(tr.gi); i++ {
			idx := tr.gi[i]
			if !tr.mark[idx] {
				tr.mark[idx] = true
				tr.touched = append(tr.touched, idx)
			}
			tr.acc[idx] += tr.gv[i]
		}
		inBatch++
		if inBatch >= batch {
			flush()
		}
	}
	flush()
	tr.Opt.EndEpoch()

	if stats.Tuples > 0 {
		stats.AvgLoss = lossSum / float64(stats.Tuples)
	}
	if tr.Obs != nil {
		tr.Obs.Add(obs.SGDTuples, int64(stats.Tuples))
		tr.Obs.SetGauge(obs.SGDLoss, stats.AvgLoss)
	}
	return stats
}
