package ml

import (
	"fmt"
	"math"
)

// Optimizer applies sparse gradient updates to a weight vector.
type Optimizer interface {
	// Name identifies the optimizer, e.g. "sgd".
	Name() string
	// Reset prepares internal state for a weight vector of dimension dim
	// and restores the initial learning rate.
	Reset(dim int)
	// Step applies one update for the sparse gradient (gi, gv):
	// conceptually w ← w − η·g. Indices may repeat; repeated entries are
	// summed.
	Step(w []float64, gi []int32, gv []float64)
	// EndEpoch signals an epoch boundary (for learning-rate decay).
	EndEpoch()
	// LR reports the current learning rate.
	LR() float64
}

// SGD is plain stochastic gradient descent with exponential learning-rate
// decay per epoch — the paper's default configuration (decay 0.95) — and
// optional L2 regularization (weight decay).
type SGD struct {
	// LR0 is the initial learning rate.
	LR0 float64
	// Decay multiplies the learning rate after each epoch. Zero means no
	// decay (treated as 1).
	Decay float64
	// L2 is the weight-decay coefficient λ: each step applies
	// w ← w − η(g + λw) on the coordinates the gradient touches. For
	// sparse data this is the standard lazy approximation (untouched
	// coordinates are not decayed); for dense data it is exact.
	L2 float64

	lr float64
}

// NewSGD returns an SGD optimizer with the paper's default 0.95 decay.
func NewSGD(lr float64) *SGD { return &SGD{LR0: lr, Decay: 0.95, lr: lr} }

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Reset implements Optimizer.
func (s *SGD) Reset(dim int) { s.lr = s.LR0 }

// Step implements Optimizer.
func (s *SGD) Step(w []float64, gi []int32, gv []float64) {
	lr := s.lr
	if s.L2 > 0 {
		for i, idx := range gi {
			w[idx] -= lr * (gv[i] + s.L2*w[idx])
		}
		return
	}
	for i, idx := range gi {
		w[idx] -= lr * gv[i]
	}
}

// EndEpoch implements Optimizer.
func (s *SGD) EndEpoch() {
	d := s.Decay
	if d == 0 {
		d = 1
	}
	s.lr *= d
}

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.lr }

// Adam is the Adam optimizer with lazy (sparse) moment updates: first and
// second moments and the per-coordinate step count are only advanced for
// coordinates touched by the gradient, the standard approach for sparse
// training.
type Adam struct {
	// LR0 is the initial learning rate.
	LR0 float64
	// Beta1, Beta2, Eps are the Adam hyperparameters; zero values take the
	// usual defaults (0.9, 0.999, 1e-8).
	Beta1, Beta2, Eps float64
	// Decay multiplies the learning rate after each epoch (0 = none).
	Decay float64

	lr   float64
	m, v []float64
	t    []float64 // per-coordinate step count for bias correction
}

// NewAdam returns an Adam optimizer with default hyperparameters.
func NewAdam(lr float64) *Adam {
	return &Adam{LR0: lr, lr: lr}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Reset implements Optimizer.
func (a *Adam) Reset(dim int) {
	a.lr = a.LR0
	a.m = make([]float64, dim)
	a.v = make([]float64, dim)
	a.t = make([]float64, dim)
}

func (a *Adam) params() (b1, b2, eps float64) {
	b1, b2, eps = a.Beta1, a.Beta2, a.Eps
	if b1 == 0 {
		b1 = 0.9
	}
	if b2 == 0 {
		b2 = 0.999
	}
	if eps == 0 {
		eps = 1e-8
	}
	return b1, b2, eps
}

// Step implements Optimizer.
func (a *Adam) Step(w []float64, gi []int32, gv []float64) {
	if a.m == nil {
		a.Reset(len(w))
	}
	b1, b2, eps := a.params()
	for i, idx := range gi {
		g := gv[i]
		a.t[idx]++
		a.m[idx] = b1*a.m[idx] + (1-b1)*g
		a.v[idx] = b2*a.v[idx] + (1-b2)*g*g
		mHat := a.m[idx] / (1 - math.Pow(b1, a.t[idx]))
		vHat := a.v[idx] / (1 - math.Pow(b2, a.t[idx]))
		w[idx] -= a.lr * mHat / (math.Sqrt(vHat) + eps)
	}
}

// EndEpoch implements Optimizer.
func (a *Adam) EndEpoch() {
	if a.Decay != 0 {
		a.lr *= a.Decay
	}
}

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.lr }

// NewOptimizer constructs an optimizer by name ("sgd" or "adam").
func NewOptimizer(name string, lr float64) (Optimizer, error) {
	switch name {
	case "sgd", "":
		return NewSGD(lr), nil
	case "adam":
		return NewAdam(lr), nil
	}
	return nil, fmt.Errorf("ml: unknown optimizer %q", name)
}
