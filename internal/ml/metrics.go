package ml

import (
	"math"
	"sort"

	"corgipile/internal/data"
)

// Accuracy returns the fraction of tuples in ds the model classifies
// correctly at weights w. Binary models predict ±1; multi-class models
// predict the class index.
func Accuracy(m Model, w []float64, ds *data.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	multi := ds.Task == data.TaskMulticlass
	for i := range ds.Tuples {
		t := &ds.Tuples[i]
		pred := m.Predict(w, t)
		if multi {
			if int(pred) == classIndex(t.Label, maxInt(ds.Classes, 2)) {
				correct++
			}
		} else if (pred >= 0) == (t.Label >= 0) {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// MeanLoss returns the mean per-example loss of the model at w over ds —
// the objective value F(w).
func MeanLoss(m Model, w []float64, ds *data.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	var sum float64
	for i := range ds.Tuples {
		sum += m.Loss(w, &ds.Tuples[i])
	}
	return sum / float64(ds.Len())
}

// R2 returns the coefficient of determination of the model's predictions
// over a regression dataset — the metric Figure 18 reports for linear
// regression.
func R2(m Model, w []float64, ds *data.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	var mean float64
	for i := range ds.Tuples {
		mean += ds.Tuples[i].Label
	}
	mean /= float64(ds.Len())
	var ssRes, ssTot float64
	for i := range ds.Tuples {
		t := &ds.Tuples[i]
		r := t.Label - m.Predict(w, t)
		ssRes += r * r
		d := t.Label - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// AUC computes the area under the ROC curve from ranking scores and ±1
// labels. It equals the
// probability that a random positive tuple outranks a random negative one;
// ties contribute half. Returns 0.5 on degenerate inputs.
func AUC(scores []float64, labels []float64) float64 {
	type pair struct {
		s float64
		y float64
	}
	if len(scores) != len(labels) || len(scores) == 0 {
		return 0.5
	}
	ps := make([]pair, len(scores))
	for i := range scores {
		ps[i] = pair{scores[i], labels[i]}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].s < ps[b].s })

	var pos, neg float64
	for _, p := range ps {
		if p.y > 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	// Rank-sum (Mann–Whitney) with midranks for ties.
	var rankSumPos float64
	i := 0
	rank := 1.0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		mid := rank + float64(j-i-1)/2
		for k := i; k < j; k++ {
			if ps[k].y > 0 {
				rankSumPos += mid
			}
		}
		rank += float64(j - i)
		i = j
	}
	return (rankSumPos - pos*(pos+1)/2) / (pos * neg)
}

// ModelAUC scores every tuple with the model's decision value and returns
// the AUC. It applies to binary (±1 label) datasets.
func ModelAUC(m Model, w []float64, ds *data.Dataset) float64 {
	scores := make([]float64, ds.Len())
	labels := make([]float64, ds.Len())
	for i := range ds.Tuples {
		t := &ds.Tuples[i]
		scores[i] = DecisionValue(m, w, t)
		labels[i] = t.Label
	}
	return AUC(scores, labels)
}

// GradNorm2 returns ‖∇F(w)‖² — the convergence measure of Theorem 2 for
// non-convex objectives.
func GradNorm2(m Model, w []float64, ds *data.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	g := make([]float64, len(w))
	var gi []int32
	var gv []float64
	for i := range ds.Tuples {
		gi, gv = gi[:0], gv[:0]
		_, gi, gv = m.Grad(w, &ds.Tuples[i], gi, gv)
		for j, idx := range gi {
			g[idx] += gv[j]
		}
	}
	inv := 1 / float64(ds.Len())
	var n2 float64
	for _, v := range g {
		v *= inv
		n2 += v * v
	}
	if math.IsNaN(n2) {
		return math.Inf(1)
	}
	return n2
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
