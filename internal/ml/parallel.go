package ml

import (
	"runtime"
	"sync"

	"corgipile/internal/data"
)

// GradAccumulator folds sparse per-tuple gradients into a dense accumulator,
// deduplicating repeated indices via a touched list so the optimizer's
// per-coordinate state is stepped once per mini-batch. It is the single
// reducer shared by the Trainer, the BatchEngine, and internal/dist.
type GradAccumulator struct {
	acc     []float64 // dense gradient accumulator
	mark    []bool    // whether a coordinate is already in touched
	touched []int32
	gv      []float64 // gather buffer handed to Optimizer.Step
}

// Reset sizes the accumulator for a weight vector of dimension dim and
// clears any pending state. Buffers are reused when already large enough.
func (a *GradAccumulator) Reset(dim int) {
	if len(a.acc) < dim {
		a.acc = make([]float64, dim)
		a.mark = make([]bool, dim)
	}
	a.Clear()
}

// Add folds one sparse gradient into the accumulator. Entries are applied in
// slice order, so the floating-point accumulation order is exactly the order
// in which (gi, gv) pairs were produced.
func (a *GradAccumulator) Add(gi []int32, gv []float64) {
	for i, idx := range gi {
		if !a.mark[idx] {
			a.mark[idx] = true
			a.touched = append(a.touched, idx)
		}
		a.acc[idx] += gv[i]
	}
}

// Gather scales the accumulated gradient by inv (1/batchSize for averaging)
// and returns it in sparse form. The returned slices are valid until the
// next Add, Gather, or Clear.
func (a *GradAccumulator) Gather(inv float64) ([]int32, []float64) {
	a.gv = a.gv[:0]
	for _, idx := range a.touched {
		a.gv = append(a.gv, a.acc[idx]*inv)
	}
	return a.touched, a.gv
}

// Clear zeroes the touched coordinates and empties the touched list, leaving
// capacity in place for the next batch.
func (a *GradAccumulator) Clear() {
	for _, idx := range a.touched {
		a.acc[idx] = 0
		a.mark[idx] = false
	}
	a.touched = a.touched[:0]
	a.gv = a.gv[:0]
}

// Step averages the accumulated gradient over count tuples, applies one
// optimizer step to w, and clears the accumulator.
func (a *GradAccumulator) Step(opt Optimizer, w []float64, count int) {
	if count <= 0 {
		return
	}
	gi, gv := a.Gather(1 / float64(count))
	opt.Step(w, gi, gv)
	a.Clear()
}

// gradShard is one worker's slice of a mini-batch plus its private gradient
// scratch. Shards are fixed per engine and reused across batches.
type gradShard struct {
	ws     Workspace
	gi     []int32
	gv     []float64
	losses []float64

	// Per-batch inputs, set by Accumulate before dispatch.
	w     []float64
	batch []data.Tuple
}

// run computes the shard's per-tuple gradients at w, concatenated in tuple
// order into gi/gv, with per-tuple losses recorded for order-exact reduction.
func (s *gradShard) run(m Model) {
	s.gi = s.gi[:0]
	s.gv = s.gv[:0]
	s.losses = s.losses[:0]
	for i := range s.batch {
		var loss float64
		loss, s.gi, s.gv = GradWS(m, &s.ws, s.w, &s.batch[i], s.gi, s.gv)
		s.losses = append(s.losses, loss)
	}
}

// BatchEngine computes mini-batch gradients on a fixed pool of worker
// goroutines — the compute side of the paper's Section 6.3 regime, where
// buffered I/O keeps tuples flowing and per-step CPU becomes the limiting
// factor.
//
// Determinism guarantee: the batch is split into contiguous shards and
// reduced in shard order, so every floating-point addition — both into the
// dense accumulator and into the loss sum — happens in exactly the global
// tuple order, independent of the worker count. Identical inputs therefore
// produce bit-for-bit identical updates at any Procs setting, including the
// single-threaded inline path.
type BatchEngine struct {
	model  Model
	procs  int
	shards []gradShard

	startOnce sync.Once
	jobs      chan *gradShard
	done      chan struct{}
	closed    bool
}

// NewBatchEngine returns an engine for model using procs worker goroutines;
// procs <= 0 selects runtime.GOMAXPROCS(0). With procs == 1 gradients are
// computed inline and no goroutines are ever started.
func NewBatchEngine(model Model, procs int) *BatchEngine {
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	return &BatchEngine{model: model, procs: procs, shards: make([]gradShard, procs)}
}

// Procs returns the engine's worker count.
func (e *BatchEngine) Procs() int { return e.procs }

// start launches the fixed worker pool (first multi-shard batch only).
func (e *BatchEngine) start() {
	e.jobs = make(chan *gradShard, e.procs)
	e.done = make(chan struct{}, e.procs)
	for i := 0; i < e.procs; i++ {
		go func() {
			for s := range e.jobs {
				s.run(e.model)
				e.done <- struct{}{}
			}
		}()
	}
}

// Accumulate computes the summed gradient of batch at w into acc and adds
// the per-tuple losses, in global tuple order, to *lossSum. It returns the
// number of tuples processed. Concurrent calls are not allowed (the engine
// owns one set of shards); distinct engines are independent.
func (e *BatchEngine) Accumulate(w []float64, batch []data.Tuple, acc *GradAccumulator, lossSum *float64) int {
	n := len(batch)
	if n == 0 {
		return 0
	}
	k := e.procs
	if k > n {
		k = n
	}
	for i := 0; i < k; i++ {
		s := &e.shards[i]
		s.w = w
		s.batch = batch[i*n/k : (i+1)*n/k]
	}
	if k == 1 {
		e.shards[0].run(e.model)
	} else {
		e.startOnce.Do(e.start)
		for i := 0; i < k; i++ {
			e.jobs <- &e.shards[i]
		}
		for i := 0; i < k; i++ {
			<-e.done
		}
	}
	// Deterministic reduce: shards are contiguous and visited in order, so
	// gradient and loss accumulation follow the global tuple order exactly.
	for i := 0; i < k; i++ {
		s := &e.shards[i]
		for _, l := range s.losses {
			*lossSum += l
		}
		acc.Add(s.gi, s.gv)
		s.w, s.batch = nil, nil
	}
	return n
}

// Close stops the worker pool. The engine must not be used afterwards.
// Closing an engine whose pool never started is a no-op.
func (e *BatchEngine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if e.jobs != nil {
		close(e.jobs)
	}
}
