package ml

import (
	"math"
	"testing"

	"corgipile/internal/data"
)

func TestConfusionBasics(t *testing.T) {
	c := NewConfusion(2)
	// 3 true positives, 1 false negative, 2 true negatives, 1 false positive.
	for i := 0; i < 3; i++ {
		c.Add(1, 1)
	}
	c.Add(1, 0)
	c.Add(0, 0)
	c.Add(0, 0)
	c.Add(0, 1)
	if c.Total() != 7 {
		t.Fatalf("Total = %d", c.Total())
	}
	if got := c.Accuracy(); math.Abs(got-5.0/7) > 1e-12 {
		t.Fatalf("Accuracy = %v", got)
	}
	if got := c.Precision(1); math.Abs(got-3.0/4) > 1e-12 {
		t.Fatalf("Precision(1) = %v", got)
	}
	if got := c.Recall(1); math.Abs(got-3.0/4) > 1e-12 {
		t.Fatalf("Recall(1) = %v", got)
	}
	if got := c.F1(1); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("F1(1) = %v", got)
	}
}

func TestConfusionDegenerate(t *testing.T) {
	c := NewConfusion(3)
	if c.Accuracy() != 0 || c.Precision(0) != 0 || c.Recall(0) != 0 || c.F1(0) != 0 {
		t.Fatal("empty matrix metrics must be 0")
	}
	c.Add(-1, 0) // out of range: ignored
	c.Add(0, 9)
	if c.Total() != 0 {
		t.Fatal("out-of-range adds must be ignored")
	}
	if NewConfusion(0).Classes != 2 {
		t.Fatal("class floor is 2")
	}
}

func TestConfusionMacroF1Perfect(t *testing.T) {
	c := NewConfusion(3)
	for k := 0; k < 3; k++ {
		for i := 0; i < 5; i++ {
			c.Add(k, k)
		}
	}
	if got := c.MacroF1(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect MacroF1 = %v", got)
	}
}

func TestConfuseModelBinary(t *testing.T) {
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 1000, Features: 8, Separation: 3, Order: data.OrderShuffled, Seed: 9})
	m := SVM{}
	w := make([]float64, m.Dim(8))
	tr := NewTrainer(m, NewSGD(0.05), 1)
	for epoch := 0; epoch < 5; epoch++ {
		tr.RunEpoch(w, SliceStream(ds))
	}
	c := Confuse(m, w, ds)
	if c.Total() != 1000 {
		t.Fatalf("Total = %d", c.Total())
	}
	// Confusion accuracy must agree with Accuracy.
	if math.Abs(c.Accuracy()-Accuracy(m, w, ds)) > 1e-12 {
		t.Fatalf("confusion accuracy %v != Accuracy %v", c.Accuracy(), Accuracy(m, w, ds))
	}
	if c.MacroF1() < 0.85 {
		t.Fatalf("MacroF1 = %v", c.MacroF1())
	}
}

func TestConfuseMulticlass(t *testing.T) {
	ds := data.SyntheticMulticlass(data.SyntheticConfig{
		Tuples: 900, Features: 16, Classes: 3, Separation: 4,
		Order: data.OrderShuffled, Seed: 10})
	m := Softmax{Classes: 3}
	w := make([]float64, m.Dim(16))
	tr := NewTrainer(m, NewSGD(0.05), 1)
	for epoch := 0; epoch < 5; epoch++ {
		tr.RunEpoch(w, SliceStream(ds))
	}
	c := Confuse(m, w, ds)
	if c.Classes != 3 || c.Total() != 900 {
		t.Fatalf("matrix shape wrong: %d classes, %d total", c.Classes, c.Total())
	}
	if len(c.String()) == 0 {
		t.Fatal("String empty")
	}
}

func TestDecisionValuePerModel(t *testing.T) {
	tp := &data.Tuple{Label: 1, Dense: []float64{2, 3}}
	// GLMs: decision value is the margin.
	w := []float64{1, 1, 0.5}
	for _, m := range []Model{LogisticRegression{}, SVM{}, LinearRegression{}} {
		if got := DecisionValue(m, w, tp); got != 5.5 {
			t.Fatalf("%s decision = %v, want 5.5", m.Name(), got)
		}
	}
	// FM: decision value is its score (finite, deterministic).
	fm := FactorizationMachine{Factors: 2}
	wf := make([]float64, fm.Dim(2))
	if got := DecisionValue(fm, wf, tp); got != 0 {
		t.Fatalf("zero-weight FM decision = %v, want 0", got)
	}
	// Fallback (softmax): prediction index.
	sm := Softmax{Classes: 3}
	ws := make([]float64, sm.Dim(2))
	if got := DecisionValue(sm, ws, tp); got != sm.Predict(ws, tp) {
		t.Fatal("softmax decision should fall back to Predict")
	}
}
