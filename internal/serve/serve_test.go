package serve

import (
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"corgipile/internal/db"
)

// testServer boots a server on a free port with a small synthetic catalog:
// table "t" (susy-like, 500 tuples) and a pre-trained model "warm" for
// predict tests. Callers get the server and a cleanup-registered address.
func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	session := db.NewSession()
	boot := []string{
		`CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.05, order='clustered') WITH device='ssd', block_size=16KB`,
		`SELECT * FROM t TRAIN BY svm MODEL warm WITH learning_rate=0.05, max_epoch_num=2, seed=7`,
	}
	for _, sql := range boot {
		if _, err := session.Exec(sql); err != nil {
			t.Fatalf("boot catalog: %v", err)
		}
	}
	cfg.Addr = "127.0.0.1:0"
	cfg.Session = session
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// longTrain is a TRAIN statement with a deliberately absurd epoch budget:
// it cannot finish within any test timeout, so it is guaranteed to still
// be running (or queued) when the test cancels it.
func longTrain(model string) string {
	return fmt.Sprintf(
		`SELECT * FROM t TRAIN BY svm MODEL %s WITH learning_rate=0.05, max_epoch_num=1000000, seed=7`, model)
}

// waitState polls one job until it reaches want (or the deadline).
func waitState(t *testing.T, c *Client, job string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Status(job, false)
		if err != nil {
			t.Fatalf("status %s: %v", job, err)
		}
		if st.State == want {
			return *st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", job, want)
	return JobStatus{}
}

func TestHelloAndInlineSQL(t *testing.T) {
	srv := testServer(t, Config{})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Hello("test")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Server != ServerName || resp.Protocol != ProtocolVersion {
		t.Fatalf("hello = %+v", resp)
	}
	if resp.Session == "" {
		t.Fatal("hello reported no session id")
	}

	res, err := c.Exec(`SHOW TABLES`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "t" {
		t.Fatalf("SHOW TABLES rows = %v", res.Rows)
	}
}

func TestPredictCachedPath(t *testing.T) {
	srv := testServer(t, Config{})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Predict(`SELECT * FROM t PREDICT BY warm LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(resp.Rows))
	}
	if !strings.Contains(resp.Message, "accuracy") {
		t.Fatalf("message = %q, want accuracy report", resp.Message)
	}
	// The cached path must agree with the executor path the db session
	// uses for the same statement.
	again, err := c.Predict(`SELECT * FROM t PREDICT BY warm LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if again.Message != resp.Message {
		t.Fatalf("cached predict unstable: %q vs %q", again.Message, resp.Message)
	}
}

// TestConcurrentTrainPredict is the tentpole scenario: two background
// TRAIN jobs execute while several connections hammer PREDICT; every
// predict must succeed and both trains must finish. Run under -race this
// also exercises the catalog-lock discipline.
func TestConcurrentTrainPredict(t *testing.T) {
	srv := testServer(t, Config{Workers: 2, SessionMax: 2})
	ctl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	train := `SELECT * FROM t TRAIN BY svm MODEL m%d WITH learning_rate=0.05, max_epoch_num=50, seed=%d`
	var jobs []string
	for i := 0; i < 2; i++ {
		job, err := ctl.Train(fmt.Sprintf(train, i, i+1), false, false)
		if err != nil {
			t.Fatalf("train %d: %v", i, err)
		}
		if job.State != JobQueued {
			t.Fatalf("submit ack state = %q, want queued", job.State)
		}
		jobs = append(jobs, job.ID)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for n := 0; n < 50; n++ {
				if _, err := c.Predict(`SELECT * FROM t PREDICT BY warm LIMIT 1`); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent predict: %v", err)
	}
	for _, id := range jobs {
		st, err := ctl.Status(id, true)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if st.State != JobDone {
			t.Fatalf("job %s = %+v, want done", id, st)
		}
		if st.Loss == 0 {
			t.Fatalf("job %s reported zero loss", id)
		}
	}
	// The trained models are installed and immediately predictable.
	if _, err := ctl.Predict(`SELECT * FROM t PREDICT BY m0 LIMIT 1`); err != nil {
		t.Fatalf("predict by trained model: %v", err)
	}
}

// TestCancelMidEpochReleasesSlot proves the acceptance criterion: with a
// one-job-per-session cap, cancelling a running TRAIN mid-epoch frees the
// admission slot and the server keeps answering PREDICTs.
func TestCancelMidEpochReleasesSlot(t *testing.T) {
	srv := testServer(t, Config{Workers: 1, SessionMax: 1})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job, err := c.Train(longTrain("doomed"), false, false)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, job.ID, JobRunning)

	// The slot is taken: a second TRAIN from this session must bounce.
	if _, err := c.Train(longTrain("second"), false, false); err == nil {
		t.Fatal("second train admitted past the session cap")
	} else if we, ok := err.(*WireError); !ok || we.Code != ErrSessionBusy {
		t.Fatalf("err = %v, want %s", err, ErrSessionBusy)
	}

	st, err := c.Cancel(job.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobCanceled {
		t.Fatalf("after cancel state = %q, want canceled", st.State)
	}
	if st.Epoch != 0 || st.Loss != 0 {
		t.Fatalf("canceled job leaked progress fields: %+v", st)
	}

	// Slot released: the same session can train again...
	again, err := c.Train(`SELECT * FROM t TRAIN BY svm MODEL second WITH max_epoch_num=2, seed=7`, true, false)
	if err != nil {
		t.Fatalf("train after cancel: %v", err)
	}
	if again.State != JobDone {
		t.Fatalf("post-cancel train = %+v, want done", again)
	}
	// ...and prediction never stopped working.
	if _, err := c.Predict(`SELECT * FROM t PREDICT BY warm LIMIT 1`); err != nil {
		t.Fatalf("predict after cancel: %v", err)
	}
}

// TestAdmissionQueueFull saturates the bounded queue and checks the
// overflow TRAIN is rejected with ERR_QUEUE_FULL rather than blocking.
func TestAdmissionQueueFull(t *testing.T) {
	srv := testServer(t, Config{Workers: 1, QueueDepth: 1, SessionMax: 8})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// First job occupies the single worker; second fills the queue.
	first, err := c.Train(longTrain("a"), false, false)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, first.ID, JobRunning)
	if _, err := c.Train(longTrain("b"), false, false); err != nil {
		t.Fatalf("queued train rejected: %v", err)
	}
	_, err = c.Train(longTrain("c"), false, false)
	if we, ok := err.(*WireError); !ok || we.Code != ErrQueueFull {
		t.Fatalf("err = %v, want %s", err, ErrQueueFull)
	}
}

// TestDroppedConnectionCancelsJobs checks the cleanup path: closing a
// connection with a non-detached TRAIN in flight cancels the job, and the
// server's goroutine count returns to its pre-connection baseline (no
// leaked session handlers or stuck workers).
func TestDroppedConnectionCancelsJobs(t *testing.T) {
	srv := testServer(t, Config{Workers: 1, SessionMax: 1})

	// Let the server settle, then record the goroutine baseline.
	time.Sleep(20 * time.Millisecond)
	base := runtime.NumGoroutine()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.Train(longTrain("orphan"), false, false)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	waitState(t, ctl, job.ID, JobRunning)

	c.Close() // abrupt drop, no QUIT

	st := waitState(t, ctl, job.ID, JobCanceled)
	if st.State != JobCanceled {
		t.Fatalf("orphaned job = %+v, want canceled", st)
	}

	// The dropped session's handler and the job's executor must unwind.
	// One extra goroutine remains for ctl's session; allow small slack for
	// runtime background goroutines.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: baseline %d, now %d — session cleanup leaked", base, runtime.NumGoroutine())
}

// TestDetachedJobSurvivesDisconnect checks the opposite contract: a
// detach=true TRAIN keeps running after its session drops and is
// observable from another connection.
func TestDetachedJobSurvivesDisconnect(t *testing.T) {
	srv := testServer(t, Config{Workers: 1})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.Train(`SELECT * FROM t TRAIN BY svm MODEL kept WITH max_epoch_num=30, seed=7`, false, true)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	ctl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	st, err := ctl.Status(job.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone {
		t.Fatalf("detached job = %+v, want done", st)
	}
}

// TestErrorCodes exercises the protocol error surface.
func TestErrorCodes(t *testing.T) {
	srv := testServer(t, Config{})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cases := []struct {
		req  Request
		code string
	}{
		{Request{Op: "sql", SQL: "FROBNICATE"}, ErrParse},
		{Request{Op: "frobnicate"}, ErrUnknownOp},
		{Request{Op: "train", SQL: "SHOW TABLES"}, ErrBadRequest},
		{Request{Op: "predict", SQL: "SHOW TABLES"}, ErrBadRequest},
		{Request{Op: "cancel", Job: "j999"}, ErrNotFound},
		{Request{Op: "status", Job: "j999"}, ErrNotFound},
		{Request{Op: "sql", SQL: "SELECT * FROM missing PREDICT BY warm"}, ErrNotFound},
		{Request{Op: "sql", SQL: "DROP TABLE missing"}, ErrExec},
	}
	for _, tc := range cases {
		_, err := c.Do(tc.req)
		we, ok := err.(*WireError)
		if !ok || we.Code != tc.code {
			t.Errorf("%+v: err = %v, want code %s", tc.req, err, tc.code)
		}
	}

	// A non-JSON line answers ERR_BAD_REQUEST without killing the session.
	raw, err := c.DoLine("this is not json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(raw, ErrBadRequest) {
		t.Fatalf("raw line response = %s", raw)
	}
	if _, err := c.Hello("still alive"); err != nil {
		t.Fatalf("session died after bad request: %v", err)
	}
}

// TestQuit checks the graceful-close handshake.
func TestQuit(t *testing.T) {
	srv := testServer(t, Config{})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Quit(); err != nil {
		t.Fatalf("quit: %v", err)
	}
}

// TestServerCloseUnblocksClients checks that Close tears down open
// connections rather than leaving clients hanging.
func TestServerCloseUnblocksClients(t *testing.T) {
	srv := testServer(t, Config{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 1)
		conn.Read(buf) // blocks until the server closes the connection
	}()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("client still blocked after server Close")
	}
}
