package serve

import (
	"sort"
	"strconv"
	"time"

	"corgipile/internal/db"
	"corgipile/internal/obs"
)

// This file registers the serving plane's system tables on the shared
// session: corgi_jobs (the job table, including summaries of jobs the
// retention policy pruned), corgi_sessions (live client connections),
// and corgi_replication (per-replica progress as the primary sees it,
// or this server's own lag when it is a replica). The db layer already
// registered the session-scoped tables (corgi_tables, corgi_models,
// corgi_wal, corgi_metrics, corgi_events, corgi_spans).
//
// Every Rows closure runs at SELECT time under the catalog read lock
// (the serving plane routes SELECT through the inline read path), so
// the closures may take s.mu — lock order is catalog → mu everywhere —
// but must never take replMu: PROMOTE holds replMu while acquiring the
// catalog write lock, and the reverse order would deadlock. Replication
// roles are read through the lock-free primPtr mirror instead.
func (s *Server) registerIntrospection() {
	s.dbs.RegisterVirtual(db.VirtualTable{
		Name: "corgi_jobs",
		Columns: []string{"id", "session", "model", "state", "trace_id",
			"epoch", "epochs", "loss", "error", "pruned"},
		Rows: s.jobRows,
	})
	s.dbs.RegisterVirtual(db.VirtualTable{
		Name:    "corgi_sessions",
		Columns: []string{"id", "remote", "age_seconds", "requests"},
		Rows:    s.sessionRows,
	})
	s.dbs.RegisterVirtual(db.VirtualTable{
		Name:    "corgi_replication",
		Columns: []string{"role", "remote", "applied_lsn", "lag_lsn", "sheds"},
		Rows:    s.replicationRows,
	})
	s.dbs.RegisterVirtual(db.VirtualTable{
		Name: "corgi_job_stats",
		Columns: []string{"id", "state", "queue_wait_ms", "wall_ms", "cpu_ms",
			"bytes_read", "tuples", "blocks", "peak_buffer_occupancy"},
		Rows: s.jobStatsRows,
	})
}

// jobStatsRows renders per-job resource accounting for live jobs in
// submission order (pruned jobs keep no stats — the registries are gone).
func (s *Server) jobStatsRows() [][]string {
	s.mu.Lock()
	live := make([]*job, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		live = append(live, s.jobs[id])
	}
	s.mu.Unlock()
	rows := make([][]string, 0, len(live))
	for _, j := range live {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		st := j.stats()
		rows = append(rows, []string{
			j.id, string(state),
			strconv.FormatFloat(st.QueueWaitMs, 'f', 3, 64),
			strconv.FormatFloat(st.WallMs, 'f', 3, 64),
			strconv.FormatFloat(st.CPUMs, 'f', 3, 64),
			strconv.FormatInt(st.BytesRead, 10),
			strconv.FormatInt(st.Tuples, 10),
			strconv.FormatInt(st.Blocks, 10),
			strconv.FormatFloat(st.PeakBufferOccupancy, 'f', 3, 64),
		})
	}
	return rows
}

// jobRows snapshots the job table: pruned summaries first (they are the
// oldest submissions), then live jobs in submission order. Trace IDs are
// always populated here — internally minted ones included — which is how
// an operator finds the timeline of a request whose client never asked
// for tracing.
func (s *Server) jobRows() [][]string {
	s.mu.Lock()
	pruned := append([]prunedJob(nil), s.pruned...)
	live := make([]*job, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		live = append(live, s.jobs[id])
	}
	s.mu.Unlock()

	rows := make([][]string, 0, len(pruned)+len(live))
	for _, p := range pruned {
		rows = append(rows, []string{
			p.id, p.session, p.model, string(p.state), p.trace,
			"", "", "", "", "true",
		})
	}
	for _, j := range live {
		st := j.status()
		j.mu.Lock()
		trace, errMsg := j.trace, j.errMsg
		j.mu.Unlock()
		epoch, epochs, loss := "", "", ""
		if st.Epoch > 0 {
			epoch = strconv.Itoa(st.Epoch)
		}
		if st.Epochs > 0 {
			epochs = strconv.Itoa(st.Epochs)
		}
		if st.State == JobDone {
			loss = strconv.FormatFloat(st.Loss, 'g', -1, 64)
		}
		rows = append(rows, []string{
			j.id, j.session, st.Model, string(st.State), trace,
			epoch, epochs, loss, errMsg, "false",
		})
	}
	return rows
}

// sessionRows lists live client connections, ordered by session id.
func (s *Server) sessionRows() [][]string {
	s.mu.Lock()
	infos := make([]*sessionInfo, 0, len(s.sessions))
	for _, si := range s.sessions {
		infos = append(infos, si)
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool {
		a, b := infos[i].id, infos[j].id
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	rows := make([][]string, 0, len(infos))
	for _, si := range infos {
		rows = append(rows, []string{
			si.id,
			si.remote,
			strconv.FormatFloat(time.Since(si.connected).Seconds(), 'f', 1, 64),
			strconv.FormatInt(si.requests.Load(), 10),
		})
	}
	return rows
}

// replicationRows reports replication progress. On a primary: one row
// per connected replica with its acked LSN, lag, and shed count. On a
// (not yet promoted) replica: one row describing this server's own
// progress against its primary. Standalone servers have zero rows.
func (s *Server) replicationRows() [][]string {
	var rows [][]string
	if p := s.primPtr.Load(); p != nil {
		reps := p.Replicas()
		sort.Slice(reps, func(i, j int) bool { return reps[i].Remote < reps[j].Remote })
		for _, r := range reps {
			rows = append(rows, []string{
				"primary", r.Remote,
				strconv.FormatUint(r.AppliedLSN, 10),
				strconv.FormatUint(r.LagLSN, 10),
				strconv.FormatInt(r.Sheds, 10),
			})
		}
	}
	if s.cfg.ReplicateFrom != "" && s.dbs.ReadOnly() {
		rows = append(rows, []string{
			"replica", s.cfg.ReplicateFrom,
			strconv.FormatUint(s.dbs.LastLSN(), 10),
			strconv.FormatUint(uint64(s.reg.Gauge(obs.ReplLagLSN)), 10),
			"",
		})
	}
	return rows
}
