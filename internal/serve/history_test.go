package serve

import (
	"strconv"
	"testing"
	"time"

	"corgipile/internal/obs"
)

// shortTrain is a TRAIN statement that finishes in well under a second.
func shortTrain(model string) string {
	return `SELECT * FROM t TRAIN BY svm MODEL ` + model +
		` WITH learning_rate=0.05, max_epoch_num=2, seed=7`
}

func TestJobStatsOverWire(t *testing.T) {
	srv := testServer(t, Config{})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.Train(shortTrain("m_stats"), true, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone {
		t.Fatalf("train finished in state %q", st.State)
	}

	// Plain status: no stats block, so existing clients and the golden
	// transcript see an unchanged response shape.
	plain, err := c.Status(st.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats != nil {
		t.Fatalf("status without stats=true carried %+v", plain.Stats)
	}

	full, err := c.StatusStats(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	s := full.Stats
	if s == nil {
		t.Fatal("status with stats=true returned no stats block")
	}
	if s.QueueWaitMs < 0 || s.WallMs <= 0 {
		t.Fatalf("queue_wait_ms=%v wall_ms=%v, want non-negative wait and positive wall", s.QueueWaitMs, s.WallMs)
	}
	if s.Tuples <= 0 || s.Blocks <= 0 {
		t.Fatalf("tuples=%d blocks=%d, want both positive after a 2-epoch train", s.Tuples, s.Blocks)
	}
	if s.BytesRead <= 0 {
		t.Fatalf("bytes_read=%d, want positive (blocks=%d × avg block size)", s.BytesRead, s.Blocks)
	}
	if s.CPUMs <= 0 {
		t.Fatalf("cpu_ms=%v, want positive gradient time", s.CPUMs)
	}
	if s.PeakBufferOccupancy <= 0 || s.PeakBufferOccupancy > 1 {
		t.Fatalf("peak_buffer_occupancy=%v, want in (0,1]", s.PeakBufferOccupancy)
	}

	// The same accounting surfaces in the corgi_job_stats system table.
	res, err := c.Exec(`SELECT id, state, tuples, bytes_read FROM corgi_job_stats WHERE id = '` + st.ID + `'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("corgi_job_stats rows = %v, want the finished job", res.Rows)
	}
	row := res.Rows[0]
	if row[1] != string(JobDone) {
		t.Fatalf("corgi_job_stats state = %q, want done", row[1])
	}
	tuples, err := strconv.ParseInt(row[2], 10, 64)
	if err != nil || tuples != s.Tuples {
		t.Fatalf("corgi_job_stats tuples = %q, want %d", row[2], s.Tuples)
	}
}

func TestQueuedJobStatsReportQueueWait(t *testing.T) {
	// One worker, one slow job: the second submission sits queued, and its
	// stats block is all queue wait — no wall/CPU figures yet.
	srv := testServer(t, Config{Workers: 1, SessionMax: 2})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	slow, err := c.Train(longTrain("hog"), false, false)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, slow.ID, JobRunning)
	queued, err := c.Train(longTrain("waiter"), false, false)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.StatusStats(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobQueued || st.Stats == nil {
		t.Fatalf("second job state=%q stats=%v, want queued with stats", st.State, st.Stats)
	}
	if st.Stats.WallMs != 0 || st.Stats.Tuples != 0 {
		t.Fatalf("queued job reports execution figures: %+v", st.Stats)
	}
	if _, err := c.Cancel(queued.ID, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(slow.ID, true); err != nil {
		t.Fatal(err)
	}
}

// TestHistorySamplingOverWire is the acceptance scenario: with sampling
// on, the serve.predict quantile series accumulate in the history store
// while a TRAIN runs, and SELECTing corgi_metrics_history over the wire
// returns them.
func TestHistorySamplingOverWire(t *testing.T) {
	srv := testServer(t, Config{Workers: 2, SampleEvery: 20 * time.Millisecond})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	bg, err := c.Train(longTrain("bg"), false, false)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, bg.ID, JobRunning)
	for i := 0; i < 5; i++ {
		if _, err := c.Predict(`SELECT * FROM t PREDICT BY warm LIMIT 2`); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	var rows [][]string
	for time.Now().Before(deadline) {
		res, err := c.Exec(`SELECT name, ts, value FROM corgi_metrics_history WHERE name = 'serve.predict_p95'`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) >= 2 {
			rows = res.Rows
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(rows) < 2 {
		t.Fatal("serve.predict_p95 never accumulated history samples")
	}
	for _, row := range rows {
		if ts, err := strconv.ParseInt(row[1], 10, 64); err != nil || ts <= 0 {
			t.Fatalf("history ts = %q, want positive unix-ms", row[1])
		}
	}
	// The sampler's pre-sample hook refreshes the job gauges, so the
	// running TRAIN is visible in the sampled series too.
	res, err := c.Exec(`SELECT value FROM corgi_metrics_history WHERE name = 'serve.jobs_running'`)
	if err != nil {
		t.Fatal(err)
	}
	saw := false
	for _, row := range res.Rows {
		if row[0] != "0" {
			saw = true
		}
	}
	if !saw {
		t.Fatal("serve.jobs_running never sampled above zero during a live TRAIN")
	}
	if _, err := c.Cancel(bg.ID, true); err != nil {
		t.Fatal(err)
	}
}

// TestServeAlertFireResolveOverWire drives an alert through its full
// lifecycle using only the wire protocol: a rule on the jobs-running
// gauge fires while a TRAIN runs, resolves after cancel, and both
// transitions land in corgi_alerts and the event log.
func TestServeAlertFireResolveOverWire(t *testing.T) {
	rule, err := obs.ParseAlertRule("serve.jobs_running>0")
	if err != nil {
		t.Fatal(err)
	}
	srv := testServer(t, Config{
		Workers:     1,
		SampleEvery: 20 * time.Millisecond,
		Alerts:      []obs.AlertRule{rule},
	})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.Train(longTrain("alerted"), false, false)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, st.ID, JobRunning)
	waitAlertState(t, c, "serve.jobs_running>0", "firing")

	if _, err := c.Cancel(st.ID, true); err != nil {
		t.Fatal(err)
	}
	waitAlertState(t, c, "serve.jobs_running>0", "ok")

	// Both transitions are structured events in the shared ring.
	for _, typ := range []string{"alert.firing", "alert.resolved"} {
		res, err := c.Exec(`SELECT type, detail FROM corgi_events WHERE type = '` + typ + `'`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("no %s event in corgi_events", typ)
		}
	}
}

// waitAlertState polls corgi_alerts over the wire until the named rule
// reaches the wanted state.
func waitAlertState(t *testing.T, c *Client, name, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		res, err := c.Exec(`SELECT state, fired FROM corgi_alerts WHERE name = '` + name + `'`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) == 1 && res.Rows[0][0] == want {
			if want == "firing" && res.Rows[0][1] == "0" {
				t.Fatalf("alert firing with fired=0: %v", res.Rows)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("alert %q never reached state %q", name, want)
}

// TestServePredictHistogram pins the serve.predict latency histogram:
// every predict lands one observation, so the history plane has a
// quantile series to sample.
func TestServePredictHistogram(t *testing.T) {
	srv := testServer(t, Config{SampleEvery: time.Hour})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 4
	for i := 0; i < n; i++ {
		if _, err := c.Predict(`SELECT * FROM t PREDICT BY warm LIMIT 1`); err != nil {
			t.Fatal(err)
		}
	}
	snap := srv.reg.Snapshot()
	h, ok := snap.Hists[obs.ServePredict]
	if !ok || h.Count != n {
		t.Fatalf("serve.predict histogram count = %+v, want %d observations", h, n)
	}
	if q := h.Quantile(0.95); q <= 0 {
		t.Fatalf("serve.predict p95 = %v, want positive", q)
	}
}
