package serve

import (
	"fmt"
	"strconv"
	"sync"

	"corgipile/internal/data"
	"corgipile/internal/db"
	"corgipile/internal/sqlparse"
)

// This file is the high-QPS predict path. The batch executor pipeline
// (Scan → Filter → Predict over the simulated device) is the right shape
// for offline evaluation but pays decode and simulated I/O per statement;
// a serving workload re-reads the same table thousands of times. The
// server instead decodes each table once into a cached []data.Tuple
// (DecodeAll charges no simulated I/O) and evaluates the model directly
// per request — model Predict methods are pure (any scratch space lives
// in a per-call workspace), so concurrent sessions share one snapshot
// with no locking beyond the cache map itself.

// cachedTable is one decoded table snapshot.
type cachedTable struct {
	tuples []data.Tuple
	task   data.Task
}

// predictCache maps lower-cased table names to decoded snapshots. DDL
// (DROP TABLE, CREATE TABLE) invalidates by name under the catalog write
// lock; model installs don't touch it (tuples don't change when a model
// does).
type predictCache struct {
	mu     sync.Mutex
	tables map[string]*cachedTable
}

func (c *predictCache) get(name string) *cachedTable {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tables[name]
}

func (c *predictCache) put(name string, t *cachedTable) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[name] = t
}

// invalidate drops one table's snapshot (or all of them for name "").
func (c *predictCache) invalidate(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if name == "" {
		c.tables = make(map[string]*cachedTable)
		return
	}
	delete(c.tables, name)
}

// invalidateModel exists for symmetry at install sites; the tuple cache
// does not key on models, so it is a no-op kept for clarity at call sites.
func (c *predictCache) invalidateModel(string) {}

// execPredict answers a PREDICT statement from the cache. The catalog
// read lock is held only long enough to look up the table and model
// entries (and to decode on a cache miss); scoring runs lock-free.
func (s *Server) execPredict(st *sqlparse.Predict) *Response {
	s.catalog.RLock()
	entry, tok := s.dbs.Table(st.Table)
	m, mok := s.dbs.Model(st.Model)
	s.catalog.RUnlock()
	if !tok {
		return errResponse(ErrNotFound, "unknown table %q", st.Table)
	}
	if !mok {
		return errResponse(ErrNotFound, "unknown model %q", st.Model)
	}

	ct := s.cache.get(entry.Name)
	if ct == nil {
		tuples, err := entry.Table.DecodeAll()
		if err != nil {
			return errResponse(ErrExec, "decode table %q: %v", st.Table, err)
		}
		ct = &cachedTable{tuples: tuples, task: entry.Table.Task()}
		s.cache.put(entry.Name, ct)
	}

	filter := db.CompilePredicate(st.Where)
	resp := &Response{OK: true, Type: "result", Columns: []string{"id", "label", "prediction"}}
	correct, n := 0, 0
	for i := range ct.tuples {
		t := &ct.tuples[i]
		if filter != nil && !filter(t) {
			continue
		}
		pred := m.Model.Predict(m.W, t)
		n++
		if ct.task != data.TaskRegression && (pred >= 0) == (t.Label >= 0) &&
			(ct.task != data.TaskMulticlass || pred == t.Label) {
			correct++
		}
		if st.Limit == 0 || len(resp.Rows) < st.Limit {
			resp.Rows = append(resp.Rows, []string{
				strconv.FormatInt(t.ID, 10),
				fmt.Sprintf("%g", t.Label),
				fmt.Sprintf("%g", pred),
			})
		}
	}
	if ct.task != data.TaskRegression && n > 0 {
		resp.Message = fmt.Sprintf("PREDICT: %d rows, accuracy %.4f", n, float64(correct)/float64(n))
	} else {
		resp.Message = fmt.Sprintf("PREDICT: %d rows", n)
	}
	return resp
}
