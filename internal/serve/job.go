package serve

import (
	"context"
	"math"
	"sync"
	"time"

	"corgipile/internal/executor"
	"corgipile/internal/obs"
	"corgipile/internal/sqlparse"
)

// job is one queued or executing TRAIN statement. State transitions are
// guarded by mu; done is closed exactly once when the job reaches a
// terminal state, which is what Wait-style requests block on.
type job struct {
	id      string
	session string
	sql     string
	st      *sqlparse.Train
	detach  bool
	// trace is the submitting request's trace ID, stamped on every event
	// and span the job emits; traceGiven records whether the client chose
	// it (only then is it echoed on the wire, keeping trace-unaware
	// transcripts byte-identical).
	trace      string
	traceGiven bool
	// created is the submission time — the start of the queue span.
	created time.Time
	// events is the server's event ring (nil-safe); finish emits the
	// terminal job.* event here so every exit path is recorded.
	events *obs.EventLog

	// ctx is canceled by CANCEL, by the owning session disconnecting
	// (unless detached), or by server shutdown. The executor checks it
	// mid-epoch, so cancellation stops in-flight work promptly.
	ctx    context.Context
	cancel context.CancelFunc

	// feed receives one live RunStatus per epoch — the per-job /run?job=id
	// telemetry. reg is the job's private metrics registry, so per-epoch
	// breakdowns of concurrent jobs never cross-contaminate.
	feed *obs.RunFeed
	reg  *obs.Registry

	mu        sync.Mutex
	state     JobState
	model     string
	epochs    int // configured epoch count, set when the plan is built
	rows      []executor.EpochRow
	breakdown []obs.EpochMetrics
	errMsg    string
	// startedAt is when a worker picked the job up (zero while queued);
	// startedAt − created is the queue wait.
	startedAt time.Time
	// blockBytes is the source table's mean block size captured at prepare
	// time — the multiplier that turns the shuffle's block counter into the
	// job's estimated bytes read.
	blockBytes int64
	// finishedAt is when the job reached its terminal state — the input to
	// the server's age-based retention pruning.
	finishedAt time.Time
	done       chan struct{}
}

// breakdownRows returns the per-epoch cross-layer breakdown collected so
// far (partial for failed or canceled jobs).
func (j *job) breakdownRows() []obs.EpochMetrics {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.breakdown
}

// newJob returns a queued job whose context derives from parent.
func newJob(id, session, sql string, st *sqlparse.Train, detach bool, parent context.Context) *job {
	ctx, cancel := context.WithCancel(parent)
	reg := obs.New()
	// Peaks arm buffer-occupancy high-water tracking for JobStats. The job
	// registry never enters live mode, so without this the occupancy gauge
	// (a SetLiveGauge metric) would leave no trace at all.
	reg.EnablePeaks()
	return &job{
		id:      id,
		session: session,
		sql:     sql,
		st:      st,
		detach:  detach,
		created: time.Now(),
		ctx:     ctx,
		cancel:  cancel,
		feed:    obs.NewRunFeed(),
		reg:     reg,
		state:   JobQueued,
		done:    make(chan struct{}),
	}
}

// tryStart moves a queued job to running. It returns false when the job
// was canceled while still queued — the worker then discards it.
func (j *job) tryStart() bool {
	if j.ctx.Err() != nil {
		// Canceled before any worker touched it (e.g. the owning session
		// vanished): complete the queued → canceled transition here.
		j.finish(JobCanceled, nil, "")
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	j.startedAt = time.Now()
	return true
}

// finish moves the job to a terminal state, recording the outcome, and
// releases waiters. Later calls are ignored (terminal states are final).
func (j *job) finish(state JobState, rows []executor.EpochRow, errMsg string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.rows = rows
	j.errMsg = errMsg
	j.finishedAt = time.Now()
	j.mu.Unlock()
	j.events.Record(obs.Event{Type: jobEventType(state), Trace: j.trace,
		Detail: "job=" + j.id, Err: errMsg})
	j.cancel() // release the context's resources in every path
	j.feed.Close()
	close(j.done)
}

// jobEventType maps a terminal job state to its event-log type.
func jobEventType(state JobState) string {
	switch state {
	case JobFailed:
		return obs.EvJobFailed
	case JobCanceled:
		return obs.EvJobCanceled
	default:
		return obs.EvJobDone
	}
}

// requestCancel cancels the job's context and, when the job has not yet
// been picked up by a worker, completes the queued → canceled transition
// directly (the worker will discard the stale queue entry).
func (j *job) requestCancel() {
	j.cancel()
	j.mu.Lock()
	queued := j.state == JobQueued
	j.mu.Unlock()
	if queued {
		j.finish(JobCanceled, nil, "")
	}
}

// active reports whether the job still occupies an admission slot
// (queued or running).
func (j *job) active() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return !j.state.Terminal()
}

// status snapshots the job for the wire. Progress comes from the live feed
// for running jobs and from the final rows for done jobs; canceled jobs
// report only identity and state so transcripts stay deterministic.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.id, Session: j.session, State: j.state}
	if j.traceGiven {
		st.Trace = j.trace
	}
	if j.state == JobCanceled {
		return JobStatus{ID: j.id, Session: j.session, State: JobCanceled, Trace: st.Trace}
	}
	st.Model = j.model
	switch j.state {
	case JobRunning:
		if live, seq := j.feed.Status(); seq > 0 {
			st.Epoch = live.Epoch
			st.Epochs = live.Epochs
		}
	case JobDone:
		st.Epochs = j.epochs
		if n := len(j.rows); n > 0 {
			st.Epoch = j.rows[n-1].Epoch
			st.Loss = roundLoss(j.rows[n-1].Loss)
		}
	case JobFailed:
		st.Error = j.errMsg
	}
	return st
}

// roundLoss rounds to six decimals so the JSON encoding is short and
// byte-stable across replays of the same seeded run.
func roundLoss(x float64) float64 { return math.Round(x*1e6) / 1e6 }

// statusWith is status plus, when asked, the resource-accounting block.
func (j *job) statusWith(withStats bool) JobStatus {
	st := j.status()
	if withStats {
		st.Stats = j.stats()
	}
	return st
}

// stats computes the job's resource accounting from its timestamps and
// private registry. Open-ended figures (queue wait of a queued job, wall
// time of a running one) report elapsed-so-far.
func (j *job) stats() *JobStats {
	j.mu.Lock()
	started, finished := j.startedAt, j.finishedAt
	blockBytes := j.blockBytes
	terminal := j.state.Terminal()
	j.mu.Unlock()
	st := &JobStats{}
	if started.IsZero() {
		// Never picked up: everything so far is queue wait. A job canceled
		// while queued keeps the wait it accrued (finishedAt set, started not).
		end := time.Now()
		if terminal {
			end = finished
		}
		st.QueueWaitMs = roundMs(end.Sub(j.created))
		return st
	}
	st.QueueWaitMs = roundMs(started.Sub(j.created))
	end := time.Now()
	if terminal {
		end = finished
	}
	st.WallMs = roundMs(end.Sub(started))
	st.CPUMs = roundMs(time.Duration(j.reg.Counter(obs.SGDGradNanos)))
	st.Tuples = j.reg.Counter(obs.SGDTuples)
	st.Blocks = j.reg.Counter(obs.ShuffleBlocks)
	st.BytesRead = st.Blocks * blockBytes
	st.PeakBufferOccupancy = j.reg.Peak(obs.ShuffleBufferOccupancy)
	return st
}

// roundMs renders a duration as milliseconds with microsecond precision.
func roundMs(d time.Duration) float64 {
	return math.Round(float64(d.Nanoseconds())/1e3) / 1e3
}
