package serve

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// jobCount snapshots the server's job-map size.
func jobCount(s *Server) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// The job map must stay bounded under churn: a long-lived server that
// executes many short TRAINs keeps at most RetainJobs finished jobs, while
// every job still completes and installs its model.
func TestJobMapBoundedUnderChurn(t *testing.T) {
	const retain = 3
	srv := testServer(t, Config{
		Workers:      1,
		SessionMax:   1,
		RetainJobs:   retain,
		RetainJobAge: -1, // cap-only: keep the test clock-independent
	})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const churn = 12
	for i := 0; i < churn; i++ {
		sql := fmt.Sprintf(
			`SELECT * FROM t TRAIN BY svm MODEL churn%d WITH learning_rate=0.05, max_epoch_num=1, seed=7`, i)
		st, err := c.Train(sql, true, false)
		if err != nil {
			t.Fatalf("train %d: %v", i, err)
		}
		if st.State != JobDone {
			t.Fatalf("train %d finished in state %q: %s", i, st.State, st.Error)
		}
	}
	if n := jobCount(srv); n > retain+1 {
		// +1: the most recent job may finish after the worker's prune pass.
		t.Fatalf("job map holds %d jobs after %d churned trains, want <= %d", n, churn, retain+1)
	}
	// Every model made it into the catalog even though its job was pruned.
	res, err := c.Exec(`SHOW MODELS`)
	if err != nil {
		t.Fatal(err)
	}
	models := 0
	for _, row := range res.Rows {
		if strings.HasPrefix(row[0], "churn") {
			models++
		}
	}
	if models != churn {
		t.Fatalf("%d churn models in catalog, want %d", models, churn)
	}
	// Pruned jobs answer ERR_NOT_FOUND, like ids that never existed.
	if _, err := c.Status("j1", false); err == nil {
		t.Fatal("status of pruned job j1 should fail")
	}
	// Active jobs survive pruning even when the cap is long exceeded.
	st, err := c.Train(longTrain("keepme"), false, false)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, st.ID, JobRunning)
	if _, err := c.Status(st.ID, false); err != nil {
		t.Fatalf("running job pruned: %v", err)
	}
	if _, err := c.Cancel(st.ID, true); err != nil {
		t.Fatal(err)
	}
}

// Age-based pruning drops finished jobs on the next pass once they are
// older than RetainJobAge, even far under the count cap.
func TestJobAgePruning(t *testing.T) {
	srv := testServer(t, Config{
		Workers:      1,
		RetainJobs:   1000,
		RetainJobAge: time.Nanosecond,
	})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Train(
		`SELECT * FROM t TRAIN BY svm MODEL aged WITH learning_rate=0.05, max_epoch_num=1, seed=7`, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone {
		t.Fatalf("job state %q", st.State)
	}
	// The next submission's prune pass collects it.
	if _, err := c.Train(
		`SELECT * FROM t TRAIN BY svm MODEL aged2 WITH learning_rate=0.05, max_epoch_num=1, seed=7`, true, false); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for jobCount(srv) > 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := jobCount(srv); n > 1 {
		t.Fatalf("job map holds %d jobs, want the aged ones pruned", n)
	}
}

// Online ingestion over the wire: INSERT invalidates the predict cache, and
// TRAIN ... resume folds the new blocks into an incremental job.
func TestIngestAndResumeOverWire(t *testing.T) {
	srv := testServer(t, Config{})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	before, err := c.Predict(`SELECT * FROM t PREDICT BY warm`)
	if err != nil {
		t.Fatal(err)
	}

	// Ingest enough rows over the wire to append whole new blocks (the
	// boot table uses 16KB blocks; susy has 18 features).
	var rows []string
	for i := 0; i < 400; i++ {
		vals := make([]string, 19)
		vals[0] = fmt.Sprintf("%d", 1-2*(i%2))
		for f := 1; f < len(vals); f++ {
			vals[f] = fmt.Sprintf("%d", (i+f)%11)
		}
		rows = append(rows, "("+strings.Join(vals, ", ")+")")
	}
	res, err := c.Exec(`INSERT INTO t VALUES ` + strings.Join(rows, ", "))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "400 tuples") {
		t.Fatalf("INSERT message = %q", res.Message)
	}

	// The cached predict path must see the appended tuples immediately.
	after, err := c.Predict(`SELECT * FROM t PREDICT BY warm`)
	if err != nil {
		t.Fatal(err)
	}
	parseRows := func(msg string) int {
		var n int
		if _, err := fmt.Sscanf(msg, "PREDICT: %d rows", &n); err != nil {
			t.Fatalf("message %q", msg)
		}
		return n
	}
	if got, want := parseRows(after.Message), parseRows(before.Message)+400; got != want {
		t.Fatalf("predict after INSERT saw %d rows, want %d", got, want)
	}

	// Incremental training as a background job over the wire.
	st, err := c.Train(
		`SELECT * FROM t TRAIN BY svm MODEL warm2 WITH resume='warm', max_epoch_num=2, seed=7`, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone {
		t.Fatalf("resume job state %q: %s", st.State, st.Error)
	}
	if _, err := c.Predict(`SELECT * FROM t PREDICT BY warm2 LIMIT 1`); err != nil {
		t.Fatalf("predict by resumed model: %v", err)
	}
}
