package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
)

// Client is a minimal protocol client: one connection, one in-flight
// request at a time (the protocol answers strictly in order, so a single
// Do loop is all a correct client needs). It is not safe for concurrent
// use; open one Client per goroutine — connections are cheap and the
// server is built for many sessions.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	sc   *bufio.Scanner
}

// Dial connects to a corgiserved instance and performs the HELLO
// handshake, returning the connected client.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	c := NewClient(conn)
	if _, err := c.Hello("corgipile-go client"); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// DialRaw connects without performing the HELLO handshake — transcript
// replay sends its own hello line, so the client must not consume one.
func DialRaw(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection without handshaking — the
// hook for tests that exercise raw protocol sequences.
func NewClient(conn net.Conn) *Client {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), MaxLineBytes)
	return &Client{conn: conn, enc: json.NewEncoder(conn), sc: sc}
}

// Close tears the connection down. The server cancels any non-detached
// jobs this session still owns.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and reads its response. A response with ok=false
// is returned as (resp, *WireError); transport failures return a plain
// error with a nil response.
func (c *Client) Do(req Request) (*Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("serve: send: %w", err)
	}
	return c.recv()
}

// DoLine sends a raw pre-encoded request line verbatim and reads the
// response line, also verbatim. Transcript replay (scripts/serve_smoke.sh
// and the protocol golden test) uses this so the bytes on the wire are
// exactly the documented ones.
func (c *Client) DoLine(line string) (string, error) {
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		return "", fmt.Errorf("serve: send: %w", err)
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return "", fmt.Errorf("serve: recv: %w", err)
		}
		return "", fmt.Errorf("serve: recv: connection closed")
	}
	return c.sc.Text(), nil
}

// recv reads one response line.
func (c *Client) recv() (*Response, error) {
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return nil, fmt.Errorf("serve: recv: %w", err)
		}
		return nil, fmt.Errorf("serve: recv: connection closed")
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("serve: recv: bad response line: %w", err)
	}
	if !resp.OK {
		if resp.Error != nil {
			return &resp, resp.Error
		}
		return &resp, fmt.Errorf("serve: server error with no payload")
	}
	return &resp, nil
}

// Hello performs the handshake and returns the server's hello response
// (session id, protocol version).
func (c *Client) Hello(client string) (*Response, error) {
	return c.Do(Request{Op: "hello", Client: client})
}

// Exec runs one statement through op "sql" and returns the response:
// a result for inline statements, a queued-job ack for TRAIN.
func (c *Client) Exec(sql string) (*Response, error) {
	return c.Do(Request{Op: "sql", SQL: sql})
}

// Train submits a TRAIN statement. wait blocks until the job finishes;
// detach unbinds the job from this connection's lifetime.
func (c *Client) Train(sql string, wait, detach bool) (*JobStatus, error) {
	resp, err := c.Do(Request{Op: "train", SQL: sql, Wait: wait, Detach: detach})
	if err != nil {
		return nil, err
	}
	return resp.Job, nil
}

// Predict runs a PREDICT statement on the cached read path.
func (c *Client) Predict(sql string) (*Response, error) {
	return c.Do(Request{Op: "predict", SQL: sql})
}

// Cancel cancels a job; wait blocks until the job is actually terminal.
func (c *Client) Cancel(job string, wait bool) (*JobStatus, error) {
	resp, err := c.Do(Request{Op: "cancel", Job: job, Wait: wait})
	if err != nil {
		return nil, err
	}
	return resp.Job, nil
}

// Status fetches one job's status (wait blocks until terminal).
func (c *Client) Status(job string, wait bool) (*JobStatus, error) {
	resp, err := c.Do(Request{Op: "status", Job: job, Wait: wait})
	if err != nil {
		return nil, err
	}
	return resp.Job, nil
}

// StatusStats fetches one job's status including its resource accounting
// (queue wait, wall/CPU time, bytes read, tuples, blocks, peak buffer
// occupancy) in JobStatus.Stats.
func (c *Client) StatusStats(job string) (*JobStatus, error) {
	resp, err := c.Do(Request{Op: "status", Job: job, Stats: true})
	if err != nil {
		return nil, err
	}
	return resp.Job, nil
}

// Jobs fetches the whole job table in submission order.
func (c *Client) Jobs() ([]JobStatus, error) {
	resp, err := c.Do(Request{Op: "status"})
	if err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Promote asks a replica server to become a writable primary. The
// response message reports the applied LSN the new primary starts from;
// a non-replica answers ERR_NOT_REPLICA.
func (c *Client) Promote() (*Response, error) {
	return c.Do(Request{Op: "promote"})
}

// Quit ends the session gracefully and closes the connection.
func (c *Client) Quit() error {
	_, err := c.Do(Request{Op: "quit"})
	c.conn.Close()
	return err
}
