package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"corgipile/internal/db"
	"corgipile/internal/obs"
)

// waitCondition polls f until it reports true (or the deadline).
func waitCondition(t *testing.T, what string, f func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if f() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestIntrospectionE2E is the acceptance scenario: a client submits TRAIN
// over the wire with its own trace ID, a second connection finds the
// running job (with that trace) via SELECT on corgi_jobs mid-run, and
// after a traced run completes, corgi_spans and corgi_events filtered by
// the trace reconstruct the request's timeline — statement, queue time,
// per-epoch spans, model install.
func TestIntrospectionE2E(t *testing.T) {
	srv := testServer(t, Config{})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A trace-unaware request gets no trace echo (transcript purity).
	resp, err := c.Exec("SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace != "" {
		t.Fatalf("untraced request echoed trace %q", resp.Trace)
	}

	// Traced long-running TRAIN: the ack echoes the trace on both the
	// response and the job status.
	resp, err = c.Do(Request{Op: "train", SQL: longTrain("live"), Trace: "trace-live"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace != "trace-live" || resp.Job == nil || resp.Job.Trace != "trace-live" {
		t.Fatalf("traced submit ack = %+v (job %+v)", resp, resp.Job)
	}
	jobID := resp.Job.ID

	// Mid-run, from a different connection: the running job is visible in
	// corgi_jobs with its trace ID.
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	var row []string
	waitCondition(t, "job running in corgi_jobs", func() bool {
		res, err := c2.Exec(`SELECT * FROM corgi_jobs WHERE state = 'running'`)
		if err != nil {
			t.Fatalf("SELECT corgi_jobs: %v", err)
		}
		for _, r := range res.Rows {
			if r[0] == jobID {
				row = r
				return true
			}
		}
		return false
	})
	// Columns: id, session, model, state, trace_id, epoch, epochs, loss, error, pruned.
	if row[4] != "trace-live" || row[2] != "live" || row[9] != "false" {
		t.Fatalf("running corgi_jobs row = %v, want trace-live/live/not-pruned", row)
	}
	if _, err := c.Cancel(jobID, true); err != nil {
		t.Fatalf("cancel: %v", err)
	}

	// A traced TRAIN to completion, then reconstruct its timeline.
	short := `SELECT * FROM t TRAIN BY svm MODEL fin WITH learning_rate=0.05, max_epoch_num=3, seed=7`
	resp, err = c.Do(Request{Op: "train", SQL: short, Wait: true, Trace: "trace-done"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace != "trace-done" || resp.Job.State != JobDone {
		t.Fatalf("waited traced train = %+v (job %+v)", resp, resp.Job)
	}

	res, err := c2.Exec(`SELECT name FROM corgi_spans WHERE trace_id = 'trace-done'`)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range res.Rows {
		counts[r[0]]++
	}
	if counts[obs.EvSpanQueue] != 1 || counts[obs.EvSpanInstall] != 1 ||
		counts[obs.EvSpanStatement] != 1 || counts[obs.EvSpanEpoch] != 3 {
		t.Fatalf("span timeline for trace-done = %v, want 1×queue, 1×install, 1×statement, 3×epoch", counts)
	}

	res, err = c2.Exec(`SELECT type FROM corgi_events WHERE trace_id = 'trace-done' ORDER BY seq`)
	if err != nil {
		t.Fatal(err)
	}
	var types []string
	for _, r := range res.Rows {
		types = append(types, r[0])
	}
	want := []string{obs.EvStatementStart, obs.EvJobQueued, obs.EvJobRunning,
		obs.EvJobDone, obs.EvStatementFinish}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("event timeline for trace-done = %v, want %v", types, want)
	}

	// The canceled job's terminal event carries its trace too.
	res, err = c2.Exec(`SELECT type FROM corgi_events WHERE trace_id = 'trace-live' AND type = 'job.canceled'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("job.canceled events for trace-live = %v, want exactly one", res.Rows)
	}
}

// TestMintedTraceVisible pins that a trace-unaware client's requests are
// still findable: the server mints "<session>-r<n>" traces and corgi_jobs
// always exposes them, even though the wire response omits them.
func TestMintedTraceVisible(t *testing.T) {
	srv := testServer(t, Config{})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.Train(`SELECT * FROM t TRAIN BY svm MODEL m2 WITH max_epoch_num=1, seed=7`, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trace != "" {
		t.Fatalf("wire status leaked minted trace %q", st.Trace)
	}
	res, err := c.Exec(fmt.Sprintf(`SELECT trace_id FROM corgi_jobs WHERE id = '%s'`, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][0], "-r") {
		t.Fatalf("corgi_jobs trace for untraced job = %v, want a minted <session>-r<n> id", res.Rows)
	}
}

// TestCorgiSessionsTable lists live connections with request counts.
func TestCorgiSessionsTable(t *testing.T) {
	srv := testServer(t, Config{})
	c1, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	res, err := c1.Exec(`SELECT id, remote, requests FROM corgi_sessions ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("corgi_sessions rows = %v, want 2 live sessions", res.Rows)
	}
	// The querying session has counted at least hello + this SELECT.
	found := false
	for _, r := range res.Rows {
		if r[2] >= "2" && r[1] != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("corgi_sessions rows = %v, want a session with >= 2 requests", res.Rows)
	}

	// Closing a connection removes its row.
	c2.Close()
	waitCondition(t, "closed session to drop out", func() bool {
		res, err := c1.Exec(`SELECT id FROM corgi_sessions`)
		if err != nil {
			t.Fatalf("SELECT corgi_sessions: %v", err)
		}
		return len(res.Rows) == 1
	})
}

// TestCorgiJobsPrunedSummaries pins the retention fix: a job the policy
// pruned still answers "what happened to it" through corgi_jobs (a
// terminal summary row with its trace) and a job.pruned event, while the
// wire status op keeps returning ERR_NOT_FOUND.
func TestCorgiJobsPrunedSummaries(t *testing.T) {
	srv := testServer(t, Config{RetainJobs: 1})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 1; i <= 3; i++ {
		sql := fmt.Sprintf(`SELECT * FROM t TRAIN BY svm MODEL p%d WITH max_epoch_num=1, seed=7`, i)
		resp, err := c.Do(Request{Op: "train", SQL: sql, Wait: true, Trace: fmt.Sprintf("prune-t%d", i)})
		if err != nil {
			t.Fatalf("train %d: %v", i, err)
		}
		if resp.Job.State != JobDone {
			t.Fatalf("train %d state = %s", i, resp.Job.State)
		}
	}

	// Submitting job 3 pruned job 1 (2 finished jobs > cap 1).
	res, err := c.Exec(`SELECT id, state, trace_id, pruned FROM corgi_jobs WHERE pruned = 'true'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no pruned-job summary rows in corgi_jobs")
	}
	r := res.Rows[0]
	if r[0] != "j1" || r[1] != string(JobDone) || r[2] != "prune-t1" {
		t.Fatalf("pruned summary = %v, want j1/done/prune-t1", r)
	}

	// The wire status op still answers ERR_NOT_FOUND for the pruned id.
	if _, err := c.Status("j1", false); wireErrCode(err) != ErrNotFound {
		t.Fatalf("status of pruned job: err %v, want %s", err, ErrNotFound)
	}

	// And the event ring recorded the pruning with the job's trace.
	res, err = c.Exec(`SELECT trace_id FROM corgi_events WHERE type = 'job.pruned'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || res.Rows[0][0] != "prune-t1" {
		t.Fatalf("job.pruned events = %v, want one with trace prune-t1", res.Rows)
	}
}

// TestCorgiReplicationAndPromoteGauges covers the replication system table
// on both roles and the Prometheus exposition across failover: the
// primary's registry exports repl gauges, the replica's own applied/lag
// gauges disappear from the exposition after PROMOTE, and corgi_replication
// renders zero rows on the promoted (now standalone) server.
func TestCorgiReplicationAndPromoteGauges(t *testing.T) {
	primSess := db.NewSession()
	if _, err := primSess.OpenWAL(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{replCreate, replBaseTrain} {
		if _, err := primSess.Exec(sql); err != nil {
			t.Fatalf("boot: %v", err)
		}
	}
	prim, err := New(Config{Addr: "127.0.0.1:0", Session: primSess, ReplicaListen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()

	repSess := db.NewSession()
	if _, err := repSess.OpenWAL(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	rep, err := New(Config{Addr: "127.0.0.1:0", Session: repSess, ReplicateFrom: prim.ReplicaAddr()})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	lsn := primSess.LastLSN()
	waitApplied(t, rep, lsn)

	// The primary's view: one connected replica, fully applied.
	pc, err := Dial(prim.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	want := fmt.Sprintf("%d", lsn)
	waitCondition(t, "replica row on primary", func() bool {
		res, err := pc.Exec(`SELECT role, remote, applied_lsn FROM corgi_replication`)
		if err != nil {
			t.Fatalf("SELECT corgi_replication: %v", err)
		}
		return len(res.Rows) == 1 && res.Rows[0][0] == "primary" &&
			res.Rows[0][1] != "" && res.Rows[0][2] == want
	})

	// The replica's view of itself.
	rc, err := Dial(rep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	res, err := rc.Exec(`SELECT role, remote, applied_lsn, lag_lsn FROM corgi_replication`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "replica" ||
		res.Rows[0][1] != prim.ReplicaAddr() || res.Rows[0][2] != want {
		t.Fatalf("corgi_replication on replica = %v, want replica row at lsn %s", res.Rows, want)
	}

	// Replica connect events landed on the primary's ring.
	res, err = pc.Exec(`SELECT type FROM corgi_events WHERE type = 'repl.connect'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("repl.connect events = %v, want one", res.Rows)
	}

	// Prometheus exposition before failover: repl gauges on both sides.
	expo := func(s *Server) string {
		var buf bytes.Buffer
		if err := s.reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if out := expo(prim); !strings.Contains(out, "corgipile_repl_lag_lsn") ||
		!strings.Contains(out, "corgipile_repl_replicas") {
		t.Fatalf("primary exposition missing repl gauges:\n%s", out)
	}
	waitCondition(t, "replica repl gauges", func() bool {
		out := expo(rep)
		return strings.Contains(out, "corgipile_repl_applied_lsn") &&
			strings.Contains(out, "corgipile_repl_lag_lsn")
	})

	// Failover. The promoted server retires its replica gauges so a scrape
	// can't read a stale lag, drops its replica row, and records the event.
	if _, err := rc.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	out := expo(rep)
	if strings.Contains(out, "corgipile_repl_applied_lsn") ||
		strings.Contains(out, "corgipile_repl_lag_lsn") {
		t.Fatalf("promoted replica still exports repl gauges:\n%s", out)
	}
	res, err = rc.Exec(`SELECT * FROM corgi_replication`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("corgi_replication after promote = %v, want no rows", res.Rows)
	}
	res, err = rc.Exec(`SELECT type, detail FROM corgi_events WHERE type = 'promote'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][1], "applied_lsn=") {
		t.Fatalf("promote events = %v, want one with applied_lsn detail", res.Rows)
	}
}

// TestWALGaugesAndProbes covers the telemetry satellites on a durable
// server: the WAL health gauges appear on /metrics, and /healthz + /readyz
// answer 200 while the WAL is healthy. The replica-lag readiness gate is
// checked through the probe directly (the HTTP rendering of a failing
// probe is pinned by the obs package's own test).
func TestWALGaugesAndProbes(t *testing.T) {
	sess := db.NewSession()
	if _, err := sess.OpenWAL(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Addr: "127.0.0.1:0", Session: sess, Telemetry: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.TelemetryURL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	waitCondition(t, "WAL gauges on /metrics", func() bool {
		_, body := get("/metrics")
		return strings.Contains(body, "corgipile_wal_size_bytes") &&
			strings.Contains(body, "corgipile_wal_last_lsn") &&
			strings.Contains(body, "corgipile_wal_checkpoint_age_seconds")
	})
	if code, body := get("/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Fatalf("/readyz = %d %q", code, body)
	}

	// The replica readiness gate: lag over the threshold fails the probe.
	srv.cfg.ReadyMaxLag = 3
	if err := srv.readyProbe(); err != nil {
		t.Fatalf("standalone server not ready: %v", err)
	}
	sess.SetReadOnly(true) // pose as a replica for the probe
	defer sess.SetReadOnly(false)
	srv.reg.SetGauge(obs.ReplLagLSN, 7)
	if err := srv.readyProbe(); err == nil || !strings.Contains(err.Error(), "lag 7") {
		t.Fatalf("lagging replica probe = %v, want lag error", err)
	}
	srv.reg.SetGauge(obs.ReplLagLSN, 2)
	if err := srv.readyProbe(); err != nil {
		t.Fatalf("caught-up replica probe = %v, want ready", err)
	}
}
