// Package serve implements corgiserved: a long-lived, multi-session
// training and prediction server over the in-DB ML stack — the serving
// plane the paper's PostgreSQL integration implies. Clients speak a
// newline-delimited JSON protocol (documented in docs/PROTOCOL.md) over
// TCP; TRAIN statements become queued background jobs with admission
// control and cancellation, while PREDICT statements are answered inline
// at high QPS from cached models and decoded tables.
//
// Concurrency discipline: one RWMutex guards the shared db.Session
// catalog. Statement execution is split so the lock is held only around
// catalog access — a TRAIN job prepares its plan under RLock, runs its
// epochs (the long part) with no lock at all, and installs the trained
// model under the write lock; PREDICTs take RLock for lookup and then
// evaluate lock-free over immutable snapshots. DDL takes the write lock.
package serve

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"corgipile/internal/db"
	"corgipile/internal/obs"
	"corgipile/internal/repl"
	"corgipile/internal/sqlparse"
	"corgipile/internal/storage"
)

// Config configures a server. The zero value of every field has a usable
// default; Addr "" listens on 127.0.0.1:0 (read the bound address back
// with Server.Addr).
type Config struct {
	// Addr is the listen address (host:port; port 0 picks a free port).
	Addr string
	// Workers is the number of concurrent TRAIN executors (default 2).
	// Each worker runs one job at a time; more workers trade per-job
	// latency for throughput on the shared simulated devices.
	Workers int
	// QueueDepth bounds the pending-job queue (default 8). A full queue
	// rejects new TRAINs with ERR_QUEUE_FULL — admission control, so a
	// burst degrades into fast rejections instead of unbounded memory.
	QueueDepth int
	// SessionMax caps one session's active (queued + running) jobs
	// (default 2); exceeding it rejects with ERR_SESSION_BUSY.
	SessionMax int
	// Telemetry, when non-empty, serves the obs HTTP plane on this address:
	// /metrics over the server registry, /run?job=<id> over each job's
	// private feed, /debug/pprof/.
	Telemetry string
	// RunRoot, when non-empty, writes per-job durable artifacts under
	// RunRoot/<job id>/ (manifest.json, epochs.jsonl).
	RunRoot string
	// RetainJobs caps how many finished (done/failed/canceled) jobs the
	// server keeps for status queries (default 64). Without a cap the job
	// map grows without bound on a long-lived server — every TRAIN ever
	// submitted stays resident along with its feed and metrics registry.
	// Active jobs are never pruned and don't count against the cap.
	RetainJobs int
	// RetainJobAge prunes finished jobs older than this even under the cap
	// (default 15m; negative disables age pruning).
	RetainJobAge time.Duration
	// Session, when non-nil, is the catalog to serve (e.g. preloaded with
	// tables); nil opens a fresh db.NewSession.
	Session *db.Session
	// ReplicaListen, when non-empty, serves the WAL-shipping replication
	// stream on this address (host:port; port 0 picks a free port). Requires
	// a WAL-backed Session. Read the bound address back with ReplicaAddr.
	ReplicaListen string
	// ReplicateFrom, when non-empty, boots this server as a read-only
	// replica of the primary at that replication address: the catalog
	// mirrors the primary's WAL, PREDICT and read-only SQL are served, and
	// mutating statements are rejected with ERR_READ_ONLY until PROMOTE.
	// Requires a WAL-backed Session.
	ReplicateFrom string
	// CheckpointEvery, when positive, compacts the WAL in the background at
	// this interval (same atomic-rename path as the CHECKPOINT statement).
	CheckpointEvery time.Duration
	// CheckpointBytes, when positive, compacts whenever the live log grows
	// past this size. Either trigger arms the background loop.
	CheckpointBytes int64
	// Events, when non-nil, is the event ring the server records into;
	// nil uses the session's ring or creates a fresh one. The ring backs
	// corgi_events/corgi_spans and costs nothing when nothing reads it.
	Events *obs.EventLog
	// SlowStatement, when positive, arms slow-statement detection:
	// statements slower than this get a companion "statement.slow" event.
	SlowStatement time.Duration
	// ReadyMaxLag is the replication lag (in LSNs) above which a replica
	// reports not-ready on /readyz (0 demands a fully caught-up replica).
	ReadyMaxLag uint64
	// SampleEvery, when positive, attaches a metrics History: every counter,
	// gauge, and histogram quantile of the server registry is sampled at
	// this interval into ring series with downsampling tiers, queryable via
	// corgi_metrics_history, /metrics/history, and corgitop. Off by default —
	// a server that never samples produces byte-identical passive traces.
	SampleEvery time.Duration
	// HistorySlots overrides the per-series ring capacity (default 256).
	HistorySlots int
	// Alerts are threshold rules the History evaluates on every sample;
	// transitions land in the event log and in corgi_alerts//alertz.
	// Ignored unless SampleEvery is set.
	Alerts []obs.AlertRule
}

// Server is a running corgiserved instance. Create one with New, stop it
// with Close; both are safe to call from any goroutine.
type Server struct {
	cfg     Config
	ln      net.Listener
	dbs     *db.Session
	reg     *obs.Registry
	tel     *obs.Server
	events  *obs.EventLog
	history *obs.History

	// catalog serializes db.Session catalog access: RLock for lookups
	// (predict, train prepare), Lock for mutations (DDL, model install).
	catalog sync.RWMutex

	// cache holds decoded tables for the lock-free predict path.
	cache predictCache

	queue chan *job

	mu       sync.Mutex
	jobs     map[string]*job
	jobOrder []string
	// pruned keeps a bounded summary of retention-pruned jobs so
	// corgi_jobs can still answer "what happened to j3" after the full
	// record is gone (the wire status op keeps returning ERR_NOT_FOUND).
	pruned   []prunedJob
	sessions map[string]*sessionInfo
	nextJob  int
	nextSess int
	closed   bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	conns   map[net.Conn]struct{}
	connsMu sync.Mutex

	// replMu guards the replication roles; they change on PROMOTE.
	replMu  sync.Mutex
	replica *repl.Replica
	primary *repl.Primary
	// primPtr mirrors primary for lock-free reads: the corgi_replication
	// table runs under the catalog read lock and must not take replMu
	// (PROMOTE holds replMu while taking the catalog write lock — the
	// reverse order would deadlock).
	primPtr  atomic.Pointer[repl.Primary]
	ckptStop chan struct{}
	ckptDone chan struct{}
}

// prunedJob is the summary corgi_jobs keeps for a retention-pruned job.
type prunedJob struct {
	id      string
	session string
	model   string
	state   JobState
	trace   string
}

// maxPrunedSummaries bounds the pruned-job summary list; the oldest
// summaries fall off first.
const maxPrunedSummaries = 256

// sessionInfo is one live client connection's entry in corgi_sessions.
type sessionInfo struct {
	id        string
	remote    string
	connected time.Time
	requests  atomic.Int64
}

// New starts a server on cfg.Addr and returns once the listener is bound
// and the workers are running.
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.SessionMax <= 0 {
		cfg.SessionMax = 2
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 64
	}
	if cfg.RetainJobAge == 0 {
		cfg.RetainJobAge = 15 * time.Minute
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen on %s: %w", cfg.Addr, err)
	}
	sess := cfg.Session
	if sess == nil {
		sess = db.NewSession()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		dbs:      sess,
		reg:      obs.New(),
		queue:    make(chan *job, cfg.QueueDepth),
		jobs:     make(map[string]*job),
		sessions: make(map[string]*sessionInfo),
		conns:    make(map[net.Conn]struct{}),
		ctx:      ctx,
		cancel:   cancel,
	}
	s.cache.tables = make(map[string]*cachedTable)
	// Event ring: prefer the config's, else the session's (a caller may
	// have attached one before handing the session over), else a fresh
	// default-size ring. The session records statement events into the
	// same ring, so corgi_events shows one coherent timeline.
	el := cfg.Events
	if el == nil {
		el = sess.Events()
	}
	if el == nil {
		el = obs.NewEventLog(0)
	}
	s.events = el
	sess.WithEvents(el)
	if cfg.SlowStatement > 0 {
		el.SetSlowThreshold(cfg.SlowStatement)
	}
	s.registerIntrospection()
	if cfg.SampleEvery > 0 {
		h := obs.NewHistory(obs.HistoryConfig{
			Interval: cfg.SampleEvery,
			Slots:    cfg.HistorySlots,
		}).WithEvents(el)
		for _, r := range cfg.Alerts {
			h.AddRule(r)
		}
		// The pre-sample hook refreshes the gauges only request handling
		// would otherwise update, so samples are never a tick stale.
		h.OnSample(s.refreshSampledGauges)
		sess.WithHistory(h)
		s.history = h
	}
	if cfg.Telemetry != "" || s.history != nil {
		// The shared registry aggregates device I/O across all jobs; each
		// job's own feed serves /run?job=<id>. Sampling needs the same
		// attachment — a history over an unattached registry is empty.
		s.dbs.WithMetrics(s.reg)
	}
	if cfg.Telemetry != "" {
		tel, err := obs.Serve(obs.ServeConfig{
			Addr:     cfg.Telemetry,
			Registry: s.reg,
			Feeds:    s.feedFor,
			Health:   func() error { return nil },
			Ready:    s.readyProbe,
			History:  s.history,
		})
		if err != nil {
			ln.Close()
			cancel()
			return nil, err
		}
		s.tel = tel
	}
	fail := func(err error) (*Server, error) {
		ln.Close()
		cancel()
		if s.tel != nil {
			s.tel.Close()
		}
		return nil, err
	}
	if cfg.ReplicateFrom != "" {
		if !sess.Durable() {
			return fail(fmt.Errorf("serve: -replicate-from requires a WAL-backed session (-wal)"))
		}
		// The catalog is read-only until PROMOTE; the replica applies the
		// primary's records under the catalog write lock so reads (PREDICT,
		// SHOW) never see a half-applied record.
		sess.SetReadOnly(true)
		rep, err := repl.StartReplica(repl.ReplicaConfig{
			Primary: cfg.ReplicateFrom,
			Session: sess,
			Locker:  &s.catalog,
			OnApply: func(rec storage.WALRecord) {
				if kind, name := db.RecordTarget(rec); kind == "table" {
					s.cache.invalidate(name)
				} else if kind == "model" {
					s.cache.invalidateModel(name)
				}
			},
			OnSnapshot: func() { s.cache.invalidate("") },
			Obs:        s.reg,
			Events:     s.events,
		})
		if err != nil {
			return fail(err)
		}
		s.replica = rep
	} else if cfg.ReplicaListen != "" {
		p, err := s.startPrimary()
		if err != nil {
			return fail(err)
		}
		s.primary = p
		s.primPtr.Store(p)
	}
	// Durable sessions always run the maintenance loop: it exports the
	// WAL gauges (size, last LSN, checkpoint age) every tick and compacts
	// only when a checkpoint trigger is armed.
	if sess.Durable() {
		s.ckptStop = make(chan struct{})
		s.ckptDone = make(chan struct{})
		go s.checkpointLoop()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	s.history.Start(s.reg)
	return s, nil
}

// refreshSampledGauges is the History's pre-sample hook: it recomputes the
// gauges that are otherwise only updated by request handling (job-state
// counts) or the maintenance tick (WAL health), so every sample reflects
// the instant it was taken. Runs on the sampler goroutine; takes s.mu only
// (never the catalog lock), so it cannot deadlock with query paths.
func (s *Server) refreshSampledGauges() {
	s.mu.Lock()
	running, queued := 0, 0
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.state {
		case JobRunning:
			running++
		case JobQueued:
			queued++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	s.reg.SetGauge(obs.ServeJobsRunning, float64(running))
	s.reg.SetGauge(obs.ServeJobsQueued, float64(queued))
	if s.dbs.Durable() {
		s.updateWALGauges()
	}
}

// startPrimary opens the replication listener over the shared catalog. The
// snapshot cutter runs under the catalog read lock: appends (which run
// under the write lock) are excluded, concurrent PREDICTs are not.
func (s *Server) startPrimary() (*repl.Primary, error) {
	if !s.dbs.Durable() {
		return nil, fmt.Errorf("serve: -replica-listen requires a WAL-backed session (-wal)")
	}
	return repl.StartPrimary(repl.PrimaryConfig{
		Addr:    s.cfg.ReplicaListen,
		Session: s.dbs,
		Locker:  s.catalog.RLocker(),
		Obs:     s.reg,
		Events:  s.events,
	})
}

// ReplicaAddr returns the bound replication-stream address ("" when the
// server is not publishing one).
func (s *Server) ReplicaAddr() string {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if s.primary == nil {
		return ""
	}
	return s.primary.Addr()
}

// checkpointLoop compacts the WAL in the background whenever the
// configured interval elapses or the live log outgrows the byte trigger.
// Compaction takes the catalog write lock briefly — the same path as the
// CHECKPOINT statement — so ingest observed before the checkpoint is
// exactly what recovery replays after it.
func (s *Server) checkpointLoop() {
	defer close(s.ckptDone)
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	s.updateWALGauges()
	armed := s.cfg.CheckpointEvery > 0 || s.cfg.CheckpointBytes > 0
	last := time.Now()
	for {
		select {
		case <-s.ckptStop:
			return
		case now := <-tick.C:
			s.updateWALGauges()
			if !armed {
				continue
			}
			due := s.cfg.CheckpointEvery > 0 && now.Sub(last) >= s.cfg.CheckpointEvery
			if !due && s.cfg.CheckpointBytes > 0 && s.dbs.WALSize() >= s.cfg.CheckpointBytes {
				due = true
			}
			if !due {
				continue
			}
			s.catalog.Lock()
			_, err := s.dbs.Checkpoint()
			s.catalog.Unlock()
			last = time.Now()
			if err == nil {
				s.reg.Inc(obs.ServeCheckpoints)
				s.updateWALGauges()
			}
		}
	}
}

// updateWALGauges exports the WAL health gauges scraped from /metrics:
// live log size, last durable LSN, and seconds since the last checkpoint
// committed (time since recovery when none has).
func (s *Server) updateWALGauges() {
	s.reg.SetGauge(obs.WALSizeBytes, float64(s.dbs.WALSize()))
	s.reg.SetGauge(obs.WALLastLSN, float64(s.dbs.LastLSN()))
	if age, ok := s.dbs.CheckpointAge(); ok {
		s.reg.SetGauge(obs.WALCheckpointAge, age.Seconds())
	}
}

// readyProbe implements /readyz: a replica is ready when its replication
// lag is within ReadyMaxLag; a primary (or standalone durable server) is
// ready while its WAL is not poisoned. In-memory servers are always
// ready.
func (s *Server) readyProbe() error {
	if s.dbs.ReadOnly() {
		lag := uint64(s.reg.Gauge(obs.ReplLagLSN))
		if lag > s.cfg.ReadyMaxLag {
			return fmt.Errorf("replica lag %d lsn exceeds ready-max-lag %d", lag, s.cfg.ReadyMaxLag)
		}
		return nil
	}
	if s.dbs.Durable() {
		if err := s.dbs.WAL().Poisoned(); err != nil {
			return fmt.Errorf("wal poisoned: %v", err)
		}
	}
	return nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// TelemetryURL returns the telemetry plane's base URL ("" when disabled).
func (s *Server) TelemetryURL() string { return s.tel.URL() }

// Close shuts the server down: the listener closes, every open connection
// is dropped, in-flight jobs are canceled, and Close blocks until all
// session handlers and workers have exited. Safe to call twice.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	// Stop the background maintainers and replication roles first: the
	// checkpoint loop and the replica both take the catalog lock, and the
	// primary hooks the session's WAL — all must be quiet before teardown.
	s.history.Stop()
	if s.ckptStop != nil {
		close(s.ckptStop)
		<-s.ckptDone
	}
	s.replMu.Lock()
	rep, prim := s.replica, s.primary
	s.replMu.Unlock()
	if rep != nil {
		rep.Close()
	}
	if prim != nil {
		prim.Close()
	}

	s.cancel()
	err := s.ln.Close()
	s.connsMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connsMu.Unlock()
	// Drain the queue so no worker blocks on it, then let workers observe
	// the canceled context.
	close(s.queue)
	s.wg.Wait()
	for _, j := range s.snapshotJobs() {
		j.finish(JobCanceled, nil, "")
	}
	if s.tel != nil {
		return s.tel.Close()
	}
	return err
}

// feedFor resolves a job id to its live feed (the telemetry ?job= hook).
func (s *Server) feedFor(id string) *obs.RunFeed {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j.feed
	}
	return nil
}

// pruneJobsLocked enforces the job retention policy: finished jobs past
// RetainJobAge are dropped, and when more than RetainJobs finished jobs
// remain, the oldest are dropped down to the cap. Active (queued/running)
// jobs are never touched, so admission accounting and in-flight status
// queries stay correct; a status query for a pruned id gets ERR_NOT_FOUND,
// same as an id that never existed. Caller holds s.mu.
func (s *Server) pruneJobsLocked(now time.Time) {
	finished := 0
	for _, id := range s.jobOrder {
		if !s.jobs[id].active() {
			finished++
		}
	}
	keep := s.jobOrder[:0]
	for _, id := range s.jobOrder {
		j := s.jobs[id]
		j.mu.Lock()
		terminal := j.state.Terminal()
		age := now.Sub(j.finishedAt)
		j.mu.Unlock()
		drop := terminal && (finished > s.cfg.RetainJobs ||
			(s.cfg.RetainJobAge > 0 && age > s.cfg.RetainJobAge))
		if drop {
			finished--
			j.mu.Lock()
			s.pruned = append(s.pruned, prunedJob{
				id: j.id, session: j.session, model: j.model,
				state: j.state, trace: j.trace,
			})
			j.mu.Unlock()
			if n := len(s.pruned); n > maxPrunedSummaries {
				s.pruned = append(s.pruned[:0], s.pruned[n-maxPrunedSummaries:]...)
			}
			s.events.Emit(obs.EvJobPruned, j.trace, "job="+id)
			delete(s.jobs, id)
		} else {
			keep = append(keep, id)
		}
	}
	s.jobOrder = keep
}

// snapshotJobs returns the jobs in submission order.
func (s *Server) snapshotJobs() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*job, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		out = append(out, s.jobs[id])
	}
	return out
}

// acceptLoop admits connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (shutdown)
		}
		s.connsMu.Lock()
		s.conns[conn] = struct{}{}
		s.connsMu.Unlock()
		si := &sessionInfo{remote: conn.RemoteAddr().String(), connected: time.Now()}
		s.mu.Lock()
		s.nextSess++
		si.id = fmt.Sprintf("s%d", s.nextSess)
		s.sessions[si.id] = si
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleSession(si, conn)
	}
}

// submitTrain applies admission control and enqueues a TRAIN job. It
// returns the job or an error response explaining the rejection.
func (s *Server) submitTrain(sessID string, st *sqlparse.Train, sql string, detach bool, parent context.Context, trace string, traceGiven bool) (*job, *Response) {
	if s.dbs.ReadOnly() {
		// Rejecting before admission keeps the queue clean: a replica's
		// TRAIN would only fail later at the model-install write.
		return nil, errResponse(ErrReadOnly,
			"server is a read-only replica (PROMOTE to enable training)")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errResponse(ErrShutdown, "server is shutting down")
	}
	s.pruneJobsLocked(time.Now())
	active := 0
	for _, j := range s.jobs {
		if j.session == sessID && j.active() {
			active++
		}
	}
	if active >= s.cfg.SessionMax {
		s.mu.Unlock()
		return nil, errResponse(ErrSessionBusy,
			"session %s already has %d active jobs (limit %d); wait or cancel one",
			sessID, active, s.cfg.SessionMax)
	}
	s.nextJob++
	id := fmt.Sprintf("j%d", s.nextJob)
	if detach {
		// Detached jobs outlive their session: derive from the server.
		parent = s.ctx
	}
	j := newJob(id, sessID, sql, st, detach, parent)
	j.trace, j.traceGiven = trace, traceGiven
	j.events = s.events
	select {
	case s.queue <- j:
	default:
		s.nextJob-- // the id was never visible; reuse it
		s.mu.Unlock()
		j.cancel()
		return nil, errResponse(ErrQueueFull,
			"train queue is full (%d pending); retry later", s.cfg.QueueDepth)
	}
	s.jobs[id] = j
	s.jobOrder = append(s.jobOrder, id)
	s.mu.Unlock()
	s.events.Emit(obs.EvJobQueued, trace, "job="+id+" model="+strings.ToLower(st.ModelName))
	return j, nil
}

// worker executes queued jobs until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j, ok := <-s.queue:
			if !ok {
				return
			}
			s.runJob(j)
			// Shed finished jobs as work completes, not only on the next
			// submission — an idle server must not hold churned jobs until
			// a client happens to reconnect.
			s.mu.Lock()
			s.pruneJobsLocked(time.Now())
			s.mu.Unlock()
		}
	}
}

// runJob drives one job through prepare → execute → install, holding the
// catalog lock only around the catalog phases.
func (s *Server) runJob(j *job) {
	if !j.tryStart() {
		return // canceled while queued
	}
	// The queue span covers submission to worker pickup; the running
	// event marks the transition the acceptance test polls for.
	s.events.RecordSpan(j.trace, obs.EvSpanQueue, j.created, time.Since(j.created))
	s.events.Emit(obs.EvJobRunning, j.trace, "job="+j.id)
	s.catalog.RLock()
	pt, err := s.dbs.PrepareTrain(j.st, db.TrainOptions{
		Ctx:     j.ctx,
		Obs:     j.reg,
		Feed:    j.feed,
		RunName: j.id + " train " + strings.ToLower(j.st.ModelName),
		Events:  s.events,
		Trace:   j.trace,
	})
	s.catalog.RUnlock()
	if err != nil {
		j.finish(JobFailed, nil, err.Error())
		return
	}
	j.mu.Lock()
	j.epochs = pt.Op().Epochs
	j.model = strings.ToLower(j.st.ModelName)
	j.blockBytes = pt.AvgBlockBytes()
	j.mu.Unlock()

	rows, err := pt.Execute()
	j.mu.Lock()
	j.breakdown = pt.Op().Breakdown
	j.mu.Unlock()
	if err != nil {
		if j.ctx.Err() != nil {
			j.finish(JobCanceled, nil, "")
		} else {
			j.finish(JobFailed, nil, err.Error())
		}
		s.writeArtifacts(j)
		return
	}

	isp := s.events.StartSpan(j.trace, obs.EvSpanInstall)
	s.catalog.Lock()
	entry, err := s.dbs.InstallModel(pt, rows)
	if err != nil {
		s.catalog.Unlock()
		isp.End()
		j.finish(JobFailed, nil, err.Error())
		s.writeArtifacts(j)
		return
	}
	s.cache.invalidateModel(entry.Name)
	s.catalog.Unlock()
	isp.End()

	j.mu.Lock()
	j.model = entry.Name
	j.mu.Unlock()
	j.finish(JobDone, rows, "")
	s.writeArtifacts(j)
}

// writeArtifacts persists the job's durable run directory when RunRoot is
// configured: manifest.json identifying the job and epochs.jsonl with the
// per-epoch cross-layer breakdown from the job's private registry.
func (s *Server) writeArtifacts(j *job) {
	if s.cfg.RunRoot == "" {
		return
	}
	rd, err := obs.OpenRunDir(filepath.Join(s.cfg.RunRoot, j.id))
	if err != nil {
		return // artifacts are best-effort; the job outcome already stands
	}
	st := j.status()
	_ = rd.WriteManifest(obs.Manifest{
		Tool: "corgiserved",
		Run:  j.id + " " + string(st.State) + " " + st.Model,
		Seed: int64(j.st.Params.Num("seed", 1)),
		Config: map[string]any{
			"sql":     j.sql,
			"session": j.session,
			"state":   st.State,
		},
	})
	_ = rd.WriteEpochs(j.breakdownRows())
	_ = rd.WriteMetrics(j.reg)
}
