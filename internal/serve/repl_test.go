package serve

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"corgipile/internal/db"
	"corgipile/internal/sqlparse"
	"corgipile/internal/storage"
)

// TestMain doubles as the crash-test child: when CORGI_SERVE_HELPER is
// set, the test binary boots a durable server from the environment and
// blocks until SIGKILLed. Everything it does goes through the public
// serve path, so killing it mid-request is a faithful primary crash.
func TestMain(m *testing.M) {
	if os.Getenv("CORGI_SERVE_HELPER") == "1" {
		runServeHelper()
		return
	}
	os.Exit(m.Run())
}

func runServeHelper() {
	dir := os.Getenv("CORGI_HELPER_DIR")
	session := db.NewSession()
	if _, err := session.OpenWAL(dir); err != nil {
		fmt.Fprintln(os.Stderr, "helper: wal:", err)
		os.Exit(1)
	}
	cfg := Config{Addr: "127.0.0.1:0", Session: session}
	if os.Getenv("CORGI_HELPER_REPL") == "1" {
		cfg.ReplicaListen = "127.0.0.1:0"
	}
	if v := os.Getenv("CORGI_HELPER_CKPT_BYTES"); v != "" {
		n, err := sqlparse.ParseSize(v)
		if err != nil {
			fmt.Fprintln(os.Stderr, "helper: ckpt bytes:", err)
			os.Exit(1)
		}
		cfg.CheckpointBytes = n
	}
	srv, err := New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	fmt.Printf("ADDR %s\n", srv.Addr())
	fmt.Printf("REPL %s\n", srv.ReplicaAddr())
	select {} // run until killed — the only exit is SIGKILL
}

// spawnHelper re-executes the test binary as a durable server child and
// returns its client address, its replication address, and the process
// for the test to kill.
func spawnHelper(t *testing.T, dir string, repl bool, ckptBytes string) (addr, replAddr string, proc *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"CORGI_SERVE_HELPER=1",
		"CORGI_HELPER_DIR="+dir,
	)
	if repl {
		cmd.Env = append(cmd.Env, "CORGI_HELPER_REPL=1")
	}
	if ckptBytes != "" {
		cmd.Env = append(cmd.Env, "CORGI_HELPER_CKPT_BYTES="+ckptBytes)
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("helper stdout: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("helper start: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(out)
	for lines := 0; lines < 2 && sc.Scan(); lines++ {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "ADDR "); ok {
			addr = rest
		}
		if rest, ok := strings.CutPrefix(line, "REPL "); ok {
			replAddr = rest
		}
	}
	if addr == "" {
		t.Fatal("helper never reported its address")
	}
	return addr, replAddr, cmd
}

// insertRows builds a deterministic INSERT of n rows for table t (susy
// schema: 18 features + label).
func insertRows(n, salt int) string {
	var b strings.Builder
	b.WriteString("INSERT INTO t VALUES ")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for f := 0; f < 18; f++ {
			fmt.Fprintf(&b, "%.4f, ", float64((salt*31+i)*7+f)/113.0)
		}
		if i%2 == 0 {
			b.WriteString("1)")
		} else {
			b.WriteString("-1)")
		}
	}
	return b.String()
}

const replCreate = `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.02, order='clustered') WITH device='ram', block_size=16KB`
const replBaseTrain = `SELECT * FROM t TRAIN BY svm MODEL base WITH max_epoch_num=2, seed=7, shuffle='corgipile'`
const replResumeTrain = `SELECT * FROM t TRAIN BY svm MODEL base2 WITH resume='base', max_epoch_num=2, seed=7, shuffle='corgipile'`

// waitApplied polls a replica server until its durable LSN reaches want.
func waitApplied(t *testing.T, srv *Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if srv.dbs.LastLSN() >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("replica stuck at lsn %d, want %d", srv.dbs.LastLSN(), want)
}

func wireErrCode(err error) string {
	var we *WireError
	if errors.As(err, &we) {
		return we.Code
	}
	return ""
}

// TestReplicaReadOnlyAndPromote runs primary and replica in-process: the
// replica serves reads and PREDICT, rejects mutations with ERR_READ_ONLY,
// refuses PROMOTE on the primary with ERR_NOT_REPLICA, and after PROMOTE
// accepts writes (idempotently).
func TestReplicaReadOnlyAndPromote(t *testing.T) {
	primSess := db.NewSession()
	if _, err := primSess.OpenWAL(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{replCreate, replBaseTrain} {
		if _, err := primSess.Exec(sql); err != nil {
			t.Fatalf("boot: %v", err)
		}
	}
	prim, err := New(Config{Addr: "127.0.0.1:0", Session: primSess, ReplicaListen: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("primary New: %v", err)
	}
	defer prim.Close()
	if prim.ReplicaAddr() == "" {
		t.Fatal("primary has no replication address")
	}

	repSess := db.NewSession()
	if _, err := repSess.OpenWAL(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	rep, err := New(Config{Addr: "127.0.0.1:0", Session: repSess, ReplicateFrom: prim.ReplicaAddr()})
	if err != nil {
		t.Fatalf("replica New: %v", err)
	}
	defer rep.Close()
	waitApplied(t, rep, primSess.LastLSN())

	rc, err := Dial(rep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	// Mutations are rejected with the dedicated code.
	if _, err := rc.Exec(insertRows(3, 0)); wireErrCode(err) != ErrReadOnly {
		t.Fatalf("INSERT on replica: err %v, want %s", err, ErrReadOnly)
	}
	if _, err := rc.Train(replBaseTrain, true, false); wireErrCode(err) != ErrReadOnly {
		t.Fatalf("TRAIN on replica: err %v, want %s", err, ErrReadOnly)
	}
	// Reads and the cached predict path still work.
	if _, err := rc.Exec("SHOW MODELS"); err != nil {
		t.Fatalf("SHOW MODELS on replica: %v", err)
	}
	if resp, err := rc.Predict("SELECT * FROM t PREDICT BY base LIMIT 2"); err != nil || len(resp.Rows) != 2 {
		t.Fatalf("PREDICT on replica: %v (%d rows)", err, len(resp.Rows))
	}

	// PROMOTE on the primary is refused.
	pc, err := Dial(prim.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if _, err := pc.Promote(); wireErrCode(err) != ErrNotReplica {
		t.Fatalf("PROMOTE on primary: err %v, want %s", err, ErrNotReplica)
	}

	// PROMOTE the replica — via the SQL spelling, to cover that route.
	resp, err := rc.Exec("PROMOTE")
	if err != nil {
		t.Fatalf("PROMOTE: %v", err)
	}
	if !strings.Contains(resp.Message, "promoted") {
		t.Fatalf("PROMOTE message = %q", resp.Message)
	}
	if _, err := rc.Promote(); err != nil {
		t.Fatalf("second PROMOTE not idempotent: %v", err)
	}
	if _, err := rc.Exec(insertRows(3, 1)); err != nil {
		t.Fatalf("INSERT after promote: %v", err)
	}
	if _, err := rc.Train(`SELECT * FROM t TRAIN BY svm MODEL after WITH max_epoch_num=1, seed=3`, true, false); err != nil {
		t.Fatalf("TRAIN after promote: %v", err)
	}
}

// TestFailoverPromoteDeterministic is the end-to-end failover guarantee:
// the primary (a separate process) is SIGKILLed mid-ingest, the replica is
// promoted, and TRAIN ... resume on the promoted replica produces weights
// bit-identical to single-node crash recovery of the primary's directory
// truncated at the replica's applied LSN — promotion IS crash recovery.
func TestFailoverPromoteDeterministic(t *testing.T) {
	primDir := t.TempDir()
	addr, replAddr, child := spawnHelper(t, primDir, true, "")

	repSess := db.NewSession()
	if _, err := repSess.OpenWAL(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	rep, err := New(Config{Addr: "127.0.0.1:0", Session: repSess, ReplicateFrom: replAddr})
	if err != nil {
		t.Fatalf("replica New: %v", err)
	}
	defer rep.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(replCreate); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.Train(replBaseTrain, true, false); err != nil {
		t.Fatalf("base train: %v", err)
	}
	// One verified pre-storm INSERT: the resumed train needs at least one
	// replicated block beyond the base model's frontier.
	if _, err := c.Exec(insertRows(10, 99)); err != nil {
		t.Fatalf("pre-storm insert: %v", err)
	}

	// The storm: serial acked INSERTs until the primary dies under us.
	var acked atomic.Int64
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		sc, err := Dial(addr)
		if err != nil {
			return
		}
		defer sc.Close()
		for i := 0; i < 10000; i++ {
			if _, err := sc.Exec(insertRows(10, i)); err != nil {
				return
			}
			acked.Add(1)
		}
	}()
	for acked.Load() < 20 {
		time.Sleep(time.Millisecond)
	}
	child.Process.Kill() // SIGKILL mid-INSERT: no flush, no goodbye
	<-stormDone

	// Let the replica notice the dead primary and settle, then promote.
	var settled uint64
	for i := 0; i < 50; i++ {
		now := rep.dbs.LastLSN()
		if now == settled && now > 0 {
			break
		}
		settled = now
		time.Sleep(50 * time.Millisecond)
	}
	rc, err := Dial(rep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	resp, err := rc.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	applied := repSess.LastLSN()
	if !strings.Contains(resp.Message, fmt.Sprintf("lsn %d", applied)) {
		t.Fatalf("promote message %q does not report lsn %d", resp.Message, applied)
	}

	// Single-node crash recovery of the same history: copy the primary's
	// log truncated at the replica's applied LSN. Any boundary cut of the
	// unacknowledged tail is a legitimate crash outcome, so this directory
	// is exactly "the primary, had it crashed at what the replica saw".
	child.Wait()
	soloDir := t.TempDir()
	buf, err := os.ReadFile(db.WALPath(primDir))
	if err != nil {
		t.Fatalf("read primary log: %v", err)
	}
	cut := storage.WALPrefixLen(buf, applied)
	if err := os.WriteFile(db.WALPath(soloDir), buf[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	if ck, err := os.ReadFile(db.CheckpointPath(primDir)); err == nil {
		if err := os.WriteFile(db.CheckpointPath(soloDir), ck, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	soloSess := db.NewSession()
	if _, err := soloSess.OpenWAL(soloDir); err != nil {
		t.Fatalf("solo recovery: %v", err)
	}
	defer soloSess.Close()

	// Same catalog on both sides of the comparison.
	rep.catalog.RLock()
	rt, _ := repSess.Table("t")
	repTuples := rt.Table.NumTuples()
	rep.catalog.RUnlock()
	st, ok := soloSess.Table("t")
	if !ok || st.Table.NumTuples() != repTuples {
		t.Fatalf("catalogs diverge: solo %v tuples, replica %d", st, repTuples)
	}

	// The resumed train must be bit-identical.
	if _, err := rc.Train(replResumeTrain, true, false); err != nil {
		t.Fatalf("resume train on promoted replica: %v", err)
	}
	if _, err := soloSess.Exec(replResumeTrain); err != nil {
		t.Fatalf("resume train on solo recovery: %v", err)
	}
	rep.catalog.RLock()
	rm, ok := repSess.Model("base2")
	rep.catalog.RUnlock()
	if !ok {
		t.Fatal("promoted replica lost base2")
	}
	sm, ok := soloSess.Model("base2")
	if !ok {
		t.Fatal("solo recovery lost base2")
	}
	if len(rm.W) == 0 || len(rm.W) != len(sm.W) {
		t.Fatalf("weight lengths: replica %d, solo %d", len(rm.W), len(sm.W))
	}
	for i := range rm.W {
		if rm.W[i] != sm.W[i] {
			t.Fatalf("weights diverge at [%d]: replica %v, solo %v", i, rm.W[i], sm.W[i])
		}
	}

	// The promoted replica is a writable primary.
	if _, err := rc.Exec(insertRows(5, 7)); err != nil {
		t.Fatalf("insert after failover: %v", err)
	}
}

// TestAutoCheckpointSurvivesCrash runs a child server with a tiny byte
// trigger so background compaction races live ingest, SIGKILLs it
// mid-storm, and asserts recovery: every acknowledged INSERT survives, at
// most one unacknowledged statement's rows appear, and a checkpoint
// actually happened.
func TestAutoCheckpointSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	addr, _, child := spawnHelper(t, dir, false, "4KB")

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(replCreate); err != nil {
		t.Fatalf("create: %v", err)
	}
	base := 0
	{
		// Count the synthetic table's seed tuples once.
		resp, err := c.Exec("SHOW TABLES")
		if err != nil {
			t.Fatalf("show tables: %v", err)
		}
		for _, row := range resp.Rows {
			if len(row) >= 2 && row[0] == "t" {
				fmt.Sscanf(row[1], "%d", &base)
			}
		}
		if base == 0 {
			t.Fatal("could not read seed tuple count from SHOW TABLES")
		}
	}

	// Ingest until at least one background compaction has landed, then a
	// little more so the kill hits ingest-after-checkpoint.
	const rowsPer = 10
	acked := 0
	sawCkpt := false
	for i := 0; i < 2000; i++ {
		if _, err := c.Exec(insertRows(rowsPer, i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		acked++
		if !sawCkpt {
			if _, err := os.Stat(db.CheckpointPath(dir)); err == nil {
				sawCkpt = true
				// A few more acked statements land in the post-checkpoint tail.
				for j := 0; j < 5; j++ {
					if _, err := c.Exec(insertRows(rowsPer, 10000+j)); err != nil {
						t.Fatalf("tail insert: %v", err)
					}
					acked++
				}
				break
			}
		}
	}
	if !sawCkpt {
		t.Fatal("background checkpoint never happened")
	}
	child.Process.Kill()
	child.Wait()

	sess := db.NewSession()
	if _, err := sess.OpenWAL(dir); err != nil {
		t.Fatalf("recovery after crash during compaction: %v", err)
	}
	defer sess.Close()
	ent, ok := sess.Table("t")
	if !ok {
		t.Fatal("table t lost")
	}
	got := ent.Table.NumTuples()
	min := base + acked*rowsPer
	if got < min || got > min+rowsPer {
		t.Fatalf("recovered %d tuples, want in [%d, %d]", got, min, min+rowsPer)
	}
}
