package serve

import "fmt"

// This file defines the wire protocol — the single source of truth for
// docs/PROTOCOL.md. Framing is newline-delimited JSON: each request is one
// JSON object on one line, and each request produces exactly one JSON
// response on one line, in order. There are no unsolicited server pushes,
// so a scripted transcript replays deterministically.

// ProtocolVersion is the wire-protocol revision reported by HELLO.
const ProtocolVersion = 1

// ServerName identifies the server implementation in HELLO responses.
const ServerName = "corgiserved/1"

// MaxLineBytes bounds one request line (1 MiB). Longer lines close the
// connection — a framing violation, not a recoverable request error.
const MaxLineBytes = 1 << 20

// Request is one client message. Op selects the operation; the remaining
// fields apply to the ops that document them.
type Request struct {
	// Op is one of "hello", "sql", "train", "predict", "cancel", "status",
	// "promote", "quit".
	Op string `json:"op"`
	// Client is a free-form client identification string (HELLO).
	Client string `json:"client,omitempty"`
	// SQL carries the statement text for sql/train/predict.
	SQL string `json:"sql,omitempty"`
	// Job names the target job for cancel/status.
	Job string `json:"job,omitempty"`
	// Wait, on train, blocks the response until the job reaches a terminal
	// state; on cancel/status it blocks until the named job does.
	Wait bool `json:"wait,omitempty"`
	// Detach, on train, unbinds the job's lifetime from this session: the
	// job keeps running after the connection closes. Non-detached jobs are
	// canceled when their session disconnects.
	Detach bool `json:"detach,omitempty"`
	// Trace, when set, is a client-chosen trace ID for this request. The
	// server stamps it on every event and span the request causes and
	// echoes it in the response. When empty the server mints one
	// ("<session>-r<n>") internally but does not echo it, so transcripts
	// from trace-unaware clients are unchanged.
	Trace string `json:"trace,omitempty"`
	// Stats, on status, asks for per-job resource accounting (JobStatus
	// .Stats). Opt-in: the stats block contains wall-clock figures, so
	// clients that never ask keep byte-stable transcripts.
	Stats bool `json:"stats,omitempty"`
}

// Response is one server message. Exactly one is written per request.
type Response struct {
	// OK distinguishes success from error responses.
	OK bool `json:"ok"`
	// Type is "hello", "result", "job", "status", "bye", or "error".
	Type string `json:"type"`
	// Server, Protocol and Session are set on hello responses.
	Server   string `json:"server,omitempty"`
	Protocol int    `json:"protocol,omitempty"`
	Session  string `json:"session,omitempty"`
	// Columns/Rows/Message carry tabular statement results (type "result").
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	Message string     `json:"message,omitempty"`
	// Job carries a single job's status (type "job").
	Job *JobStatus `json:"job,omitempty"`
	// Jobs carries the full job table (type "status"), ordered by job id.
	Jobs []JobStatus `json:"jobs,omitempty"`
	// Error carries the failure (type "error").
	Error *WireError `json:"error,omitempty"`
	// Trace echoes the request's trace ID — only when the client supplied
	// one, so trace-unaware transcripts replay byte-identically.
	Trace string `json:"trace,omitempty"`
}

// WireError is the protocol's error payload.
type WireError struct {
	// Code is a stable machine-readable identifier (the ERR_* constants).
	Code string `json:"code"`
	// Message is a human-readable description.
	Message string `json:"message"`
}

// Error implements the error interface so wire errors flow through Go
// error handling on the client side.
func (e *WireError) Error() string { return e.Code + ": " + e.Message }

// Protocol error codes. Codes are stable API; messages are not.
const (
	// ErrParse: the SQL text did not parse.
	ErrParse = "ERR_PARSE"
	// ErrBadRequest: the request line was not valid JSON, or a required
	// field is missing or of the wrong statement type.
	ErrBadRequest = "ERR_BAD_REQUEST"
	// ErrUnknownOp: the op field names no operation.
	ErrUnknownOp = "ERR_UNKNOWN_OP"
	// ErrQueueFull: the TRAIN job queue is at capacity (admission control).
	ErrQueueFull = "ERR_QUEUE_FULL"
	// ErrSessionBusy: this session already has its maximum number of
	// active (queued or running) jobs.
	ErrSessionBusy = "ERR_SESSION_BUSY"
	// ErrNotFound: the named job, table, or model does not exist.
	ErrNotFound = "ERR_NOT_FOUND"
	// ErrExec: the statement failed while executing.
	ErrExec = "ERR_EXEC"
	// ErrShutdown: the server is shutting down and accepts no new work.
	ErrShutdown = "ERR_SHUTDOWN"
	// ErrReadOnly: the server is a read-only replica; mutating statements
	// (DDL, INSERT, TRAIN, ...) are rejected until PROMOTE.
	ErrReadOnly = "ERR_READ_ONLY"
	// ErrNotReplica: PROMOTE was sent to a server that is not a replica.
	ErrNotReplica = "ERR_NOT_REPLICA"
)

// JobState is a training job's lifecycle state. The machine is
//
//	queued ──▶ running ──▶ done
//	   │          │  └────▶ failed
//	   └──────────┴───────▶ canceled
//
// queued → canceled happens when a CANCEL (or session disconnect) lands
// before a worker picks the job up; running → canceled when the canceled
// context stops an in-flight epoch. Terminal states never change.
type JobState string

// Job lifecycle states.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobStatus is the wire representation of one training job. Progress
// fields (Epoch, Loss) are reported for running and done jobs; canceled
// jobs report only identity and state, so scripted transcripts stay
// deterministic regardless of where the cancel landed.
type JobStatus struct {
	// ID is the job identifier ("j1", "j2", ...).
	ID string `json:"id"`
	// Session is the submitting session's identifier.
	Session string `json:"session,omitempty"`
	// Model is the catalog name the trained model was (or will be) stored
	// under; empty until known and for canceled jobs.
	Model string `json:"model,omitempty"`
	// State is the lifecycle state at response time.
	State JobState `json:"state"`
	// Epoch is the last completed epoch; Epochs the configured total.
	// Omitted for queued and canceled jobs.
	Epoch  int `json:"epoch,omitempty"`
	Epochs int `json:"epochs,omitempty"`
	// Loss is the mean streaming loss of the last completed epoch, rounded
	// to six decimals for stable transcripts. Omitted unless done.
	Loss float64 `json:"loss,omitempty"`
	// Error is the failure message for failed jobs.
	Error string `json:"error,omitempty"`
	// Trace is the trace ID of the request that submitted the job — set
	// only when the submitter supplied one, mirroring Response.Trace.
	Trace string `json:"trace,omitempty"`
	// Stats is the job's resource accounting, present only when the status
	// request set stats=true.
	Stats *JobStats `json:"stats,omitempty"`
}

// JobStats is one job's resource accounting, reported on status responses
// with stats=true and in the corgi_job_stats system table. Figures come
// from the job's private metrics registry, so concurrent jobs never
// cross-contaminate.
type JobStats struct {
	// QueueWaitMs is the time from submission to worker pickup (for jobs
	// still queued: time waited so far).
	QueueWaitMs float64 `json:"queue_wait_ms"`
	// WallMs is the execution wall time: worker pickup to terminal state
	// (for running jobs: elapsed so far). Zero while queued.
	WallMs float64 `json:"wall_ms,omitempty"`
	// CPUMs is the simulated gradient-compute time in milliseconds — the
	// job's share of the sgd.grad_ns cost-model counter.
	CPUMs float64 `json:"cpu_ms,omitempty"`
	// BytesRead estimates table bytes pulled through the shuffle: blocks
	// read × the source table's mean block size (per-block device I/O is
	// accounted on the shared session registry, not the job's).
	BytesRead int64 `json:"bytes_read,omitempty"`
	// Tuples is the number of tuples the SGD operator consumed.
	Tuples int64 `json:"tuples,omitempty"`
	// Blocks is the number of blocks the shuffle pulled into buffers.
	Blocks int64 `json:"blocks,omitempty"`
	// PeakBufferOccupancy is the high-water filled fraction of the shuffle
	// buffer budget (0 when the strategy buffers nothing).
	PeakBufferOccupancy float64 `json:"peak_buffer_occupancy,omitempty"`
}

// errResponse builds an error response.
func errResponse(code, format string, args ...any) *Response {
	return &Response{
		OK:    false,
		Type:  "error",
		Error: &WireError{Code: code, Message: fmt.Sprintf(format, args...)},
	}
}
