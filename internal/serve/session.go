package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"corgipile/internal/db"
	"corgipile/internal/obs"
	"corgipile/internal/sqlparse"
)

// handleSession owns one client connection: it reads newline-delimited
// JSON requests, answers each with exactly one response line (in request
// order — the protocol has no pipelined or unsolicited replies), and on
// disconnect cancels every non-detached job the session still owns.
func (s *Server) handleSession(si *sessionInfo, conn net.Conn) {
	defer s.wg.Done()
	id := si.id
	// sessCtx parents the session's non-detached jobs, so tearing the
	// connection down cancels them even mid-epoch.
	sessCtx, cancel := context.WithCancel(s.ctx)
	defer func() {
		cancel()
		conn.Close()
		s.connsMu.Lock()
		delete(s.conns, conn)
		s.connsMu.Unlock()
		s.mu.Lock()
		delete(s.sessions, id)
		s.mu.Unlock()
		// Complete the queued → canceled transition for jobs a worker has
		// not picked up yet; running ones stop via the context.
		for _, j := range s.snapshotJobs() {
			if j.session == id && !j.detach && j.active() {
				j.requestCancel()
			}
		}
	}()

	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), MaxLineBytes)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var req Request
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			if enc.Encode(errResponse(ErrBadRequest, "request is not valid JSON: %v", err)) != nil {
				return
			}
			continue
		}
		// Every request gets a trace ID: the client's when supplied, a
		// minted "<session>-r<n>" otherwise. Minted IDs are visible only
		// through the introspection tables — the response echoes a trace
		// only when the client chose one, so trace-unaware transcripts
		// replay byte-for-byte.
		reqN := si.requests.Add(1)
		trace, traceGiven := req.Trace, req.Trace != ""
		if !traceGiven {
			trace = fmt.Sprintf("%s-r%d", id, reqN)
		}
		resp, quit := s.dispatch(id, sessCtx, &req, trace, traceGiven)
		if traceGiven {
			resp.Trace = trace
		}
		if enc.Encode(resp) != nil {
			return
		}
		if quit {
			return
		}
	}
	// Scanner stops on EOF, connection error, or an over-long line; all
	// three end the session the same way.
}

// dispatch routes one request. The second return value asks the caller to
// close the connection after writing the response.
func (s *Server) dispatch(sessID string, sessCtx context.Context, req *Request, trace string, traceGiven bool) (*Response, bool) {
	switch req.Op {
	case "hello":
		return &Response{
			OK:       true,
			Type:     "hello",
			Server:   ServerName,
			Protocol: ProtocolVersion,
			Session:  sessID,
		}, false
	case "sql", "train", "predict":
		// Statement-bearing ops get a wall-clock "statement" span — the
		// root of the request's timeline in corgi_spans.
		esp := s.events.StartSpan(trace, obs.EvSpanStatement)
		var resp *Response
		switch req.Op {
		case "sql":
			resp = s.execSQL(sessID, sessCtx, req, trace, traceGiven)
		case "train":
			resp = s.execTrainOp(sessID, sessCtx, req, trace, traceGiven)
		default:
			resp = s.execPredictOp(req, trace)
		}
		esp.End()
		return resp, false
	case "cancel":
		return s.execCancel(sessCtx, req), false
	case "status":
		return s.execStatus(sessCtx, req), false
	case "promote":
		return s.execPromote(trace), false
	case "quit":
		return &Response{OK: true, Type: "bye"}, true
	default:
		return errResponse(ErrUnknownOp, "unknown op %q", req.Op), false
	}
}

// execSQL parses a statement and routes it by kind: TRAIN becomes a
// background job, PREDICT takes the cached read path, and everything else
// (DDL, SHOW, EXPLAIN, SAVE/LOAD/DROP) executes inline under the catalog
// write lock.
func (s *Server) execSQL(sessID string, sessCtx context.Context, req *Request, trace string, traceGiven bool) *Response {
	st, err := sqlparse.Parse(req.SQL)
	if err != nil {
		return errResponse(ErrParse, "%v", err)
	}
	switch st := st.(type) {
	case *sqlparse.Train:
		return s.submitAndReply(sessID, sessCtx, st, req, trace, traceGiven)
	case *sqlparse.Predict:
		return s.execPredictTraced(st, trace)
	case *sqlparse.Select:
		return s.execSelect(st, trace)
	case *sqlparse.Promote:
		// PROMOTE must stop the replication stream, not just clear the
		// session's read-only latch, so it never takes the inline path.
		return s.execPromote(trace)
	default:
		return s.execInline(st, trace)
	}
}

// execTrainOp is op "train": like op "sql" but the statement must be TRAIN.
func (s *Server) execTrainOp(sessID string, sessCtx context.Context, req *Request, trace string, traceGiven bool) *Response {
	st, err := sqlparse.Parse(req.SQL)
	if err != nil {
		return errResponse(ErrParse, "%v", err)
	}
	tr, ok := st.(*sqlparse.Train)
	if !ok {
		return errResponse(ErrBadRequest, "op train requires a TRAIN statement, got %s", stmtKind(st))
	}
	return s.submitAndReply(sessID, sessCtx, tr, req, trace, traceGiven)
}

// execPredictOp is op "predict": like op "sql" but the statement must be
// PREDICT.
func (s *Server) execPredictOp(req *Request, trace string) *Response {
	st, err := sqlparse.Parse(req.SQL)
	if err != nil {
		return errResponse(ErrParse, "%v", err)
	}
	pr, ok := st.(*sqlparse.Predict)
	if !ok {
		return errResponse(ErrBadRequest, "op predict requires a PREDICT statement, got %s", stmtKind(st))
	}
	return s.execPredictTraced(pr, trace)
}

// execPredictTraced wraps the cached predict path (which never touches
// the db session's statement executor) with statement events and the
// serve.predict latency histogram — the series the history plane samples
// as serve.predict_p50/_p95/_p99.
func (s *Server) execPredictTraced(st *sqlparse.Predict, trace string) *Response {
	return s.emitStatement(trace, "predict "+strings.ToLower(st.Table), func() *Response {
		start := time.Now()
		resp := s.execPredict(st)
		s.reg.Observe(obs.ServePredict, time.Since(start))
		return resp
	})
}

// execSelect answers a general SELECT under the catalog read lock —
// system tables read live state, base tables decode their snapshot; no
// mutation happens on this path.
func (s *Server) execSelect(st *sqlparse.Select, trace string) *Response {
	s.catalog.RLock()
	res, err := s.dbs.ExecStatementT(st, trace)
	s.catalog.RUnlock()
	if err != nil {
		return errResponse(ErrExec, "%v", err)
	}
	return &Response{
		OK:      true,
		Type:    "result",
		Columns: res.Columns,
		Rows:    res.Rows,
		Message: res.Message,
	}
}

// emitStatement brackets fn with statement.start/finish events (and a
// statement.slow companion past the armed threshold), recording the
// response's error code on failure.
func (s *Server) emitStatement(trace, kind string, fn func() *Response) *Response {
	s.events.Emit(obs.EvStatementStart, trace, kind)
	start := time.Now()
	resp := fn()
	d := time.Since(start)
	ev := obs.Event{Type: obs.EvStatementFinish, Trace: trace, Detail: kind,
		DurMs: float64(d.Nanoseconds()) / 1e6}
	if resp != nil && !resp.OK && resp.Error != nil {
		ev.Err = resp.Error.Code
	}
	s.events.Record(ev)
	if s.events.Slow(d) {
		s.events.Record(obs.Event{Type: obs.EvStatementSlow, Trace: trace,
			Detail: kind, DurMs: float64(d.Nanoseconds()) / 1e6})
	}
	return resp
}

// submitAndReply enqueues a TRAIN job and acknowledges it. The ack always
// reports state "queued" — never a racy peek at whether a worker already
// started it — so transcripts are deterministic. With wait=true the reply
// is deferred until the job reaches a terminal state.
func (s *Server) submitAndReply(sessID string, sessCtx context.Context, st *sqlparse.Train, req *Request, trace string, traceGiven bool) *Response {
	return s.emitStatement(trace, "train "+strings.ToLower(st.Table), func() *Response {
		return s.submitAndReplyInner(sessID, sessCtx, st, req, trace, traceGiven)
	})
}

func (s *Server) submitAndReplyInner(sessID string, sessCtx context.Context, st *sqlparse.Train, req *Request, trace string, traceGiven bool) *Response {
	j, errResp := s.submitTrain(sessID, st, req.SQL, req.Detach, sessCtx, trace, traceGiven)
	if errResp != nil {
		return errResp
	}
	if req.Wait {
		if r := s.waitJob(j, sessCtx); r != nil {
			return r
		}
		return &Response{OK: true, Type: "job", Job: ptr(j.status())}
	}
	ack := &JobStatus{
		ID:      j.id,
		Session: sessID,
		Model:   strings.ToLower(st.ModelName),
		State:   JobQueued,
	}
	if traceGiven {
		ack.Trace = trace
	}
	return &Response{OK: true, Type: "job", Job: ack}
}

// execCancel cancels a job by id. Any session may cancel any job (an
// operator connection can reap another client's runaway TRAIN); with
// wait=true the reply waits for the job to actually reach a terminal
// state rather than reporting the in-flight snapshot.
func (s *Server) execCancel(sessCtx context.Context, req *Request) *Response {
	s.mu.Lock()
	j, ok := s.jobs[req.Job]
	s.mu.Unlock()
	if !ok {
		return errResponse(ErrNotFound, "unknown job %q", req.Job)
	}
	j.requestCancel()
	if req.Wait {
		if r := s.waitJob(j, sessCtx); r != nil {
			return r
		}
	}
	return &Response{OK: true, Type: "job", Job: ptr(j.status())}
}

// execStatus reports one job (req.Job set; wait=true blocks until it is
// terminal) or the whole job table in submission order. With stats=true
// each status carries the job's resource accounting.
func (s *Server) execStatus(sessCtx context.Context, req *Request) *Response {
	if req.Job != "" {
		s.mu.Lock()
		j, ok := s.jobs[req.Job]
		s.mu.Unlock()
		if !ok {
			return errResponse(ErrNotFound, "unknown job %q", req.Job)
		}
		if req.Wait {
			if r := s.waitJob(j, sessCtx); r != nil {
				return r
			}
		}
		return &Response{OK: true, Type: "job", Job: ptr(j.statusWith(req.Stats))}
	}
	jobs := s.snapshotJobs()
	resp := &Response{OK: true, Type: "status", Jobs: make([]JobStatus, 0, len(jobs))}
	for _, j := range jobs {
		resp.Jobs = append(resp.Jobs, j.statusWith(req.Stats))
	}
	return resp
}

// execInline runs a non-TRAIN, non-PREDICT statement under the catalog
// write lock and invalidates any cached snapshot the statement replaced.
// The db layer emits the statement start/finish events, stamped with the
// request's trace.
func (s *Server) execInline(st sqlparse.Statement, trace string) *Response {
	s.catalog.Lock()
	res, err := s.dbs.ExecStatementT(st, trace)
	switch st := st.(type) {
	case *sqlparse.CreateTable:
		s.cache.invalidate(strings.ToLower(st.Name))
	case *sqlparse.Drop:
		if st.What == "table" {
			s.cache.invalidate(strings.ToLower(st.Name))
		}
	case *sqlparse.Insert:
		// Ingestion changes the table's tuples: the cached predict snapshot
		// is stale the moment the append lands.
		s.cache.invalidate(strings.ToLower(st.Table))
	case *sqlparse.LoadTable:
		s.cache.invalidate(strings.ToLower(st.Table))
	}
	s.catalog.Unlock()
	if err != nil {
		if errors.Is(err, db.ErrReadOnly) {
			return errResponse(ErrReadOnly, "%v", err)
		}
		return errResponse(ErrExec, "%v", err)
	}
	return &Response{
		OK:      true,
		Type:    "result",
		Columns: res.Columns,
		Rows:    res.Rows,
		Message: res.Message,
	}
}

// execPromote turns a replica server into a writable primary: the
// replication stream stops at a durable record boundary, the read-only
// latch clears, and — when ReplicaListen is configured — the promoted
// server starts publishing its own replication stream. Idempotent: a
// second PROMOTE reports the same applied LSN.
func (s *Server) execPromote(trace string) *Response {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if s.replica == nil {
		return errResponse(ErrNotReplica, "this server is not a replica; nothing to promote")
	}
	applied, err := s.replica.Promote()
	if err != nil {
		return errResponse(ErrExec, "promote: %v", err)
	}
	s.catalog.Lock()
	s.dbs.SetReadOnly(false)
	s.catalog.Unlock()
	// The promoted server no longer replicates: retire the replica-side
	// lag gauges so /metrics stops exporting stale readings.
	s.reg.DeleteGauge(obs.ReplAppliedLSN)
	s.reg.DeleteGauge(obs.ReplLagLSN)
	if s.cfg.ReplicaListen != "" && s.primary == nil {
		p, err := s.startPrimary()
		if err != nil {
			return errResponse(ErrExec, "promote: start replication listener: %v", err)
		}
		s.primary = p
		s.primPtr.Store(p)
	}
	s.events.Emit(obs.EvPromote, trace, fmt.Sprintf("applied_lsn=%d", applied))
	return &Response{
		OK:      true,
		Type:    "result",
		Message: fmt.Sprintf("promoted: writable at lsn %d", applied),
	}
}

// waitJob blocks until the job is terminal. It returns a non-nil error
// response only when the wait itself was interrupted (session or server
// teardown).
func (s *Server) waitJob(j *job, sessCtx context.Context) *Response {
	select {
	case <-j.done:
		return nil
	case <-sessCtx.Done():
		return errResponse(ErrShutdown, "wait interrupted: session closing")
	}
}

// stmtKind names a statement type for error messages.
func stmtKind(st sqlparse.Statement) string {
	switch st.(type) {
	case *sqlparse.CreateTable:
		return "CREATE TABLE"
	case *sqlparse.Train:
		return "TRAIN"
	case *sqlparse.Predict:
		return "PREDICT"
	case *sqlparse.Select:
		return "SELECT"
	case *sqlparse.Show:
		return "SHOW"
	case *sqlparse.Explain:
		return "EXPLAIN"
	case *sqlparse.Analyze:
		return "ANALYZE"
	case *sqlparse.SaveModel:
		return "SAVE MODEL"
	case *sqlparse.LoadModel:
		return "LOAD MODEL"
	case *sqlparse.Drop:
		return "DROP"
	case *sqlparse.Insert:
		return "INSERT"
	case *sqlparse.LoadTable:
		return "LOAD INTO"
	case *sqlparse.Checkpoint:
		return "CHECKPOINT"
	case *sqlparse.Promote:
		return "PROMOTE"
	default:
		return "unknown statement"
	}
}

// ptr lifts a JobStatus into the pointer the wire struct wants.
func ptr(st JobStatus) *JobStatus { return &st }
