package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"

	"corgipile/internal/db"
	"corgipile/internal/sqlparse"
)

// handleSession owns one client connection: it reads newline-delimited
// JSON requests, answers each with exactly one response line (in request
// order — the protocol has no pipelined or unsolicited replies), and on
// disconnect cancels every non-detached job the session still owns.
func (s *Server) handleSession(id string, conn net.Conn) {
	defer s.wg.Done()
	// sessCtx parents the session's non-detached jobs, so tearing the
	// connection down cancels them even mid-epoch.
	sessCtx, cancel := context.WithCancel(s.ctx)
	defer func() {
		cancel()
		conn.Close()
		s.connsMu.Lock()
		delete(s.conns, conn)
		s.connsMu.Unlock()
		// Complete the queued → canceled transition for jobs a worker has
		// not picked up yet; running ones stop via the context.
		for _, j := range s.snapshotJobs() {
			if j.session == id && !j.detach && j.active() {
				j.requestCancel()
			}
		}
	}()

	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), MaxLineBytes)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var req Request
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			if enc.Encode(errResponse(ErrBadRequest, "request is not valid JSON: %v", err)) != nil {
				return
			}
			continue
		}
		resp, quit := s.dispatch(id, sessCtx, &req)
		if enc.Encode(resp) != nil {
			return
		}
		if quit {
			return
		}
	}
	// Scanner stops on EOF, connection error, or an over-long line; all
	// three end the session the same way.
}

// dispatch routes one request. The second return value asks the caller to
// close the connection after writing the response.
func (s *Server) dispatch(sessID string, sessCtx context.Context, req *Request) (*Response, bool) {
	switch req.Op {
	case "hello":
		return &Response{
			OK:       true,
			Type:     "hello",
			Server:   ServerName,
			Protocol: ProtocolVersion,
			Session:  sessID,
		}, false
	case "sql":
		return s.execSQL(sessID, sessCtx, req), false
	case "train":
		return s.execTrainOp(sessID, sessCtx, req), false
	case "predict":
		return s.execPredictOp(req), false
	case "cancel":
		return s.execCancel(sessCtx, req), false
	case "status":
		return s.execStatus(sessCtx, req), false
	case "promote":
		return s.execPromote(), false
	case "quit":
		return &Response{OK: true, Type: "bye"}, true
	default:
		return errResponse(ErrUnknownOp, "unknown op %q", req.Op), false
	}
}

// execSQL parses a statement and routes it by kind: TRAIN becomes a
// background job, PREDICT takes the cached read path, and everything else
// (DDL, SHOW, EXPLAIN, SAVE/LOAD/DROP) executes inline under the catalog
// write lock.
func (s *Server) execSQL(sessID string, sessCtx context.Context, req *Request) *Response {
	st, err := sqlparse.Parse(req.SQL)
	if err != nil {
		return errResponse(ErrParse, "%v", err)
	}
	switch st := st.(type) {
	case *sqlparse.Train:
		return s.submitAndReply(sessID, sessCtx, st, req)
	case *sqlparse.Predict:
		return s.execPredict(st)
	case *sqlparse.Promote:
		// PROMOTE must stop the replication stream, not just clear the
		// session's read-only latch, so it never takes the inline path.
		return s.execPromote()
	default:
		return s.execInline(st)
	}
}

// execTrainOp is op "train": like op "sql" but the statement must be TRAIN.
func (s *Server) execTrainOp(sessID string, sessCtx context.Context, req *Request) *Response {
	st, err := sqlparse.Parse(req.SQL)
	if err != nil {
		return errResponse(ErrParse, "%v", err)
	}
	tr, ok := st.(*sqlparse.Train)
	if !ok {
		return errResponse(ErrBadRequest, "op train requires a TRAIN statement, got %s", stmtKind(st))
	}
	return s.submitAndReply(sessID, sessCtx, tr, req)
}

// execPredictOp is op "predict": like op "sql" but the statement must be
// PREDICT.
func (s *Server) execPredictOp(req *Request) *Response {
	st, err := sqlparse.Parse(req.SQL)
	if err != nil {
		return errResponse(ErrParse, "%v", err)
	}
	pr, ok := st.(*sqlparse.Predict)
	if !ok {
		return errResponse(ErrBadRequest, "op predict requires a PREDICT statement, got %s", stmtKind(st))
	}
	return s.execPredict(pr)
}

// submitAndReply enqueues a TRAIN job and acknowledges it. The ack always
// reports state "queued" — never a racy peek at whether a worker already
// started it — so transcripts are deterministic. With wait=true the reply
// is deferred until the job reaches a terminal state.
func (s *Server) submitAndReply(sessID string, sessCtx context.Context, st *sqlparse.Train, req *Request) *Response {
	j, errResp := s.submitTrain(sessID, st, req.SQL, req.Detach, sessCtx)
	if errResp != nil {
		return errResp
	}
	if req.Wait {
		if r := s.waitJob(j, sessCtx); r != nil {
			return r
		}
		return &Response{OK: true, Type: "job", Job: ptr(j.status())}
	}
	return &Response{OK: true, Type: "job", Job: &JobStatus{
		ID:      j.id,
		Session: sessID,
		Model:   strings.ToLower(st.ModelName),
		State:   JobQueued,
	}}
}

// execCancel cancels a job by id. Any session may cancel any job (an
// operator connection can reap another client's runaway TRAIN); with
// wait=true the reply waits for the job to actually reach a terminal
// state rather than reporting the in-flight snapshot.
func (s *Server) execCancel(sessCtx context.Context, req *Request) *Response {
	s.mu.Lock()
	j, ok := s.jobs[req.Job]
	s.mu.Unlock()
	if !ok {
		return errResponse(ErrNotFound, "unknown job %q", req.Job)
	}
	j.requestCancel()
	if req.Wait {
		if r := s.waitJob(j, sessCtx); r != nil {
			return r
		}
	}
	return &Response{OK: true, Type: "job", Job: ptr(j.status())}
}

// execStatus reports one job (req.Job set; wait=true blocks until it is
// terminal) or the whole job table in submission order.
func (s *Server) execStatus(sessCtx context.Context, req *Request) *Response {
	if req.Job != "" {
		s.mu.Lock()
		j, ok := s.jobs[req.Job]
		s.mu.Unlock()
		if !ok {
			return errResponse(ErrNotFound, "unknown job %q", req.Job)
		}
		if req.Wait {
			if r := s.waitJob(j, sessCtx); r != nil {
				return r
			}
		}
		return &Response{OK: true, Type: "job", Job: ptr(j.status())}
	}
	jobs := s.snapshotJobs()
	resp := &Response{OK: true, Type: "status", Jobs: make([]JobStatus, 0, len(jobs))}
	for _, j := range jobs {
		resp.Jobs = append(resp.Jobs, j.status())
	}
	return resp
}

// execInline runs a non-TRAIN, non-PREDICT statement under the catalog
// write lock and invalidates any cached snapshot the statement replaced.
func (s *Server) execInline(st sqlparse.Statement) *Response {
	s.catalog.Lock()
	res, err := s.dbs.ExecStatement(st)
	switch st := st.(type) {
	case *sqlparse.CreateTable:
		s.cache.invalidate(strings.ToLower(st.Name))
	case *sqlparse.Drop:
		if st.What == "table" {
			s.cache.invalidate(strings.ToLower(st.Name))
		}
	case *sqlparse.Insert:
		// Ingestion changes the table's tuples: the cached predict snapshot
		// is stale the moment the append lands.
		s.cache.invalidate(strings.ToLower(st.Table))
	case *sqlparse.LoadTable:
		s.cache.invalidate(strings.ToLower(st.Table))
	}
	s.catalog.Unlock()
	if err != nil {
		if errors.Is(err, db.ErrReadOnly) {
			return errResponse(ErrReadOnly, "%v", err)
		}
		return errResponse(ErrExec, "%v", err)
	}
	return &Response{
		OK:      true,
		Type:    "result",
		Columns: res.Columns,
		Rows:    res.Rows,
		Message: res.Message,
	}
}

// execPromote turns a replica server into a writable primary: the
// replication stream stops at a durable record boundary, the read-only
// latch clears, and — when ReplicaListen is configured — the promoted
// server starts publishing its own replication stream. Idempotent: a
// second PROMOTE reports the same applied LSN.
func (s *Server) execPromote() *Response {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if s.replica == nil {
		return errResponse(ErrNotReplica, "this server is not a replica; nothing to promote")
	}
	applied, err := s.replica.Promote()
	if err != nil {
		return errResponse(ErrExec, "promote: %v", err)
	}
	s.catalog.Lock()
	s.dbs.SetReadOnly(false)
	s.catalog.Unlock()
	if s.cfg.ReplicaListen != "" && s.primary == nil {
		p, err := s.startPrimary()
		if err != nil {
			return errResponse(ErrExec, "promote: start replication listener: %v", err)
		}
		s.primary = p
	}
	return &Response{
		OK:      true,
		Type:    "result",
		Message: fmt.Sprintf("promoted: writable at lsn %d", applied),
	}
}

// waitJob blocks until the job is terminal. It returns a non-nil error
// response only when the wait itself was interrupted (session or server
// teardown).
func (s *Server) waitJob(j *job, sessCtx context.Context) *Response {
	select {
	case <-j.done:
		return nil
	case <-sessCtx.Done():
		return errResponse(ErrShutdown, "wait interrupted: session closing")
	}
}

// stmtKind names a statement type for error messages.
func stmtKind(st sqlparse.Statement) string {
	switch st.(type) {
	case *sqlparse.CreateTable:
		return "CREATE TABLE"
	case *sqlparse.Train:
		return "TRAIN"
	case *sqlparse.Predict:
		return "PREDICT"
	case *sqlparse.Show:
		return "SHOW"
	case *sqlparse.Explain:
		return "EXPLAIN"
	case *sqlparse.Analyze:
		return "ANALYZE"
	case *sqlparse.SaveModel:
		return "SAVE MODEL"
	case *sqlparse.LoadModel:
		return "LOAD MODEL"
	case *sqlparse.Drop:
		return "DROP"
	case *sqlparse.Insert:
		return "INSERT"
	case *sqlparse.LoadTable:
		return "LOAD INTO"
	case *sqlparse.Checkpoint:
		return "CHECKPOINT"
	case *sqlparse.Promote:
		return "PROMOTE"
	default:
		return "unknown statement"
	}
}

// ptr lifts a JobStatus into the pointer the wire struct wants.
func ptr(st JobStatus) *JobStatus { return &st }
