package serve

import (
	"bufio"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"corgipile/internal/db"
)

// TestProtocolTranscript is the documentation golden test: it parses the
// worked transcript out of docs/PROTOCOL.md, boots a server exactly as
// the document describes (workers=1, catalog from scripts/serve_init.sql),
// replays every "C:" line verbatim, and requires every response to match
// the documented "S:" line byte-for-byte. If server behavior and the
// protocol document ever drift apart, this test fails — the document is
// executable, not aspirational.
func TestProtocolTranscript(t *testing.T) {
	root := repoRoot(t)
	steps := loadTranscript(t, filepath.Join(root, "docs", "PROTOCOL.md"))
	if len(steps) < 5 {
		t.Fatalf("suspiciously short transcript (%d steps) — extraction broken?", len(steps))
	}

	initSQL, err := os.ReadFile(filepath.Join(root, "scripts", "serve_init.sql"))
	if err != nil {
		t.Fatal(err)
	}
	session := db.NewSession()
	if _, err := session.ExecScript(string(initSQL)); err != nil {
		t.Fatalf("init script: %v", err)
	}
	srv, err := New(Config{Addr: "127.0.0.1:0", Workers: 1, Session: session})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialRaw(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i, step := range steps {
		got, err := c.DoLine(step.request)
		if err != nil {
			t.Fatalf("step %d: send %q: %v", i+1, step.request, err)
		}
		if got != step.response {
			t.Errorf("step %d: response drifted from docs/PROTOCOL.md\n C: %s\n want S: %s\n got  S: %s",
				i+1, step.request, step.response, got)
		}
	}
}

type transcriptStep struct {
	request  string
	response string
}

// loadTranscript extracts the C:/S: pairs from the fenced code block
// under the "## Worked transcript" heading.
func loadTranscript(t *testing.T, path string) []transcriptStep {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var steps []transcriptStep
	inSection, inFence := false, false
	var pendingReq string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 4096), MaxLineBytes)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "## "):
			inSection = strings.Contains(line, "Worked transcript")
		case inSection && strings.HasPrefix(line, "```"):
			// The section holds several fenced blocks (setup console,
			// transcript, replay example); C:/S: lines appear only in the
			// transcript one, so just track fence state.
			inFence = !inFence
		case inSection && inFence && strings.HasPrefix(line, "C: "):
			if pendingReq != "" {
				t.Fatalf("transcript has two consecutive C: lines at %q", line)
			}
			pendingReq = strings.TrimPrefix(line, "C: ")
		case inSection && inFence && strings.HasPrefix(line, "S: "):
			if pendingReq == "" {
				t.Fatalf("transcript has S: line with no preceding C: at %q", line)
			}
			steps = append(steps, transcriptStep{pendingReq, strings.TrimPrefix(line, "S: ")})
			pendingReq = ""
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if pendingReq != "" {
		t.Fatalf("transcript ends with unanswered C: %s", pendingReq)
	}
	return steps
}

// repoRoot locates the repository root from this source file's path.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}
