package storage

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"corgipile/internal/iosim"
)

// RetryPolicy bounds how block reads respond to transient storage errors:
// up to MaxAttempts total attempts, separated by exponential backoff with
// deterministic jitter. Backoff time is charged to the simulated clock, so
// a retried read is slower on the virtual timeline but yields exactly the
// same bytes — training through a transient error storm that stays within
// budget produces bit-for-bit the weights of a fault-free run.
//
// The zero value disables retrying (a single attempt, today's behaviour).
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, including the first
	// (<= 1 disables retrying).
	MaxAttempts int
	// Backoff is the base delay before the first retry (default 1ms).
	Backoff time.Duration
	// MaxBackoff caps the per-retry delay (default 100ms).
	MaxBackoff time.Duration
	// Multiplier grows the delay after each retry (default 2).
	Multiplier float64
	// Seed seeds the jitter; the jitter sequence restarts for every Do call
	// so retry timing is deterministic per read, independent of history.
	Seed int64
}

// Enabled reports whether the policy retries at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Backoff <= 0 {
		p.Backoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	return p
}

// IsTransient reports whether err is worth retrying. Transient device
// errors (iosim.ErrTransient) are; corrupt payloads (ErrCorrupt) and
// anything else are permanent.
func IsTransient(err error) bool { return errors.Is(err, iosim.ErrTransient) }

// Do runs fn up to p.MaxAttempts times, backing off between transient
// failures and charging each backoff to clock (when non-nil). onRetry, when
// non-nil, observes every backoff taken. Permanent errors return
// immediately; the last error is returned when the budget is exhausted.
//
// ctx is checked between attempts: a canceled context stops the retry loop
// before the next backoff and returns ctx.Err(), so a canceled training job
// stops burning simulated backoff time mid-storm instead of waiting for the
// SGD loop's own cancellation check. A nil ctx means no cancellation.
func (p RetryPolicy) Do(ctx context.Context, clock *iosim.Clock, onRetry func(wait time.Duration), fn func() error) error {
	p = p.withDefaults()
	var rng *rand.Rand
	wait := p.Backoff
	for attempt := 1; ; attempt++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		err := fn()
		if err == nil || !IsTransient(err) || attempt >= p.MaxAttempts {
			return err
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if rng == nil {
			rng = rand.New(rand.NewSource(p.Seed))
		}
		// Equal jitter: half the window fixed, half uniformly random, so
		// retries desynchronize while staying deterministic per seed.
		d := wait/2 + time.Duration(rng.Int63n(int64(wait/2)+1))
		if clock != nil {
			clock.Advance(d)
		}
		if onRetry != nil {
			onRetry(d)
		}
		wait = time.Duration(float64(wait) * p.Multiplier)
		if wait > p.MaxBackoff {
			wait = p.MaxBackoff
		}
	}
}
