package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/obs"
)

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "wal.log")
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	path := walPath(t)
	w, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}
	payloads := [][]byte{[]byte("one"), {}, bytes.Repeat([]byte{0xAB}, 5000)}
	for i, p := range payloads {
		lsn, err := w.Append(WALRecordType(i+1), p)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("append %d got LSN %d", i, lsn)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(payloads))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Type != WALRecordType(i+1) || !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}
	// Appends after reopen continue the LSN sequence.
	if lsn, err := w2.Append(WALAppendBlock, nil); err != nil || lsn != 4 {
		t.Fatalf("post-reopen append = (%d, %v), want (4, nil)", lsn, err)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := walPath(t)
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(WALCreateTable, []byte("keep me")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(WALAppendBlock, []byte("torn away")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail mid-record, as a crash during a write would.
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf[:len(buf)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.New()
	w2, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w2.WithObs(reg)
	defer w2.Close()
	if len(recs) != 1 || string(recs[0].Payload) != "keep me" {
		t.Fatalf("torn replay returned %d records (%q)", len(recs), recs)
	}
	// The file itself must be truncated to the valid prefix so the next
	// append starts clean.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := walHeaderSize + len("keep me")
	if len(after) != wantLen {
		t.Fatalf("file is %d bytes after recovery, want %d", len(after), wantLen)
	}
	if lsn, err := w2.Append(WALAppendBlock, []byte("fresh")); err != nil || lsn != 2 {
		t.Fatalf("append after truncation = (%d, %v), want (2, nil)", lsn, err)
	}
	if _, recs, err := reopenWAL(path); err != nil || len(recs) != 2 {
		t.Fatalf("final replay = %d records, err %v; want 2", len(recs), err)
	}
}

func reopenWAL(path string) (*WAL, []WALRecord, error) {
	w, recs, err := OpenWAL(path)
	if err == nil {
		w.Close()
	}
	return w, recs, err
}

func TestWALBitFlipStopsReplay(t *testing.T) {
	var buf []byte
	buf = AppendWALRecord(buf, WALRecord{LSN: 1, Type: WALCreateTable, Payload: []byte("aaa")})
	mid := len(buf)
	buf = AppendWALRecord(buf, WALRecord{LSN: 2, Type: WALAppendBlock, Payload: []byte("bbb")})
	buf = AppendWALRecord(buf, WALRecord{LSN: 3, Type: WALDropTable, Payload: []byte("ccc")})

	// Flip one payload bit in the middle record: replay must stop there —
	// record 3 is unreachable because a corrupt middle means the tail
	// cannot be trusted.
	buf[mid+walHeaderSize] ^= 0x40
	recs, valid := DecodeWALRecords(buf)
	if len(recs) != 1 || recs[0].LSN != 1 {
		t.Fatalf("replay past bit flip: %d records", len(recs))
	}
	if valid != mid {
		t.Fatalf("valid prefix %d, want %d", valid, mid)
	}
}

func TestWALDuplicateLSNSkipped(t *testing.T) {
	var buf []byte
	buf = AppendWALRecord(buf, WALRecord{LSN: 1, Type: WALCreateTable, Payload: []byte("a")})
	buf = AppendWALRecord(buf, WALRecord{LSN: 1, Type: WALAppendBlock, Payload: []byte("dup")})
	buf = AppendWALRecord(buf, WALRecord{LSN: 2, Type: WALAppendBlock, Payload: []byte("b")})
	recs, valid := DecodeWALRecords(buf)
	if valid != len(buf) {
		t.Fatalf("duplicate LSN must not invalidate the tail: valid %d of %d", valid, len(buf))
	}
	if len(recs) != 2 || recs[0].LSN != 1 || recs[1].LSN != 2 {
		t.Fatalf("duplicate record not skipped: %+v", recs)
	}
	if string(recs[1].Payload) != "b" {
		t.Fatalf("wrong surviving record: %q", recs[1].Payload)
	}
}

func TestWALResetKeepsLSNMonotonic(t *testing.T) {
	path := walPath(t)
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 3; i++ {
		if _, err := w.Append(WALAppendBlock, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	lsn, err := w.Append(WALAppendBlock, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 4 {
		t.Fatalf("post-reset LSN = %d, want 4 (sequence never restarts)", lsn)
	}
	w.AdvanceLSN(100)
	if lsn, _ := w.Append(WALAppendBlock, nil); lsn != 100 {
		t.Fatalf("AdvanceLSN ignored: got %d, want 100", lsn)
	}
}

func TestBlockPayloadRoundTrip(t *testing.T) {
	ds := testDataset(20, 4)
	var raw []byte
	for i := range ds.Tuples {
		raw = AppendTuple(raw, &ds.Tuples[i])
	}
	rb := RawBlock{Raw: raw, Tuples: len(ds.Tuples), FirstID: ds.Tuples[0].ID}
	table, got, err := DecodeBlockPayload(EncodeBlockPayload("events", rb))
	if err != nil {
		t.Fatal(err)
	}
	if table != "events" || got.Tuples != rb.Tuples || got.FirstID != rb.FirstID || !bytes.Equal(got.Raw, rb.Raw) {
		t.Fatalf("round trip mismatch: %q %+v", table, got)
	}
	// Hostile short payloads error instead of panicking.
	for _, p := range [][]byte{nil, {9}, {0xFF, 0xFF, 1, 2, 3}} {
		if _, _, err := DecodeBlockPayload(p); err == nil {
			t.Fatalf("short payload %v decoded", p)
		}
	}
}

func TestAppendTuplesExtendsTable(t *testing.T) {
	ds := testDataset(500, 8)
	for _, compress := range []bool{false, true} {
		clock := iosim.NewClock()
		dev := iosim.NewDevice(iosim.SSD, clock)
		tab, err := Build(dev, &data.Dataset{
			Name: ds.Name, Task: ds.Task, Features: ds.Features, Classes: ds.Classes,
			Tuples: ds.Tuples[:300],
		}, Options{BlockSize: 4 << 10, Compress: compress})
		if err != nil {
			t.Fatal(err)
		}
		before := tab.NumBlocks()
		raws, err := tab.AppendTuples(ds.Tuples[300:])
		if err != nil {
			t.Fatal(err)
		}
		if len(raws) == 0 || tab.NumBlocks() <= before {
			t.Fatalf("compress=%v: append added %d raw blocks, table %d -> %d",
				compress, len(raws), before, tab.NumBlocks())
		}
		if tab.NumTuples() != 500 {
			t.Fatalf("compress=%v: NumTuples = %d, want 500", compress, tab.NumTuples())
		}
		got, err := tab.ScanAll()
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i].ID != ds.Tuples[i].ID || got[i].Label != ds.Tuples[i].Label {
				t.Fatalf("compress=%v: tuple %d mismatch after append", compress, i)
			}
		}
		// Replaying the returned raw blocks into an empty table reproduces
		// the appended region bit for bit — the WAL recovery invariant.
		replay := NewEmpty(dev, "replay", ds.Task, ds.Features, ds.Classes,
			Options{BlockSize: 4 << 10, Compress: compress})
		for _, rb := range raws {
			if err := replay.AppendRawBlock(rb); err != nil {
				t.Fatal(err)
			}
		}
		origTail := tab.file[tab.meta[before].Offset:]
		if !bytes.Equal(replay.file, origTail) {
			t.Fatalf("compress=%v: replayed bytes differ from appended bytes", compress)
		}
	}
}

func TestAppendRawBlockRejectsGarbage(t *testing.T) {
	clock := iosim.NewClock()
	tab := NewEmpty(iosim.NewDevice(iosim.RAM, clock), "t", data.TaskBinary, 4, 2, Options{})
	bad := RawBlock{Raw: []byte{1, 2, 3}, Tuples: 5, FirstID: 0}
	if err := tab.AppendRawBlock(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage raw block accepted: %v", err)
	}
	if tab.NumBlocks() != 0 || tab.NumTuples() != 0 {
		t.Fatal("failed append mutated the table")
	}
}

func TestRawBlockAtRoundTrip(t *testing.T) {
	ds := testDataset(300, 8)
	for _, compress := range []bool{false, true} {
		tab, _ := buildTable(t, ds, Options{BlockSize: 4 << 10, Compress: compress})
		for i := 0; i < tab.NumBlocks(); i++ {
			rb, err := tab.RawBlockAt(i)
			if err != nil {
				t.Fatal(err)
			}
			tuples, err := DecodeRawTuples(rb.Raw, rb.Tuples)
			if err != nil {
				t.Fatalf("compress=%v block %d: %v", compress, i, err)
			}
			if len(tuples) != tab.BlockTuples(i) || rb.FirstID != tuples[0].ID {
				t.Fatalf("compress=%v block %d: raw form inconsistent", compress, i)
			}
		}
		if _, err := tab.RawBlockAt(tab.NumBlocks()); err == nil {
			t.Fatal("out-of-range RawBlockAt succeeded")
		}
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	// A training epoch reads a stable prefix while ingestion extends the
	// table; run under -race this is the mutable-table safety test.
	ds := testDataset(2000, 8)
	clock := iosim.NewClock()
	dev := iosim.NewDevice(iosim.RAM, clock)
	tab, err := Build(dev, &data.Dataset{
		Name: "t", Task: ds.Task, Features: ds.Features, Classes: ds.Classes,
		Tuples: ds.Tuples[:1000],
	}, Options{BlockSize: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for off := 1000; off < 2000; off += 100 {
			if _, err := tab.AppendTuples(ds.Tuples[off : off+100]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for pass := 0; pass < 20; pass++ {
			n := tab.NumBlocks()
			for i := 0; i < n; i++ {
				if _, err := tab.ReadBlock(i); err != nil {
					t.Errorf("block %d: %v", i, err)
					return
				}
			}
			if _, err := tab.DecodeAll(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if tab.NumTuples() != 2000 {
		t.Fatalf("NumTuples = %d, want 2000", tab.NumTuples())
	}
}

// resealWAL recomputes one record's CRC at offset off so header mutations
// survive the checksum and exercise the validation behind it.
func resealWAL(b []byte, off int) []byte {
	if len(b) < off+walHeaderSize {
		return b
	}
	payLen := int(binary.LittleEndian.Uint32(b[off+9:]))
	if payLen > len(b)-off-walHeaderSize {
		return b
	}
	crc := crc32.NewIEEE()
	crc.Write(b[off : off+13])
	crc.Write(b[off+walHeaderSize : off+walHeaderSize+payLen])
	binary.LittleEndian.PutUint32(b[off+13:], crc.Sum32())
	return b
}

// FuzzWALReplay throws mutated log images at the replay decoder. The
// invariants: never panic, never allocate past the input, LSNs in the
// returned records strictly increase, and the valid prefix re-decodes to
// exactly the same records (replay is idempotent — the recovery guarantee).
func FuzzWALReplay(f *testing.F) {
	var clean []byte
	clean = AppendWALRecord(clean, WALRecord{LSN: 1, Type: WALCreateTable, Payload: []byte(`{"name":"t"}`)})
	rec2 := len(clean)
	clean = AppendWALRecord(clean, WALRecord{LSN: 2, Type: WALAppendBlock, Payload: bytes.Repeat([]byte{7}, 100)})
	clean = AppendWALRecord(clean, WALRecord{LSN: 3, Type: WALCheckpoint, Payload: []byte(`{"frontier":2}`)})
	f.Add(clean)
	f.Add([]byte{})
	f.Add(clean[:len(clean)-5]) // torn tail mid-record
	f.Add(clean[:rec2+3])       // torn tail mid-header

	// Bit-flipped CRC on the middle record.
	flipped := append([]byte(nil), clean...)
	flipped[rec2+13] ^= 0x01
	f.Add(flipped)

	// Bit-flipped payload (CRC now stale).
	flippedPay := append([]byte(nil), clean...)
	flippedPay[rec2+walHeaderSize] ^= 0x80
	f.Add(flippedPay)

	// Duplicate LSN resealed with a valid CRC.
	dup := append([]byte(nil), clean...)
	binary.LittleEndian.PutUint64(dup[rec2:], 1)
	f.Add(resealWAL(dup, rec2))

	// Hostile payload length resealed.
	hugeLen := append([]byte(nil), clean...)
	binary.LittleEndian.PutUint32(hugeLen[rec2+9:], 0xFFFFFFF0)
	f.Add(hugeLen)

	// All-zero frames and a lone valid header claiming more than exists.
	f.Add(make([]byte, walHeaderSize*3))
	short := AppendWALRecord(nil, WALRecord{LSN: 9, Type: WALAppendBlock, Payload: []byte("xyz")})
	f.Add(short[:len(short)-1])

	f.Fuzz(func(t *testing.T, b []byte) {
		recs, valid := DecodeWALRecords(b)
		if valid < 0 || valid > len(b) {
			t.Fatalf("valid prefix %d outside [0,%d]", valid, len(b))
		}
		var last uint64
		for i, r := range recs {
			if i > 0 && r.LSN <= last {
				t.Fatalf("record %d LSN %d not above %d", i, r.LSN, last)
			}
			last = r.LSN
			if len(r.Payload) > valid {
				t.Fatalf("record %d payload %d bytes exceeds valid prefix %d", i, len(r.Payload), valid)
			}
		}
		// Idempotence: replaying the valid prefix yields the same records.
		again, validAgain := DecodeWALRecords(b[:valid])
		if validAgain != valid || len(again) != len(recs) {
			t.Fatalf("re-replay diverged: %d/%d records, %d/%d valid",
				len(again), len(recs), validAgain, valid)
		}
		for i := range again {
			if again[i].LSN != recs[i].LSN || again[i].Type != recs[i].Type ||
				!bytes.Equal(again[i].Payload, recs[i].Payload) {
				t.Fatalf("re-replay record %d differs", i)
			}
		}
	})
}

func TestWALObsCounters(t *testing.T) {
	path := walPath(t)
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	w.WithObs(reg)
	if _, err := w.Append(WALAppendBlock, []byte("counted")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if reg.Counter(obs.WALAppends) != 1 || reg.Counter(obs.WALSyncs) != 1 {
		t.Fatalf("wal counters not recorded: appends=%d syncs=%d",
			reg.Counter(obs.WALAppends), reg.Counter(obs.WALSyncs))
	}
	if got := reg.Counter(obs.WALAppendBytes); got != int64(walHeaderSize+len("counted")) {
		t.Fatalf("append bytes counter = %d", got)
	}
}

func TestDecodeRawTuplesHostile(t *testing.T) {
	ds := testDataset(5, 4)
	var raw []byte
	for i := range ds.Tuples {
		raw = AppendTuple(raw, &ds.Tuples[i])
	}
	if tuples, err := DecodeRawTuples(raw, 5); err != nil || len(tuples) != 5 {
		t.Fatalf("clean decode failed: %d tuples, %v", len(tuples), err)
	}
	cases := []struct {
		raw   []byte
		count int
	}{
		{raw, 4},              // trailing bytes
		{raw, 6},              // count beyond payload
		{raw, -1},             // negative count
		{raw[:len(raw)-2], 5}, // truncated payload
		{nil, 1},
	}
	for i, c := range cases {
		if _, err := DecodeRawTuples(c.raw, c.count); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("case %d: got %v, want ErrCorrupt", i, err)
		}
	}
}

func TestWALSequentialLSNsAcrossManyAppends(t *testing.T) {
	path := walPath(t)
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		lsn, err := w.Append(WALAppendBlock, fmt.Appendf(nil, "r%d", i))
		if err != nil || lsn != uint64(i) {
			t.Fatalf("append %d: lsn %d err %v", i, lsn, err)
		}
	}
	w.Close()
	_, recs, err := reopenWAL(path)
	if err != nil || len(recs) != 50 {
		t.Fatalf("replay: %d records, %v", len(recs), err)
	}
}
