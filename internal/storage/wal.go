package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"corgipile/internal/obs"
)

// Write-ahead log record frame (little endian), CRC-framed like the block
// codec so a torn or bit-flipped tail is detected on replay:
//
//	lsn     uint64  (strictly increasing; duplicates are skipped on replay)
//	type    uint8
//	payLen  uint32
//	crc     uint32  (CRC32-IEEE over lsn, type, payLen, payload)
//	payload payLen bytes
const walHeaderSize = 8 + 1 + 4 + 4

// maxWALPayload bounds a single record's payload (64 MiB — far above the
// largest block plus framing) so a corrupted length field can never drive
// an unbounded allocation during replay.
const maxWALPayload = 64 << 20

// WALRecordType identifies what a WAL record logs.
type WALRecordType uint8

const (
	// WALCreateTable logs a catalog CREATE (JSON payload: schema + options).
	WALCreateTable WALRecordType = 1
	// WALAppendBlock logs one block appended to a table (binary payload,
	// see EncodeBlockPayload).
	WALAppendBlock WALRecordType = 2
	// WALDropTable logs a catalog DROP TABLE (JSON payload: name).
	WALDropTable WALRecordType = 3
	// WALCheckpoint terminates a checkpoint file; its JSON payload carries
	// the live-WAL LSN frontier the checkpoint covers.
	WALCheckpoint WALRecordType = 4
	// WALPutModel logs a model install or overwrite (JSON payload:
	// weights + provenance).
	WALPutModel WALRecordType = 5
	// WALDropModel logs a catalog DROP MODEL (JSON payload: name).
	WALDropModel WALRecordType = 6
)

// WALRecord is one decoded log record.
type WALRecord struct {
	LSN     uint64
	Type    WALRecordType
	Payload []byte
}

// AppendWALRecord appends the framed encoding of r to buf and returns the
// extended slice.
func AppendWALRecord(buf []byte, r WALRecord) []byte {
	var hdr [walHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], r.LSN)
	hdr[8] = byte(r.Type)
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(r.Payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:13])
	crc.Write(r.Payload)
	binary.LittleEndian.PutUint32(hdr[13:], crc.Sum32())
	buf = append(buf, hdr[:]...)
	return append(buf, r.Payload...)
}

// DecodeWALRecords decodes records from the front of buf until the data
// ends or turns invalid, returning the good records and the byte length of
// the valid prefix. Everything past validLen is a torn or corrupt tail that
// recovery must truncate. Records whose LSN does not strictly exceed the
// previous record's are skipped (a duplicate append from a crashed retry
// must not be applied twice) but still extend the valid prefix.
//
// The function is pure — no file I/O — so fuzzing can drive it directly
// with hostile inputs.
func DecodeWALRecords(buf []byte) (recs []WALRecord, validLen int) {
	var lastLSN uint64
	off := 0
	for {
		rest := buf[off:]
		if len(rest) < walHeaderSize {
			return recs, off
		}
		lsn := binary.LittleEndian.Uint64(rest[0:])
		typ := WALRecordType(rest[8])
		payLen := int64(binary.LittleEndian.Uint32(rest[9:]))
		sum := binary.LittleEndian.Uint32(rest[13:])
		if payLen > maxWALPayload || payLen > int64(len(rest)-walHeaderSize) {
			return recs, off
		}
		payload := rest[walHeaderSize : walHeaderSize+payLen]
		crc := crc32.NewIEEE()
		crc.Write(rest[:13])
		crc.Write(payload)
		if crc.Sum32() != sum {
			return recs, off
		}
		off += walHeaderSize + int(payLen)
		if lsn <= lastLSN && len(recs) > 0 {
			continue // duplicate or regressed LSN: valid frame, skip replay
		}
		lastLSN = lsn
		recs = append(recs, WALRecord{LSN: lsn, Type: typ, Payload: append([]byte(nil), payload...)})
	}
}

// WAL is an append-only write-ahead log backed by a real file. Appends go
// to the OS page cache (surviving a SIGKILL of this process); Sync flushes
// to stable media and is called once per mutation statement, not per
// record. A torn tail from a crash mid-write is detected by the CRC frame
// and truncated on the next open.
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	path string
	next uint64 // next LSN to assign
	reg  *obs.Registry
}

// OpenWAL opens (creating if absent) the log at path, replays it, truncates
// any torn tail, and returns the recovered records. The returned WAL
// continues appending after the last valid record with a strictly larger
// LSN.
func OpenWAL(path string) (*WAL, []WALRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: open wal: %w", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("storage: read wal: %w", err)
	}
	recs, valid := DecodeWALRecords(buf)
	if valid < len(buf) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("storage: truncate torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("storage: seek wal: %w", err)
	}
	w := &WAL{f: f, path: path, next: 1}
	if n := len(recs); n > 0 {
		w.next = recs[n-1].LSN + 1
	}
	w.truncated(len(buf) - valid)
	return w, recs, nil
}

// WithObs attaches a metrics registry; wal.* counters record appends,
// bytes, and syncs. Returns w for chaining.
func (w *WAL) WithObs(reg *obs.Registry) *WAL {
	w.mu.Lock()
	w.reg = reg
	w.mu.Unlock()
	return w
}

func (w *WAL) truncated(n int) {
	if n > 0 {
		w.mu.Lock()
		reg := w.reg
		w.mu.Unlock()
		reg.Add(obs.WALReplayTruncated, int64(n))
	}
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// NextLSN returns the LSN the next append will receive.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next
}

// AdvanceLSN raises the next LSN to at least lsn — recovery calls this with
// the checkpoint frontier so post-recovery appends stay above everything
// the checkpoint already covers.
func (w *WAL) AdvanceLSN(lsn uint64) {
	w.mu.Lock()
	if lsn > w.next {
		w.next = lsn
	}
	w.mu.Unlock()
}

// Append writes one record (without syncing) and returns its LSN.
func (w *WAL) Append(typ WALRecordType, payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	lsn := w.next
	buf := AppendWALRecord(nil, WALRecord{LSN: lsn, Type: typ, Payload: payload})
	if _, err := w.f.Write(buf); err != nil {
		return 0, fmt.Errorf("storage: wal append: %w", err)
	}
	w.next++
	w.reg.Inc(obs.WALAppends)
	w.reg.Add(obs.WALAppendBytes, int64(len(buf)))
	return lsn, nil
}

// Sync flushes appended records to stable media.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("storage: wal sync: %w", err)
	}
	w.reg.Inc(obs.WALSyncs)
	return nil
}

// Reset truncates the log to empty after a successful checkpoint. The LSN
// sequence keeps counting — it never restarts — so records written after a
// reset still sort above the checkpoint frontier.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: wal reset: %w", err)
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return fmt.Errorf("storage: wal reset seek: %w", err)
	}
	return w.f.Sync()
}

// Close syncs and closes the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// Block-append payload (little endian):
//
//	nameLen uint16
//	name    nameLen bytes
//	firstID uint64
//	tuples  uint32
//	raw     remaining bytes (concatenated tuple encodings)

// EncodeBlockPayload encodes a block append on table into a WAL payload.
func EncodeBlockPayload(table string, rb RawBlock) []byte {
	buf := make([]byte, 0, 2+len(table)+12+len(rb.Raw))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(table)))
	buf = append(buf, table...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rb.FirstID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rb.Tuples))
	return append(buf, rb.Raw...)
}

// DecodeBlockPayload decodes a WALAppendBlock payload. The raw tuple bytes
// are returned unvalidated — AppendRawBlock validates them tuple by tuple
// before any table state changes.
func DecodeBlockPayload(p []byte) (table string, rb RawBlock, err error) {
	if len(p) < 2 {
		return "", RawBlock{}, fmt.Errorf("%w: short block payload", ErrCorrupt)
	}
	nameLen := int(binary.LittleEndian.Uint16(p))
	if len(p) < 2+nameLen+12 {
		return "", RawBlock{}, fmt.Errorf("%w: short block payload header", ErrCorrupt)
	}
	table = string(p[2 : 2+nameLen])
	p = p[2+nameLen:]
	rb.FirstID = int64(binary.LittleEndian.Uint64(p))
	rb.Tuples = int(binary.LittleEndian.Uint32(p[8:]))
	rb.Raw = append([]byte(nil), p[12:]...)
	return table, rb, nil
}
