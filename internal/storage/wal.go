package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"corgipile/internal/obs"
)

// Write-ahead log record frame (little endian), CRC-framed like the block
// codec so a torn or bit-flipped tail is detected on replay:
//
//	lsn     uint64  (strictly increasing; duplicates are skipped on replay)
//	type    uint8
//	payLen  uint32
//	crc     uint32  (CRC32-IEEE over lsn, type, payLen, payload)
//	payload payLen bytes
const walHeaderSize = 8 + 1 + 4 + 4

// maxWALPayload bounds a single record's payload (64 MiB — far above the
// largest block plus framing) so a corrupted length field can never drive
// an unbounded allocation during replay.
const maxWALPayload = 64 << 20

// WALRecordType identifies what a WAL record logs.
type WALRecordType uint8

const (
	// WALCreateTable logs a catalog CREATE (JSON payload: schema + options).
	WALCreateTable WALRecordType = 1
	// WALAppendBlock logs one block appended to a table (binary payload,
	// see EncodeBlockPayload).
	WALAppendBlock WALRecordType = 2
	// WALDropTable logs a catalog DROP TABLE (JSON payload: name).
	WALDropTable WALRecordType = 3
	// WALCheckpoint terminates a checkpoint file; its JSON payload carries
	// the live-WAL LSN frontier the checkpoint covers.
	WALCheckpoint WALRecordType = 4
	// WALPutModel logs a model install or overwrite (JSON payload:
	// weights + provenance).
	WALPutModel WALRecordType = 5
	// WALDropModel logs a catalog DROP MODEL (JSON payload: name).
	WALDropModel WALRecordType = 6
)

// WALRecord is one decoded log record.
type WALRecord struct {
	LSN     uint64
	Type    WALRecordType
	Payload []byte
}

// AppendWALRecord appends the framed encoding of r to buf and returns the
// extended slice.
func AppendWALRecord(buf []byte, r WALRecord) []byte {
	var hdr [walHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], r.LSN)
	hdr[8] = byte(r.Type)
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(r.Payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:13])
	crc.Write(r.Payload)
	binary.LittleEndian.PutUint32(hdr[13:], crc.Sum32())
	buf = append(buf, hdr[:]...)
	return append(buf, r.Payload...)
}

// DecodeWALRecords decodes records from the front of buf until the data
// ends or turns invalid, returning the good records and the byte length of
// the valid prefix. Everything past validLen is a torn or corrupt tail that
// recovery must truncate. Records whose LSN does not strictly exceed the
// previous record's are skipped (a duplicate append from a crashed retry
// must not be applied twice) but still extend the valid prefix.
//
// The function is pure — no file I/O — so fuzzing can drive it directly
// with hostile inputs.
func DecodeWALRecords(buf []byte) (recs []WALRecord, validLen int) {
	var lastLSN uint64
	off := 0
	for {
		rest := buf[off:]
		if len(rest) < walHeaderSize {
			return recs, off
		}
		lsn := binary.LittleEndian.Uint64(rest[0:])
		typ := WALRecordType(rest[8])
		payLen := int64(binary.LittleEndian.Uint32(rest[9:]))
		sum := binary.LittleEndian.Uint32(rest[13:])
		if payLen > maxWALPayload || payLen > int64(len(rest)-walHeaderSize) {
			return recs, off
		}
		payload := rest[walHeaderSize : walHeaderSize+payLen]
		crc := crc32.NewIEEE()
		crc.Write(rest[:13])
		crc.Write(payload)
		if crc.Sum32() != sum {
			return recs, off
		}
		off += walHeaderSize + int(payLen)
		if lsn <= lastLSN && len(recs) > 0 {
			continue // duplicate or regressed LSN: valid frame, skip replay
		}
		lastLSN = lsn
		recs = append(recs, WALRecord{LSN: lsn, Type: typ, Payload: append([]byte(nil), payload...)})
	}
}

// WriteSyncer is the WAL's write-path seam: the log appends through it and
// makes records durable through its Sync. Production use is the log's own
// *os.File; tests wrap it with WriteFaults to inject short writes, ENOSPC,
// and fsync failures without touching the filesystem.
type WriteSyncer interface {
	io.Writer
	Sync() error
}

// ErrStaleLSN reports an AppendRecord whose LSN does not advance the log —
// a replica seeing a resent record it already applied returns this and
// skips the record rather than double-applying it.
var ErrStaleLSN = errors.New("storage: stale wal lsn")

// WAL is an append-only write-ahead log backed by a real file. Appends go
// to the OS page cache (surviving a SIGKILL of this process); Sync flushes
// to stable media and is called once per mutation statement, not per
// record. A torn tail from a crash mid-write is detected by the CRC frame
// and truncated on the next open.
//
// A failed append rolls the file back to the previous record boundary, so
// one failed statement never leaves a torn prefix in front of later
// records. A failed Sync (or a failed rollback) poisons the log: the
// post-fsync-error state of the page cache is unknowable, so every later
// append and sync fails with the original error until the process restarts
// and recovery re-validates the file.
type WAL struct {
	mu     sync.Mutex
	f      *os.File
	ws     WriteSyncer // == f unless a test wrapped it
	path   string
	next   uint64 // next LSN to assign
	size   int64  // bytes of valid records in the file
	failed error  // poison: set on sync failure or failed rollback
	notify func(WALRecord)
	reg    *obs.Registry
	events *obs.EventLog
}

// OpenWAL opens (creating if absent) the log at path, replays it, truncates
// any torn tail, and returns the recovered records. The returned WAL
// continues appending after the last valid record with a strictly larger
// LSN.
func OpenWAL(path string) (*WAL, []WALRecord, error) {
	return OpenWALFile(path, nil)
}

// OpenWALFile is OpenWAL with a write-path wrapper: when wrap is non-nil
// the log appends and syncs through wrap(file) instead of the file itself.
// Recovery (replay, torn-tail truncation) always reads the real file.
func OpenWALFile(path string, wrap func(WriteSyncer) WriteSyncer) (*WAL, []WALRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: open wal: %w", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("storage: read wal: %w", err)
	}
	recs, valid := DecodeWALRecords(buf)
	if valid < len(buf) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("storage: truncate torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("storage: seek wal: %w", err)
	}
	w := &WAL{f: f, path: path, next: 1, size: int64(valid)}
	w.ws = f
	if wrap != nil {
		w.ws = wrap(f)
	}
	if n := len(recs); n > 0 {
		w.next = recs[n-1].LSN + 1
	}
	w.truncated(len(buf) - valid)
	return w, recs, nil
}

// WithObs attaches a metrics registry; wal.* counters record appends,
// bytes, and syncs. Returns w for chaining.
func (w *WAL) WithObs(reg *obs.Registry) *WAL {
	w.mu.Lock()
	w.reg = reg
	w.mu.Unlock()
	return w
}

func (w *WAL) truncated(n int) {
	if n > 0 {
		w.mu.Lock()
		reg := w.reg
		w.mu.Unlock()
		reg.Add(obs.WALReplayTruncated, int64(n))
	}
}

// WithEvents attaches a structured event log: poisoning failures (a
// failed fsync, a failed append rollback) emit a wal.sync_failure event
// so the introspection plane can explain why the log went read-dead.
// Returns w for chaining.
func (w *WAL) WithEvents(el *obs.EventLog) *WAL {
	w.mu.Lock()
	w.events = el
	w.mu.Unlock()
	return w
}

// Poisoned returns the error that poisoned the log (a failed sync or
// rollback), or nil while the log is healthy — the readiness probe's
// WAL-writability check.
func (w *WAL) Poisoned() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed
}

// WithNotify registers a hook invoked under the log's lock, in LSN order,
// after each successful append — the replication publish point. The hook
// must not block (it feeds bounded per-subscriber buffers) and must not
// call back into the WAL. Returns w for chaining.
func (w *WAL) WithNotify(fn func(WALRecord)) *WAL {
	w.mu.Lock()
	w.notify = fn
	w.mu.Unlock()
	return w
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Size returns the bytes of valid records currently in the log file — the
// auto-checkpoint trigger reads this to decide when to compact.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// NextLSN returns the LSN the next append will receive.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next
}

// AdvanceLSN raises the next LSN to at least lsn — recovery calls this with
// the checkpoint frontier so post-recovery appends stay above everything
// the checkpoint already covers.
func (w *WAL) AdvanceLSN(lsn uint64) {
	w.mu.Lock()
	if lsn > w.next {
		w.next = lsn
	}
	w.mu.Unlock()
}

// Append writes one record (without syncing) and returns its LSN.
func (w *WAL) Append(typ WALRecordType, payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec := WALRecord{LSN: w.next, Type: typ, Payload: payload}
	if err := w.writeLocked(rec); err != nil {
		return 0, err
	}
	w.next++
	return rec.LSN, nil
}

// AppendRecord writes a record verbatim, preserving its LSN — the replica
// apply path, which must keep the primary's LSNs so its directory recovers
// exactly like the primary's would. The LSN must advance the log; a record
// at or below the last written LSN returns ErrStaleLSN and writes nothing.
func (w *WAL) AppendRecord(rec WALRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if rec.LSN < w.next {
		return fmt.Errorf("%w: record lsn %d, log already at %d", ErrStaleLSN, rec.LSN, w.next-1)
	}
	if err := w.writeLocked(rec); err != nil {
		return err
	}
	w.next = rec.LSN + 1
	return nil
}

// writeLocked frames and appends one record, rolling the file back to the
// last record boundary on failure. Callers hold w.mu.
func (w *WAL) writeLocked(rec WALRecord) error {
	if w.failed != nil {
		return fmt.Errorf("storage: wal unavailable after earlier failure: %w", w.failed)
	}
	buf := AppendWALRecord(nil, rec)
	n, err := w.ws.Write(buf)
	if err == nil && n < len(buf) {
		err = io.ErrShortWrite
	}
	if err != nil {
		// Undo the partial frame so later appends don't land behind a torn
		// prefix (replay stops at the first bad frame, losing everything
		// after it). If the rollback itself fails the log is poisoned.
		if terr := w.f.Truncate(w.size); terr != nil {
			w.failed = fmt.Errorf("append: %v; rollback: %v", err, terr)
		} else if _, serr := w.f.Seek(w.size, 0); serr != nil {
			w.failed = fmt.Errorf("append: %v; rollback seek: %v", err, serr)
		}
		if w.failed != nil {
			w.events.Emit(obs.EvWALSyncFailure, "", w.failed.Error())
		}
		return fmt.Errorf("storage: wal append: %w", err)
	}
	w.size += int64(len(buf))
	w.reg.Inc(obs.WALAppends)
	w.reg.Add(obs.WALAppendBytes, int64(len(buf)))
	if w.notify != nil {
		w.notify(rec)
	}
	return nil
}

// Sync flushes appended records to stable media. A sync failure poisons
// the log — after a failed fsync the page-cache state is unknowable, so
// retrying could silently drop the unflushed range.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return fmt.Errorf("storage: wal unavailable after earlier failure: %w", w.failed)
	}
	if err := w.ws.Sync(); err != nil {
		w.failed = err
		w.events.Emit(obs.EvWALSyncFailure, "", err.Error())
		return fmt.Errorf("storage: wal sync: %w", err)
	}
	w.reg.Inc(obs.WALSyncs)
	return nil
}

// Reset truncates the log to empty after a successful checkpoint. The LSN
// sequence keeps counting — it never restarts — so records written after a
// reset still sort above the checkpoint frontier.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: wal reset: %w", err)
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return fmt.Errorf("storage: wal reset seek: %w", err)
	}
	w.size = 0
	return w.f.Sync()
}

// Close syncs and closes the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// ReadWALRecord decodes one framed record from a stream — the replication
// transport, where frames arrive over a socket instead of from a file. A
// clean EOF at a frame boundary returns io.EOF; a truncated frame returns
// io.ErrUnexpectedEOF; a CRC or length violation returns ErrCorrupt.
func ReadWALRecord(r io.Reader) (WALRecord, error) {
	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return WALRecord{}, err
	}
	lsn := binary.LittleEndian.Uint64(hdr[0:])
	typ := WALRecordType(hdr[8])
	payLen := int64(binary.LittleEndian.Uint32(hdr[9:]))
	sum := binary.LittleEndian.Uint32(hdr[13:])
	if payLen > maxWALPayload {
		return WALRecord{}, fmt.Errorf("%w: wal frame payload %d exceeds limit", ErrCorrupt, payLen)
	}
	payload := make([]byte, payLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return WALRecord{}, err
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:13])
	crc.Write(payload)
	if crc.Sum32() != sum {
		return WALRecord{}, fmt.Errorf("%w: wal frame crc mismatch at lsn %d", ErrCorrupt, lsn)
	}
	return WALRecord{LSN: lsn, Type: typ, Payload: payload}, nil
}

// WALPrefixLen returns the byte length of the valid prefix of buf whose
// records all have LSN <= upto. Truncating a log file copy to this length
// is exactly the state a crash could have left behind once everything
// through upto was written — the failover test uses it to reconstruct the
// primary state a replica's applied LSN corresponds to.
func WALPrefixLen(buf []byte, upto uint64) int {
	off := 0
	for {
		rest := buf[off:]
		if len(rest) < walHeaderSize {
			return off
		}
		lsn := binary.LittleEndian.Uint64(rest[0:])
		payLen := int64(binary.LittleEndian.Uint32(rest[9:]))
		if payLen > maxWALPayload || payLen > int64(len(rest)-walHeaderSize) {
			return off
		}
		if lsn > upto {
			return off
		}
		off += walHeaderSize + int(payLen)
	}
}

// Block-append payload (little endian):
//
//	nameLen uint16
//	name    nameLen bytes
//	firstID uint64
//	tuples  uint32
//	raw     remaining bytes (concatenated tuple encodings)

// EncodeBlockPayload encodes a block append on table into a WAL payload.
func EncodeBlockPayload(table string, rb RawBlock) []byte {
	buf := make([]byte, 0, 2+len(table)+12+len(rb.Raw))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(table)))
	buf = append(buf, table...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rb.FirstID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rb.Tuples))
	return append(buf, rb.Raw...)
}

// DecodeBlockPayload decodes a WALAppendBlock payload. The raw tuple bytes
// are returned unvalidated — AppendRawBlock validates them tuple by tuple
// before any table state changes.
func DecodeBlockPayload(p []byte) (table string, rb RawBlock, err error) {
	if len(p) < 2 {
		return "", RawBlock{}, fmt.Errorf("%w: short block payload", ErrCorrupt)
	}
	nameLen := int(binary.LittleEndian.Uint16(p))
	if len(p) < 2+nameLen+12 {
		return "", RawBlock{}, fmt.Errorf("%w: short block payload header", ErrCorrupt)
	}
	table = string(p[2 : 2+nameLen])
	p = p[2+nameLen:]
	rb.FirstID = int64(binary.LittleEndian.Uint64(p))
	rb.Tuples = int(binary.LittleEndian.Uint32(p[8:]))
	rb.Raw = append([]byte(nil), p[12:]...)
	return table, rb, nil
}
