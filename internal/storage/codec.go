// Package storage implements the on-disk table layout CorgiPile's physical
// operators address: a binary tuple codec, heap pages grouped into fixed
// target-size blocks, a block index, and block reads costed through the
// simulated device of internal/iosim. An optional per-block flate
// compression models PostgreSQL's TOAST behaviour for wide tuples.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"corgipile/internal/data"
)

// Tuple wire format (little endian):
//
//	id      uint64
//	label   float64 bits
//	flags   byte    (0 = dense, 1 = sparse)
//	count   uint32  (number of stored feature values)
//	dense:  count × float64
//	sparse: count × (int32 index, float64 value)
const (
	flagDense  = 0
	flagSparse = 1

	tupleHeaderSize = 8 + 8 + 1 + 4
)

// ErrCorrupt reports a malformed tuple or block.
var ErrCorrupt = errors.New("storage: corrupt data")

// AppendTuple appends the encoding of t to buf and returns the extended
// slice.
func AppendTuple(buf []byte, t *data.Tuple) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.ID))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.Label))
	if t.IsSparse() {
		buf = append(buf, flagSparse)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.SparseIdx)))
		for i, idx := range t.SparseIdx {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(idx))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.SparseVal[i]))
		}
		return buf
	}
	buf = append(buf, flagDense)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.Dense)))
	for _, v := range t.Dense {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// DecodeTuple decodes one tuple from the front of buf, returning the tuple
// and the number of bytes consumed.
func DecodeTuple(buf []byte) (data.Tuple, int, error) {
	if len(buf) < tupleHeaderSize {
		return data.Tuple{}, 0, fmt.Errorf("%w: short tuple header (%d bytes)", ErrCorrupt, len(buf))
	}
	t := data.Tuple{
		ID:    int64(binary.LittleEndian.Uint64(buf)),
		Label: math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])),
	}
	flags := buf[16]
	count := int(binary.LittleEndian.Uint32(buf[17:]))
	n := tupleHeaderSize
	switch flags {
	case flagDense:
		// Overflow-safe: compare count against the space left, never n+count*8.
		if count > (len(buf)-n)/8 {
			return data.Tuple{}, 0, fmt.Errorf("%w: short dense payload", ErrCorrupt)
		}
		need := n + count*8
		t.Dense = make([]float64, count)
		for i := 0; i < count; i++ {
			t.Dense[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[n+i*8:]))
		}
		n = need
	case flagSparse:
		if count > (len(buf)-n)/12 {
			return data.Tuple{}, 0, fmt.Errorf("%w: short sparse payload", ErrCorrupt)
		}
		need := n + count*12
		t.SparseIdx = make([]int32, count)
		t.SparseVal = make([]float64, count)
		for i := 0; i < count; i++ {
			t.SparseIdx[i] = int32(binary.LittleEndian.Uint32(buf[n+i*12:]))
			t.SparseVal[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[n+i*12+4:]))
		}
		n = need
	default:
		return data.Tuple{}, 0, fmt.Errorf("%w: unknown tuple flags %d", ErrCorrupt, flags)
	}
	return t, n, nil
}

// DecodeRawTuples decodes exactly count tuples from a raw block payload
// (concatenated AppendTuple encodings with no trailing bytes). It is the
// validation gate for WAL-replayed blocks: hostile payloads yield
// ErrCorrupt, never a panic.
func DecodeRawTuples(raw []byte, count int) ([]data.Tuple, error) {
	if count < 0 || count > len(raw)/tupleHeaderSize {
		return nil, fmt.Errorf("%w: tuple count %d exceeds %d-byte payload", ErrCorrupt, count, len(raw))
	}
	tuples := make([]data.Tuple, 0, count)
	for len(tuples) < count {
		t, n, err := DecodeTuple(raw)
		if err != nil {
			return nil, err
		}
		tuples = append(tuples, t)
		raw = raw[n:]
	}
	if len(raw) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after %d tuples", ErrCorrupt, len(raw), count)
	}
	return tuples, nil
}

// EncodedTupleSize returns the size of t's encoding in bytes.
func EncodedTupleSize(t *data.Tuple) int {
	if t.IsSparse() {
		return tupleHeaderSize + len(t.SparseIdx)*12
	}
	return tupleHeaderSize + len(t.Dense)*8
}
