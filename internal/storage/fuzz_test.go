package storage

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"corgipile/internal/iosim"
)

// fuzzTable returns a throwaway table whose decodeBlockBytes can be pointed
// at arbitrary bytes.
func fuzzTable(compress bool) *Table {
	clock := iosim.NewClock()
	return &Table{
		dev:  iosim.NewDevice(iosim.RAM, clock),
		opts: Options{Compress: compress}.withDefaults(),
	}
}

// validBlockBytes builds a real one-block table and returns the raw bytes of
// block 0, the honest seed the fuzzer mutates.
func validBlockBytes(tb testing.TB, compress bool) []byte {
	ds := testDataset(50, 4)
	clock := iosim.NewClock()
	tab, err := Build(iosim.NewDevice(iosim.RAM, clock), ds, Options{Compress: compress})
	if err != nil {
		tb.Fatal(err)
	}
	m := tab.meta[0]
	return append([]byte(nil), tab.file[m.Offset:m.Offset+m.Len]...)
}

// reseal recomputes the CRC so header mutations survive the checksum and
// exercise the validation behind it.
func reseal(b []byte) []byte {
	if len(b) < 24 {
		return b
	}
	payLen := binary.LittleEndian.Uint64(b[12:])
	if payLen > uint64(len(b)-24) {
		return b
	}
	binary.LittleEndian.PutUint32(b[20:], crc32.ChecksumIEEE(b[24:24+payLen]))
	return b
}

// FuzzDecodeBlock throws mutated block images at the decoder. The only
// acceptable outcomes are a decoded tuple slice or an error — never a panic
// and never an unbounded allocation from a hostile count/rawLen/payLen.
func FuzzDecodeBlock(f *testing.F) {
	plain := validBlockBytes(f, false)
	comp := validBlockBytes(f, true)
	f.Add(plain, false)
	f.Add(comp, true)
	f.Add([]byte{}, false)
	f.Add(make([]byte, 23), false)

	// Hostile headers resealed with a valid CRC: huge tuple count, huge
	// rawLen, payLen past the buffer, zero-length everything.
	huge := append([]byte(nil), plain...)
	binary.LittleEndian.PutUint32(huge[0:], 0xFFFFFFFF)
	f.Add(reseal(huge), false)

	bigRaw := append([]byte(nil), comp...)
	binary.LittleEndian.PutUint64(bigRaw[4:], 1<<40)
	f.Add(reseal(bigRaw), true)

	longPay := append([]byte(nil), plain...)
	binary.LittleEndian.PutUint64(longPay[12:], 1<<40)
	f.Add(longPay, false)

	empty := make([]byte, 24)
	f.Add(reseal(empty), false)
	f.Add(reseal(append([]byte(nil), empty...)), true)

	flipped := append([]byte(nil), plain...)
	flipped[24] ^= 0x01
	f.Add(flipped, false)

	f.Fuzz(func(t *testing.T, b []byte, compress bool) {
		tab := fuzzTable(compress)
		m := BlockMeta{Offset: 0, Len: int64(len(b))}
		tuples, err := tab.decodeBlockBytes(m, b)
		if err == nil && compress == false && len(b) >= 24 {
			// A successful decode must account for every payload byte.
			payLen := binary.LittleEndian.Uint64(b[12:])
			if count := binary.LittleEndian.Uint32(b[0:]); int(count) != len(tuples) {
				t.Fatalf("decoded %d tuples, header claims %d", len(tuples), count)
			}
			_ = payLen
		}
	})
}

// FuzzDecodeTuple targets the tuple codec alone: hostile count fields must
// produce ErrCorrupt, not out-of-range slicing or giant allocations.
func FuzzDecodeTuple(f *testing.F) {
	ds := testDataset(3, 4)
	var enc []byte
	for i := range ds.Tuples {
		enc = AppendTuple(enc, &ds.Tuples[i])
	}
	f.Add(enc)
	f.Add(enc[:tupleHeaderSize])
	f.Add([]byte{})

	hostile := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(hostile[17:], 0xFFFFFFFF)
	f.Add(hostile)

	sparse := append([]byte(nil), enc...)
	sparse[16] = flagSparse
	f.Add(sparse)
	badFlag := append([]byte(nil), enc...)
	badFlag[16] = 7
	f.Add(badFlag)

	f.Fuzz(func(t *testing.T, b []byte) {
		for len(b) > 0 {
			tp, n, err := DecodeTuple(b)
			if err != nil {
				return
			}
			if n <= 0 || n > len(b) {
				t.Fatalf("DecodeTuple consumed %d of %d bytes", n, len(b))
			}
			if len(tp.Dense) > len(b)/8+1 {
				t.Fatalf("decoded %d dense values from %d bytes", len(tp.Dense), len(b))
			}
			b = b[n:]
		}
	})
}
