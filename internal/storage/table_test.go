package storage

import (
	"math/rand"
	"strings"
	"testing"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
)

func testDataset(n, features int) *data.Dataset {
	return data.SyntheticBinary(data.SyntheticConfig{
		Tuples: n, Features: features, Order: data.OrderClustered, Seed: 11})
}

func buildTable(t *testing.T, ds *data.Dataset, opts Options) (*Table, *iosim.Clock) {
	t.Helper()
	clock := iosim.NewClock()
	dev := iosim.NewDevice(iosim.SSD, clock)
	tab, err := Build(dev, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tab, clock
}

func TestBuildAndScanAllRoundTrip(t *testing.T) {
	ds := testDataset(500, 8)
	tab, _ := buildTable(t, ds, Options{BlockSize: 4 << 10})
	got, err := tab.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != ds.Len() {
		t.Fatalf("scanned %d tuples, want %d", len(got), ds.Len())
	}
	for i := range got {
		if got[i].ID != ds.Tuples[i].ID || got[i].Label != ds.Tuples[i].Label {
			t.Fatalf("tuple %d mismatch: %v vs %v", i, got[i], ds.Tuples[i])
		}
		for j := range got[i].Dense {
			if got[i].Dense[j] != ds.Tuples[i].Dense[j] {
				t.Fatalf("tuple %d feature %d mismatch", i, j)
			}
		}
	}
}

func TestBlockSizing(t *testing.T) {
	ds := testDataset(1000, 8) // each tuple 21+64=85 bytes
	tab, _ := buildTable(t, ds, Options{BlockSize: 1 << 12})
	if tab.NumBlocks() < 10 {
		t.Fatalf("expected many blocks, got %d", tab.NumBlocks())
	}
	total := 0
	for i := 0; i < tab.NumBlocks(); i++ {
		total += tab.BlockTuples(i)
	}
	if total != ds.Len() {
		t.Fatalf("block tuple counts sum to %d, want %d", total, ds.Len())
	}
	if tab.NumTuples() != ds.Len() {
		t.Fatalf("NumTuples = %d, want %d", tab.NumTuples(), ds.Len())
	}
}

func TestBlocksPageAligned(t *testing.T) {
	ds := testDataset(400, 8)
	tab, _ := buildTable(t, ds, Options{BlockSize: 1 << 12, PageSize: 1 << 10})
	for i, m := range tab.meta {
		if m.Len%(1<<10) != 0 {
			t.Fatalf("block %d length %d not page aligned", i, m.Len)
		}
		if m.Offset%(1<<10) != 0 {
			t.Fatalf("block %d offset %d not page aligned", i, m.Offset)
		}
	}
}

func TestReadBlockChargesIO(t *testing.T) {
	ds := testDataset(1000, 32)
	tab, clock := buildTable(t, ds, Options{BlockSize: 8 << 10})
	before := clock.Now()
	if _, err := tab.ReadBlock(0); err != nil {
		t.Fatal(err)
	}
	if clock.Now() <= before {
		t.Fatal("ReadBlock did not advance the clock")
	}
}

func TestBuildDoesNotChargeByDefault(t *testing.T) {
	ds := testDataset(200, 8)
	_, clock := buildTable(t, ds, Options{})
	if clock.Now() != 0 {
		t.Fatalf("build charged %v without ChargeBuild", clock.Now())
	}
}

func TestBuildChargesWhenAsked(t *testing.T) {
	ds := testDataset(200, 8)
	_, clock := buildTable(t, ds, Options{ChargeBuild: true})
	if clock.Now() == 0 {
		t.Fatal("ChargeBuild did not charge the clock")
	}
}

func TestReadBlockOutOfRange(t *testing.T) {
	ds := testDataset(100, 4)
	tab, _ := buildTable(t, ds, Options{})
	if _, err := tab.ReadBlock(-1); err == nil {
		t.Fatal("negative block index should error")
	}
	if _, err := tab.ReadBlock(tab.NumBlocks()); err == nil {
		t.Fatal("out-of-range block index should error")
	}
}

func TestCompressedRoundTrip(t *testing.T) {
	ds := testDataset(300, 64)
	tab, _ := buildTable(t, ds, Options{BlockSize: 16 << 10, Compress: true})
	got, err := tab.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != ds.Len() {
		t.Fatalf("compressed scan returned %d tuples, want %d", len(got), ds.Len())
	}
	for i := range got {
		if got[i].Label != ds.Tuples[i].Label {
			t.Fatalf("tuple %d label mismatch after compression", i)
		}
	}
}

func TestCompressedReadSlowerPerRawByte(t *testing.T) {
	// With a very low decompress rate, the compressed table's read time
	// must be dominated by decompression.
	ds := testDataset(500, 128)
	clock := iosim.NewClock()
	dev := iosim.NewDevice(iosim.SSD, clock)
	tab, err := Build(dev, ds, Options{BlockSize: 64 << 10, Compress: true, DecompressRate: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.ScanAll(); err != nil {
		t.Fatal(err)
	}
	slowTime := clock.Now()

	clock2 := iosim.NewClock()
	dev2 := iosim.NewDevice(iosim.SSD, clock2)
	tab2, err := Build(dev2, ds, Options{BlockSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab2.ScanAll(); err != nil {
		t.Fatal(err)
	}
	if slowTime <= clock2.Now() {
		t.Fatalf("slow-decompress scan (%v) should exceed plain scan (%v)", slowTime, clock2.Now())
	}
}

func TestSparseTableRoundTrip(t *testing.T) {
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 200, Features: 1000, Sparse: true, NNZ: 10, Order: data.OrderClustered, Seed: 12})
	tab, _ := buildTable(t, ds, Options{BlockSize: 4 << 10})
	got, err := tab.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].NNZ() != 10 {
			t.Fatalf("tuple %d NNZ = %d, want 10", i, got[i].NNZ())
		}
	}
}

func TestShuffleOnceCopy(t *testing.T) {
	ds := testDataset(600, 8)
	tab, clock := buildTable(t, ds, Options{BlockSize: 4 << 10})
	before := clock.Now()
	shuf, err := ShuffleOnceCopy(tab, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if clock.Now() <= before {
		t.Fatal("ShuffleOnceCopy must charge shuffle I/O")
	}
	if shuf.NumTuples() != tab.NumTuples() {
		t.Fatalf("shuffled copy has %d tuples, want %d", shuf.NumTuples(), tab.NumTuples())
	}
	got, err := shuf.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	// Same multiset of IDs, different order.
	seen := make(map[int64]bool, len(got))
	sameOrder := true
	for i := range got {
		seen[got[i].ID] = true
		if got[i].ID != int64(i) {
			sameOrder = false
		}
	}
	if len(seen) != ds.Len() {
		t.Fatal("shuffled copy lost tuples")
	}
	if sameOrder {
		t.Fatal("shuffled copy is in original order")
	}
}

func TestShuffleOnceCostExceedsScan(t *testing.T) {
	ds := testDataset(2000, 32)
	clockScan := iosim.NewClock()
	devScan := iosim.NewDevice(iosim.HDD, clockScan)
	tabScan, err := Build(devScan, ds, Options{BlockSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tabScan.ScanAll(); err != nil {
		t.Fatal(err)
	}
	scanCost := clockScan.Now()

	clockShuf := iosim.NewClock()
	devShuf := iosim.NewDevice(iosim.HDD, clockShuf)
	tabShuf, err := Build(devShuf, ds, Options{BlockSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err = ShuffleOnceCopy(tabShuf, rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
	if clockShuf.Now() < 2*scanCost {
		t.Fatalf("shuffle once cost %v should be well above one scan %v", clockShuf.Now(), scanCost)
	}
}

func TestTableMetadataAccessors(t *testing.T) {
	ds := testDataset(100, 7)
	tab, _ := buildTable(t, ds, Options{})
	if tab.Task() != data.TaskBinary || tab.Features() != 7 || tab.Classes() != 2 {
		t.Fatalf("metadata wrong: %v/%d/%d", tab.Task(), tab.Features(), tab.Classes())
	}
	if tab.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
	if tab.Device() == nil || tab.Options().BlockSize != 10<<20 {
		t.Fatal("accessors broken")
	}
}

func TestBlockFirstIDs(t *testing.T) {
	ds := testDataset(500, 8)
	tab, _ := buildTable(t, ds, Options{BlockSize: 4 << 10})
	next := int64(0)
	for i, m := range tab.meta {
		if m.FirstID != next {
			t.Fatalf("block %d FirstID = %d, want %d", i, m.FirstID, next)
		}
		next += int64(m.Tuples)
	}
}

func TestBlockChecksumDetectsCorruption(t *testing.T) {
	ds := testDataset(300, 8)
	tab, _ := buildTable(t, ds, Options{BlockSize: 4 << 10})
	// Flip a byte inside the first block's payload.
	tab.file[tab.meta[0].Offset+30] ^= 0xFF
	if _, err := tab.ReadBlock(0); err == nil {
		t.Fatal("corrupted block should fail its checksum")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("error %v should mention checksum", err)
	}
	// Other blocks stay readable.
	if _, err := tab.ReadBlock(1); err != nil {
		t.Fatalf("unrelated block failed: %v", err)
	}
}

func TestBlockChecksumCompressed(t *testing.T) {
	ds := testDataset(300, 16)
	tab, _ := buildTable(t, ds, Options{BlockSize: 8 << 10, Compress: true})
	tab.file[tab.meta[0].Offset+26] ^= 0x01
	if _, err := tab.ReadBlock(0); err == nil {
		t.Fatal("corrupted compressed block should fail")
	}
}
