package storage

import (
	"errors"
	"sync"
)

// Write-path fault injection for the WAL. iosim.FaultPlan (PR 3) covers
// the read path; this file covers the other half: what happens when the
// durability write itself fails. WriteFaults wraps the WAL's WriteSyncer
// (via OpenWALFile / db.WALOptions.WrapSyncer) and injects the three
// classic failures — a device that fills up mid-record (short write +
// ENOSPC), a write that errors outright, and an fsync that fails — so
// tests can assert the error reaches the SQL caller and the log stays
// replayable.

// ErrNoSpace is the injected device-full error.
var ErrNoSpace = errors.New("storage: injected no space left on device")

// ErrSyncFailed is the injected fsync error.
var ErrSyncFailed = errors.New("storage: injected fsync failure")

// WriteFaults is a deterministic write-path fault plan. The zero value
// injects nothing. One plan drives one WAL; its Wrap method is the
// function OpenWALFile wants.
type WriteFaults struct {
	// FailAfterBytes, when > 0, makes the device "fill up": the write that
	// would push the total bytes written past this budget lands only the
	// remaining room (a short write — a torn frame on real media) and
	// fails with ErrNoSpace, as do all later writes.
	FailAfterBytes int64

	// SyncFailAt, when > 0, makes the Nth Sync call (1-based) fail with
	// ErrSyncFailed. Earlier and later syncs succeed.
	SyncFailAt int

	mu      sync.Mutex
	written int64
	syncs   int
}

// Wrap returns ws with the plan's faults layered on top.
func (p *WriteFaults) Wrap(ws WriteSyncer) WriteSyncer {
	return &faultyWriteSyncer{ws: ws, plan: p}
}

// Writes reports the total bytes the plan has let through.
func (p *WriteFaults) Writes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.written
}

type faultyWriteSyncer struct {
	ws   WriteSyncer
	plan *WriteFaults
}

func (f *faultyWriteSyncer) Write(b []byte) (int, error) {
	p := f.plan
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.FailAfterBytes > 0 && p.written+int64(len(b)) > p.FailAfterBytes {
		room := p.FailAfterBytes - p.written
		if room < 0 {
			room = 0
		}
		n, _ := f.ws.Write(b[:room])
		p.written += int64(n)
		return n, ErrNoSpace
	}
	n, err := f.ws.Write(b)
	p.written += int64(n)
	return n, err
}

func (f *faultyWriteSyncer) Sync() error {
	p := f.plan
	p.mu.Lock()
	p.syncs++
	fail := p.SyncFailAt > 0 && p.syncs == p.SyncFailAt
	p.mu.Unlock()
	if fail {
		return ErrSyncFailed
	}
	return f.ws.Sync()
}
