package storage

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"corgipile/internal/iosim"
)

func TestIsTransientClassification(t *testing.T) {
	wrapped := fmt.Errorf("storage: block 3: %w", iosim.ErrTransient)
	if !IsTransient(wrapped) {
		t.Fatal("wrapped ErrTransient must classify as transient")
	}
	if IsTransient(ErrCorrupt) || IsTransient(fmt.Errorf("x: %w", ErrCorrupt)) {
		t.Fatal("ErrCorrupt must classify as permanent")
	}
	if IsTransient(errors.New("other")) || IsTransient(nil) {
		t.Fatal("unrelated errors and nil must classify as permanent")
	}
}

func TestRetryPolicyZeroValueDisabled(t *testing.T) {
	var p RetryPolicy
	if p.Enabled() {
		t.Fatal("zero policy must be disabled")
	}
	calls := 0
	err := p.Do(nil, nil, nil, func() error {
		calls++
		return fmt.Errorf("fail: %w", iosim.ErrTransient)
	})
	if calls != 1 || err == nil {
		t.Fatalf("disabled policy made %d calls (err %v), want exactly 1", calls, err)
	}
}

func TestRetryDoRecoversWithinBudget(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, Backoff: time.Millisecond, Seed: 9}
	clock := iosim.NewClock()
	fails := 2
	calls := 0
	var waits []time.Duration
	err := p.Do(nil, clock, func(w time.Duration) { waits = append(waits, w) }, func() error {
		calls++
		if fails > 0 {
			fails--
			return fmt.Errorf("blip: %w", iosim.ErrTransient)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
	if len(waits) != 2 {
		t.Fatalf("observed %d backoffs, want 2", len(waits))
	}
	var total time.Duration
	for _, w := range waits {
		total += w
	}
	if clock.Now() != total {
		t.Fatalf("clock charged %v, backoffs sum to %v", clock.Now(), total)
	}
	// Exponential growth: second window is [1ms, 2ms], first [0.5ms, 1ms].
	if waits[0] < p.Backoff/2 || waits[0] > p.Backoff {
		t.Fatalf("first backoff %v outside equal-jitter window", waits[0])
	}
	if waits[1] < p.Backoff || waits[1] > 2*p.Backoff {
		t.Fatalf("second backoff %v outside doubled window", waits[1])
	}
}

func TestRetryDoDeterministicBackoff(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, Backoff: time.Millisecond, Seed: 42}
	trace := func() []time.Duration {
		var waits []time.Duration
		p.Do(nil, nil, func(w time.Duration) { waits = append(waits, w) }, func() error {
			return fmt.Errorf("always: %w", iosim.ErrTransient)
		})
		return waits
	}
	a, b := trace(), trace()
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("want 4 backoffs per exhausted run, got %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff %d differs between runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRetryDoPermanentErrorImmediate(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10}
	calls := 0
	err := p.Do(nil, nil, nil, func() error {
		calls++
		return fmt.Errorf("bad block: %w", ErrCorrupt)
	})
	if calls != 1 || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("permanent error retried: %d calls, err %v", calls, err)
	}
}

func TestRetryDoExhaustsBudget(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	calls := 0
	err := p.Do(nil, nil, nil, func() error {
		calls++
		return fmt.Errorf("storm: %w", iosim.ErrTransient)
	})
	if calls != 3 || !errors.Is(err, iosim.ErrTransient) {
		t.Fatalf("budget exhaustion: %d calls, err %v", calls, err)
	}
}

func TestRetryDoCanceledContext(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 100, Backoff: time.Millisecond}

	// Already-canceled context: no attempt at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := p.Do(ctx, nil, nil, func() error {
		calls++
		return fmt.Errorf("storm: %w", iosim.ErrTransient)
	})
	if calls != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Do made %d calls, err %v; want 0 calls, context.Canceled", calls, err)
	}

	// Cancel fired during an attempt: the loop must stop before the next
	// backoff instead of draining the 100-attempt budget, and must surface
	// ctx.Err() so callers can distinguish cancellation from exhaustion.
	ctx, cancel = context.WithCancel(context.Background())
	clock := iosim.NewClock()
	calls = 0
	backoffs := 0
	err = p.Do(ctx, clock, func(time.Duration) { backoffs++ }, func() error {
		calls++
		if calls == 3 {
			cancel()
		}
		return fmt.Errorf("storm: %w", iosim.ErrTransient)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-storm cancel returned %v, want context.Canceled", err)
	}
	if calls != 3 {
		t.Fatalf("made %d attempts after cancel at attempt 3, want exactly 3", calls)
	}
	if backoffs != 2 {
		t.Fatalf("took %d backoffs, want 2 (none after cancel)", backoffs)
	}
}

func TestReadBlockSurfacesTransientFault(t *testing.T) {
	ds := testDataset(300, 8)
	clock := iosim.NewClock()
	dev := iosim.NewDevice(iosim.SSD, clock).WithFaults(
		iosim.FaultPlan{Seed: 1, ReadErrorProb: 1})
	tab, err := Build(dev, ds, Options{BlockSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	_, err = tab.ReadBlock(0)
	if !IsTransient(err) {
		t.Fatalf("ReadBlock on prob-1 device returned %v, want transient", err)
	}
}

func TestReadBlockCorruptInjection(t *testing.T) {
	ds := testDataset(300, 8)
	for _, compress := range []bool{false, true} {
		clock := iosim.NewClock()
		dev := iosim.NewDevice(iosim.SSD, clock).WithFaults(
			iosim.FaultPlan{CorruptBlocks: []int{1}})
		tab, err := Build(dev, ds, Options{BlockSize: 4 << 10, Compress: compress})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tab.ReadBlock(0); err != nil {
			t.Fatalf("compress=%v: clean block failed: %v", compress, err)
		}
		_, err = tab.ReadBlock(1)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("compress=%v: injected corruption returned %v, want ErrCorrupt", compress, err)
		}
		if IsTransient(err) {
			t.Fatalf("compress=%v: corruption must be permanent", compress)
		}
		// The underlying file is untouched: lifting the plan heals the block.
		dev.WithFaults(iosim.FaultPlan{})
		if _, err := tab.ReadBlock(1); err != nil {
			t.Fatalf("compress=%v: block stayed corrupt after plan removed: %v", compress, err)
		}
	}
}

func TestRetriedReadBlockEventuallySucceeds(t *testing.T) {
	ds := testDataset(300, 8)
	clock := iosim.NewClock()
	// Burst of 2 with prob 1 would never succeed; instead use a plan whose
	// failures are probabilistic so retries can win.
	dev := iosim.NewDevice(iosim.SSD, clock).WithFaults(
		iosim.FaultPlan{Seed: 5, ReadErrorProb: 0.5})
	tab, err := Build(dev, ds, Options{BlockSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	p := RetryPolicy{MaxAttempts: 20, Backoff: time.Millisecond, Seed: 5}
	for i := 0; i < tab.NumBlocks(); i++ {
		err := p.Do(nil, clock, nil, func() error {
			_, e := tab.ReadBlock(i)
			return e
		})
		if err != nil {
			t.Fatalf("block %d not readable in 20 attempts: %v", i, err)
		}
	}
}
