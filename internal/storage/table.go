package storage

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"sync"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
)

// Options configures table layout.
type Options struct {
	// BlockSize is the target uncompressed bytes per block — the unit of
	// random access for the BlockShuffle operator. Default 10 MiB (the
	// paper's recommended setting).
	BlockSize int64
	// PageSize is the heap page size; blocks hold whole pages. Default
	// 8 KiB (PostgreSQL's page size).
	PageSize int64
	// Compress enables per-block flate compression, modelling PostgreSQL's
	// TOAST for wide tuples (the paper's epsilon and yfcc datasets).
	Compress bool
	// DecompressRate is the modelled decompression throughput in
	// bytes/second of raw output; it throttles compressed reads the way
	// TOAST throttled the paper's yfcc loading to ~130 MB/s. Default 150e6.
	DecompressRate float64
	// ChargeBuild charges the cost of writing the table to the device's
	// clock. Off by default: experiments start from an existing table.
	ChargeBuild bool
}

func (o Options) withDefaults() Options {
	if o.BlockSize <= 0 {
		o.BlockSize = 10 << 20
	}
	if o.PageSize <= 0 {
		o.PageSize = 8 << 10
	}
	if o.DecompressRate <= 0 {
		o.DecompressRate = 150e6
	}
	return o
}

// BlockMeta records one block in the table's block index, the structure the
// BlockShuffle operator consults to address random blocks.
type BlockMeta struct {
	// Offset and Len locate the block's bytes in the table file (Len is the
	// on-disk, possibly compressed, length).
	Offset int64
	Len    int64
	// RawLen is the uncompressed payload length.
	RawLen int64
	// Tuples is the number of tuples stored in the block.
	Tuples int
	// FirstID is the ID of the block's first tuple in storage order.
	FirstID int64
}

// RawBlock is the device-independent form of one block: the raw
// (uncompressed) tuple payload plus its tuple count and first tuple ID. It
// is what the write-ahead log records for an append — replaying a RawBlock
// through AppendRawBlock reproduces the block bit-for-bit, including
// recompression, on any device.
type RawBlock struct {
	// Raw is the concatenated tuple encodings (AppendTuple format).
	Raw []byte
	// Tuples is the number of tuples encoded in Raw.
	Tuples int
	// FirstID is the ID of the block's first tuple.
	FirstID int64
}

// Table is a heap table laid out in blocks on a simulated device.
//
// Tuple bytes live in memory (the file slice); the device accounts for the
// simulated time real hardware would spend serving each access.
//
// Tables are mutable: AppendTuples/AppendRawBlock add whole blocks to the
// tail under an internal lock, and existing blocks are never rewritten, so
// concurrent readers (a training epoch in flight) observe a stable prefix
// while ingestion extends the table.
type Table struct {
	Name string

	dev  *iosim.Device
	opts Options

	mu   sync.RWMutex
	file []byte
	meta []BlockMeta

	task     data.Task
	features int
	classes  int
	tuples   int
}

// NewEmpty returns an empty table with the given schema on dev — the
// starting point for WAL replay and for ingestion-built tables.
func NewEmpty(dev *iosim.Device, name string, task data.Task, features, classes int, opts Options) *Table {
	return &Table{
		Name:     name,
		dev:      dev,
		opts:     opts.withDefaults(),
		task:     task,
		features: features,
		classes:  classes,
	}
}

// Build lays the dataset out as a table on the device. Tuples are packed
// into pages and pages into blocks of opts.BlockSize bytes; a tuple never
// spans blocks, so each block decodes independently.
func Build(dev *iosim.Device, ds *data.Dataset, opts Options) (*Table, error) {
	t := NewEmpty(dev, ds.Name, ds.Task, ds.Features, ds.Classes, opts)
	if _, err := t.appendTuples(ds.Tuples, false); err != nil {
		return nil, err
	}
	return t, nil
}

// AppendTuples packs ts into new blocks appended to the table tail,
// returning the raw form of every appended block so callers (the WAL) can
// log exactly what changed. Appends never rewrite existing blocks: the last
// block of the table stays as it was, so a trailing short block is possible
// — every reader already tolerates variable block sizes.
func (t *Table) AppendTuples(ts []data.Tuple) ([]RawBlock, error) {
	return t.appendTuples(ts, true)
}

// appendTuples is AppendTuples with an optional retained copy of each raw
// payload; Build skips the copies since nothing logs them.
func (t *Table) appendTuples(ts []data.Tuple, keepRaw bool) ([]RawBlock, error) {
	var out []RawBlock
	var raw []byte
	var count int
	firstID := int64(0)
	flush := func() error {
		if count == 0 {
			return nil
		}
		rb := RawBlock{Raw: raw, Tuples: count, FirstID: firstID}
		if err := t.AppendRawBlock(rb); err != nil {
			return err
		}
		if keepRaw {
			rb.Raw = append([]byte(nil), raw...)
			out = append(out, rb)
		}
		raw = raw[:0]
		count = 0
		return nil
	}
	for i := range ts {
		tp := &ts[i]
		if count == 0 {
			firstID = tp.ID
		}
		raw = AppendTuple(raw, tp)
		count++
		if int64(len(raw)) >= t.opts.BlockSize-24 {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// AppendRawBlock appends one block from its raw form — the WAL replay path.
// The payload is validated tuple by tuple before any table state changes,
// so a corrupt record can never install an undecodable block.
func (t *Table) AppendRawBlock(rb RawBlock) error {
	if _, err := DecodeRawTuples(rb.Raw, rb.Tuples); err != nil {
		return fmt.Errorf("storage: append block: %w", err)
	}
	payload := rb.Raw
	rawLen := int64(len(rb.Raw))
	if t.opts.Compress {
		var buf bytes.Buffer
		fw, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return fmt.Errorf("storage: flate init: %w", err)
		}
		if _, err := fw.Write(rb.Raw); err != nil {
			return fmt.Errorf("storage: compress: %w", err)
		}
		if err := fw.Close(); err != nil {
			return fmt.Errorf("storage: compress close: %w", err)
		}
		payload = buf.Bytes()
	}
	// Block header: tuple count, raw length, payload length, CRC32 of
	// the payload (integrity check on every read).
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(rb.Tuples))
	binary.LittleEndian.PutUint64(hdr[4:], uint64(rawLen))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[20:], crc32.ChecksumIEEE(payload))

	t.mu.Lock()
	offset := int64(len(t.file))
	t.file = append(t.file, hdr[:]...)
	t.file = append(t.file, payload...)
	// Pad uncompressed blocks to whole pages so BN matches
	// page_num*page_size/block_size as in the paper's operator.
	if !t.opts.Compress {
		total := int64(len(hdr)) + int64(len(payload))
		if rem := total % t.opts.PageSize; rem != 0 {
			t.file = append(t.file, make([]byte, t.opts.PageSize-rem)...)
		}
	}
	blockLen := int64(len(t.file)) - offset
	t.meta = append(t.meta, BlockMeta{
		Offset: offset, Len: blockLen, RawLen: rawLen, Tuples: rb.Tuples, FirstID: rb.FirstID,
	})
	t.tuples += rb.Tuples
	t.mu.Unlock()
	if t.opts.ChargeBuild {
		t.dev.WriteAt(offset, blockLen)
	}
	return nil
}

// Device returns the device the table lives on.
func (t *Table) Device() *iosim.Device { return t.dev }

// Options returns the table's layout options.
func (t *Table) Options() Options { return t.opts }

// Task returns the learning task of the stored dataset.
func (t *Table) Task() data.Task { return t.task }

// Features returns the feature dimensionality of the stored dataset.
func (t *Table) Features() int { return t.features }

// Classes returns the number of classes of the stored dataset.
func (t *Table) Classes() int { return t.classes }

// TruncateBlocks drops blocks from the tail until n remain — the rollback
// hook for an append whose WAL record could not be made durable. Durable
// state is the source of truth: if the log rejected the record, the
// in-memory blocks must go too, or a restart would silently lose tuples
// the session still served. Snapshots taken before the call stay valid
// (the retained prefix is re-sliced with full capacity bounds so later
// appends reallocate instead of overwriting).
func (t *Table) TruncateBlocks(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 0 || n >= len(t.meta) {
		return
	}
	cut := t.meta[n].Offset
	for _, m := range t.meta[n:] {
		t.tuples -= m.Tuples
	}
	t.meta = t.meta[:n:n]
	t.file = t.file[:cut:cut]
}

// NumBlocks returns the number of blocks (the paper's N).
func (t *Table) NumBlocks() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.meta)
}

// NumTuples returns the number of tuples (the paper's m).
func (t *Table) NumTuples() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.tuples
}

// SizeBytes returns the on-disk size of the table file.
func (t *Table) SizeBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return int64(len(t.file))
}

// BlockTuples returns the tuple count of block i.
func (t *Table) BlockTuples(i int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.meta[i].Tuples
}

// snapshot captures the block index and file image under the read lock.
// Blocks are immutable once appended and the file only grows, so the
// returned slices stay valid while concurrent appends extend the table.
func (t *Table) snapshot() ([]BlockMeta, []byte) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.meta, t.file
}

// snapshotBlock captures one block's metadata and bytes.
func (t *Table) snapshotBlock(i int) (BlockMeta, []byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if i < 0 || i >= len(t.meta) {
		return BlockMeta{}, nil, fmt.Errorf("storage: block %d out of range [0,%d)", i, len(t.meta))
	}
	m := t.meta[i]
	return m, t.file[m.Offset : m.Offset+m.Len : m.Offset+m.Len], nil
}

// ReadBlock reads and decodes block i, charging the device (and therefore
// the simulated clock) for the access. Compressed blocks additionally pay
// the modelled decompression time. A device fault plan may make the read
// fail transiently (an error wrapping iosim.ErrTransient) or return the
// block's payload with a flipped bit, which the CRC check converts into a
// permanent ErrCorrupt.
func (t *Table) ReadBlock(i int) ([]data.Tuple, error) {
	m, blk, err := t.snapshotBlock(i)
	if err != nil {
		return nil, err
	}
	if _, err := t.dev.TryReadAt(m.Offset, m.Len); err != nil {
		return nil, fmt.Errorf("storage: block %d: %w", i, err)
	}
	if t.dev.BlockCorrupt(i) {
		// Decode a copy with one payload bit flipped: the checksum trips
		// exactly as it would for real media corruption.
		buf := append([]byte(nil), blk...)
		if len(buf) > 24 {
			buf[24] ^= 0x01
		}
		tuples, err := t.decodeBlockBytes(m, buf)
		if err != nil {
			return nil, fmt.Errorf("storage: block %d: %w", i, err)
		}
		return tuples, nil
	}
	return t.decodeBlockBytes(m, blk)
}

// RawBlockAt reconstructs block i's raw form without charging any simulated
// I/O — the checkpoint writer's read path.
func (t *Table) RawBlockAt(i int) (RawBlock, error) {
	m, blk, err := t.snapshotBlock(i)
	if err != nil {
		return RawBlock{}, err
	}
	if !t.opts.Compress {
		if int64(len(blk)) < 24+m.RawLen {
			return RawBlock{}, fmt.Errorf("%w: block %d shorter than its raw length", ErrCorrupt, i)
		}
		raw := append([]byte(nil), blk[24:24+m.RawLen]...)
		return RawBlock{Raw: raw, Tuples: m.Tuples, FirstID: m.FirstID}, nil
	}
	tuples, err := t.decodeBlockUncharged(m, blk)
	if err != nil {
		return RawBlock{}, err
	}
	var raw []byte
	for i := range tuples {
		raw = AppendTuple(raw, &tuples[i])
	}
	return RawBlock{Raw: raw, Tuples: m.Tuples, FirstID: m.FirstID}, nil
}

// maxFlateRatio bounds flate's expansion: rawLen claims beyond this ratio
// of the stored payload are rejected as corrupt before any allocation.
const maxFlateRatio = 1032

// decodeBlockBytes decodes the tuples of block m from buf. Every header
// field is validated against m.Len and the actual payload before it is
// trusted: a hostile or bit-flipped header yields ErrCorrupt, never a panic
// or an unbounded allocation.
func (t *Table) decodeBlockBytes(m BlockMeta, buf []byte) ([]data.Tuple, error) {
	if len(buf) < 24 {
		return nil, fmt.Errorf("%w: short block header", ErrCorrupt)
	}
	count := int64(binary.LittleEndian.Uint32(buf[0:]))
	rawLen := int64(binary.LittleEndian.Uint64(buf[4:]))
	payLen := int64(binary.LittleEndian.Uint64(buf[12:]))
	sum := binary.LittleEndian.Uint32(buf[20:])
	if payLen < 0 || payLen > int64(len(buf))-24 {
		return nil, fmt.Errorf("%w: payload length %d out of range for %d-byte block", ErrCorrupt, payLen, len(buf))
	}
	if rawLen < 0 || (!t.opts.Compress && rawLen != payLen) || rawLen > payLen*maxFlateRatio+64 {
		return nil, fmt.Errorf("%w: raw length %d inconsistent with %d-byte payload", ErrCorrupt, rawLen, payLen)
	}
	if count*tupleHeaderSize > rawLen {
		return nil, fmt.Errorf("%w: tuple count %d exceeds %d-byte raw payload", ErrCorrupt, count, rawLen)
	}
	payload := buf[24 : 24+payLen]
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: block checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, sum, got)
	}
	if t.opts.Compress {
		fr := flate.NewReader(bytes.NewReader(payload))
		raw, err := io.ReadAll(io.LimitReader(fr, rawLen+1))
		if err != nil {
			return nil, fmt.Errorf("storage: decompress: %w", err)
		}
		if err := fr.Close(); err != nil {
			return nil, fmt.Errorf("storage: decompress close: %w", err)
		}
		if int64(len(raw)) != rawLen {
			return nil, fmt.Errorf("%w: decompressed %d bytes, header claims %d", ErrCorrupt, len(raw), rawLen)
		}
		payload = raw
		// Charge modelled decompression time.
		t.dev.Clock().Advance(time.Duration(float64(rawLen) / t.opts.DecompressRate * float64(time.Second)))
	}
	if maxTuples := int64(len(payload)) / tupleHeaderSize; count > maxTuples {
		return nil, fmt.Errorf("%w: tuple count %d exceeds %d-byte payload", ErrCorrupt, count, len(payload))
	}
	tuples := make([]data.Tuple, 0, count)
	for int64(len(tuples)) < count {
		tp, n, err := DecodeTuple(payload)
		if err != nil {
			return nil, err
		}
		tuples = append(tuples, tp)
		payload = payload[n:]
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes after %d tuples", ErrCorrupt, len(payload), count)
	}
	return tuples, nil
}

// ScanAll reads every block in storage order, returning all tuples and
// charging sequential I/O. The block range is captured at entry: blocks
// appended while the scan runs are not included.
func (t *Table) ScanAll() ([]data.Tuple, error) {
	n := t.NumBlocks()
	out := make([]data.Tuple, 0, t.NumTuples())
	for i := 0; i < n; i++ {
		ts, err := t.ReadBlock(i)
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
	}
	return out, nil
}

// DecodeAll decodes every tuple without charging any simulated I/O. It is
// used for out-of-band model evaluation, which the paper's measurements
// also exclude from training time.
func (t *Table) DecodeAll() ([]data.Tuple, error) {
	meta, file := t.snapshot()
	out := make([]data.Tuple, 0, t.NumTuples())
	for _, m := range meta {
		ts, err := t.decodeBlockUncharged(m, file[m.Offset:m.Offset+m.Len])
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
	}
	return out, nil
}

// decodeBlockUncharged decodes a block without charging decompression time.
func (t *Table) decodeBlockUncharged(m BlockMeta, blk []byte) ([]data.Tuple, error) {
	if !t.opts.Compress {
		return t.decodeBlockBytes(m, blk)
	}
	// Temporarily drop the decompress charge by decoding around the clock:
	// decodeBlockBytes charges via the device clock, so save/restore it.
	clk := t.dev.Clock()
	before := clk.Now()
	ts, err := t.decodeBlockBytes(m, blk)
	clk.Set(before)
	return ts, err
}

// ShuffleOnceCopy materializes a fully shuffled copy of the table — the
// Shuffle Once baseline. It charges the cost PostgreSQL's
// ORDER BY RANDOM() external sort pays: two sequential read passes and two
// sequential write passes over the data (run generation + merge), and it
// doubles the disk footprint, exactly the overheads Table 1 attributes to
// Shuffle Once.
func ShuffleOnceCopy(t *Table, rng *rand.Rand) (*Table, error) {
	tuples, err := t.ScanAll() // pass 1: read
	if err != nil {
		return nil, err
	}
	rng.Shuffle(len(tuples), func(i, j int) { tuples[i], tuples[j] = tuples[j], tuples[i] })

	size := t.SizeBytes()
	dev := t.dev
	// Run generation write, merge read, final write.
	dev.WriteAt(size, size)
	dev.ReadAt(size, size)
	dev.WriteAt(2*size, size)

	ds := &data.Dataset{
		Name:     t.Name + "-shuffled",
		Task:     t.task,
		Features: t.features,
		Classes:  t.classes,
		Tuples:   tuples,
	}
	opts := t.opts
	opts.ChargeBuild = false // write cost charged above
	return Build(dev, ds, opts)
}
