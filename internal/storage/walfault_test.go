package storage

import (
	"bytes"
	"errors"
	"io"
	"os"
	"testing"
)

// TestWALShortWriteRollsBack: an injected device-full error must fail the
// append AND leave the file at the previous record boundary, so the next
// open replays a clean log with no torn prefix hiding later records.
func TestWALShortWriteRollsBack(t *testing.T) {
	path := walPath(t)
	plan := &WriteFaults{FailAfterBytes: 60}
	w, _, err := OpenWALFile(path, plan.Wrap)
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := w.Append(WALCreateTable, []byte("small"))
	if err != nil || lsn != 1 {
		t.Fatalf("first append: lsn %d err %v", lsn, err)
	}
	goodSize := w.Size()

	// This frame would cross the 60-byte budget: short write + ENOSPC.
	if _, err := w.Append(WALAppendBlock, bytes.Repeat([]byte{0xCD}, 100)); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("over-budget append: got %v, want ErrNoSpace", err)
	}
	if got := w.Size(); got != goodSize {
		t.Fatalf("size after failed append: %d, want rollback to %d", got, goodSize)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != goodSize {
		t.Fatalf("file size %d after rollback, want %d", st.Size(), goodSize)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != 1 || recs[0].LSN != 1 {
		t.Fatalf("replay after rollback: %d records", len(recs))
	}
}

// TestWALSyncFailurePoisons: a failed fsync leaves the page cache in an
// unknowable state, so the log must fail closed — the original statement's
// Sync errors and every later append refuses to run.
func TestWALSyncFailurePoisons(t *testing.T) {
	path := walPath(t)
	plan := &WriteFaults{SyncFailAt: 2}
	w, _, err := OpenWALFile(path, plan.Wrap)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(WALCreateTable, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("first sync should pass: %v", err)
	}
	if _, err := w.Append(WALCreateTable, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("second sync: got %v, want ErrSyncFailed", err)
	}
	if _, err := w.Append(WALCreateTable, []byte("c")); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("append after poisoned sync: got %v, want wrapped ErrSyncFailed", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("sync after poisoned sync: got %v, want wrapped ErrSyncFailed", err)
	}
}

// TestWALTornTailStillTruncatedOnOpen: when a torn frame does reach disk
// (crash mid-write, no rollback possible), recovery truncates it.
func TestWALTornTailStillTruncatedOnOpen(t *testing.T) {
	path := walPath(t)
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(WALCreateTable, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	goodSize := w.Size()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Half a frame of a would-be second record.
	frame := AppendWALRecord(nil, WALRecord{LSN: 2, Type: WALAppendBlock, Payload: bytes.Repeat([]byte{1}, 64)})
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != 1 {
		t.Fatalf("replay with torn tail: %d records, want 1", len(recs))
	}
	st, _ := os.Stat(path)
	if st.Size() != goodSize {
		t.Fatalf("torn tail not truncated: file %d bytes, want %d", st.Size(), goodSize)
	}
	if w2.Size() != goodSize {
		t.Fatalf("WAL size %d, want %d", w2.Size(), goodSize)
	}
}

// TestWALAppendRecordPreservesLSNs: the replica apply path writes records
// verbatim and rejects stale LSNs instead of double-applying.
func TestWALAppendRecordPreservesLSNs(t *testing.T) {
	path := walPath(t)
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, lsn := range []uint64{7, 9, 12} {
		if err := w.AppendRecord(WALRecord{LSN: lsn, Type: WALCreateTable, Payload: []byte("x")}); err != nil {
			t.Fatalf("lsn %d: %v", lsn, err)
		}
	}
	if err := w.AppendRecord(WALRecord{LSN: 12, Type: WALCreateTable}); !errors.Is(err, ErrStaleLSN) {
		t.Fatalf("duplicate lsn: got %v, want ErrStaleLSN", err)
	}
	if got := w.NextLSN(); got != 13 {
		t.Fatalf("NextLSN %d, want 13", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].LSN != 7 || recs[2].LSN != 12 {
		t.Fatalf("replay: %+v", recs)
	}
}

// TestWALNotifyOrder: the notify hook fires once per appended record, in
// LSN order, for both Append and AppendRecord.
func TestWALNotifyOrder(t *testing.T) {
	path := walPath(t)
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var seen []uint64
	w.WithNotify(func(rec WALRecord) { seen = append(seen, rec.LSN) })
	for i := 0; i < 3; i++ {
		if _, err := w.Append(WALCreateTable, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AppendRecord(WALRecord{LSN: 10, Type: WALDropTable}); err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 3, 10}
	if len(seen) != len(want) {
		t.Fatalf("notify calls: %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("notify order: %v, want %v", seen, want)
		}
	}
}

// TestReadWALRecordStream: the socket-side frame decoder round-trips
// records, reports clean EOF only at frame boundaries, and flags CRC
// damage as ErrCorrupt.
func TestReadWALRecordStream(t *testing.T) {
	var buf []byte
	recs := []WALRecord{
		{LSN: 1, Type: WALCreateTable, Payload: []byte(`{"n":"t"}`)},
		{LSN: 2, Type: WALAppendBlock, Payload: bytes.Repeat([]byte{0x5A}, 300)},
		{LSN: 3, Type: WALDropTable, Payload: nil},
	}
	for _, r := range recs {
		buf = AppendWALRecord(buf, r)
	}
	r := bytes.NewReader(buf)
	for i, want := range recs {
		got, err := ReadWALRecord(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.LSN != want.LSN || got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("record %d mismatch: %+v", i, got)
		}
	}
	if _, err := ReadWALRecord(r); err != io.EOF {
		t.Fatalf("at end: %v, want io.EOF", err)
	}

	// Truncated mid-frame (the cut lands in record 3's header since its
	// payload is empty): ErrUnexpectedEOF once the stream reaches it.
	torn := bytes.NewReader(buf[:len(buf)-1])
	var err error
	for err == nil {
		_, err = ReadWALRecord(torn)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn frame: %v, want ErrUnexpectedEOF", err)
	}

	// Flip a payload byte: CRC must catch it.
	bad := append([]byte(nil), buf...)
	bad[walHeaderSize+2] ^= 0xFF
	if _, err := ReadWALRecord(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt frame: %v, want ErrCorrupt", err)
	}
}

// TestWALPrefixLen: the prefix length function cuts exactly at record
// boundaries by LSN.
func TestWALPrefixLen(t *testing.T) {
	var buf []byte
	var ends []int
	for lsn := uint64(1); lsn <= 4; lsn++ {
		buf = AppendWALRecord(buf, WALRecord{LSN: lsn, Type: WALCreateTable, Payload: bytes.Repeat([]byte{byte(lsn)}, int(lsn)*10)})
		ends = append(ends, len(buf))
	}
	if got := WALPrefixLen(buf, 0); got != 0 {
		t.Fatalf("upto 0: %d", got)
	}
	for i, end := range ends {
		if got := WALPrefixLen(buf, uint64(i+1)); got != end {
			t.Fatalf("upto %d: %d, want %d", i+1, got, end)
		}
	}
	if got := WALPrefixLen(buf, 99); got != len(buf) {
		t.Fatalf("upto 99: %d, want %d", got, len(buf))
	}
}

// TestTableTruncateBlocks: the insert rollback hook restores block and
// tuple counts and later appends still decode.
func TestTableTruncateBlocks(t *testing.T) {
	ds := testDataset(200, 6)
	tab, _ := buildTable(t, ds, Options{BlockSize: 4 << 10})
	pre := tab.NumBlocks()
	preTuples := tab.NumTuples()

	// Append one more block, then roll it back.
	rb, err := tab.RawBlockAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.AppendRawBlock(rb); err != nil {
		t.Fatal(err)
	}
	if tab.NumBlocks() != pre+1 {
		t.Fatalf("append did not land")
	}
	tab.TruncateBlocks(pre)
	if tab.NumBlocks() != pre || tab.NumTuples() != preTuples {
		t.Fatalf("rollback: %d blocks / %d tuples, want %d / %d",
			tab.NumBlocks(), tab.NumTuples(), pre, preTuples)
	}
	// Re-append after rollback: the file must extend cleanly.
	if err := tab.AppendRawBlock(rb); err != nil {
		t.Fatal(err)
	}
	tuples, err := tab.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != preTuples+rb.Tuples {
		t.Fatalf("decode after rollback+reappend: %d tuples", len(tuples))
	}
}
