package storage

import (
	"math"
	"testing"
	"testing/quick"

	"corgipile/internal/data"
)

func TestTupleRoundTripDense(t *testing.T) {
	orig := data.Tuple{ID: 42, Label: -1, Dense: []float64{1.5, -2.25, 0, math.Pi}}
	buf := AppendTuple(nil, &orig)
	if len(buf) != EncodedTupleSize(&orig) {
		t.Fatalf("encoded %d bytes, size func says %d", len(buf), EncodedTupleSize(&orig))
	}
	got, n, err := DecodeTuple(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if got.ID != 42 || got.Label != -1 || got.IsSparse() {
		t.Fatalf("decoded header wrong: %+v", got)
	}
	for i := range orig.Dense {
		if got.Dense[i] != orig.Dense[i] {
			t.Fatalf("dense[%d] = %v, want %v", i, got.Dense[i], orig.Dense[i])
		}
	}
}

func TestTupleRoundTripSparse(t *testing.T) {
	orig := data.Tuple{ID: 7, Label: 1, SparseIdx: []int32{3, 99, 1000}, SparseVal: []float64{0.5, -4, 8}}
	buf := AppendTuple(nil, &orig)
	got, _, err := DecodeTuple(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsSparse() || got.NNZ() != 3 {
		t.Fatalf("decoded shape wrong: %+v", got)
	}
	for i := range orig.SparseIdx {
		if got.SparseIdx[i] != orig.SparseIdx[i] || got.SparseVal[i] != orig.SparseVal[i] {
			t.Fatalf("sparse[%d] mismatch", i)
		}
	}
}

func TestTupleRoundTripEmpty(t *testing.T) {
	orig := data.Tuple{ID: 1, Label: 0, SparseIdx: []int32{}, SparseVal: []float64{}}
	buf := AppendTuple(nil, &orig)
	got, _, err := DecodeTuple(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsSparse() || got.NNZ() != 0 {
		t.Fatalf("empty sparse tuple decoded wrong: %+v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeTuple([]byte{1, 2, 3}); err == nil {
		t.Fatal("short header should error")
	}
	// Valid header claiming more payload than present.
	orig := data.Tuple{ID: 1, Dense: []float64{1, 2, 3}}
	buf := AppendTuple(nil, &orig)
	if _, _, err := DecodeTuple(buf[:len(buf)-4]); err == nil {
		t.Fatal("truncated dense payload should error")
	}
	s := data.Tuple{ID: 1, SparseIdx: []int32{1}, SparseVal: []float64{2}}
	sb := AppendTuple(nil, &s)
	if _, _, err := DecodeTuple(sb[:len(sb)-2]); err == nil {
		t.Fatal("truncated sparse payload should error")
	}
	// Corrupt flags byte.
	buf[16] = 9
	if _, _, err := DecodeTuple(buf); err == nil {
		t.Fatal("unknown flags should error")
	}
}

func TestMultipleTuplesStream(t *testing.T) {
	var buf []byte
	tuples := []data.Tuple{
		{ID: 0, Label: -1, Dense: []float64{1}},
		{ID: 1, Label: 1, SparseIdx: []int32{5}, SparseVal: []float64{2}},
		{ID: 2, Label: -1, Dense: []float64{3, 4}},
	}
	for i := range tuples {
		buf = AppendTuple(buf, &tuples[i])
	}
	for i := range tuples {
		got, n, err := DecodeTuple(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != tuples[i].ID {
			t.Fatalf("stream tuple %d has id %d", i, got.ID)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d leftover bytes", len(buf))
	}
}

// Property: round trip preserves any finite dense tuple.
func TestRoundTripProperty(t *testing.T) {
	f := func(id int64, label float64, vals []float64) bool {
		if math.IsNaN(label) {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) {
				return true
			}
		}
		orig := data.Tuple{ID: id, Label: label, Dense: vals}
		if vals == nil {
			orig.Dense = []float64{}
		}
		got, n, err := DecodeTuple(AppendTuple(nil, &orig))
		if err != nil || n != EncodedTupleSize(&orig) {
			return false
		}
		if got.ID != id || got.Label != label || len(got.Dense) != len(orig.Dense) {
			return false
		}
		for i := range orig.Dense {
			if got.Dense[i] != orig.Dense[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodedSizeMatchesDataEstimate(t *testing.T) {
	// data.Tuple.EncodedSize must stay in sync with the real codec.
	d := data.Tuple{ID: 1, Label: 1, Dense: []float64{1, 2, 3}}
	if EncodedTupleSize(&d) != d.EncodedSize() {
		t.Fatalf("dense: codec %d vs estimate %d", EncodedTupleSize(&d), d.EncodedSize())
	}
	s := data.Tuple{ID: 1, Label: 1, SparseIdx: []int32{1, 2}, SparseVal: []float64{1, 2}}
	if EncodedTupleSize(&s) != s.EncodedSize() {
		t.Fatalf("sparse: codec %d vs estimate %d", EncodedTupleSize(&s), s.EncodedSize())
	}
}
