package dist

import (
	"errors"
	"testing"
	"time"

	"corgipile/internal/iosim"
	"corgipile/internal/obs"
)

func crashConfig(workers int, plan *FaultPlan) Config {
	cfg := baseConfig(workers)
	cfg.Faults = plan
	return cfg
}

func TestZeroCrashPlanBitIdentical(t *testing.T) {
	ds := clusteredDS(2000)
	base, err := Train(ds, baseConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := Train(ds, crashConfig(4, &FaultPlan{Seed: 3, CrashProb: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Points) != len(faulted.Points) {
		t.Fatal("epoch counts differ")
	}
	for i := range base.Points {
		if base.Points[i] != faulted.Points[i] {
			t.Fatalf("epoch %d diverged: %+v vs %+v", i, base.Points[i], faulted.Points[i])
		}
	}
	for i := range base.W {
		if base.W[i] != faulted.W[i] {
			t.Fatalf("weight %d diverged under disabled plan", i)
		}
	}
}

func TestCrashRunDeterministic(t *testing.T) {
	ds := clusteredDS(2000)
	plan := &FaultPlan{Seed: 11, CrashProb: 0.3}
	run := func() ([]float64, []float64, int) {
		res, err := Train(ds, crashConfig(4, plan))
		if err != nil {
			t.Fatal(err)
		}
		losses := make([]float64, len(res.Points))
		for i, p := range res.Points {
			losses[i] = p.AvgLoss
		}
		return losses, res.W, res.Faults.WorkerCrashes
	}
	l1, w1, c1 := run()
	l2, w2, c2 := run()
	if c1 == 0 {
		t.Fatal("30% crash prob over 4 workers x 10 epochs injected nothing")
	}
	if c1 != c2 {
		t.Fatalf("crash counts differ: %d vs %d", c1, c2)
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("loss trace diverged at epoch %d: %v vs %v", i, l1[i], l2[i])
		}
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("final weights diverged at %d", i)
		}
	}
}

func TestCrashedRunStillConverges(t *testing.T) {
	ds := clusteredDS(4000)
	cfg := crashConfig(4, &FaultPlan{Seed: 7, CrashProb: 0.25})
	cfg.Eval = ds
	res, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.WorkerCrashes == 0 {
		t.Fatal("expected at least one injected crash")
	}
	if acc := res.Final().TrainAcc; acc < 0.80 {
		t.Fatalf("crash-tolerant run accuracy %.3f < 0.80", acc)
	}
	// Crashed workers lose data for their epoch, so some epochs consume
	// fewer tuples — but never zero and never more than the dataset.
	for _, p := range res.Points {
		if p.Tuples <= 0 || p.Tuples > ds.Len() {
			t.Fatalf("epoch %d consumed %d tuples", p.Epoch, p.Tuples)
		}
	}
}

func TestGlobalBatchNeverShrinks(t *testing.T) {
	ds := clusteredDS(2000)
	cfg := crashConfig(4, &FaultPlan{Seed: 5, CrashProb: 0.4})
	type rec struct{ epoch, batch, tuples int }
	var steps []rec
	cfg.OnBatch = func(epoch, batch, tuples int) {
		steps = append(steps, rec{epoch, batch, tuples})
	}
	res, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.WorkerCrashes == 0 {
		t.Fatal("no crash injected; test exercises nothing")
	}
	// Survivors absorb the dead workers' shares, so a crash must not shrink
	// the optimizer steps: short batches may appear only in the short
	// ramp-down tail where workers exhaust their partitions (which happens
	// fault-free too), never from the crash point onward. Without
	// redistribution, every batch after a crash would be short and the
	// "first short batch -> epoch end" span would cover half the epoch.
	byEpoch := map[int][]rec{}
	for _, s := range steps {
		byEpoch[s.epoch] = append(byEpoch[s.epoch], s)
	}
	for epoch, es := range byEpoch {
		firstShort := -1
		for i, s := range es {
			if s.tuples > cfg.GlobalBatch {
				t.Fatalf("epoch %d batch %d consumed %d tuples, above global batch %d",
					epoch, s.batch, s.tuples, cfg.GlobalBatch)
			}
			if s.tuples < cfg.GlobalBatch && firstShort < 0 {
				firstShort = i
			}
		}
		if firstShort >= 0 {
			if tail := len(es) - firstShort; tail > cfg.Workers {
				t.Fatalf("epoch %d: %d trailing short batches (workers=%d); batches shrank instead of redistributing",
					epoch, tail, cfg.Workers)
			}
		}
	}
}

func TestDetectTimeoutChargedToClock(t *testing.T) {
	ds := clusteredDS(2000)
	run := func(timeout time.Duration) (time.Duration, int, []float64) {
		clock := iosim.NewClock()
		cfg := crashConfig(4, &FaultPlan{Seed: 11, CrashProb: 0.3, DetectTimeout: timeout})
		cfg.Clock = clock
		cfg.SyncCost = time.Millisecond
		res, err := Train(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		losses := make([]float64, len(res.Points))
		for i, p := range res.Points {
			losses[i] = p.AvgLoss
		}
		return clock.Now(), res.Faults.WorkerCrashes, losses
	}
	tShort, crashes, lShort := run(10 * time.Millisecond)
	tLong, crashes2, lLong := run(500 * time.Millisecond)
	if crashes == 0 || crashes != crashes2 {
		t.Fatalf("crash counts: %d vs %d", crashes, crashes2)
	}
	if want := time.Duration(crashes) * 490 * time.Millisecond; tLong-tShort != want {
		t.Fatalf("clock delta %v, want %d crashes x 490ms = %v", tLong-tShort, crashes, want)
	}
	// The timeout changes only the simulated clock, never the training.
	for i := range lShort {
		if lShort[i] != lLong[i] {
			t.Fatalf("loss trace depends on detect timeout at epoch %d", i)
		}
	}
}

func TestAllWorkersCrashed(t *testing.T) {
	ds := clusteredDS(1000)
	cfg := crashConfig(4, &FaultPlan{Seed: 2, CrashProb: 1})
	res, err := Train(ds, cfg)
	if !errors.Is(err, ErrWorkerLost) {
		t.Fatalf("all-crash run returned %v, want ErrWorkerLost", err)
	}
	if res == nil || res.Faults.WorkerCrashes != 4 {
		t.Fatalf("partial result must record the crashes: %+v", res)
	}
}

func TestMaxCrashesCap(t *testing.T) {
	ds := clusteredDS(2000)
	cfg := crashConfig(4, &FaultPlan{Seed: 11, CrashProb: 0.3, MaxCrashes: 1})
	_, err := Train(ds, cfg)
	if !errors.Is(err, ErrWorkerLost) {
		t.Fatalf("crash cap exceeded should return ErrWorkerLost, got %v", err)
	}
}

func TestCrashObsCounter(t *testing.T) {
	ds := clusteredDS(2000)
	reg := obs.New()
	cfg := crashConfig(4, &FaultPlan{Seed: 11, CrashProb: 0.3})
	cfg.Obs = reg
	res, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(obs.DistWorkerCrashes); got != int64(res.Faults.WorkerCrashes) {
		t.Fatalf("obs crash counter %d, result says %d", got, res.Faults.WorkerCrashes)
	}
}

func TestWorkersRejoinNextEpoch(t *testing.T) {
	// With a crash schedule that only fires in epoch 0 (probabilistically,
	// via seed choice), later epochs must consume the full dataset again:
	// crashed workers rejoin at the next block redistribution.
	ds := clusteredDS(2000)
	cfg := crashConfig(4, &FaultPlan{Seed: 11, CrashProb: 0.3})
	res, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	degraded := 0
	full := 0
	for _, p := range res.Points {
		if p.Tuples == ds.Len() {
			full++
		} else {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("no epoch lost data; crash schedule fired nowhere")
	}
	if full == 0 {
		t.Fatal("no epoch ran clean; workers never rejoined")
	}
}
