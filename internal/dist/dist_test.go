package dist

import (
	"math/rand"
	"testing"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/ml"
)

func clusteredDS(n int) *data.Dataset {
	return data.SyntheticBinary(data.SyntheticConfig{
		Tuples: n, Features: 10, Separation: 1.5, Noise: 1.0,
		Order: data.OrderClustered, Seed: 81})
}

func baseConfig(workers int) Config {
	return Config{
		Workers:     workers,
		Epochs:      10,
		GlobalBatch: 64,
		BlockTuples: 50,
		Seed:        1,
		Model:       ml.SVM{},
		Opt:         ml.NewSGD(0.05),
		Features:    10,
	}
}

func TestDistributedTrainsClusteredData(t *testing.T) {
	ds := clusteredDS(4000)
	cfg := baseConfig(4)
	cfg.Eval = ds
	res, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 10 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if acc := res.Final().TrainAcc; acc < 0.83 {
		t.Fatalf("distributed corgipile accuracy %.3f < 0.83", acc)
	}
	// Every epoch must consume the whole dataset exactly once.
	for _, p := range res.Points {
		if p.Tuples != 4000 {
			t.Fatalf("epoch %d consumed %d tuples, want 4000", p.Epoch, p.Tuples)
		}
	}
}

func TestDistributedNoShuffleBaselineWorse(t *testing.T) {
	// On binary data, partitioning alone mixes the two classes across
	// workers, so the no-shuffle pathology needs a many-class workload
	// (the paper shows it on 1000-class ImageNet): with 10 classes over 2
	// workers, every no-shuffle batch sees only a couple of classes.
	ds := data.SyntheticMulticlass(data.SyntheticConfig{
		Tuples: 4000, Features: 16, Classes: 10, Separation: 2,
		Order: data.OrderClustered, Seed: 84})
	mk := func(noShuffle bool) float64 {
		cfg := Config{
			Workers: 2, Epochs: 8, GlobalBatch: 64, BlockTuples: 50, Seed: 1,
			Model: ml.Softmax{Classes: 10}, Opt: ml.NewSGD(0.5),
			Features: 16, Eval: ds,
			NoBlockShuffle: noShuffle, NoTupleShuffle: noShuffle,
		}
		res, err := Train(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Final().TrainAcc
	}
	noShuffleAcc := mk(true)
	corgiAcc := mk(false)
	if corgiAcc < noShuffleAcc+0.05 {
		t.Fatalf("distributed corgipile %.3f should beat no-shuffle %.3f",
			corgiAcc, noShuffleAcc)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	ds := clusteredDS(1000)
	run := func() []float64 {
		cfg := baseConfig(4)
		cfg.Opt = ml.NewSGD(0.05)
		res, err := Train(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.W
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("weights diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWorkerCountPreservesCoverage(t *testing.T) {
	ds := clusteredDS(1200)
	for _, workers := range []int{1, 2, 3, 8} {
		cfg := baseConfig(workers)
		cfg.Epochs = 1
		res, err := Train(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Points[0].Tuples != 1200 {
			t.Fatalf("workers=%d consumed %d tuples, want 1200", workers, res.Points[0].Tuples)
		}
	}
}

func TestMoreWorkersFasterSimulatedTime(t *testing.T) {
	ds := clusteredDS(4000)
	epochTime := func(workers int) float64 {
		clock := iosim.NewClock()
		cfg := baseConfig(workers)
		cfg.Epochs = 1
		cfg.Clock = clock
		cfg.BlockReadCost = 2 * time.Millisecond
		res, err := Train(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Final().Seconds
	}
	t1 := epochTime(1)
	t8 := epochTime(8)
	if t8 >= t1/4 {
		t.Fatalf("8 workers (%.4fs) should be much faster than 1 (%.4fs)", t8, t1)
	}
}

func TestEffectiveOrderMixesLabelsLikeSingleProcess(t *testing.T) {
	// Figure 5: the merged multi-process order has the same statistical
	// character as single-process CorgiPile — windows of the stream see a
	// near-uniform label mix even though the data is clustered.
	ds := clusteredDS(2000)
	cfg := baseConfig(4)
	cfg.BufferFraction = 0.4 // 2 blocks per worker buffer
	order, err := EffectiveOrder(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2000 {
		t.Fatalf("effective order has %d ids, want 2000", len(order))
	}
	seen := make(map[int64]bool)
	for _, id := range order {
		if seen[id] {
			t.Fatalf("id %d consumed twice", id)
		}
		seen[id] = true
	}
	// Check label mixing: in each window of 200 consumed tuples, both
	// classes appear substantially (clustered data has ids 0..999 negative).
	badWindows := 0
	for w := 0; w < 10; w++ {
		neg := 0
		for _, id := range order[w*200 : (w+1)*200] {
			if id < 1000 {
				neg++
			}
		}
		if neg < 20 || neg > 180 {
			badWindows++
		}
	}
	// Block granularity allows an occasional skewed window (the paper's
	// Figure 5 shows the same block-level texture); most must be mixed.
	if badWindows > 1 {
		t.Fatalf("%d/10 windows unmixed; order not corgi-like", badWindows)
	}
}

func TestEffectiveOrderNoShuffleStaysClustered(t *testing.T) {
	ds := clusteredDS(2000)
	cfg := baseConfig(1)
	cfg.NoBlockShuffle = true
	cfg.NoTupleShuffle = true
	order, err := EffectiveOrder(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if id != int64(i) {
			t.Fatal("no-shuffle single worker should consume in storage order")
		}
	}
}

func TestValidation(t *testing.T) {
	ds := clusteredDS(100)
	bad := baseConfig(0)
	if _, err := Train(ds, bad); err == nil {
		t.Fatal("workers=0 must error")
	}
	bad = baseConfig(2)
	bad.Model = nil
	if _, err := Train(ds, bad); err == nil {
		t.Fatal("nil model must error")
	}
	bad = baseConfig(2)
	bad.BlockTuples = 0
	if _, err := Train(ds, bad); err == nil {
		t.Fatal("BlockTuples=0 must error")
	}
}

func TestSingleWorkerMatchesSequentialMiniBatch(t *testing.T) {
	// With one worker, distributed training is plain mini-batch SGD over
	// the corgi order; it must learn shuffled data well.
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 2000, Features: 10, Separation: 3, Order: data.OrderShuffled, Seed: 82})
	cfg := baseConfig(1)
	cfg.Eval = ds
	cfg.Epochs = 8
	res, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final().TrainAcc < 0.9 {
		t.Fatalf("single-worker accuracy %.3f < 0.9", res.Final().TrainAcc)
	}
}

func TestMLPDistributed(t *testing.T) {
	ds := data.SyntheticMulticlass(data.SyntheticConfig{
		Tuples: 2000, Features: 16, Classes: 4, Separation: 4,
		Order: data.OrderClustered, Seed: 83})
	m := ml.MLP{Classes: 4, Hidden: 16}
	cfg := Config{
		Workers: 4, Epochs: 12, GlobalBatch: 64, BlockTuples: 50, Seed: 2,
		Model: m, Opt: ml.NewSGD(0.05), Features: 16, Eval: ds,
	}
	cfg.InitWeights = func(w []float64) {
		m.InitWeights(w, 16, newRand(3))
	}
	res, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final().TrainAcc < 0.75 {
		t.Fatalf("distributed MLP accuracy %.3f < 0.75", res.Final().TrainAcc)
	}
}

// newRand avoids importing math/rand at the top for a single use.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestRingAllReduceCostModel(t *testing.T) {
	// 8 workers, 1e6-float64 model (8 MB), 1 GB/s links: ring transfer
	// 2·7/8·8MB/1GB/s = 14 ms, plus 14 hops of latency.
	cfg := Config{Workers: 8, NetBandwidth: 1e9, NetLatency: time.Millisecond}
	got := cfg.syncCostPerBatch(1_000_000)
	want := 14*time.Millisecond + 14*time.Millisecond
	if d := got - want; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("ring sync cost = %v, want ~%v", got, want)
	}
	// Fixed SyncCost path when no bandwidth is set.
	flat := Config{Workers: 4, SyncCost: 5 * time.Millisecond}
	if flat.syncCostPerBatch(123) != 5*time.Millisecond {
		t.Fatal("flat sync cost path broken")
	}
}

func TestRingAllReduceChargesEpochTime(t *testing.T) {
	ds := clusteredDS(1000)
	run := func(bw float64) float64 {
		clock := iosim.NewClock()
		cfg := baseConfig(4)
		cfg.Epochs = 1
		cfg.Clock = clock
		cfg.NetBandwidth = bw
		cfg.NetLatency = 100 * time.Microsecond
		res, err := Train(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Final().Seconds
	}
	slowNet := run(1e6) // 1 MB/s links
	fastNet := run(1e10)
	if slowNet <= fastNet {
		t.Fatalf("slow network (%v) should cost more than fast (%v)", slowNet, fastNet)
	}
}
