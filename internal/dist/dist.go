// Package dist implements multi-process CorgiPile (Section 5): data-parallel
// mini-batch SGD across PN workers, each holding a private tuple-shuffle
// buffer over its share of a common per-epoch block permutation, with
// gradients averaged across workers after every batch (the AllReduce step
// of PyTorch's DistributedDataParallel mode).
//
// Workers compute gradients concurrently on real goroutines; the reduction
// is performed in worker order so training is bit-for-bit deterministic.
// Simulated time models the parallel hardware: each worker accrues its own
// I/O and compute time, and an epoch advances the shared clock by the
// slowest worker plus the per-batch synchronization cost.
package dist

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"corgipile/internal/core"
	"corgipile/internal/data"
	"corgipile/internal/iosim"
	"corgipile/internal/ml"
	"corgipile/internal/obs"
)

// Config configures a distributed training run.
type Config struct {
	// Workers is the number of data-parallel processes (the paper's PN).
	Workers int
	// Epochs is the number of passes over the data.
	Epochs int
	// GlobalBatch is the total mini-batch size; each worker contributes
	// GlobalBatch/Workers tuples per step (the paper's bs/PN).
	GlobalBatch int
	// BufferFraction is the *total* shuffle-buffer budget as a fraction of
	// the dataset; each worker gets BufferFraction/Workers (Section 5.1
	// step 3).
	BufferFraction float64
	// BlockTuples is the number of tuples per storage block.
	BlockTuples int
	// NoBlockShuffle disables the per-epoch block permutation, giving the
	// distributed No Shuffle baseline (workers scan contiguous partitions).
	NoBlockShuffle bool
	// NoTupleShuffle disables the per-buffer tuple shuffle (Block-Only).
	NoTupleShuffle bool
	// Seed drives all randomness. As in the paper, every worker derives
	// the same block permutation from the shared seed.
	Seed int64

	// Model, Opt, Features and InitWeights define the learner.
	Model       ml.Model
	Opt         ml.Optimizer
	Features    int
	InitWeights func(w []float64)

	// Clock, when non-nil, receives the simulated epoch times.
	Clock *iosim.Clock
	// BlockReadCost is the simulated time for one worker to fetch one
	// block from the parallel file system.
	BlockReadCost time.Duration
	// SyncCost is a fixed simulated AllReduce cost per batch. When
	// NetBandwidth is set, a ring-AllReduce model is used instead:
	// 2·(PN−1)/PN · modelBytes / NetBandwidth + 2·(PN−1)·NetLatency,
	// the standard bandwidth-optimal ring schedule.
	SyncCost time.Duration
	// NetBandwidth is the per-link bandwidth in bytes/second for the ring
	// AllReduce model (0 disables it, falling back to SyncCost).
	NetBandwidth float64
	// NetLatency is the per-hop latency for the ring AllReduce model.
	NetLatency time.Duration
	// ComputeScale multiplies the per-tuple gradient compute cost, for
	// modelling heavier learners (a ResNet forward+backward costs ~500x an
	// MLP gradient). Zero means 1.
	ComputeScale float64

	// Eval, when non-nil, is evaluated after each epoch.
	Eval *data.Dataset

	// Faults, when non-nil and enabled, injects deterministic worker
	// crashes; see FaultPlan. Crash counts land in Result.Faults and, when
	// Obs is attached, under obs.DistWorkerCrashes.
	Faults *FaultPlan
	// Obs, when non-nil, receives crash counters.
	Obs *obs.Registry
	// OnBatch, when non-nil, observes every optimizer step: the epoch
	// (0-based), the batch index within it, and the tuples consumed. Tests
	// use it to verify the global batch never shrinks under crashes.
	OnBatch func(epoch, batch, tuples int)
}

// syncCostPerBatch returns the simulated gradient-synchronization time per
// batch for a model of dim float64 weights.
func (c Config) syncCostPerBatch(dim int) time.Duration {
	if c.NetBandwidth <= 0 {
		return c.SyncCost
	}
	pn := float64(c.Workers)
	modelBytes := float64(dim * 8)
	transfer := 2 * (pn - 1) / pn * modelBytes / c.NetBandwidth
	return time.Duration(transfer*float64(time.Second)) + time.Duration(2*(c.Workers-1))*c.NetLatency
}

func (c Config) validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("dist: Workers must be >= 1")
	}
	if c.Model == nil || c.Opt == nil {
		return fmt.Errorf("dist: Model and Opt are required")
	}
	if c.BlockTuples < 1 {
		return fmt.Errorf("dist: BlockTuples must be >= 1")
	}
	return nil
}

// Train runs distributed data-parallel training over ds and returns the
// convergence trace.
func Train(ds *data.Dataset, cfg Config) (*core.Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Epochs < 1 {
		cfg.Epochs = 1
	}
	if cfg.GlobalBatch < cfg.Workers {
		cfg.GlobalBatch = cfg.Workers
	}
	if cfg.BufferFraction <= 0 {
		cfg.BufferFraction = 0.1
	}

	dim := cfg.Model.Dim(cfg.Features)
	w := make([]float64, dim)
	if cfg.InitWeights != nil {
		cfg.InitWeights(w)
	}
	cfg.Opt.Reset(dim)

	res := &core.Result{W: w}

	var acc ml.GradAccumulator
	acc.Reset(dim)
	syncPerBatch := cfg.syncCostPerBatch(dim)

	var start time.Duration
	if cfg.Clock != nil {
		start = cfg.Clock.Now()
	}

	totalCrashes := 0
	detect := time.Duration(0)
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		detect = cfg.Faults.detectTimeout()
	}

	// deadPrev tracks which workers ended the previous epoch crashed; they
	// come back with the fresh per-epoch worker set (the rebuilt process
	// re-reads its partition), which we surface as a rejoin.
	deadPrev := make([]bool, cfg.Workers)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		workers := makeWorkers(ds, cfg, epoch)
		for i := range deadPrev {
			if deadPrev[i] {
				deadPrev[i] = false
				cfg.Obs.Inc(obs.DistWorkerRejoins)
				cfg.Obs.EmitEvent("dist.worker.rejoin", map[string]any{
					"worker": i, "epoch": epoch + 1,
				})
			}
		}
		alive := make([]*worker, 0, len(workers))
		var lossSum float64
		var tuples int
		var epochWall time.Duration // max over worker clocks
		var syncTotal time.Duration
		batch := 0

		for {
			// Crash detection happens at the synchronization barrier: a
			// worker whose schedule says it died since the last batch is
			// dropped here, charging the AllReduce detection timeout. The
			// survivors then split the unchanged global batch between them
			// (workerShare over len(alive)), so no optimizer step shrinks.
			alive = alive[:0]
			for i, wk := range workers {
				if !wk.dead && wk.crashAt >= 0 && wk.consumed >= wk.crashAt {
					wk.dead = true
					deadPrev[i] = true
					totalCrashes++
					syncTotal += detect
					cfg.Obs.Inc(obs.DistWorkerCrashes)
					cfg.Obs.EmitEvent("dist.worker.crash", map[string]any{
						"worker": i, "epoch": epoch + 1, "consumed": wk.consumed,
					})
				}
				if !wk.dead {
					alive = append(alive, wk)
				}
			}
			if len(alive) == 0 {
				finishFaults(res, totalCrashes)
				return res, fmt.Errorf("dist: epoch %d: all %d workers crashed: %w",
					epoch+1, cfg.Workers, ErrWorkerLost)
			}
			if cfg.Faults != nil && cfg.Faults.MaxCrashes > 0 && totalCrashes > cfg.Faults.MaxCrashes {
				finishFaults(res, totalCrashes)
				return res, fmt.Errorf("dist: %d worker crashes exceed cap %d: %w",
					totalCrashes, cfg.Faults.MaxCrashes, ErrWorkerLost)
			}

			// Each surviving worker pulls its share of the batch and
			// computes gradients concurrently at the shared weights.
			var wg sync.WaitGroup
			for i, wk := range alive {
				wk.pull(workerShare(cfg.GlobalBatch, len(alive), i))
			}
			for _, wk := range alive {
				wg.Add(1)
				go func(wk *worker) {
					defer wg.Done()
					wk.grads(w)
				}(wk)
			}
			wg.Wait()

			// Deterministic reduce in worker order.
			count := 0
			for _, wk := range alive {
				count += len(wk.batch)
				lossSum += wk.loss
				acc.Add(wk.gi, wk.gv)
			}
			if count == 0 {
				acc.Clear()
				break
			}
			tuples += count
			acc.Step(cfg.Opt, w, count)
			syncTotal += syncPerBatch
			if cfg.OnBatch != nil {
				cfg.OnBatch(epoch, batch, count)
			}
			batch++
		}
		cfg.Opt.EndEpoch()

		for _, wk := range workers {
			if wk.clock > epochWall {
				epochWall = wk.clock
			}
		}
		p := core.EpochPoint{Epoch: epoch + 1, Tuples: tuples}
		if tuples > 0 {
			p.AvgLoss = lossSum / float64(tuples)
		}
		if cfg.Clock != nil {
			cfg.Clock.Advance(epochWall + syncTotal)
			p.Seconds = (cfg.Clock.Now() - start).Seconds()
		}
		if cfg.Eval != nil {
			p.TrainAcc = ml.Accuracy(cfg.Model, w, cfg.Eval)
		}
		res.Points = append(res.Points, p)
	}
	finishFaults(res, totalCrashes)
	return res, nil
}

// finishFaults records the crash count on a (possibly partial) result.
func finishFaults(res *core.Result, crashes int) {
	res.Faults.WorkerCrashes = crashes
}

// workerShare returns the number of tuples worker i contributes to one
// global batch: globalBatch/workers, with the remainder distributed one
// tuple each to the first globalBatch%workers workers so every full batch
// consumes exactly globalBatch tuples (not workers·⌊globalBatch/workers⌋).
func workerShare(globalBatch, workers, i int) int {
	n := globalBatch / workers
	if i < globalBatch%workers {
		n++
	}
	return n
}

// worker is one data-parallel process: a private iterator over its block
// share plus gradient scratch space (a reusable ml.Workspace, so per-tuple
// gradient evaluation is allocation-free).
type worker struct {
	it           *workerIter
	batch        []data.Tuple
	ws           ml.Workspace
	gi           []int32
	gv           []float64
	loss         float64
	model        ml.Model
	clock        time.Duration // private simulated time this epoch
	computeScale float64

	// Crash-injection state: the worker dies once it has consumed crashAt
	// tuples (-1 = never); dead workers are dropped at the next barrier.
	crashAt  int
	consumed int
	dead     bool
}

// pull fills the worker's batch with up to n tuples. Tuples are copied by
// value: the iterator's buffer is recycled across refills, so retaining
// pointers into it would alias stale storage.
func (wk *worker) pull(n int) {
	wk.batch = wk.batch[:0]
	for len(wk.batch) < n {
		t, ok := wk.it.next(&wk.clock)
		if !ok {
			break
		}
		wk.batch = append(wk.batch, *t)
	}
	wk.consumed += len(wk.batch)
}

// grads computes the summed gradient of the worker's batch at w.
func (wk *worker) grads(w []float64) {
	wk.gi = wk.gi[:0]
	wk.gv = wk.gv[:0]
	wk.loss = 0
	for i := range wk.batch {
		t := &wk.batch[i]
		var loss float64
		loss, wk.gi, wk.gv = ml.GradWS(wk.model, &wk.ws, w, t, wk.gi, wk.gv)
		wk.loss += loss
		wk.clock += time.Duration(float64(ml.GradCost(t.NNZ())) * wk.computeScale)
	}
}

// makeWorkers builds the per-epoch worker set: a shared block permutation
// split PN ways, exactly the Section 5.1 block-shuffle step.
func makeWorkers(ds *data.Dataset, cfg Config, epoch int) []*worker {
	numBlocks := (ds.Len() + cfg.BlockTuples - 1) / cfg.BlockTuples
	perm := make([]int, numBlocks)
	for i := range perm {
		perm[i] = i
	}
	if !cfg.NoBlockShuffle {
		// All workers share the seed, so they derive the same permutation.
		rng := rand.New(rand.NewSource(cfg.Seed + int64(epoch)*7919))
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	}

	bufTotal := int(cfg.BufferFraction * float64(ds.Len()))
	bufPerWorker := bufTotal / cfg.Workers
	if bufPerWorker < cfg.BlockTuples {
		bufPerWorker = cfg.BlockTuples
	}
	nBlocks := bufPerWorker / cfg.BlockTuples
	if nBlocks < 1 {
		nBlocks = 1
	}

	computeScale := cfg.ComputeScale
	if computeScale == 0 {
		computeScale = 1
	}
	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		lo := i * numBlocks / cfg.Workers
		hi := (i + 1) * numBlocks / cfg.Workers
		workers[i] = &worker{
			it: &workerIter{
				ds:     ds,
				blocks: perm[lo:hi],
				per:    cfg.BlockTuples,
				nBuf:   nBlocks,
				shuf:   !cfg.NoTupleShuffle,
				rng:    rand.New(rand.NewSource(cfg.Seed ^ int64(epoch*131+i))),
				read:   cfg.BlockReadCost,
			},
			model:        cfg.Model,
			computeScale: computeScale,
			crashAt:      -1,
		}
	}
	scheduleCrashes(ds, cfg, epoch, workers)
	return workers
}

// scheduleCrashes draws the epoch's deterministic crash schedule. Exactly
// two random draws are consumed per worker regardless of the outcome, so
// the schedule of worker i is independent of the other workers' fates and
// stable across runs with the same fault seed.
func scheduleCrashes(ds *data.Dataset, cfg Config, epoch int, workers []*worker) {
	if cfg.Faults == nil || !cfg.Faults.Enabled() {
		return
	}
	seed := cfg.Faults.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed + int64(epoch)*104729))
	for _, wk := range workers {
		crash := rng.Float64() < cfg.Faults.CrashProb
		frac := rng.Float64()
		if !crash {
			continue
		}
		// The crash point is a fraction of the worker's epoch share, so
		// crashes land anywhere from the first batch to the last.
		share := 0
		for _, b := range wk.it.blocks {
			lo := b * cfg.BlockTuples
			hi := lo + cfg.BlockTuples
			if hi > ds.Len() {
				hi = ds.Len()
			}
			share += hi - lo
		}
		wk.crashAt = int(frac * float64(share))
	}
}

// workerIter is the per-worker CorgiPile iterator: local buffer of nBuf
// blocks, tuple-shuffled.
type workerIter struct {
	ds     *data.Dataset
	blocks []int
	per    int
	nBuf   int
	shuf   bool
	rng    *rand.Rand
	read   time.Duration

	idx int
	buf []data.Tuple
	pos int
}

// next returns the next tuple, charging I/O time to the worker clock.
func (it *workerIter) next(clock *time.Duration) (*data.Tuple, bool) {
	for it.pos >= len(it.buf) {
		if it.idx >= len(it.blocks) {
			return nil, false
		}
		it.buf = it.buf[:0]
		it.pos = 0
		for count := 0; count < it.nBuf && it.idx < len(it.blocks); count++ {
			b := it.blocks[it.idx]
			it.idx++
			lo := b * it.per
			hi := lo + it.per
			if hi > it.ds.Len() {
				hi = it.ds.Len()
			}
			it.buf = append(it.buf, it.ds.Tuples[lo:hi]...)
			*clock += it.read
		}
		if it.shuf {
			it.rng.Shuffle(len(it.buf), func(i, j int) {
				it.buf[i], it.buf[j] = it.buf[j], it.buf[i]
			})
		}
	}
	t := &it.buf[it.pos]
	it.pos++
	return t, true
}

// EffectiveOrder returns the sequence of tuple IDs the distributed run
// consumes, merged in global batch order — the quantity Figure 5 compares
// against single-process CorgiPile.
func EffectiveOrder(ds *data.Dataset, cfg Config) ([]int64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.GlobalBatch < cfg.Workers {
		cfg.GlobalBatch = cfg.Workers
	}
	if cfg.BufferFraction <= 0 {
		cfg.BufferFraction = 0.1
	}
	workers := makeWorkers(ds, cfg, 0)
	var order []int64
	for {
		emitted := false
		for i, wk := range workers {
			wk.pull(workerShare(cfg.GlobalBatch, cfg.Workers, i))
			for i := range wk.batch {
				order = append(order, wk.batch[i].ID)
				emitted = true
			}
		}
		if !emitted {
			return order, nil
		}
	}
}
