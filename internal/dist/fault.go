package dist

// This file implements worker-crash injection for distributed training: a
// deterministic per-epoch crash schedule, crash detection at the
// synchronization barrier, and batch-share redistribution across the
// surviving workers.

import (
	"errors"
	"time"
)

// ErrWorkerLost reports that distributed training could not absorb injected
// worker crashes: either every worker of an epoch died, or the total crash
// count exceeded FaultPlan.MaxCrashes.
var ErrWorkerLost = errors.New("dist: worker lost")

// FaultPlan configures deterministic worker-crash injection. All randomness
// derives from Seed: a fixed plan yields the same crash schedule — and
// therefore the same loss trace and simulated clock — on every run.
//
// A crashed worker stops contributing mid-epoch; the crash is detected at
// the next synchronization barrier (charging DetectTimeout of simulated
// time), after which the global batch is redistributed over the surviving
// workers so every optimizer step still consumes GlobalBatch tuples. The
// crashed worker's unread data is lost for that epoch only: workers rejoin
// at the next epoch's block redistribution.
type FaultPlan struct {
	// Seed seeds the crash schedule (0 behaves like 1).
	Seed int64
	// CrashProb is the per-worker, per-epoch probability of crashing.
	CrashProb float64
	// DetectTimeout is the simulated time one crash adds to the epoch's
	// synchronization cost — the AllReduce timeout that exposes the dead
	// worker (default 100ms).
	DetectTimeout time.Duration
	// MaxCrashes, when positive, aborts training with ErrWorkerLost once
	// more than this many crashes have occurred across all epochs.
	MaxCrashes int
}

// Enabled reports whether the plan can inject anything.
func (p FaultPlan) Enabled() bool { return p.CrashProb > 0 }

// detectTimeout returns the configured detection timeout or its default.
func (p FaultPlan) detectTimeout() time.Duration {
	if p.DetectTimeout > 0 {
		return p.DetectTimeout
	}
	return 100 * time.Millisecond
}
