package dist

import (
	"testing"

	"corgipile/internal/ml"
)

// TestWorkerShareSumsToGlobalBatch is the regression test for the silent
// batch shrinkage bug: worker shares of GlobalBatch/Workers dropped the
// remainder, so an 8-worker batch of 100 consumed only 96 tuples.
func TestWorkerShareSumsToGlobalBatch(t *testing.T) {
	for _, tc := range []struct{ gb, workers int }{
		{100, 8}, {64, 4}, {64, 5}, {7, 3}, {1, 1}, {13, 13}, {13, 4},
	} {
		sum := 0
		for i := 0; i < tc.workers; i++ {
			n := workerShare(tc.gb, tc.workers, i)
			if min := tc.gb / tc.workers; n != min && n != min+1 {
				t.Fatalf("workerShare(%d,%d,%d) = %d, want %d or %d",
					tc.gb, tc.workers, i, n, min, min+1)
			}
			sum += n
		}
		if sum != tc.gb {
			t.Fatalf("shares of batch %d over %d workers sum to %d",
				tc.gb, tc.workers, sum)
		}
	}
}

// TestFullBatchConsumesExactlyGlobalBatch drives the per-epoch pull rounds
// directly: as long as no worker has exhausted its partition, every round
// must gather exactly GlobalBatch tuples — not Workers·⌊GlobalBatch/Workers⌋.
func TestFullBatchConsumesExactlyGlobalBatch(t *testing.T) {
	ds := clusteredDS(1600)
	cfg := baseConfig(8)
	cfg.GlobalBatch = 100 // remainder 4 over 8 workers
	cfg.BlockTuples = 25  // 64 blocks → 8 per worker → 200 tuples each
	workers := makeWorkers(ds, cfg, 0)

	total, rounds := 0, 0
	for {
		count := 0
		short := false
		for i, wk := range workers {
			want := workerShare(cfg.GlobalBatch, cfg.Workers, i)
			wk.pull(want)
			count += len(wk.batch)
			if len(wk.batch) < want {
				short = true
			}
		}
		if count == 0 {
			break
		}
		total += count
		rounds++
		if !short && count != cfg.GlobalBatch {
			t.Fatalf("round %d consumed %d tuples, want exactly %d",
				rounds, count, cfg.GlobalBatch)
		}
	}
	if total != ds.Len() {
		t.Fatalf("total consumed %d, want %d", total, ds.Len())
	}
	// 200 tuples per worker at shares of 13 (first 4 workers) means the
	// stream stays full-batch for at least 15 rounds.
	if rounds < 15 {
		t.Fatalf("only %d pull rounds, expected at least 15", rounds)
	}
}

// TestRemainderBatchCoverage: a non-divisible GlobalBatch must still consume
// the whole dataset each epoch through the public Train path.
func TestRemainderBatchCoverage(t *testing.T) {
	ds := clusteredDS(1200)
	cfg := baseConfig(8)
	cfg.GlobalBatch = 100
	cfg.Epochs = 2
	res, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.Tuples != 1200 {
			t.Fatalf("epoch %d consumed %d tuples, want 1200", p.Epoch, p.Tuples)
		}
	}
}

// TestDeterministicLossTraceNonDivisible extends the determinism guarantee to
// the remainder path: with 5 workers and a batch of 64 (shares 13,13,13,13,12)
// repeated runs must produce bit-for-bit identical loss traces and weights.
// Run under -race this also exercises the concurrent per-batch gradient
// goroutines.
func TestDeterministicLossTraceNonDivisible(t *testing.T) {
	ds := clusteredDS(1000)
	run := func() ([]float64, []float64) {
		cfg := baseConfig(5)
		cfg.GlobalBatch = 64
		cfg.Opt = ml.NewSGD(0.05)
		res, err := Train(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		losses := make([]float64, len(res.Points))
		for i, p := range res.Points {
			losses[i] = p.AvgLoss
		}
		return losses, res.W
	}
	l1, w1 := run()
	l2, w2 := run()
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("loss trace diverges at epoch %d: %v vs %v", i+1, l1[i], l2[i])
		}
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("weights diverge at %d: %v vs %v", i, w1[i], w2[i])
		}
	}
}
