package db

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/executor"
	"corgipile/internal/ml"
	"corgipile/internal/obs"
	"corgipile/internal/sqlparse"
	"corgipile/internal/storage"
)

// Durability. A session may attach a write-ahead log directory via OpenWAL;
// from then on every catalog mutation — CREATE TABLE, INSERT, LOAD INTO,
// DROP, model installs — is logged before it is acknowledged, and a restart
// replays checkpoint + log back into an identical catalog. The WAL is off
// by default: experiment sessions stay purely in-memory and their traces
// stay byte-identical.
//
// Layout under the WAL directory:
//
//	wal.log        CRC-framed records since the last checkpoint
//	checkpoint.db  compacted catalog image in the same record format,
//	               terminated by a WALCheckpoint record carrying the live
//	               LSN frontier it covers
//
// CHECKPOINT writes checkpoint.tmp, fsyncs, atomically renames it over
// checkpoint.db, then truncates wal.log. A crash at any point is safe:
// before the rename recovery uses the old checkpoint + full log; between
// rename and truncate the frontier makes replay skip log records the new
// checkpoint already contains.

// walTablePayload is the JSON payload of a WALCreateTable record.
type walTablePayload struct {
	Name           string  `json:"name"`
	Task           int     `json:"task"`
	Features       int     `json:"features"`
	Classes        int     `json:"classes"`
	Device         string  `json:"device"`
	BlockSize      int64   `json:"block_size"`
	PageSize       int64   `json:"page_size,omitempty"`
	Compress       bool    `json:"compress,omitempty"`
	DecompressRate float64 `json:"decompress_rate,omitempty"`
}

// walModelPayload is the JSON payload of a WALPutModel record.
type walModelPayload struct {
	Name     string    `json:"name"`
	Kind     string    `json:"kind"`
	Features int       `json:"features"`
	Classes  int       `json:"classes"`
	Hidden   int       `json:"hidden,omitempty"`
	W        []float64 `json:"weights"`
	// Table and TrainedBlocks carry the incremental-training provenance:
	// which table the model saw and how many of its blocks.
	Table         string `json:"table,omitempty"`
	TrainedBlocks int    `json:"trained_blocks,omitempty"`
}

// walNamePayload is the JSON payload of drop records.
type walNamePayload struct {
	Name string `json:"name"`
}

// walCheckpointPayload terminates a checkpoint file.
type walCheckpointPayload struct {
	// Frontier is the highest live-WAL LSN the checkpoint covers; replay
	// skips log records at or below it.
	Frontier uint64 `json:"frontier"`
}

// RecoveryStats summarizes what OpenWAL replayed.
type RecoveryStats struct {
	// CheckpointRecords and LogRecords count the records applied from each
	// source.
	CheckpointRecords int
	LogRecords        int
	// Tables and Models count the recovered catalog entries.
	Tables int
	Models int
}

// String renders a one-line summary for startup logs.
func (r RecoveryStats) String() string {
	return fmt.Sprintf("recovered %d tables, %d models (%d checkpoint + %d log records)",
		r.Tables, r.Models, r.CheckpointRecords, r.LogRecords)
}

// WALPath returns the live log path under dir.
func WALPath(dir string) string { return filepath.Join(dir, "wal.log") }

// CheckpointPath returns the checkpoint path under dir.
func CheckpointPath(dir string) string { return filepath.Join(dir, "checkpoint.db") }

// WALOptions tunes OpenWALOptions; the zero value matches OpenWAL.
type WALOptions struct {
	// WrapSyncer, when non-nil, wraps the log's write path — the fault
	// injection seam (see storage.WriteFaults). Recovery always reads the
	// real file.
	WrapSyncer func(storage.WriteSyncer) storage.WriteSyncer
}

// OpenWAL attaches a write-ahead log directory to the session, replaying
// any existing checkpoint and log into the catalog first. After it returns,
// every catalog mutation is logged and synced before the statement is
// acknowledged. It must be called before the session serves statements.
func (s *Session) OpenWAL(dir string) (RecoveryStats, error) {
	return s.OpenWALOptions(dir, WALOptions{})
}

// OpenWALOptions is OpenWAL with knobs.
func (s *Session) OpenWALOptions(dir string, opt WALOptions) (RecoveryStats, error) {
	if s.wal != nil {
		return RecoveryStats{}, fmt.Errorf("db: WAL already attached")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return RecoveryStats{}, fmt.Errorf("db: %w", err)
	}
	start := time.Now()
	var stats RecoveryStats

	// A torn checkpoint.tmp is a checkpoint that never committed: discard.
	os.Remove(filepath.Join(dir, "checkpoint.tmp"))

	var frontier uint64
	if buf, err := os.ReadFile(CheckpointPath(dir)); err == nil {
		recs, valid := storage.DecodeWALRecords(buf)
		// The checkpoint was fsynced before its atomic rename, so it must
		// decode completely and end with its frontier record.
		if valid != len(buf) || len(recs) == 0 || recs[len(recs)-1].Type != storage.WALCheckpoint {
			return stats, fmt.Errorf("db: checkpoint %s is corrupt", CheckpointPath(dir))
		}
		for _, rec := range recs[:len(recs)-1] {
			if err := s.applyWALRecord(rec); err != nil {
				return stats, fmt.Errorf("db: checkpoint replay: %w", err)
			}
			stats.CheckpointRecords++
		}
		var cp walCheckpointPayload
		if err := json.Unmarshal(recs[len(recs)-1].Payload, &cp); err != nil {
			return stats, fmt.Errorf("db: checkpoint frontier: %w", err)
		}
		frontier = cp.Frontier
	} else if !os.IsNotExist(err) {
		return stats, fmt.Errorf("db: %w", err)
	}

	w, recs, err := storage.OpenWALFile(WALPath(dir), opt.WrapSyncer)
	if err != nil {
		return stats, err
	}
	w.WithObs(s.obs)
	w.WithEvents(s.events)
	for _, rec := range recs {
		if rec.LSN <= frontier {
			continue // already inside the checkpoint
		}
		if err := s.applyWALRecord(rec); err != nil {
			w.Close()
			return stats, fmt.Errorf("db: wal replay (lsn %d): %w", rec.LSN, err)
		}
		stats.LogRecords++
	}
	w.AdvanceLSN(frontier + 1)
	s.wal = w
	s.walDir = dir
	stats.Tables = len(s.tables)
	stats.Models = len(s.models)
	s.walOpened = time.Now()
	s.obs.Add(obs.WALReplayRecords, int64(stats.CheckpointRecords+stats.LogRecords))
	s.obs.Observe(obs.SpanRecovery, time.Since(start))
	s.events.Emit(obs.EvRecovery, "", fmt.Sprintf(
		"checkpoint_records=%d log_records=%d tables=%d models=%d",
		stats.CheckpointRecords, stats.LogRecords, stats.Tables, stats.Models))
	return stats, nil
}

// Durable reports whether the session has a WAL attached.
func (s *Session) Durable() bool { return s.wal != nil }

// Close releases the session's WAL (a no-op for in-memory sessions).
func (s *Session) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// applyWALRecord replays one record into the catalog. Payloads are fully
// validated — a corrupt or hostile record yields an error, never a panic or
// a half-applied mutation.
func (s *Session) applyWALRecord(rec storage.WALRecord) error {
	switch rec.Type {
	case storage.WALCreateTable:
		var p walTablePayload
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("create table payload: %w", err)
		}
		name := strings.ToLower(p.Name)
		if name == "" {
			return fmt.Errorf("create table payload: empty name")
		}
		if _, exists := s.tables[name]; exists {
			return fmt.Errorf("table %q created twice", name)
		}
		dev, ok := s.devices[strings.ToLower(p.Device)]
		if !ok {
			return fmt.Errorf("table %q on unknown device %q", name, p.Device)
		}
		tab := storage.NewEmpty(dev, name, data.Task(p.Task), p.Features, p.Classes, storage.Options{
			BlockSize: p.BlockSize, PageSize: p.PageSize,
			Compress: p.Compress, DecompressRate: p.DecompressRate,
		})
		s.tables[name] = &TableEntry{Name: name, Table: tab, Device: strings.ToLower(p.Device)}
	case storage.WALAppendBlock:
		table, rb, err := storage.DecodeBlockPayload(rec.Payload)
		if err != nil {
			return err
		}
		entry, ok := s.tables[strings.ToLower(table)]
		if !ok {
			return fmt.Errorf("append to unknown table %q", table)
		}
		if err := entry.Table.AppendRawBlock(rb); err != nil {
			return err
		}
	case storage.WALDropTable:
		var p walNamePayload
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("drop table payload: %w", err)
		}
		delete(s.tables, strings.ToLower(p.Name))
	case storage.WALPutModel:
		var p walModelPayload
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("model payload: %w", err)
		}
		model, err := ml.New(p.Kind, maxInt(p.Classes, 2))
		if err != nil {
			return fmt.Errorf("model %q: %w", p.Name, err)
		}
		if mlp, ok := model.(ml.MLP); ok && p.Hidden > 0 {
			mlp.Hidden = p.Hidden
			model = mlp
		}
		if want := model.Dim(p.Features); want != len(p.W) {
			return fmt.Errorf("model %q has %d weights, want %d", p.Name, len(p.W), want)
		}
		name := strings.ToLower(p.Name)
		s.models[name] = &ModelEntry{
			Name: name, Kind: p.Kind, Model: model, W: p.W,
			Features: p.Features, Classes: p.Classes,
			Table: strings.ToLower(p.Table), TrainedBlocks: p.TrainedBlocks,
			Epochs: []executor.EpochRow{},
		}
	case storage.WALDropModel:
		var p walNamePayload
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("drop model payload: %w", err)
		}
		delete(s.models, strings.ToLower(p.Name))
	case storage.WALCheckpoint:
		// Frontier records are handled by OpenWAL; inside the live log they
		// carry no mutation.
	default:
		return fmt.Errorf("unknown record type %d", rec.Type)
	}
	return nil
}

// logRecord appends one record and returns it unsynced; no-op without WAL.
func (s *Session) logRecord(typ storage.WALRecordType, payload any) error {
	if s.wal == nil {
		return nil
	}
	buf, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("db: wal payload: %w", err)
	}
	_, err = s.wal.Append(typ, buf)
	return err
}

// logSync flushes the log; statements call it once, after their last record.
func (s *Session) logSync() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Sync()
}

// logCreateTable logs a CREATE TABLE and every block of its initial
// contents (synthetic tables are deterministic but FROM-file loads are not
// reproducible from the statement alone, so block contents are always
// logged).
func (s *Session) logCreateTable(entry *TableEntry) error {
	if s.wal == nil {
		return nil
	}
	tab := entry.Table
	opts := tab.Options()
	if err := s.logRecord(storage.WALCreateTable, walTablePayload{
		Name: entry.Name, Task: int(tab.Task()), Features: tab.Features(), Classes: tab.Classes(),
		Device: entry.Device, BlockSize: opts.BlockSize, PageSize: opts.PageSize,
		Compress: opts.Compress, DecompressRate: opts.DecompressRate,
	}); err != nil {
		return err
	}
	for i := 0; i < tab.NumBlocks(); i++ {
		rb, err := tab.RawBlockAt(i)
		if err != nil {
			return err
		}
		if _, err := s.wal.Append(storage.WALAppendBlock, storage.EncodeBlockPayload(entry.Name, rb)); err != nil {
			return err
		}
	}
	return s.logSync()
}

// logAppendedBlocks logs blocks returned by Table.AppendTuples and syncs.
func (s *Session) logAppendedBlocks(table string, raws []storage.RawBlock) error {
	if s.wal == nil {
		return nil
	}
	for _, rb := range raws {
		if _, err := s.wal.Append(storage.WALAppendBlock, storage.EncodeBlockPayload(table, rb)); err != nil {
			return err
		}
	}
	return s.logSync()
}

// logModel logs a model install (or overwrite) and syncs.
func (s *Session) logModel(m *ModelEntry) error {
	if s.wal == nil {
		return nil
	}
	hidden := 0
	if mlp, ok := m.Model.(ml.MLP); ok {
		hidden = mlp.Hidden
	}
	if err := s.logRecord(storage.WALPutModel, walModelPayload{
		Name: m.Name, Kind: m.Kind, Features: m.Features, Classes: m.Classes,
		Hidden: hidden, W: m.W, Table: m.Table, TrainedBlocks: m.TrainedBlocks,
	}); err != nil {
		return err
	}
	return s.logSync()
}

// logDrop logs a DROP TABLE/MODEL and syncs.
func (s *Session) logDrop(typ storage.WALRecordType, name string) error {
	if err := s.logRecord(typ, walNamePayload{Name: name}); err != nil {
		return err
	}
	return s.logSync()
}

// snapshotRecords serializes the whole catalog into checkpoint file format:
// synthetic LSNs 1..n terminated by a WALCheckpoint record carrying the live
// frontier (the highest live-WAL LSN the image covers). Checkpoint writes
// the bytes to disk; the replication primary streams them to a catching-up
// replica. The caller must hold whatever lock keeps the catalog stable.
func (s *Session) snapshotRecords() (buf []byte, frontier uint64, n int, err error) {
	if s.wal == nil {
		return nil, 0, 0, fmt.Errorf("db: snapshot requires a WAL-backed session")
	}
	frontier = s.wal.NextLSN() - 1
	var lsn uint64
	emit := func(typ storage.WALRecordType, payload []byte) {
		lsn++
		buf = storage.AppendWALRecord(buf, storage.WALRecord{LSN: lsn, Type: typ, Payload: payload})
	}
	emitJSON := func(typ storage.WALRecordType, payload any) error {
		b, err := json.Marshal(payload)
		if err != nil {
			return fmt.Errorf("db: checkpoint payload: %w", err)
		}
		emit(typ, b)
		return nil
	}
	for _, name := range sortedKeys(s.tables) {
		entry := s.tables[name]
		tab := entry.Table
		opts := tab.Options()
		if err := emitJSON(storage.WALCreateTable, walTablePayload{
			Name: name, Task: int(tab.Task()), Features: tab.Features(), Classes: tab.Classes(),
			Device: entry.Device, BlockSize: opts.BlockSize, PageSize: opts.PageSize,
			Compress: opts.Compress, DecompressRate: opts.DecompressRate,
		}); err != nil {
			return nil, 0, 0, err
		}
		for i := 0; i < tab.NumBlocks(); i++ {
			rb, err := tab.RawBlockAt(i)
			if err != nil {
				return nil, 0, 0, fmt.Errorf("db: snapshot table %q: %w", name, err)
			}
			emit(storage.WALAppendBlock, storage.EncodeBlockPayload(name, rb))
		}
	}
	for _, name := range sortedKeys(s.models) {
		m := s.models[name]
		hidden := 0
		if mlp, ok := m.Model.(ml.MLP); ok {
			hidden = mlp.Hidden
		}
		if err := emitJSON(storage.WALPutModel, walModelPayload{
			Name: name, Kind: m.Kind, Features: m.Features, Classes: m.Classes,
			Hidden: hidden, W: m.W, Table: m.Table, TrainedBlocks: m.TrainedBlocks,
		}); err != nil {
			return nil, 0, 0, err
		}
	}
	if err := emitJSON(storage.WALCheckpoint, walCheckpointPayload{Frontier: frontier}); err != nil {
		return nil, 0, 0, err
	}
	return buf, frontier, int(lsn), nil
}

// Checkpoint compacts the current catalog into checkpoint.db and truncates
// the live log, returning the number of records written. See the protocol
// comment at the top of this file for the crash-safety argument.
func (s *Session) Checkpoint() (int, error) {
	if s.wal == nil {
		return 0, fmt.Errorf("db: CHECKPOINT requires a WAL-backed session")
	}
	buf, _, n, err := s.snapshotRecords()
	if err != nil {
		return 0, err
	}
	tmp := filepath.Join(s.walDir, "checkpoint.tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("db: checkpoint: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return 0, fmt.Errorf("db: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("db: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("db: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, CheckpointPath(s.walDir)); err != nil {
		return 0, fmt.Errorf("db: checkpoint rename: %w", err)
	}
	// The checkpoint is committed; everything in the live log is covered by
	// the frontier, so the log can restart empty.
	if err := s.wal.Reset(); err != nil {
		return 0, err
	}
	s.events.Emit(obs.EvCheckpoint, "", fmt.Sprintf("records=%d", n))
	return n, nil
}

func (s *Session) execCheckpoint() (*Result, error) {
	n, err := s.Checkpoint()
	if err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("CHECKPOINT: %d records, wal truncated", n)}, nil
}

// execInsert appends the statement's rows to a live table as new blocks.
func (s *Session) execInsert(st *sqlparse.Insert) (*Result, error) {
	entry, ok := s.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("db: unknown table %q", st.Table)
	}
	tab := entry.Table
	feats := tab.Features()
	base := int64(tab.NumTuples())
	tuples := make([]data.Tuple, len(st.Rows))
	for i, row := range st.Rows {
		if len(row.Features) != feats {
			return nil, fmt.Errorf("db: INSERT row %d has %d features, table %q has %d",
				i+1, len(row.Features), entry.Name, feats)
		}
		tuples[i] = data.Tuple{
			ID: base + int64(i), Label: row.Label,
			Dense: append([]float64(nil), row.Features...),
		}
	}
	preBlocks := tab.NumBlocks()
	raws, err := tab.AppendTuples(tuples)
	if err != nil {
		return nil, err
	}
	if err := s.logAppendedBlocks(entry.Name, raws); err != nil {
		// The log rejected the statement, so the acknowledged state must not
		// include it: drop the in-memory blocks the append just created.
		tab.TruncateBlocks(preBlocks)
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("INSERT: %d tuples in %d blocks into %q (now %d tuples, %d blocks)",
		len(tuples), len(raws), entry.Name, tab.NumTuples(), tab.NumBlocks())}, nil
}

// loadChunkTuples is the streaming LOAD INTO append granularity: each chunk
// is appended and WAL-synced independently, so a crash mid-load leaves a
// consistent prefix of the file ingested.
const loadChunkTuples = 4096

// execLoadTable streams a LIBSVM file into an existing table.
func (s *Session) execLoadTable(st *sqlparse.LoadTable) (*Result, error) {
	entry, ok := s.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("db: unknown table %q", st.Table)
	}
	tab := entry.Table
	f, err := os.Open(st.Path)
	if err != nil {
		return nil, fmt.Errorf("db: %w", err)
	}
	defer f.Close()
	ds, err := data.ReadLIBSVM(f, entry.Name, tab.Features())
	if err != nil {
		return nil, err
	}
	for i := range ds.Tuples {
		for _, idx := range ds.Tuples[i].SparseIdx {
			if int(idx) >= tab.Features() {
				return nil, fmt.Errorf("db: %s row %d has feature index %d, table %q has %d features",
					st.Path, i+1, idx+1, entry.Name, tab.Features())
			}
		}
	}
	base := int64(tab.NumTuples())
	for i := range ds.Tuples {
		ds.Tuples[i].ID = base + int64(i)
	}
	blocks := 0
	for off := 0; off < len(ds.Tuples); off += loadChunkTuples {
		end := off + loadChunkTuples
		if end > len(ds.Tuples) {
			end = len(ds.Tuples)
		}
		preBlocks := tab.NumBlocks()
		raws, err := tab.AppendTuples(ds.Tuples[off:end])
		if err != nil {
			return nil, err
		}
		if err := s.logAppendedBlocks(entry.Name, raws); err != nil {
			// Earlier chunks were logged and synced — they stay. Only the
			// chunk whose records never became durable is rolled back.
			tab.TruncateBlocks(preBlocks)
			return nil, err
		}
		blocks += len(raws)
	}
	return &Result{Message: fmt.Sprintf("LOAD: %d tuples in %d blocks into %q (now %d tuples, %d blocks)",
		len(ds.Tuples), blocks, entry.Name, tab.NumTuples(), tab.NumBlocks())}, nil
}
