package db

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"corgipile/internal/data"
	"corgipile/internal/obs"
	"corgipile/internal/sqlparse"
)

func TestCreateShowDrop(t *testing.T) {
	s := NewSession()
	res, err := s.Exec(`CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.05, order='clustered') WITH device='ssd', block_size=64KB`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "CREATE TABLE") {
		t.Fatalf("message = %q", res.Message)
	}

	res, err = s.Exec("SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "t" || res.Rows[0][4] != "ssd" {
		t.Fatalf("SHOW TABLES rows = %v", res.Rows)
	}

	if _, err := s.Exec("DROP TABLE t"); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Exec("SHOW TABLES")
	if len(res.Rows) != 0 {
		t.Fatal("table not dropped")
	}
}

func TestCreateDuplicateAndUnknowns(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.02)`)
	if _, err := s.Exec(`CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.02)`); err == nil {
		t.Fatal("duplicate table should error")
	}
	if _, err := s.Exec(`CREATE TABLE u AS SYNTHETIC(workload='nope')`); err == nil {
		t.Fatal("unknown workload should error")
	}
	if _, err := s.Exec(`CREATE TABLE u AS SYNTHETIC(workload='susy') WITH device='tape'`); err == nil {
		t.Fatal("unknown device should error")
	}
	if _, err := s.Exec(`CREATE TABLE u AS SYNTHETIC(workload='susy', order='sideways')`); err == nil {
		t.Fatal("unknown order should error")
	}
	if _, err := s.Exec(`DROP TABLE missing`); err == nil {
		t.Fatal("dropping missing table should error")
	}
	if _, err := s.Exec(`DROP MODEL missing`); err == nil {
		t.Fatal("dropping missing model should error")
	}
	if _, err := s.Exec(`SELECT * FROM missing TRAIN BY svm`); err == nil {
		t.Fatal("training on missing table should error")
	}
	if _, err := s.Exec(`SELECT * FROM t PREDICT BY missing`); err == nil {
		t.Fatal("predicting with missing model should error")
	}
}

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestTrainAndPredictEndToEnd(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.1, order='clustered') WITH device='ssd', block_size=32KB`)
	res := mustExec(t, s, `SELECT * FROM t TRAIN BY svm MODEL m1 WITH learning_rate=0.05, max_epoch_num=5, shuffle='corgipile'`)
	if len(res.Rows) != 5 {
		t.Fatalf("train returned %d epoch rows, want 5", len(res.Rows))
	}
	// Accuracy column must be sensible (>0.5 on susy-like).
	acc, err := strconv.ParseFloat(res.Rows[4][2], 64)
	if err != nil || acc < 0.6 {
		t.Fatalf("final accuracy %q too low", res.Rows[4][2])
	}
	// Simulated seconds must be monotone.
	prev := -1.0
	for _, row := range res.Rows {
		sec, _ := strconv.ParseFloat(row[3], 64)
		if sec < prev {
			t.Fatalf("seconds not monotone: %v after %v", sec, prev)
		}
		prev = sec
	}

	pres := mustExec(t, s, `SELECT * FROM t PREDICT BY m1 LIMIT 7`)
	if len(pres.Rows) != 7 {
		t.Fatalf("predict returned %d rows, want 7", len(pres.Rows))
	}
	if !strings.Contains(pres.Message, "accuracy") {
		t.Fatalf("predict message = %q", pres.Message)
	}

	sres := mustExec(t, s, `SHOW MODELS`)
	if len(sres.Rows) != 1 || sres.Rows[0][0] != "m1" || sres.Rows[0][1] != "svm" {
		t.Fatalf("SHOW MODELS rows = %v", sres.Rows)
	}
}

func TestTrainCorgiPileBeatsNoShuffleViaSQL(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='higgs', scale=0.2, order='clustered') WITH device='ram', block_size=16KB`)
	corgi := mustExec(t, s, `SELECT * FROM t TRAIN BY lr MODEL c WITH max_epoch_num=6, shuffle='corgipile', learning_rate=0.05`)
	noshuf := mustExec(t, s, `SELECT * FROM t TRAIN BY lr MODEL n WITH max_epoch_num=6, shuffle='no_shuffle', learning_rate=0.05`)
	ca, _ := strconv.ParseFloat(corgi.Rows[5][2], 64)
	na, _ := strconv.ParseFloat(noshuf.Rows[5][2], 64)
	if ca <= na {
		t.Fatalf("corgipile accuracy %.4f should beat no_shuffle %.4f on clustered data", ca, na)
	}
}

func TestTrainAutoModelName(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.02)`)
	res := mustExec(t, s, `SELECT * FROM t TRAIN BY svm WITH max_epoch_num=1`)
	if !strings.Contains(res.Message, "model1") {
		t.Fatalf("auto name missing: %q", res.Message)
	}
}

func TestTrainSoftmaxOnMulticlass(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE c AS SYNTHETIC(workload='cifar10', scale=0.2, order='clustered') WITH device='ram', block_size=16KB`)
	res := mustExec(t, s, `SELECT * FROM c TRAIN BY softmax MODEL sm WITH max_epoch_num=5, learning_rate=0.05`)
	acc, _ := strconv.ParseFloat(res.Rows[len(res.Rows)-1][2], 64)
	if acc < 0.5 {
		t.Fatalf("softmax accuracy %.3f too low", acc)
	}
}

func TestTrainLinregOnRegression(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE r AS SYNTHETIC(workload='yearpred', scale=0.2, order='clustered') WITH device='ram', block_size=32KB`)
	res := mustExec(t, s, `SELECT * FROM r TRAIN BY linreg MODEL lin WITH max_epoch_num=8, learning_rate=0.01`)
	r2, _ := strconv.ParseFloat(res.Rows[len(res.Rows)-1][2], 64)
	if r2 < 0.8 {
		t.Fatalf("linreg R² %.3f too low", r2)
	}
}

func TestTrainUnknownModel(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.02)`)
	if _, err := s.Exec(`SELECT * FROM t TRAIN BY transformer`); err == nil {
		t.Fatal("unknown model type should error")
	}
}

func TestCreateFromLIBSVMFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mini.libsvm")
	ds := data.SyntheticBinary(data.SyntheticConfig{
		Tuples: 100, Features: 20, Sparse: true, NNZ: 5, Order: data.OrderClustered, Seed: 71})
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := data.WriteLIBSVM(f, ds); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s := NewSession()
	res := mustExec(t, s, `CREATE TABLE ext FROM '`+path+`' WITH device='ssd'`)
	if !strings.Contains(res.Message, "100 tuples") {
		t.Fatalf("message = %q", res.Message)
	}
	if _, err := s.Exec(`CREATE TABLE bad FROM '/no/such/file.libsvm'`); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestExecScript(t *testing.T) {
	s := NewSession()
	results, err := s.ExecScript(`
		CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.05, order='clustered');
		SELECT * FROM t TRAIN BY svm MODEL m WITH max_epoch_num=2;
		SELECT * FROM t PREDICT BY m LIMIT 3;
		SHOW MODELS;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("script produced %d results, want 4", len(results))
	}
	if len(results[2].Rows) != 3 {
		t.Fatalf("predict limit gave %d rows", len(results[2].Rows))
	}
}

func TestSessionClockAdvancesWithTraining(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.05) WITH device='hdd', block_size=32KB`)
	before := s.Clock().Now()
	mustExec(t, s, `SELECT * FROM t TRAIN BY svm WITH max_epoch_num=2`)
	if s.Clock().Now() <= before {
		t.Fatal("training should consume simulated time")
	}
}

func TestExplainTrainPlan(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.05) WITH block_size=16KB`)
	res := mustExec(t, s, `EXPLAIN SELECT * FROM t TRAIN BY svm WITH shuffle='corgipile', buffer_fraction=0.1`)
	plan := ""
	for _, row := range res.Rows {
		plan += row[0] + "\n"
	}
	for _, needle := range []string{"SGD", "TupleShuffle", "BlockShuffle", "double-buffer"} {
		if !strings.Contains(plan, needle) {
			t.Fatalf("plan missing %q:\n%s", needle, plan)
		}
	}
	res = mustExec(t, s, `EXPLAIN SELECT * FROM t TRAIN BY svm WITH shuffle='no_shuffle'`)
	plan = res.Rows[1][0]
	if !strings.Contains(plan, "Scan") {
		t.Fatalf("no-shuffle plan should use Scan: %q", plan)
	}
	if _, err := s.Exec(`EXPLAIN SELECT * FROM missing TRAIN BY svm`); err == nil {
		t.Fatal("explain on missing table should error")
	}
	if _, err := s.Exec(`EXPLAIN SELECT * FROM t PREDICT BY m`); err == nil {
		t.Fatal("explain of predict should be rejected")
	}
}

func TestExplainAnalyzeTrain(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.05) WITH block_size=16KB`)
	res := mustExec(t, s, `EXPLAIN ANALYZE SELECT * FROM t TRAIN BY svm WITH shuffle='corgipile', buffer_fraction=0.1, max_epoch_num=2`)
	if res.Plan == nil {
		t.Fatal("EXPLAIN ANALYZE result carries no PlanStats")
	}
	text := ""
	for _, row := range res.Rows {
		text += row[0] + "\n"
	}
	for _, needle := range []string{
		"SGD (model=svm", "TupleShuffle", "BlockShuffle", "(actual: rows=", "read=",
	} {
		if !strings.Contains(text, needle) {
			t.Fatalf("analyze plan missing %q:\n%s", needle, text)
		}
	}
	// The exclusive-time attribution invariant holds through the SQL layer.
	sum, total := res.Plan.SelfSimSum(), res.Plan.TotalSimSeconds
	if total <= 0 || math.Abs(sum-total) > 0.001*total {
		t.Fatalf("exclusive times sum to %v, epoch total %v", sum, total)
	}
	if !strings.Contains(res.Message, "EXPLAIN ANALYZE: model") {
		t.Fatalf("message = %q", res.Message)
	}
	// ANALYZE really executes: the trained model is stored and usable.
	if models := mustExec(t, s, `SHOW MODELS`); len(models.Rows) != 1 {
		t.Fatalf("models after EXPLAIN ANALYZE = %v", models.Rows)
	}

	res = mustExec(t, s, `EXPLAIN ANALYZE FORMAT JSON SELECT * FROM t TRAIN BY svm WITH shuffle='corgipile', max_epoch_num=2`)
	joined := ""
	for _, row := range res.Rows {
		joined += row[0] + "\n"
	}
	var p obs.PlanStats
	if err := json.Unmarshal([]byte(joined), &p); err != nil {
		t.Fatalf("FORMAT JSON output not valid JSON: %v\n%s", err, joined)
	}
	if p.Name != "SGD" || p.Rows == 0 {
		t.Fatalf("decoded plan root %+v", p)
	}
}

func TestAnalyzeTable(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE clus AS SYNTHETIC(workload='susy', scale=0.2, order='clustered') WITH block_size=8KB`)
	mustExec(t, s, `CREATE TABLE shuf AS SYNTHETIC(workload='susy', scale=0.2, order='shuffled') WITH block_size=8KB`)
	hd := func(table string) float64 {
		res := mustExec(t, s, `ANALYZE TABLE `+table+` WITH model='lr'`)
		for _, row := range res.Rows {
			if row[0] == "cluster factor h_D" {
				var v float64
				if _, err := fmt.Sscanf(row[1], "%f", &v); err != nil {
					t.Fatalf("bad h_D cell %q", row[1])
				}
				return v
			}
		}
		t.Fatal("h_D row missing")
		return 0
	}
	clustered, shuffled := hd("clus"), hd("shuf")
	// susy-like data is noisy (within-class variance dominates), so the
	// clustered h_D is moderate — but it must still clearly exceed the
	// shuffled table's ~1.
	if clustered < 2*shuffled {
		t.Fatalf("clustered h_D (%.2f) should exceed shuffled (%.2f)", clustered, shuffled)
	}
	res := mustExec(t, s, `ANALYZE TABLE clus`)
	if !strings.Contains(res.Message, "buffer_fraction") {
		t.Fatalf("analyze message %q", res.Message)
	}
	if _, err := s.Exec(`ANALYZE TABLE missing`); err == nil {
		t.Fatal("analyze on missing table should error")
	}
}

func TestPredictWithWhere(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.05, order='clustered')`)
	mustExec(t, s, `SELECT * FROM t TRAIN BY svm MODEL m WITH max_epoch_num=2`)
	all := mustExec(t, s, `SELECT * FROM t PREDICT BY m`)
	neg := mustExec(t, s, `SELECT * FROM t WHERE label = -1 PREDICT BY m`)
	if len(neg.Rows) >= len(all.Rows) || len(neg.Rows) == 0 {
		t.Fatalf("WHERE filter rows = %d of %d", len(neg.Rows), len(all.Rows))
	}
	for _, row := range neg.Rows {
		if row[1] != "-1" {
			t.Fatalf("filtered row has label %q", row[1])
		}
	}
	few := mustExec(t, s, `SELECT * FROM t WHERE id < 10 PREDICT BY m`)
	if len(few.Rows) != 10 {
		t.Fatalf("id < 10 returned %d rows", len(few.Rows))
	}
}

func TestTrainWithWhere(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.1, order='clustered')`)
	// Train on half the data via an id predicate; epoch tuple counts halve.
	res := mustExec(t, s, `SELECT * FROM t WHERE id < 500 TRAIN BY svm MODEL half WITH max_epoch_num=2`)
	n, _ := strconv.Atoi(res.Rows[0][4])
	if n != 500 {
		t.Fatalf("filtered epoch consumed %d tuples, want 500", n)
	}
}

func TestSaveAndLoadModel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	s := NewSession()
	mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.1, order='clustered')`)
	mustExec(t, s, `SELECT * FROM t TRAIN BY svm MODEL m WITH max_epoch_num=3`)
	orig := mustExec(t, s, `SELECT * FROM t PREDICT BY m`)
	mustExec(t, s, `SAVE MODEL m TO '`+path+`'`)

	// A fresh session restores the model and predicts identically.
	s2 := NewSession()
	mustExec(t, s2, `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.1, order='clustered')`)
	mustExec(t, s2, `LOAD MODEL m2 FROM '`+path+`'`)
	restored := mustExec(t, s2, `SELECT * FROM t PREDICT BY m2`)
	if orig.Message != strings.Replace(restored.Message, "m2", "m", 1) && orig.Message != restored.Message {
		// Accuracy strings must match exactly: same weights, same data.
		if orig.Message[len(orig.Message)-6:] != restored.Message[len(restored.Message)-6:] {
			t.Fatalf("restored model predicts differently: %q vs %q", orig.Message, restored.Message)
		}
	}

	// Error paths.
	if _, err := s.Exec(`SAVE MODEL missing TO '` + path + `'`); err == nil {
		t.Fatal("saving a missing model should error")
	}
	if _, err := s2.Exec(`LOAD MODEL m2 FROM '` + path + `'`); err == nil {
		t.Fatal("loading over an existing model should error")
	}
	if _, err := s2.Exec(`LOAD MODEL m3 FROM '/no/such/file.json'`); err == nil {
		t.Fatal("loading a missing file should error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"format":99}`), 0o644)
	if _, err := s2.Exec(`LOAD MODEL m4 FROM '` + bad + `'`); err == nil {
		t.Fatal("unsupported format should error")
	}
	trunc := filepath.Join(dir, "trunc.json")
	os.WriteFile(trunc, []byte(`{"format":1,"kind":"svm","features":18,"classes":2,"weights":[1]}`), 0o644)
	if _, err := s2.Exec(`LOAD MODEL m5 FROM '` + trunc + `'`); err == nil {
		t.Fatal("wrong weight count should error")
	}
}

func TestSaveLoadMLPPreservesHidden(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mlp.json")
	s := NewSession()
	mustExec(t, s, `CREATE TABLE c AS SYNTHETIC(workload='cifar10', scale=0.1, order='shuffled')`)
	mustExec(t, s, `SELECT * FROM c TRAIN BY mlp MODEL deep WITH max_epoch_num=2, learning_rate=0.02, batch_size=16`)
	mustExec(t, s, `SAVE MODEL deep TO '`+path+`'`)
	s2 := NewSession()
	mustExec(t, s2, `LOAD MODEL deep2 FROM '`+path+`'`)
	m, _ := s2.Model("deep2")
	if m.Kind != "mlp" || len(m.W) == 0 {
		t.Fatalf("restored MLP malformed: %+v", m.Kind)
	}
}

func TestTrainFactorizationMachineViaSQL(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.1, order='clustered')`)
	res := mustExec(t, s, `SELECT * FROM t TRAIN BY fm MODEL f WITH max_epoch_num=4, learning_rate=0.02`)
	acc, _ := strconv.ParseFloat(res.Rows[len(res.Rows)-1][2], 64)
	if acc < 0.6 {
		t.Fatalf("FM accuracy %.3f too low", acc)
	}
}

func TestPredicateFuncAllOperators(t *testing.T) {
	tp := &data.Tuple{ID: 10, Label: -1}
	cases := []struct {
		col, op string
		val     float64
		want    bool
	}{
		{"id", "=", 10, true}, {"id", "=", 9, false},
		{"id", "!=", 9, true}, {"id", "!=", 10, false},
		{"id", "<", 11, true}, {"id", "<", 10, false},
		{"id", "<=", 10, true}, {"id", "<=", 9, false},
		{"id", ">", 9, true}, {"id", ">", 10, false},
		{"id", ">=", 10, true}, {"id", ">=", 11, false},
		{"label", "=", -1, true}, {"label", ">", 0, false},
	}
	for _, c := range cases {
		f := CompilePredicate(&sqlparse.Predicate{Column: c.col, Op: c.op, Value: c.val})
		if got := f(tp); got != c.want {
			t.Errorf("%s %s %v = %v, want %v", c.col, c.op, c.val, got, c.want)
		}
	}
	if CompilePredicate(nil) != nil {
		t.Error("nil predicate should compile to nil")
	}
	// Unknown operator falls through to pass-all.
	if f := CompilePredicate(&sqlparse.Predicate{Column: "id", Op: "~", Value: 1}); !f(tp) {
		t.Error("unknown op should pass everything")
	}
}

func TestTrainProcsParamDeterministic(t *testing.T) {
	// The procs WITH-param selects the mini-batch worker count; results
	// must be bit-for-bit identical at every setting (see ml.BatchEngine).
	run := func(procs int) [][]string {
		s := NewSession()
		mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='higgs', scale=0.05, order='clustered')`)
		res := mustExec(t, s, fmt.Sprintf(
			`SELECT * FROM t TRAIN BY svm MODEL m WITH max_epoch_num=3, batch_size=32, procs=%d`, procs))
		return res.Rows
	}
	base := run(1)
	for _, procs := range []int{2, 4} {
		rows := run(procs)
		if len(rows) != len(base) {
			t.Fatalf("procs=%d produced %d rows, want %d", procs, len(rows), len(base))
		}
		for i := range rows {
			for j := range rows[i] {
				if rows[i][j] != base[i][j] {
					t.Fatalf("procs=%d row %d col %d = %q, procs=1 gave %q",
						procs, i, j, rows[i][j], base[i][j])
				}
			}
		}
	}
}
