package db

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"corgipile/internal/executor"
	"corgipile/internal/ml"
	"corgipile/internal/sqlparse"
)

// modelFile is the on-disk JSON representation of a trained model.
type modelFile struct {
	// Format versions the file layout.
	Format int `json:"format"`
	// Kind is the model type ("svm", "lr", "linreg", "softmax", "mlp").
	Kind     string    `json:"kind"`
	Features int       `json:"features"`
	Classes  int       `json:"classes"`
	Hidden   int       `json:"hidden,omitempty"` // MLP hidden width
	W        []float64 `json:"weights"`
}

const modelFileFormat = 1

// SaveModelFile writes a trained model's weights and metadata to the JSON
// model-file format that LOAD MODEL (and LoadModelFile) reads. hidden is
// the MLP hidden width and ignored for other kinds.
func SaveModelFile(path, kind string, features, classes, hidden int, w []float64) error {
	mf := modelFile{
		Format:   modelFileFormat,
		Kind:     kind,
		Features: features,
		Classes:  classes,
		Hidden:   hidden,
		W:        w,
	}
	buf, err := json.Marshal(mf)
	if err != nil {
		return fmt.Errorf("db: encode model: %w", err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("db: %w", err)
	}
	return nil
}

// LoadModelFile reads a model file and reconstructs the model and weights.
func LoadModelFile(path string) (ml.Model, *modelFile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("db: %w", err)
	}
	var mf modelFile
	if err := json.Unmarshal(buf, &mf); err != nil {
		return nil, nil, fmt.Errorf("db: decode model: %w", err)
	}
	if mf.Format != modelFileFormat {
		return nil, nil, fmt.Errorf("db: unsupported model file format %d", mf.Format)
	}
	model, err := ml.New(mf.Kind, maxInt(mf.Classes, 2))
	if err != nil {
		return nil, nil, fmt.Errorf("db: model file: %w", err)
	}
	if mlp, ok := model.(ml.MLP); ok && mf.Hidden > 0 {
		mlp.Hidden = mf.Hidden
		model = mlp
	}
	if want := model.Dim(mf.Features); want != len(mf.W) {
		return nil, nil, fmt.Errorf("db: model file weights have %d values, want %d", len(mf.W), want)
	}
	return model, &mf, nil
}

// execSave serializes a catalog model to a JSON file.
func (s *Session) execSave(st *sqlparse.SaveModel) (*Result, error) {
	m, ok := s.Model(st.Name)
	if !ok {
		return nil, fmt.Errorf("db: unknown model %q", st.Name)
	}
	hidden := 0
	if mlp, ok := m.Model.(ml.MLP); ok {
		hidden = mlp.Hidden
	}
	if err := SaveModelFile(st.Path, m.Kind, m.Features, m.Classes, hidden, m.W); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("SAVE MODEL: %q → %s", m.Name, st.Path)}, nil
}

// execLoad restores a saved model into the catalog.
func (s *Session) execLoad(st *sqlparse.LoadModel) (*Result, error) {
	name := strings.ToLower(st.Name)
	if _, exists := s.models[name]; exists {
		return nil, fmt.Errorf("db: model %q already exists", st.Name)
	}
	model, mf, err := LoadModelFile(st.Path)
	if err != nil {
		return nil, err
	}
	entry := &ModelEntry{
		Name: name, Kind: mf.Kind, Model: model, W: mf.W,
		Features: mf.Features, Classes: mf.Classes,
		Epochs: []executor.EpochRow{},
	}
	if err := s.logModel(entry); err != nil {
		return nil, err
	}
	s.models[name] = entry
	return &Result{Message: fmt.Sprintf("LOAD MODEL: %q ← %s", name, st.Path)}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
