// Package db glues the SQL front end to the storage engine and the
// executor: a catalog of tables and trained models, and a session that
// executes parsed statements. It is the top of the in-DB ML stack — the
// analogue of the paper's modified PostgreSQL.
package db

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"corgipile/internal/core"
	"corgipile/internal/data"
	"corgipile/internal/executor"
	"corgipile/internal/iosim"
	"corgipile/internal/ml"
	"corgipile/internal/obs"
	"corgipile/internal/shuffle"
	"corgipile/internal/sqlparse"
	"corgipile/internal/storage"
)

// TableEntry is a catalog entry for a stored table.
type TableEntry struct {
	Name  string
	Table *storage.Table
	// Device names the device class the table lives on.
	Device string
}

// ModelEntry is a catalog entry for a trained model.
type ModelEntry struct {
	Name string
	// Kind is the model type ("svm", "lr", ...).
	Kind  string
	Model ml.Model
	W     []float64
	// Features and Classes describe the training table's schema.
	Features int
	Classes  int
	// Table names the table the model was trained on and TrainedBlocks is
	// the block frontier it has seen: TRAIN ... WITH resume='name' folds
	// only blocks appended past this frontier into the next run. Both are
	// zero for models loaded from a file (not resumable).
	Table         string
	TrainedBlocks int
	// Epochs holds the per-epoch training metrics.
	Epochs []executor.EpochRow
	// Breakdown holds the per-epoch cross-layer time breakdown when the
	// session has a metrics registry attached (nil otherwise).
	Breakdown []obs.EpochMetrics
	// Plan holds the executed plan's per-operator profile when the model
	// was trained through EXPLAIN ANALYZE (nil otherwise).
	Plan *obs.PlanStats
}

// Result is the tabular output of a statement.
type Result struct {
	Columns []string
	Rows    [][]string
	// Message carries non-tabular feedback ("CREATE TABLE", row counts).
	Message string
	// Breakdown carries a TRAIN statement's per-epoch cross-layer time
	// breakdown when the session has a metrics registry attached.
	Breakdown []obs.EpochMetrics
	// Plan carries the executed plan's per-operator profile for EXPLAIN
	// ANALYZE statements (nil otherwise).
	Plan *obs.PlanStats
}

// Session executes statements against a private catalog, simulated devices,
// and one shared simulated clock.
type Session struct {
	clock   *iosim.Clock
	devices map[string]*iosim.Device
	tables  map[string]*TableEntry
	models  map[string]*ModelEntry
	obs     *obs.Registry
	feed    *obs.RunFeed
	diag    *core.DiagConfig
	nextID  int
	// events is the structured event log (nil = introspection idle) and
	// virtual holds the registered system tables the general SELECT path
	// reads (corgi_tables, corgi_jobs, ...).
	events  *obs.EventLog
	virtual map[string]*VirtualTable
	// history is the sampled metrics time-series store backing
	// corgi_metrics_history and corgi_alerts (nil = zero rows).
	history *obs.History
	// walOpened is the wall-clock instant OpenWAL finished recovery — the
	// checkpoint-age baseline until the first CHECKPOINT lands.
	walOpened time.Time
	// wal and walDir are set by OpenWAL; a nil wal means the session is
	// purely in-memory (the default) and mutation logging is a no-op.
	wal    *storage.WAL
	walDir string
	// readOnly rejects every mutating statement — the replica mode, flipped
	// off by PROMOTE. Atomic because the serving plane reads it outside the
	// catalog lock for TRAIN admission.
	readOnly atomic.Bool
}

// NewSession returns an empty session with HDD, SSD and RAM devices sharing
// one clock. Each device carries a 16 GiB simulated OS cache.
func NewSession() *Session {
	clock := iosim.NewClock()
	devs := map[string]*iosim.Device{
		"hdd": iosim.NewDevice(iosim.HDD, clock).WithCache(16 << 30),
		"ssd": iosim.NewDevice(iosim.SSD, clock).WithCache(16 << 30),
		"ram": iosim.NewDevice(iosim.RAM, clock).WithCache(16 << 30),
	}
	s := &Session{
		clock:   clock,
		devices: devs,
		tables:  make(map[string]*TableEntry),
		models:  make(map[string]*ModelEntry),
		virtual: make(map[string]*VirtualTable),
	}
	s.registerSystemTables()
	return s
}

// Clock returns the session's simulated clock.
func (s *Session) Clock() *iosim.Clock { return s.clock }

// WithMetrics attaches a metrics registry to the session: the registry
// measures spans on the session clock, every device reports I/O into it,
// and TRAIN statements record per-epoch breakdowns (ModelEntry.Breakdown).
// It returns the session.
func (s *Session) WithMetrics(reg *obs.Registry) *Session {
	s.obs = reg
	reg.WithClock(s.clock)
	for _, dev := range s.devices {
		dev.WithObs(reg)
	}
	return s
}

// Metrics returns the session's metrics registry (nil when none attached).
func (s *Session) Metrics() *obs.Registry { return s.obs }

// WithEvents attaches a structured event log: every executed statement
// emits start/finish events (with duration, error code and — over the
// wire — the request's trace ID), an open WAL reports sync failures into
// it, and the corgi_events / corgi_spans system tables read from it. It
// returns the session. A session without an event log skips all event
// emission — introspection is strictly opt-in.
func (s *Session) WithEvents(el *obs.EventLog) *Session {
	s.events = el
	if s.wal != nil {
		s.wal.WithEvents(el)
	}
	return s
}

// Events returns the session's event log (nil when none attached).
func (s *Session) Events() *obs.EventLog { return s.events }

// WithHistory attaches a metrics history store: the corgi_metrics_history
// and corgi_alerts system tables read sampled series and alert states
// from it. The session never samples — the owner runs the sampler against
// whatever registry it exposes. It returns the session. Without a store
// both tables render zero rows.
func (s *Session) WithHistory(h *obs.History) *Session {
	s.history = h
	return s
}

// History returns the session's metrics history store (nil when none
// attached).
func (s *Session) History() *obs.History { return s.history }

// WithFeed attaches a live run feed: every TRAIN statement publishes one
// RunStatus update per epoch to it (the telemetry server's /run source).
// It returns the session.
func (s *Session) WithFeed(feed *obs.RunFeed) *Session {
	s.feed = feed
	return s
}

// WithDiag attaches a convergence-diagnostics configuration: every TRAIN
// statement tracks gradient/update norms and the plateau/divergence
// verdict (read-only; the loss trace is unchanged). It returns the
// session.
func (s *Session) WithDiag(d *core.DiagConfig) *Session {
	s.diag = d
	return s
}

// Table returns the named table entry.
func (s *Session) Table(name string) (*TableEntry, bool) {
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// Model returns the named model entry.
func (s *Session) Model(name string) (*ModelEntry, bool) {
	m, ok := s.models[strings.ToLower(name)]
	return m, ok
}

// Exec parses and executes one statement.
func (s *Session) Exec(sql string) (*Result, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.ExecStatement(st)
}

// ExecScript executes a semicolon-separated script, returning the result of
// each statement.
func (s *Session) ExecScript(sql string) ([]*Result, error) {
	stmts, err := sqlparse.ParseAll(sql)
	if err != nil {
		return nil, err
	}
	var results []*Result
	for _, st := range stmts {
		r, err := s.ExecStatement(st)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

// ExecStatement executes a parsed statement.
func (s *Session) ExecStatement(st sqlparse.Statement) (*Result, error) {
	return s.ExecStatementT(st, "")
}

// ExecStatementT executes a parsed statement attributed to a trace ID.
// When the session has an event log, it emits statement start/finish
// events (the finish event carries the wall-clock duration and the error
// text, plus a companion slow-statement event past the armed threshold);
// without one the path is identical to ExecStatement.
func (s *Session) ExecStatementT(st sqlparse.Statement, trace string) (*Result, error) {
	if s.events == nil {
		return s.execStatement(st)
	}
	kind := StatementKind(st)
	s.events.Emit(obs.EvStatementStart, trace, kind)
	start := time.Now()
	res, err := s.execStatement(st)
	dur := time.Since(start)
	ev := obs.Event{
		Type: obs.EvStatementFinish, Trace: trace, Detail: kind,
		DurMs: float64(dur) / float64(time.Millisecond),
	}
	if err != nil {
		ev.Err = err.Error()
	}
	s.events.Record(ev)
	if s.events.Slow(dur) {
		s.events.Record(obs.Event{
			Type: obs.EvStatementSlow, Trace: trace, Detail: kind,
			DurMs: float64(dur) / float64(time.Millisecond),
		})
	}
	return res, err
}

// StatementKind names a statement for event details: the statement verb
// plus its primary object, e.g. "train t" or "select corgi_jobs".
func StatementKind(st sqlparse.Statement) string {
	switch st := st.(type) {
	case *sqlparse.CreateTable:
		return "create_table " + strings.ToLower(st.Name)
	case *sqlparse.Train:
		return "train " + strings.ToLower(st.Table)
	case *sqlparse.Predict:
		return "predict " + strings.ToLower(st.Table)
	case *sqlparse.Select:
		return "select " + strings.ToLower(st.Table)
	case *sqlparse.Show:
		return "show " + st.What
	case *sqlparse.Drop:
		return "drop " + strings.ToLower(st.Name)
	case *sqlparse.Explain:
		return "explain " + strings.ToLower(st.Train.Table)
	case *sqlparse.Analyze:
		return "analyze " + strings.ToLower(st.Table)
	case *sqlparse.SaveModel:
		return "save_model " + strings.ToLower(st.Name)
	case *sqlparse.LoadModel:
		return "load_model " + strings.ToLower(st.Name)
	case *sqlparse.Insert:
		return "insert " + strings.ToLower(st.Table)
	case *sqlparse.LoadTable:
		return "load_into " + strings.ToLower(st.Table)
	case *sqlparse.Checkpoint:
		return "checkpoint"
	case *sqlparse.Promote:
		return "promote"
	}
	return fmt.Sprintf("%T", st)
}

// execStatement dispatches a parsed statement to its handler.
func (s *Session) execStatement(st sqlparse.Statement) (*Result, error) {
	if s.readOnly.Load() {
		if kind, bad := mutatingKind(st); bad {
			return nil, fmt.Errorf("db: %s rejected: %w", kind, ErrReadOnly)
		}
	}
	switch st := st.(type) {
	case *sqlparse.CreateTable:
		return s.execCreate(st)
	case *sqlparse.Select:
		return s.execSelect(st)
	case *sqlparse.Train:
		return s.execTrain(st)
	case *sqlparse.Predict:
		return s.execPredict(st)
	case *sqlparse.Show:
		return s.execShow(st)
	case *sqlparse.Drop:
		return s.execDrop(st)
	case *sqlparse.Explain:
		return s.execExplain(st)
	case *sqlparse.Analyze:
		return s.execAnalyze(st)
	case *sqlparse.SaveModel:
		return s.execSave(st)
	case *sqlparse.LoadModel:
		return s.execLoad(st)
	case *sqlparse.Insert:
		return s.execInsert(st)
	case *sqlparse.LoadTable:
		return s.execLoadTable(st)
	case *sqlparse.Checkpoint:
		return s.execCheckpoint()
	case *sqlparse.Promote:
		// A bare session has no replication stream to stop; PROMOTE just
		// clears the read-only latch. corgiserved intercepts PROMOTE before
		// it reaches here to also tear down its replica connection.
		s.SetReadOnly(false)
		return &Result{Message: "promoted: session is writable"}, nil
	}
	return nil, fmt.Errorf("db: unsupported statement %T", st)
}

func (s *Session) execCreate(st *sqlparse.CreateTable) (*Result, error) {
	name := strings.ToLower(st.Name)
	if _, exists := s.tables[name]; exists {
		return nil, fmt.Errorf("db: table %q already exists", st.Name)
	}

	var ds *data.Dataset
	switch {
	case st.Synthetic != nil:
		workload := st.Synthetic.Str("workload", "")
		if workload == "" {
			return nil, fmt.Errorf("db: SYNTHETIC requires workload=...")
		}
		scale := st.Synthetic.Num("scale", 1)
		order, err := parseOrder(st.Synthetic.Str("order", "clustered"))
		if err != nil {
			return nil, err
		}
		if _, ok := data.Workloads[workload]; !ok {
			return nil, fmt.Errorf("db: unknown workload %q", workload)
		}
		ds = data.Generate(workload, scale, order)
	case st.SourceFile != "":
		f, err := os.Open(st.SourceFile)
		if err != nil {
			return nil, fmt.Errorf("db: %w", err)
		}
		defer f.Close()
		ds, err = data.ReadLIBSVM(f, name, 0)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("db: CREATE TABLE needs AS SYNTHETIC or FROM 'file'")
	}

	devName := strings.ToLower(st.With.Str("device", "hdd"))
	dev, ok := s.devices[devName]
	if !ok {
		return nil, fmt.Errorf("db: unknown device %q (hdd, ssd, ram)", devName)
	}
	if spec := st.With.Str("faults", ""); spec != "" {
		// A faulty table gets its own device instance (same profile, same
		// clock) so the injected faults never leak into other tables.
		plan, err := iosim.ParseFaultPlan(spec)
		if err != nil {
			return nil, fmt.Errorf("db: %w", err)
		}
		prof, _ := iosim.ProfileByName(devName)
		dev = iosim.NewDevice(prof, s.clock).WithCache(16 << 30).WithFaults(plan)
		if s.obs != nil {
			dev.WithObs(s.obs)
		}
	}
	opts := storage.Options{
		BlockSize: int64(st.With.Num("block_size", 10<<20)),
		Compress:  st.With.Bool("compress", false),
	}
	tab, err := storage.Build(dev, ds, opts)
	if err != nil {
		return nil, err
	}
	entry := &TableEntry{Name: name, Table: tab, Device: devName}
	if err := s.logCreateTable(entry); err != nil {
		return nil, err
	}
	s.tables[name] = entry
	return &Result{Message: fmt.Sprintf("CREATE TABLE: %d tuples, %d blocks, %d bytes on %s",
		tab.NumTuples(), tab.NumBlocks(), tab.SizeBytes(), devName)}, nil
}

func (s *Session) execTrain(st *sqlparse.Train) (*Result, error) {
	pt, rows, modelName, err := s.runTrain(st, false)
	if err != nil {
		return nil, err
	}
	op := pt.op
	res := &Result{
		Columns:   []string{"epoch", "loss", "accuracy", "seconds", "tuples"},
		Message:   trainMessage("TRAIN", modelName, op) + resumeNote(pt),
		Breakdown: op.Breakdown,
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, []string{
			strconv.Itoa(r.Epoch),
			fmt.Sprintf("%.6f", r.Loss),
			fmt.Sprintf("%.4f", r.Accuracy),
			fmt.Sprintf("%.3f", r.Seconds),
			strconv.Itoa(r.Tuples),
		})
	}
	return res, nil
}

// TrainOptions overrides the session-level execution hooks for one TRAIN
// statement — the serving plane's per-job knobs. The zero value inherits
// the session's registry, feed and diagnostics, never cancels, and leaves
// profiling off.
type TrainOptions struct {
	// Ctx, when non-nil, cancels the run: the executor checks it between
	// epochs and every few hundred tuples inside one, so a canceled context
	// stops an in-flight epoch promptly.
	Ctx context.Context
	// Obs, when non-nil, replaces the session metrics registry for this
	// run (per-job epoch breakdowns for concurrent trains).
	Obs *obs.Registry
	// Feed, when non-nil, replaces the session run feed for this run
	// (per-job live status for concurrent trains).
	Feed *obs.RunFeed
	// RunName labels feed updates (default "train <model>").
	RunName string
	// Profile enables the per-operator runtime profile (EXPLAIN ANALYZE).
	Profile bool
	// Events, when non-nil, receives per-epoch wall-clock spans stamped
	// with Trace — the serving plane threads its event log and the wire
	// request's trace ID through here so corgi_spans can reconstruct a
	// TRAIN job's timeline.
	Events *obs.EventLog
	// Trace is the request trace ID attributed to this run's events.
	Trace string
}

// PreparedTrain is a TRAIN statement bound to an executable plan. The
// three-phase Prepare → Execute → Install split exists for the serving
// plane: Prepare and Install read/write the catalog (callers serialize
// them), while Execute — the long-running part — touches no catalog state
// and may run outside any lock, concurrently with other statements.
type PreparedTrain struct {
	st    *sqlparse.Train
	entry *TableEntry
	cfg   executor.PlanConfig
	op    *executor.SGDOp
	// resume is the model this run continues (nil for a fresh train) and
	// frontier is the table's block count captured at prepare time — the
	// installed model's TrainedBlocks. The block range a resumed run reads
	// is frozen here, so blocks appended while the plan executes never leak
	// into it and the run stays bit-deterministic.
	resume   *ModelEntry
	frontier int
}

// Op returns the plan's root SGD operator.
func (pt *PreparedTrain) Op() *executor.SGDOp { return pt.op }

// Resumed returns the model this run continued, or nil for a fresh train.
func (pt *PreparedTrain) Resumed() *ModelEntry { return pt.resume }

// AvgBlockBytes returns the source table's mean block size in bytes. The
// serving plane multiplies it by the shuffle's block counter to estimate a
// job's bytes read (per-block I/O is counted on the session registry, not
// the job's, so the job-level figure is reconstructed).
func (pt *PreparedTrain) AvgBlockBytes() int64 {
	n := pt.entry.Table.NumBlocks()
	if n == 0 {
		return 0
	}
	return pt.entry.Table.SizeBytes() / int64(n)
}

// resumableKinds are the strategies incremental training supports: each
// treats the source as an opaque block pool, so restricting it to the
// newly appended range is exactly "fold the new blocks in". The other
// strategies need a full-shuffle materialization of the whole table,
// which contradicts training on a slice.
var resumableKinds = map[shuffle.Kind]bool{
	shuffle.KindCorgiPile: true,
	shuffle.KindBlockOnly: true,
	shuffle.KindNoShuffle: true,
}

// PrepareTrain resolves the statement's table and builds the physical plan,
// including the out-of-band evaluation decode. It reads the catalog but
// does not mutate it. With resume='model', the plan starts from that
// model's weights and scans only the blocks appended since it was trained;
// evaluation still covers the whole table.
func (s *Session) PrepareTrain(st *sqlparse.Train, opt TrainOptions) (*PreparedTrain, error) {
	entry, ok := s.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("db: unknown table %q", st.Table)
	}
	cfg, err := s.trainPlanConfig(st, entry, true, opt)
	if err != nil {
		return nil, err
	}
	var src shuffle.Source = shuffle.TableSource(entry.Table)
	frontier := entry.Table.NumBlocks()
	var resume *ModelEntry
	if name := st.Params.Str("resume", ""); name != "" {
		m, ok := s.Model(name)
		if !ok {
			return nil, fmt.Errorf("db: resume: unknown model %q", name)
		}
		if m.Kind != st.ModelType {
			return nil, fmt.Errorf("db: resume: model %q is %q, statement trains %q", name, m.Kind, st.ModelType)
		}
		if m.Table != entry.Name {
			return nil, fmt.Errorf("db: resume: model %q was trained on table %q, not %q", name, m.Table, entry.Name)
		}
		if m.Features != entry.Table.Features() {
			return nil, fmt.Errorf("db: resume: model %q has %d features, table %q has %d",
				name, m.Features, entry.Name, entry.Table.Features())
		}
		if !resumableKinds[cfg.Shuffle] {
			return nil, fmt.Errorf("db: resume supports shuffle 'corgipile', 'block_only' or 'no_shuffle' (got %q)", cfg.Shuffle)
		}
		if frontier <= m.TrainedBlocks {
			return nil, fmt.Errorf("db: resume: table %q has no blocks beyond model %q's frontier (%d)",
				entry.Name, name, m.TrainedBlocks)
		}
		src = shuffle.SliceSource(src, m.TrainedBlocks, frontier)
		w := append([]float64(nil), m.W...)
		cfg.SGD.InitWeights = func(dst []float64) { copy(dst, w) }
		resume = m
	}
	op, err := executor.BuildSGDPlan(src, cfg)
	if err != nil {
		return nil, err
	}
	return &PreparedTrain{st: st, entry: entry, cfg: cfg, op: op, resume: resume, frontier: frontier}, nil
}

// Execute runs every configured epoch and returns the per-epoch metric
// rows. It never touches the catalog, so it is safe to run outside the
// caller's catalog lock; on cancellation it returns the context's error
// wrapped by the executor.
func (pt *PreparedTrain) Execute() ([]executor.EpochRow, error) {
	return pt.op.Run()
}

// InstallModel stores the executed plan's trained model in the catalog
// under the statement's model name (or a generated one), logs it to the
// WAL when the session is durable, and returns the entry. It mutates the
// catalog; the serving plane calls it under its write lock.
func (s *Session) InstallModel(pt *PreparedTrain, rows []executor.EpochRow) (*ModelEntry, error) {
	modelName := strings.ToLower(pt.st.ModelName)
	if modelName == "" {
		s.nextID++
		modelName = fmt.Sprintf("model%d", s.nextID)
	}
	entry := &ModelEntry{
		Name: modelName, Kind: pt.st.ModelType, Model: pt.cfg.SGD.Model, W: pt.op.W,
		Features: pt.entry.Table.Features(), Classes: pt.entry.Table.Classes(), Epochs: rows,
		Breakdown: pt.op.Breakdown,
		Plan:      pt.op.Plan(),
		Table:     pt.entry.Name, TrainedBlocks: pt.frontier,
	}
	if err := s.logModel(entry); err != nil {
		return nil, err
	}
	s.models[modelName] = entry
	return entry, nil
}

// runTrain builds the full plan for a TRAIN statement, executes it, and
// stores the trained model in the catalog. profile enables the per-operator
// runtime profile (EXPLAIN ANALYZE); a plain TRAIN leaves it off so the
// executor hot path is untouched.
func (s *Session) runTrain(st *sqlparse.Train, profile bool) (*PreparedTrain, []executor.EpochRow, string, error) {
	pt, err := s.PrepareTrain(st, TrainOptions{Profile: profile})
	if err != nil {
		return nil, nil, "", err
	}
	rows, err := pt.Execute()
	if err != nil {
		return nil, nil, "", err
	}
	entry, err := s.InstallModel(pt, rows)
	if err != nil {
		return nil, nil, "", err
	}
	return pt, rows, entry.Name, nil
}

// trainMessage formats the statement's status line, appending the fault
// summary when the run degraded and the convergence verdict when the
// session tracks diagnostics.
func trainMessage(verb, modelName string, op *executor.SGDOp) string {
	msg := fmt.Sprintf("%s: model %q stored", verb, modelName)
	if op.Faults != nil {
		if sum := op.Faults.Summary(); sum.Degraded() {
			msg += "; faults: " + sum.String()
		}
	}
	if op.Verdict != "" {
		msg += "; verdict: " + string(op.Verdict)
	}
	return msg
}

// resumeNote renders the incremental-training suffix of a TRAIN message.
func resumeNote(pt *PreparedTrain) string {
	if pt.resume == nil {
		return ""
	}
	return fmt.Sprintf("; resumed from %q (+%d blocks)", pt.resume.Name, pt.frontier-pt.resume.TrainedBlocks)
}

// trainResilience builds the retry/degrade configuration from a TRAIN
// statement's WITH-params: retries=N (extra attempts after the first),
// retry_backoff_ms=M, on_corrupt=fail|skip, max_skip_fraction=F.
func trainResilience(params sqlparse.Params, seed int64) (shuffle.Resilience, error) {
	policy, err := shuffle.ParseFailurePolicy(params.Str("on_corrupt", ""))
	if err != nil {
		return shuffle.Resilience{}, fmt.Errorf("db: %w", err)
	}
	return shuffle.Resilience{
		Retry: storage.RetryPolicy{
			MaxAttempts: int(params.Num("retries", 0)) + 1,
			Backoff:     time.Duration(params.Num("retry_backoff_ms", 0) * float64(time.Millisecond)),
			Seed:        seed,
		},
		OnCorrupt:       policy,
		MaxSkipFraction: params.Num("max_skip_fraction", 0),
	}, nil
}

// CompilePredicate compiles a parsed WHERE predicate to a tuple filter
// (nil predicate = nil filter, meaning "keep everything"). Exported for the
// serving plane's cached PREDICT path, which evaluates predicates over
// in-memory tuples without building an executor pipeline.
func CompilePredicate(p *sqlparse.Predicate) func(*data.Tuple) bool {
	if p == nil {
		return nil
	}
	field := func(t *data.Tuple) float64 {
		if p.Column == "id" {
			return float64(t.ID)
		}
		return t.Label
	}
	switch p.Op {
	case "=":
		return func(t *data.Tuple) bool { return field(t) == p.Value }
	case "!=":
		return func(t *data.Tuple) bool { return field(t) != p.Value }
	case "<":
		return func(t *data.Tuple) bool { return field(t) < p.Value }
	case "<=":
		return func(t *data.Tuple) bool { return field(t) <= p.Value }
	case ">":
		return func(t *data.Tuple) bool { return field(t) > p.Value }
	case ">=":
		return func(t *data.Tuple) bool { return field(t) >= p.Value }
	}
	return func(*data.Tuple) bool { return true }
}

func (s *Session) execPredict(st *sqlparse.Predict) (*Result, error) {
	entry, ok := s.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("db: unknown table %q", st.Table)
	}
	m, ok := s.Model(st.Model)
	if !ok {
		return nil, fmt.Errorf("db: unknown model %q", st.Model)
	}
	var scan executor.Operator = executor.NewScan(shuffle.TableSource(entry.Table))
	if f := CompilePredicate(st.Where); f != nil {
		scan = executor.NewFilter(scan, f)
	}
	pred := executor.NewPredict(scan, m.Model, m.W)
	if err := pred.Init(); err != nil {
		return nil, err
	}
	defer pred.Close()

	res := &Result{Columns: []string{"id", "label", "prediction"}}
	correct, n := 0, 0
	for {
		p, ok, err := pred.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		n++
		if entry.Table.Task() != data.TaskRegression && (p.Pred >= 0) == (p.Label >= 0) &&
			(entry.Table.Task() != data.TaskMulticlass || p.Pred == p.Label) {
			correct++
		}
		if st.Limit == 0 || len(res.Rows) < st.Limit {
			res.Rows = append(res.Rows, []string{
				strconv.FormatInt(p.ID, 10),
				fmt.Sprintf("%g", p.Label),
				fmt.Sprintf("%g", p.Pred),
			})
		}
	}
	if entry.Table.Task() != data.TaskRegression && n > 0 {
		res.Message = fmt.Sprintf("PREDICT: %d rows, accuracy %.4f", n, float64(correct)/float64(n))
	} else {
		res.Message = fmt.Sprintf("PREDICT: %d rows", n)
	}
	return res, nil
}

// trainPlanConfig builds the executor plan configuration a TRAIN statement
// describes. Shared by execTrain (withEval=true: the evaluation set is the
// table decoded out-of-band, restricted to the WHERE predicate) and
// execExplain (withEval=false: only the plan shape matters, so the decode
// is skipped). opt overrides the session-level hooks per run and turns on
// the per-operator runtime profile.
func (s *Session) trainPlanConfig(st *sqlparse.Train, entry *TableEntry, withEval bool, opt TrainOptions) (executor.PlanConfig, error) {
	tab := entry.Table
	model, err := ml.New(st.ModelType, tab.Classes())
	if err != nil {
		return executor.PlanConfig{}, err
	}
	lr := st.Params.Num("learning_rate", 0.05)
	optimizer, err := ml.NewOptimizer(st.Params.Str("optimizer", "sgd"), lr)
	if err != nil {
		return executor.PlanConfig{}, err
	}
	if sgd, ok := optimizer.(*ml.SGD); ok {
		sgd.Decay = st.Params.Num("decay", 0.95)
	}
	seed := int64(st.Params.Num("seed", 1))
	resil, err := trainResilience(st.Params, seed)
	if err != nil {
		return executor.PlanConfig{}, err
	}
	reg, feed, runName := s.obs, s.feed, "train "+strings.ToLower(st.ModelName)
	if opt.Obs != nil {
		reg = opt.Obs
	}
	if opt.Feed != nil {
		feed = opt.Feed
	}
	if opt.RunName != "" {
		runName = opt.RunName
	}
	filter := CompilePredicate(st.Where)
	cfg := executor.PlanConfig{
		Shuffle:        shuffle.Kind(st.Params.Str("shuffle", string(shuffle.KindCorgiPile))),
		BufferFraction: st.Params.Num("buffer_fraction", 0.1),
		DoubleBuffer:   st.Params.Bool("double_buffer", true),
		Seed:           seed,
		Resilience:     resil,
		Filter:         filter,
		FilterDesc:     predicateDesc(st.Where),
		Profile:        opt.Profile,
		SGD: executor.SGDConfig{
			Model:     model,
			Opt:       optimizer,
			Features:  tab.Features(),
			Epochs:    int(st.Params.Num("max_epoch_num", 20)),
			BatchSize: int(st.Params.Num("batch_size", 1)),
			Procs:     int(st.Params.Num("procs", 1)),
			Clock:     s.clock,
			Obs:       reg,
			Feed:      feed,
			Diag:      s.diag,
			RunName:   runName,
			Ctx:       opt.Ctx,
			Events:    opt.Events,
			Trace:     opt.Trace,
		},
	}
	if withEval {
		eval, err := tab.DecodeAll()
		if err != nil {
			return executor.PlanConfig{}, err
		}
		if filter != nil {
			kept := eval[:0]
			for i := range eval {
				if filter(&eval[i]) {
					kept = append(kept, eval[i])
				}
			}
			eval = kept
		}
		cfg.SGD.Eval = &data.Dataset{
			Name: entry.Name, Task: tab.Task(),
			Features: tab.Features(), Classes: tab.Classes(), Tuples: eval,
		}
	}
	if mlp, ok := model.(ml.MLP); ok {
		feats := tab.Features()
		cfg.SGD.InitWeights = func(w []float64) {
			mlp.InitWeights(w, feats, rand.New(rand.NewSource(seed)))
		}
	}
	if fm, ok := model.(ml.FactorizationMachine); ok {
		feats := tab.Features()
		cfg.SGD.InitWeights = func(w []float64) {
			fm.InitWeights(w, feats, 0.01, rand.New(rand.NewSource(seed)))
		}
	}
	return cfg, nil
}

// predicateDesc renders a WHERE predicate for plan display.
func predicateDesc(p *sqlparse.Predicate) string {
	if p == nil {
		return ""
	}
	return fmt.Sprintf("%s %s %g", p.Column, p.Op, p.Value)
}

// execExplain renders the physical plan of a TRAIN query. Plain EXPLAIN
// prints the static plan shape; EXPLAIN ANALYZE executes the statement —
// storing the model exactly like TRAIN would — and annotates every node
// with its measured row counts, self/total times and I/O statistics.
// FORMAT JSON emits the same tree as an indented JSON document.
func (s *Session) execExplain(st *sqlparse.Explain) (*Result, error) {
	if st.Analyze {
		return s.execExplainAnalyze(st)
	}
	entry, ok := s.Table(st.Train.Table)
	if !ok {
		return nil, fmt.Errorf("db: unknown table %q", st.Train.Table)
	}
	cfg, err := s.trainPlanConfig(st.Train, entry, false, TrainOptions{})
	if err != nil {
		return nil, err
	}
	shape := executor.PlanShape(shuffle.TableSource(entry.Table), cfg)
	if st.Format == "json" {
		out, err := shape.JSON()
		if err != nil {
			return nil, err
		}
		return planResult(string(out), nil), nil
	}
	return planResult(shape.Text(false), nil), nil
}

// execExplainAnalyze runs the wrapped TRAIN with profiling enabled and
// renders the annotated plan.
func (s *Session) execExplainAnalyze(st *sqlparse.Explain) (*Result, error) {
	pt, _, modelName, err := s.runTrain(st.Train, true)
	if err != nil {
		return nil, err
	}
	op := pt.op
	plan := op.Plan()
	var text string
	if st.Format == "json" {
		out, err := plan.JSON()
		if err != nil {
			return nil, err
		}
		text = string(out)
	} else {
		text = plan.Text(true)
	}
	res := planResult(text, plan)
	res.Message = trainMessage("EXPLAIN ANALYZE", modelName, op)
	res.Breakdown = op.Breakdown
	return res, nil
}

// planResult wraps rendered plan text (one row per line) in a Result.
func planResult(text string, plan *obs.PlanStats) *Result {
	res := &Result{Columns: []string{"physical plan"}, Plan: plan}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		res.Rows = append(res.Rows, []string{line})
	}
	return res
}

// execAnalyze estimates the table's cluster factor h_D and gradient
// variance at the named model's initial weights, and recommends a buffer
// size from the Theorem 1 bound.
func (s *Session) execAnalyze(st *sqlparse.Analyze) (*Result, error) {
	entry, ok := s.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("db: unknown table %q", st.Table)
	}
	tab := entry.Table
	model, err := ml.New(st.Params.Str("model", "svm"), tab.Classes())
	if err != nil {
		return nil, err
	}
	tuples, err := tab.DecodeAll()
	if err != nil {
		return nil, err
	}
	ds := &data.Dataset{
		Name: entry.Name, Task: tab.Task(),
		Features: tab.Features(), Classes: tab.Classes(), Tuples: tuples,
	}
	blockTuples := tab.NumTuples() / tab.NumBlocks()
	if blockTuples < 1 {
		blockTuples = 1
	}
	w := make([]float64, model.Dim(tab.Features()))
	hd := core.HDFactor(model, w, ds, blockTuples)

	epochs := int(st.Params.Num("max_epoch_num", 20))
	params := core.BoundParams{
		N: tab.NumBlocks(), B: blockTuples, M: tab.NumTuples(),
		HD: hd, Sigma2: 1, // σ² scales both bounds identically; h_D carries the order information
		T: epochs * tab.NumTuples(),
	}
	nbuf, bound, full := core.RecommendBuffer(params, st.Params.Num("tolerance", 1.10))
	frac := float64(nbuf) / float64(tab.NumBlocks())

	res := &Result{Columns: []string{"metric", "value"}}
	add := func(k, v string) { res.Rows = append(res.Rows, []string{k, v}) }
	add("tuples", strconv.Itoa(tab.NumTuples()))
	add("blocks (N)", strconv.Itoa(tab.NumBlocks()))
	add("tuples per block (b)", strconv.Itoa(blockTuples))
	add("cluster factor h_D", fmt.Sprintf("%.2f (1 = shuffled, %d = fully clustered)", hd, blockTuples))
	add("recommended buffer", fmt.Sprintf("%d blocks (%.1f%% of table)", nbuf, frac*100))
	add("theorem-1 bound at recommendation", fmt.Sprintf("%.3g", bound))
	add("theorem-1 bound at full buffer", fmt.Sprintf("%.3g", full))
	res.Message = fmt.Sprintf("ANALYZE: buffer_fraction=%.3f recommended", frac)
	return res, nil
}

func (s *Session) execShow(st *sqlparse.Show) (*Result, error) {
	res := &Result{}
	switch st.What {
	case "tables":
		res.Columns = []string{"table", "tuples", "blocks", "bytes", "device"}
		names := sortedKeys(s.tables)
		for _, name := range names {
			t := s.tables[name]
			res.Rows = append(res.Rows, []string{
				name,
				strconv.Itoa(t.Table.NumTuples()),
				strconv.Itoa(t.Table.NumBlocks()),
				strconv.FormatInt(t.Table.SizeBytes(), 10),
				t.Device,
			})
		}
	case "models":
		res.Columns = []string{"model", "kind", "features", "epochs", "final_accuracy"}
		names := sortedKeys(s.models)
		for _, name := range names {
			m := s.models[name]
			acc := ""
			if len(m.Epochs) > 0 {
				acc = fmt.Sprintf("%.4f", m.Epochs[len(m.Epochs)-1].Accuracy)
			}
			res.Rows = append(res.Rows, []string{
				name, m.Kind, strconv.Itoa(m.Features), strconv.Itoa(len(m.Epochs)), acc,
			})
		}
	}
	return res, nil
}

func (s *Session) execDrop(st *sqlparse.Drop) (*Result, error) {
	name := strings.ToLower(st.Name)
	switch st.What {
	case "table":
		if _, ok := s.tables[name]; !ok {
			return nil, fmt.Errorf("db: unknown table %q", st.Name)
		}
		if err := s.logDrop(storage.WALDropTable, name); err != nil {
			return nil, err
		}
		delete(s.tables, name)
		return &Result{Message: "DROP TABLE"}, nil
	case "model":
		if _, ok := s.models[name]; !ok {
			return nil, fmt.Errorf("db: unknown model %q", st.Name)
		}
		if err := s.logDrop(storage.WALDropModel, name); err != nil {
			return nil, err
		}
		delete(s.models, name)
		return &Result{Message: "DROP MODEL"}, nil
	}
	return nil, fmt.Errorf("db: unsupported DROP %q", st.What)
}

func parseOrder(s string) (data.Order, error) {
	switch strings.ToLower(s) {
	case "clustered":
		return data.OrderClustered, nil
	case "shuffled":
		return data.OrderShuffled, nil
	case "feature", "feature_ordered", "feature-ordered":
		return data.OrderFeature, nil
	}
	return 0, fmt.Errorf("db: unknown order %q (clustered, shuffled, feature)", s)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
