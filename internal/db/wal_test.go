package db

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"corgipile/internal/storage"
)

// newDurableSession opens a WAL-backed session over dir.
func newDurableSession(t *testing.T, dir string) (*Session, RecoveryStats) {
	t.Helper()
	s := NewSession()
	stats, err := s.OpenWAL(dir)
	if err != nil {
		t.Fatalf("OpenWAL(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s, stats
}

const walTestCreate = `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.02, order='clustered') WITH device='ram', block_size=16KB`

// insertSQL builds an INSERT of n rows matching the table's feature count.
func insertSQL(t *testing.T, s *Session, table string, n int) string {
	t.Helper()
	e, ok := s.Table(table)
	if !ok {
		t.Fatalf("unknown table %q", table)
	}
	rows := make([]string, n)
	for i := 0; i < n; i++ {
		vals := make([]string, e.Table.Features()+1)
		vals[0] = fmt.Sprintf("%d", 1-2*(i%2))
		for f := 1; f < len(vals); f++ {
			vals[f] = fmt.Sprintf("%d", (i+f)%11)
		}
		rows[i] = "(" + strings.Join(vals, ", ") + ")"
	}
	return fmt.Sprintf("INSERT INTO %s VALUES %s", table, strings.Join(rows, ", "))
}

// lossTrace trains a throwaway model and returns the per-epoch loss column.
func lossTrace(t *testing.T, s *Session, model string) []string {
	t.Helper()
	res, err := s.Exec(fmt.Sprintf(
		`SELECT * FROM t TRAIN BY svm MODEL %s WITH max_epoch_num=3, seed=7, shuffle='corgipile'`, model))
	if err != nil {
		t.Fatal(err)
	}
	var losses []string
	for _, row := range res.Rows {
		losses = append(losses, row[1])
	}
	return losses
}

// A WAL-backed session's catalog must survive close + reopen bit-for-bit:
// same tables, same blocks, same model weights, and a subsequent same-seed
// TRAIN must produce the identical loss trace.
func TestWALRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a, stats := newDurableSession(t, dir)
	if stats.Tables != 0 || stats.Models != 0 {
		t.Fatalf("fresh dir recovered %v", stats)
	}
	mustExec(t, a, walTestCreate)
	mustExec(t, a, insertSQL(t, a, "t", 3))
	mustExec(t, a, `SELECT * FROM t TRAIN BY svm MODEL m1 WITH max_epoch_num=2, seed=7`)
	wantLoss := lossTrace(t, a, "probe_a")
	at, _ := a.Table("t")
	wantTuples, wantBlocks := at.Table.NumTuples(), at.Table.NumBlocks()
	am, _ := a.Model("m1")
	a.Close()

	b, stats := newDurableSession(t, dir)
	if stats.Tables != 1 || stats.Models != 2 {
		t.Fatalf("recovered %v, want 1 table + 2 models", stats)
	}
	bt, ok := b.Table("t")
	if !ok {
		t.Fatal("table t lost")
	}
	if bt.Table.NumTuples() != wantTuples || bt.Table.NumBlocks() != wantBlocks {
		t.Fatalf("recovered %d tuples / %d blocks, want %d / %d",
			bt.Table.NumTuples(), bt.Table.NumBlocks(), wantTuples, wantBlocks)
	}
	// The recovered heap must decode to the same tuples, including the
	// inserted row.
	got, err := bt.Table.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	want, err := at.Table.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d tuples, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Label != want[i].Label {
			t.Fatalf("tuple %d diverged: %+v vs %+v", i, got[i], want[i])
		}
	}
	bm, ok := b.Model("m1")
	if !ok {
		t.Fatal("model m1 lost")
	}
	if bm.Kind != am.Kind || bm.Table != "t" || bm.TrainedBlocks != am.TrainedBlocks {
		t.Fatalf("model metadata diverged: %+v vs %+v", bm, am)
	}
	if len(bm.W) != len(am.W) {
		t.Fatalf("weights length %d, want %d", len(bm.W), len(am.W))
	}
	for i := range bm.W {
		if bm.W[i] != am.W[i] {
			t.Fatalf("weight %d diverged: %v vs %v", i, bm.W[i], am.W[i])
		}
	}
	if got := lossTrace(t, b, "probe_b"); !equalStrings(got, wantLoss) {
		t.Fatalf("post-recovery loss trace %v, want %v", got, wantLoss)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CHECKPOINT must compact the catalog, truncate the live log, and leave
// recovery indistinguishable — including mutations appended after it.
func TestCheckpointCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	a, _ := newDurableSession(t, dir)
	mustExec(t, a, walTestCreate)
	mustExec(t, a, `SELECT * FROM t TRAIN BY lr MODEL m1 WITH max_epoch_num=2`)
	before, err := os.Stat(WALPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, a, `CHECKPOINT`)
	if !strings.Contains(res.Message, "CHECKPOINT") {
		t.Fatalf("message = %q", res.Message)
	}
	after, err := os.Stat(WALPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() || after.Size() != 0 {
		t.Fatalf("wal.log %d bytes after checkpoint (was %d), want 0", after.Size(), before.Size())
	}
	if _, err := os.Stat(CheckpointPath(dir)); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint mutations land in the fresh log and must replay on
	// top of the checkpoint image.
	mustExec(t, a, insertSQL(t, a, "t", 5))
	mustExec(t, a, `DROP MODEL m1`)
	tuples := func(s *Session) int {
		e, ok := s.Table("t")
		if !ok {
			t.Fatal("table t missing")
		}
		return e.Table.NumTuples()
	}
	want := tuples(a)
	a.Close()

	b, stats := newDurableSession(t, dir)
	if stats.CheckpointRecords == 0 || stats.LogRecords == 0 {
		t.Fatalf("expected both checkpoint and log records, got %v", stats)
	}
	if got := tuples(b); got != want {
		t.Fatalf("recovered %d tuples, want %d", got, want)
	}
	if _, ok := b.Model("m1"); ok {
		t.Fatal("dropped model m1 resurrected by recovery")
	}
}

func TestCheckpointRequiresWAL(t *testing.T) {
	s := NewSession()
	if _, err := s.Exec(`CHECKPOINT`); err == nil {
		t.Fatal("CHECKPOINT without WAL should fail")
	}
}

// A torn checkpoint.tmp (crash mid-checkpoint, before the atomic rename)
// must be discarded; recovery uses the old checkpoint + full log.
func TestRecoveryDiscardsTornCheckpointTmp(t *testing.T) {
	dir := t.TempDir()
	a, _ := newDurableSession(t, dir)
	mustExec(t, a, walTestCreate)
	a.Close()
	if err := os.WriteFile(filepath.Join(dir, "checkpoint.tmp"), []byte("torn garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, stats := newDurableSession(t, dir)
	if stats.Tables != 1 {
		t.Fatalf("recovered %v, want 1 table", stats)
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.tmp")); !os.IsNotExist(err) {
		t.Fatal("checkpoint.tmp not removed")
	}
	_ = b
}

// A corrupt committed checkpoint is a hard error — recovery must refuse to
// serve a catalog it cannot trust, not silently skip it.
func TestRecoveryRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	a, _ := newDurableSession(t, dir)
	mustExec(t, a, walTestCreate)
	mustExec(t, a, `CHECKPOINT`)
	a.Close()
	buf, err := os.ReadFile(CheckpointPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xFF
	if err := os.WriteFile(CheckpointPath(dir), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewSession()
	if _, err := s.OpenWAL(dir); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

// A torn live-log tail (crash mid-append) must be truncated, keeping the
// valid prefix.
func TestRecoveryTruncatesTornLogTail(t *testing.T) {
	dir := t.TempDir()
	a, _ := newDurableSession(t, dir)
	mustExec(t, a, walTestCreate)
	a.Close()
	f, err := os.OpenFile(WALPath(dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	b, stats := newDurableSession(t, dir)
	if stats.Tables != 1 {
		t.Fatalf("recovered %v, want 1 table", stats)
	}
	// The truncated log must accept further mutations and replay cleanly.
	mustExec(t, b, insertSQL(t, b, "t", 1))
	b.Close()
	if _, stats := newDurableSession(t, dir); stats.Tables != 1 {
		t.Fatalf("second recovery %v", stats)
	}
}

// INSERT and LOAD INTO validate their input against the table schema.
func TestInsertValidation(t *testing.T) {
	s := NewSession()
	mustExec(t, s, walTestCreate)
	if _, err := s.Exec(`INSERT INTO nope VALUES (1, 2)`); err == nil {
		t.Fatal("INSERT into unknown table accepted")
	}
	if _, err := s.Exec(`INSERT INTO t VALUES (1, 2)`); err == nil {
		t.Fatal("INSERT with wrong feature count accepted")
	}
	e, _ := s.Table("t")
	base := e.Table.NumTuples()
	res := mustExec(t, s, insertSQL(t, s, "t", 2))
	if !strings.Contains(res.Message, "2 tuples") {
		t.Fatalf("message = %q", res.Message)
	}
	if e.Table.NumTuples() != base+2 {
		t.Fatalf("tuples = %d, want %d", e.Table.NumTuples(), base+2)
	}
	all, err := e.Table.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	last := all[len(all)-1]
	if last.ID != int64(base+1) || last.Label != -1 { // rows alternate +1/-1; row 2 is -1
		t.Fatalf("appended tuple = %+v", last)
	}
}

func TestLoadIntoTable(t *testing.T) {
	s := NewSession()
	mustExec(t, s, walTestCreate)
	e, _ := s.Table("t")
	base := e.Table.NumTuples()
	path := filepath.Join(t.TempDir(), "extra.libsvm")
	if err := os.WriteFile(path, []byte("1 1:0.5 3:1.5\n-1 2:2.5 8:0.25\n1 1:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, s, fmt.Sprintf(`LOAD INTO t FROM '%s'`, path))
	if !strings.Contains(res.Message, "3 tuples") {
		t.Fatalf("message = %q", res.Message)
	}
	if e.Table.NumTuples() != base+3 {
		t.Fatalf("tuples = %d, want %d", e.Table.NumTuples(), base+3)
	}
	if _, err := s.Exec(`LOAD INTO nope FROM '` + path + `'`); err == nil {
		t.Fatal("LOAD INTO unknown table accepted")
	}
	bad := filepath.Join(t.TempDir(), "wide.libsvm")
	if err := os.WriteFile(bad, []byte("1 99:0.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(fmt.Sprintf(`LOAD INTO t FROM '%s'`, bad)); err == nil {
		t.Fatal("LOAD with out-of-range feature index accepted")
	}
}

// Incremental training: resume folds only the newly appended blocks into
// the run, starts from the stored weights, and advances the frontier.
func TestTrainResume(t *testing.T) {
	s := NewSession()
	mustExec(t, s, walTestCreate)
	mustExec(t, s, `SELECT * FROM t TRAIN BY svm MODEL m1 WITH max_epoch_num=2, seed=3`)
	m1, _ := s.Model("m1")
	e, _ := s.Table("t")
	if m1.Table != "t" || m1.TrainedBlocks != e.Table.NumBlocks() {
		t.Fatalf("m1 frontier = %q/%d, want t/%d", m1.Table, m1.TrainedBlocks, e.Table.NumBlocks())
	}

	// No new blocks yet: resume must refuse.
	if _, err := s.Exec(`SELECT * FROM t TRAIN BY svm MODEL m2 WITH resume='m1', max_epoch_num=1`); err == nil {
		t.Fatal("resume with no new blocks accepted")
	}

	// Append enough tuples to create new blocks.
	before := e.Table.NumBlocks()
	mustExec(t, s, insertSQL(t, s, "t", 400))
	after := e.Table.NumBlocks()
	if after <= before {
		t.Fatalf("insert added no blocks (%d → %d); grow the batch", before, after)
	}

	res := mustExec(t, s, `SELECT * FROM t TRAIN BY svm MODEL m2 WITH resume='m1', max_epoch_num=2, seed=3`)
	if !strings.Contains(res.Message, fmt.Sprintf("resumed from \"m1\" (+%d blocks)", after-before)) {
		t.Fatalf("message = %q", res.Message)
	}
	m2, _ := s.Model("m2")
	if m2.TrainedBlocks != after {
		t.Fatalf("m2 frontier = %d, want %d", m2.TrainedBlocks, after)
	}
	// The resumed run scanned only the appended blocks.
	newTuples := 0
	for i := before; i < after; i++ {
		newTuples += e.Table.BlockTuples(i)
	}
	if got := m2.Epochs[0].Tuples; got != newTuples {
		t.Fatalf("resumed epoch saw %d tuples, want %d (new blocks only)", got, newTuples)
	}

	// Validation: wrong kind, wrong table, unknown model, full-shuffle kind.
	for _, bad := range []string{
		`SELECT * FROM t TRAIN BY lr MODEL x WITH resume='m1'`,
		`SELECT * FROM t TRAIN BY svm MODEL x WITH resume='nope'`,
		`SELECT * FROM t TRAIN BY svm MODEL x WITH resume='m1', shuffle='shuffle_once'`,
	} {
		if _, err := s.Exec(bad); err == nil {
			t.Fatalf("accepted: %s", bad)
		}
	}
	mustExec(t, s, `CREATE TABLE u AS SYNTHETIC(workload='susy', scale=0.02) WITH device='ram', block_size=16KB`)
	if _, err := s.Exec(`SELECT * FROM u TRAIN BY svm MODEL x WITH resume='m1'`); err == nil {
		t.Fatal("resume against the wrong table accepted")
	}
}

// Two identical resumed runs — same catalog, same seed, same frozen block
// range — must produce bit-identical weights.
func TestTrainResumeDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, _ := newDurableSession(t, dir)
	mustExec(t, a, walTestCreate)
	mustExec(t, a, `SELECT * FROM t TRAIN BY svm MODEL m1 WITH max_epoch_num=2, seed=3`)
	mustExec(t, a, insertSQL(t, a, "t", 400))
	a.Close()

	weights := func() []float64 {
		s := NewSession()
		if _, err := s.OpenWAL(dir); err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		// Recovery replays the log in place; resume from the recovered
		// catalog. The WAL grows a record for m2 but the block range and
		// weights derive only from recovered state, so runs are identical.
		mustExec(t, s, `SELECT * FROM t TRAIN BY svm MODEL m2 WITH resume='m1', max_epoch_num=2, seed=9, shuffle='corgipile'`)
		m, _ := s.Model("m2")
		return m.W
	}
	w1 := weights()
	// Drop the m2 the first run logged so the second recovery starts from
	// the same catalog.
	{
		s := NewSession()
		if _, err := s.OpenWAL(dir); err != nil {
			t.Fatal(err)
		}
		mustExec(t, s, `DROP MODEL m2`)
		s.Close()
	}
	w2 := weights()
	if len(w1) != len(w2) {
		t.Fatalf("weight lengths diverged: %d vs %d", len(w1), len(w2))
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("resumed runs diverged at weight %d: %v vs %v", i, w1[i], w2[i])
		}
	}
}

// Double-attach and replay of unknown record types must fail loudly.
func TestOpenWALErrors(t *testing.T) {
	dir := t.TempDir()
	s, _ := newDurableSession(t, dir)
	if _, err := s.OpenWAL(dir); err == nil {
		t.Fatal("second OpenWAL accepted")
	}
	s.Close()

	// An unknown record type in the log is a replay error.
	w, _, err := storage.OpenWAL(WALPath(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	dir2 := filepath.Dir(w.Path())
	if _, err := w.Append(storage.WALRecordType(99), []byte("???")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	fresh := NewSession()
	if _, err := fresh.OpenWAL(dir2); err == nil {
		t.Fatal("unknown record type accepted")
	}
}
