package db

import (
	"errors"
	"testing"

	"corgipile/internal/storage"
)

// Satellite: injected write-path faults must surface as SQL statement
// errors — never an acknowledged statement whose records aren't durable —
// and the directory must recover to the pre-statement state.

// TestInsertFailsOnInjectedENOSPC: a device-full error mid-INSERT fails
// the statement, rolls the in-memory table back, and recovery agrees.
func TestInsertFailsOnInjectedENOSPC(t *testing.T) {
	dir := t.TempDir()
	s := NewSession()
	plan := &storage.WriteFaults{}
	if _, err := s.OpenWALOptions(dir, WALOptions{WrapSyncer: plan.Wrap}); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustExec(t, s, walTestCreate)
	mustExec(t, s, insertSQL(t, s, "t", 20))
	entry, _ := s.Table("t")
	preTuples := entry.Table.NumTuples()
	preBlocks := entry.Table.NumBlocks()

	// Everything logged so far fits; the next INSERT's record won't.
	plan.FailAfterBytes = plan.Writes() + 64
	if _, err := s.Exec(insertSQL(t, s, "t", 20)); !errors.Is(err, storage.ErrNoSpace) {
		t.Fatalf("INSERT on full device: got %v, want ErrNoSpace", err)
	}
	if entry.Table.NumTuples() != preTuples || entry.Table.NumBlocks() != preBlocks {
		t.Fatalf("failed INSERT left %d tuples / %d blocks in memory, want %d / %d",
			entry.Table.NumTuples(), entry.Table.NumBlocks(), preTuples, preBlocks)
	}

	// The log must still be replayable to exactly the acknowledged state.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, stats := newDurableSession(t, dir)
	if stats.Tables != 1 {
		t.Fatalf("recovery: %v", stats)
	}
	reEntry, _ := re.Table("t")
	if reEntry.Table.NumTuples() != preTuples {
		t.Fatalf("recovered %d tuples, want %d", reEntry.Table.NumTuples(), preTuples)
	}
}

// TestInsertFailsOnInjectedSyncError: an fsync failure fails the statement
// and poisons the log — later statements fail too instead of pretending to
// be durable — while the already-synced prefix recovers intact.
func TestInsertFailsOnInjectedSyncError(t *testing.T) {
	dir := t.TempDir()
	s := NewSession()
	plan := &storage.WriteFaults{}
	if _, err := s.OpenWALOptions(dir, WALOptions{WrapSyncer: plan.Wrap}); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustExec(t, s, walTestCreate)
	mustExec(t, s, insertSQL(t, s, "t", 20))
	entry, _ := s.Table("t")
	preTuples := entry.Table.NumTuples()

	plan.SyncFailAt = 3 // CREATE synced once, INSERT once; the next statement's sync fails
	if _, err := s.Exec(insertSQL(t, s, "t", 10)); !errors.Is(err, storage.ErrSyncFailed) {
		t.Fatalf("INSERT with failing fsync: got %v, want ErrSyncFailed", err)
	}
	if entry.Table.NumTuples() != preTuples {
		t.Fatalf("failed INSERT left tuples in memory: %d, want %d", entry.Table.NumTuples(), preTuples)
	}
	if _, err := s.Exec(insertSQL(t, s, "t", 1)); !errors.Is(err, storage.ErrSyncFailed) {
		t.Fatalf("statement after poisoned log: got %v, want wrapped ErrSyncFailed", err)
	}

	s.Close()
	// The failed statement's records reached the page cache before the
	// fsync was failed, so recovery replays them — real fsync semantics:
	// a failed statement's durability is unknown, and recovery may
	// legitimately include it. What recovery must never do is lose an
	// acknowledged statement or stop at a torn frame.
	re, _ := newDurableSession(t, dir)
	reEntry, ok := re.Table("t")
	if !ok {
		t.Fatal("table lost")
	}
	if got := reEntry.Table.NumTuples(); got != preTuples && got != preTuples+10 {
		t.Fatalf("recovered %d tuples, want %d (acknowledged) or %d (failed statement replayed)",
			got, preTuples, preTuples+10)
	}
}
