package db

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"corgipile/internal/obs"
	"corgipile/internal/sqlparse"
)

// selectQuery runs one SELECT through the full parse+exec path.
func selectQuery(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestSelectSystemTables(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.05, order='clustered') WITH device='ssd', block_size=64KB`)
	mustExec(t, s, `SELECT * FROM t TRAIN BY svm MODEL m1 WITH max_epoch_num=2`)

	res := selectQuery(t, s, `SELECT name, device FROM corgi_tables`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "t" || res.Rows[0][1] != "ssd" {
		t.Fatalf("corgi_tables rows = %v", res.Rows)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "name" {
		t.Fatalf("projection columns = %v", res.Columns)
	}

	res = selectQuery(t, s, `SELECT * FROM corgi_models WHERE name = 'm1'`)
	if len(res.Rows) != 1 {
		t.Fatalf("corgi_models rows = %v", res.Rows)
	}
	row := res.Rows[0]
	if row[1] != "svm" || row[2] != "t" || row[5] != "2" {
		t.Fatalf("corgi_models m1 = %v, want kind=svm table=t epochs=2", row)
	}

	// In-memory session: corgi_wal renders the not-durable row, never errors.
	res = selectQuery(t, s, `SELECT durable, last_lsn FROM corgi_wal`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "false" || res.Rows[0][1] != "0" {
		t.Fatalf("corgi_wal rows = %v, want [[false 0]]", res.Rows)
	}

	// No metrics registry, no event log, no history store: zero rows, not
	// an error.
	for _, table := range []string{"corgi_metrics", "corgi_events", "corgi_spans",
		"corgi_metrics_history", "corgi_alerts"} {
		res = selectQuery(t, s, "SELECT * FROM "+table)
		if len(res.Rows) != 0 {
			t.Fatalf("%s on a bare session = %v, want no rows", table, res.Rows)
		}
	}
}

func TestSelectCorgiMetrics(t *testing.T) {
	s := NewSession()
	reg := obs.New()
	s.WithMetrics(reg)
	reg.Add("test.counter", 3)
	reg.SetGauge("test.gauge", 1.5)

	res := selectQuery(t, s, `SELECT name, kind, value FROM corgi_metrics WHERE name = 'test.counter'`)
	if len(res.Rows) != 1 || res.Rows[0][1] != "counter" || res.Rows[0][2] != "3" {
		t.Fatalf("corgi_metrics counter row = %v", res.Rows)
	}
	res = selectQuery(t, s, `SELECT value FROM corgi_metrics WHERE kind = 'gauge' AND name = 'test.gauge'`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "1.5" {
		t.Fatalf("corgi_metrics gauge row = %v", res.Rows)
	}
}

func TestSelectMetricsHistory(t *testing.T) {
	s := NewSession()
	reg := obs.New()
	s.WithMetrics(reg)
	hist := obs.NewHistory(obs.HistoryConfig{Interval: time.Second})
	s.WithHistory(hist)
	reg.SetGauge("test.gauge", 1.5)
	// Ten samples fill ten raw slots and promote one mean into the 10×
	// tier, so the table shows the same series at two resolutions.
	for i := 0; i < 10; i++ {
		hist.Sample(reg)
	}

	res := selectQuery(t, s, `SELECT name, ts, value, resolution FROM corgi_metrics_history WHERE name = 'test.gauge'`)
	byRes := map[string]int{}
	for _, row := range res.Rows {
		if row[2] != "1.5" {
			t.Fatalf("corgi_metrics_history value = %q, want 1.5 (row %v)", row[2], row)
		}
		if ts, err := strconv.ParseInt(row[1], 10, 64); err != nil || ts <= 0 {
			t.Fatalf("corgi_metrics_history ts = %q, want a positive unix-ms stamp", row[1])
		}
		byRes[row[3]]++
	}
	if byRes["1s"] != 10 || byRes["10s"] != 1 {
		t.Fatalf("rows per resolution = %v, want 10 at 1s and 1 at 10s", byRes)
	}
}

func TestSelectCorgiAlerts(t *testing.T) {
	s := NewSession()
	reg := obs.New()
	hist := obs.NewHistory(obs.HistoryConfig{Interval: time.Second})
	s.WithHistory(hist)
	rule, err := obs.ParseAlertRule("test.gauge>1")
	if err != nil {
		t.Fatal(err)
	}
	hist.AddRule(rule)

	// Gauge above the threshold with no `for` clause: firing on the first
	// sample.
	reg.SetGauge("test.gauge", 1.5)
	hist.Sample(reg)
	res := selectQuery(t, s, `SELECT name, metric, op, threshold, state, value, fired FROM corgi_alerts`)
	if len(res.Rows) != 1 {
		t.Fatalf("corgi_alerts rows = %v, want one rule", res.Rows)
	}
	row := res.Rows[0]
	if row[0] != "test.gauge>1" || row[1] != "test.gauge" || row[2] != ">" || row[3] != "1" {
		t.Fatalf("corgi_alerts identity columns = %v", row)
	}
	if row[4] != "firing" || row[5] != "1.5" || row[6] != "1" {
		t.Fatalf("corgi_alerts state = %v, want firing value=1.5 fired=1", row)
	}

	// Back under the threshold: the same row resolves to ok, fired count
	// sticks.
	reg.SetGauge("test.gauge", 0.5)
	hist.Sample(reg)
	res = selectQuery(t, s, `SELECT state, fired FROM corgi_alerts`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "ok" || res.Rows[0][1] != "1" {
		t.Fatalf("corgi_alerts after resolve = %v, want [[ok 1]]", res.Rows)
	}
}

func TestSelectEval(t *testing.T) {
	s := NewSession()
	s.RegisterVirtual(VirtualTable{
		Name:    "fixture",
		Columns: []string{"id", "name", "score"},
		Rows: func() [][]string {
			return [][]string{
				{"1", "alpha", "10"},
				{"2", "beta", "2"},
				{"3", "gamma", "30"},
				{"4", "delta", "2"},
			}
		},
	})

	// WHERE with numeric comparison.
	res := selectQuery(t, s, `SELECT name FROM fixture WHERE score > 5`)
	if len(res.Rows) != 2 || res.Rows[0][0] != "alpha" || res.Rows[1][0] != "gamma" {
		t.Fatalf("WHERE score > 5 = %v", res.Rows)
	}

	// Conjunctive WHERE.
	res = selectQuery(t, s, `SELECT id FROM fixture WHERE score = 2 AND name != 'beta'`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "4" {
		t.Fatalf("conjunctive WHERE = %v", res.Rows)
	}

	// ORDER BY numeric DESC with LIMIT: ties broken stably.
	res = selectQuery(t, s, `SELECT name, score FROM fixture ORDER BY score DESC LIMIT 2`)
	if len(res.Rows) != 2 || res.Rows[0][0] != "gamma" || res.Rows[1][0] != "alpha" {
		t.Fatalf("ORDER BY score DESC LIMIT 2 = %v", res.Rows)
	}

	// ORDER BY lexicographic.
	res = selectQuery(t, s, `SELECT name FROM fixture ORDER BY name`)
	if res.Rows[0][0] != "alpha" || res.Rows[3][0] != "gamma" {
		t.Fatalf("ORDER BY name = %v", res.Rows)
	}

	// SELECT * preserves the declared column order.
	res = selectQuery(t, s, `SELECT * FROM fixture LIMIT 1`)
	if strings.Join(res.Columns, ",") != "id,name,score" {
		t.Fatalf("SELECT * columns = %v", res.Columns)
	}

	// Virtual-table names are case-insensitive.
	if _, err := s.Exec(`SELECT * FROM FIXTURE`); err != nil {
		t.Fatalf("case-insensitive resolution: %v", err)
	}
}

func TestSelectBaseTable(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.01) WITH device='ram'`)

	res := selectQuery(t, s, `SELECT id, label FROM t LIMIT 3`)
	if len(res.Rows) != 3 {
		t.Fatalf("LIMIT 3 returned %d rows", len(res.Rows))
	}
	for i, row := range res.Rows {
		if _, err := strconv.ParseInt(row[0], 10, 64); err != nil {
			t.Fatalf("row %d id %q not an integer", i, row[0])
		}
	}
	// f0 column exists on the materialized relation.
	if _, err := s.Exec(`SELECT f0 FROM t LIMIT 1`); err != nil {
		t.Fatalf("feature column projection: %v", err)
	}
}

func TestSelectErrors(t *testing.T) {
	s := NewSession()
	if _, err := s.Exec(`SELECT * FROM nope`); err == nil ||
		!strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("unknown table error = %v", err)
	}
	s.RegisterVirtual(VirtualTable{Name: "v", Columns: []string{"a"}, Rows: func() [][]string { return nil }})
	if _, err := s.Exec(`SELECT b FROM v`); err == nil ||
		!strings.Contains(err.Error(), "no column") {
		t.Fatalf("unknown projected column error = %v", err)
	}
	if _, err := s.Exec(`SELECT a FROM v WHERE b = 1`); err == nil {
		t.Fatal("unknown WHERE column should error")
	}
	if _, err := s.Exec(`SELECT a FROM v ORDER BY b`); err == nil {
		t.Fatal("unknown ORDER BY column should error")
	}
}

// TestStatementEvents pins the db-layer statement event contract: with an
// event log attached every statement emits start/finish (finish carrying
// duration and, on failure, the error), a slow statement gets a companion
// event past the armed threshold, and the trace ID from ExecStatementT
// stamps all of them — queryable back through corgi_events.
func TestStatementEvents(t *testing.T) {
	s := NewSession()
	el := obs.NewEventLog(64)
	s.WithEvents(el)

	mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.01) WITH device='ram'`)
	st, err := sqlparse.Parse(`SELECT * FROM corgi_tables`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecStatementT(st, "req-42"); err != nil {
		t.Fatal(err)
	}

	evs := el.Events()
	var starts, finishes []obs.Event
	for _, ev := range evs {
		switch ev.Type {
		case obs.EvStatementStart:
			starts = append(starts, ev)
		case obs.EvStatementFinish:
			finishes = append(finishes, ev)
		}
	}
	if len(starts) != 2 || len(finishes) != 2 {
		t.Fatalf("got %d starts / %d finishes, want 2/2 (events: %+v)", len(starts), len(finishes), evs)
	}
	if starts[0].Detail != "create_table t" || starts[1].Detail != "select corgi_tables" {
		t.Fatalf("statement kinds = %q, %q", starts[0].Detail, starts[1].Detail)
	}
	if starts[1].Trace != "req-42" || finishes[1].Trace != "req-42" {
		t.Fatalf("trace not threaded: start=%q finish=%q", starts[1].Trace, finishes[1].Trace)
	}
	if starts[0].Trace != "" {
		t.Fatalf("untraced statement carries trace %q", starts[0].Trace)
	}
	if finishes[1].DurMs < 0 || finishes[1].Err != "" {
		t.Fatalf("finish event = %+v, want duration and no error", finishes[1])
	}

	// A failing statement records the error on the finish event.
	bad, err := sqlparse.Parse(`SELECT * FROM missing`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecStatementT(bad, "req-43"); err == nil {
		t.Fatal("expected unknown-table error")
	}
	evs = el.Events()
	last := evs[len(evs)-1]
	if last.Type != obs.EvStatementFinish || last.Err == "" || last.Trace != "req-43" {
		t.Fatalf("failure finish event = %+v", last)
	}

	// Slow-statement companion event with an always-firing threshold.
	el.SetSlowThreshold(time.Nanosecond)
	if _, err := s.ExecStatementT(st, "req-44"); err != nil {
		t.Fatal(err)
	}
	evs = el.Events()
	if evs[len(evs)-1].Type != obs.EvStatementSlow {
		t.Fatalf("last event = %+v, want %s", evs[len(evs)-1], obs.EvStatementSlow)
	}

	// The same events are queryable through corgi_events by trace.
	res := selectQuery(t, s, `SELECT type, trace_id FROM corgi_events WHERE trace_id = 'req-42'`)
	if len(res.Rows) != 2 {
		t.Fatalf("corgi_events for req-42 = %v, want start+finish", res.Rows)
	}
}

// TestSelectDoesNotAliasProvider pins that a SELECT result is detached
// from the provider's backing array: filtering is in-place over a copy,
// so two queries against the same virtual table don't corrupt each other.
func TestSelectDoesNotAliasProvider(t *testing.T) {
	s := NewSession()
	backing := [][]string{{"1"}, {"2"}, {"3"}}
	s.RegisterVirtual(VirtualTable{
		Name:    "v",
		Columns: []string{"n"},
		Rows: func() [][]string {
			out := make([][]string, len(backing))
			copy(out, backing)
			return out
		},
	})
	first := selectQuery(t, s, `SELECT n FROM v WHERE n >= 2`)
	second := selectQuery(t, s, `SELECT n FROM v`)
	if len(first.Rows) != 2 || len(second.Rows) != 3 {
		t.Fatalf("rows = %d then %d, want 2 then 3", len(first.Rows), len(second.Rows))
	}
}
