package db

import (
	"errors"
	"strings"
	"testing"

	"corgipile/internal/storage"
)

// collectRecords drains a session's WAL notify hook into a slice — the
// record stream a replication primary would publish.
func collectRecords(s *Session) *[]storage.WALRecord {
	recs := &[]storage.WALRecord{}
	s.WAL().WithNotify(func(rec storage.WALRecord) {
		cp := rec
		cp.Payload = append([]byte(nil), rec.Payload...)
		*recs = append(*recs, cp)
	})
	return recs
}

// catalogFingerprint summarizes a session's catalog for equality checks.
func catalogFingerprint(t *testing.T, s *Session) map[string]int {
	t.Helper()
	fp := map[string]int{}
	for _, name := range sortedKeys(s.tables) {
		fp["table:"+name] = s.tables[name].Table.NumTuples()
	}
	for _, name := range sortedKeys(s.models) {
		fp["model:"+name] = len(s.models[name].W)
	}
	return fp
}

func sameFingerprint(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestApplyReplicatedStream: shipping every primary record through
// ApplyReplicated reproduces the catalog, preserves LSNs, skips resends
// (ErrStaleLSN), and the replica's directory recovers like a primary's.
func TestApplyReplicatedStream(t *testing.T) {
	prim, _ := newDurableSession(t, t.TempDir())
	recs := collectRecords(prim)
	mustExec(t, prim, walTestCreate)
	mustExec(t, prim, insertSQL(t, prim, "t", 40))
	lossTrace(t, prim, "base")

	replDir := t.TempDir()
	repl, _ := newDurableSession(t, replDir)
	for _, rec := range *recs {
		if err := repl.ApplyReplicated(rec); err != nil {
			t.Fatalf("apply lsn %d: %v", rec.LSN, err)
		}
	}
	if repl.LastLSN() != prim.LastLSN() {
		t.Fatalf("replica lsn %d, primary %d", repl.LastLSN(), prim.LastLSN())
	}
	if !sameFingerprint(catalogFingerprint(t, prim), catalogFingerprint(t, repl)) {
		t.Fatalf("catalogs differ:\nprimary %v\nreplica %v",
			catalogFingerprint(t, prim), catalogFingerprint(t, repl))
	}

	// A resend after reconnect must be skipped, not double-applied.
	last := (*recs)[len(*recs)-1]
	if err := repl.ApplyReplicated(last); !errors.Is(err, storage.ErrStaleLSN) {
		t.Fatalf("resend: got %v, want ErrStaleLSN", err)
	}
	if !sameFingerprint(catalogFingerprint(t, prim), catalogFingerprint(t, repl)) {
		t.Fatal("resend mutated the replica catalog")
	}

	// The replica dir must recover standalone — the PROMOTE guarantee.
	if err := repl.Close(); err != nil {
		t.Fatal(err)
	}
	re, stats := newDurableSession(t, replDir)
	if stats.Tables != 1 || stats.Models != 1 {
		t.Fatalf("replica dir recovery: %v", stats)
	}
	if !sameFingerprint(catalogFingerprint(t, prim), catalogFingerprint(t, re)) {
		t.Fatal("recovered replica catalog differs from primary")
	}
}

// TestInstallReplicaSnapshot: a catching-up replica installs the primary's
// snapshot wholesale and can then apply the live tail on top.
func TestInstallReplicaSnapshot(t *testing.T) {
	prim, _ := newDurableSession(t, t.TempDir())
	mustExec(t, prim, walTestCreate)
	mustExec(t, prim, insertSQL(t, prim, "t", 30))
	snap, frontier, err := prim.ReplicationSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if frontier != prim.LastLSN() {
		t.Fatalf("snapshot frontier %d, primary at %d", frontier, prim.LastLSN())
	}

	// Tail records appended after the snapshot was cut.
	recs := collectRecords(prim)
	mustExec(t, prim, insertSQL(t, prim, "t", 10))

	replDir := t.TempDir()
	repl, _ := newDurableSession(t, replDir)
	if err := repl.InstallReplicaSnapshot(snap, frontier); err != nil {
		t.Fatal(err)
	}
	if repl.LastLSN() != frontier {
		t.Fatalf("after snapshot: lsn %d, want frontier %d", repl.LastLSN(), frontier)
	}
	for _, rec := range *recs {
		if err := repl.ApplyReplicated(rec); err != nil {
			t.Fatalf("tail apply lsn %d: %v", rec.LSN, err)
		}
	}
	if !sameFingerprint(catalogFingerprint(t, prim), catalogFingerprint(t, repl)) {
		t.Fatal("catalog mismatch after snapshot + tail")
	}

	// Corrupt snapshots must be rejected with the catalog untouched.
	before := catalogFingerprint(t, repl)
	bad := append([]byte(nil), snap...)
	bad[len(bad)/2] ^= 0xFF
	if err := repl.InstallReplicaSnapshot(bad, frontier); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	if !sameFingerprint(before, catalogFingerprint(t, repl)) {
		t.Fatal("failed snapshot install mutated the catalog")
	}

	// The replica dir recovers standalone after a snapshot install too.
	if err := repl.Close(); err != nil {
		t.Fatal(err)
	}
	re, stats := newDurableSession(t, replDir)
	if stats.Tables != 1 {
		t.Fatalf("recovery after snapshot install: %v", stats)
	}
	if !sameFingerprint(catalogFingerprint(t, prim), catalogFingerprint(t, re)) {
		t.Fatal("recovered catalog differs")
	}
}

// TestReadOnlySession: replica mode rejects every mutating statement with
// ErrReadOnly, allows reads, and PROMOTE-style SetReadOnly(false) restores
// writes.
func TestReadOnlySession(t *testing.T) {
	s, _ := newDurableSession(t, t.TempDir())
	mustExec(t, s, walTestCreate)
	mustExec(t, s, insertSQL(t, s, "t", 20))
	lossTrace(t, s, "base")
	s.SetReadOnly(true)

	blocked := []string{
		walTestCreate,
		insertSQL(t, s, "t", 2),
		"LOAD INTO t FROM 'nope.libsvm'",
		"DROP TABLE t",
		"DROP MODEL base",
		"SELECT * FROM t TRAIN BY svm MODEL m2 WITH max_epoch_num=1",
		"EXPLAIN ANALYZE SELECT * FROM t TRAIN BY svm MODEL m3 WITH max_epoch_num=1",
		"CHECKPOINT",
		"LOAD MODEL m4 FROM 'nope.json'",
	}
	for _, sql := range blocked {
		if _, err := s.Exec(sql); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("%s: got %v, want ErrReadOnly", sql, err)
		}
	}

	allowed := []string{
		"SHOW TABLES",
		"SHOW MODELS",
		"SELECT * FROM t PREDICT BY base LIMIT 1",
		"EXPLAIN SELECT * FROM t TRAIN BY svm MODEL m5 WITH max_epoch_num=1",
	}
	for _, sql := range allowed {
		if _, err := s.Exec(sql); err != nil {
			t.Fatalf("read-only should allow %s: %v", sql, err)
		}
	}
	if _, ok := s.Model("m3"); ok {
		t.Fatal("blocked EXPLAIN ANALYZE installed a model")
	}

	s.SetReadOnly(false)
	mustExec(t, s, insertSQL(t, s, "t", 2))
}

// TestRecordTarget: the serving plane's cache-invalidation helper names the
// right object for each record type.
func TestRecordTarget(t *testing.T) {
	prim, _ := newDurableSession(t, t.TempDir())
	recs := collectRecords(prim)
	mustExec(t, prim, walTestCreate)
	mustExec(t, prim, insertSQL(t, prim, "t", 4))
	lossTrace(t, prim, "base")
	mustExec(t, prim, "DROP MODEL base")
	mustExec(t, prim, "DROP TABLE t")

	var got []string
	for _, rec := range *recs {
		kind, name := RecordTarget(rec)
		got = append(got, kind+"/"+name)
	}
	// CREATE TABLE, its initial blocks, the INSERT blocks → table/t; the
	// model install → model/base; then the two drops.
	if got[0] != "table/t" || got[len(got)-1] != "table/t" {
		t.Fatalf("targets: %v", got)
	}
	joined := strings.Join(got, " ")
	if !strings.Contains(joined, "model/base") {
		t.Fatalf("no model target in %v", got)
	}
	for _, g := range got {
		if g == "/" {
			t.Fatalf("unattributed record in %v", got)
		}
	}
}
