package db

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"corgipile/internal/sqlparse"
	"corgipile/internal/storage"
)

// Replication hooks. A replica session is the same Session the rest of the
// stack uses, driven by records shipped from a primary instead of by SQL:
// every incoming record is made durable in the replica's own WAL (with the
// primary's LSNs preserved) and then applied through the same
// applyWALRecord path recovery uses, so the replica's directory is at all
// times a valid single-node WAL directory. PROMOTE and a plain restart
// both go through unchanged crash recovery — that is what makes a promoted
// replica's TRAIN ... resume bit-identical to recovering the primary.

// ErrReadOnly rejects mutating statements on a replica; PROMOTE clears it.
var ErrReadOnly = errors.New("session is a read-only replica (PROMOTE to enable writes)")

// SetReadOnly flips the session's replica mode. While set, every mutating
// statement (DDL, ingestion, TRAIN, model loads, SQL CHECKPOINT) fails with
// ErrReadOnly; reads — SHOW, PREDICT, EXPLAIN, ANALYZE, SAVE MODEL — and
// the internal replication apply path still work.
func (s *Session) SetReadOnly(v bool) { s.readOnly.Store(v) }

// ReadOnly reports whether the session rejects mutating statements.
func (s *Session) ReadOnly() bool { return s.readOnly.Load() }

// mutatingKind names st for the read-only error when it would mutate the
// catalog or the log.
func mutatingKind(st sqlparse.Statement) (string, bool) {
	switch st := st.(type) {
	case *sqlparse.CreateTable:
		return "CREATE TABLE", true
	case *sqlparse.Insert:
		return "INSERT", true
	case *sqlparse.LoadTable:
		return "LOAD INTO", true
	case *sqlparse.Drop:
		return "DROP", true
	case *sqlparse.Train:
		return "TRAIN", true
	case *sqlparse.LoadModel:
		return "LOAD MODEL", true
	case *sqlparse.Checkpoint:
		return "CHECKPOINT", true
	case *sqlparse.Explain:
		if st.Analyze {
			// EXPLAIN ANALYZE trains and installs the model it measures.
			return "EXPLAIN ANALYZE", true
		}
	}
	return "", false
}

// WAL exposes the session's log to the replication primary (nil for
// in-memory sessions).
func (s *Session) WAL() *storage.WAL { return s.wal }

// LastLSN returns the highest LSN the session's log has assigned or
// applied (0 for a fresh log or an in-memory session).
func (s *Session) LastLSN() uint64 {
	if s.wal == nil {
		return 0
	}
	return s.wal.NextLSN() - 1
}

// WALSize returns the bytes currently in the live log — the auto-checkpoint
// trigger. 0 for in-memory sessions.
func (s *Session) WALSize() int64 {
	if s.wal == nil {
		return 0
	}
	return s.wal.Size()
}

// FlushWAL syncs the log — the replica calls it at batch boundaries before
// acknowledging an applied LSN, so an ack never claims durability the disk
// doesn't have.
func (s *Session) FlushWAL() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Sync()
}

// ReplicationSnapshot serializes the catalog in checkpoint file format
// (synthetic LSNs terminated by a WALCheckpoint frontier record) for a
// replica whose applied LSN is too far behind the live log. The caller
// must hold whatever lock keeps the catalog stable.
func (s *Session) ReplicationSnapshot() ([]byte, uint64, error) {
	buf, frontier, _, err := s.snapshotRecords()
	return buf, frontier, err
}

// ApplyReplicated logs one shipped record into the replica's own WAL
// (preserving the primary's LSN) and applies it to the catalog. A record
// at or below the already-applied LSN returns storage.ErrStaleLSN and
// changes nothing — the double-apply guard for resent records after a
// reconnect. An apply failure after logging means the replica's catalog
// has diverged from the primary's history; the caller must rebuild from a
// snapshot.
func (s *Session) ApplyReplicated(rec storage.WALRecord) error {
	if s.wal == nil {
		return fmt.Errorf("db: replication requires a WAL-backed session")
	}
	if err := s.wal.AppendRecord(rec); err != nil {
		return err
	}
	if err := s.applyWALRecord(rec); err != nil {
		return fmt.Errorf("db: apply replicated record (lsn %d): %w", rec.LSN, err)
	}
	return nil
}

// InstallReplicaSnapshot replaces the whole catalog and WAL directory with
// a primary's snapshot: the catalog is rebuilt from the snapshot records,
// the live log is truncated, and the snapshot bytes become checkpoint.db —
// exactly the state CHECKPOINT would have produced on the primary. On any
// error the previous catalog is restored untouched.
func (s *Session) InstallReplicaSnapshot(snap []byte, frontier uint64) error {
	if s.wal == nil {
		return fmt.Errorf("db: replication requires a WAL-backed session")
	}
	recs, valid := storage.DecodeWALRecords(snap)
	if valid != len(snap) || len(recs) == 0 || recs[len(recs)-1].Type != storage.WALCheckpoint {
		return fmt.Errorf("db: replica snapshot is corrupt")
	}
	var cp walCheckpointPayload
	if err := json.Unmarshal(recs[len(recs)-1].Payload, &cp); err != nil {
		return fmt.Errorf("db: replica snapshot frontier: %w", err)
	}
	if cp.Frontier != frontier {
		return fmt.Errorf("db: replica snapshot frontier %d, handshake said %d", cp.Frontier, frontier)
	}

	oldTables, oldModels := s.tables, s.models
	s.tables = make(map[string]*TableEntry)
	s.models = make(map[string]*ModelEntry)
	for _, rec := range recs[:len(recs)-1] {
		if err := s.applyWALRecord(rec); err != nil {
			s.tables, s.models = oldTables, oldModels
			return fmt.Errorf("db: replica snapshot replay: %w", err)
		}
	}

	// Truncate the log before committing the checkpoint: a crash between
	// the two leaves old-checkpoint + empty-log, a consistent (if stale)
	// state the replica re-syncs past on restart. The reverse order could
	// replay stale post-frontier records on top of the new image.
	if err := s.wal.Reset(); err != nil {
		s.tables, s.models = oldTables, oldModels
		return err
	}
	tmp := filepath.Join(s.walDir, "checkpoint.tmp")
	if err := writeFileSync(tmp, snap); err != nil {
		s.tables, s.models = oldTables, oldModels
		return fmt.Errorf("db: replica snapshot write: %w", err)
	}
	if err := os.Rename(tmp, CheckpointPath(s.walDir)); err != nil {
		s.tables, s.models = oldTables, oldModels
		return fmt.Errorf("db: replica snapshot rename: %w", err)
	}
	s.wal.AdvanceLSN(frontier + 1)
	return nil
}

// writeFileSync writes data to path and fsyncs before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RecordTarget names the catalog object a record touches — the serving
// plane uses it to invalidate the right predict-cache entry when a
// replicated record lands. kind is "table", "model", or "" (checkpoint
// markers, unknown types).
func RecordTarget(rec storage.WALRecord) (kind, name string) {
	switch rec.Type {
	case storage.WALCreateTable, storage.WALDropTable:
		var p walNamePayload
		if json.Unmarshal(rec.Payload, &p) == nil {
			return "table", strings.ToLower(p.Name)
		}
	case storage.WALAppendBlock:
		if table, _, err := storage.DecodeBlockPayload(rec.Payload); err == nil {
			return "table", strings.ToLower(table)
		}
	case storage.WALPutModel, storage.WALDropModel:
		var p walNamePayload
		if json.Unmarshal(rec.Payload, &p) == nil {
			return "model", strings.ToLower(p.Name)
		}
	}
	return "", ""
}
