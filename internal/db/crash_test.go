package db

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// Crash tests: a child process (this test binary re-execed with
// TestCrashHelper selected) ingests into a WAL-backed session in a loop and
// is SIGKILLed at an arbitrary point — mid-append for the ingest mode,
// around the checkpoint protocol for the checkpoint mode. The parent then
// recovers the directory and asserts the catalog is a consistent prefix of
// the child's work: recovery succeeds, the table decodes with dense
// sequential IDs, and a same-seed TRAIN over the recovered catalog is
// bit-deterministic across two independent recoveries.

// TestCrashHelper is the child body; it only runs when re-execed by
// runCrashChild and loops until killed.
func TestCrashHelper(t *testing.T) {
	if os.Getenv("CORGI_CRASH_HELPER") == "" {
		t.Skip("crash-test child body; driven by TestCrashRecovery*")
	}
	dir := os.Getenv("CORGI_CRASH_DIR")
	mode := os.Getenv("CORGI_CRASH_MODE")
	s := NewSession()
	if _, err := s.OpenWAL(dir); err != nil {
		fmt.Printf("CHILD_ERR %v\n", err)
		os.Exit(1)
	}
	if _, ok := s.Table("t"); !ok {
		if _, err := s.Exec(walTestCreate); err != nil {
			fmt.Printf("CHILD_ERR %v\n", err)
			os.Exit(1)
		}
	}
	for i := 0; ; i++ {
		if _, err := s.Exec(insertSQL(t, s, "t", 64)); err != nil {
			fmt.Printf("CHILD_ERR %v\n", err)
			os.Exit(1)
		}
		if mode == "checkpoint" {
			if _, err := s.Exec(`CHECKPOINT`); err != nil {
				fmt.Printf("CHILD_ERR %v\n", err)
				os.Exit(1)
			}
		}
		// Flushed per line: the parent kills us as soon as it has seen
		// enough iterations, landing the SIGKILL at an arbitrary point in
		// the next one.
		fmt.Printf("ITER %d\n", i)
	}
}

// runCrashChild re-execs the test binary as a crash helper over dir and
// SIGKILLs it after it reports `iters` completed iterations.
func runCrashChild(t *testing.T, dir, mode string, iters int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashHelper$")
	cmd.Env = append(os.Environ(),
		"CORGI_CRASH_HELPER=1",
		"CORGI_CRASH_DIR="+dir,
		"CORGI_CRASH_MODE="+mode,
	)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(out)
	seen := 0
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "CHILD_ERR") {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("crash child failed: %s", line)
		}
		if strings.HasPrefix(line, "ITER ") {
			seen++
			if seen >= iters {
				break
			}
		}
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	cmd.Wait()
	if seen < iters {
		t.Fatalf("child exited after %d iterations, wanted %d", seen, iters)
	}
}

// recoverAndCheck opens the crashed directory and asserts catalog
// consistency, returning the recovered loss trace of a fixed-seed TRAIN.
func recoverAndCheck(t *testing.T, dir string) []string {
	t.Helper()
	s := NewSession()
	stats, err := s.OpenWAL(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s.Close()
	if stats.Tables != 1 {
		t.Fatalf("recovered %v, want 1 table", stats)
	}
	e, ok := s.Table("t")
	if !ok {
		t.Fatal("table t lost")
	}
	// The heap must be a consistent prefix: every block decodes and IDs are
	// dense and sequential (no torn or reordered appends survived).
	tuples, err := e.Table.DecodeAll()
	if err != nil {
		t.Fatalf("recovered table does not decode: %v", err)
	}
	if len(tuples) != e.Table.NumTuples() {
		t.Fatalf("decoded %d tuples, catalog says %d", len(tuples), e.Table.NumTuples())
	}
	for i, tu := range tuples {
		if tu.ID != int64(i) {
			t.Fatalf("tuple %d has ID %d; appends are not a clean prefix", i, tu.ID)
		}
	}
	res, err := s.Exec(`SELECT * FROM t TRAIN BY svm MODEL after_crash WITH max_epoch_num=2, seed=11, shuffle='corgipile'`)
	if err != nil {
		t.Fatalf("TRAIN after recovery: %v", err)
	}
	var losses []string
	for _, row := range res.Rows {
		losses = append(losses, row[1])
	}
	return losses
}

// SIGKILL mid-ingest: the WAL tail may be torn, but recovery must yield a
// consistent prefix and deterministic training.
func TestCrashRecoveryMidIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("crash tests re-exec the test binary")
	}
	dir := t.TempDir()
	runCrashChild(t, dir, "ingest", 3)
	first := recoverAndCheck(t, dir)
	// A second, independent recovery of the same directory must land in the
	// identical state: same-seed TRAIN gives a bit-identical loss trace.
	// (recoverAndCheck trains a throwaway model, which appends a model
	// record to the log — but the table blocks and the recovered weights it
	// derives from are unchanged, so the traces must match.)
	second := recoverAndCheck(t, dir)
	if !equalStrings(first, second) {
		t.Fatalf("recoveries diverged: %v vs %v", first, second)
	}
}

// SIGKILL around CHECKPOINT: whether the crash lands before the tmp write,
// mid-write, or between rename and log reset, recovery must succeed.
func TestCrashRecoveryMidCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("crash tests re-exec the test binary")
	}
	dir := t.TempDir()
	runCrashChild(t, dir, "checkpoint", 3)
	// Crash again on the already-recovered directory to stack a second
	// torn tail on top of a checkpoint.
	runCrashChild(t, dir, "checkpoint", 2)
	first := recoverAndCheck(t, dir)
	second := recoverAndCheck(t, dir)
	if !equalStrings(first, second) {
		t.Fatalf("recoveries diverged: %v vs %v", first, second)
	}
}
