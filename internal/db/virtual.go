package db

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"corgipile/internal/data"
	"corgipile/internal/obs"
	"corgipile/internal/sqlparse"
)

// This file implements the introspection read path: general SELECT
// statements evaluated against virtual system tables backed by live
// state. The db layer registers the session-scoped tables
// (corgi_tables, corgi_models, corgi_wal, corgi_metrics, corgi_events,
// corgi_spans); the serving plane registers its own on top
// (corgi_jobs, corgi_sessions, corgi_replication). SELECT also works
// against base tables (id, label, f0..fN), which is mostly useful for
// eyeballing small tables.

// VirtualTable is a system table backed by live state: a fixed column
// list and a Rows callback evaluated at SELECT time. Rows must return
// one []string per row, each len(Columns) long, and must be safe under
// whatever locking discipline the registrar's SELECT path runs
// (sessions are single-statement; the serving plane executes SELECT
// under its catalog read lock).
type VirtualTable struct {
	Name    string
	Columns []string
	Rows    func() [][]string
}

// RegisterVirtual registers (or replaces) a virtual table. Names are
// case-insensitive and shadow base tables in SELECT resolution, so the
// corgi_ prefix is conventional, not enforced.
func (s *Session) RegisterVirtual(vt VirtualTable) {
	s.virtual[strings.ToLower(vt.Name)] = &vt
}

// registerSystemTables installs the session-scoped system tables. All
// closures read live state at query time; tables whose substrate is
// absent (no WAL, no metrics registry, no event log) render zero rows
// rather than erroring, so `SELECT * FROM corgi_wal` is always valid.
func (s *Session) registerSystemTables() {
	s.RegisterVirtual(VirtualTable{
		Name:    "corgi_tables",
		Columns: []string{"name", "tuples", "blocks", "bytes", "device"},
		Rows: func() [][]string {
			rows := make([][]string, 0, len(s.tables))
			for _, name := range sortedKeys(s.tables) {
				t := s.tables[name]
				rows = append(rows, []string{
					name,
					strconv.Itoa(t.Table.NumTuples()),
					strconv.Itoa(t.Table.NumBlocks()),
					strconv.FormatInt(t.Table.SizeBytes(), 10),
					t.Device,
				})
			}
			return rows
		},
	})
	s.RegisterVirtual(VirtualTable{
		Name:    "corgi_models",
		Columns: []string{"name", "kind", "table_name", "features", "classes", "epochs", "final_loss", "final_accuracy", "trained_blocks"},
		Rows: func() [][]string {
			rows := make([][]string, 0, len(s.models))
			for _, name := range sortedKeys(s.models) {
				m := s.models[name]
				loss, acc := "", ""
				if n := len(m.Epochs); n > 0 {
					loss = fmt.Sprintf("%.6f", m.Epochs[n-1].Loss)
					acc = fmt.Sprintf("%.4f", m.Epochs[n-1].Accuracy)
				}
				rows = append(rows, []string{
					name, m.Kind, m.Table,
					strconv.Itoa(m.Features), strconv.Itoa(m.Classes),
					strconv.Itoa(len(m.Epochs)), loss, acc,
					strconv.Itoa(m.TrainedBlocks),
				})
			}
			return rows
		},
	})
	s.RegisterVirtual(VirtualTable{
		Name:    "corgi_wal",
		Columns: []string{"durable", "path", "size_bytes", "last_lsn", "checkpoint_age_seconds", "poisoned"},
		Rows: func() [][]string {
			if s.wal == nil {
				return [][]string{{"false", "", "0", "0", "", ""}}
			}
			age := ""
			if d, ok := s.CheckpointAge(); ok {
				age = fmt.Sprintf("%.3f", d.Seconds())
			}
			poisoned := ""
			if err := s.wal.Poisoned(); err != nil {
				poisoned = err.Error()
			}
			return [][]string{{
				"true",
				WALPath(s.walDir),
				strconv.FormatInt(s.wal.Size(), 10),
				strconv.FormatUint(s.LastLSN(), 10),
				age,
				poisoned,
			}}
		},
	})
	s.RegisterVirtual(VirtualTable{
		Name:    "corgi_metrics",
		Columns: []string{"name", "kind", "value"},
		Rows:    func() [][]string { return metricRows(s.obs) },
	})
	s.RegisterVirtual(VirtualTable{
		Name:    "corgi_metrics_history",
		Columns: []string{"name", "ts", "value", "resolution"},
		Rows: func() [][]string {
			pts := s.history.Query("", 0)
			rows := make([][]string, 0, len(pts))
			for _, p := range pts {
				rows = append(rows, []string{
					p.Name,
					strconv.FormatInt(p.TimeMs, 10),
					trimFloat(p.Value),
					p.Resolution,
				})
			}
			return rows
		},
	})
	s.RegisterVirtual(VirtualTable{
		Name: "corgi_alerts",
		Columns: []string{"name", "metric", "op", "threshold", "for_seconds",
			"state", "since_ms", "value", "fired"},
		Rows: func() [][]string {
			alerts := s.history.Alerts()
			rows := make([][]string, 0, len(alerts))
			for _, a := range alerts {
				since := ""
				if a.SinceMs != 0 {
					since = strconv.FormatInt(a.SinceMs, 10)
				}
				rows = append(rows, []string{
					a.Name, a.Metric, a.Op,
					trimFloat(a.Threshold),
					trimFloat(a.ForSeconds),
					a.State, since,
					trimFloat(a.Value),
					strconv.FormatInt(a.Fired, 10),
				})
			}
			return rows
		},
	})
	s.RegisterVirtual(VirtualTable{
		Name:    "corgi_events",
		Columns: []string{"seq", "time_ms", "type", "trace_id", "detail", "dur_ms", "err"},
		Rows: func() [][]string {
			evs := s.events.Events()
			rows := make([][]string, 0, len(evs))
			for _, ev := range evs {
				dur := ""
				if ev.DurMs != 0 {
					dur = fmt.Sprintf("%.3f", ev.DurMs)
				}
				rows = append(rows, []string{
					strconv.FormatInt(ev.Seq, 10),
					strconv.FormatInt(ev.TimeMs, 10),
					ev.Type, ev.Trace, ev.Detail, dur, ev.Err,
				})
			}
			return rows
		},
	})
	s.RegisterVirtual(VirtualTable{
		Name:    "corgi_spans",
		Columns: []string{"seq", "trace_id", "name", "start_ms", "dur_ms"},
		Rows: func() [][]string {
			sps := s.events.Spans()
			rows := make([][]string, 0, len(sps))
			for _, sp := range sps {
				rows = append(rows, []string{
					strconv.FormatInt(sp.Seq, 10),
					sp.Trace, sp.Name,
					strconv.FormatInt(sp.StartMs, 10),
					fmt.Sprintf("%.3f", sp.DurMs),
				})
			}
			return rows
		},
	})
}

// metricRows renders a registry snapshot as one row per counter, gauge,
// and histogram quantile (suffixed _p50/_p95/_p99, plus _count), in
// sorted name order.
func metricRows(reg *obs.Registry) [][]string {
	if reg == nil {
		return nil
	}
	snap := reg.Snapshot()
	var rows [][]string
	for _, name := range sortedKeys(snap.Counters) {
		rows = append(rows, []string{name, "counter", strconv.FormatInt(snap.Counters[name], 10)})
	}
	for _, name := range sortedKeys(snap.Gauges) {
		rows = append(rows, []string{name, "gauge", trimFloat(snap.Gauges[name])})
	}
	for _, name := range sortedKeys(snap.Hists) {
		h := snap.Hists[name]
		rows = append(rows,
			[]string{name + "_count", "histogram", strconv.FormatInt(h.Count, 10)},
			[]string{name + "_p50", "histogram", trimFloat(h.Quantile(0.5).Seconds())},
			[]string{name + "_p95", "histogram", trimFloat(h.Quantile(0.95).Seconds())},
			[]string{name + "_p99", "histogram", trimFloat(h.Quantile(0.99).Seconds())},
		)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i][0] < rows[j][0] })
	return rows
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', 9, 64)
}

// CheckpointAge reports how stale the durable checkpoint is: the age of
// checkpoint.db, or the time since OpenWAL when no checkpoint exists
// yet. ok is false for in-memory sessions.
func (s *Session) CheckpointAge() (age time.Duration, ok bool) {
	if s.wal == nil {
		return 0, false
	}
	if fi, err := os.Stat(CheckpointPath(s.walDir)); err == nil {
		return time.Since(fi.ModTime()), true
	}
	if s.walOpened.IsZero() {
		return 0, true
	}
	return time.Since(s.walOpened), true
}

// execSelect evaluates a general SELECT: resolve the table (virtual
// tables shadow base tables), filter, order, project, limit.
func (s *Session) execSelect(st *sqlparse.Select) (*Result, error) {
	name := strings.ToLower(st.Table)
	var cols []string
	var rows [][]string
	if vt, ok := s.virtual[name]; ok {
		cols, rows = vt.Columns, vt.Rows()
	} else if entry, ok := s.tables[name]; ok {
		var err error
		cols, rows, err = baseTableRows(entry)
		if err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("db: unknown table %q", st.Table)
	}
	return evalSelect(st, cols, rows)
}

// baseTableRows materializes a stored table for SELECT: columns id,
// label, f0..fN. Fine for the small tables worth eyeballing; use LIMIT
// on anything big.
func baseTableRows(entry *TableEntry) ([]string, [][]string, error) {
	tuples, err := entry.Table.DecodeAll()
	if err != nil {
		return nil, nil, err
	}
	feats := entry.Table.Features()
	cols := make([]string, 0, feats+2)
	cols = append(cols, "id", "label")
	for i := 0; i < feats; i++ {
		cols = append(cols, "f"+strconv.Itoa(i))
	}
	rows := make([][]string, 0, len(tuples))
	for i := range tuples {
		tp := &tuples[i]
		row := make([]string, 0, feats+2)
		row = append(row, strconv.FormatInt(tp.ID, 10), trimFloat(tp.Label))
		for f := 0; f < feats; f++ {
			row = append(row, trimFloat(tupleFeature(tp, f)))
		}
		rows = append(rows, row)
	}
	return cols, rows, nil
}

// evalSelect applies WHERE, ORDER BY, projection and LIMIT over a
// materialized (columns, rows) relation.
func evalSelect(st *sqlparse.Select, cols []string, rows [][]string) (*Result, error) {
	colIdx := func(name string) (int, error) {
		for i, c := range cols {
			if c == name {
				return i, nil
			}
		}
		return 0, fmt.Errorf("db: table %q has no column %q (columns: %s)",
			st.Table, name, strings.Join(cols, ", "))
	}
	for _, cond := range st.Where {
		idx, err := colIdx(cond.Column)
		if err != nil {
			return nil, err
		}
		kept := rows[:0]
		for _, row := range rows {
			ok, err := cellMatches(row[idx], cond.Op, cond.Value.Raw)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, row)
			}
		}
		rows = kept
	}
	if st.OrderBy != "" {
		idx, err := colIdx(st.OrderBy)
		if err != nil {
			return nil, err
		}
		sort.SliceStable(rows, func(i, j int) bool {
			c := compareCells(rows[i][idx], rows[j][idx])
			if st.Desc {
				return c > 0
			}
			return c < 0
		})
	}
	if st.Limit > 0 && len(rows) > st.Limit {
		rows = rows[:st.Limit]
	}
	outCols := cols
	if len(st.Columns) > 0 {
		idxs := make([]int, len(st.Columns))
		for i, c := range st.Columns {
			idx, err := colIdx(c)
			if err != nil {
				return nil, err
			}
			idxs[i] = idx
		}
		projected := make([][]string, len(rows))
		for r, row := range rows {
			out := make([]string, len(idxs))
			for i, idx := range idxs {
				out[i] = row[idx]
			}
			projected[r] = out
		}
		rows, outCols = projected, st.Columns
	}
	// Copy the row slice so the result never aliases a provider's backing
	// array (the in-place WHERE filter above truncates it).
	out := make([][]string, len(rows))
	copy(out, rows)
	return &Result{
		Columns: outCols,
		Rows:    out,
		Message: fmt.Sprintf("%d row(s)", len(out)),
	}, nil
}

// tupleFeature reads one dense-indexed feature from either tuple
// representation (sparse indices are strictly increasing).
func tupleFeature(t *data.Tuple, i int) float64 {
	if !t.IsSparse() {
		if i < len(t.Dense) {
			return t.Dense[i]
		}
		return 0
	}
	for k, idx := range t.SparseIdx {
		if int(idx) == i {
			return t.SparseVal[k]
		}
		if int(idx) > i {
			break
		}
	}
	return 0
}

// compareCells orders two cells numerically when both parse as numbers,
// lexicographically otherwise.
func compareCells(a, b string) int {
	fa, ea := strconv.ParseFloat(a, 64)
	fb, eb := strconv.ParseFloat(b, 64)
	if ea == nil && eb == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return 0
	}
	return strings.Compare(a, b)
}

// cellMatches evaluates cell op value with numeric-aware comparison.
func cellMatches(cell, op, value string) (bool, error) {
	c := compareCells(cell, value)
	switch op {
	case "=":
		return c == 0, nil
	case "!=":
		return c != 0, nil
	case "<":
		return c < 0, nil
	case "<=":
		return c <= 0, nil
	case ">":
		return c > 0, nil
	case ">=":
		return c >= 0, nil
	}
	return false, fmt.Errorf("db: unsupported comparison %q", op)
}
