package db

import (
	"strings"
	"testing"
)

func TestTrainThroughTransientFaultsViaSQL(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.1, order='clustered') WITH device='ssd', block_size=32KB, faults='seed=9,read_err=0.05'`)
	// Without retries the first injected transient error kills the query.
	if _, err := s.Exec(`SELECT * FROM t TRAIN BY svm MODEL bare WITH max_epoch_num=3`); err == nil {
		t.Fatal("transient faults without retries should fail the query")
	}
	res := mustExec(t, s, `SELECT * FROM t TRAIN BY svm MODEL m WITH max_epoch_num=3, retries=4`)
	if len(res.Rows) != 3 {
		t.Fatalf("train returned %d epoch rows, want 3", len(res.Rows))
	}
	if !strings.Contains(res.Message, "stored") {
		t.Fatalf("message = %q", res.Message)
	}
}

func TestSkipCorruptViaSQL(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.1, order='clustered') WITH device='ssd', block_size=32KB, faults='corrupt=2'`)
	if _, err := s.Exec(`SELECT * FROM t TRAIN BY svm MODEL bare WITH max_epoch_num=2`); err == nil {
		t.Fatal("corrupt block with fail-fast policy should fail the query")
	}
	res := mustExec(t, s, `SELECT * FROM t TRAIN BY svm MODEL m WITH max_epoch_num=2, on_corrupt='skip', max_skip_fraction=0.25`)
	if !strings.Contains(res.Message, "faults:") || !strings.Contains(res.Message, "skipped") {
		t.Fatalf("degraded TRAIN message lacks fault summary: %q", res.Message)
	}
}

func TestFaultParamsDoNotLeakAcrossTables(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE bad AS SYNTHETIC(workload='susy', scale=0.05) WITH device='ssd', block_size=32KB, faults='corrupt=0'`)
	mustExec(t, s, `CREATE TABLE good AS SYNTHETIC(workload='susy', scale=0.05) WITH device='ssd', block_size=32KB`)
	// The clean table shares the session's ssd device and must be unaffected
	// by the faulty table's private device.
	mustExec(t, s, `SELECT * FROM good TRAIN BY svm MODEL g WITH max_epoch_num=2`)
}

func TestExplainShowsResilience(t *testing.T) {
	s := NewSession()
	mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.02)`)
	res := mustExec(t, s, `EXPLAIN SELECT * FROM t TRAIN BY svm WITH retries=3, on_corrupt='skip'`)
	plan := ""
	for _, row := range res.Rows {
		plan += row[0] + "\n"
	}
	if !strings.Contains(plan, "Resilience: retries=3 on_corrupt=skip") {
		t.Fatalf("EXPLAIN lacks resilience line:\n%s", plan)
	}
	// A plain TRAIN plan must not grow a resilience line.
	res = mustExec(t, s, `EXPLAIN SELECT * FROM t TRAIN BY svm`)
	for _, row := range res.Rows {
		if strings.Contains(row[0], "Resilience") {
			t.Fatalf("fault-free EXPLAIN shows resilience: %q", row[0])
		}
	}
}

func TestBadFaultParamsError(t *testing.T) {
	s := NewSession()
	if _, err := s.Exec(`CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.02) WITH faults='read_err=zebra'`); err == nil {
		t.Fatal("bad fault spec should error")
	}
	mustExec(t, s, `CREATE TABLE t AS SYNTHETIC(workload='susy', scale=0.02)`)
	if _, err := s.Exec(`SELECT * FROM t TRAIN BY svm WITH on_corrupt='shrug'`); err == nil {
		t.Fatal("unknown on_corrupt policy should error")
	}
}
