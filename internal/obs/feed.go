package obs

import (
	"encoding/json"
	"sync"
)

// RunStatus is one point-in-time view of a training run — the payload of
// the telemetry server's /run endpoint and of each SSE event. The training
// loop publishes one update per epoch (plus a final one with Done set).
type RunStatus struct {
	// Run labels the run (tool name plus workload/model, free-form).
	Run string `json:"run,omitempty"`
	// Epoch is the last completed epoch (1-based); Epochs the configured
	// total.
	Epoch  int `json:"epoch"`
	Epochs int `json:"epochs,omitempty"`
	// Loss is the epoch's mean streaming loss; TrainAcc the train-set
	// accuracy when evaluated.
	Loss     float64 `json:"loss"`
	TrainAcc float64 `json:"train_acc,omitempty"`
	// GradNorm, UpdateNorm, LossDelta and Verdict carry the convergence
	// diagnostics when enabled (see core.DiagConfig).
	GradNorm   float64 `json:"grad_norm,omitempty"`
	UpdateNorm float64 `json:"update_norm,omitempty"`
	LossDelta  float64 `json:"loss_delta,omitempty"`
	Verdict    string  `json:"verdict,omitempty"`
	// Tuples counts examples consumed so far across the run.
	Tuples int64 `json:"tuples"`
	// BufferTuples and BufferOccupancy mirror the shuffle-buffer live
	// gauges at publish time.
	BufferTuples    int64   `json:"buffer_tuples,omitempty"`
	BufferOccupancy float64 `json:"buffer_occupancy,omitempty"`
	// Faults aggregates the fault counters (transient errors, retries,
	// quarantined blocks, worker crashes) present at publish time.
	Faults map[string]int64 `json:"faults,omitempty"`
	// SimSeconds is simulated elapsed time (0 when training in memory);
	// WallSeconds is real elapsed time since the run started.
	SimSeconds  float64 `json:"sim_seconds,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	// Done marks the final update of a run.
	Done bool `json:"done,omitempty"`
}

// faultCounterNames are the registry counters folded into
// RunStatus.Faults by FillFromRegistry.
var faultCounterNames = []string{
	IOFaultOps, IOStragglerOps, StorageRetries,
	StorageSkippedBlocks, StorageSkippedTuples,
	DistWorkerCrashes, DistWorkerRejoins,
}

// FillFromRegistry populates the shuffle-buffer gauges and the non-zero
// fault counters from r — the registry-derived half of a status update.
func (st *RunStatus) FillFromRegistry(r *Registry) {
	if r == nil {
		return
	}
	st.BufferTuples = int64(r.Gauge(ShuffleBufferTuples))
	st.BufferOccupancy = r.Gauge(ShuffleBufferOccupancy)
	for _, name := range faultCounterNames {
		if v := r.Counter(name); v != 0 {
			if st.Faults == nil {
				st.Faults = make(map[string]int64)
			}
			st.Faults[name] = v
		}
	}
}

// RunFeed publishes live RunStatus updates to any number of subscribers —
// the bridge between the training loop (one Publish per epoch) and the
// telemetry server's /run SSE stream. All methods are safe for concurrent
// use and no-ops on a nil feed, so instrumented code needs no conditionals.
type RunFeed struct {
	mu     sync.Mutex
	cur    RunStatus
	seq    int64
	closed bool
	subs   map[chan []byte]struct{}

	// The plan topic carries executed-plan profile snapshots (one per
	// epoch) alongside the scalar run status — the /run/plan data.
	plan     *PlanStats
	planSeq  int64
	planSubs map[chan []byte]struct{}
}

// NewRunFeed returns an empty feed.
func NewRunFeed() *RunFeed {
	return &RunFeed{
		subs:     make(map[chan []byte]struct{}),
		planSubs: make(map[chan []byte]struct{}),
	}
}

// Publish records st as the current status and fans it out to all
// subscribers. Slow subscribers drop updates rather than block the
// training loop.
func (f *RunFeed) Publish(st RunStatus) {
	if f == nil {
		return
	}
	msg, err := json.Marshal(st)
	if err != nil {
		return
	}
	f.mu.Lock()
	f.cur = st
	f.seq++
	for ch := range f.subs {
		select {
		case ch <- msg:
		default: // subscriber is behind; it still holds older updates
		}
	}
	f.mu.Unlock()
}

// Status returns the most recently published status and the number of
// updates published so far.
func (f *RunFeed) Status() (RunStatus, int64) {
	if f == nil {
		return RunStatus{}, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cur, f.seq
}

// Subscribe registers a new subscriber and returns its update channel plus
// a cancel function. The channel is closed when cancel is called or the
// feed is shut down; updates that arrive while the subscriber is behind
// are dropped (the channel buffers a few).
func (f *RunFeed) Subscribe() (<-chan []byte, func()) {
	if f == nil {
		ch := make(chan []byte)
		close(ch)
		return ch, func() {}
	}
	ch := make(chan []byte, 8)
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	f.subs[ch] = struct{}{}
	f.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			f.mu.Lock()
			if _, ok := f.subs[ch]; ok {
				delete(f.subs, ch)
				close(ch)
			}
			f.mu.Unlock()
		})
	}
	return ch, cancel
}

// PublishPlan records p as the current executed-plan snapshot and fans it
// out (as JSON) to plan-topic subscribers. The feed keeps the pointer; the
// publisher must hand over an immutable snapshot (PlanProfile.Snapshot
// already clones).
func (f *RunFeed) PublishPlan(p *PlanStats) {
	if f == nil || p == nil {
		return
	}
	msg, err := json.Marshal(p)
	if err != nil {
		return
	}
	f.mu.Lock()
	f.plan = p
	f.planSeq++
	for ch := range f.planSubs {
		select {
		case ch <- msg:
		default: // subscriber is behind; it still holds older updates
		}
	}
	f.mu.Unlock()
}

// PlanStatus returns the most recently published plan snapshot (nil before
// the first) and the number of plan updates published so far.
func (f *RunFeed) PlanStatus() (*PlanStats, int64) {
	if f == nil {
		return nil, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.plan, f.planSeq
}

// SubscribePlan registers a plan-topic subscriber; semantics mirror
// Subscribe.
func (f *RunFeed) SubscribePlan() (<-chan []byte, func()) {
	if f == nil {
		ch := make(chan []byte)
		close(ch)
		return ch, func() {}
	}
	ch := make(chan []byte, 8)
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	f.planSubs[ch] = struct{}{}
	f.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			f.mu.Lock()
			if _, ok := f.planSubs[ch]; ok {
				delete(f.planSubs, ch)
				close(ch)
			}
			f.mu.Unlock()
		})
	}
	return ch, cancel
}

// Close shuts the feed down: every subscriber channel (both topics) is
// closed and future Subscribe calls return an already-closed channel.
// Publish becomes a recording-only no-op (the current status is still
// updated).
func (f *RunFeed) Close() {
	if f == nil {
		return
	}
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		for ch := range f.subs {
			delete(f.subs, ch)
			close(ch)
		}
		for ch := range f.planSubs {
			delete(f.planSubs, ch)
			close(ch)
		}
	}
	f.mu.Unlock()
}
