package obs

import "time"

// Span measures one named interval on the registry's clock — an epoch, a
// buffer refill, an SGD batch. Ending a span records its duration into the
// histogram of the same name and, when a JSONL sink is attached, emits a
// span event.
//
// Spans nest: a span started while another is active records that span as
// its parent (the registry keeps a stack of active spans, which matches the
// single-goroutine structure of the training loop), and Child starts an
// explicitly parented span for concurrent producers. All methods are no-ops
// on a nil *Span, so `defer reg.Span("epoch").End()` is safe even when reg
// is nil.
type Span struct {
	reg        *Registry
	name       string
	id, parent int64
	start      time.Duration
	ended      bool
}

// Span starts a span named name, parented to the innermost active span.
// Returns nil (a no-op span) on a nil registry.
func (r *Registry) Span(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.spanSeq++
	sp := &Span{reg: r, name: name, id: r.spanSeq}
	if n := len(r.spans); n > 0 {
		sp.parent = r.spans[n-1]
	}
	r.spans = append(r.spans, sp.id)
	clock := r.clock
	r.mu.Unlock()
	if clock != nil {
		sp.start = clock.Now()
	}
	return sp
}

// Child starts a span explicitly parented to s. It does not join the
// registry's active-span stack, so it is safe to end out of order (e.g.
// from a producer goroutine).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	r := s.reg
	r.mu.Lock()
	r.spanSeq++
	sp := &Span{reg: r, name: name, id: r.spanSeq, parent: s.id}
	clock := r.clock
	r.mu.Unlock()
	if clock != nil {
		sp.start = clock.Now()
	}
	return sp
}

// End closes the span, records its duration into the same-named histogram,
// emits a JSONL span event if a sink is attached, and returns the duration.
// Ending twice is a no-op. Durations are clamped at zero: pipelined
// components may Set the simulated clock backwards (overlap accounting).
func (s *Span) End() time.Duration {
	if s == nil || s.ended {
		return 0
	}
	s.ended = true
	r := s.reg
	var end time.Duration
	r.mu.Lock()
	if r.clock != nil {
		end = r.clock.Now()
	}
	// Pop this span from the active stack (it may not be on top when spans
	// end out of order; remove the matching entry).
	for i := len(r.spans) - 1; i >= 0; i-- {
		if r.spans[i] == s.id {
			r.spans = append(r.spans[:i], r.spans[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
	dur := end - s.start
	if dur < 0 {
		dur = 0
	}
	r.Observe(s.name, dur)
	r.emitSpan(s, dur)
	return dur
}
