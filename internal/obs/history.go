package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file implements the metrics history plane: a bounded in-memory
// time-series store (History) that samples a Registry on an interval into
// fixed-size ring series with automatic downsampling tiers, plus threshold
// alert rules evaluated against every sample.
//
// The paper's whole argument is a trajectory claim — convergence versus
// I/O cost over epochs — but /metrics and corgi_metrics are point-in-time.
// History closes that gap: every registered counter and gauge, and every
// histogram's p50/p95/p99, becomes a queryable series at multiple
// resolutions (raw tier, plus coarser tiers holding means of consecutive
// raw samples), so an operator — or the future cost-based planner — can
// ask "what did predict p95 look like during that TRAIN" after the fact.
//
// Like EventLog, a History is optional everywhere it is threaded: every
// method is a no-op on a nil receiver, and sampling only ever *reads* the
// registry (Snapshot), so a process that never attaches one produces
// byte-identical passive traces (TestTracePurity pins this).

// Alert event types recorded into the EventLog when rules transition.
const (
	EvAlertFiring   = "alert.firing"
	EvAlertResolved = "alert.resolved"
)

// Alert rule states.
const (
	AlertOK      = "ok"      // condition false
	AlertPending = "pending" // condition true, for-duration not yet met
	AlertFiring  = "firing"  // condition held for the rule's duration
)

// Default History configuration values.
const (
	DefaultHistoryInterval = time.Second
	DefaultHistorySlots    = 256
)

// defaultHistoryTiers are the downsampling factors: raw samples, 10-sample
// means, 60-sample means (1s → 10s → 1m at the default interval).
var defaultHistoryTiers = []int{1, 10, 60}

// HistoryConfig configures a History store.
type HistoryConfig struct {
	// Interval is the sampling period (default 1s).
	Interval time.Duration
	// Slots is the ring capacity of every series at every tier
	// (default 256). Memory is bounded by metrics × tiers × Slots points.
	Slots int
	// Tiers are the downsampling factors relative to Interval; each tier
	// stores the mean of that many consecutive raw samples (default
	// 1, 10, 60). Factor 1 is the raw tier.
	Tiers []int
}

// HistoryPoint is one sampled value of one series at one resolution — the
// row shape of corgi_metrics_history and /metrics/history.
type HistoryPoint struct {
	Name       string  `json:"name"`
	TimeMs     int64   `json:"ts"`
	Value      float64 `json:"value"`
	Resolution string  `json:"resolution"`
}

// point is the stored form (the name and resolution live on the series).
type point struct {
	timeMs int64
	value  float64
}

// series is one metric's fixed-size ring at one tier.
type series struct {
	pts  []point
	next int // next write slot
	n    int // stored points (≤ len(pts))
}

func (s *series) push(p point) {
	s.pts[s.next] = p
	s.next = (s.next + 1) % len(s.pts)
	if s.n < len(s.pts) {
		s.n++
	}
}

// each iterates the stored points oldest-first.
func (s *series) each(fn func(point)) {
	start := s.next - s.n
	for i := 0; i < s.n; i++ {
		fn(s.pts[(start+i+len(s.pts))%len(s.pts)])
	}
}

// accum is a tier's running mean of raw samples not yet flushed.
type accum struct {
	sum   float64
	count int
}

// historyTier is one downsampling level: factor raw samples per stored
// point, a ring per metric, and the per-metric accumulators.
type historyTier struct {
	factor int
	label  string
	series map[string]*series
	acc    map[string]*accum
}

// AlertRule is one threshold rule: fire when Metric Op Threshold has held
// for For. Gauges and histogram quantiles compare the sampled value;
// counters (and histogram _count series) compare the per-second rate
// between consecutive samples, since a cumulative total crosses any
// threshold exactly once and could never resolve.
type AlertRule struct {
	// Name labels the rule in events, /alertz and corgi_alerts (defaults
	// to the parsed spec string).
	Name string
	// Metric names the sampled series: a counter or gauge name verbatim,
	// or a histogram quantile series like "serve.predict_p95".
	Metric string
	// Op is '>' or '<'.
	Op byte
	// Threshold is the boundary value (rates for counters, seconds for
	// histogram quantiles, raw value for gauges).
	Threshold float64
	// For is how long the condition must hold before the rule fires
	// (0 = fire on the first true sample).
	For time.Duration
}

// ParseAlertRule parses the -alert flag syntax: "metric>value" or
// "metric<value", optionally followed by " for 30s".
func ParseAlertRule(spec string) (AlertRule, error) {
	r := AlertRule{Name: strings.TrimSpace(spec)}
	body := r.Name
	if i := strings.LastIndex(body, " for "); i >= 0 {
		d, err := time.ParseDuration(strings.TrimSpace(body[i+5:]))
		if err != nil {
			return r, fmt.Errorf("obs: alert %q: bad for-duration: %v", spec, err)
		}
		r.For = d
		body = strings.TrimSpace(body[:i])
	}
	op := strings.IndexAny(body, "><")
	if op < 0 {
		return r, fmt.Errorf("obs: alert %q needs 'metric>value' or 'metric<value'", spec)
	}
	r.Metric = strings.TrimSpace(body[:op])
	r.Op = body[op]
	thr, err := strconv.ParseFloat(strings.TrimSpace(body[op+1:]), 64)
	if err != nil {
		return r, fmt.Errorf("obs: alert %q: bad threshold: %v", spec, err)
	}
	r.Threshold = thr
	if r.Metric == "" {
		return r, fmt.Errorf("obs: alert %q names no metric", spec)
	}
	return r, nil
}

// alertState is a rule plus its evaluation state.
type alertState struct {
	rule    AlertRule
	state   string
	since   time.Time // entered the current non-ok state
	value   float64   // last evaluated value
	hasVal  bool
	fired   int64
	firedAt time.Time
}

// AlertStatus is one rule's externally visible state — the row shape of
// corgi_alerts and /alertz.
type AlertStatus struct {
	Name       string  `json:"name"`
	Metric     string  `json:"metric"`
	Op         string  `json:"op"`
	Threshold  float64 `json:"threshold"`
	ForSeconds float64 `json:"for_seconds"`
	State      string  `json:"state"`
	SinceMs    int64   `json:"since_ms,omitempty"`
	Value      float64 `json:"value"`
	Fired      int64   `json:"fired"`
}

// History is the bounded time-series store. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type History struct {
	mu       sync.Mutex
	interval time.Duration
	slots    int
	tiers    []*historyTier
	alerts   []*alertState
	events   *EventLog
	onSample func()
	// prevCounters backs counter-rate computation (alert evaluation and
	// nothing else); nil until the first sample.
	prevCounters map[string]int64

	samplerMu sync.Mutex
	stop      chan struct{}
	done      chan struct{}
}

// NewHistory builds a store from cfg (zero fields take the defaults).
func NewHistory(cfg HistoryConfig) *History {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultHistoryInterval
	}
	if cfg.Slots <= 0 {
		cfg.Slots = DefaultHistorySlots
	}
	factors := cfg.Tiers
	if len(factors) == 0 {
		factors = defaultHistoryTiers
	}
	factors = append([]int(nil), factors...)
	sort.Ints(factors)
	h := &History{interval: cfg.Interval, slots: cfg.Slots}
	for _, f := range factors {
		if f < 1 {
			f = 1
		}
		h.tiers = append(h.tiers, &historyTier{
			factor: f,
			label:  resolutionLabel(time.Duration(f) * cfg.Interval),
			series: make(map[string]*series),
			acc:    make(map[string]*accum),
		})
	}
	return h
}

// resolutionLabel renders a tier's period compactly ("1s", "10s", "1m").
func resolutionLabel(d time.Duration) string {
	s := d.String()
	if strings.HasSuffix(s, "m0s") {
		s = strings.TrimSuffix(s, "0s")
	}
	if strings.HasSuffix(s, "h0m") {
		s = strings.TrimSuffix(s, "0m")
	}
	return s
}

// Interval returns the sampling period (0 on a nil store).
func (h *History) Interval() time.Duration {
	if h == nil {
		return 0
	}
	return h.interval
}

// WithEvents attaches the event log alert transitions are recorded into.
func (h *History) WithEvents(el *EventLog) *History {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	h.events = el
	h.mu.Unlock()
	return h
}

// AddRule registers a threshold alert rule.
func (h *History) AddRule(r AlertRule) {
	if h == nil {
		return
	}
	if r.Name == "" {
		forPart := ""
		if r.For > 0 {
			forPart = " for " + r.For.String()
		}
		r.Name = fmt.Sprintf("%s%c%g%s", r.Metric, r.Op, r.Threshold, forPart)
	}
	h.mu.Lock()
	h.alerts = append(h.alerts, &alertState{rule: r, state: AlertOK})
	h.mu.Unlock()
}

// OnSample registers a hook the sampler calls (outside the store lock)
// immediately before every sample — the serving plane refreshes its job
// and WAL gauges here so sampled values are never a tick stale.
func (h *History) OnSample(fn func()) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.onSample = fn
	h.mu.Unlock()
}

// Sample takes one sample of reg now: every counter and gauge is recorded
// verbatim, every histogram as <name>_count plus <name>_p50/_p95/_p99 in
// seconds. Alert rules evaluate against the same sample. Reading the
// registry is the only interaction — sampling never mutates it.
func (h *History) Sample(reg *Registry) {
	if h == nil {
		return
	}
	h.sampleAt(time.Now(), reg.Snapshot())
}

// sampleAt is Sample with an explicit clock, the deterministic seam the
// downsampling tests drive.
func (h *History) sampleAt(now time.Time, snap Snapshot) {
	if h == nil {
		return
	}
	ms := now.UnixMilli()
	vals := make(map[string]float64, len(snap.Counters)+len(snap.Gauges)+4*len(snap.Hists))
	h.mu.Lock()
	intervalSec := h.interval.Seconds()
	for name, v := range snap.Counters {
		vals[name] = float64(v)
	}
	for name, v := range snap.Gauges {
		vals[name] = v
	}
	for name, hs := range snap.Hists {
		vals[name+"_count"] = float64(hs.Count)
		vals[name+"_p50"] = hs.Quantile(0.50).Seconds()
		vals[name+"_p95"] = hs.Quantile(0.95).Seconds()
		vals[name+"_p99"] = hs.Quantile(0.99).Seconds()
	}
	for name, v := range vals {
		for _, t := range h.tiers {
			t.record(name, ms, v, h.slots)
		}
	}
	h.evalAlertsLocked(now, intervalSec, vals, snap)
	prev := make(map[string]int64, len(snap.Counters)+len(snap.Hists))
	for name, v := range snap.Counters {
		prev[name] = v
	}
	for name, hs := range snap.Hists {
		prev[name+"_count"] = hs.Count
	}
	h.prevCounters = prev
	events := h.events
	var fired, resolved []string
	for _, a := range h.alerts {
		switch {
		case a.state == AlertFiring && a.firedAt.Equal(now):
			fired = append(fired, fmt.Sprintf("alert=%s metric=%s value=%s",
				a.rule.Name, a.rule.Metric, trimAlertFloat(a.value)))
		case a.state == AlertOK && a.firedAt.Equal(now):
			resolved = append(resolved, fmt.Sprintf("alert=%s metric=%s value=%s",
				a.rule.Name, a.rule.Metric, trimAlertFloat(a.value)))
		}
	}
	h.mu.Unlock()
	// Emit outside the store lock: the event sink may do file I/O.
	for _, d := range fired {
		events.Emit(EvAlertFiring, "", d)
	}
	for _, d := range resolved {
		events.Emit(EvAlertResolved, "", d)
	}
}

// record folds one raw sample into the tier: factor-1 tiers store it
// directly, coarser tiers accumulate and flush the mean every factor
// samples, stamped with the last contributing sample's time.
func (t *historyTier) record(name string, ms int64, v float64, slots int) {
	if t.factor == 1 {
		t.seriesFor(name, slots).push(point{timeMs: ms, value: v})
		return
	}
	a := t.acc[name]
	if a == nil {
		a = &accum{}
		t.acc[name] = a
	}
	a.sum += v
	a.count++
	if a.count >= t.factor {
		t.seriesFor(name, slots).push(point{timeMs: ms, value: a.sum / float64(a.count)})
		a.sum, a.count = 0, 0
	}
}

func (t *historyTier) seriesFor(name string, slots int) *series {
	s := t.series[name]
	if s == nil {
		s = &series{pts: make([]point, slots)}
		t.series[name] = s
	}
	return s
}

// evalAlertsLocked advances every rule's state machine against this
// sample. Counter-family metrics (those present in prevCounters' domain)
// evaluate the per-second rate; everything else the sampled value. A rule
// whose metric is absent from the sample stays (or returns to) ok.
// Callers hold h.mu. Transitions are published by sampleAt afterwards.
func (h *History) evalAlertsLocked(now time.Time, intervalSec float64, vals map[string]float64, snap Snapshot) {
	for _, a := range h.alerts {
		v, ok := vals[a.rule.Metric]
		if ok {
			if prev, isCounter := h.counterPrev(a.rule.Metric, snap); isCounter {
				if h.prevCounters == nil {
					ok = false // no rate until a second sample exists
				} else if intervalSec > 0 {
					v = (v - float64(prev)) / intervalSec
				}
			}
		}
		a.value, a.hasVal = v, ok
		cond := ok && ((a.rule.Op == '>' && v > a.rule.Threshold) ||
			(a.rule.Op == '<' && v < a.rule.Threshold))
		switch {
		case cond && a.state == AlertOK:
			a.state, a.since = AlertPending, now
			fallthrough
		case cond && a.state == AlertPending:
			if now.Sub(a.since) >= a.rule.For {
				a.state = AlertFiring
				a.since = now
				a.fired++
				a.firedAt = now
			}
		case !cond && a.state == AlertFiring:
			a.state, a.since = AlertOK, time.Time{}
			a.firedAt = now // marks the resolve for sampleAt's emit pass
		case !cond && a.state == AlertPending:
			a.state, a.since = AlertOK, time.Time{}
		}
	}
}

// counterPrev reports whether metric is counter-like (a registry counter
// or a histogram _count series) and its previous sampled total.
func (h *History) counterPrev(metric string, snap Snapshot) (prev int64, isCounter bool) {
	if _, ok := snap.Counters[metric]; ok {
		return h.prevCounters[metric], true
	}
	if name, ok := strings.CutSuffix(metric, "_count"); ok {
		if _, isHist := snap.Hists[name]; isHist {
			return h.prevCounters[metric], true
		}
	}
	return 0, false
}

func trimAlertFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', 6, 64)
}

// Query returns the stored points of the named series (every series when
// name is empty) with TimeMs ≥ sinceMs, ordered by name, then resolution
// (finest first), then time. A nil store returns nil.
func (h *History) Query(name string, sinceMs int64) []HistoryPoint {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var names []string
	if name != "" {
		names = []string{name}
	} else {
		seen := make(map[string]bool)
		for _, t := range h.tiers {
			for n := range t.series {
				if !seen[n] {
					seen[n] = true
					names = append(names, n)
				}
			}
		}
		sort.Strings(names)
	}
	var out []HistoryPoint
	for _, n := range names {
		for _, t := range h.tiers {
			s := t.series[n]
			if s == nil {
				continue
			}
			s.each(func(p point) {
				if p.timeMs >= sinceMs {
					out = append(out, HistoryPoint{
						Name: n, TimeMs: p.timeMs, Value: p.value, Resolution: t.label,
					})
				}
			})
		}
	}
	return out
}

// Names returns the sampled series names, sorted.
func (h *History) Names() []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	seen := make(map[string]bool)
	var names []string
	for _, t := range h.tiers {
		for n := range t.series {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return names
}

// Resolutions returns the tier labels, finest first.
func (h *History) Resolutions() []string {
	if h == nil {
		return nil
	}
	out := make([]string, len(h.tiers))
	for i, t := range h.tiers {
		out[i] = t.label
	}
	return out
}

// Alerts returns every rule's current status, in registration order.
func (h *History) Alerts() []AlertStatus {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]AlertStatus, 0, len(h.alerts))
	for _, a := range h.alerts {
		st := AlertStatus{
			Name:       a.rule.Name,
			Metric:     a.rule.Metric,
			Op:         string(a.rule.Op),
			Threshold:  a.rule.Threshold,
			ForSeconds: a.rule.For.Seconds(),
			State:      a.state,
			Value:      a.value,
			Fired:      a.fired,
		}
		if !a.since.IsZero() {
			st.SinceMs = a.since.UnixMilli()
		}
		out = append(out, st)
	}
	return out
}

// Start launches the sampler goroutine: one sample of reg every interval,
// preceded by the OnSample hook. It samples once synchronously so series
// exist immediately. Start on an already-started store is a no-op; Stop
// halts the goroutine and waits for it.
func (h *History) Start(reg *Registry) {
	if h == nil {
		return
	}
	h.samplerMu.Lock()
	defer h.samplerMu.Unlock()
	if h.stop != nil {
		return
	}
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
	h.hookAndSample(reg)
	go func(stop, done chan struct{}) {
		defer close(done)
		tick := time.NewTicker(h.interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				h.hookAndSample(reg)
			}
		}
	}(h.stop, h.done)
}

func (h *History) hookAndSample(reg *Registry) {
	h.mu.Lock()
	hook := h.onSample
	h.mu.Unlock()
	if hook != nil {
		hook()
	}
	h.Sample(reg)
}

// Stop halts the sampler goroutine and waits for it to exit. Safe on a
// nil or never-started store, and idempotent.
func (h *History) Stop() {
	if h == nil {
		return
	}
	h.samplerMu.Lock()
	defer h.samplerMu.Unlock()
	if h.stop == nil {
		return
	}
	close(h.stop)
	<-h.done
	h.stop, h.done = nil, nil
}
