package obs

import (
	"bufio"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the exact text exposition output for a
// small registry: sorted families, the corgipile_ namespace, counters then
// gauges then histograms-as-summaries.
func TestWritePrometheusGolden(t *testing.T) {
	r := New()
	r.Add(IOReadOps, 7)
	r.Add(SGDTuples, 3)
	r.SetGauge(SGDLoss, 1.5)
	r.Observe(SpanEpoch, time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE corgipile_io_read_ops counter
corgipile_io_read_ops 7
# TYPE corgipile_sgd_tuples counter
corgipile_sgd_tuples 3
# TYPE corgipile_sgd_loss gauge
corgipile_sgd_loss 1.5
# TYPE corgipile_epoch_seconds summary
corgipile_epoch_seconds{quantile="0.5"} 0.001
corgipile_epoch_seconds{quantile="0.95"} 0.001
corgipile_epoch_seconds{quantile="0.99"} 0.001
corgipile_epoch_seconds_sum 0.001
corgipile_epoch_seconds_count 1
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil registry rendered %q", b.String())
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"io.read.ops":            "corgipile_io_read_ops",
		"runtime.gc.pause_p99_s": "corgipile_runtime_gc_pause_p99_s",
		"a-b c":                  "corgipile_a_b_c",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestQuantileEdges(t *testing.T) {
	var empty HistSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	h := HistSnapshot{Count: 3, Min: 5, Max: 40}
	h.Buckets[3] = 2 // [4, 8)
	h.Buckets[6] = 1 // [32, 64)
	if q := h.Quantile(0); q != 5 {
		t.Fatalf("q=0 should clamp to Min: got %v", q)
	}
	if q := h.Quantile(1); q != 40 {
		t.Fatalf("q=1 should clamp to Max: got %v", q)
	}
}

// TestQuantileTwoModes checks the nearest-rank walk over a bimodal
// histogram: 90 fast observations around 1ns, 10 slow around 1.5µs.
func TestQuantileTwoModes(t *testing.T) {
	h := HistSnapshot{Count: 100, Min: 1, Max: 1500}
	h.Buckets[1] = 90  // [1, 2) ns
	h.Buckets[11] = 10 // [1024, 2048) ns
	p50 := h.Quantile(0.5)
	p95 := h.Quantile(0.95)
	p99 := h.Quantile(0.99)
	if p50 < 1 || p50 >= 2 {
		t.Fatalf("p50 = %v, want in the fast mode [1ns, 2ns)", p50)
	}
	if p95 < 1024 || p95 > 1500 {
		t.Fatalf("p95 = %v, want in the slow mode [1024ns, Max]", p95)
	}
	if p99 < p95 || p99 > 1500 {
		t.Fatalf("p99 = %v, want >= p95 and clamped to Max", p99)
	}
}

// TestQuantileMonotone feeds real observations and checks ordering and
// envelope clamping of the estimates.
func TestQuantileMonotone(t *testing.T) {
	r := New()
	for i := 1; i <= 1000; i++ {
		r.Observe("h", time.Duration(i)*time.Microsecond)
	}
	h := r.Snapshot().Hists["h"]
	last := time.Duration(0)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		est := h.Quantile(q)
		if est < last {
			t.Fatalf("quantile %g = %v < previous %v; not monotone", q, est, last)
		}
		if est < h.Min || est > h.Max {
			t.Fatalf("quantile %g = %v outside [%v, %v]", q, est, h.Min, h.Max)
		}
		last = est
	}
	// p50 of a uniform 1..1000µs spread sits within a power-of-two bucket
	// of the true median.
	if p50 := h.Quantile(0.5); p50 < 250*time.Microsecond || p50 > time.Millisecond {
		t.Fatalf("p50 = %v, want within a bucket of 500µs", p50)
	}
}

// TestLiveGaugeGating is the trace-purity core: SetLiveGauge must record
// nothing until a telemetry server enables live mode.
func TestLiveGaugeGating(t *testing.T) {
	r := New()
	r.SetLiveGauge(ShuffleBufferTuples, 42)
	if r.Live() {
		t.Fatal("fresh registry must not be live")
	}
	if v := r.Gauge(ShuffleBufferTuples); v != 0 {
		t.Fatalf("passive registry recorded live gauge: %v", v)
	}
	if _, ok := r.Snapshot().Gauges[ShuffleBufferTuples]; ok {
		t.Fatal("passive snapshot contains the live gauge key")
	}
	r.EnableLive()
	r.SetLiveGauge(ShuffleBufferTuples, 42)
	if v := r.Gauge(ShuffleBufferTuples); v != 42 {
		t.Fatalf("live gauge not recorded after EnableLive: %v", v)
	}
}

func TestFillFromRegistry(t *testing.T) {
	r := New()
	r.EnableLive()
	r.SetLiveGauge(ShuffleBufferTuples, 128)
	r.SetLiveGauge(ShuffleBufferOccupancy, 0.5)
	r.Add(StorageRetries, 3)
	r.Add(DistWorkerCrashes, 1)
	r.Add(IOReadOps, 99) // not a fault counter; must not be folded in

	var st RunStatus
	st.FillFromRegistry(r)
	if st.BufferTuples != 128 || st.BufferOccupancy != 0.5 {
		t.Fatalf("buffer gauges not folded: %+v", st)
	}
	if len(st.Faults) != 2 || st.Faults[StorageRetries] != 3 || st.Faults[DistWorkerCrashes] != 1 {
		t.Fatalf("fault counters wrong: %v", st.Faults)
	}

	var clean RunStatus
	clean.FillFromRegistry(New())
	if clean.Faults != nil {
		t.Fatalf("zero counters must not allocate a fault map: %v", clean.Faults)
	}
	clean.FillFromRegistry(nil) // must not panic
}

func TestRunFeedPubSub(t *testing.T) {
	f := NewRunFeed()
	ch, cancel := f.Subscribe()
	f.Publish(RunStatus{Epoch: 1, Loss: 0.5})
	select {
	case msg := <-ch:
		if !strings.Contains(string(msg), `"epoch":1`) {
			t.Fatalf("unexpected payload %s", msg)
		}
	case <-time.After(time.Second):
		t.Fatal("no update delivered")
	}
	st, seq := f.Status()
	if st.Epoch != 1 || seq != 1 {
		t.Fatalf("status = %+v seq=%d", st, seq)
	}
	cancel()
	cancel() // idempotent
	if _, ok := <-ch; ok {
		t.Fatal("channel still open after cancel")
	}

	// Slow subscribers drop updates instead of blocking Publish.
	slow, slowCancel := f.Subscribe()
	defer slowCancel()
	for i := 0; i < 100; i++ {
		f.Publish(RunStatus{Epoch: i})
	}
	if n := len(slow); n > cap(slow) {
		t.Fatalf("subscriber buffered %d > cap %d", n, cap(slow))
	}

	f.Close()
	if _, ok := <-slow; ok {
		// Drain: channel holds buffered updates, then closes.
		for range slow {
		}
	}
	late, _ := f.Subscribe()
	if _, ok := <-late; ok {
		t.Fatal("Subscribe after Close must return a closed channel")
	}

	// Nil feed: everything is a safe no-op.
	var nilFeed *RunFeed
	nilFeed.Publish(RunStatus{})
	nilFeed.Close()
	nch, ncancel := nilFeed.Subscribe()
	ncancel()
	if _, ok := <-nch; ok {
		t.Fatal("nil feed Subscribe must return a closed channel")
	}
}

// startServer boots a telemetry server on a free port with the runtime
// sampler disabled (deterministic gauge set) and registers cleanup.
func startServer(t *testing.T, reg *Registry, feed *RunFeed) *Server {
	t.Helper()
	srv, err := Serve(ServeConfig{Addr: "127.0.0.1:0", Registry: reg, Feed: feed, SampleEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServeEndpoints(t *testing.T) {
	reg := New()
	reg.Add(IOReadOps, 5)
	feed := NewRunFeed()
	srv := startServer(t, reg, feed)
	if !reg.Live() {
		t.Fatal("Serve must enable the registry's live mode")
	}

	code, body, hdr := get(t, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "corgipile_io_read_ops 5") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	feed.Publish(RunStatus{Run: "test", Epoch: 2, Loss: 0.25})
	code, body, hdr = get(t, srv.URL()+"/run")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("/run status %d type %q", code, hdr.Get("Content-Type"))
	}
	for _, want := range []string{`"run": "test"`, `"epoch": 2`, `"updates": 1`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/run missing %s:\n%s", want, body)
		}
	}

	code, body, _ = get(t, srv.URL()+"/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index status %d body %q", code, body)
	}
	if code, _, _ = get(t, srv.URL()+"/nosuch"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", code)
	}
	// pprof index is mounted.
	if code, _, _ = get(t, srv.URL()+"/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

func TestServeWithoutFeed(t *testing.T) {
	srv := startServer(t, New(), nil)
	if code, _, _ := get(t, srv.URL()+"/run"); code != http.StatusNotFound {
		t.Fatalf("/run without feed: status %d, want 404", code)
	}
}

// TestSSEShutdownNoLeak opens an SSE stream, receives one event, shuts the
// server down mid-stream, and verifies the stream terminates and no
// goroutines are left behind.
func TestSSEShutdownNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	feed := NewRunFeed()
	srv, err := Serve(ServeConfig{Addr: "127.0.0.1:0", Registry: New(), Feed: feed, SampleEvery: -1})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL() + "/run?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	feed.Publish(RunStatus{Epoch: 1, Loss: 0.9})
	rd := bufio.NewReader(resp.Body)
	line, err := rd.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "data: ") {
		t.Fatalf("first SSE line %q, err %v", line, err)
	}
	if !strings.Contains(line, `"epoch":1`) {
		t.Fatalf("SSE payload %q", line)
	}

	// Shut down while the stream is open: the handler must return (the
	// feed closes its subscriber channel) and the body must hit EOF.
	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, rd)
		done <- err
	}()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream did not terminate after server Close")
	}
	resp.Body.Close()
	srv.Close() // double Close is safe

	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after shutdown", before, runtime.NumGoroutine())
}

// TestConcurrentScrapeDuringRun hammers the registry and feed from writer
// goroutines while scraping /metrics and WritePrometheus concurrently —
// meaningful under -race.
func TestConcurrentScrapeDuringRun(t *testing.T) {
	reg := New()
	feed := NewRunFeed()
	srv := startServer(t, reg, feed)

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				reg.Inc(SGDTuples)
				reg.Observe(SpanEpoch, time.Duration(i%1000)*time.Microsecond)
				reg.SetLiveGauge(ShuffleBufferOccupancy, float64(i%100)/100)
				feed.Publish(RunStatus{Epoch: i, Loss: 1 / float64(i+1)})
			}
		}(w)
	}

	var scrapers sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 25; i++ {
				if err := reg.WritePrometheus(io.Discard); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				if code, body, _ := get(t, srv.URL()+"/metrics"); code != http.StatusOK || body == "" {
					t.Errorf("scrape %d: status %d", i, code)
					return
				}
				if code, _, _ := get(t, srv.URL()+"/run"); code != http.StatusOK {
					t.Errorf("run %d: bad status", i)
					return
				}
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	writers.Wait()
}

func TestRuntimeSamplerRecords(t *testing.T) {
	reg := New()
	s := StartRuntimeSampler(reg, time.Hour) // one synchronous sample is enough
	defer s.Stop()
	if g := reg.Gauge(RuntimeGoroutines); g < 1 {
		t.Fatalf("goroutine gauge %v, want >= 1", g)
	}
	if b := reg.Gauge(RuntimeTotalBytes); b <= 0 {
		t.Fatalf("total memory gauge %v, want > 0", b)
	}
	s.Stop()
	s.Stop() // idempotent
	var nilS *RuntimeSampler
	nilS.Stop() // nil-safe
}
