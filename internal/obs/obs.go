// Package obs is the cross-layer observability subsystem: a registry of
// named counters, gauges, and duration histograms, a lightweight span API,
// and two exporters (a JSONL event stream and a human-readable epoch
// breakdown table).
//
// Every layer of the stack reports into one Registry — the simulated device
// (internal/iosim) its bytes, seeks, and cache hits; the shuffling
// strategies (internal/shuffle) their buffer refills and fill/consume
// times; the training loop (internal/core, internal/executor) its tuples,
// gradient-compute time, and per-epoch loss. The paper's entire evaluation
// rests on decomposing epoch time into I/O wait vs. shuffle vs. gradient
// compute (Figures 7–14); this package makes that decomposition available
// to every benchmark and to library users.
//
// Time can be either real or simulated: spans are measured on a Clock,
// which *iosim.Clock satisfies (virtual time) and WallClock adapts (real
// time). All Registry methods are safe for concurrent use and are no-ops
// on a nil *Registry, so instrumented components need no conditionals.
//
// The package depends only on the standard library and internal/stats
// (itself dependency-free), so any layer may import it without cycles.
package obs

import (
	"math/bits"
	"sync"
	"time"
)

// Clock is the minimal time source spans are measured on. *iosim.Clock
// satisfies it with simulated time; WallClock adapts real time.
type Clock interface {
	Now() time.Duration
}

// WallClock measures real elapsed time since its construction.
type WallClock struct {
	base time.Time
}

// NewWallClock returns a wall clock starting now.
func NewWallClock() *WallClock { return &WallClock{base: time.Now()} }

// Now implements Clock.
func (w *WallClock) Now() time.Duration { return time.Since(w.base) }

// Well-known metric names. Components across the stack report under these
// keys so that exporters (and Snapshot deltas) can assemble a per-epoch
// breakdown without knowing who produced which number.
const (
	// Device layer (internal/iosim). Counters except where noted.
	IOReadOps       = "io.read.ops"
	IOReadBytes     = "io.read.bytes"
	IOWriteOps      = "io.write.ops"
	IOWriteBytes    = "io.write.bytes"
	IOSeeks         = "io.read.seeks"  // read accesses that paid a seek
	IOWriteSeeks    = "io.write.seeks" // write accesses that paid a seek
	IOCacheHitBytes = "io.cache.hit_bytes"
	IOTimeNanos     = "io.time_ns" // total simulated device time, ns

	// Fault-injection and resilience layers (internal/iosim FaultPlan,
	// internal/shuffle ResilientSource).
	IOFaultOps           = "io.fault.transient"        // injected transient read errors
	IOStragglerOps       = "io.fault.stragglers"       // reads that paid a latency spike
	StorageRetries       = "storage.retry.attempts"    // block-read retry attempts
	StorageBackoffNanos  = "storage.retry.backoff_ns"  // simulated backoff time, ns
	StorageSkippedBlocks = "storage.quarantine.blocks" // blocks quarantined by SkipCorrupt
	StorageSkippedTuples = "storage.quarantine.tuples" // tuples lost to quarantined blocks
	DistWorkerCrashes    = "dist.worker.crashes"       // injected worker crashes absorbed

	// Distributed layer (internal/dist). Rejoins count workers that came
	// back at an epoch boundary after crashing in a previous epoch.
	DistWorkerRejoins = "dist.worker.rejoins"

	// Shuffle layer (internal/shuffle, executor.TupleShuffleOp).
	ShuffleRefills      = "shuffle.refills"    // buffer refill operations
	ShuffleBlocks       = "shuffle.blocks"     // blocks pulled into buffers
	ShuffleFillNanos    = "shuffle.fill_ns"    // time spent filling buffers
	ShuffleConsumeNanos = "shuffle.consume_ns" // time consumers spent draining

	// Live-only gauges (recorded via SetLiveGauge, so passive traces stay
	// byte-identical when no telemetry server is attached).
	ShuffleBufferTuples    = "shuffle.buffer.tuples"    // tuples in the shuffle buffer after the last refill
	ShuffleBufferOccupancy = "shuffle.buffer.occupancy" // filled fraction of the buffer budget

	// Convergence diagnostics (internal/core, enabled via RunConfig.Diag).
	SGDGradNorm   = "sgd.grad_norm"   // gauge: last epoch's RMS per-step gradient norm
	SGDUpdateNorm = "sgd.update_norm" // gauge: last epoch's weight-delta L2 norm
	SGDLossDelta  = "sgd.loss_delta"  // gauge: previous epoch loss minus last epoch loss

	// Training layer (internal/core, executor.SGDOp, ml.Trainer).
	SGDTuples    = "sgd.tuples"
	SGDBatches   = "sgd.batches" // optimizer steps taken
	SGDGradNanos = "sgd.grad_ns" // simulated gradient-compute time, ns
	SGDLoss      = "sgd.loss"    // gauge: last epoch's mean streaming loss

	// Durability layer (internal/storage WAL, internal/db recovery).
	WALAppends         = "wal.appends"                // records appended
	WALAppendBytes     = "wal.append_bytes"           // framed bytes appended
	WALSyncs           = "wal.syncs"                  // explicit fsyncs
	WALReplayRecords   = "wal.replay.records"         // records replayed at recovery
	WALReplayTruncated = "wal.replay.truncated_bytes" // torn-tail bytes discarded

	// Replication layer (internal/repl). The primary exports the publish
	// counters and the aggregate lag gauges (worst replica); a replica
	// exports the apply counters and its own lag against the primary's
	// heartbeat frontier.
	ReplPublishRecords = "repl.publish.records" // records published to the stream
	ReplPublishBytes   = "repl.publish.bytes"   // framed bytes published
	ReplReplicas       = "repl.replicas"        // gauge: connected replicas
	ReplLagLSN         = "repl.lag_lsn"         // gauge: primary LSN minus slowest applied LSN
	ReplLagBytes       = "repl.lag_bytes"       // gauge: ring bytes the slowest replica hasn't acked
	ReplSnapshots      = "repl.snapshots"       // snapshot catch-ups served
	ReplSheds          = "repl.sheds"           // slow subscribers shed to resync
	ReplHeartbeats     = "repl.heartbeats"      // heartbeat frames sent
	ReplReconnects     = "repl.reconnects"      // replica reconnect attempts after a drop
	ReplApplyRecords   = "repl.apply.records"   // records applied by the replica
	ReplAppliedLSN     = "repl.applied_lsn"     // gauge: replica's durable applied LSN

	// Serving-plane durability (internal/serve).
	ServeCheckpoints = "serve.checkpoints" // scheduled auto-checkpoint compactions

	// Serving-plane latency and load (internal/serve). ServePredict is a
	// duration histogram of wire PREDICT statements, so the history plane
	// samples serve.predict_p50/_p95/_p99 series; the job gauges are
	// refreshed by the history sampler's OnSample hook.
	ServePredict     = "serve.predict"      // histogram: wire PREDICT latency
	ServeJobsRunning = "serve.jobs_running" // gauge: jobs currently executing
	ServeJobsQueued  = "serve.jobs_queued"  // gauge: jobs waiting for a worker

	// WAL visibility gauges, refreshed by the serve checkpoint loop so
	// compaction behavior shows up on /metrics without SQL access.
	WALSizeBytes     = "wal.size_bytes"             // gauge: live WAL file size
	WALLastLSN       = "wal.last_lsn"               // gauge: last appended LSN
	WALCheckpointAge = "wal.checkpoint_age_seconds" // gauge: age of the newest checkpoint

	// Span names (duration histograms under the same keys).
	SpanEpoch    = "epoch"
	SpanRefill   = "shuffle.refill"
	SpanRecovery = "wal.recovery"
)

// histBuckets is the number of log2(ns) histogram buckets: bucket i counts
// observations with 2^i ≤ ns < 2^(i+1) (bucket 0 includes sub-ns).
const histBuckets = 40

// hist is a duration histogram with log2 buckets.
type hist struct {
	count    int64
	sum      time.Duration
	min, max time.Duration
	buckets  [histBuckets]int64
}

func (h *hist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	b := bits.Len64(uint64(d))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b]++
}

// Registry is a lock-protected collection of named counters, gauges, and
// duration histograms, plus the span/event machinery. The zero value is not
// usable; construct with New. All methods are no-ops on a nil receiver.
type Registry struct {
	mu       sync.Mutex
	clock    Clock
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*hist
	spanSeq  int64
	spans    []int64 // stack of active span ids (parent inference)
	live     bool
	// peaks, when EnablePeaks armed it, records the high-water mark of
	// every gauge set since — including live-only gauges that never land
	// in the gauges map outside live mode. Peaks are read through Peak
	// only and never appear in Snapshot or the exporters, so arming them
	// cannot perturb traces or scrapes. The serving plane arms them on
	// each job's private registry for JobStats' peak buffer occupancy.
	peaks map[string]float64

	sink *jsonlSink
}

// New returns an empty registry measuring spans on a fresh wall clock.
func New() *Registry {
	return &Registry{
		clock:    NewWallClock(),
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*hist),
	}
}

// WithClock switches the registry's span time source (e.g. to the
// simulation's *iosim.Clock) and returns the registry.
func (r *Registry) WithClock(c Clock) *Registry {
	if r == nil || c == nil {
		return r
	}
	r.mu.Lock()
	r.clock = c
	r.mu.Unlock()
	return r
}

// now reports the registry clock's current time.
func (r *Registry) now() time.Duration {
	r.mu.Lock()
	c := r.clock
	r.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Now()
}

// Add increments the named counter by delta.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Inc increments the named counter by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// AddDuration adds d (in nanoseconds) to the named counter. By convention
// such counters carry a "_ns" suffix.
func (r *Registry) AddDuration(name string, d time.Duration) {
	if d < 0 {
		return
	}
	r.Add(name, int64(d))
}

// Counter returns the named counter's current value.
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// SetGauge sets the named gauge.
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.trackPeakLocked(name, v)
	r.mu.Unlock()
}

// EnablePeaks arms gauge high-water-mark tracking (see Peak).
func (r *Registry) EnablePeaks() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.peaks == nil {
		r.peaks = make(map[string]float64)
	}
	r.mu.Unlock()
}

// Peak returns the highest value the named gauge was set to since
// EnablePeaks, including SetLiveGauge values outside live mode (the gauge
// itself stays unrecorded then — only the peak is kept). Zero when peaks
// were never armed or the gauge never set.
func (r *Registry) Peak(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.peaks[name]
}

// trackPeakLocked folds v into the gauge's high-water mark when peak
// tracking is armed. Callers hold r.mu.
func (r *Registry) trackPeakLocked(name string, v float64) {
	if r.peaks == nil {
		return
	}
	if cur, ok := r.peaks[name]; !ok || v > cur {
		r.peaks[name] = v
	}
}

// DeleteGauge removes the named gauge from the registry entirely, so it
// stops appearing in snapshots and Prometheus exposition. A promoted
// replica uses this to retire its replication-lag gauges — a stale lag
// reading on a server that no longer replicates would mislead scrapers.
func (r *Registry) DeleteGauge(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.gauges, name)
	r.mu.Unlock()
}

// EnableLive switches the registry into live-telemetry mode: SetLiveGauge
// calls start recording. The telemetry server (Serve) enables it on the
// registry it exposes; passive runs never enter live mode, which keeps
// their JSONL traces and snapshot exports byte-identical.
func (r *Registry) EnableLive() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.live = true
	r.mu.Unlock()
}

// Live reports whether live-telemetry mode is enabled.
func (r *Registry) Live() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.live
}

// SetLiveGauge sets the named gauge only in live mode. Components on hot
// paths use it for metrics that only a live scraper consumes (buffer
// occupancy, runtime stats), so that attaching a passive trace sink never
// changes the set of exported metrics.
func (r *Registry) SetLiveGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.live {
		r.gauges[name] = v
	}
	r.trackPeakLocked(name, v)
	r.mu.Unlock()
}

// Gauge returns the named gauge's current value.
func (r *Registry) Gauge(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Observe records one duration into the named histogram.
func (r *Registry) Observe(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &hist{}
		r.hists[name] = h
	}
	h.observe(d)
	r.mu.Unlock()
}

// HistSnapshot is an immutable copy of one histogram's state.
type HistSnapshot struct {
	Count    int64
	Sum      time.Duration
	Min, Max time.Duration
	// Buckets[i] counts observations with 2^i ≤ ns < 2^(i+1).
	Buckets [histBuckets]int64
}

// Mean returns the mean observed duration (0 when empty).
func (h HistSnapshot) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Snapshot is a point-in-time copy of every metric in a registry. Deltas
// between two snapshots give per-interval (e.g. per-epoch) metrics.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]float64
	Hists    map[string]HistSnapshot
}

// Snapshot copies the registry's current state. A nil registry yields an
// empty (but usable) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters: make(map[string]int64),
		Gauges:   make(map[string]float64),
		Hists:    make(map[string]HistSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	for k, h := range r.hists {
		s.Hists[k] = HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, Buckets: h.buckets}
	}
	return s
}

// DeltaFrom returns the change from prev to s: counters and histogram
// count/sum subtract; gauges and histogram min/max keep s's values.
func (s Snapshot) DeltaFrom(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters: make(map[string]int64, len(s.Counters)),
		Gauges:   make(map[string]float64, len(s.Gauges)),
		Hists:    make(map[string]HistSnapshot, len(s.Hists)),
	}
	for k, v := range s.Counters {
		d.Counters[k] = v - prev.Counters[k]
	}
	for k, v := range s.Gauges {
		d.Gauges[k] = v
	}
	for k, h := range s.Hists {
		p := prev.Hists[k]
		dh := HistSnapshot{Count: h.Count - p.Count, Sum: h.Sum - p.Sum, Min: h.Min, Max: h.Max}
		for i := range h.Buckets {
			dh.Buckets[i] = h.Buckets[i] - p.Buckets[i]
		}
		d.Hists[k] = dh
	}
	return d
}

// CounterDur reads a "_ns" counter from a snapshot as a duration.
func (s Snapshot) CounterDur(name string) time.Duration {
	return time.Duration(s.Counters[name])
}
