package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRotatingFileRollsOver(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	rf, err := NewRotatingFile(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	line := strings.Repeat("x", 29) + "\n" // 30 bytes: two fit under the cap, the third rotates
	for i := 0; i < 5; i++ {
		if _, err := rf.Write([]byte(line)); err != nil {
			t.Fatal(err)
		}
	}
	live, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	old, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatalf("no rollover file: %v", err)
	}
	// Five 30-byte writes under a 64-byte cap roll over twice (after the
	// 2nd and 4th line); the second rollover replaces FILE.1, so the end
	// state is two full lines aside and the 5th line live. Every
	// generation ends on a line boundary (the size check runs before the
	// write).
	if len(old) != 2*len(line) || len(live) != len(line) {
		t.Fatalf("live %d + rolled %d bytes, want %d + %d", len(live), len(old), len(line), 2*len(line))
	}
	for name, b := range map[string][]byte{"live": live, "rolled": old} {
		if len(b) == 0 || b[len(b)-1] != '\n' {
			t.Fatalf("%s generation does not end on a line boundary", name)
		}
	}
	if len(old) > 64 {
		t.Fatalf("rolled generation is %d bytes, past the 64-byte cap", len(old))
	}
}

func TestRotatingFileKeepsTwoGenerations(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ev.jsonl")
	rf, err := NewRotatingFile(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	for i := 0; i < 20; i++ {
		if _, err := rf.Write([]byte("0123456789ABCDE\n")); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("dir has %v, want exactly FILE and FILE.1", names)
	}
}

func TestRotatingFileOversizedLineStillLands(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.jsonl")
	rf, err := NewRotatingFile(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	big := strings.Repeat("y", 32) + "\n"
	if _, err := rf.Write([]byte(big)); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != big {
		t.Fatalf("oversized line mangled: %d bytes on disk", len(b))
	}
}

func TestRotatingFileResumesExistingSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.jsonl")
	if err := os.WriteFile(path, []byte("previous-run-line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rf, err := NewRotatingFile(path, 24)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	// 18 bytes already on disk: a 10-byte write crosses the 24-byte cap,
	// so the restart-surviving contents roll to .1 rather than growing.
	if _, err := rf.Write([]byte("new-line!\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("pre-existing bytes not counted toward the cap: %v", err)
	}
}

func TestRotatingFileRejectsNonPositiveCap(t *testing.T) {
	if _, err := NewRotatingFile(filepath.Join(t.TempDir(), "x"), 0); err == nil {
		t.Fatal("cap 0 accepted")
	}
}

func TestEventLogStreamsToRotatingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.jsonl")
	// Cap sized so the 10 events rotate exactly once: every line survives,
	// split across the two generations, and none is torn mid-line.
	rf, err := NewRotatingFile(path, 768)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	el := NewEventLog(8).StreamTo(rf)
	for i := 0; i < 10; i++ {
		el.Emit("test.event", "t1", "n=0123456789")
	}
	live, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	old, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatalf("sink never rotated: %v", err)
	}
	total := 0
	for _, b := range [][]byte{old, live} {
		for _, line := range strings.Split(strings.TrimRight(string(b), "\n"), "\n") {
			if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
				t.Fatalf("torn JSONL line across rotation: %q", line)
			}
			total++
		}
	}
	if total != 10 {
		t.Fatalf("JSONL sink kept %d lines across generations, want 10", total)
	}
}
