package obs

import (
	"fmt"
	"os"
	"sync"
)

// RotatingFile is a size-capped append writer for long-lived JSONL sinks
// (the -events FILE sink): when a write would grow the file past the cap,
// the current file is renamed to FILE.1 (replacing any previous rollover)
// and a fresh FILE is started. At most two generations exist, so a
// long-lived server's event log is bounded by ~2× the cap.
//
// Rotation costs one rename plus one reopen at the cap boundary — the
// same cost class as the buffered write the sink was already doing, so
// event recording stays as non-blocking as the plain-file sink. Lines are
// never split across generations: the size check runs before the write,
// so FILE.1 always ends on a line boundary.
type RotatingFile struct {
	mu   sync.Mutex
	path string
	max  int64
	f    *os.File
	size int64
}

// NewRotatingFile opens (or appends to) path with a rollover cap of
// maxBytes. A cap ≤ 0 is an error — use os.OpenFile for an unbounded
// sink.
func NewRotatingFile(path string, maxBytes int64) (*RotatingFile, error) {
	if maxBytes <= 0 {
		return nil, fmt.Errorf("obs: rotating file needs a positive size cap, got %d", maxBytes)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	size := int64(0)
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	return &RotatingFile{path: path, max: maxBytes, f: f, size: size}, nil
}

// Write appends p, rolling over to a fresh file first when the append
// would cross the cap (unless the file is empty: one oversized line still
// lands somewhere rather than vanishing).
func (r *RotatingFile) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.size > 0 && r.size+int64(len(p)) > r.max {
		if err := r.rotateLocked(); err != nil {
			return 0, err
		}
	}
	n, err := r.f.Write(p)
	r.size += int64(n)
	return n, err
}

// rotateLocked renames the live file aside and starts a fresh one.
func (r *RotatingFile) rotateLocked() error {
	if err := r.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(r.path, r.path+".1"); err != nil {
		return err
	}
	f, err := os.OpenFile(r.path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	r.f, r.size = f, 0
	return nil
}

// Close closes the live file. Safe to call once; writes after Close fail.
func (r *RotatingFile) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.f.Close()
}
