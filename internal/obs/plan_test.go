package obs

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

func samplePlan() *PlanStats {
	return &PlanStats{
		Name: "SGD", Detail: "model=svm optimizer=sgd epochs=2 batch=1",
		Rows: 400, Loops: 2, Epoch: 2,
		SelfSimSeconds: 0.25, TotalSimSeconds: 1.0,
		Children: []*PlanStats{{
			Name: "TupleShuffle", Detail: "buffer=20 tuples ≈ 10%, double-buffer",
			Rows: 400, Loops: 2,
			SelfSimSeconds: 0.25, TotalSimSeconds: 0.75,
			BufferPeak: 20, BufferCap: 20,
			Children: []*PlanStats{{
				Name: "BlockShuffle", Detail: "blocks=10, reshuffled per epoch",
				Rows: 400, Loops: 2,
				SelfSimSeconds: 0.5, TotalSimSeconds: 0.5,
				BytesRead: 4096, CacheHitBytes: 1024, BlocksRead: 20,
			}},
		}},
	}
}

func TestPlanStatsTextModes(t *testing.T) {
	p := samplePlan()
	static := p.Text(false)
	want := "SGD (model=svm optimizer=sgd epochs=2 batch=1)\n" +
		"└─ TupleShuffle (buffer=20 tuples ≈ 10%, double-buffer)\n" +
		"   └─ BlockShuffle (blocks=10, reshuffled per epoch)\n"
	if static != want {
		t.Fatalf("static text:\n got: %q\nwant: %q", static, want)
	}
	analyzed := p.Text(true)
	for _, needle := range []string{
		"(actual: rows=400 loops=2", "self=250.00ms total=1.00s",
		"read=4.0KB cache_hit=1.0KB blocks=20", "buffer_peak=20/20",
	} {
		if !strings.Contains(analyzed, needle) {
			t.Fatalf("analyze text missing %q:\n%s", needle, analyzed)
		}
	}
	// The telescoping invariant holds on the sample by construction.
	if sum := p.SelfSimSum(); sum != p.TotalSimSeconds {
		t.Fatalf("SelfSimSum = %v, want %v", sum, p.TotalSimSeconds)
	}
	// Clone is deep: mutating the copy leaves the original alone.
	c := p.Clone()
	c.Children[0].Rows = 999
	if p.Children[0].Rows != 400 {
		t.Fatal("Clone shares child nodes")
	}
}

func TestRunFeedPlanTopic(t *testing.T) {
	f := NewRunFeed()
	ch, cancel := f.SubscribePlan()
	defer cancel()
	f.PublishPlan(samplePlan())
	select {
	case msg := <-ch:
		if !strings.Contains(string(msg), `"name":"SGD"`) {
			t.Fatalf("unexpected plan payload %s", msg)
		}
	case <-time.After(time.Second):
		t.Fatal("no plan update delivered")
	}
	p, seq := f.PlanStatus()
	if p == nil || p.Epoch != 2 || seq != 1 {
		t.Fatalf("PlanStatus = %+v seq=%d", p, seq)
	}

	// The run topic is independent: a plan publish does not wake /run
	// subscribers and vice versa.
	runCh, runCancel := f.Subscribe()
	defer runCancel()
	f.PublishPlan(samplePlan())
	select {
	case msg := <-runCh:
		t.Fatalf("plan publish leaked into the run topic: %s", msg)
	default:
	}

	// Close shuts the plan topic down alongside the run topic.
	f.Close()
	late, _ := f.SubscribePlan()
	if _, ok := <-late; ok {
		t.Fatal("SubscribePlan after Close must return a closed channel")
	}

	// Nil feed and nil plan are safe no-ops.
	var nilFeed *RunFeed
	nilFeed.PublishPlan(samplePlan())
	if p, seq := nilFeed.PlanStatus(); p != nil || seq != 0 {
		t.Fatal("nil feed PlanStatus should be empty")
	}
	NewRunFeed().PublishPlan(nil)
}

func TestServeRunPlan(t *testing.T) {
	feed := NewRunFeed()
	srv := startServer(t, New(), feed)

	if code, body, _ := get(t, srv.URL()+"/run/plan"); code != http.StatusNotFound ||
		!strings.Contains(body, "no plan published") {
		t.Fatalf("/run/plan before publish: status %d body %q", code, body)
	}

	feed.PublishPlan(samplePlan())
	code, body, _ := get(t, srv.URL()+"/run/plan")
	if code != http.StatusOK {
		t.Fatalf("/run/plan status %d", code)
	}
	for _, want := range []string{
		"epoch 2\n", "SGD (model=svm", "└─ TupleShuffle", "(actual: rows=400",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/run/plan missing %q:\n%s", want, body)
		}
	}

	code, body, hdr := get(t, srv.URL()+"/run/plan?format=json")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("/run/plan?format=json status %d type %q", code, hdr.Get("Content-Type"))
	}
	for _, want := range []string{`"name": "SGD"`, `"blocks_read": 20`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/run/plan json missing %s:\n%s", want, body)
		}
	}
}

func TestServeRunPlanWithoutFeed(t *testing.T) {
	srv := startServer(t, New(), nil)
	if code, _, _ := get(t, srv.URL()+"/run/plan"); code != http.StatusNotFound {
		t.Fatalf("/run/plan without feed: status %d, want 404", code)
	}
}

func TestServeRunPlanStream(t *testing.T) {
	feed := NewRunFeed()
	srv := startServer(t, New(), feed)
	feed.PublishPlan(samplePlan())

	resp, err := http.Get(srv.URL() + "/run/plan?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Fatalf("stream content type %q", ct)
	}
	buf := make([]byte, 4096)
	n, err := resp.Body.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	first := string(buf[:n])
	if !strings.HasPrefix(first, "data: ") || !strings.Contains(first, `"name":"SGD"`) {
		t.Fatalf("unexpected SSE frame %q", first)
	}
}
