package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// histClock feeds sampleAt a deterministic timeline.
type histClock struct {
	now  time.Time
	step time.Duration
}

func newHistClock(step time.Duration) *histClock {
	return &histClock{now: time.UnixMilli(1_700_000_000_000).UTC(), step: step}
}

// tick advances the clock one sampling interval and returns the new time.
func (c *histClock) tick() time.Time {
	c.now = c.now.Add(c.step)
	return c.now
}

func gaugeSnap(name string, v float64) Snapshot {
	return Snapshot{Gauges: map[string]float64{name: v}}
}

// pointsAt filters Query output to one resolution.
func pointsAt(h *History, name, resolution string) []HistoryPoint {
	var out []HistoryPoint
	for _, p := range h.Query(name, 0) {
		if p.Resolution == resolution {
			out = append(out, p)
		}
	}
	return out
}

func TestHistoryTierPromotion(t *testing.T) {
	h := NewHistory(HistoryConfig{Interval: time.Second, Slots: 64, Tiers: []int{1, 10}})
	clk := newHistClock(time.Second)
	// 25 samples with value = sample index: the 10x tier must hold the
	// means of samples 1..10 and 11..20 (5.5 and 15.5), each stamped with
	// its last contributing sample's time.
	for i := 1; i <= 25; i++ {
		h.sampleAt(clk.tick(), gaugeSnap("g", float64(i)))
	}
	raw := pointsAt(h, "g", "1s")
	if len(raw) != 25 {
		t.Fatalf("raw tier has %d points, want 25", len(raw))
	}
	coarse := pointsAt(h, "g", "10s")
	if len(coarse) != 2 {
		t.Fatalf("10s tier has %d points, want 2 (5 samples still accumulating)", len(coarse))
	}
	if coarse[0].Value != 5.5 || coarse[1].Value != 15.5 {
		t.Fatalf("10s tier means = %g, %g, want 5.5, 15.5", coarse[0].Value, coarse[1].Value)
	}
	if coarse[0].TimeMs != raw[9].TimeMs || coarse[1].TimeMs != raw[19].TimeMs {
		t.Fatalf("10s tier stamps %d/%d, want the 10th/20th sample times %d/%d",
			coarse[0].TimeMs, coarse[1].TimeMs, raw[9].TimeMs, raw[19].TimeMs)
	}
}

func TestHistoryDefaultTiers(t *testing.T) {
	h := NewHistory(HistoryConfig{})
	got := h.Resolutions()
	want := []string{"1s", "10s", "1m"}
	if len(got) != len(want) {
		t.Fatalf("resolutions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resolutions = %v, want %v", got, want)
		}
	}
	if h.Interval() != time.Second {
		t.Fatalf("default interval = %s, want 1s", h.Interval())
	}
}

func TestHistoryRingWraparound(t *testing.T) {
	const slots = 8
	h := NewHistory(HistoryConfig{Interval: time.Second, Slots: slots, Tiers: []int{1}})
	clk := newHistClock(time.Second)
	for i := 1; i <= 20; i++ {
		h.sampleAt(clk.tick(), gaugeSnap("g", float64(i)))
	}
	pts := pointsAt(h, "g", "1s")
	if len(pts) != slots {
		t.Fatalf("wrapped ring has %d points, want %d", len(pts), slots)
	}
	// Oldest-first iteration over the last 8 of 20 samples: 13..20.
	for i, p := range pts {
		if want := float64(13 + i); p.Value != want {
			t.Fatalf("point %d = %g, want %g (oldest-first after wrap)", i, p.Value, want)
		}
		if i > 0 && pts[i-1].TimeMs >= p.TimeMs {
			t.Fatalf("points not time-ordered after wrap: %d then %d", pts[i-1].TimeMs, p.TimeMs)
		}
	}
}

func TestHistorySinceWindow(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		h := NewHistory(HistoryConfig{Interval: time.Second, Slots: 8, Tiers: []int{1}})
		if pts := h.Query("g", 0); len(pts) != 0 {
			t.Fatalf("empty store returned %d points", len(pts))
		}
		if pts := h.Query("", time.Now().UnixMilli()); len(pts) != 0 {
			t.Fatalf("empty store with since returned %d points", len(pts))
		}
	})
	t.Run("partial", func(t *testing.T) {
		h := NewHistory(HistoryConfig{Interval: time.Second, Slots: 16, Tiers: []int{1}})
		clk := newHistClock(time.Second)
		var cut int64
		for i := 1; i <= 10; i++ {
			now := clk.tick()
			if i == 7 {
				cut = now.UnixMilli()
			}
			h.sampleAt(now, gaugeSnap("g", float64(i)))
		}
		pts := h.Query("g", cut)
		if len(pts) != 4 { // samples 7..10, boundary inclusive
			t.Fatalf("since-window returned %d points, want 4", len(pts))
		}
		if pts[0].Value != 7 {
			t.Fatalf("window starts at %g, want 7 (since is inclusive)", pts[0].Value)
		}
	})
	t.Run("wrapped", func(t *testing.T) {
		h := NewHistory(HistoryConfig{Interval: time.Second, Slots: 4, Tiers: []int{1}})
		clk := newHistClock(time.Second)
		var cut int64
		for i := 1; i <= 12; i++ {
			now := clk.tick()
			if i == 11 {
				cut = now.UnixMilli()
			}
			h.sampleAt(now, gaugeSnap("g", float64(i)))
		}
		pts := h.Query("g", cut)
		if len(pts) != 2 || pts[0].Value != 11 || pts[1].Value != 12 {
			t.Fatalf("wrapped since-window = %+v, want values 11, 12", pts)
		}
	})
}

func TestHistoryHistogramSeries(t *testing.T) {
	reg := New()
	for i := 1; i <= 100; i++ {
		reg.Observe("op", time.Duration(i)*time.Millisecond)
	}
	h := NewHistory(HistoryConfig{Interval: time.Second, Slots: 8, Tiers: []int{1}})
	h.sampleAt(newHistClock(time.Second).tick(), reg.Snapshot())
	names := h.Names()
	for _, want := range []string{"op_count", "op_p50", "op_p95", "op_p99"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("histogram series %q missing from %v", want, names)
		}
	}
	cnt := pointsAt(h, "op_count", "1s")
	if len(cnt) != 1 || cnt[0].Value != 100 {
		t.Fatalf("op_count = %+v, want one point of 100", cnt)
	}
	p95 := pointsAt(h, "op_p95", "1s")
	if len(p95) != 1 || p95[0].Value <= 0 || p95[0].Value > 1 {
		t.Fatalf("op_p95 = %+v, want one point in (0,1] seconds", p95)
	}
}

func TestParseAlertRule(t *testing.T) {
	r, err := ParseAlertRule("serve.predict_p95>0.5 for 30s")
	if err != nil {
		t.Fatal(err)
	}
	if r.Metric != "serve.predict_p95" || r.Op != '>' || r.Threshold != 0.5 || r.For != 30*time.Second {
		t.Fatalf("parsed %+v", r)
	}
	r, err = ParseAlertRule("repl.lag_lsn < 3")
	if err != nil {
		t.Fatal(err)
	}
	if r.Metric != "repl.lag_lsn" || r.Op != '<' || r.Threshold != 3 || r.For != 0 {
		t.Fatalf("parsed %+v", r)
	}
	for _, bad := range []string{"", "nometric", ">5", "m>", "m>x", "m>1 for eternity"} {
		if _, err := ParseAlertRule(bad); err == nil {
			t.Fatalf("ParseAlertRule(%q) accepted", bad)
		}
	}
}

func TestHistoryAlertFireResolve(t *testing.T) {
	el := NewEventLog(64)
	h := NewHistory(HistoryConfig{Interval: time.Second, Slots: 16, Tiers: []int{1}}).WithEvents(el)
	h.AddRule(AlertRule{Metric: "g", Op: '>', Threshold: 10, For: 2 * time.Second})
	clk := newHistClock(time.Second)

	step := func(v float64) AlertStatus {
		h.sampleAt(clk.tick(), gaugeSnap("g", v))
		return h.Alerts()[0]
	}
	if st := step(5); st.State != AlertOK {
		t.Fatalf("below threshold: state %s, want ok", st.State)
	}
	if st := step(20); st.State != AlertPending {
		t.Fatalf("first breach: state %s, want pending (for=2s)", st.State)
	}
	if st := step(20); st.State != AlertPending {
		t.Fatalf("1s held: state %s, want pending", st.State)
	}
	st := step(20) // held 2s — fires
	if st.State != AlertFiring || st.Fired != 1 {
		t.Fatalf("2s held: state %s fired %d, want firing/1", st.State, st.Fired)
	}
	if st := step(5); st.State != AlertOK {
		t.Fatalf("back below: state %s, want ok (resolved)", st.State)
	}
	var firing, resolved int
	for _, ev := range el.Events() {
		switch ev.Type {
		case EvAlertFiring:
			firing++
			if !strings.Contains(ev.Detail, "metric=g") {
				t.Fatalf("firing detail %q lacks metric", ev.Detail)
			}
		case EvAlertResolved:
			resolved++
		}
	}
	if firing != 1 || resolved != 1 {
		t.Fatalf("event log has %d firing / %d resolved, want 1/1", firing, resolved)
	}
}

func TestHistoryAlertPendingResetsBelowThreshold(t *testing.T) {
	h := NewHistory(HistoryConfig{Interval: time.Second, Slots: 16, Tiers: []int{1}})
	h.AddRule(AlertRule{Metric: "g", Op: '>', Threshold: 10, For: 3 * time.Second})
	clk := newHistClock(time.Second)
	h.sampleAt(clk.tick(), gaugeSnap("g", 20)) // pending
	h.sampleAt(clk.tick(), gaugeSnap("g", 5))  // drops out before firing
	if st := h.Alerts()[0]; st.State != AlertOK || st.Fired != 0 {
		t.Fatalf("state %s fired %d, want ok/0 (pending must reset)", st.State, st.Fired)
	}
}

func TestHistoryCounterAlertUsesRate(t *testing.T) {
	h := NewHistory(HistoryConfig{Interval: time.Second, Slots: 16, Tiers: []int{1}})
	// A cumulative counter alert evaluates the per-second delta, so it can
	// fire while traffic flows and resolve when it stops — a threshold on
	// the raw total would latch forever.
	h.AddRule(AlertRule{Metric: "c", Op: '>', Threshold: 50, For: 0})
	clk := newHistClock(time.Second)
	counterSnap := func(total int64) Snapshot {
		return Snapshot{Counters: map[string]int64{"c": total}}
	}
	h.sampleAt(clk.tick(), counterSnap(1000))
	if st := h.Alerts()[0]; st.State != AlertOK {
		t.Fatalf("first sample: state %s, want ok (no rate yet)", st.State)
	}
	h.sampleAt(clk.tick(), counterSnap(1200)) // +200/s
	if st := h.Alerts()[0]; st.State != AlertFiring || st.Value != 200 {
		t.Fatalf("rate 200/s: state %s value %g, want firing/200", st.State, st.Value)
	}
	h.sampleAt(clk.tick(), counterSnap(1210)) // +10/s
	if st := h.Alerts()[0]; st.State != AlertOK {
		t.Fatalf("rate 10/s: state %s, want ok (resolved on rate drop)", st.State)
	}
}

func TestHistoryNilSafe(t *testing.T) {
	var h *History
	h.Sample(New())
	h.sampleAt(time.Now(), Snapshot{})
	h.AddRule(AlertRule{Metric: "x", Op: '>'})
	h.OnSample(func() {})
	h.WithEvents(NewEventLog(1))
	h.Start(New())
	h.Stop()
	if h.Query("", 0) != nil || h.Names() != nil || h.Alerts() != nil || h.Resolutions() != nil {
		t.Fatal("nil History must answer empty")
	}
	if h.Interval() != 0 {
		t.Fatal("nil History interval must be 0")
	}
}

func TestHistorySamplerStartStopNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := New()
	reg.SetGauge("g", 1) // an empty registry samples no series at all
	for i := 0; i < 5; i++ {
		h := NewHistory(HistoryConfig{Interval: 10 * time.Millisecond, Slots: 8})
		h.Start(reg)
		h.Start(reg) // idempotent: no second goroutine
		time.Sleep(25 * time.Millisecond)
		h.Stop()
		h.Stop() // idempotent: no panic, no hang
		if len(h.Names()) == 0 {
			t.Fatal("sampler recorded nothing")
		}
	}
	// The goroutine count must return to baseline once samplers stop.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestHistorySamplerOnSampleHook(t *testing.T) {
	reg := New()
	h := NewHistory(HistoryConfig{Interval: time.Hour})
	calls := 0
	h.OnSample(func() { calls++; reg.SetGauge("hooked", float64(calls)) })
	h.Start(reg) // samples once synchronously
	defer h.Stop()
	if calls != 1 {
		t.Fatalf("OnSample ran %d times on Start, want 1", calls)
	}
	if pts := h.Query("hooked", 0); len(pts) != 1 || pts[0].Value != 1 {
		t.Fatalf("hook-set gauge not visible in the same sample: %+v", pts)
	}
}

func TestHistoryHTTPEndpoints(t *testing.T) {
	reg := New()
	reg.SetGauge("g", 42)
	h := NewHistory(HistoryConfig{Interval: time.Second, Slots: 8, Tiers: []int{1}})
	h.AddRule(AlertRule{Metric: "g", Op: '>', Threshold: 1})
	h.sampleAt(newHistClock(time.Second).tick(), reg.Snapshot())

	srv, err := Serve(ServeConfig{Addr: "127.0.0.1:0", Registry: reg, History: h, SampleEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var hist struct {
		IntervalMs  int64          `json:"interval_ms"`
		Resolutions []string       `json:"resolutions"`
		Points      []HistoryPoint `json:"points"`
	}
	getJSON(t, srv.URL()+"/metrics/history?name=g", &hist)
	if hist.IntervalMs != 1000 || len(hist.Points) != 1 || hist.Points[0].Value != 42 {
		t.Fatalf("history reply %+v", hist)
	}
	// A since far in the future filters everything; a bad since is a 400.
	getJSON(t, fmt.Sprintf("%s/metrics/history?name=g&since=%d", srv.URL(), time.Now().Add(time.Hour).UnixMilli()), &hist)
	if len(hist.Points) != 0 {
		t.Fatalf("future since returned %d points", len(hist.Points))
	}
	if code := getStatus(t, srv.URL()+"/metrics/history?since=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad since: status %d, want 400", code)
	}

	var alerts struct {
		Alerts []AlertStatus `json:"alerts"`
	}
	getJSON(t, srv.URL()+"/alertz", &alerts)
	if len(alerts.Alerts) != 1 || alerts.Alerts[0].State != AlertFiring {
		t.Fatalf("alertz reply %+v", alerts)
	}

	// No history attached: both endpoints are 404, not empty-success.
	bare, err := Serve(ServeConfig{Addr: "127.0.0.1:0", Registry: New(), SampleEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if code := getStatus(t, bare.URL()+"/metrics/history"); code != http.StatusNotFound {
		t.Fatalf("no history: /metrics/history status %d, want 404", code)
	}
	if code := getStatus(t, bare.URL()+"/alertz"); code != http.StatusNotFound {
		t.Fatalf("no history: /alertz status %d, want 404", code)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
