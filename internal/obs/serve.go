package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file implements the live telemetry plane: an HTTP server exposing
//
//	/metrics       the Registry in Prometheus text exposition format
//	/debug/pprof/  the standard Go profiling endpoints
//	/run           the current RunStatus as JSON, or a live SSE stream
//	               (Accept: text/event-stream or ?stream=1)
//	/              a plain-text index of the above
//
// The server owns nothing but views: the Registry keeps being written by
// the training run, the RunFeed by the training loop. Serving enables the
// registry's live mode (buffer-occupancy and runtime gauges start
// recording) and starts a RuntimeSampler, so a process that never calls
// Serve produces byte-identical passive traces.

// ServeConfig configures a telemetry server.
type ServeConfig struct {
	// Addr is the listen address, e.g. "127.0.0.1:9090"; port 0 picks a
	// free port (read it back from Server.Addr).
	Addr string
	// Registry is rendered by /metrics. Serving enables its live mode.
	Registry *Registry
	// Feed, when non-nil, backs the /run endpoint.
	Feed *RunFeed
	// Feeds, when non-nil, resolves named feeds for /run?job=<name> (and
	// /run/plan?job=<name>) — the serving plane's per-job telemetry hook.
	// It must be safe for concurrent use and return nil for unknown names.
	Feeds func(name string) *RunFeed
	// SampleEvery is the runtime-sampler tick (0 = 1s, negative disables
	// the sampler).
	SampleEvery time.Duration
	// History, when non-nil, backs /metrics/history (sampled time series)
	// and /alertz (threshold alert rules). The server only reads it; the
	// owner runs the sampler.
	History *History
	// Health, when non-nil, backs /healthz: nil error answers 200 "ok",
	// an error answers 503 with the error text. A nil Health probe makes
	// /healthz always 200 (the process is serving).
	Health func() error
	// Ready backs /readyz the same way — the hook for gating traffic on
	// replication lag or WAL writability.
	Ready func() error
}

// Server is a running telemetry HTTP server. Close shuts it down without
// leaking goroutines: the sampler stops, SSE subscribers are disconnected,
// and in-flight handlers finish.
type Server struct {
	ln      net.Listener
	srv     *http.Server
	sampler *RuntimeSampler
	feed    *RunFeed
	feeds   func(name string) *RunFeed
	reg     *Registry
	history *History

	mu     sync.Mutex
	closed bool
	served chan struct{} // closed when the serve goroutine exits
}

// Serve starts a telemetry server on cfg.Addr. It returns once the
// listener is bound; requests are handled on a background goroutine.
func Serve(cfg ServeConfig) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: telemetry listen on %s: %w", cfg.Addr, err)
	}
	cfg.Registry.EnableLive()
	s := &Server{ln: ln, feed: cfg.Feed, feeds: cfg.Feeds, reg: cfg.Registry,
		history: cfg.History, served: make(chan struct{})}
	if cfg.SampleEvery >= 0 && cfg.Registry != nil {
		s.sampler = StartRuntimeSampler(cfg.Registry, cfg.SampleEvery)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics/history", s.handleMetricsHistory)
	mux.HandleFunc("/alertz", s.handleAlertz)
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/run/plan", s.handleRunPlan)
	mux.HandleFunc("/healthz", probeHandler(cfg.Health))
	mux.HandleFunc("/readyz", probeHandler(cfg.Ready))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.served)
		// ErrServerClosed is the normal shutdown path; anything else is
		// reported through the registry so a scraper would have seen it.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close shuts the server down: the runtime sampler stops, SSE subscribers
// are disconnected (the shared feed is closed), the listener closes, and
// Close waits for the serve goroutine to exit. Safe to call twice and on
// a nil server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	s.sampler.Stop()
	s.feed.Close()
	err := s.srv.Close()
	<-s.served
	return err
}

// handleIndex lists the endpoints.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "corgipile telemetry\n\n"+
		"/metrics       Prometheus text exposition of the metrics registry\n"+
		"/metrics/history  sampled time series (?name=<metric>&since=<unix-ms|duration>)\n"+
		"/alertz        threshold alert rules and their firing state\n"+
		"/run           current run status (JSON); ?stream=1 for SSE; ?job=<id> for one job\n"+
		"/run/plan      executed-plan profile (annotated tree; ?format=json, ?stream=1 for SSE, ?job=<id>)\n"+
		"/healthz       liveness probe (200 ok / 503 with reason)\n"+
		"/readyz        readiness probe (replication lag, WAL writability)\n"+
		"/debug/pprof/  Go profiling endpoints\n")
}

// probeHandler renders a health/readiness probe: 200 "ok" when the probe
// is absent or returns nil, 503 with the error text otherwise.
func probeHandler(probe func() error) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		if probe != nil {
			if err := probe(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}
}

// handleMetrics renders the registry in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		// Connection-level failure; nothing useful left to send.
		return
	}
}

// handleMetricsHistory serves the sampled time series as JSON:
// ?name= selects one series (all when empty), ?since= drops points older
// than a unix-millisecond timestamp or a duration ago ("5m"). 404 when no
// history store is attached (-sample off).
func (s *Server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		http.Error(w, "no metrics history attached (enable sampling)", http.StatusNotFound)
		return
	}
	var sinceMs int64
	if raw := r.URL.Query().Get("since"); raw != "" {
		if d, err := time.ParseDuration(raw); err == nil {
			sinceMs = time.Now().Add(-d).UnixMilli()
		} else if ms, err := strconv.ParseInt(raw, 10, 64); err == nil {
			sinceMs = ms
		} else {
			http.Error(w, "since must be a duration (5m) or unix milliseconds", http.StatusBadRequest)
			return
		}
	}
	pts := s.history.Query(r.URL.Query().Get("name"), sinceMs)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		IntervalMs  int64          `json:"interval_ms"`
		Resolutions []string       `json:"resolutions"`
		Points      []HistoryPoint `json:"points"`
	}{s.history.Interval().Milliseconds(), s.history.Resolutions(), pts})
}

// handleAlertz serves every alert rule's current state as JSON. 404 when
// no history store is attached.
func (s *Server) handleAlertz(w http.ResponseWriter, _ *http.Request) {
	if s.history == nil {
		http.Error(w, "no metrics history attached (enable sampling)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Alerts []AlertStatus `json:"alerts"`
	}{s.history.Alerts()})
}

// resolveFeed picks the feed a /run request addresses: the per-job feed
// named by ?job= through the Feeds resolver, or the default feed. The
// second return value is a non-empty error message when no feed matches.
func (s *Server) resolveFeed(r *http.Request) (*RunFeed, string) {
	if job := r.URL.Query().Get("job"); job != "" {
		if s.feeds == nil {
			return nil, "no per-job feeds attached"
		}
		if f := s.feeds(job); f != nil {
			return f, ""
		}
		return nil, "unknown job " + job
	}
	if s.feed == nil {
		return nil, "no run feed attached"
	}
	return s.feed, ""
}

// handleRun serves the live run feed: a JSON snapshot by default, an SSE
// stream when the client asks for text/event-stream (or ?stream=1).
// ?job=<id> selects a per-job feed when a resolver is attached.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	feed, errMsg := s.resolveFeed(r)
	if feed == nil {
		http.Error(w, errMsg, http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("stream") != "" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamRun(w, r, feed)
		return
	}
	st, seq := feed.Status()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		RunStatus
		Updates int64 `json:"updates"`
	}{st, seq})
}

// handleRunPlan serves the executed-plan profile: the live annotated tree
// as text by default, the full node tree with ?format=json, or an SSE
// stream of per-epoch JSON snapshots with ?stream=1 (or Accept:
// text/event-stream). ?job=<id> selects a per-job feed when a resolver is
// attached.
func (s *Server) handleRunPlan(w http.ResponseWriter, r *http.Request) {
	feed, errMsg := s.resolveFeed(r)
	if feed == nil {
		http.Error(w, errMsg, http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("stream") != "" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamRunPlan(w, r, feed)
		return
	}
	p, _ := feed.PlanStatus()
	if p == nil {
		http.Error(w, "no plan published yet (is the run profiled? pass -explain)", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		out, err := p.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(out)
		w.Write([]byte("\n"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "epoch %d\n", p.Epoch)
	p.WriteText(w, true)
}

// streamRunPlan streams per-epoch plan snapshots as server-sent events.
func (s *Server) streamRunPlan(w http.ResponseWriter, r *http.Request, feed *RunFeed) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// Subscribe before reading the current snapshot so no epoch published
	// in between is missed (same ordering as streamRun).
	ch, cancel := feed.SubscribePlan()
	defer cancel()
	if p, seq := feed.PlanStatus(); seq > 0 && p != nil {
		if msg, err := json.Marshal(p); err == nil {
			fmt.Fprintf(w, "data: %s\n\n", msg)
			fl.Flush()
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case msg, ok := <-ch:
			if !ok {
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", msg)
			fl.Flush()
		}
	}
}

// streamRun streams run updates as server-sent events until the client
// disconnects or the feed closes (server shutdown or job completion).
func (s *Server) streamRun(w http.ResponseWriter, r *http.Request, feed *RunFeed) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// Flush the headers immediately: an SSE client must see the stream open
	// before the first epoch publishes, not block until it does.
	fl.Flush()

	// Subscribe before reading the current state so no update published in
	// between is missed (a duplicate initial event is harmless; a gap is a
	// stall). Then send the current state so a late subscriber sees
	// something immediately.
	ch, cancel := feed.Subscribe()
	defer cancel()
	if st, seq := feed.Status(); seq > 0 {
		if msg, err := json.Marshal(st); err == nil {
			fmt.Fprintf(w, "data: %s\n\n", msg)
			fl.Flush()
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case msg, ok := <-ch:
			if !ok {
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", msg)
			fl.Flush()
		}
	}
}
