package obs

import (
	"math"
	"runtime/metrics"
	"time"
)

// Runtime gauge names fed by the RuntimeSampler. These describe the
// process, not the simulation, so they live in their own runtime.*
// namespace.
const (
	RuntimeHeapBytes  = "runtime.heap.objects_bytes" // live heap object bytes
	RuntimeTotalBytes = "runtime.mem.total_bytes"    // total Go runtime memory
	RuntimeGoroutines = "runtime.goroutines"         // current goroutine count
	RuntimeGCCycles   = "runtime.gc.cycles"          // completed GC cycles
	RuntimeGCPauseP99 = "runtime.gc.pause_p99_s"     // p99 GC pause, seconds
)

// runtimeSamples maps runtime/metrics sample names to registry gauges.
var runtimeSamples = []struct {
	metric string
	gauge  string
}{
	{"/memory/classes/heap/objects:bytes", RuntimeHeapBytes},
	{"/memory/classes/total:bytes", RuntimeTotalBytes},
	{"/sched/goroutines:goroutines", RuntimeGoroutines},
	{"/gc/cycles/total:gc-cycles", RuntimeGCCycles},
	{"/gc/pauses:seconds", RuntimeGCPauseP99},
}

// RuntimeSampler periodically folds runtime/metrics (heap size, total
// memory, goroutine count, GC cycles and pause p99) into a Registry as
// gauges. The telemetry server starts one so that /metrics exposes process
// health next to the training metrics; it samples on a ticker goroutine
// and stops cleanly via Stop.
type RuntimeSampler struct {
	stop chan struct{}
	done chan struct{}
}

// StartRuntimeSampler samples runtime metrics into r every interval
// (default 1s when interval <= 0). It samples once synchronously before
// returning, so gauges are present immediately.
func StartRuntimeSampler(r *Registry, interval time.Duration) *RuntimeSampler {
	if interval <= 0 {
		interval = time.Second
	}
	s := &RuntimeSampler{stop: make(chan struct{}), done: make(chan struct{})}
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, rs := range runtimeSamples {
		samples[i].Name = rs.metric
	}
	sampleOnce(r, samples)
	go func() {
		defer close(s.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				sampleOnce(r, samples)
			}
		}
	}()
	return s
}

// Stop halts the sampler goroutine and waits for it to exit. Safe to call
// on a nil sampler.
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// sampleOnce reads all configured runtime metrics and records them.
func sampleOnce(r *Registry, samples []metrics.Sample) {
	metrics.Read(samples)
	for i, sm := range samples {
		gauge := runtimeSamples[i].gauge
		switch sm.Value.Kind() {
		case metrics.KindUint64:
			r.SetGauge(gauge, float64(sm.Value.Uint64()))
		case metrics.KindFloat64:
			r.SetGauge(gauge, sm.Value.Float64())
		case metrics.KindFloat64Histogram:
			r.SetGauge(gauge, histQuantile(sm.Value.Float64Histogram(), 0.99))
		}
	}
}

// histQuantile estimates a quantile of a runtime/metrics histogram
// (cumulative over the process lifetime). Infinite bucket edges fall back
// to the nearest finite edge.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Bucket i spans [Buckets[i], Buckets[i+1]).
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			if math.IsInf(lo, -1) || math.IsNaN(lo) {
				lo = 0
			}
			if math.IsInf(hi, 1) || math.IsNaN(hi) {
				hi = lo
			}
			return (lo + hi) / 2
		}
	}
	return 0
}
