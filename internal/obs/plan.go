package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// This file defines PlanStats, the executed-plan profile of one physical
// operator tree: the static plan shape (name + detail per node) annotated
// with per-node runtime statistics — rows produced, exclusive ("self") vs
// inclusive ("total") time on both the simulated and wall clocks, leaf I/O
// traffic, fault accounting, and buffer high-water marks. The executor
// fills it; EXPLAIN ANALYZE, the /run/plan endpoint, and run-dir artifacts
// render it. It lives in obs (not the executor) so the telemetry plane can
// carry plan snapshots without importing the execution engine.

// PlanStats is one node of a physical operator tree, with optional runtime
// ("actual") statistics. A tree with zero-valued actuals renders as the
// static EXPLAIN plan; after execution the same tree renders as EXPLAIN
// ANALYZE. Exclusive times telescope: summing SelfSimSeconds over every
// node of the tree yields the root's TotalSimSeconds exactly.
type PlanStats struct {
	// Name is the operator name ("SGD", "TupleShuffle", "Strategy[mrs]").
	Name string `json:"name"`
	// Detail is the static parenthetical ("blocks=10, sequential").
	Detail string `json:"detail,omitempty"`

	// Rows is the number of tuples the node produced across the run; Calls
	// the number of Next() calls; Loops the number of scans it served (one
	// per epoch for training plans).
	Rows  int64 `json:"rows,omitempty"`
	Calls int64 `json:"calls,omitempty"`
	Loops int64 `json:"loops,omitempty"`

	// SelfSimSeconds is the node's exclusive simulated time (inclusive time
	// minus its direct children's inclusive time); TotalSimSeconds its
	// inclusive simulated time. SelfWallSeconds/TotalWallSeconds are the
	// same attribution on the wall clock.
	SelfSimSeconds   float64 `json:"self_sim_seconds"`
	TotalSimSeconds  float64 `json:"total_sim_seconds"`
	SelfWallSeconds  float64 `json:"self_wall_seconds"`
	TotalWallSeconds float64 `json:"total_wall_seconds"`

	// BytesRead, CacheHitBytes and BlocksRead attribute device traffic to
	// the access-path leaf that performed it.
	BytesRead     int64 `json:"bytes_read,omitempty"`
	CacheHitBytes int64 `json:"cache_hit_bytes,omitempty"`
	BlocksRead    int64 `json:"blocks_read,omitempty"`
	// Faults, Stragglers, Retries and SkippedBlocks carry the fault-layer
	// accounting for the same leaf.
	Faults        int64 `json:"faults,omitempty"`
	Stragglers    int64 `json:"stragglers,omitempty"`
	Retries       int64 `json:"retries,omitempty"`
	SkippedBlocks int64 `json:"skipped_blocks,omitempty"`

	// BufferPeak is the buffer occupancy high-water mark in tuples (shuffle
	// buffers only); BufferCap its configured capacity.
	BufferPeak int `json:"buffer_peak,omitempty"`
	BufferCap  int `json:"buffer_cap,omitempty"`

	// Epoch, on the root, is the last completed epoch the snapshot covers.
	Epoch int `json:"epoch,omitempty"`
	// Resilience, on the root, is the plan's resilience footer line.
	Resilience string `json:"resilience,omitempty"`

	Children []*PlanStats `json:"children,omitempty"`
}

// Clone returns a deep copy of the tree.
func (p *PlanStats) Clone() *PlanStats {
	if p == nil {
		return nil
	}
	c := *p
	c.Children = nil
	for _, ch := range p.Children {
		c.Children = append(c.Children, ch.Clone())
	}
	return &c
}

// Text renders the tree, one line per node in EXPLAIN style. With analyze
// set each node carries an "(actual: ...)" annotation; stripping everything
// from " (actual:" to end of line recovers the static EXPLAIN text exactly.
func (p *PlanStats) Text(analyze bool) string {
	var b strings.Builder
	p.WriteText(&b, analyze)
	return b.String()
}

// WriteText writes the Text rendering to w.
func (p *PlanStats) WriteText(w io.Writer, analyze bool) {
	if p == nil {
		return
	}
	p.writeNode(w, 0, analyze)
	if p.Resilience != "" {
		fmt.Fprintf(w, "%s\n", p.Resilience)
	}
}

func (p *PlanStats) writeNode(w io.Writer, depth int, analyze bool) {
	prefix := ""
	if depth > 0 {
		prefix = strings.Repeat("   ", depth-1) + "└─ "
	}
	line := p.Name
	if p.Detail != "" {
		line += " (" + p.Detail + ")"
	}
	if analyze {
		line += " (actual: " + p.annotation() + ")"
	}
	fmt.Fprintf(w, "%s%s\n", prefix, line)
	for _, ch := range p.Children {
		ch.writeNode(w, depth+1, analyze)
	}
}

// annotation renders the node's runtime statistics as a single-line,
// paren-free field list.
func (p *PlanStats) annotation() string {
	parts := []string{
		fmt.Sprintf("rows=%d", p.Rows),
		fmt.Sprintf("loops=%d", p.Loops),
		fmt.Sprintf("self=%s", fmtSeconds(p.SelfSimSeconds)),
		fmt.Sprintf("total=%s", fmtSeconds(p.TotalSimSeconds)),
		fmt.Sprintf("wall_self=%s", fmtSeconds(p.SelfWallSeconds)),
		fmt.Sprintf("wall_total=%s", fmtSeconds(p.TotalWallSeconds)),
	}
	if p.BytesRead > 0 || p.BlocksRead > 0 {
		parts = append(parts,
			fmt.Sprintf("read=%s", fmtBytes(p.BytesRead)),
			fmt.Sprintf("cache_hit=%s", fmtBytes(p.CacheHitBytes)),
			fmt.Sprintf("blocks=%d", p.BlocksRead))
	}
	if p.Faults > 0 {
		parts = append(parts, fmt.Sprintf("faults=%d", p.Faults))
	}
	if p.Stragglers > 0 {
		parts = append(parts, fmt.Sprintf("stragglers=%d", p.Stragglers))
	}
	if p.Retries > 0 {
		parts = append(parts, fmt.Sprintf("retries=%d", p.Retries))
	}
	if p.SkippedBlocks > 0 {
		parts = append(parts, fmt.Sprintf("skipped_blocks=%d", p.SkippedBlocks))
	}
	if p.BufferCap > 0 {
		parts = append(parts, fmt.Sprintf("buffer_peak=%d/%d", p.BufferPeak, p.BufferCap))
	}
	return strings.Join(parts, " ")
}

// JSON renders the tree as indented JSON — the EXPLAIN (FORMAT JSON)
// payload.
func (p *PlanStats) JSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// SelfSimSum returns the sum of SelfSimSeconds over the whole tree. By the
// telescoping construction it equals the root's TotalSimSeconds; the
// invariant test holds the executor to it.
func (p *PlanStats) SelfSimSum() float64 {
	if p == nil {
		return 0
	}
	s := p.SelfSimSeconds
	for _, ch := range p.Children {
		s += ch.SelfSimSum()
	}
	return s
}

// fmtBytes renders a byte count compactly.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
