package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Well-known event types. Every layer that emits into the EventLog uses
// one of these so `SELECT * FROM corgi_events WHERE type = '...'` works
// without grepping source.
const (
	EvStatementStart  = "statement.start"
	EvStatementFinish = "statement.finish"
	EvStatementSlow   = "statement.slow"
	EvJobQueued       = "job.queued"
	EvJobRunning      = "job.running"
	EvJobDone         = "job.done"
	EvJobFailed       = "job.failed"
	EvJobCanceled     = "job.canceled"
	EvJobPruned       = "job.pruned"
	EvCheckpoint      = "checkpoint"
	EvRecovery        = "wal.recovery"
	EvWALSyncFailure  = "wal.sync_failure"
	EvReplConnect     = "repl.connect"
	EvReplDisconnect  = "repl.disconnect"
	EvReplShed        = "repl.shed"
	EvReplResync      = "repl.resync"
	EvPromote         = "promote"
)

// Well-known wall-clock span names recorded into the EventLog (distinct
// from Registry spans, which run on the — possibly simulated — session
// clock and feed histograms).
const (
	EvSpanStatement = "statement"
	EvSpanQueue     = "queue"
	EvSpanEpoch     = "epoch"
	EvSpanInstall   = "install"
)

// Event is one structured point event: a statement starting or
// finishing, a job changing state, a checkpoint, a replica being shed.
// Events carry wall-clock time (they describe operations of a live
// server, not simulated I/O) and the trace ID of the wire request that
// caused them, when one exists.
type Event struct {
	Seq    int64   `json:"seq"`
	TimeMs int64   `json:"t_ms"`
	Type   string  `json:"type"`
	Trace  string  `json:"trace,omitempty"`
	Detail string  `json:"detail,omitempty"`
	DurMs  float64 `json:"dur_ms,omitempty"`
	Err    string  `json:"err,omitempty"`
}

// SpanRecord is one completed wall-clock interval attributed to a trace:
// the life of a statement, a job's time in queue, one training epoch,
// the model install. `SELECT * FROM corgi_spans WHERE trace_id = '...'`
// reconstructs a request's timeline from these.
type SpanRecord struct {
	Seq     int64   `json:"seq"`
	Trace   string  `json:"trace,omitempty"`
	Name    string  `json:"name"`
	StartMs int64   `json:"start_ms"`
	DurMs   float64 `json:"dur_ms"`
}

// EventLog is a bounded lock-free ring of typed events plus a sibling
// ring of trace-scoped spans. Writers never block and never allocate
// beyond the one event they store: an append is an atomic sequence
// bump plus an atomic pointer store into a fixed power-of-two ring, so
// hot paths (the WAL, the replication hub, the epoch loop) can emit
// unconditionally. Readers take a torn-free snapshot by loading slot
// pointers — a concurrent writer replaces whole events, never mutates
// one in place.
//
// An EventLog is optional everywhere it is threaded: every method is a
// no-op on a nil receiver, so idle cost is a nil check. It is entirely
// separate from Registry's JSONL trace sink — attaching an EventLog
// never changes passive trace bytes (TestTracePurity pins this).
type EventLog struct {
	ring  []atomic.Pointer[Event]
	spans []atomic.Pointer[SpanRecord]

	seq     atomic.Int64
	spanSeq atomic.Int64
	slowNs  atomic.Int64
	sink    atomic.Pointer[jsonlSink]
}

// DefaultEventLogSize is the ring capacity used when NewEventLog is
// given a non-positive size.
const DefaultEventLogSize = 1024

// NewEventLog builds an event log whose event and span rings hold n
// entries each, rounded up to a power of two (default 1024).
func NewEventLog(n int) *EventLog {
	if n <= 0 {
		n = DefaultEventLogSize
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &EventLog{
		ring:  make([]atomic.Pointer[Event], size),
		spans: make([]atomic.Pointer[SpanRecord], size),
	}
}

// Record appends one event, stamping its sequence number and (when the
// caller left it zero) its wall-clock time. The stored event is
// returned. No-op on a nil log.
func (el *EventLog) Record(ev Event) Event {
	if el == nil {
		return ev
	}
	ev.Seq = el.seq.Add(1)
	if ev.TimeMs == 0 {
		ev.TimeMs = time.Now().UnixMilli()
	}
	stored := ev
	el.ring[int((ev.Seq-1)&int64(len(el.ring)-1))].Store(&stored)
	if s := el.sink.Load(); s != nil {
		s.emit(eventLine{Ev: "event", Event: stored})
	}
	return ev
}

// Emit appends a plain event with no duration or error payload.
func (el *EventLog) Emit(typ, trace, detail string) {
	if el == nil {
		return
	}
	el.Record(Event{Type: typ, Trace: trace, Detail: detail})
}

// Events returns the surviving events in sequence order — at most the
// ring capacity, oldest entries overwritten first.
func (el *EventLog) Events() []Event {
	if el == nil {
		return nil
	}
	out := make([]Event, 0, len(el.ring))
	for i := range el.ring {
		if p := el.ring[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// RecordSpan appends one completed wall-clock span.
func (el *EventLog) RecordSpan(trace, name string, start time.Time, d time.Duration) {
	if el == nil {
		return
	}
	seq := el.spanSeq.Add(1)
	rec := &SpanRecord{
		Seq:     seq,
		Trace:   trace,
		Name:    name,
		StartMs: start.UnixMilli(),
		DurMs:   float64(d) / float64(time.Millisecond),
	}
	el.spans[int((seq-1)&int64(len(el.spans)-1))].Store(rec)
	if s := el.sink.Load(); s != nil {
		s.emit(spanLine{Ev: "tracespan", SpanRecord: *rec})
	}
}

// Spans returns the surviving span records in sequence order.
func (el *EventLog) Spans() []SpanRecord {
	if el == nil {
		return nil
	}
	out := make([]SpanRecord, 0, len(el.spans))
	for i := range el.spans {
		if p := el.spans[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// EventSpan is an in-flight wall-clock span. End records it; both the
// zero value and spans started on a nil log end as no-ops.
type EventSpan struct {
	el    *EventLog
	trace string
	name  string
	start time.Time
}

// StartSpan opens a wall-clock span attributed to trace. On a nil log
// it returns a no-op span without reading the clock.
func (el *EventLog) StartSpan(trace, name string) EventSpan {
	if el == nil {
		return EventSpan{}
	}
	return EventSpan{el: el, trace: trace, name: name, start: time.Now()}
}

// End closes the span and records it, returning the duration.
func (sp EventSpan) End() time.Duration {
	if sp.el == nil {
		return 0
	}
	d := time.Since(sp.start)
	sp.el.RecordSpan(sp.trace, sp.name, sp.start, d)
	return d
}

// SetSlowThreshold arms slow-statement detection: statements whose
// execution exceeds d get a companion EvStatementSlow event. Zero
// disarms it.
func (el *EventLog) SetSlowThreshold(d time.Duration) {
	if el == nil {
		return
	}
	el.slowNs.Store(int64(d))
}

// Slow reports whether a statement of duration d crosses the armed
// slow threshold.
func (el *EventLog) Slow(d time.Duration) bool {
	if el == nil {
		return false
	}
	t := el.slowNs.Load()
	return t > 0 && int64(d) >= t
}

// StreamTo attaches a JSONL sink: every subsequent event and span is
// additionally written to w as one JSON object per line (`"ev":"event"`
// / `"ev":"tracespan"`). This sink is the event log's own — it is never
// the Registry trace sink, so passive traces are unaffected.
func (el *EventLog) StreamTo(w io.Writer) *EventLog {
	if el == nil || w == nil {
		return el
	}
	el.sink.Store(&jsonlSink{enc: json.NewEncoder(w)})
	return el
}

type eventLine struct {
	Ev string `json:"ev"`
	Event
}

type spanLine struct {
	Ev string `json:"ev"`
	SpanRecord
}
