package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable Clock for deterministic span tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func TestCountersGaugesHistograms(t *testing.T) {
	r := New()
	r.Add("a", 3)
	r.Inc("a")
	r.AddDuration("t_ns", 5*time.Millisecond)
	r.SetGauge("g", 1.5)
	r.Observe("h", 2*time.Millisecond)
	r.Observe("h", 4*time.Millisecond)

	if got := r.Counter("a"); got != 4 {
		t.Errorf("counter a = %d, want 4", got)
	}
	if got := r.Counter("t_ns"); got != int64(5*time.Millisecond) {
		t.Errorf("t_ns = %d", got)
	}
	if got := r.Gauge("g"); got != 1.5 {
		t.Errorf("gauge g = %v", got)
	}
	h := r.Snapshot().Hists["h"]
	if h.Count != 2 || h.Sum != 6*time.Millisecond {
		t.Errorf("hist h = %+v", h)
	}
	if h.Min != 2*time.Millisecond || h.Max != 4*time.Millisecond {
		t.Errorf("hist min/max = %v/%v", h.Min, h.Max)
	}
	if h.Mean() != 3*time.Millisecond {
		t.Errorf("hist mean = %v", h.Mean())
	}
	var bucketSum int64
	for _, b := range h.Buckets {
		bucketSum += b
	}
	if bucketSum != 2 {
		t.Errorf("bucket sum = %d, want 2", bucketSum)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Add("a", 1)
	r.Inc("a")
	r.AddDuration("a", time.Second)
	r.SetGauge("g", 1)
	r.Observe("h", time.Second)
	r.EmitEpoch(EpochMetrics{})
	r.EmitSnapshot("x")
	r.WithClock(&fakeClock{})
	r.StreamTo(&bytes.Buffer{})
	sp := r.Span("s")
	sp.Child("c").End()
	sp.End()
	if got := r.Counter("a"); got != 0 {
		t.Errorf("nil counter = %d", got)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 {
		t.Errorf("nil snapshot non-empty")
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := New()
	r.Add("c", 10)
	r.Observe("h", time.Second)
	before := r.Snapshot()
	r.Add("c", 5)
	r.Observe("h", 3*time.Second)
	r.SetGauge("g", 7)
	d := r.Snapshot().DeltaFrom(before)
	if d.Counters["c"] != 5 {
		t.Errorf("delta c = %d, want 5", d.Counters["c"])
	}
	if h := d.Hists["h"]; h.Count != 1 || h.Sum != 3*time.Second {
		t.Errorf("delta hist = %+v", h)
	}
	if d.Gauges["g"] != 7 {
		t.Errorf("delta gauge = %v", d.Gauges["g"])
	}
	if d.CounterDur("c") != 5 {
		t.Errorf("CounterDur = %v", d.CounterDur("c"))
	}
}

func TestSpanNestingAndStream(t *testing.T) {
	clock := &fakeClock{}
	var buf bytes.Buffer
	r := New().WithClock(clock).StreamTo(&buf)

	epoch := r.Span("epoch")
	clock.advance(time.Second)
	refill := r.Span("refill")
	clock.advance(2 * time.Second)
	if d := refill.End(); d != 2*time.Second {
		t.Errorf("refill dur = %v", d)
	}
	clock.advance(time.Second)
	if d := epoch.End(); d != 4*time.Second {
		t.Errorf("epoch dur = %v", d)
	}
	// Double End is a no-op.
	if d := epoch.End(); d != 0 {
		t.Errorf("second End = %v", d)
	}

	// Histograms recorded under the span names.
	if h := r.Snapshot().Hists["epoch"]; h.Count != 1 || h.Sum != 4*time.Second {
		t.Errorf("epoch hist = %+v", h)
	}

	// The JSONL stream holds both spans, with refill parented to epoch.
	var events []spanEvent
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev spanEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Name != "refill" || events[1].Name != "epoch" {
		t.Errorf("event order: %q, %q", events[0].Name, events[1].Name)
	}
	if events[0].Parent != events[1].ID {
		t.Errorf("refill parent = %d, epoch id = %d", events[0].Parent, events[1].ID)
	}
	if events[0].Dur != 2.0 {
		t.Errorf("refill dur_s = %v", events[0].Dur)
	}
}

func TestSpanChild(t *testing.T) {
	clock := &fakeClock{}
	r := New().WithClock(clock)
	root := r.Span("root")
	child := root.Child("leaf")
	clock.advance(time.Second)
	// Children may end out of order relative to the stack.
	root.End()
	if d := child.End(); d != time.Second {
		t.Errorf("child dur = %v", d)
	}
}

func TestNegativeSpanClamped(t *testing.T) {
	// Pipelined components Set the simulated clock backwards; span
	// durations must clamp at zero rather than go negative.
	clock := &fakeClock{now: 10 * time.Second}
	r := New().WithClock(clock)
	sp := r.Span("warp")
	clock.mu.Lock()
	clock.now = 5 * time.Second
	clock.mu.Unlock()
	if d := sp.End(); d != 0 {
		t.Errorf("warped span dur = %v, want 0", d)
	}
}

func TestEpochFromDelta(t *testing.T) {
	r := New()
	r.Add(IOReadOps, 10)
	r.Add(IOReadBytes, 1<<20)
	r.Add(IOSeeks, 4)
	r.Add(IOCacheHitBytes, 1<<19)
	r.AddDuration(IOTimeNanos, 2*time.Second)
	r.AddDuration(ShuffleFillNanos, time.Second)
	r.Add(ShuffleRefills, 3)
	r.AddDuration(SGDGradNanos, 500*time.Millisecond)
	r.Add(SGDTuples, 1000)

	m := EpochFromDelta(1, 3.5, 0.25, r.Snapshot().DeltaFrom(Snapshot{}))
	if m.Epoch != 1 || m.Seconds != 3.5 || m.AvgLoss != 0.25 {
		t.Errorf("header fields: %+v", m)
	}
	if m.IOSeconds != 2.0 || m.BytesRead != 1<<20 || m.Tuples != 1000 {
		t.Errorf("volume fields: %+v", m)
	}
	if m.SeekFraction != 0.4 {
		t.Errorf("seek fraction = %v, want 0.4", m.SeekFraction)
	}
	if m.CacheHitRate != 0.5 {
		t.Errorf("cache hit rate = %v, want 0.5", m.CacheHitRate)
	}
	if m.ShuffleSeconds != 1.0 || m.GradSeconds != 0.5 || m.Refills != 3 {
		t.Errorf("time fields: %+v", m)
	}
}

func TestWriteEpochTableAndJSONLParity(t *testing.T) {
	rows := []EpochMetrics{
		{Epoch: 1, Seconds: 2, IOSeconds: 1, BytesRead: 1 << 20,
			SeekFraction: 0.9, CacheHitRate: 0.5, ShuffleSeconds: 0.5,
			GradSeconds: 0.4, Tuples: 100, AvgLoss: 0.31415},
	}
	var tbl bytes.Buffer
	if err := WriteEpochTable(&tbl, "Per-epoch breakdown", rows); err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, col := range []string{"epoch", "io", "read MB", "seek%", "cache%", "shuffle", "grad", "loss", "tuples"} {
		if !strings.Contains(out, col) {
			t.Errorf("table missing column %q:\n%s", col, out)
		}
	}
	if !strings.Contains(out, "0.31415") {
		t.Errorf("table missing loss value:\n%s", out)
	}

	// The JSONL exporter round-trips the same row.
	var stream bytes.Buffer
	r := New().StreamTo(&stream)
	r.EmitEpoch(rows[0])
	var got struct {
		Ev string `json:"ev"`
		EpochMetrics
	}
	if err := json.Unmarshal(stream.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Ev != "epoch" || got.EpochMetrics != rows[0] {
		t.Errorf("JSONL epoch = %+v", got)
	}
}

func TestEmitSnapshot(t *testing.T) {
	var buf bytes.Buffer
	r := New().StreamTo(&buf)
	r.Add(IOReadBytes, 42)
	r.Observe("h", time.Second)
	r.EmitSnapshot("final")
	var got map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got["ev"] != "snapshot" || got["label"] != "final" {
		t.Errorf("snapshot event = %v", got)
	}
}

func TestWriteCounterTable(t *testing.T) {
	r := New()
	r.Add("b.counter", 2)
	r.Add("a.counter", 1)
	r.SetGauge("z.gauge", 0.5)
	var buf bytes.Buffer
	if err := r.WriteCounterTable(&buf, "Totals"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a.counter") || !strings.Contains(out, "z.gauge") {
		t.Errorf("counter table:\n%s", out)
	}
	if strings.Index(out, "a.counter") > strings.Index(out, "b.counter") {
		t.Errorf("counters not sorted:\n%s", out)
	}
}

// TestConcurrentUse exercises every mutating path from many goroutines; its
// real assertion is `go test -race`.
func TestConcurrentUse(t *testing.T) {
	clock := &fakeClock{}
	var buf bytes.Buffer
	r := New().WithClock(clock).StreamTo(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Inc("c")
				r.AddDuration(IOTimeNanos, time.Microsecond)
				r.SetGauge("g", float64(i))
				r.Observe("h", time.Duration(i))
				sp := r.Span("s")
				clock.advance(time.Nanosecond)
				sp.Child("leaf").End()
				sp.End()
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c"); got != 1600 {
		t.Errorf("concurrent counter = %d, want 1600", got)
	}
	if h := r.Snapshot().Hists["s"]; h.Count != 1600 {
		t.Errorf("span hist count = %d, want 1600", h.Count)
	}
}
