package obs

import (
	"math"
	"time"
)

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) of the observed
// durations from the histogram's log2 buckets. The estimate locates the
// bucket holding the nearest-rank observation and interpolates linearly
// inside it, clamped to the recorded [Min, Max] envelope, so p50/p95/p99
// are exact to within one power-of-two bucket. An empty histogram yields 0.
//
// Bucket semantics follow hist.observe: bucket 0 holds sub-nanosecond
// observations, bucket i (i ≥ 1) holds durations in [2^(i-1), 2^i) ns.
func (h HistSnapshot) Quantile(q float64) time.Duration {
	if h.Count == 0 || math.IsNaN(q) {
		// An empty histogram (or a nonsensical quantile) is 0, never NaN —
		// int64(NaN * count) is platform-defined garbage otherwise.
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	// Nearest-rank: the smallest rank r (1-based) with r ≥ q·count.
	rank := int64(q * float64(h.Count))
	if float64(rank) < q*float64(h.Count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketBounds(i)
			// Interpolate by the rank's position among this bucket's
			// observations.
			frac := (float64(rank-cum) - 0.5) / float64(c)
			est := time.Duration(float64(lo) + frac*float64(hi-lo))
			if est < h.Min {
				est = h.Min
			}
			if est > h.Max {
				est = h.Max
			}
			return est
		}
		cum += c
	}
	return h.Max
}

// bucketBounds returns the [lo, hi) nanosecond range of bucket i.
func bucketBounds(i int) (lo, hi time.Duration) {
	if i == 0 {
		return 0, 1
	}
	return 1 << (i - 1), 1 << i
}
